// Tests for the versioned binary serialization framework.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/serde.h"

namespace prsim {
namespace {

class SerdeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_serde_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Writes a small reference artifact and returns its path.
  std::string WriteSample(const std::string& name) {
    const std::string path = Path(name);
    BinaryWriter writer(path, "test-kind", 3);
    writer.WritePod<uint32_t>(42);
    writer.WritePod<double>(2.5);
    writer.WriteString("payload string");
    writer.WriteVector(std::vector<uint64_t>{1, 2, 3});
    writer.WriteVector(std::vector<std::pair<uint32_t, float>>{{7, 0.5f}});
    writer.WriteVector(std::vector<double>{});
    EXPECT_TRUE(writer.Finish().ok());
    return path;
  }

  /// Reads the reference artifact back, returning the first failure (all
  /// fields are also checked when everything parses).
  Status ReadSample(const std::string& path) {
    BinaryReader reader(path, "test-kind", 3);
    PRSIM_RETURN_NOT_OK(reader.status());
    uint32_t a = 0;
    double b = 0;
    std::string s;
    std::vector<uint64_t> v;
    std::vector<std::pair<uint32_t, float>> pairs;
    std::vector<double> empty;
    PRSIM_RETURN_NOT_OK(reader.ReadPod(&a));
    PRSIM_RETURN_NOT_OK(reader.ReadPod(&b));
    PRSIM_RETURN_NOT_OK(reader.ReadString(&s));
    PRSIM_RETURN_NOT_OK(reader.ReadVector(&v));
    PRSIM_RETURN_NOT_OK(reader.ReadVector(&pairs));
    PRSIM_RETURN_NOT_OK(reader.ReadVector(&empty));
    PRSIM_RETURN_NOT_OK(reader.Finish());
    EXPECT_EQ(a, 42u);
    EXPECT_DOUBLE_EQ(b, 2.5);
    EXPECT_EQ(s, "payload string");
    EXPECT_EQ(v, (std::vector<uint64_t>{1, 2, 3}));
    EXPECT_EQ(pairs,
              (std::vector<std::pair<uint32_t, float>>{{7, 0.5f}}));
    EXPECT_TRUE(empty.empty());
    return Status::OK();
  }

  /// Flips one byte at `offset` (negative = from the end).
  void CorruptByte(const std::string& path, int64_t offset) {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    if (offset < 0) {
      file.seekg(offset, std::ios::end);
    } else {
      file.seekg(offset, std::ios::beg);
    }
    const auto pos = file.tellg();
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(pos);
    file.write(&byte, 1);
  }

  std::filesystem::path dir_;
};

TEST_F(SerdeTest, RoundTrip) {
  EXPECT_TRUE(ReadSample(WriteSample("ok.bin")).ok());
}

TEST_F(SerdeTest, MissingFileFails) {
  const Status st = ReadSample(Path("missing.bin"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST_F(SerdeTest, FlippedMagicFails) {
  const std::string path = WriteSample("magic.bin");
  CorruptByte(path, 0);
  const Status st = ReadSample(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not a prsim artifact"), std::string::npos)
      << st.ToString();
}

TEST_F(SerdeTest, WrongVersionFails) {
  const std::string path = WriteSample("version.bin");
  BinaryReader reader(path, "test-kind", 4);
  ASSERT_FALSE(reader.status().ok());
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST_F(SerdeTest, WrongKindFails) {
  const std::string path = WriteSample("kind.bin");
  BinaryReader reader(path, "other-kind", 3);
  ASSERT_FALSE(reader.status().ok());
  EXPECT_NE(reader.status().message().find("test-kind"), std::string::npos);
}

TEST_F(SerdeTest, TruncationFails) {
  const std::string path = WriteSample("trunc.bin");
  const auto size = std::filesystem::file_size(path);
  for (const auto fraction : {size / 2, size - 4}) {
    std::filesystem::resize_file(path, fraction);
    EXPECT_FALSE(ReadSample(path).ok()) << "at size " << fraction;
  }
}

TEST_F(SerdeTest, PayloadCorruptionFailsChecksum) {
  const std::string path = WriteSample("flip.bin");
  // Flip a byte inside "payload string" (header is 8 magic + 4 version +
  // 4+9 kind = 25 bytes; the string body starts at 25 + 4 + 8 + 4 = 41).
  // Every field still parses, so only the checksum catches it.
  CorruptByte(path, 45);
  const Status st = ReadSample(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum"), std::string::npos)
      << st.ToString();
}

TEST_F(SerdeTest, TrailerCorruptionFailsChecksum) {
  const std::string path = WriteSample("trailer.bin");
  CorruptByte(path, -1);
  const Status st = ReadSample(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum"), std::string::npos)
      << st.ToString();
}

TEST_F(SerdeTest, AppendedGarbageFails) {
  const std::string path = WriteSample("garbage.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "extra";
  }
  EXPECT_FALSE(ReadSample(path).ok());
}

// A hostile length prefix must fail cleanly instead of attempting a
// multi-gigabyte allocation.
TEST_F(SerdeTest, OversizedVectorLengthFails) {
  const std::string path = Path("huge.bin");
  {
    BinaryWriter writer(path, "test-kind", 3);
    writer.WritePod<uint64_t>(0x7fffffffffffffffULL);  // fake element count
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path, "test-kind", 3);
  ASSERT_TRUE(reader.status().ok());
  std::vector<double> v;
  const Status st = reader.ReadVector(&v);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_TRUE(v.empty());
}

// The reader caps strings at 256 bytes, so the writer must reject longer
// ones up front instead of producing an artifact that can never be read.
TEST_F(SerdeTest, OverlongStringRejectedAtWriteTime) {
  BinaryWriter writer(Path("long.bin"), "test-kind", 1);
  writer.WriteString(std::string(300, 'x'));
  const Status st = writer.Finish();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The failed save must not leave a file (or temp) behind.
  EXPECT_FALSE(std::filesystem::exists(Path("long.bin")));
}

// WriteElements streamed piecewise must be byte-identical to one
// WriteVector of the concatenation.
TEST_F(SerdeTest, WriteElementsMatchesWriteVector) {
  const std::vector<uint32_t> a = {1, 2, 3}, b = {4, 5};
  {
    BinaryWriter writer(Path("vec.bin"), "test-kind", 1);
    writer.WriteVector(std::vector<uint32_t>{1, 2, 3, 4, 5});
    ASSERT_TRUE(writer.Finish().ok());
  }
  {
    BinaryWriter writer(Path("elems.bin"), "test-kind", 1);
    writer.WritePod<uint64_t>(a.size() + b.size());
    writer.WriteElements(a.data(), a.size());
    writer.WriteElements(b.data(), b.size());
    ASSERT_TRUE(writer.Finish().ok());
  }
  std::ifstream va(Path("vec.bin"), std::ios::binary);
  std::ifstream vb(Path("elems.bin"), std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(va)), {});
  const std::string bytes_b((std::istreambuf_iterator<char>(vb)), {});
  EXPECT_EQ(bytes_a, bytes_b);

  BinaryReader reader(Path("elems.bin"), "test-kind", 1);
  std::vector<uint32_t> round;
  ASSERT_TRUE(reader.ReadVector(&round).ok());
  EXPECT_EQ(round, (std::vector<uint32_t>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(reader.Finish().ok());
}

TEST_F(SerdeTest, AbandonedWriterLeavesNoFile) {
  {
    BinaryWriter writer(Path("abandoned.bin"), "test-kind", 1);
    writer.WritePod<uint32_t>(1);
    // No Finish(): simulates a failed save path bailing out early.
  }
  EXPECT_FALSE(std::filesystem::exists(Path("abandoned.bin")));
  // Nothing left in the directory except files other tests created.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << entry.path();
  }
}

TEST_F(SerdeTest, WriterToUnwritablePathFails) {
  BinaryWriter writer(Path("no/such/dir/x.bin"), "test-kind", 1);
  EXPECT_FALSE(writer.status().ok());
  EXPECT_FALSE(writer.Finish().ok());
}

TEST_F(SerdeTest, HashStringIsStable) {
  // FNV-1a offset basis: hashing zero bytes must return it unchanged.
  EXPECT_EQ(HashString(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(HashString("a"), HashString("b"));
  EXPECT_EQ(HashString("abc"), HashString("abc"));
}

}  // namespace
}  // namespace prsim
