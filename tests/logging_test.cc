// Tests for the logging and assertion macros.

#include <gtest/gtest.h>

#include "util/logging.h"

namespace prsim {
namespace {

TEST(LoggingTest, ThresholdRoundTrip) {
  const LogLevel original = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
  SetLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kDebug);
  SetLogThreshold(original);
}

TEST(LoggingTest, BelowThresholdMessagesAreCheap) {
  // No assertion beyond "does not crash / does not abort".
  SetLogThreshold(LogLevel::kError);
  for (int i = 0; i < 100; ++i) {
    PRSIM_LOG(Debug) << "suppressed " << i;
    PRSIM_LOG(Info) << "suppressed " << i;
  }
  SetLogThreshold(LogLevel::kInfo);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(PRSIM_CHECK(1 == 2) << "boom", "Check failed");
  EXPECT_DEATH(PRSIM_CHECK_EQ(3, 4), "3 vs 4");
  EXPECT_DEATH(PRSIM_CHECK_LT(5, 5), "Check failed");
  EXPECT_DEATH(PRSIM_CHECK_GE(1, 2), "Check failed");
}

TEST(LoggingTest, PassingChecksAreSilent) {
  PRSIM_CHECK(true);
  PRSIM_CHECK_EQ(1, 1);
  PRSIM_CHECK_NE(1, 2);
  PRSIM_CHECK_LT(1, 2);
  PRSIM_CHECK_LE(2, 2);
  PRSIM_CHECK_GT(3, 2);
  PRSIM_CHECK_GE(3, 3);
  PRSIM_DCHECK(true);
  SUCCEED();
}

TEST(LoggingTest, FatalAlwaysAborts) {
  SetLogThreshold(LogLevel::kFatal);
  EXPECT_DEATH(PRSIM_LOG(Fatal) << "goodbye", "goodbye");
  SetLogThreshold(LogLevel::kInfo);
}

}  // namespace
}  // namespace prsim
