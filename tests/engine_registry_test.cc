// Tests for the unified engine API: EngineConfig parsing/validation, the
// string-keyed EngineRegistry, the grown SingleSourceSimRank surface
// (QueryTopK / QueryPair / CloneWithSeed / QueryCost), TopK semantics, and
// the generalized BatchQuery.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "core/batch_query.h"
#include "core/engine_config.h"
#include "core/engine_registry.h"
#include "core/prsim.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::MakeRandomDigraph;
using testing::MakeSharedParent;

/// The quickstart citation graph: a 12-node DAG with meaningful SimRank
/// structure (nodes 0 and 1 are surveys with overlapping citers).
Graph MakeCitationGraph() {
  return BuildGraph(12, {{2, 0}, {3, 0}, {4, 0}, {4, 1}, {5, 1}, {6, 1},
                         {7, 2}, {8, 2}, {9, 3}, {10, 5}, {11, 5}, {7, 3}})
      .ValueOrDie();
}

/// Small per-engine overrides that keep the round-trip test fast (the Monte
/// Carlo default of 10000 pair walks per node is overkill on 12 nodes).
std::string RoundTripParams(const std::string& name) {
  if (name == "montecarlo") return "samples=500";
  if (name == "tsf") return "rg=60,rq=10";
  return "";
}

// ---------------------------------------------------------------------------
// EngineConfig
// ---------------------------------------------------------------------------

TEST(EngineConfigTest, ParsesKeyValueList) {
  auto config = EngineConfig::Parse("c=0.5,eps=0.2,paper_constants=true");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  double c = 0, eps = 0;
  bool paper = false;
  ASSERT_TRUE(config.ValueOrDie().GetDouble("c", &c).ok());
  ASSERT_TRUE(config.ValueOrDie().GetDouble("eps", &eps).ok());
  ASSERT_TRUE(config.ValueOrDie().GetBool("paper_constants", &paper).ok());
  EXPECT_DOUBLE_EQ(c, 0.5);
  EXPECT_DOUBLE_EQ(eps, 0.2);
  EXPECT_TRUE(paper);
  EXPECT_EQ(config.ValueOrDie().ToString(),
            "c=0.5,eps=0.2,paper_constants=true");
}

TEST(EngineConfigTest, EmptyStringParsesToEmptyConfig) {
  auto config = EngineConfig::Parse("");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config.ValueOrDie().empty());
}

TEST(EngineConfigTest, AbsentKeyLeavesDefaultUntouched) {
  auto config = EngineConfig::Parse("c=0.4").ValueOrDie();
  double eps = 0.125;
  ASSERT_TRUE(config.GetDouble("eps", &eps).ok());
  EXPECT_DOUBLE_EQ(eps, 0.125);
}

TEST(EngineConfigTest, DuplicateKeyIsAnError) {
  auto config = EngineConfig::Parse("eps=0.1,eps=0.2");
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.status().message().find("duplicate"), std::string::npos);
}

TEST(EngineConfigTest, SegmentWithoutEqualsIsAnError) {
  EXPECT_FALSE(EngineConfig::Parse("eps").ok());
  EXPECT_FALSE(EngineConfig::Parse("c=0.5,bare").ok());
  EXPECT_FALSE(EngineConfig::Parse("=5").ok());
}

TEST(EngineConfigTest, MalformedValuesAreTypedErrors) {
  auto config = EngineConfig::Parse("eps=abc,j0=-3,flag=maybe").ValueOrDie();
  double eps = 0;
  uint32_t j0 = 0;
  bool flag = false;
  EXPECT_FALSE(config.GetDouble("eps", &eps).ok());
  EXPECT_FALSE(config.GetUint32("j0", &j0).ok());
  EXPECT_FALSE(config.GetBool("flag", &flag).ok());
}

TEST(EngineConfigTest, ExpectOnlyFlagsUnknownKeys) {
  auto config = EngineConfig::Parse("c=0.5,bogus=1").ValueOrDie();
  const Status st = config.ExpectOnly({"c", "eps"});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("bogus"), std::string::npos);
  EXPECT_TRUE(config.ExpectOnly({"c", "bogus"}).ok());
}

TEST(EngineConfigTest, RangeCheckedReaders) {
  auto config = EngineConfig::Parse("eps=-0.5,c=1.5").ValueOrDie();
  double eps = 0.1, c = 0.6;
  EXPECT_FALSE(config.GetPositiveDouble("eps", &eps).ok());
  EXPECT_FALSE(config.GetOpenInterval("c", 0.0, 1.0, &c).ok());
  // Untouched on error: callers can keep reporting with their defaults.
  EXPECT_DOUBLE_EQ(eps, 0.1);
  EXPECT_DOUBLE_EQ(c, 0.6);
}

// ---------------------------------------------------------------------------
// EngineRegistry
// ---------------------------------------------------------------------------

TEST(EngineRegistryTest, ListsAllEightEngines) {
  const auto names = EngineRegistry::Global().Names();
  const std::set<std::string> got(names.begin(), names.end());
  const std::set<std::string> want = {"prsim",  "probesim",   "reads",
                                      "sling",  "topsim",     "tsf",
                                      "montecarlo", "powermethod"};
  EXPECT_EQ(got, want);
}

TEST(EngineRegistryTest, FindIsCaseInsensitiveAndMatchesDisplayName) {
  const EngineRegistry& registry = EngineRegistry::Global();
  for (const std::string& name : registry.Names()) {
    const EngineInfo* info = registry.Find(name);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(registry.Find(info->display_name), info)
        << "display name '" << info->display_name << "' must resolve";
    EXPECT_FALSE(info->config_keys.empty());
    EXPECT_FALSE(info->paper_ref.empty());
  }
  EXPECT_EQ(registry.Find("no-such-engine"), nullptr);
}

TEST(EngineRegistryTest, UnknownEngineNameErrors) {
  Graph g = MakeSharedParent();
  auto result = EngineRegistry::Global().Create("simrankpp", g, "");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EngineRegistryTest, UnknownConfigKeyErrors) {
  Graph g = MakeSharedParent();
  for (const std::string& name : EngineRegistry::Global().Names()) {
    auto result = EngineRegistry::Global().Create(name, g, "frobnicate=1");
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_NE(result.status().message().find("frobnicate"),
              std::string::npos)
        << name;
  }
}

TEST(EngineRegistryTest, OutOfRangeValuesError) {
  Graph g = MakeSharedParent();
  const EngineRegistry& registry = EngineRegistry::Global();
  EXPECT_FALSE(registry.Create("prsim", g, "eps=-0.5").ok());
  EXPECT_FALSE(registry.Create("prsim", g, "eps=0").ok());
  EXPECT_FALSE(registry.Create("prsim", g, "c=1.5").ok());
  EXPECT_FALSE(registry.Create("prsim", g, "c=0").ok());
  EXPECT_FALSE(registry.Create("probesim", g, "eps=-1").ok());
  EXPECT_FALSE(registry.Create("reads", g, "r=0").ok());
  EXPECT_FALSE(registry.Create("tsf", g, "rg=0").ok());
  EXPECT_FALSE(registry.Create("montecarlo", g, "samples=0").ok());
  EXPECT_FALSE(registry.Create("prsim", g, "eps=abc").ok());
}

TEST(EngineRegistryTest, EveryEngineRoundTripsOnTinyGraph) {
  Graph g = MakeCitationGraph();
  const NodeId source = 0;
  for (const std::string& name : EngineRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    auto result =
        EngineRegistry::Global().Create(name, g, RoundTripParams(name));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::unique_ptr<SingleSourceSimRank> engine =
        std::move(result).ValueOrDie();
    const EngineInfo* info = EngineRegistry::Global().Find(name);
    EXPECT_EQ(engine->name(), info->display_name);
    EXPECT_EQ(engine->IsIndexBased(), info->index_based);
    ASSERT_TRUE(engine->Preprocess().ok());

    const ScoreList scores = engine->Query(source);
    ASSERT_FALSE(scores.empty());
    EXPECT_DOUBLE_EQ(ScoreOf(scores, source), 1.0) << "s(u,u) must be 1";
    for (const auto& [v, s] : scores) {
      EXPECT_GE(s, 0.0) << "node " << v;
      EXPECT_LE(s, 1.0 + 1e-9) << "node " << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Grown SingleSourceSimRank surface
// ---------------------------------------------------------------------------

TEST(QuerySurfaceTest, QueryTopKMatchesQueryPlusTopK) {
  Graph g = MakeCitationGraph();
  auto engine = EngineRegistry::Global()
                    .Create("powermethod", g, "")
                    .MoveValueUnsafe();
  ASSERT_TRUE(engine->Preprocess().ok());
  const ScoreList expected = TopK(engine->Query(0), 3, 0);
  EXPECT_EQ(engine->QueryTopK(0, 3), expected);
}

TEST(QuerySurfaceTest, QueryPairDefaultsToSingleSourceExtraction) {
  Graph g = MakeSharedParent();
  // SLING queries are deterministic index joins, so the default QueryPair
  // (full query + extraction) is reproducible.
  auto engine =
      EngineRegistry::Global().Create("sling", g, "eps=0.01").MoveValueUnsafe();
  ASSERT_TRUE(engine->Preprocess().ok());
  const double via_query = ScoreOf(engine->Query(0), 1);
  EXPECT_DOUBLE_EQ(engine->QueryPair(0, 1), via_query);
  EXPECT_DOUBLE_EQ(engine->QueryPair(0, 0), 1.0);
}

TEST(QuerySurfaceTest, PowerMethodQueryPairIsExactLookup) {
  Graph g = MakeSharedParent();
  auto engine = EngineRegistry::Global()
                    .Create("powermethod", g, "")
                    .MoveValueUnsafe();
  ASSERT_TRUE(engine->Preprocess().ok());
  // s(0, 1) = c * s(2, 2) = c = 0.6 on the shared-parent gadget.
  EXPECT_NEAR(engine->QueryPair(0, 1), 0.6, 1e-9);
}

TEST(QuerySurfaceTest, MonteCarloQueryPairUsesNativeEstimator) {
  Graph g = MakeSharedParent();
  auto engine = EngineRegistry::Global()
                    .Create("montecarlo", g, "samples=20000,seed=5")
                    .MoveValueUnsafe();
  EXPECT_NEAR(engine->QueryPair(0, 1), 0.6, 0.02);
  EXPECT_DOUBLE_EQ(engine->QueryPair(1, 1), 1.0);
}

TEST(QuerySurfaceTest, QueryCostIsPopulated) {
  Graph g = MakeCitationGraph();
  auto prsim = EngineRegistry::Global()
                   .Create("prsim", g, "eps=0.1,seed=1")
                   .MoveValueUnsafe();
  ASSERT_TRUE(prsim->Preprocess().ok());
  prsim->Query(0);
  EXPECT_GT(prsim->last_query_cost().walks, 0u);

  auto sling = EngineRegistry::Global()
                   .Create("sling", g, "eps=0.1,seed=1")
                   .MoveValueUnsafe();
  ASSERT_TRUE(sling->Preprocess().ok());
  sling->Query(0);
  EXPECT_GT(sling->last_query_cost().index_tuples_read, 0u);
  EXPECT_EQ(sling->last_query_cost().walks, 0u);  // deterministic join
}

TEST(QuerySurfaceTest, CloneWithSeedAnswersWithoutRePreprocessing) {
  Graph g = MakeCitationGraph();
  for (const std::string& name : EngineRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    auto leader = EngineRegistry::Global()
                      .Create(name, g, RoundTripParams(name))
                      .MoveValueUnsafe();
    ASSERT_TRUE(leader->Preprocess().ok());
    // The clone must be queryable immediately: index-based engines would
    // PRSIM_CHECK-fail here if the built index were not carried over.
    std::unique_ptr<SingleSourceSimRank> clone = leader->CloneWithSeed(999);
    ASSERT_NE(clone, nullptr);
    const ScoreList scores = clone->Query(0);
    EXPECT_DOUBLE_EQ(ScoreOf(scores, 0), 1.0);
  }
}

TEST(QuerySurfaceTest, PowerMethodCloneIsBitIdentical) {
  Graph g = MakeCitationGraph();
  auto leader = EngineRegistry::Global()
                    .Create("powermethod", g, "")
                    .MoveValueUnsafe();
  ASSERT_TRUE(leader->Preprocess().ok());
  auto clone = leader->CloneWithSeed(7);
  EXPECT_EQ(clone->Query(3), leader->Query(3));
}

// ---------------------------------------------------------------------------
// TopK semantics
// ---------------------------------------------------------------------------

TEST(TopKTest, BreaksTiesByAscendingNodeId) {
  const ScoreList scores = {{9, 0.5}, {2, 0.5}, {5, 0.5}, {1, 0.9}, {0, 1.0}};
  const ScoreList top = TopK(scores, 3, /*source=*/0);
  const ScoreList expected = {{1, 0.9}, {2, 0.5}, {5, 0.5}};
  EXPECT_EQ(top, expected);
}

TEST(TopKTest, KLargerThanPoolReturnsEverythingButSource) {
  const ScoreList scores = {{0, 1.0}, {4, 0.2}, {2, 0.7}};
  const ScoreList top = TopK(scores, 10, /*source=*/0);
  const ScoreList expected = {{2, 0.7}, {4, 0.2}};
  EXPECT_EQ(top, expected);
}

TEST(TopKTest, KEqualToPoolKeepsOrderStable) {
  const ScoreList scores = {{3, 0.3}, {1, 0.3}, {2, 0.8}};
  const ScoreList top = TopK(scores, 3, /*source=*/9);
  const ScoreList expected = {{2, 0.8}, {1, 0.3}, {3, 0.3}};
  EXPECT_EQ(top, expected);
}

TEST(TopKTest, KZeroIsEmpty) {
  const ScoreList scores = {{1, 0.5}, {2, 0.4}};
  EXPECT_TRUE(TopK(scores, 0, 1).empty());
}

// ---------------------------------------------------------------------------
// Generalized BatchQuery
// ---------------------------------------------------------------------------

TEST(BatchQueryTest, GenericPathMatchesPRSimOverloadBitForBit) {
  Graph g = MakeRandomDigraph(300, 1500, 21);
  PRSimOptions options;
  options.eps = 0.2;
  options.seed = 77;
  PRSim leader(g, options);
  ASSERT_TRUE(leader.Preprocess().ok());
  const std::vector<NodeId> sources = {3, 50, 3, 120, 299};

  // The historical positional-seed scheme (PRSim-specific overload) and the
  // CloneWithSeed-based generic path must agree exactly.
  const auto via_overload = BatchQuery(g, leader, options, sources, 2);
  const auto via_generic = BatchQuery(leader, sources, 3);
  ASSERT_EQ(via_overload.size(), via_generic.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(via_overload[i], via_generic[i]) << "source index " << i;
  }
  // Seeds are positional, so a duplicated source re-sampled at another
  // position gives a fresh (thread-count independent) estimate, while
  // repeating the whole batch reproduces it exactly.
  const auto repeat = BatchQuery(leader, sources, 1);
  EXPECT_EQ(via_generic[2], repeat[2]);
}

TEST(BatchQueryTest, WorksForIndexFreeAndBaselineEngines) {
  Graph g = MakeCitationGraph();
  for (const std::string& name : {"probesim", "reads", "montecarlo"}) {
    SCOPED_TRACE(name);
    auto leader = EngineRegistry::Global()
                      .Create(name, g, RoundTripParams(name))
                      .MoveValueUnsafe();
    ASSERT_TRUE(leader->Preprocess().ok());
    const std::vector<NodeId> sources = {0, 4, 7};
    const auto serial = BatchQuery(*leader, sources, 1);
    const auto parallel = BatchQuery(*leader, sources, 3);
    ASSERT_EQ(serial.size(), 3u);
    for (size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << "thread-count invariance";
      EXPECT_DOUBLE_EQ(ScoreOf(serial[i], sources[i]), 1.0);
    }
  }
}

}  // namespace
}  // namespace prsim
