// Cross-formulation property tests, parameterized over decay factors and
// graph families.
//
// The deepest invariant in the paper is Equation (6):
//
//   s(u,v) = 1/(1-sqrt c)^2 * sum_l sum_w pi_l(u,w) pi_l(v,w) eta(w)
//
// Here it is assembled from three *independent* dense computations — the
// l-hop RPPR recurrence, the coupled pair-chain eta, and compared against
// two more independent formulations: the power-method fixed point and the
// pair-walk meeting probability. Any systematic error in walk semantics,
// dangling handling, or level accounting breaks the equality.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "baselines/power_method.h"
#include "core/prsim.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::DenseLevelRppr;
using testing::ExactEta;
using testing::ExactMeetingSimRank;
using testing::MakeRandomDigraph;

class FormulationEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t, bool>> {};

TEST_P(FormulationEquivalenceTest, Equation6MatchesPowerMethodAndMeeting) {
  const auto [c, seed, undirected] = GetParam();
  Graph g = MakeRandomDigraph(14, 60, seed, undirected);
  const uint32_t levels = 50;

  // Piece 1: dense l-hop RPPR.
  const auto pi = DenseLevelRppr(g, c, levels);
  // Piece 2: exact eta from the coupled pair chain.
  const auto eta = ExactEta(g, c, levels);
  // Reference A: power method on the SimRank recurrence.
  PowerMethodOptions pm;
  pm.c = c;
  pm.iterations = 60;
  PowerMethodSimRank oracle(g, pm);
  oracle.Preprocess().Abort();
  // Reference B: pair-walk meeting probability.
  const auto meeting = ExactMeetingSimRank(g, c, levels);

  const double sqrt_c = std::sqrt(c);
  const double inv = 1.0 / ((1 - sqrt_c) * (1 - sqrt_c));
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v = 0; v < g.n(); ++v) {
      if (u == v) continue;
      double assembled = 0;
      for (uint32_t l = 0; l <= levels; ++l) {
        for (NodeId w = 0; w < g.n(); ++w) {
          assembled += pi[l][u][w] * pi[l][v][w] * eta[w];
        }
      }
      assembled *= inv;
      EXPECT_NEAR(assembled, oracle.SimRank(u, v), 2e-4)
          << "u=" << u << " v=" << v << " c=" << c;
      EXPECT_NEAR(assembled, meeting[u][v], 2e-4)
          << "u=" << u << " v=" << v << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DecaysAndGraphs, FormulationEquivalenceTest,
    ::testing::Combine(::testing::Values(0.4, 0.6, 0.8),
                       ::testing::Values(101u, 102u),
                       ::testing::Bool()),
    [](const auto& info) {
      // NOTE: no structured bindings here — the preprocessor would split
      // INSTANTIATE_TEST_SUITE_P's arguments at the commas in brackets.
      const double c = std::get<0>(info.param);
      const uint64_t seed = std::get<1>(info.param);
      const bool undirected = std::get<2>(info.param);
      return "c" + std::to_string(static_cast<int>(c * 10)) + "_seed" +
             std::to_string(seed) + (undirected ? "_undirected" : "_directed");
    });

// PRSim end-to-end across decay factors: the full pipeline must track the
// oracle for every supported c, not just the default 0.6.
class PRSimDecayTest : public ::testing::TestWithParam<double> {};

TEST_P(PRSimDecayTest, AccuracyAcrossDecayFactors) {
  const double c = GetParam();
  Graph g = MakeRandomDigraph(100, 600, 55);
  PowerMethodOptions pm;
  pm.c = c;
  pm.iterations = 80;  // slower convergence at high c
  PowerMethodSimRank oracle(g, pm);
  oracle.Preprocess().Abort();

  PRSimOptions options;
  options.c = c;
  options.eps = 0.08;
  options.alpha = 8;
  options.seed = 77;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  for (NodeId u : {NodeId(0), NodeId(31)}) {
    ScoreList result = algo.Query(u);
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_NEAR(ScoreOf(result, v), oracle.SimRank(u, v), 3 * options.eps)
          << "c=" << c << " u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Decays, PRSimDecayTest,
                         ::testing::Values(0.3, 0.5, 0.6, 0.8),
                         [](const auto& info) {
                           return "c" + std::to_string(static_cast<int>(
                                            info.param * 10));
                         });

// Monotonicity property: adding a shared in-neighbor never decreases the
// similarity of the pair it feeds (checked exactly via the oracle).
TEST(StructuralPropertyTest, SharedParentIncreasesSimilarity) {
  for (uint64_t seed : {201u, 202u, 203u}) {
    Graph base = MakeRandomDigraph(30, 90, seed);
    auto edges = base.ToEdges();
    // Pick u, v without a shared parent yet; wire node 29 into both.
    edges.emplace_back(29, 0);
    edges.emplace_back(29, 1);
    Graph extended = BuildGraph(30, edges).ValueOrDie();

    PowerMethodOptions pm;
    PowerMethodSimRank before(base, pm), after(extended, pm);
    before.Preprocess().Abort();
    after.Preprocess().Abort();
    EXPECT_GE(after.SimRank(0, 1), before.SimRank(0, 1) - 1e-9)
        << "seed=" << seed;
  }
}

// Scale-freeness of the estimate: every algorithm estimate must lie in
// [0, 1] up to eps noise (SimRank is a probability).
TEST(StructuralPropertyTest, EstimatesBoundedByOne) {
  Graph g = MakeRandomDigraph(120, 900, 204);
  PRSimOptions options;
  options.eps = 0.1;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  for (NodeId u = 0; u < 10; ++u) {
    for (const auto& [v, score] : algo.Query(u)) {
      EXPECT_LE(score, 1.0 + 3 * options.eps) << u << " " << v;
    }
  }
}

}  // namespace
}  // namespace prsim
