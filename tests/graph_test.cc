// Unit tests for src/graph: CSR construction, the in-degree-sorted
// out-adjacency invariant, builder policies, and I/O round-trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "graph/builder.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "test_util.h"
#include "util/rng.h"

namespace prsim {
namespace {

using testing::MakeCycle;
using testing::MakeRandomDigraph;

TEST(GraphTest, EmptyGraph) {
  Graph g = Graph::FromEdges(0, {}).ValueOrDie();
  EXPECT_EQ(g.n(), 0u);
  EXPECT_EQ(g.m(), 0u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphTest, NodesWithoutEdges) {
  Graph g = Graph::FromEdges(5, {}).ValueOrDie();
  EXPECT_EQ(g.n(), 5u);
  EXPECT_EQ(g.m(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.OutDegree(v), 0u);
    EXPECT_EQ(g.InDegree(v), 0u);
    EXPECT_TRUE(g.OutNeighbors(v).empty());
    EXPECT_TRUE(g.InNeighbors(v).empty());
  }
  EXPECT_EQ(g.CountDanglingNodes(), 5u);
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  auto result = Graph::FromEdges(3, {{0, 3}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, DegreesAndAdjacency) {
  // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0
  Graph g = Graph::FromEdges(3, {{0, 1}, {0, 2}, {1, 2}, {2, 0}}).ValueOrDie();
  EXPECT_EQ(g.m(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.InDegree(0), 1u);
  std::set<NodeId> outs(g.OutNeighbors(0).begin(), g.OutNeighbors(0).end());
  EXPECT_EQ(outs, (std::set<NodeId>{1, 2}));
  std::set<NodeId> ins(g.InNeighbors(2).begin(), g.InNeighbors(2).end());
  EXPECT_EQ(ins, (std::set<NodeId>{0, 1}));
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphTest, OutAdjacencySortedByTargetInDegree) {
  // In-degrees: 1:1, 2:2, 3:3 (from extra feeders), node 0 points at all.
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}, {4, 2},
                             {4, 3}, {5, 3}};
  Graph g = Graph::FromEdges(6, edges).ValueOrDie();
  auto outs = g.OutNeighbors(0);
  auto degs = g.OutNeighborInDegrees(0);
  ASSERT_EQ(outs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(degs.begin(), degs.end()));
  EXPECT_EQ(outs[0], 1u);  // in-degree 1
  EXPECT_EQ(outs[1], 2u);  // in-degree 2
  EXPECT_EQ(outs[2], 3u);  // in-degree 3
  for (size_t i = 0; i < outs.size(); ++i) {
    EXPECT_EQ(degs[i], g.InDegree(outs[i]));
  }
}

TEST(GraphTest, SortInvariantHoldsOnRandomGraphs) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Graph g = MakeRandomDigraph(200, 2000, seed);
    ASSERT_TRUE(g.Validate().ok());
    for (NodeId v = 0; v < g.n(); ++v) {
      auto degs = g.OutNeighborInDegrees(v);
      EXPECT_TRUE(std::is_sorted(degs.begin(), degs.end()));
    }
  }
}

TEST(GraphTest, ToEdgesRoundTrip) {
  Graph g = MakeRandomDigraph(50, 300, 7);
  std::vector<Edge> edges = g.ToEdges();
  Graph g2 = Graph::FromEdges(g.n(), edges).ValueOrDie();
  EXPECT_EQ(g2.m(), g.m());
  std::vector<Edge> e1 = g.ToEdges(), e2 = g2.ToEdges();
  std::sort(e1.begin(), e1.end());
  std::sort(e2.begin(), e2.end());
  EXPECT_EQ(e1, e2);
}

TEST(GraphTest, MemoryBytesPositiveAndScales) {
  Graph small = MakeCycle(10);
  Graph large = MakeCycle(1000);
  EXPECT_GT(small.MemoryBytes(), 0u);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

TEST(GraphTest, AverageDegree) {
  Graph g = MakeCycle(10);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(GraphTest, DuplicateEdgesKeptByRawConstructor) {
  Graph g = Graph::FromEdges(2, {{0, 1}, {0, 1}}).ValueOrDie();
  EXPECT_EQ(g.m(), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
}

// --------------------------------------------------------------------------
// GraphBuilder
// --------------------------------------------------------------------------

TEST(BuilderTest, Deduplicates) {
  Graph g = BuildGraph(0, {{0, 1}, {0, 1}, {1, 2}}).ValueOrDie();
  EXPECT_EQ(g.m(), 2u);
}

TEST(BuilderTest, RemovesSelfLoops) {
  Graph g = BuildGraph(0, {{0, 0}, {0, 1}, {1, 1}}).ValueOrDie();
  EXPECT_EQ(g.m(), 1u);
  EXPECT_EQ(g.OutDegree(0), 1u);
}

TEST(BuilderTest, KeepsSelfLoopsWhenAsked) {
  BuildOptions options;
  options.remove_self_loops = false;
  Graph g = BuildGraph(0, {{0, 0}, {0, 1}}, options).ValueOrDie();
  EXPECT_EQ(g.m(), 2u);
}

TEST(BuilderTest, UndirectedSymmetrizes) {
  BuildOptions options;
  options.undirected = true;
  Graph g = BuildGraph(0, {{0, 1}, {1, 2}}, options).ValueOrDie();
  EXPECT_EQ(g.m(), 4u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  // Symmetric: every edge has its reverse.
  for (NodeId v = 0; v < g.n(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      auto ins = g.InNeighbors(v);
      EXPECT_NE(std::find(ins.begin(), ins.end(), w), ins.end());
    }
  }
}

TEST(BuilderTest, InfersNodeCountFromMaxId) {
  Graph g = BuildGraph(0, {{3, 9}}).ValueOrDie();
  EXPECT_EQ(g.n(), 10u);
}

TEST(BuilderTest, EnsureNodeCountExtends) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.EnsureNodeCount(20);
  Graph g = b.Build().ValueOrDie();
  EXPECT_EQ(g.n(), 20u);
}

TEST(BuilderTest, CompactIdsRenumbersDensely) {
  BuildOptions options;
  options.compact_ids = true;
  options.deduplicate = false;
  Graph g = BuildGraph(0, {{100, 5000}, {5000, 9999}}, options).ValueOrDie();
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 2u);
}

TEST(BuilderTest, BuilderAccumulatesEdges) {
  GraphBuilder b;
  b.Reserve(10);
  b.AddEdge(0, 1);
  b.AddEdges({{1, 2}, {2, 3}});
  EXPECT_EQ(b.edge_count(), 3u);
  Graph g = b.Build().ValueOrDie();
  EXPECT_EQ(g.m(), 3u);
}

// --------------------------------------------------------------------------
// I/O
// --------------------------------------------------------------------------

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, ParseEdgeListSkipsCommentsAndBlanks) {
  auto edges = ParseEdgeListText(
                   "# SNAP comment\n"
                   "% matrix-market comment\n"
                   "\n"
                   "0\t1\n"
                   "  2 3\n"
                   "4,5\n")
                   .ValueOrDie();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], Edge(0, 1));
  EXPECT_EQ(edges[1], Edge(2, 3));
  EXPECT_EQ(edges[2], Edge(4, 5));
}

TEST_F(IoTest, ParseRejectsMalformedLine) {
  auto result = ParseEdgeListText("0 1\nnot an edge\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(IoTest, LoadMissingFileFails) {
  auto result = LoadEdgeListText(Path("missing.txt"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(IoTest, TextRoundTrip) {
  Graph g = testing::MakeRandomDigraph(60, 400, 3);
  ASSERT_TRUE(SaveEdgeListText(g, Path("g.txt")).ok());
  Graph loaded = LoadGraphText(Path("g.txt")).ValueOrDie();
  EXPECT_EQ(loaded.n(), g.n());
  EXPECT_EQ(loaded.m(), g.m());
  auto e1 = g.ToEdges(), e2 = loaded.ToEdges();
  std::sort(e1.begin(), e1.end());
  std::sort(e2.begin(), e2.end());
  EXPECT_EQ(e1, e2);
}

TEST_F(IoTest, BinaryRoundTrip) {
  Graph g = testing::MakeRandomDigraph(80, 600, 4);
  ASSERT_TRUE(GraphIO::SaveBinary(g, Path("g.bin")).ok());
  Graph loaded = GraphIO::LoadBinary(Path("g.bin")).ValueOrDie();
  EXPECT_EQ(loaded.n(), g.n());
  EXPECT_EQ(loaded.m(), g.m());
  EXPECT_TRUE(loaded.Validate().ok());
  auto e1 = g.ToEdges(), e2 = loaded.ToEdges();
  EXPECT_EQ(e1, e2);  // binary preserves exact ordering
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  {
    std::ofstream out(Path("junk.bin"), std::ios::binary);
    out << "this is not a graph";
  }
  auto result = GraphIO::LoadBinary(Path("junk.bin"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST_F(IoTest, BinaryRejectsTruncated) {
  Graph g = MakeCycle(50);
  ASSERT_TRUE(GraphIO::SaveBinary(g, Path("full.bin")).ok());
  // Truncate the file to half.
  const auto size = std::filesystem::file_size(Path("full.bin"));
  std::filesystem::resize_file(Path("full.bin"), size / 2);
  auto result = GraphIO::LoadBinary(Path("full.bin"));
  ASSERT_FALSE(result.ok());
}

}  // namespace
}  // namespace prsim
