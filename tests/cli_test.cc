// End-to-end tests for the prsim_cli tool: generate -> stats -> index ->
// query pipelines through the real binary.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace prsim {
namespace {

#ifndef PRSIM_CLI_PATH
#error "PRSIM_CLI_PATH must be defined by the build"
#endif

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Runs the CLI with `args`, captures stdout, returns the exit code.
  int Run(const std::string& args, std::string* output = nullptr) {
    const std::string command =
        std::string(PRSIM_CLI_PATH) + " " + args + " 2>/dev/null";
    FILE* pipe = popen(command.c_str(), "r");
    if (pipe == nullptr) return -1;
    char buffer[4096];
    std::string captured;
    while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      captured += buffer;
    }
    if (output != nullptr) *output = captured;
    const int status = pclose(pipe);
    return WEXITSTATUS(status);
  }

  std::filesystem::path dir_;
};

TEST_F(CliTest, NoArgsShowsUsage) { EXPECT_EQ(Run(""), 2); }

TEST_F(CliTest, UnknownCommandFails) { EXPECT_EQ(Run("frobnicate"), 2); }

TEST_F(CliTest, GenerateStatsPipeline) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --n 2000 --degree 6 --gamma 2 --seed 9"),
            0);
  std::string stats;
  ASSERT_EQ(Run("stats --graph " + Path("g.txt"), &stats), 0);
  EXPECT_NE(stats.find("n            2000"), std::string::npos) << stats;
  EXPECT_NE(stats.find("gamma out/in"), std::string::npos);
}

TEST_F(CliTest, GenerateBinaryFormat) {
  ASSERT_EQ(Run("generate --out " + Path("g.bin") +
                " --model er --n 1000 --degree 5"),
            0);
  std::string stats;
  ASSERT_EQ(Run("stats --graph " + Path("g.bin"), &stats), 0);
  EXPECT_NE(stats.find("n            1000"), std::string::npos);
}

TEST_F(CliTest, IndexAndQueryPipeline) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --n 3000 --degree 8 --gamma 1.8 --seed 4"),
            0);
  std::string index_out;
  ASSERT_EQ(Run("index --graph " + Path("g.txt") + " --out " +
                    Path("g.idx") + " --eps 0.1",
                &index_out),
            0);
  EXPECT_NE(index_out.find("built index"), std::string::npos);

  std::string query_out;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") + " --index " +
                    Path("g.idx") + " --source 11 --k 5",
                &query_out),
            0);
  EXPECT_NE(query_out.find("loaded index"), std::string::npos);
  EXPECT_NE(query_out.find("query answered"), std::string::npos);
}

TEST_F(CliTest, QueryWithoutIndexPreprocessesInProcess) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model ba --n 1500 --degree 4"),
            0);
  std::string query_out;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") + " --source 3 --k 3",
                &query_out),
            0);
  EXPECT_NE(query_out.find("preprocessed in"), std::string::npos);
}

TEST_F(CliTest, MissingRequiredFlagFails) {
  EXPECT_EQ(Run("stats"), 2);
  EXPECT_EQ(Run("index --graph /nonexistent"), 2);
  EXPECT_EQ(Run("query --graph /nonexistent --source 0"), 1);
}

TEST_F(CliTest, OutOfRangeSourceFails) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") + " --n 1000 --degree 4"),
            0);
  EXPECT_EQ(Run("query --graph " + Path("g.txt") + " --source 99999"), 2);
}

}  // namespace
}  // namespace prsim
