// End-to-end tests for the prsim_cli tool: generate -> stats -> index ->
// query pipelines through the real binary.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace prsim {
namespace {

#ifndef PRSIM_CLI_PATH
#error "PRSIM_CLI_PATH must be defined by the build"
#endif

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Runs the CLI with `args`, captures stdout, returns the exit code.
  int Run(const std::string& args, std::string* output = nullptr) {
    const std::string command =
        std::string(PRSIM_CLI_PATH) + " " + args + " 2>/dev/null";
    FILE* pipe = popen(command.c_str(), "r");
    if (pipe == nullptr) return -1;
    char buffer[4096];
    std::string captured;
    while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      captured += buffer;
    }
    if (output != nullptr) *output = captured;
    const int status = pclose(pipe);
    return WEXITSTATUS(status);
  }

  std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  /// Extracts the top-k result lines ("<node> <score>") from query output,
  /// skipping the timing lines whose wording varies run to run.
  std::vector<std::string> ScoreLines(const std::string& output) {
    std::vector<std::string> lines;
    std::istringstream stream(output);
    std::string line;
    while (std::getline(stream, line)) {
      if (!line.empty() && std::isdigit(static_cast<unsigned char>(line[0]))) {
        lines.push_back(line);
      }
    }
    return lines;
  }

  /// Extracts the "score\t<node>\t<value>" rows of --format tsv output.
  std::vector<std::string> ScoreTsvLines(const std::string& output) {
    std::vector<std::string> lines;
    std::istringstream stream(output);
    std::string line;
    while (std::getline(stream, line)) {
      if (line.rfind("score\t", 0) == 0) lines.push_back(line);
    }
    return lines;
  }

  /// A background CLI process (the serve transports) with stdin held open
  /// on a pipe and stdout/stderr captured to files, so tests can deliver
  /// signals and then assert on the shutdown banners.
  struct Spawned {
    pid_t pid = -1;
    int stdin_fd = -1;  // write end of the child's stdin; close for EOF
    std::string stdout_path;
    std::string stderr_path;
  };

  Spawned Spawn(const std::string& args) {
    Spawned proc;
    proc.stdout_path = Path("spawn_" + std::to_string(spawn_count_) + ".out");
    proc.stderr_path = Path("spawn_" + std::to_string(spawn_count_) + ".err");
    ++spawn_count_;
    int stdin_pipe[2] = {-1, -1};
    if (::pipe(stdin_pipe) != 0) return proc;
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::dup2(stdin_pipe[0], STDIN_FILENO);
      ::close(stdin_pipe[0]);
      ::close(stdin_pipe[1]);
      const int out = ::open(proc.stdout_path.c_str(),
                             O_WRONLY | O_CREAT | O_TRUNC, 0644);
      const int err = ::open(proc.stderr_path.c_str(),
                             O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (out >= 0) ::dup2(out, STDOUT_FILENO);
      if (err >= 0) ::dup2(err, STDERR_FILENO);
      const std::string command = std::string(PRSIM_CLI_PATH) + " " + args;
      ::execl("/bin/sh", "sh", "-c", ("exec " + command).c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(stdin_pipe[0]);
    proc.pid = pid;
    proc.stdin_fd = stdin_pipe[1];
    return proc;
  }

  /// Polls the spawned server's stderr for the ready banner and returns the
  /// ephemeral port, or 0 on timeout (~10s).
  uint32_t WaitForListenPort(const Spawned& proc) {
    static constexpr char kBanner[] = "listening on 127.0.0.1:";
    for (int i = 0; i < 200; ++i) {
      const std::string text = ReadFile(proc.stderr_path);
      const auto pos = text.find(kBanner);
      if (pos != std::string::npos &&
          text.find('\n', pos) != std::string::npos) {
        return static_cast<uint32_t>(
            std::stoul(text.substr(pos + std::strlen(kBanner))));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return 0;
  }

  /// Polls the spawned process's captured output file until `needle` shows
  /// up (~10s); returns whether it did.
  bool WaitForOutput(const std::string& path, const std::string& needle) {
    for (int i = 0; i < 200; ++i) {
      if (ReadFile(path).find(needle) != std::string::npos) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  }

  /// Delivers `sig`, reaps the process, and returns its exit code
  /// (128 + signal if it died on the signal instead of handling it).
  int SignalAndWait(Spawned* proc, int sig) {
    if (proc->pid < 0) return -1;
    ::kill(proc->pid, sig);
    int status = 0;
    ::waitpid(proc->pid, &status, 0);
    proc->pid = -1;
    if (proc->stdin_fd >= 0) {
      ::close(proc->stdin_fd);
      proc->stdin_fd = -1;
    }
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

  /// Closes the child's stdin (EOF drives the stdin serve loop to drain),
  /// reaps the process, and returns its exit code.
  int CloseStdinAndWait(Spawned* proc) {
    if (proc->pid < 0) return -1;
    if (proc->stdin_fd >= 0) {
      ::close(proc->stdin_fd);
      proc->stdin_fd = -1;
    }
    int status = 0;
    ::waitpid(proc->pid, &status, 0);
    proc->pid = -1;
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

  std::filesystem::path dir_;
  int spawn_count_ = 0;
};

TEST_F(CliTest, NoArgsShowsUsage) { EXPECT_EQ(Run(""), 2); }

TEST_F(CliTest, UnknownCommandFails) { EXPECT_EQ(Run("frobnicate"), 2); }

TEST_F(CliTest, GenerateStatsPipeline) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --n 2000 --degree 6 --gamma 2 --seed 9"),
            0);
  std::string stats;
  ASSERT_EQ(Run("stats --graph " + Path("g.txt"), &stats), 0);
  EXPECT_NE(stats.find("n            2000"), std::string::npos) << stats;
  EXPECT_NE(stats.find("gamma out/in"), std::string::npos);
}

TEST_F(CliTest, GenerateBinaryFormat) {
  ASSERT_EQ(Run("generate --out " + Path("g.bin") +
                " --model er --n 1000 --degree 5"),
            0);
  std::string stats;
  ASSERT_EQ(Run("stats --graph " + Path("g.bin"), &stats), 0);
  EXPECT_NE(stats.find("n            1000"), std::string::npos);
}

TEST_F(CliTest, IndexAndQueryPipeline) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --n 3000 --degree 8 --gamma 1.8 --seed 4"),
            0);
  std::string index_out;
  ASSERT_EQ(Run("index --graph " + Path("g.txt") + " --out " +
                    Path("g.idx") + " --eps 0.1",
                &index_out),
            0);
  EXPECT_NE(index_out.find("built index"), std::string::npos);

  std::string query_out;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") + " --index " +
                    Path("g.idx") + " --source 11 --k 5",
                &query_out),
            0);
  EXPECT_NE(query_out.find("loaded index"), std::string::npos);
  EXPECT_NE(query_out.find("query answered"), std::string::npos);
}

TEST_F(CliTest, QueryWithoutIndexPreprocessesInProcess) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model ba --n 1500 --degree 4"),
            0);
  std::string query_out;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") + " --source 3 --k 3",
                &query_out),
            0);
  EXPECT_NE(query_out.find("preprocessed in"), std::string::npos);
}

TEST_F(CliTest, MissingRequiredFlagFails) {
  EXPECT_EQ(Run("stats"), 2);
  EXPECT_EQ(Run("index --graph /nonexistent"), 2);
  EXPECT_EQ(Run("query --graph /nonexistent --source 0"), 1);
}

// Regression: the old pairwise parser treated the boolean --undirected as a
// valued flag, consuming the next token and dropping every flag after it.
// The generated graph must be byte-identical no matter where --undirected
// appears, and the flags following it must take effect.
TEST_F(CliTest, UndirectedFlagPositionIndependent) {
  const std::string params = " --model er --n 50 --degree 4 --seed 1";
  ASSERT_EQ(
      Run("generate --undirected --out " + Path("first.txt") + params), 0);
  ASSERT_EQ(
      Run("generate --out " + Path("middle.txt") + " --undirected" + params),
      0);
  ASSERT_EQ(Run("generate --out " + Path("last.txt") + params +
                " --undirected"),
            0);

  const std::string first = ReadFile(Path("first.txt"));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, ReadFile(Path("middle.txt")));
  EXPECT_EQ(first, ReadFile(Path("last.txt")));

  // The flags after --undirected must not be swallowed: 50 nodes, not the
  // 100k-node Chung-Lu default.
  std::string stats;
  ASSERT_EQ(Run("stats --graph " + Path("first.txt"), &stats), 0);
  EXPECT_NE(stats.find("n            50"), std::string::npos) << stats;
}

TEST_F(CliTest, UnknownFlagFails) {
  EXPECT_EQ(Run("generate --out " + Path("g.txt") + " --frobnicate 1"), 2);
  // --eps is a real flag elsewhere but stats does not accept it.
  EXPECT_EQ(Run("stats --graph " + Path("g.txt") + " --eps 0.1"), 2);
}

TEST_F(CliTest, ValuedFlagWithoutValueFails) {
  EXPECT_EQ(Run("generate --out " + Path("g.txt") + " --seed"), 2);
  EXPECT_EQ(Run("stats --graph"), 2);
}

TEST_F(CliTest, DuplicateFlagFails) {
  EXPECT_EQ(Run("generate --out " + Path("g.txt") + " --seed 1 --seed 2"), 2);
}

TEST_F(CliTest, FlagTokenAsValueFails) {
  // A forgotten value must not consume the next --flag as its value.
  EXPECT_EQ(Run("generate --out --undirected --model er --n 50"), 2);
}

TEST_F(CliTest, OversizedNumericValueFails) {
  // Larger than uint32: must error, not truncate into a wrong-sized graph.
  EXPECT_EQ(Run("generate --out " + Path("g.txt") + " --n 5000000000"), 2);
  EXPECT_EQ(
      Run("generate --out " + Path("g.txt") + " --n 99999999999999999999999"),
      2);
}

TEST_F(CliTest, MalformedNumericValueFails) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") + " --n 500 --degree 4"),
            0);
  EXPECT_EQ(Run("query --graph " + Path("g.txt") + " --source abc"), 2);
  EXPECT_EQ(Run("generate --out " + Path("h.txt") + " --n -5"), 2);
  EXPECT_EQ(Run("generate --out " + Path("h.txt") + " --n 10x"), 2);
}

// End-to-end over the binary graph format: generate (.bin) -> index ->
// query, with a fixed seed; the top-k must be stable across runs.
TEST_F(CliTest, BinaryPipelineStableTopK) {
  ASSERT_EQ(Run("generate --out " + Path("g.bin") +
                " --n 2000 --degree 6 --gamma 1.9 --seed 7"),
            0);
  ASSERT_EQ(Run("index --graph " + Path("g.bin") + " --out " + Path("g.idx") +
                " --eps 0.1"),
            0);

  const std::string query = "query --graph " + Path("g.bin") + " --index " +
                            Path("g.idx") + " --source 5 --k 10 --seed 123";
  std::string run1, run2;
  ASSERT_EQ(Run(query, &run1), 0);
  ASSERT_EQ(Run(query, &run2), 0);

  const std::vector<std::string> topk1 = ScoreLines(run1);
  EXPECT_FALSE(topk1.empty()) << run1;
  EXPECT_EQ(topk1, ScoreLines(run2));
}

TEST_F(CliTest, OutOfRangeSourceFails) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") + " --n 1000 --degree 4"),
            0);
  EXPECT_EQ(Run("query --graph " + Path("g.txt") + " --source 99999"), 2);
}

TEST_F(CliTest, AlgosListsAllEightEngines) {
  std::string out;
  ASSERT_EQ(Run("algos", &out), 0);
  for (const char* name : {"prsim", "probesim", "reads", "sling", "topsim",
                           "tsf", "montecarlo", "powermethod"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name << "\n" << out;
  }
}

// Registry round-trip over the real binary: query --algo <name> must succeed
// for every engine the `algos` subcommand lists.
TEST_F(CliTest, QuerySucceedsForEveryRegisteredAlgo) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 400 --degree 5 --seed 2"),
            0);
  // Small per-engine params keep the heavyweight engines test-sized.
  const std::vector<std::pair<std::string, std::string>> algos = {
      {"prsim", ""},
      {"probesim", ""},
      {"reads", " --params r=20,t=5"},
      {"sling", " --params eps=0.25"},
      {"topsim", ""},
      {"tsf", " --params rg=30,rq=5"},
      {"montecarlo", " --params samples=100"},
      {"powermethod", " --params iterations=8"},
  };
  for (const auto& [algo, params] : algos) {
    std::string out;
    ASSERT_EQ(Run("query --graph " + Path("g.txt") +
                      " --source 7 --k 5 --algo " + algo + params,
                  &out),
              0)
        << algo;
    EXPECT_NE(out.find("query answered"), std::string::npos) << algo;
    EXPECT_NE(out.find("cost: algo="), std::string::npos) << algo;
  }
}

TEST_F(CliTest, UnknownAlgoFails) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") + " --n 300 --degree 4"),
            0);
  EXPECT_EQ(Run("query --graph " + Path("g.txt") +
                " --source 0 --algo simrankpp"),
            2);
}

TEST_F(CliTest, UnknownParamKeyFails) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") + " --n 300 --degree 4"),
            0);
  EXPECT_EQ(Run("query --graph " + Path("g.txt") +
                " --source 0 --params frobnicate=1"),
            2);
  EXPECT_EQ(Run("query --graph " + Path("g.txt") +
                " --source 0 --params eps"),
            2);
}

// Regression: out-of-range --eps / --c used to flow into the engines
// unchecked; they must be rejected with exit 2 before any preprocessing.
TEST_F(CliTest, OutOfRangeEpsAndCFail) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") + " --n 300 --degree 4"),
            0);
  const std::string query = "query --graph " + Path("g.txt") + " --source 0";
  EXPECT_EQ(Run(query + " --eps -0.5"), 2);
  EXPECT_EQ(Run(query + " --eps 0"), 2);
  EXPECT_EQ(Run(query + " --c 1.5"), 2);
  EXPECT_EQ(Run(query + " --c 0"), 2);
  const std::string index =
      "index --graph " + Path("g.txt") + " --out " + Path("g.idx");
  EXPECT_EQ(Run(index + " --eps -0.5"), 2);
  EXPECT_EQ(Run(index + " --c 1.5"), 2);
  EXPECT_EQ(Run(index + " --c 0"), 2);
}

// --threads 0 is a typo'd request (the default is expressed by omitting the
// flag), rejected with exit 2 on every subcommand that accepts --threads.
TEST_F(CliTest, ZeroThreadsRejected) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") + " --n 300 --degree 4"),
            0);
  EXPECT_EQ(Run("query --graph " + Path("g.txt") + " --source 0 --threads 0"),
            2);
  EXPECT_EQ(Run("index --graph " + Path("g.txt") + " --out " + Path("g.idx") +
                " --threads 0"),
            2);
  EXPECT_EQ(Run("serve --graph " + Path("g.txt") + " --stdin --threads 0"),
            2);
}

// `query --threads` now drives the intra-query sample grid; the chunked RNG
// discipline makes the scores bit-identical for every thread count.
TEST_F(CliTest, QueryScoresIndependentOfThreadCount) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --n 500 --degree 6 --seed 3"),
            0);
  const std::string query = "query --graph " + Path("g.txt") +
                            " --source 1 --k 10 --seed 11 --eps 0.2 "
                            "--format tsv --threads ";
  std::string serial, parallel;
  ASSERT_EQ(Run(query + "1", &serial), 0);
  ASSERT_EQ(Run(query + "3", &parallel), 0);
  EXPECT_EQ(ScoreTsvLines(serial), ScoreTsvLines(parallel));
}

TEST_F(CliTest, IndexFlagRejectedForNonPersistentAlgo) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") + " --n 300 --degree 4"),
            0);
  ASSERT_EQ(Run("index --graph " + Path("g.txt") + " --out " + Path("g.idx") +
                " --eps 0.2"),
            0);
  // ProbeSim is index-free; PowerMethod is index-based but its dense matrix
  // is never persisted. Both must reject --index with exit 2, as must the
  // index subcommand itself.
  for (const char* algo : {"probesim", "powermethod"}) {
    EXPECT_EQ(Run("query --graph " + Path("g.txt") + " --index " +
                  Path("g.idx") + " --source 0 --algo " + algo),
              2)
        << algo;
    EXPECT_EQ(Run("index --graph " + Path("g.txt") + " --out " +
                  Path("x.idx") + " --algo " + algo),
              2)
        << algo;
  }
}

// The cold-start workflow for every persistent engine: build the index in
// one process, reload it in another, and get bit-identical scores to an
// in-process preprocessing run under the same seed. threads=1 keeps the
// two independent SLING builds byte-identical (parallel build interleaving
// reorders float accumulation).
TEST_F(CliTest, EveryPersistentEngineRoundTripsThroughIndexFiles) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 400 --degree 5 --seed 2"),
            0);
  const std::vector<std::pair<std::string, std::string>> algos = {
      {"prsim", " --eps 0.3"},
      {"sling", " --params eps=0.3,threads=1"},
      {"reads", " --params r=10,t=4"},
      {"tsf", " --params rg=10,rq=3"},
  };
  for (const auto& [algo, params] : algos) {
    const std::string idx = Path(algo + ".idx");
    std::string index_out;
    ASSERT_EQ(Run("index --graph " + Path("g.txt") + " --out " + idx +
                      " --algo " + algo + " --seed 5" + params,
                  &index_out),
              0)
        << algo << "\n" << index_out;
    EXPECT_NE(index_out.find("built index"), std::string::npos) << algo;

    const std::string query = "query --graph " + Path("g.txt") +
                              " --source 7 --k 8 --algo " + algo +
                              " --seed 5 --format tsv" + params;
    std::string loaded, fresh;
    ASSERT_EQ(Run(query + " --index " + idx, &loaded), 0) << algo;
    ASSERT_EQ(Run(query, &fresh), 0) << algo;
    const auto loaded_scores = ScoreTsvLines(loaded);
    EXPECT_FALSE(loaded_scores.empty()) << algo << "\n" << loaded;
    EXPECT_EQ(loaded_scores, ScoreTsvLines(fresh)) << algo;
  }
}

TEST_F(CliTest, QueryFormatTsvIsMachineReadable) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  std::string out;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") +
                    " --source 2 --k 5 --format tsv",
                &out),
            0);
  EXPECT_NE(out.find("meta\talgo\tPRSim\n"), std::string::npos) << out;
  EXPECT_NE(out.find("meta\tquery_s\t"), std::string::npos);
  EXPECT_NE(out.find("meta\twalks\t"), std::string::npos);
  EXPECT_FALSE(ScoreTsvLines(out).empty()) << out;
  // Machine output only: no human progress lines on stdout.
  EXPECT_EQ(out.find("preprocessed in"), std::string::npos) << out;
  for (const auto& line : ScoreTsvLines(out)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 2) << line;
  }
}

TEST_F(CliTest, QueryFormatJsonIsMachineReadable) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  std::string out;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") +
                    " --source 2 --k 5 --algo montecarlo "
                    "--params samples=50 --format json",
                &out),
            0);
  EXPECT_EQ(out.rfind("{\"algo\":\"MonteCarlo\"", 0), 0u) << out;
  EXPECT_NE(out.find("\"cost\":{"), std::string::npos);
  EXPECT_NE(out.find("\"scores\":["), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST_F(CliTest, UnknownQueryFormatFails) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") + " --n 300 --degree 4"),
            0);
  EXPECT_EQ(Run("query --graph " + Path("g.txt") +
                " --source 0 --format xml"),
            2);
}

// The stale-index footgun, end to end: an index built with one eps (or for
// another graph of the same size) must be rejected at load time.
TEST_F(CliTest, MismatchedIndexArtifactsAreRejected) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 1"),
            0);
  ASSERT_EQ(Run("generate --out " + Path("h.txt") +
                " --model er --n 300 --degree 4 --seed 2"),
            0);
  ASSERT_EQ(Run("index --graph " + Path("g.txt") + " --out " + Path("g.idx") +
                " --eps 0.3"),
            0);
  // Same graph, different index-shaping option.
  EXPECT_EQ(Run("query --graph " + Path("g.txt") + " --index " +
                Path("g.idx") + " --source 0 --eps 0.2"),
            1);
  // Different graph with the same node count.
  EXPECT_EQ(Run("query --graph " + Path("h.txt") + " --index " +
                Path("g.idx") + " --source 0 --eps 0.3"),
            1);
  // Matching options on the matching graph still load.
  EXPECT_EQ(Run("query --graph " + Path("g.txt") + " --index " +
                Path("g.idx") + " --source 0 --eps 0.3"),
            0);
}

// The PRSim knobs that used to be unreachable from the CLI: --j0, --alpha,
// --rounds, --threads, --paper-constants on query (and --threads on index).
TEST_F(CliTest, PRSimKnobsAreReachable) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 400 --degree 5 --seed 6"),
            0);
  std::string out;
  EXPECT_EQ(Run("query --graph " + Path("g.txt") +
                    " --source 1 --k 3 --j0 4 --alpha 5 --rounds 3 "
                    "--threads 2 --seed 9",
                &out),
            0)
      << out;
  EXPECT_EQ(Run("query --graph " + Path("g.txt") +
                " --source 1 --k 3 --eps 0.4 --paper-constants"),
            0);
  EXPECT_EQ(Run("index --graph " + Path("g.txt") + " --out " + Path("g.idx") +
                " --eps 0.2 --threads 2"),
            0);
  // Dedicated flags override the same key inside --params.
  EXPECT_EQ(Run("query --graph " + Path("g.txt") +
                " --source 1 --k 3 --params eps=0.5 --eps 0.3"),
            0);
}

// --------------------------------------------------------------------------
// Batch query (--sources-file) and the stdin query loop (serve)
// --------------------------------------------------------------------------

TEST_F(CliTest, BatchQueryAnswersEverySourceAndReportsPercentiles) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  std::ofstream(Path("sources.txt")) << "# three queries\n1\n2\n17\n";
  std::string output;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") +
                    " --algo prsim --eps 0.4 --seed 5 --k 3 --sources-file " +
                    Path("sources.txt"),
                &output),
            0)
      << output;
  EXPECT_NE(output.find("source 1:"), std::string::npos) << output;
  EXPECT_NE(output.find("source 17:"), std::string::npos);
  EXPECT_NE(output.find("batch: queries=3 invalid=0"), std::string::npos);
  EXPECT_NE(output.find("p99_ms="), std::string::npos);
}

TEST_F(CliTest, BatchQueryTsvEmitsPercentileMetaAndPerSourceScores) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  std::ofstream(Path("sources.txt")) << "4\n17\n";
  std::string output;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") +
                    " --algo prsim --eps 0.4 --seed 5 --k 2 --format tsv "
                    "--sources-file " +
                    Path("sources.txt"),
                &output),
            0);
  EXPECT_NE(output.find("meta\tqueries\t2"), std::string::npos) << output;
  EXPECT_NE(output.find("meta\tp50_ms\t"), std::string::npos);
  EXPECT_NE(output.find("meta\tp99_ms\t"), std::string::npos);
  EXPECT_NE(output.find("score\t4\t"), std::string::npos);
  EXPECT_NE(output.find("score\t17\t"), std::string::npos);
}

// An invalid node id must fail that line alone: every valid line is still
// answered and the exit code (3) records the partial failure.
TEST_F(CliTest, BatchQueryInvalidNodeIdFailsPerLineNotTheWholeBatch) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  std::ofstream(Path("sources.txt")) << "1\n999999\nbogus\n2\n";
  std::string output;
  EXPECT_EQ(Run("query --graph " + Path("g.txt") +
                    " --algo prsim --eps 0.4 --seed 5 --k 3 --sources-file " +
                    Path("sources.txt"),
                &output),
            3);
  EXPECT_NE(output.find("source 1:"), std::string::npos) << output;
  EXPECT_NE(output.find("source 2:"), std::string::npos);
  EXPECT_NE(output.find("batch: queries=2 invalid=2"), std::string::npos);
}

TEST_F(CliTest, BatchQueryConflictsWithSingleSourceFlag) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  std::ofstream(Path("sources.txt")) << "1\n";
  EXPECT_EQ(Run("query --graph " + Path("g.txt") +
                " --source 1 --sources-file " + Path("sources.txt")),
            2);
}

TEST_F(CliTest, ServeAnswersStdinQueriesAndPrintsPercentiles) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  std::ofstream(Path("in.txt")) << "1\n2 5\n# comment\n\n7\n";
  std::string output;
  ASSERT_EQ(Run("serve --graph " + Path("g.txt") +
                    " --stdin --algo prsim --eps 0.4 --seed 5 --threads 2 < " +
                    Path("in.txt"),
                &output),
            0)
      << output;
  EXPECT_NE(output.find("result 1 "), std::string::npos) << output;
  EXPECT_NE(output.find("result 2 "), std::string::npos);
  EXPECT_NE(output.find("result 7 "), std::string::npos);
  EXPECT_NE(output.find("served queries=3 failed=0"), std::string::npos);
  EXPECT_NE(output.find("p99_ms="), std::string::npos);
}

// Same per-line contract for serve: bad lines are reported individually
// (exit 3), the loop keeps serving the rest.
TEST_F(CliTest, ServeInvalidNodeIdFailsPerLineNotTheLoop) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  std::ofstream(Path("in.txt")) << "1\n999999\nnot-a-node\n2\n";
  std::string output;
  EXPECT_EQ(Run("serve --graph " + Path("g.txt") +
                    " --stdin --algo prsim --eps 0.4 --seed 5 < " +
                    Path("in.txt"),
                &output),
            3);
  EXPECT_NE(output.find("result 1 "), std::string::npos) << output;
  EXPECT_NE(output.find("result 2 "), std::string::npos);
  EXPECT_NE(output.find("served queries=2"), std::string::npos);
}

TEST_F(CliTest, ServeRequiresStdinFlag) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  EXPECT_EQ(Run("serve --graph " + Path("g.txt")), 2);
}

TEST_F(CliTest, ServeDeterministicUnderSeedAndThreads) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  std::ofstream(Path("in.txt")) << "1\n2\n3\n4\n";
  const std::string serve_one = "serve --graph " + Path("g.txt") +
                                " --stdin --algo prsim --eps 0.4 --seed 5 "
                                "--threads 1 < " +
                                Path("in.txt");
  const std::string serve_two = "serve --graph " + Path("g.txt") +
                                " --stdin --algo prsim --eps 0.4 --seed 5 "
                                "--threads 3 < " +
                                Path("in.txt");
  std::string run1, run2;
  ASSERT_EQ(Run(serve_one, &run1), 0);
  ASSERT_EQ(Run(serve_two, &run2), 0);
  // Submission order fixes the positional seeds, so worker count must not
  // change any answer. Compare only the result lines (the summary line's
  // latencies differ run to run).
  std::vector<std::string> results1, results2;
  for (auto* results : {&results1, &results2}) {
    std::istringstream stream(results == &results1 ? run1 : run2);
    std::string line;
    while (std::getline(stream, line)) {
      if (line.rfind("result ", 0) == 0) results->push_back(line);
    }
  }
  EXPECT_EQ(results1.size(), 4u);
  EXPECT_EQ(results1, results2);
}

// ---------------------------------------------------------------------------
// Sharded serving: shard-build bundles + --manifest query/serve.
// ---------------------------------------------------------------------------

// The whole point of the shard layer: a 3-shard bundle answers exactly
// like the unsharded index-backed query path.
TEST_F(CliTest, ShardBuildThenQueryManifestMatchesUnsharded) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  const std::string params = " --algo prsim --eps 0.4 --seed 5";
  ASSERT_EQ(Run("index --graph " + Path("g.txt") + " --out " + Path("g.idx") +
                params),
            0);
  std::string unsharded;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") + " --index " +
                    Path("g.idx") + " --source 11 --k 5" + params,
                &unsharded),
            0)
      << unsharded;

  std::string build;
  ASSERT_EQ(Run("shard-build --graph " + Path("g.txt") + " --out-dir " +
                    Path("bundle") + " --shards 3" + params,
                &build),
            0)
      << build;
  EXPECT_NE(build.find("shards=3"), std::string::npos) << build;
  std::string sharded;
  ASSERT_EQ(Run("query --manifest " + Path("bundle/manifest.bin") +
                    " --source 11 --k 5",
                &sharded),
            0)
      << sharded;
  ASSERT_FALSE(ScoreLines(unsharded).empty()) << unsharded;
  EXPECT_EQ(ScoreLines(sharded), ScoreLines(unsharded));
}

TEST_F(CliTest, ManifestIsMutuallyExclusiveWithGraphFlags) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  ASSERT_EQ(Run("shard-build --graph " + Path("g.txt") + " --out-dir " +
                Path("bundle") + " --shards 2 --algo prsim --eps 0.4"),
            0);
  const std::string manifest = Path("bundle/manifest.bin");
  EXPECT_EQ(Run("query --manifest " + manifest + " --graph " + Path("g.txt") +
                " --source 1"),
            2);
  EXPECT_EQ(Run("query --manifest " + manifest + " --algo prsim --source 1"),
            2);
  EXPECT_EQ(Run("serve --manifest " + manifest + " --graph " + Path("g.txt") +
                " --stdin"),
            2);
  EXPECT_EQ(Run("query --source 1"), 2);  // neither --graph nor --manifest
}

// serve --manifest must answer the same request stream identically to the
// unsharded serve loop — including a final line with no trailing newline.
TEST_F(CliTest, ServeManifestMatchesUnshardedServe) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  const std::string params = " --algo prsim --eps 0.4 --seed 5";
  ASSERT_EQ(Run("shard-build --graph " + Path("g.txt") + " --out-dir " +
                Path("bundle") + " --shards 3" + params),
            0);
  // Deliberately no trailing newline after the last request.
  std::ofstream(Path("in.txt")) << "1\n2 5\n7";
  std::string unsharded, sharded;
  ASSERT_EQ(Run("serve --graph " + Path("g.txt") + " --stdin" + params +
                    " < " + Path("in.txt"),
                &unsharded),
            0)
      << unsharded;
  ASSERT_EQ(Run("serve --manifest " + Path("bundle/manifest.bin") +
                    " --stdin --threads 2 < " + Path("in.txt"),
                &sharded),
            0)
      << sharded;
  std::vector<std::string> results_unsharded, results_sharded;
  for (auto [results, output] :
       {std::pair{&results_unsharded, &unsharded},
        std::pair{&results_sharded, &sharded}}) {
    std::istringstream stream(*output);
    std::string line;
    while (std::getline(stream, line)) {
      if (line.rfind("result ", 0) == 0) results->push_back(line);
    }
  }
  ASSERT_EQ(results_unsharded.size(), 3u) << unsharded;  // "7" was answered
  EXPECT_EQ(results_sharded, results_unsharded);
  EXPECT_NE(sharded.find("served queries=3 failed=0"), std::string::npos)
      << sharded;
}

// ---------------------------------------------------------------------------
// TCP serving: serve --listen + the binary `client` command, including
// graceful signal shutdown of both serve transports.
// ---------------------------------------------------------------------------

TEST_F(CliTest, ServeDemandsExactlyOneTransport) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  EXPECT_EQ(Run("serve --graph " + Path("g.txt") + " --stdin --listen 0"), 2);
  EXPECT_EQ(Run("client --source 1"), 2);  // client requires --port
}

TEST_F(CliTest, ServeListenClientMatchesOfflineQueryBitForBit) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  const std::string params = " --algo prsim --eps 0.4 --seed 5";
  std::string offline;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") +
                    " --source 11 --k 6 --format tsv" + params,
                &offline),
            0)
      << offline;
  ASSERT_FALSE(ScoreTsvLines(offline).empty()) << offline;

  Spawned server = Spawn("serve --graph " + Path("g.txt") +
                         " --listen 0 --threads 2" + params);
  ASSERT_GT(server.pid, 0);
  const uint32_t port = WaitForListenPort(server);
  ASSERT_NE(port, 0u) << ReadFile(server.stderr_path);

  // --fresh reseeds from the configured seed exactly like a cold offline
  // query, so the %.17g score rows must agree to the last digit — and keep
  // agreeing on a second connection.
  const std::string request = "client --port " + std::to_string(port) +
                              " --source 11 --k 6 --fresh --format tsv";
  for (int round = 0; round < 2; ++round) {
    std::string online;
    ASSERT_EQ(Run(request, &online), 0) << online;
    EXPECT_EQ(ScoreTsvLines(online), ScoreTsvLines(offline)) << online;
  }

  EXPECT_EQ(SignalAndWait(&server, SIGTERM), 0) << ReadFile(server.stderr_path);
  const std::string err = ReadFile(server.stderr_path);
  EXPECT_NE(err.find("\"event\":\"serve_stats\""), std::string::npos) << err;
  EXPECT_NE(err.find("\"transport\":\"tcp\""), std::string::npos);
  EXPECT_NE(err.find("connections=2 requests=2"), std::string::npos) << err;
  const std::string out = ReadFile(server.stdout_path);
  EXPECT_NE(out.find("served queries=2 failed=0"), std::string::npos) << out;
}

TEST_F(CliTest, CacheMbAndCountFlagValidation) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  // Negative budgets are malformed uint64s: refused before any serving.
  EXPECT_EQ(Run("serve --graph " + Path("g.txt") +
                " --stdin --algo prsim --cache-mb -1"),
            2);
  // The one-shot `query` path only routes a cache through the shard
  // router; without --manifest the flag is an error, not a silent no-op.
  EXPECT_EQ(
      Run("query --graph " + Path("g.txt") + " --source 1 --cache-mb 64"), 2);
  // The pipelined client bounds --count to its dispatch-window-safe range.
  EXPECT_EQ(Run("client --port 1 --source 1 --count 0"), 2);
  EXPECT_EQ(Run("client --port 1 --source 1 --count 1001"), 2);
  EXPECT_EQ(Run("client --port 1 --source 1 --count -3"), 2);
}

TEST_F(CliTest, CachedServePipelinesIdenticalFreshRepliesOverOneConnection) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  const std::string params = " --algo prsim --eps 0.4 --seed 5";
  std::string offline;
  ASSERT_EQ(Run("query --graph " + Path("g.txt") +
                    " --source 11 --k 6 --format tsv" + params,
                &offline),
            0)
      << offline;
  ASSERT_FALSE(ScoreTsvLines(offline).empty()) << offline;

  Spawned server = Spawn("serve --graph " + Path("g.txt") +
                         " --listen 0 --threads 2 --cache-mb 64" + params);
  ASSERT_GT(server.pid, 0);
  const uint32_t port = WaitForListenPort(server);
  ASSERT_NE(port, 0u) << ReadFile(server.stderr_path);

  // Five pipelined copies of one --fresh request: the client itself
  // verifies every response is byte-identical to the first (cold miss,
  // then cache hits), and the scores must equal the offline answer.
  std::string online;
  ASSERT_EQ(Run("client --port " + std::to_string(port) +
                    " --source 11 --k 6 --fresh --count 5 --format tsv",
                &online),
            0)
      << online;
  EXPECT_EQ(ScoreTsvLines(online), ScoreTsvLines(offline)) << online;
  EXPECT_NE(online.find("meta\tcount\t5\n"), std::string::npos) << online;
  EXPECT_NE(online.find("meta\ttotal_s\t"), std::string::npos) << online;
  size_t rtt_rows = 0;
  std::istringstream stream(online);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.rfind("rtt\t", 0) == 0) ++rtt_rows;
  }
  EXPECT_EQ(rtt_rows, 5u) << online;

  // The single-shot output shape is unchanged by the pipelining feature.
  std::string single;
  ASSERT_EQ(Run("client --port " + std::to_string(port) +
                    " --source 11 --k 6 --fresh --format tsv",
                &single),
            0)
      << single;
  EXPECT_EQ(ScoreTsvLines(single), ScoreTsvLines(offline)) << single;
  EXPECT_EQ(single.find("meta\tcount"), std::string::npos) << single;
  EXPECT_EQ(single.find("rtt\t"), std::string::npos) << single;

  EXPECT_EQ(SignalAndWait(&server, SIGTERM), 0) << ReadFile(server.stderr_path);
  // Six identical fresh requests through one cache: singleflight and the
  // hit path guarantee exactly one miss, visible in the exit stats line.
  const std::string err = ReadFile(server.stderr_path);
  EXPECT_NE(err.find("\"cache_misses\":1"), std::string::npos) << err;
  EXPECT_EQ(err.find("\"cache_hits\":0,"), std::string::npos) << err;
}

TEST_F(CliTest, ServeListenManifestServesShardedAnswers) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  const std::string params = " --algo prsim --eps 0.4 --seed 5";
  ASSERT_EQ(Run("shard-build --graph " + Path("g.txt") + " --out-dir " +
                Path("bundle") + " --shards 3" + params),
            0);
  std::string offline;
  ASSERT_EQ(Run("query --manifest " + Path("bundle/manifest.bin") +
                    " --source 11 --k 6 --format tsv",
                &offline),
            0)
      << offline;
  ASSERT_FALSE(ScoreTsvLines(offline).empty()) << offline;

  Spawned server =
      Spawn("serve --manifest " + Path("bundle/manifest.bin") + " --listen 0");
  ASSERT_GT(server.pid, 0);
  const uint32_t port = WaitForListenPort(server);
  ASSERT_NE(port, 0u) << ReadFile(server.stderr_path);
  std::string online;
  ASSERT_EQ(Run("client --port " + std::to_string(port) +
                    " --source 11 --k 6 --fresh --format tsv",
                &online),
            0)
      << online;
  EXPECT_EQ(ScoreTsvLines(online), ScoreTsvLines(offline)) << online;
  EXPECT_EQ(SignalAndWait(&server, SIGTERM), 0) << ReadFile(server.stderr_path);
}

TEST_F(CliTest, ServeStdinExitsCleanlyOnSigint) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  Spawned server = Spawn("serve --graph " + Path("g.txt") +
                         " --stdin --algo prsim --eps 0.4 --seed 5");
  ASSERT_GT(server.pid, 0);
  // Serve one request first so the shutdown path has stats to report; the
  // pipe stays open, so without the signal the loop would block forever.
  ASSERT_EQ(::write(server.stdin_fd, "1\n", 2), 2);
  ASSERT_TRUE(WaitForOutput(server.stdout_path, "result 1 "))
      << ReadFile(server.stdout_path) << ReadFile(server.stderr_path);
  EXPECT_EQ(SignalAndWait(&server, SIGINT), 0) << ReadFile(server.stderr_path);
  const std::string out = ReadFile(server.stdout_path);
  EXPECT_NE(out.find("served queries=1 failed=0"), std::string::npos) << out;
  const std::string err = ReadFile(server.stderr_path);
  EXPECT_NE(err.find("\"event\":\"serve_stats\""), std::string::npos) << err;
  EXPECT_NE(err.find("\"transport\":\"stdin\""), std::string::npos);
}

// Chaos smoke: the same --faults spec and --fault-seed replay the same
// failures, and every request the injector spares is answered bit-for-bit
// identically to a fault-free run — the contract the CI chaos job diffs.
TEST_F(CliTest, ServeStdinFaultInjectionReplaysDeterministically) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 300 --degree 4 --seed 3"),
            0);
  std::string requests;
  for (int source = 1; source <= 24; ++source) {
    requests += std::to_string(source) + "\n";
  }
  const std::string serve = "serve --graph " + Path("g.txt") +
                            " --stdin --threads 1 --algo prsim --eps 0.4"
                            " --seed 5";

  struct ServeRun {
    int exit_code = -1;
    std::string out;
    std::string err;
  };
  auto run_serve = [&](const std::string& extra) {
    Spawned proc = Spawn(serve + extra);
    EXPECT_GT(proc.pid, 0);
    EXPECT_EQ(::write(proc.stdin_fd, requests.data(), requests.size()),
              static_cast<ssize_t>(requests.size()));
    ServeRun run;
    run.exit_code = CloseStdinAndWait(&proc);
    run.out = ReadFile(proc.stdout_path);
    run.err = ReadFile(proc.stderr_path);
    return run;
  };
  auto result_lines = [](const std::string& out) {
    std::vector<std::string> lines;
    std::istringstream stream(out);
    std::string line;
    while (std::getline(stream, line)) {
      if (line.rfind("result ", 0) == 0) lines.push_back(line);
    }
    return lines;
  };
  // The exit summary's counts are deterministic; its latency percentiles
  // are not. Strip the line down to the counts before comparing.
  auto served_counts = [](const std::string& out) {
    const auto pos = out.find("served queries=");
    if (pos == std::string::npos) return std::string();
    return out.substr(pos, out.find(" p50_ms=", pos) - pos);
  };
  auto fault_stats_line = [](const std::string& err) {
    std::istringstream stream(err);
    std::string line;
    while (std::getline(stream, line)) {
      if (line.find("\"event\":\"fault_stats\"") != std::string::npos) {
        return line;
      }
    }
    return std::string();
  };

  const std::string faults =
      " --faults engine.query.throw=1/3 --fault-seed 11";
  const ServeRun clean = run_serve("");
  const ServeRun first = run_serve(faults);
  const ServeRun second = run_serve(faults);

  // The fault-free baseline answers all 24 lines and reports no faults.
  ASSERT_EQ(clean.exit_code, 0) << clean.err;
  const std::vector<std::string> clean_results = result_lines(clean.out);
  ASSERT_EQ(clean_results.size(), 24u) << clean.out;
  EXPECT_TRUE(fault_stats_line(clean.err).empty()) << clean.err;

  // 1/3 over 24 sequential requests fires at least once and spares at
  // least one; failed lines surface in the exit code (3) and on stderr.
  EXPECT_EQ(first.exit_code, 3) << first.err;
  EXPECT_NE(first.err.find("injected fault: engine.query.throw"),
            std::string::npos)
      << first.err;
  const std::vector<std::string> survivors = result_lines(first.out);
  EXPECT_FALSE(survivors.empty()) << first.out;
  EXPECT_LT(survivors.size(), 24u) << first.out;

  // Replay determinism: identical replies, counts, exit code and
  // fault_stats (latency percentiles in the summary are wall-clock, so
  // they are the one part of the output not compared).
  EXPECT_EQ(second.exit_code, first.exit_code);
  EXPECT_EQ(result_lines(second.out), survivors);
  EXPECT_EQ(served_counts(second.out), served_counts(first.out));
  EXPECT_NE(served_counts(first.out).find("failed="), std::string::npos)
      << first.out;
  const std::string stats = fault_stats_line(first.err);
  ASSERT_FALSE(stats.empty()) << first.err;
  EXPECT_EQ(fault_stats_line(second.err), stats);

  // Every surviving reply is bit-identical to the fault-free run's answer:
  // failed requests consumed their positional seed at admission, so the
  // survivors' seeds — and scores — never shift.
  for (const std::string& line : survivors) {
    EXPECT_NE(std::find(clean_results.begin(), clean_results.end(), line),
              clean_results.end())
        << line;
  }

  // Malformed specs are refused before any serving starts.
  EXPECT_EQ(Run(serve + " --faults bogus"), 2);
}

TEST_F(CliTest, ShardBuildRequiresGraphAndOutDir) {
  EXPECT_EQ(Run("shard-build --out-dir " + Path("bundle")), 2);
  EXPECT_EQ(Run("shard-build --graph " + Path("g.txt")), 2);
  EXPECT_EQ(Run("shard-build --graph " + Path("g.txt") + " --out-dir " +
                Path("bundle") + " --shards 0"),
            2);
}

// --params routes engine knobs and the dedicated flags still win; the same
// (seed, params) setting must reproduce the same top-k.
TEST_F(CliTest, AlgoQueryDeterministicUnderSeed) {
  ASSERT_EQ(Run("generate --out " + Path("g.txt") +
                " --model er --n 400 --degree 5 --seed 8"),
            0);
  const std::string query = "query --graph " + Path("g.txt") +
                            " --source 3 --k 8 --algo probesim --seed 321";
  std::string run1, run2;
  ASSERT_EQ(Run(query, &run1), 0);
  ASSERT_EQ(Run(query, &run2), 0);
  EXPECT_FALSE(ScoreLines(run1).empty()) << run1;
  EXPECT_EQ(ScoreLines(run1), ScoreLines(run2));
}

}  // namespace
}  // namespace prsim
