// Tests for the hot-source result cache (core/result_cache.h) and its
// integration into QueryService:
//  * cached vs uncached fresh_seed replies are bit-identical for every
//    persistent engine, at k = 0 and k > 0
//  * positional (non-fresh) requests bypass the cache entirely — a
//    BatchQuery replay is unaffected by cache state or interleaved fresh
//    traffic
//  * singleflight collapses K concurrent identical misses into one engine
//    query (run under TSan via the concurrency label)
//  * the byte budget evicts in LRU order; fingerprint changes invalidate
//  * a rejected or failed leader still resolves its waiters

#include "core/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_query.h"
#include "core/engine_registry.h"
#include "core/query_service.h"
#include "test_util.h"

namespace prsim {
namespace {

using ::prsim::testing::MakeRandomDigraph;

std::unique_ptr<SingleSourceSimRank> MakeReadyEngine(
    const Graph& graph, const std::string& algo, const std::string& params) {
  auto engine = EngineRegistry::Global().Create(algo, graph, params);
  engine.status().Abort();
  auto ready = std::move(engine).ValueOrDie();
  ready->Preprocess().Abort();
  return ready;
}

QueryRequest FreshRequest(const std::string& algo, NodeId source, uint32_t k) {
  QueryRequest request;
  request.algo = algo;
  request.source = source;
  request.k = k;
  request.fresh_seed = true;
  return request;
}

ScoreList MakeScores(std::initializer_list<ScoreEntry> entries) {
  ScoreList scores;
  scores.reserve(entries.size());  // pin capacity so entry costs are equal
  for (const auto& entry : entries) scores.push_back(entry);
  return scores;
}

// ---------------------------------------------------------------------------
// Direct ResultCache API.
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, LeaderPublishesThenIdenticalLookupHits) {
  ResultCache cache(1 << 20);
  const uint32_t algo_id = cache.RegisterEngine("prsim", /*fingerprint=*/111);
  const ResultCacheKey key{111, 7, 3, algo_id};

  auto first = cache.Lookup(key, /*k=*/0, WallTimer());
  ASSERT_EQ(first.role, ResultCache::Role::kLeader);
  const auto scores = std::make_shared<const ScoreList>(
      MakeScores({{3, 1.0}, {4, 0.5}, {5, 0.25}}));
  const auto published = cache.Publish(key, Status::OK(), scores);
  EXPECT_EQ(published.ok_waiters, 0u);
  EXPECT_EQ(published.failed_waiters, 0u);

  auto hit = cache.Lookup(key, /*k=*/0, WallTimer());
  ASSERT_EQ(hit.role, ResultCache::Role::kHit);
  ASSERT_NE(hit.hit_scores, nullptr);
  EXPECT_EQ(*hit.hit_scores, *scores);

  // A different source is a distinct key: new leader. Publish to keep the
  // leader contract (and so the flight table drains).
  const ResultCacheKey other{111, 7, 4, algo_id};
  EXPECT_EQ(cache.Lookup(other, 0, WallTimer()).role,
            ResultCache::Role::kLeader);
  cache.Publish(other, Status::OK(), scores);

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, CachedResultDerivesTopKWithEngineTieBreaking) {
  const auto scores = std::make_shared<const ScoreList>(
      MakeScores({{0, 0.5}, {1, 0.25}, {2, 1.0}, {3, 0.25}, {4, 0.1}}));
  // k = 0 returns the full vector verbatim.
  const QueryResult full = ResultCache::CachedResult(scores, 0, /*source=*/2,
                                                     /*latency_seconds=*/0.5);
  ASSERT_TRUE(full.status.ok());
  EXPECT_EQ(full.scores, *scores);
  EXPECT_DOUBLE_EQ(full.latency_seconds, 0.5);
  EXPECT_EQ(full.cost.walks, 0u) << "a cache hit does no engine work";
  // k > 0 must match core/single_source.h's TopK exactly (ties broken by
  // ascending id: node 1 beats node 3 at 0.25).
  const QueryResult top = ResultCache::CachedResult(scores, 2, 2, 0.0);
  EXPECT_EQ(top.scores, TopK(*scores, 2, 2));
  ASSERT_EQ(top.scores.size(), 2u);
  EXPECT_EQ(top.scores[0].first, 0u);
  EXPECT_EQ(top.scores[1].first, 1u);
}

TEST(ResultCacheTest, ReRegistrationInvalidatesOnlyOnFingerprintChange) {
  ResultCache cache(1 << 20);
  const uint32_t prsim_id = cache.RegisterEngine("prsim", 111);
  const uint32_t sling_id = cache.RegisterEngine("sling", 222);
  const auto scores =
      std::make_shared<const ScoreList>(MakeScores({{1, 1.0}}));
  const ResultCacheKey prsim_key{111, 7, 1, prsim_id};
  const ResultCacheKey sling_key{222, 7, 1, sling_id};
  cache.Lookup(prsim_key, 0, WallTimer());
  cache.Publish(prsim_key, Status::OK(), scores);
  cache.Lookup(sling_key, 0, WallTimer());
  cache.Publish(sling_key, Status::OK(), scores);
  ASSERT_EQ(cache.Stats().entries, 2u);

  // Same fingerprint: entries survive, same id handed back.
  EXPECT_EQ(cache.RegisterEngine("prsim", 111), prsim_id);
  EXPECT_EQ(cache.Stats().entries, 2u);
  EXPECT_EQ(cache.Stats().invalidated, 0u);

  // Changed fingerprint: prsim's entry is purged, sling's survives.
  EXPECT_EQ(cache.RegisterEngine("prsim", 999), prsim_id);
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.invalidated, 1u);
  EXPECT_EQ(cache.Lookup(sling_key, 0, WallTimer()).role,
            ResultCache::Role::kHit);
  // The old-fingerprint key is gone; and the service would now look up
  // under the new fingerprint anyway.
  EXPECT_EQ(cache.Lookup(prsim_key, 0, WallTimer()).role,
            ResultCache::Role::kLeader);
  cache.Publish(prsim_key, Status::OK(), scores);
}

TEST(ResultCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  // Each published vector has exactly 2 reserved entries, so all entries
  // cost the same; a budget of 2.5x that cost holds two of them.
  const auto scores_a =
      std::make_shared<const ScoreList>(MakeScores({{1, 1.0}, {2, 0.5}}));
  const size_t entry_cost =
      sizeof(ScoreList) + scores_a->capacity() * sizeof(ScoreEntry) + 64;
  ResultCache cache(entry_cost * 5 / 2);
  const uint32_t algo_id = cache.RegisterEngine("prsim", 111);
  const ResultCacheKey a{111, 7, 1, algo_id};
  const ResultCacheKey b{111, 7, 2, algo_id};
  const ResultCacheKey c{111, 7, 3, algo_id};
  for (const auto& key : {a, b}) {
    ASSERT_EQ(cache.Lookup(key, 0, WallTimer()).role,
              ResultCache::Role::kLeader);
    cache.Publish(key, Status::OK(), scores_a);
  }
  // Touch A so B is the LRU victim when C arrives.
  ASSERT_EQ(cache.Lookup(a, 0, WallTimer()).role, ResultCache::Role::kHit);
  ASSERT_EQ(cache.Lookup(c, 0, WallTimer()).role, ResultCache::Role::kLeader);
  cache.Publish(c, Status::OK(), scores_a);

  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, entry_cost * 5 / 2);
  EXPECT_EQ(cache.Lookup(a, 0, WallTimer()).role, ResultCache::Role::kHit);
  EXPECT_EQ(cache.Lookup(b, 0, WallTimer()).role, ResultCache::Role::kLeader)
      << "B was the least recently used entry and must be gone";
  cache.Publish(b, Status::OK(), scores_a);
}

TEST(ResultCacheTest, FailedPublishResolvesWaitersWithTheStatus) {
  ResultCache cache(1 << 20);
  const uint32_t algo_id = cache.RegisterEngine("prsim", 111);
  const ResultCacheKey key{111, 7, 5, algo_id};
  ASSERT_EQ(cache.Lookup(key, 0, WallTimer()).role,
            ResultCache::Role::kLeader);
  auto waiter_a = cache.Lookup(key, /*k=*/3, WallTimer());
  auto waiter_b = cache.Lookup(key, /*k=*/0, WallTimer());
  ASSERT_EQ(waiter_a.role, ResultCache::Role::kWaiter);
  ASSERT_EQ(waiter_b.role, ResultCache::Role::kWaiter);

  const auto published =
      cache.Publish(key, Status::ResourceExhausted("queue full"), nullptr);
  EXPECT_EQ(published.ok_waiters, 0u);
  EXPECT_EQ(published.failed_waiters, 2u);
  for (auto* waiter : {&waiter_a, &waiter_b}) {
    const QueryResult result = waiter->waiter_future.get();
    EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(result.scores.empty());
  }
  // Nothing was cached; the next lookup leads again.
  EXPECT_EQ(cache.Lookup(key, 0, WallTimer()).role,
            ResultCache::Role::kLeader);
  cache.Publish(key, Status::OK(),
                std::make_shared<const ScoreList>(MakeScores({{5, 1.0}})));
}

TEST(ResultCacheTest, ConcurrentLookupsProduceOneLeaderAndManyWaiters) {
  // K threads race Lookup on one cold key. Exactly one must become the
  // leader; everyone else is a waiter whose future resolves with the
  // leader's published vector shaped to its own k. TSan-covered.
  ResultCache cache(1 << 20);
  const uint32_t algo_id = cache.RegisterEngine("prsim", 111);
  const ResultCacheKey key{111, 7, 9, algo_id};
  const auto scores = std::make_shared<const ScoreList>(
      MakeScores({{9, 1.0}, {1, 0.5}, {2, 0.25}}));

  constexpr int kThreads = 16;
  std::atomic<int> leaders{0};
  std::atomic<int> ok_waiters{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const uint32_t k = (t % 2 == 0) ? 0u : 2u;
      auto ticket = cache.Lookup(key, k, WallTimer());
      if (ticket.role == ResultCache::Role::kLeader) {
        leaders.fetch_add(1);
        // Let waiters pile up before publishing.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        cache.Publish(key, Status::OK(), scores);
      } else {
        ASSERT_EQ(ticket.role, ResultCache::Role::kWaiter);
        const QueryResult result = ticket.waiter_future.get();
        ASSERT_TRUE(result.status.ok());
        EXPECT_EQ(result.scores, k == 0 ? *scores : TopK(*scores, k, 9));
        EXPECT_GE(result.latency_seconds, 0.0);
        ok_waiters.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(ok_waiters.load(), kThreads - 1);
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.coalesced, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.entries, 1u);
}

// ---------------------------------------------------------------------------
// Service integration: a controllable engine for singleflight timing.
// ---------------------------------------------------------------------------

/// Deterministic engine whose Query can be gated: it signals arrival and
/// blocks until released, so tests can pile waiters onto an in-flight
/// leader with no sleeps-as-synchronization.
class GatedEngine : public SingleSourceSimRank {
 public:
  struct Control {
    std::mutex mu;
    std::condition_variable cv;
    bool gate_open = true;
    int in_query = 0;
    std::atomic<int> queries{0};

    void CloseGate() {
      std::lock_guard<std::mutex> lock(mu);
      gate_open = false;
    }
    void OpenGate() {
      {
        std::lock_guard<std::mutex> lock(mu);
        gate_open = true;
      }
      cv.notify_all();
    }
    void AwaitQueryEntered() {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return in_query > 0; });
    }
  };

  GatedEngine(NodeId n, uint64_t seed, std::shared_ptr<Control> control)
      : n_(n), seed_(seed), control_(std::move(control)) {}

  std::string name() const override { return "Gated"; }
  NodeId node_count() const override { return n_; }

  ScoreList Query(NodeId u) override {
    {
      std::unique_lock<std::mutex> lock(control_->mu);
      ++control_->in_query;
      control_->cv.notify_all();
      control_->cv.wait(lock, [this] { return control_->gate_open; });
      --control_->in_query;
    }
    control_->queries.fetch_add(1);
    cost_ = {};
    cost_.walks = 1;
    // Seed-dependent so a wrong-seed answer is visible in the scores.
    return {{u, 1.0},
            {(u + 1) % n_, static_cast<double>(seed_ % 97) / 100.0}};
  }

  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const override {
    return std::make_unique<GatedEngine>(n_, seed, control_);
  }
  uint64_t seed() const override { return seed_; }
  void Reseed(uint64_t seed) override { seed_ = seed; }

 private:
  NodeId n_;
  uint64_t seed_;
  std::shared_ptr<Control> control_;
};

TEST(ResultCacheServiceTest, SingleflightCollapsesConcurrentIdenticalMisses) {
  auto control = std::make_shared<GatedEngine::Control>();
  QueryServiceOptions options;
  options.threads = 2;
  options.cache_bytes = 1 << 20;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("gated", std::make_unique<GatedEngine>(50, 7, control))
          .ok());

  control->CloseGate();
  constexpr int kWaiters = 8;
  std::vector<std::future<QueryResult>> futures;
  futures.push_back(service.Submit(FreshRequest("gated", 5, 0)));  // leader
  control->AwaitQueryEntered();  // the flight is now provably in progress
  for (int i = 0; i < kWaiters; ++i) {
    futures.push_back(service.Submit(FreshRequest("gated", 5, 0)));
  }
  control->OpenGate();

  const QueryResult first = futures[0].get();
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  for (size_t i = 1; i < futures.size(); ++i) {
    const QueryResult result = futures[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.scores, first.scores) << "waiter " << i;
  }
  EXPECT_EQ(control->queries.load(), 1)
      << "N identical concurrent misses must cost exactly one engine query";

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_coalesced, static_cast<uint64_t>(kWaiters));
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kWaiters + 1));
  EXPECT_EQ(stats.completed, static_cast<uint64_t>(kWaiters + 1));

  // After the flight lands, the same request is a pure hit.
  const QueryResult hit = service.Submit(FreshRequest("gated", 5, 0)).get();
  ASSERT_TRUE(hit.status.ok());
  EXPECT_EQ(hit.scores, first.scores);
  EXPECT_EQ(control->queries.load(), 1);
  EXPECT_EQ(service.Stats().cache_hits, 1u);
}

TEST(ResultCacheServiceTest, RejectedLeaderFailsWaiterlessAndRecovers) {
  // Fill the tiny queue with positional traffic, then submit a fresh
  // request: its leader is shed by the kReject policy and must still
  // publish (otherwise the key's flight would wedge forever — verified by
  // the successful retry after drain).
  auto control = std::make_shared<GatedEngine::Control>();
  QueryServiceOptions options;
  options.threads = 1;
  options.max_queue = 1;
  options.backpressure = QueryServiceOptions::Backpressure::kReject;
  options.cache_bytes = 1 << 20;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("gated", std::make_unique<GatedEngine>(50, 7, control))
          .ok());

  control->CloseGate();
  QueryRequest positional;
  positional.algo = "gated";
  positional.source = 1;
  auto occupant = service.Submit(positional);
  control->AwaitQueryEntered();  // queue slot is now held by the occupant

  auto shed = service.Submit(FreshRequest("gated", 9, 0));
  const QueryResult shed_result = shed.get();
  EXPECT_EQ(shed_result.status.code(), StatusCode::kResourceExhausted);

  control->OpenGate();
  ASSERT_TRUE(occupant.get().status.ok());

  // The flight for source 9 was published (as a failure), so a retry leads
  // afresh and succeeds.
  const QueryResult retry = service.Submit(FreshRequest("gated", 9, 0)).get();
  ASSERT_TRUE(retry.status.ok()) << retry.status.ToString();
  const ServiceStats stats = service.Stats();
  EXPECT_GE(stats.rejected, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);  // the shed leader and the retry
}

TEST(ResultCacheServiceTest, WorkerThreadRegistryIdentifiesServiceWorkers) {
  // The DCHECK against Submit-from-worker rests on OwnsCurrentThread();
  // prove it is true exactly on the service's own workers.
  auto control = std::make_shared<GatedEngine::Control>();
  QueryServiceOptions options;
  options.threads = 2;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("gated", std::make_unique<GatedEngine>(50, 7, control))
          .ok());
  EXPECT_FALSE(service.OwnsCurrentThread());

  std::atomic<bool> owns_inside{false};
  class Probe : public SingleSourceSimRank {
   public:
    Probe(QueryService* service, std::atomic<bool>* owns)
        : service_(service), owns_(owns) {}
    std::string name() const override { return "Probe"; }
    NodeId node_count() const override { return 8; }
    ScoreList Query(NodeId u) override {
      owns_->store(service_->OwnsCurrentThread());
      return {{u, 1.0}};
    }
    std::unique_ptr<SingleSourceSimRank> CloneWithSeed(uint64_t) const override {
      return std::make_unique<Probe>(service_, owns_);
    }
    uint64_t seed() const override { return 0; }
    void Reseed(uint64_t) override {}

   private:
    QueryService* service_;
    std::atomic<bool>* owns_;
  };
  ASSERT_TRUE(
      service.AddEngine("probe", std::make_unique<Probe>(&service, &owns_inside))
          .ok());
  ASSERT_TRUE(service.Submit({"probe", 1, 0}).get().status.ok());
  EXPECT_TRUE(owns_inside.load())
      << "engine code runs on a service worker; the registry must say so";
}

// ---------------------------------------------------------------------------
// Bit-identity across the real persistent engines.
// ---------------------------------------------------------------------------

TEST(ResultCacheServiceTest, CachedFreshSeedIsBitIdenticalForAllEngines) {
  const Graph g = MakeRandomDigraph(120, 500, /*seed=*/11);
  const struct {
    const char* algo;
    const char* params;
  } kConfigs[] = {
      {"prsim", "eps=0.4,seed=7,threads=1"},
      {"sling", "eps=0.4,seed=7,threads=1"},
      {"reads", "r=10,t=3,seed=7"},
      {"tsf", "rg=10,rq=3,seed=7"},
  };
  const std::vector<NodeId> hot_sources = {3, 10, 17, 24, 31};
  for (const auto& config : kConfigs) {
    SCOPED_TRACE(config.algo);
    const auto leader = MakeReadyEngine(g, config.algo, config.params);

    QueryServiceOptions cold_options;
    cold_options.threads = 1;
    QueryService uncached(cold_options);
    ASSERT_TRUE(uncached
                    .AddEngine(config.algo,
                               leader->CloneWithSeed(leader->seed()))
                    .ok());
    QueryServiceOptions hot_options;
    hot_options.threads = 1;
    hot_options.cache_bytes = 8u << 20;
    QueryService cached(hot_options);
    ASSERT_TRUE(cached
                    .AddEngine(config.algo,
                               leader->CloneWithSeed(leader->seed()))
                    .ok());

    // Three passes over the hot set: pass 0 misses, passes 1-2 hit. Every
    // reply — full vector and top-k — must match the cache-off service bit
    // for bit.
    for (int pass = 0; pass < 3; ++pass) {
      for (const NodeId source : hot_sources) {
        for (const uint32_t k : {0u, 7u}) {
          const QueryResult expect =
              uncached.Submit(FreshRequest(config.algo, source, k)).get();
          const QueryResult got =
              cached.Submit(FreshRequest(config.algo, source, k)).get();
          ASSERT_TRUE(expect.status.ok()) << expect.status.ToString();
          ASSERT_TRUE(got.status.ok()) << got.status.ToString();
          ASSERT_EQ(got.scores, expect.scores)
              << "pass " << pass << " source " << source << " k " << k;
        }
      }
    }
    const ServiceStats cold = uncached.Stats();
    EXPECT_EQ(cold.cache_hits + cold.cache_misses + cold.cache_coalesced, 0u)
        << "cache-off service must not touch cache counters";
    const ServiceStats hot = cached.Stats();
    // Pass 0 k=0 misses and fills; the same pass's k=7 lookup already hits
    // (one entry serves every k). Passes 1-2 hit throughout.
    EXPECT_EQ(hot.cache_misses, hot_sources.size());
    EXPECT_EQ(hot.cache_hits, hot_sources.size() * 5u);
    EXPECT_EQ(hot.cache_coalesced, 0u);
    EXPECT_GT(hot.cache_bytes, 0u);
  }
}

TEST(ResultCacheServiceTest, PositionalRequestsBypassTheCacheEntirely) {
  // A positional replay through a cache-enabled service must (a) never
  // touch the cache and (b) stay bit-identical to BatchQuery even with
  // fresh traffic interleaved — fresh requests don't consume positions.
  const Graph g = MakeRandomDigraph(90, 350, /*seed=*/2);
  const auto leader = MakeReadyEngine(g, "prsim", "eps=0.4,seed=9,threads=1");
  std::vector<NodeId> sources(25);
  for (size_t i = 0; i < sources.size(); ++i) {
    sources[i] = static_cast<NodeId>((i * 7 + 3) % g.n());
  }
  const auto expected = BatchQuery(*leader, sources, /*threads=*/1);

  QueryServiceOptions options;
  options.threads = 1;
  options.cache_bytes = 8u << 20;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("prsim", leader->CloneWithSeed(leader->seed())).ok());
  for (size_t i = 0; i < sources.size(); ++i) {
    if (i % 5 == 0) {
      // Interleaved fresh traffic (including repeats that hit the cache).
      ASSERT_TRUE(
          service.Submit(FreshRequest("prsim", 42, 0)).get().status.ok());
    }
    const QueryResult result =
        service.Submit({"prsim", sources[i], /*k=*/0}).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    ASSERT_EQ(result.scores, expected[i]) << "position " << i;
  }
  const ServiceStats stats = service.Stats();
  // Only the interleaved fresh requests touched the cache: 1 miss + hits.
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 4u);
}

}  // namespace
}  // namespace prsim
