// Tests for the deterministic backward search against the dense l-hop RPPR
// recurrence (Lemma 3.1's error bound) and its cost accounting (Lemma 3.2).

#include <gtest/gtest.h>

#include <cmath>

#include "gen/chung_lu.h"
#include "ppr/backward_search.h"
#include "ppr/reverse_pagerank.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::DenseLevelRppr;
using testing::MakeCompleteDigraph;
using testing::MakeCycle;
using testing::MakeRandomDigraph;

double ReserveAt(const BackwardSearchResult& result, uint32_t level,
                 NodeId v) {
  if (level >= result.levels.size()) return 0.0;
  for (const auto& [node, psi] : result.levels[level]) {
    if (node == v) return psi;
  }
  return 0.0;
}

TEST(BackwardSearchTest, LevelZeroReserveIsTermProbability) {
  Graph g = MakeCycle(6);
  const double c = 0.6;
  auto result = BackwardSearch(g, 2, {.c = c, .rmax = 1e-5});
  ASSERT_GE(result.levels.size(), 1u);
  // Reserves are stored as float; compare at float precision.
  EXPECT_NEAR(ReserveAt(result, 0, 2), 1.0 - std::sqrt(c), 1e-6);
}

TEST(BackwardSearchTest, ReservesWithinRmaxOfExact) {
  const double c = 0.6;
  const double rmax = 1e-4;
  for (uint64_t seed : {81u, 82u, 83u}) {
    Graph g = MakeRandomDigraph(30, 150, seed);
    const auto pi = DenseLevelRppr(g, c, 40);
    for (NodeId w = 0; w < 6; ++w) {
      auto result = BackwardSearch(g, w, {.c = c, .rmax = rmax});
      for (uint32_t l = 0; l < 12; ++l) {
        for (NodeId v = 0; v < g.n(); ++v) {
          const double psi = ReserveAt(result, l, v);
          // Lemma 3.1: |psi - pi| < rmax; reserves below the keep threshold
          // are omitted, so a zero reading only tells us pi was small.
          if (psi > 0) {
            EXPECT_NEAR(psi, pi[l][v][w], rmax)
                << "w=" << w << " l=" << l << " v=" << v;
          } else {
            EXPECT_LT(pi[l][v][w], 20 * rmax)
                << "w=" << w << " l=" << l << " v=" << v;
          }
        }
      }
    }
  }
}

TEST(BackwardSearchTest, TighterRmaxNeverLosesAccuracy) {
  const double c = 0.6;
  Graph g = MakeRandomDigraph(40, 240, 84);
  const auto pi = DenseLevelRppr(g, c, 30);
  const NodeId w = 1;
  for (double rmax : {1e-2, 1e-3, 1e-4, 1e-5}) {
    auto result = BackwardSearch(g, w, {.c = c, .rmax = rmax});
    double max_error = 0;
    for (uint32_t l = 0; l < 10; ++l) {
      for (NodeId v = 0; v < g.n(); ++v) {
        // Only compare stored reserves; absent entries are below the keep
        // threshold and are covered by the previous test.
        const double psi = ReserveAt(result, l, v);
        if (psi > 0) {
          max_error = std::max(max_error, std::abs(psi - pi[l][v][w]));
        }
      }
    }
    EXPECT_LE(max_error, rmax + 1e-12);
  }
}

TEST(BackwardSearchTest, TupleCountScalesWithReversePageRank) {
  // Lemma 3.2: index size for w is O(n pi(w) / eps); nodes with larger
  // reverse PageRank must produce more tuples at equal rmax.
  ChungLuOptions options;
  options.n = 20000;
  options.avg_degree = 10;
  options.gamma_out = 1.6;
  options.seed = 5;
  Graph g = GenerateChungLu(options).ValueOrDie();
  auto pi = ComputeReversePageRank(g, {.c = 0.6});
  auto order = RankNodesByValue(pi);
  BackwardSearchOptions search{.c = 0.6, .rmax = 1e-4};
  const auto big = BackwardSearch(g, order.front(), search);
  const auto small = BackwardSearch(g, order[g.n() / 2], search);
  EXPECT_GT(big.TupleCount(), small.TupleCount());
  EXPECT_GT(big.push_operations, small.push_operations);
}

TEST(BackwardSearchTest, CompleteDigraphSpreadsEvenly) {
  const double c = 0.6;
  Graph g = MakeCompleteDigraph(8);
  auto result = BackwardSearch(g, 0, {.c = c, .rmax = 1e-6});
  // Level 1: pi_1(v, 0) = (1 - sqrt_c) * sqrt_c / 7 for all v != 0.
  const double expected = (1 - std::sqrt(c)) * std::sqrt(c) / 7;
  for (NodeId v = 1; v < 8; ++v) {
    EXPECT_NEAR(ReserveAt(result, 1, v), expected, 1e-5);
  }
}

TEST(BackwardSearchTest, KeepThresholdFiltersOutput) {
  Graph g = MakeRandomDigraph(30, 150, 85);
  BackwardSearchOptions loose{.c = 0.6, .rmax = 1e-5, .max_level = 64,
                              .keep_threshold = 0.05};
  auto result = BackwardSearch(g, 0, loose);
  for (const auto& level : result.levels) {
    for (const auto& [v, psi] : level) {
      EXPECT_GT(psi, 0.05f);
    }
  }
}

TEST(BackwardSearchTest, MaxLevelTruncates) {
  Graph g = MakeCycle(10);
  BackwardSearchOptions options{.c = 0.8, .rmax = 1e-9, .max_level = 3};
  auto result = BackwardSearch(g, 0, options);
  EXPECT_LE(result.levels.size(), 3u);
}

TEST(BackwardSearchTest, DanglingTargetOnlySelfReserve) {
  // Chain 0 -> 1 -> 2; target 0 has no out-neighbors... it does (node 1).
  // Use node 2 (no out-neighbors): reserves exist beyond level 0 only via
  // out-edges of nodes holding residue; node 2 pushes to nothing.
  Graph g = testing::MakeChain(3);
  auto result = BackwardSearch(g, 2, {.c = 0.6, .rmax = 1e-6});
  ASSERT_EQ(result.levels.size(), 1u);
  ASSERT_EQ(result.levels[0].size(), 1u);
  EXPECT_EQ(result.levels[0][0].first, 2u);
}

}  // namespace
}  // namespace prsim
