// Integration tests: the full pipeline (generate -> index -> query ->
// pooled evaluation) with all algorithms side by side, and cross-algorithm
// consistency checks on a medium power-law graph.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/monte_carlo.h"
#include "baselines/probesim.h"
#include "baselines/reads.h"
#include "baselines/sling.h"
#include "baselines/topsim.h"
#include "baselines/tsf.h"
#include "core/prsim.h"
#include "eval/datasets.h"
#include "eval/ground_truth.h"
#include "eval/pooling.h"
#include "gen/chung_lu.h"
#include "graph/stats.h"
#include "ppr/reverse_pagerank.h"
#include "util/timer.h"

namespace prsim {
namespace {

TEST(IntegrationTest, FullPipelineOnPowerLawGraph) {
  // A ~2k-node power-law graph small enough for the exact oracle.
  ChungLuOptions gen;
  gen.n = 1500;
  gen.avg_degree = 8;
  gen.gamma_out = 1.8;
  gen.seed = 77;
  Graph g = GenerateChungLu(gen).ValueOrDie();
  ASSERT_TRUE(g.Validate().ok());

  GroundTruthOptions gt_options;
  gt_options.exact_limit = 3000;
  GroundTruth truth(g, gt_options);
  ASSERT_TRUE(truth.Prepare().ok());
  ASSERT_TRUE(truth.is_exact());

  PRSimOptions prsim_options;
  prsim_options.eps = 0.05;
  prsim_options.alpha = 6;
  PRSim prsim(g, prsim_options);

  ProbeSimOptions probe_options;
  probe_options.eps = 0.05;
  probe_options.alpha = 6;
  ProbeSim probe(g, probe_options);

  SlingOptions sling_options;
  sling_options.eps = 0.05;
  Sling sling(g, sling_options);

  TsfOptions tsf_options;
  Tsf tsf(g, tsf_options);

  ReadsOptions reads_options;
  reads_options.r = 300;
  Reads reads(g, reads_options);

  TopSimOptions topsim_options;
  TopSim topsim(g, topsim_options);

  std::vector<EvalEntry> entries;
  for (SingleSourceSimRank* algo :
       std::initializer_list<SingleSourceSimRank*>{&prsim, &probe, &sling,
                                                   &tsf, &reads, &topsim}) {
    WallTimer timer;
    ASSERT_TRUE(algo->Preprocess().ok()) << algo->name();
    entries.push_back({algo->name(), algo, timer.Seconds()});
  }

  auto queries = SampleQueryNodes(g, 6, 123);
  PoolingOptions pooling;
  pooling.k = 25;
  auto metrics = RunPooledEvaluation(g, entries, truth, queries, pooling);
  ASSERT_EQ(metrics.size(), 6u);

  for (const auto& m : metrics) {
    EXPECT_EQ(m.queries_answered, queries.size()) << m.label;
    EXPECT_GE(m.precision_at_k, 0.0) << m.label;
    EXPECT_LE(m.precision_at_k, 1.0) << m.label;
  }
  // PRSim at eps=0.05 must beat the heuristic TopSim on error and be in the
  // same accuracy class as ProbeSim.
  const auto& prsim_m = metrics[0];
  const auto& topsim_m = metrics[5];
  EXPECT_LT(prsim_m.avg_error_at_k, 0.1);
  EXPECT_GE(prsim_m.precision_at_k, 0.6);
  EXPECT_LE(prsim_m.avg_error_at_k, topsim_m.avg_error_at_k + 0.02);
}

TEST(IntegrationTest, PRSimTracksHardnessAcrossGamma) {
  // The headline claim, in miniature: at fixed n and d̄, PRSim's per-query
  // backward-walk work drops as the out-degree exponent grows.
  uint64_t work_flat = 0, work_steep = 0;
  for (auto [gamma, work] :
       std::initializer_list<std::pair<double, uint64_t*>>{
           {1.3, &work_flat}, {4.0, &work_steep}}) {
    ChungLuOptions gen;
    gen.n = 20000;
    gen.avg_degree = 10;
    gen.gamma_out = gamma;
    gen.seed = 9;
    Graph g = GenerateChungLu(gen).ValueOrDie();
    PRSimOptions options;
    options.eps = 0.1;
    PRSim algo(g, options);
    ASSERT_TRUE(algo.Preprocess().ok());
    uint64_t total = 0;
    for (NodeId u : SampleQueryNodes(g, 5, 13)) {
      algo.Query(u);
      total += algo.last_query_cost().backward_increments +
               algo.last_query_cost().index_tuples_read;
    }
    *work = total;
  }
  EXPECT_LT(work_steep, work_flat);
}

TEST(IntegrationTest, SecondMomentPredictsQueryCost) {
  // Theorem 3.11: expected cost scales with sum_w pi(w)^2. Verify the
  // hardness statistic orders two graphs the same way as measured work.
  double moment_flat, moment_steep;
  uint64_t work_flat = 0, work_steep = 0;
  for (auto [gamma, moment, work] :
       std::initializer_list<std::tuple<double, double*, uint64_t*>>{
           {1.3, &moment_flat, &work_flat},
           {3.0, &moment_steep, &work_steep}}) {
    ChungLuOptions gen;
    gen.n = 15000;
    gen.avg_degree = 10;
    gen.gamma_out = gamma;
    gen.seed = 21;
    Graph g = GenerateChungLu(gen).ValueOrDie();
    auto pi = ComputeReversePageRank(g, {.c = 0.6});
    *moment = AnalyzePageRankVector(pi).second_moment;

    PRSimOptions options;
    options.eps = 0.1;
    options.j0 = 1;  // isolate the backward-walk term
    PRSim algo(g, options);
    ASSERT_TRUE(algo.Preprocess().ok());
    uint64_t total = 0;
    for (NodeId u : SampleQueryNodes(g, 5, 31)) {
      algo.Query(u);
      total += algo.last_query_cost().backward_increments;
    }
    *work = total;
  }
  EXPECT_GT(moment_flat, moment_steep);
  EXPECT_GT(work_flat, work_steep);
}

TEST(IntegrationTest, GraphRoundTripThroughDatasetRegistry) {
  Graph g = MakeDataset(FindDataset("LJ").ValueOrDie(), 0.05).ValueOrDie();
  ASSERT_TRUE(g.Validate().ok());
  auto summary = Summarize(g);
  EXPECT_GT(summary.n, 1000u);
  EXPECT_GT(summary.avg_degree, 5.0);

  PRSimOptions options;
  options.eps = 0.25;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  auto result = algo.Query(SampleQueryNodes(g, 1, 3)[0]);
  EXPECT_FALSE(result.empty());
}

}  // namespace
}  // namespace prsim
