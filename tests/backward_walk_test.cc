// Tests for Algorithms 2 and 3: unbiasedness (Lemma 3.3), the variance bound
// of the variance-bounded walk (Lemma 3.5), cost scaling (Lemma 3.4), and the
// Section 3.4 gadget where the simple walk's estimator explodes.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "gen/chung_lu.h"
#include "ppr/backward_walk.h"
#include "ppr/reverse_pagerank.h"
#include "test_util.h"
#include "util/flat_hash_map.h"

namespace prsim {
namespace {

using testing::DenseLevelRppr;
using testing::MakeCompleteDigraph;
using testing::MakeRandomDigraph;
using testing::MakeVarianceGadget;

double EstimateAt(const BackwardWalkResult& result, NodeId v) {
  for (const auto& [node, value] : result.estimates) {
    if (node == v) return value;
  }
  return 0.0;
}

// Parameterized over (algorithm, seed): both walks must be unbiased.
class BackwardWalkUnbiasednessTest
    : public ::testing::TestWithParam<std::tuple<bool, uint64_t>> {};

TEST_P(BackwardWalkUnbiasednessTest, MeanMatchesDenseRppr) {
  const auto [variance_bounded, seed] = GetParam();
  const double c = 0.6;
  Graph g = MakeRandomDigraph(18, 70, seed);
  const uint32_t target_level = 3;
  const auto pi = DenseLevelRppr(g, c, target_level);
  BackwardWalker walker(g, c);
  Rng rng(seed * 31 + 1);
  const NodeId w = 2;

  const int runs = 120000;
  std::vector<double> mean(g.n(), 0.0);
  for (int i = 0; i < runs; ++i) {
    auto result = variance_bounded
                      ? walker.RunVarianceBounded(w, target_level, rng)
                      : walker.RunSimple(w, target_level, rng);
    for (const auto& [v, value] : result.estimates) mean[v] += value;
  }
  for (NodeId v = 0; v < g.n(); ++v) {
    const double expected = pi[target_level][v][w];
    EXPECT_NEAR(mean[v] / runs, expected, 0.01)
        << (variance_bounded ? "vb" : "simple") << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, BackwardWalkUnbiasednessTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values(7u, 8u, 9u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "VarianceBounded"
                                                 : "Simple") +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(BackwardWalkTest, LevelZeroIsDeterministic) {
  Graph g = MakeRandomDigraph(10, 40, 3);
  BackwardWalker walker(g, 0.6);
  Rng rng(1);
  auto result = walker.RunVarianceBounded(4, 0, rng);
  ASSERT_EQ(result.estimates.size(), 1u);
  EXPECT_EQ(result.estimates[0].first, 4u);
  EXPECT_NEAR(result.estimates[0].second, 1.0 - std::sqrt(0.6), 1e-12);
}

TEST(BackwardWalkTest, VarianceBoundHoldsEmpirically) {
  // Lemma 3.5: E[pi_hat^2] <= pi. Check the second moment on random graphs.
  const double c = 0.6;
  Graph g = MakeRandomDigraph(15, 60, 12);
  const uint32_t level = 3;
  const auto pi = DenseLevelRppr(g, c, level);
  BackwardWalker walker(g, c);
  Rng rng(2);
  const NodeId w = 0;
  const int runs = 150000;
  std::vector<double> second(g.n(), 0.0);
  for (int i = 0; i < runs; ++i) {
    auto result = walker.RunVarianceBounded(w, level, rng);
    for (const auto& [v, value] : result.estimates) {
      second[v] += value * value;
    }
  }
  for (NodeId v = 0; v < g.n(); ++v) {
    const double bound = pi[level][v][w];
    // Allow 4-sigma sampling noise on the second-moment estimate.
    const double noise = 4.0 * std::sqrt(bound / runs) + 1e-4;
    EXPECT_LE(second[v] / runs, bound + noise) << "v=" << v;
  }
}

TEST(BackwardWalkTest, GadgetMeansAgree) {
  // Section 3.4 gadget w -> x_i -> v: both algorithms stay unbiased even in
  // the adversarial construction.
  const double c = 0.6;
  const NodeId spokes = 50;
  Graph g = MakeVarianceGadget(spokes);
  const auto pi = DenseLevelRppr(g, c, 2);
  BackwardWalker walker(g, c);
  Rng rng(3);
  double sum_simple = 0, sum_vb = 0;
  const int runs = 200000;
  for (int i = 0; i < runs; ++i) {
    sum_simple += EstimateAt(walker.RunSimple(0, 2, rng), 1);
    sum_vb += EstimateAt(walker.RunVarianceBounded(0, 2, rng), 1);
  }
  EXPECT_NEAR(sum_simple / runs, pi[2][1][0], 0.01);
  EXPECT_NEAR(sum_vb / runs, pi[2][1][0], 0.01);
}

TEST(BackwardWalkTest, SimpleWalkPassesAccumulatedMassVarianceBoundedCaps) {
  // Funnel: w -> x_i (k spokes) -> y -> z, plus K feeder edges f_j -> z to
  // raise d_in(z). The simple walk forwards the *whole* accumulated estimate
  // pi_hat_2(y) = B * (1-sqrt_c) (B = number of spokes that fired) to z, so
  // estimates of 2..5 * (1-sqrt_c) appear; the variance-bounded walk always
  // takes the sampled branch at z (d_in(z) >> pi_hat/(1-sqrt_c)) and its
  // increments are capped at exactly (1-sqrt_c) — this is the mechanism
  // behind Lemma 3.5.
  const double c = 0.6;
  const NodeId k = 20, feeders = 50;
  std::vector<Edge> edges;
  const NodeId w = 0, y = 1, z = 2;
  for (NodeId i = 0; i < k; ++i) {
    const NodeId x = 3 + i;
    edges.emplace_back(w, x);
    edges.emplace_back(x, y);
  }
  edges.emplace_back(y, z);
  for (NodeId j = 0; j < feeders; ++j) edges.emplace_back(3 + k + j, z);
  Graph g = BuildGraph(3 + k + feeders, std::move(edges)).ValueOrDie();
  ASSERT_EQ(g.InDegree(z), feeders + 1);

  BackwardWalker walker(g, c);
  const double term = 1.0 - std::sqrt(c);
  Rng rng(4);
  double max_simple = 0, max_vb = 0;
  for (int i = 0; i < 20000; ++i) {
    max_simple = std::max(max_simple, EstimateAt(walker.RunSimple(w, 3, rng), z));
    max_vb = std::max(max_vb,
                      EstimateAt(walker.RunVarianceBounded(w, 3, rng), z));
  }
  EXPECT_GE(max_simple, 2 * term - 1e-9);
  EXPECT_LE(max_vb, term + 1e-9);
}

TEST(BackwardWalkTest, CostScalesWithReversePageRank) {
  // Lemma 3.4: expected increments are O(n pi(w)).
  ChungLuOptions options;
  options.n = 20000;
  options.avg_degree = 10;
  options.gamma_out = 1.6;
  options.seed = 4;
  Graph g = GenerateChungLu(options).ValueOrDie();
  auto pi = ComputeReversePageRank(g, {.c = 0.6});
  auto order = RankNodesByValue(pi);
  BackwardWalker walker(g, 0.6);
  Rng rng(5);

  auto mean_cost = [&](NodeId w) {
    uint64_t total = 0;
    for (int i = 0; i < 300; ++i) {
      total += walker.RunVarianceBounded(w, 8, rng).increments;
    }
    return static_cast<double>(total) / 300.0;
  };
  const NodeId hub = order.front();
  const NodeId mid = order[g.n() / 2];
  const double hub_cost = mean_cost(hub);
  const double mid_cost = mean_cost(mid);
  EXPECT_GT(pi[hub], 10 * pi[mid]);
  EXPECT_GT(hub_cost, mid_cost);
  // Cost per unit of n*pi(w) should be within a common constant.
  const double hub_ratio = hub_cost / (g.n() * pi[hub]);
  EXPECT_LT(hub_ratio, 1.0 / (1.0 - std::sqrt(0.6)) + 1.0);
}

TEST(BackwardWalkTest, CompleteDigraphLevelOne) {
  // All nodes symmetric: pi_1(v, w) = (1-sqrt_c) sqrt_c/(n-1) for v != w.
  const double c = 0.6;
  const NodeId n = 8;
  Graph g = MakeCompleteDigraph(n);
  BackwardWalker walker(g, c);
  Rng rng(6);
  std::vector<double> mean(n, 0.0);
  const int runs = 200000;
  for (int i = 0; i < runs; ++i) {
    for (const auto& [v, value] :
         walker.RunVarianceBounded(0, 1, rng).estimates) {
      mean[v] += value;
    }
  }
  const double expected = (1 - std::sqrt(c)) * std::sqrt(c) / (n - 1);
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_NEAR(mean[v] / runs, expected, 0.002);
  }
}

TEST(BackwardWalkTest, TargetWithNoOutEdgesDiesAfterLevelZero) {
  Graph g = testing::MakeChain(3);
  BackwardWalker walker(g, 0.6);
  Rng rng(7);
  auto result = walker.RunVarianceBounded(2, 4, rng);
  EXPECT_TRUE(result.estimates.empty());
}

TEST(BackwardWalkTest, EstimatesAreNonNegative) {
  Graph g = MakeRandomDigraph(40, 200, 13);
  BackwardWalker walker(g, 0.8);
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    for (const auto& [v, value] :
         walker.RunVarianceBounded(rng.NextIndex(40), 5, rng).estimates) {
      EXPECT_GE(value, 0.0);
    }
  }
}

}  // namespace
}  // namespace prsim
