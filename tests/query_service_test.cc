// QueryService + pool-backed BatchQuery: deterministic batch results at any
// thread count, bounded-queue backpressure, failure isolation, latency
// percentile monotonicity, and cold start from index artifacts.

#include "core/query_service.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_query.h"
#include "core/engine_config.h"
#include "core/engine_registry.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace prsim {
namespace {

using ::prsim::testing::MakeRandomDigraph;

EngineConfig ParseConfig(const std::string& params) {
  auto parsed = EngineConfig::Parse(params);
  parsed.status().Abort();
  return std::move(parsed).ValueOrDie();
}

std::unique_ptr<SingleSourceSimRank> MakeReadyEngine(
    const Graph& graph, const std::string& algo, const std::string& params) {
  auto engine = EngineRegistry::Global().Create(algo, graph, params);
  engine.status().Abort();
  auto ready = std::move(engine).ValueOrDie();
  ready->Preprocess().Abort();
  return ready;
}

std::vector<NodeId> CyclingSources(NodeId n, size_t count) {
  std::vector<NodeId> sources(count);
  for (size_t i = 0; i < count; ++i) {
    sources[i] = static_cast<NodeId>((i * 7 + 3) % n);
  }
  return sources;
}

// ---------------------------------------------------------------------------
// Pool-backed BatchQuery determinism (the PR's bit-identity contract).
// ---------------------------------------------------------------------------

TEST(BatchQueryPoolTest, PersistentEnginesAreThreadCountInvariant) {
  const Graph g = MakeRandomDigraph(120, 500, /*seed=*/11);
  const struct {
    const char* algo;
    const char* params;
  } kConfigs[] = {
      {"prsim", "eps=0.4,seed=7,threads=1"},
      {"sling", "eps=0.4,seed=7,threads=1"},
      {"reads", "r=10,t=3,seed=7"},
      {"tsf", "rg=10,rq=3,seed=7"},
  };
  const auto sources = CyclingSources(g.n(), 40);
  for (const auto& config : kConfigs) {
    SCOPED_TRACE(config.algo);
    const auto leader = MakeReadyEngine(g, config.algo, config.params);
    const auto baseline = BatchQuery(*leader, sources, /*threads=*/1);
    for (size_t threads : {2u, 7u, static_cast<unsigned>(DefaultThreadCount())}) {
      const auto scores = BatchQuery(*leader, sources, threads);
      ASSERT_EQ(scores.size(), baseline.size());
      for (size_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(scores[i], baseline[i])
            << config.algo << " diverged at position " << i << " with "
            << threads << " threads";
      }
    }
  }
}

TEST(BatchQueryPoolTest, ThousandQueryBatchReportsLatencyPercentiles) {
  const Graph g = MakeRandomDigraph(100, 400, /*seed=*/5);
  const auto leader = MakeReadyEngine(g, "prsim", "eps=0.5,seed=3,threads=1");
  const auto sources = CyclingSources(g.n(), 1000);
  const auto serial = BatchQueryWithStats(*leader, sources, /*threads=*/1);
  const auto pooled = BatchQueryWithStats(*leader, sources, /*threads=*/4);
  ASSERT_EQ(serial.scores.size(), 1000u);
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(pooled.scores[i], serial.scores[i]) << "position " << i;
  }
  for (const QueryCost& cost : {serial.cost, pooled.cost}) {
    EXPECT_GT(cost.walks, 0u);
    EXPECT_GT(cost.latency_p50_seconds, 0.0);
    EXPECT_LE(cost.latency_p50_seconds, cost.latency_p95_seconds);
    EXPECT_LE(cost.latency_p95_seconds, cost.latency_p99_seconds);
  }
}

// ---------------------------------------------------------------------------
// QueryService behavior over real engines.
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, SingleWorkerServiceReplaysBatchQueryBitForBit) {
  const Graph g = MakeRandomDigraph(90, 350, /*seed=*/2);
  const auto leader = MakeReadyEngine(g, "prsim", "eps=0.4,seed=9,threads=1");
  const auto sources = CyclingSources(g.n(), 25);
  const auto expected = BatchQuery(*leader, sources, /*threads=*/1);

  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("prsim", leader->CloneWithSeed(leader->seed())).ok());
  for (size_t i = 0; i < sources.size(); ++i) {
    if (i == 5) {
      // An invalid request interleaved into the stream must not consume a
      // positional seed — the valid queries after it still replay the
      // batch bit for bit.
      EXPECT_FALSE(service.Submit({"prsim", 100000, 0}).get().status.ok());
    }
    const QueryResult result =
        service.Submit({"prsim", sources[i], /*k=*/0}).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.scores, expected[i]) << "request " << i;
    EXPECT_GT(result.latency_seconds, 0.0);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, sources.size());  // prechecked failures excluded
  EXPECT_EQ(stats.completed, sources.size());
  EXPECT_EQ(stats.failed, 1u);
}

// Submitting from a worker of a *different* pool (here: the shared pool,
// as a ParallelFor callback would) is allowed — only the service's own
// workers are forbidden, since only they can deadlock its queue.
TEST(QueryServiceTest, SubmitFromForeignPoolWorkerIsAllowed) {
  const Graph g = MakeRandomDigraph(60, 200, /*seed=*/8);
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(service.AddEngine("prsim", g, ParseConfig("eps=0.4")).ok());
  auto outer = ThreadPool::Shared().Submit(
      [&service] { return service.Submit({"prsim", 1, 5}).get(); });
  EXPECT_TRUE(outer.get().status.ok());
}

TEST(QueryServiceTest, TopKRequestsReturnTopK) {
  const Graph g = MakeRandomDigraph(80, 300, /*seed=*/4);
  const auto leader = MakeReadyEngine(g, "prsim", "eps=0.4,seed=1,threads=1");
  const auto expected = BatchQuery(*leader, {5}, /*threads=*/1);

  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("prsim", leader->CloneWithSeed(leader->seed())).ok());
  const QueryResult result = service.Submit({"prsim", 5, /*k=*/4}).get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.scores, TopK(expected[0], 4, 5));
}

TEST(QueryServiceTest, EmptyAlgoSelectsFirstRegisteredEngine) {
  const Graph g = MakeRandomDigraph(60, 200, /*seed=*/8);
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(service.AddEngine("probesim", g, ParseConfig("eps=0.4")).ok());
  EXPECT_EQ(service.Algos(), std::vector<std::string>{"probesim"});
  const QueryResult result = service.Submit({"", 3, 5}).get();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
}

TEST(QueryServiceTest, InvalidRequestsFailWithoutPoisoningTheService) {
  const Graph g = MakeRandomDigraph(60, 200, /*seed=*/8);
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(service.AddEngine("prsim", g, ParseConfig("eps=0.4")).ok());

  const QueryResult unknown = service.Submit({"nonesuch", 0, 0}).get();
  EXPECT_EQ(unknown.status.code(), StatusCode::kNotFound);
  const QueryResult out_of_range = service.Submit({"prsim", 10000, 0}).get();
  EXPECT_EQ(out_of_range.status.code(), StatusCode::kInvalidArgument);

  const QueryResult good = service.Submit({"prsim", 1, 5}).get();
  EXPECT_TRUE(good.status.ok()) << good.status.ToString();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(service.pending(), 0u);
}

TEST(QueryServiceTest, RegistrationIsRejectedAfterFirstSubmit) {
  const Graph g = MakeRandomDigraph(60, 200, /*seed=*/8);
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(service.AddEngine("prsim", g, ParseConfig("eps=0.4")).ok());
  ASSERT_EQ(service.AddEngine("prsim", g, ParseConfig("eps=0.4")).code(),
            StatusCode::kAlreadyExists);
  service.Submit({"prsim", 1, 3}).get();
  EXPECT_EQ(service.AddEngine("probesim", g, ParseConfig("eps=0.4")).code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, ColdStartFromIndexMatchesFreshEngine) {
  const Graph g = MakeRandomDigraph(90, 350, /*seed=*/2);
  const std::string params = "eps=0.4,seed=9,threads=1";
  const auto leader = MakeReadyEngine(g, "prsim", params);
  const auto artifact =
      std::filesystem::temp_directory_path() /
      ("query_service_test_" + std::to_string(::getpid()) + ".idx");
  ASSERT_TRUE(leader->SaveIndex(artifact.string()).ok());

  const auto sources = CyclingSources(g.n(), 10);
  const auto expected = BatchQuery(*leader, sources, /*threads=*/1);
  {
    QueryServiceOptions options;
    options.threads = 1;
    QueryService service(options);
    ASSERT_TRUE(service
                    .AddEngineFromIndex("prsim", g, ParseConfig(params),
                                        artifact.string())
                    .ok());
    for (size_t i = 0; i < sources.size(); ++i) {
      const QueryResult result = service.Submit({"prsim", sources[i], 0}).get();
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_EQ(result.scores, expected[i]) << "request " << i;
    }
  }
  std::filesystem::remove(artifact);
}

// ---------------------------------------------------------------------------
// Failure isolation and backpressure, driven by a controllable fake engine.
// ---------------------------------------------------------------------------

/// Deterministic engine with a configurable per-query delay and a poison
/// source that throws, shared across all clones.
class FakeEngine : public SingleSourceSimRank {
 public:
  struct Control {
    std::atomic<int> queries{0};
    NodeId poison_source = static_cast<NodeId>(-1);
    std::chrono::milliseconds delay{0};
  };

  FakeEngine(NodeId n, uint64_t seed, std::shared_ptr<Control> control)
      : n_(n), seed_(seed), control_(std::move(control)) {}

  std::string name() const override { return "Fake"; }
  NodeId node_count() const override { return n_; }

  ScoreList Query(NodeId u) override {
    if (control_->delay.count() > 0) {
      std::this_thread::sleep_for(control_->delay);
    }
    control_->queries.fetch_add(1);
    if (u == control_->poison_source) {
      throw std::runtime_error("poisoned source");
    }
    cost_ = {};
    cost_.walks = 1;
    return {{u, 1.0},
            {(u + 1) % n_, static_cast<double>(seed_ % 97) / 100.0}};
  }

  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const override {
    return std::make_unique<FakeEngine>(n_, seed, control_);
  }
  uint64_t seed() const override { return seed_; }
  void Reseed(uint64_t seed) override { seed_ = seed; }

 private:
  NodeId n_;
  uint64_t seed_;
  std::shared_ptr<Control> control_;
};

TEST(QueryServiceTest, EngineExceptionDoesNotPoisonThePool) {
  auto control = std::make_shared<FakeEngine::Control>();
  control->poison_source = 3;
  QueryServiceOptions options;
  options.threads = 2;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  const QueryResult poisoned = service.Submit({"fake", 3, 0}).get();
  EXPECT_EQ(poisoned.status.code(), StatusCode::kInternal);
  EXPECT_NE(poisoned.status.message().find("poisoned source"),
            std::string::npos);
  for (NodeId u : {1u, 2u, 4u, 5u}) {
    const QueryResult result = service.Submit({"fake", u, 0}).get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    ASSERT_EQ(result.scores.size(), 2u);
    EXPECT_EQ(result.scores[0].first, u);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(QueryServiceTest, RejectPolicyShedsLoadWhenQueueIsFull) {
  auto control = std::make_shared<FakeEngine::Control>();
  control->delay = std::chrono::milliseconds(25);
  QueryServiceOptions options;
  options.threads = 1;
  options.max_queue = 2;
  options.backpressure = QueryServiceOptions::Backpressure::kReject;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(service.Submit({"fake", 1, 0}));
  }
  size_t rejected = 0;
  size_t completed = 0;
  for (auto& future : futures) {
    const QueryResult result = future.get();
    if (result.status.code() == StatusCode::kResourceExhausted) {
      ++rejected;
    } else if (result.status.ok()) {
      ++completed;
    }
  }
  EXPECT_EQ(rejected + completed, 10u);
  // One 25 ms query per worker slot: ten instant submits against a queue of
  // two must shed at least one request and serve at least the first.
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(completed, 1u);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed, completed);
}

TEST(QueryServiceTest, BlockPolicyCompletesEverythingWithTinyQueue) {
  auto control = std::make_shared<FakeEngine::Control>();
  control->delay = std::chrono::milliseconds(2);
  QueryServiceOptions options;
  options.threads = 2;
  options.max_queue = 1;
  options.backpressure = QueryServiceOptions::Backpressure::kBlock;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(service.Submit({"fake", 2, 0}));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(QueryServiceTest, LatencyPercentilesAreMonotoneAndSurfacedInQueryCost) {
  auto control = std::make_shared<FakeEngine::Control>();
  control->delay = std::chrono::milliseconds(1);
  QueryServiceOptions options;
  options.threads = 2;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(service.Submit({"fake", static_cast<NodeId>(i % 50), 0}));
  }
  for (auto& future : futures) future.get();

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 40u);
  EXPECT_GT(stats.p50_seconds, 0.0);
  EXPECT_LE(stats.p50_seconds, stats.p95_seconds);
  EXPECT_LE(stats.p95_seconds, stats.p99_seconds);
  EXPECT_EQ(stats.aggregate_cost.latency_p50_seconds, stats.p50_seconds);
  EXPECT_EQ(stats.aggregate_cost.latency_p95_seconds, stats.p95_seconds);
  EXPECT_EQ(stats.aggregate_cost.latency_p99_seconds, stats.p99_seconds);
  EXPECT_EQ(stats.aggregate_cost.walks, 40u);
}

// ---------------------------------------------------------------------------
// ServiceStatsJson golden round trip.
// ---------------------------------------------------------------------------

// Pulls `"field":value` out of a JSON line built by ServiceStatsJson. The
// line is flat (no nesting), so a string scan is an exact parser for it.
std::string JsonField(const std::string& json, const std::string& field) {
  const std::string needle = "\"" + field + "\":";
  const size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing field " << field << ": " << json;
  if (at == std::string::npos) return "";
  const size_t begin = at + needle.size();
  size_t end = json.find_first_of(",}", begin);
  EXPECT_NE(end, std::string::npos) << json;
  return json.substr(begin, end - begin);
}

TEST(ServiceStatsJsonTest, EveryFieldRoundTripsThroughTheJsonLine) {
  // Distinct values per field so a swapped format argument cannot pass.
  ServiceStats stats;
  stats.submitted = 101;
  stats.completed = 89;
  stats.failed = 7;
  stats.rejected = 5;
  stats.queue_high_water = 64;
  stats.p50_seconds = 0.0015;   // 1.5 ms
  stats.p95_seconds = 0.0625;   // 62.5 ms
  stats.p99_seconds = 0.25;     // 250 ms
  stats.cache_hits = 4242;
  stats.cache_misses = 17;
  stats.cache_coalesced = 9;
  stats.cache_evictions = 3;
  stats.cache_bytes = 123456;

  const std::string json = ServiceStatsJson(stats, "tcp");
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be a single line";
  EXPECT_EQ(JsonField(json, "event"), "\"serve_stats\"");
  EXPECT_EQ(JsonField(json, "transport"), "\"tcp\"");
  EXPECT_EQ(JsonField(json, "accepted"), "101");
  EXPECT_EQ(JsonField(json, "completed"), "89");
  EXPECT_EQ(JsonField(json, "failed"), "7");
  EXPECT_EQ(JsonField(json, "rejected"), "5");
  EXPECT_EQ(JsonField(json, "queue_high_water"), "64");
  EXPECT_DOUBLE_EQ(std::stod(JsonField(json, "p50_ms")), 1.5);
  EXPECT_DOUBLE_EQ(std::stod(JsonField(json, "p95_ms")), 62.5);
  EXPECT_DOUBLE_EQ(std::stod(JsonField(json, "p99_ms")), 250.0);
  EXPECT_EQ(JsonField(json, "cache_hits"), "4242");
  EXPECT_EQ(JsonField(json, "cache_misses"), "17");
  EXPECT_EQ(JsonField(json, "cache_coalesced"), "9");
  EXPECT_EQ(JsonField(json, "cache_evictions"), "3");
  EXPECT_EQ(JsonField(json, "cache_bytes"), "123456");

  // All-zero stats still produce every field (schema stability for the
  // log scrapers in CI).
  const std::string zero = ServiceStatsJson(ServiceStats{}, "stdio");
  for (const char* field :
       {"accepted", "completed", "failed", "rejected", "queue_high_water",
        "p50_ms", "p95_ms", "p99_ms", "cache_hits", "cache_misses",
        "cache_coalesced", "cache_evictions", "cache_bytes"}) {
    EXPECT_EQ(std::stod(JsonField(zero, field)), 0.0) << field;
  }
}

TEST(QueryServiceTest, SubmitWithoutEnginesFails) {
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  const QueryResult result = service.Submit({"prsim", 0, 0}).get();
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace prsim
