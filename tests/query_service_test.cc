// QueryService + pool-backed BatchQuery: deterministic batch results at any
// thread count, bounded-queue backpressure, failure isolation, latency
// percentile monotonicity, and cold start from index artifacts.

#include "core/query_service.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_query.h"
#include "core/engine_config.h"
#include "core/engine_registry.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace prsim {
namespace {

using ::prsim::testing::MakeRandomDigraph;

EngineConfig ParseConfig(const std::string& params) {
  auto parsed = EngineConfig::Parse(params);
  parsed.status().Abort();
  return std::move(parsed).ValueOrDie();
}

std::unique_ptr<SingleSourceSimRank> MakeReadyEngine(
    const Graph& graph, const std::string& algo, const std::string& params) {
  auto engine = EngineRegistry::Global().Create(algo, graph, params);
  engine.status().Abort();
  auto ready = std::move(engine).ValueOrDie();
  ready->Preprocess().Abort();
  return ready;
}

std::vector<NodeId> CyclingSources(NodeId n, size_t count) {
  std::vector<NodeId> sources(count);
  for (size_t i = 0; i < count; ++i) {
    sources[i] = static_cast<NodeId>((i * 7 + 3) % n);
  }
  return sources;
}

// ---------------------------------------------------------------------------
// Pool-backed BatchQuery determinism (the PR's bit-identity contract).
// ---------------------------------------------------------------------------

TEST(BatchQueryPoolTest, PersistentEnginesAreThreadCountInvariant) {
  const Graph g = MakeRandomDigraph(120, 500, /*seed=*/11);
  const struct {
    const char* algo;
    const char* params;
  } kConfigs[] = {
      {"prsim", "eps=0.4,seed=7,threads=1"},
      {"sling", "eps=0.4,seed=7,threads=1"},
      {"reads", "r=10,t=3,seed=7"},
      {"tsf", "rg=10,rq=3,seed=7"},
  };
  const auto sources = CyclingSources(g.n(), 40);
  for (const auto& config : kConfigs) {
    SCOPED_TRACE(config.algo);
    const auto leader = MakeReadyEngine(g, config.algo, config.params);
    const auto baseline = BatchQuery(*leader, sources, /*threads=*/1);
    for (size_t threads : {2u, 7u, static_cast<unsigned>(DefaultThreadCount())}) {
      const auto scores = BatchQuery(*leader, sources, threads);
      ASSERT_EQ(scores.size(), baseline.size());
      for (size_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(scores[i], baseline[i])
            << config.algo << " diverged at position " << i << " with "
            << threads << " threads";
      }
    }
  }
}

TEST(BatchQueryPoolTest, ThousandQueryBatchReportsLatencyPercentiles) {
  const Graph g = MakeRandomDigraph(100, 400, /*seed=*/5);
  const auto leader = MakeReadyEngine(g, "prsim", "eps=0.5,seed=3,threads=1");
  const auto sources = CyclingSources(g.n(), 1000);
  const auto serial = BatchQueryWithStats(*leader, sources, /*threads=*/1);
  const auto pooled = BatchQueryWithStats(*leader, sources, /*threads=*/4);
  ASSERT_EQ(serial.scores.size(), 1000u);
  for (size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(pooled.scores[i], serial.scores[i]) << "position " << i;
  }
  for (const QueryCost& cost : {serial.cost, pooled.cost}) {
    EXPECT_GT(cost.walks, 0u);
    EXPECT_GT(cost.latency_p50_seconds, 0.0);
    EXPECT_LE(cost.latency_p50_seconds, cost.latency_p95_seconds);
    EXPECT_LE(cost.latency_p95_seconds, cost.latency_p99_seconds);
  }
}

// ---------------------------------------------------------------------------
// QueryService behavior over real engines.
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, SingleWorkerServiceReplaysBatchQueryBitForBit) {
  const Graph g = MakeRandomDigraph(90, 350, /*seed=*/2);
  const auto leader = MakeReadyEngine(g, "prsim", "eps=0.4,seed=9,threads=1");
  const auto sources = CyclingSources(g.n(), 25);
  const auto expected = BatchQuery(*leader, sources, /*threads=*/1);

  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("prsim", leader->CloneWithSeed(leader->seed())).ok());
  for (size_t i = 0; i < sources.size(); ++i) {
    if (i == 5) {
      // An invalid request interleaved into the stream must not consume a
      // positional seed — the valid queries after it still replay the
      // batch bit for bit.
      EXPECT_FALSE(service.Submit({"prsim", 100000, 0}).get().status.ok());
    }
    const QueryResult result =
        service.Submit({"prsim", sources[i], /*k=*/0}).get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.scores, expected[i]) << "request " << i;
    EXPECT_GT(result.latency_seconds, 0.0);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.submitted, sources.size());  // prechecked failures excluded
  EXPECT_EQ(stats.completed, sources.size());
  EXPECT_EQ(stats.failed, 1u);
}

// Submitting from a worker of a *different* pool (here: the shared pool,
// as a ParallelFor callback would) is allowed — only the service's own
// workers are forbidden, since only they can deadlock its queue.
TEST(QueryServiceTest, SubmitFromForeignPoolWorkerIsAllowed) {
  const Graph g = MakeRandomDigraph(60, 200, /*seed=*/8);
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(service.AddEngine("prsim", g, ParseConfig("eps=0.4")).ok());
  auto outer = ThreadPool::Shared().Submit(
      [&service] { return service.Submit({"prsim", 1, 5}).get(); });
  EXPECT_TRUE(outer.get().status.ok());
}

TEST(QueryServiceTest, TopKRequestsReturnTopK) {
  const Graph g = MakeRandomDigraph(80, 300, /*seed=*/4);
  const auto leader = MakeReadyEngine(g, "prsim", "eps=0.4,seed=1,threads=1");
  const auto expected = BatchQuery(*leader, {5}, /*threads=*/1);

  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("prsim", leader->CloneWithSeed(leader->seed())).ok());
  const QueryResult result = service.Submit({"prsim", 5, /*k=*/4}).get();
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.scores, TopK(expected[0], 4, 5));
}

TEST(QueryServiceTest, EmptyAlgoSelectsFirstRegisteredEngine) {
  const Graph g = MakeRandomDigraph(60, 200, /*seed=*/8);
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(service.AddEngine("probesim", g, ParseConfig("eps=0.4")).ok());
  EXPECT_EQ(service.Algos(), std::vector<std::string>{"probesim"});
  const QueryResult result = service.Submit({"", 3, 5}).get();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
}

TEST(QueryServiceTest, InvalidRequestsFailWithoutPoisoningTheService) {
  const Graph g = MakeRandomDigraph(60, 200, /*seed=*/8);
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(service.AddEngine("prsim", g, ParseConfig("eps=0.4")).ok());

  const QueryResult unknown = service.Submit({"nonesuch", 0, 0}).get();
  EXPECT_EQ(unknown.status.code(), StatusCode::kNotFound);
  const QueryResult out_of_range = service.Submit({"prsim", 10000, 0}).get();
  EXPECT_EQ(out_of_range.status.code(), StatusCode::kInvalidArgument);

  const QueryResult good = service.Submit({"prsim", 1, 5}).get();
  EXPECT_TRUE(good.status.ok()) << good.status.ToString();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(service.pending(), 0u);
}

TEST(QueryServiceTest, RegistrationIsRejectedAfterFirstSubmit) {
  const Graph g = MakeRandomDigraph(60, 200, /*seed=*/8);
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(service.AddEngine("prsim", g, ParseConfig("eps=0.4")).ok());
  ASSERT_EQ(service.AddEngine("prsim", g, ParseConfig("eps=0.4")).code(),
            StatusCode::kAlreadyExists);
  service.Submit({"prsim", 1, 3}).get();
  EXPECT_EQ(service.AddEngine("probesim", g, ParseConfig("eps=0.4")).code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, ColdStartFromIndexMatchesFreshEngine) {
  const Graph g = MakeRandomDigraph(90, 350, /*seed=*/2);
  const std::string params = "eps=0.4,seed=9,threads=1";
  const auto leader = MakeReadyEngine(g, "prsim", params);
  const auto artifact =
      std::filesystem::temp_directory_path() /
      ("query_service_test_" + std::to_string(::getpid()) + ".idx");
  ASSERT_TRUE(leader->SaveIndex(artifact.string()).ok());

  const auto sources = CyclingSources(g.n(), 10);
  const auto expected = BatchQuery(*leader, sources, /*threads=*/1);
  {
    QueryServiceOptions options;
    options.threads = 1;
    QueryService service(options);
    ASSERT_TRUE(service
                    .AddEngineFromIndex("prsim", g, ParseConfig(params),
                                        artifact.string())
                    .ok());
    for (size_t i = 0; i < sources.size(); ++i) {
      const QueryResult result = service.Submit({"prsim", sources[i], 0}).get();
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_EQ(result.scores, expected[i]) << "request " << i;
    }
  }
  std::filesystem::remove(artifact);
}

// ---------------------------------------------------------------------------
// Failure isolation and backpressure, driven by a controllable fake engine.
// ---------------------------------------------------------------------------

/// Deterministic engine with a configurable per-query delay and a poison
/// source that throws, shared across all clones.
class FakeEngine : public SingleSourceSimRank {
 public:
  struct Control {
    std::atomic<int> queries{0};
    NodeId poison_source = static_cast<NodeId>(-1);
    std::chrono::milliseconds delay{0};
  };

  FakeEngine(NodeId n, uint64_t seed, std::shared_ptr<Control> control)
      : n_(n), seed_(seed), control_(std::move(control)) {}

  std::string name() const override { return "Fake"; }
  NodeId node_count() const override { return n_; }

  ScoreList Query(NodeId u) override {
    if (control_->delay.count() > 0) {
      std::this_thread::sleep_for(control_->delay);
    }
    control_->queries.fetch_add(1);
    if (u == control_->poison_source) {
      throw std::runtime_error("poisoned source");
    }
    cost_ = {};
    cost_.walks = 1;
    return {{u, 1.0},
            {(u + 1) % n_, static_cast<double>(seed_ % 97) / 100.0}};
  }

  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const override {
    return std::make_unique<FakeEngine>(n_, seed, control_);
  }
  uint64_t seed() const override { return seed_; }
  void Reseed(uint64_t seed) override { seed_ = seed; }

 private:
  NodeId n_;
  uint64_t seed_;
  std::shared_ptr<Control> control_;
};

TEST(QueryServiceTest, EngineExceptionDoesNotPoisonThePool) {
  auto control = std::make_shared<FakeEngine::Control>();
  control->poison_source = 3;
  QueryServiceOptions options;
  options.threads = 2;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  const QueryResult poisoned = service.Submit({"fake", 3, 0}).get();
  EXPECT_EQ(poisoned.status.code(), StatusCode::kInternal);
  EXPECT_NE(poisoned.status.message().find("poisoned source"),
            std::string::npos);
  for (NodeId u : {1u, 2u, 4u, 5u}) {
    const QueryResult result = service.Submit({"fake", u, 0}).get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    ASSERT_EQ(result.scores.size(), 2u);
    EXPECT_EQ(result.scores[0].first, u);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(QueryServiceTest, RejectPolicyShedsLoadWhenQueueIsFull) {
  auto control = std::make_shared<FakeEngine::Control>();
  control->delay = std::chrono::milliseconds(25);
  QueryServiceOptions options;
  options.threads = 1;
  options.max_queue = 2;
  options.backpressure = QueryServiceOptions::Backpressure::kReject;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(service.Submit({"fake", 1, 0}));
  }
  size_t rejected = 0;
  size_t completed = 0;
  for (auto& future : futures) {
    const QueryResult result = future.get();
    if (result.status.code() == StatusCode::kResourceExhausted) {
      ++rejected;
    } else if (result.status.ok()) {
      ++completed;
    }
  }
  EXPECT_EQ(rejected + completed, 10u);
  // One 25 ms query per worker slot: ten instant submits against a queue of
  // two must shed at least one request and serve at least the first.
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(completed, 1u);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed, completed);
}

TEST(QueryServiceTest, BlockPolicyCompletesEverythingWithTinyQueue) {
  auto control = std::make_shared<FakeEngine::Control>();
  control->delay = std::chrono::milliseconds(2);
  QueryServiceOptions options;
  options.threads = 2;
  options.max_queue = 1;
  options.backpressure = QueryServiceOptions::Backpressure::kBlock;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(service.Submit({"fake", 2, 0}));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(QueryServiceTest, LatencyPercentilesAreMonotoneAndSurfacedInQueryCost) {
  auto control = std::make_shared<FakeEngine::Control>();
  control->delay = std::chrono::milliseconds(1);
  QueryServiceOptions options;
  options.threads = 2;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(service.Submit({"fake", static_cast<NodeId>(i % 50), 0}));
  }
  for (auto& future : futures) future.get();

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.completed, 40u);
  EXPECT_GT(stats.p50_seconds, 0.0);
  EXPECT_LE(stats.p50_seconds, stats.p95_seconds);
  EXPECT_LE(stats.p95_seconds, stats.p99_seconds);
  EXPECT_EQ(stats.aggregate_cost.latency_p50_seconds, stats.p50_seconds);
  EXPECT_EQ(stats.aggregate_cost.latency_p95_seconds, stats.p95_seconds);
  EXPECT_EQ(stats.aggregate_cost.latency_p99_seconds, stats.p99_seconds);
  EXPECT_EQ(stats.aggregate_cost.walks, 40u);
}

// ---------------------------------------------------------------------------
// Deadlines, shedding and fault points.
// ---------------------------------------------------------------------------

TEST(QueryServiceDeadlineTest, ZeroBudgetIsRefusedWithoutConsumingASeed) {
  auto control = std::make_shared<FakeEngine::Control>();
  QueryServiceOptions options;
  options.threads = 1;

  // Service A sees an expired request interleaved into its positional
  // stream; service B never does. Their positional answers must match
  // element for element — the expired request consumed no seq.
  QueryService with_expired(options);
  QueryService reference(options);
  ASSERT_TRUE(with_expired
                  .AddEngine("fake", std::make_unique<FakeEngine>(50, 1,
                                                                  control))
                  .ok());
  ASSERT_TRUE(
      reference
          .AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  QueryRequest expired;
  expired.algo = "fake";
  expired.source = 2;
  expired.deadline_ms = 0;
  const QueryResult refused = with_expired.Submit(std::move(expired)).get();
  EXPECT_EQ(refused.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(refused.status.message().find("deadline expired before admission"),
            std::string::npos)
      << refused.status.ToString();

  for (NodeId u : {4u, 9u, 14u}) {
    const QueryResult a = with_expired.Submit({"fake", u, 0}).get();
    const QueryResult b = reference.Submit({"fake", u, 0}).get();
    ASSERT_TRUE(a.status.ok());
    ASSERT_TRUE(b.status.ok());
    EXPECT_EQ(a.scores, b.scores) << "seq shifted by the expired request";
  }

  const ServiceStats stats = with_expired.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.shed, 0u);
  // Admission refusals are not accepted requests: the accounting identity
  // submitted == completed + failed holds over the accepted stream.
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(QueryServiceDeadlineTest, AbsoluteDeadlineInThePastIsRefused) {
  auto control = std::make_shared<FakeEngine::Control>();
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());
  QueryRequest request;
  request.algo = "fake";
  request.source = 1;
  request.deadline_at =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  const QueryResult result = service.Submit(std::move(request)).get();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryServiceDeadlineTest, DeadlineBoundsTheBlockingCapacityWait) {
  // kBlock backpressure normally parks Submit() until a slot frees; a
  // deadline turns that into a bounded wait that fails fast.
  auto control = std::make_shared<FakeEngine::Control>();
  control->delay = std::chrono::milliseconds(150);
  QueryServiceOptions options;
  options.threads = 1;
  options.max_queue = 1;
  options.backpressure = QueryServiceOptions::Backpressure::kBlock;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  auto busy = service.Submit({"fake", 1, 0});  // occupies the single slot
  QueryRequest bounded;
  bounded.algo = "fake";
  bounded.source = 2;
  bounded.deadline_ms = 30;
  const auto wait_started = std::chrono::steady_clock::now();
  const QueryResult timed_out = service.Submit(std::move(bounded)).get();
  const auto waited = std::chrono::steady_clock::now() - wait_started;
  EXPECT_EQ(timed_out.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(timed_out.status.message().find(
                "deadline expired waiting for queue capacity"),
            std::string::npos)
      << timed_out.status.ToString();
  // It waited about the budget, not the full 150 ms the slot stays busy.
  EXPECT_LT(waited, std::chrono::milliseconds(140));
  EXPECT_TRUE(busy.get().status.ok());
  EXPECT_EQ(service.Stats().deadline_exceeded, 1u);
}

TEST(QueryServiceDeadlineTest, QueuedRequestsAreSweptOnceExpired) {
  auto control = std::make_shared<FakeEngine::Control>();
  control->delay = std::chrono::milliseconds(120);
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  auto busy = service.Submit({"fake", 1, 0});  // executing ~120 ms
  QueryRequest doomed;
  doomed.algo = "fake";
  doomed.source = 2;
  doomed.deadline_ms = 20;  // expires while queued behind `busy`
  auto doomed_future = service.Submit(std::move(doomed));
  auto after = service.Submit({"fake", 3, 0});

  const QueryResult swept = doomed_future.get();
  EXPECT_EQ(swept.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(swept.status.message().find("deadline expired in queue"),
            std::string::npos)
      << swept.status.ToString();
  EXPECT_GT(swept.latency_seconds, 0.0);
  EXPECT_TRUE(busy.get().status.ok());
  EXPECT_TRUE(after.get().status.ok());

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  // A swept request was accepted, so it counts as submitted AND failed —
  // the identity over accepted requests still holds.
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST(QueryServiceDeadlineTest, PredictiveShedRefusesDoomedRequests) {
  auto control = std::make_shared<FakeEngine::Control>();
  control->delay = std::chrono::milliseconds(40);
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  // Establish the execution-time EWMA (~40 ms per query).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Submit({"fake", 1, 0}).get().status.ok());
  }

  // A 5 ms budget cannot survive a ~40 ms expected service time: shed at
  // admission, before consuming a queue slot or a seq.
  QueryRequest tight;
  tight.algo = "fake";
  tight.source = 2;
  tight.deadline_ms = 5;
  const QueryResult shed = service.Submit(std::move(tight)).get();
  EXPECT_EQ(shed.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(
      shed.status.message().find("shed: queue wait predicts deadline miss"),
      std::string::npos)
      << shed.status.ToString();

  // A generous budget sails through under the same EWMA.
  QueryRequest roomy;
  roomy.algo = "fake";
  roomy.source = 2;
  roomy.deadline_ms = 10000;
  EXPECT_TRUE(service.Submit(std::move(roomy)).get().status.ok());

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.completed, 4u);
}

TEST(QueryServiceDeadlineTest, DegradedModeAnswersCacheHitsWhileShedding) {
  auto control = std::make_shared<FakeEngine::Control>();
  QueryServiceOptions options;
  options.threads = 1;
  // max_queue bounds queued + executing: busy + queued fill it below.
  options.max_queue = 2;
  options.cache_bytes = 1 << 20;
  options.degraded = true;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());

  // Warm the cache with a fresh-seed answer for source 5.
  QueryRequest warm;
  warm.algo = "fake";
  warm.source = 5;
  warm.fresh_seed = true;
  ASSERT_TRUE(service.Submit(std::move(warm)).get().status.ok());

  // Saturate the service: one request executing (~150 ms), one queued.
  control->delay = std::chrono::milliseconds(150);
  auto busy = service.Submit({"fake", 1, 0});
  auto queued = service.Submit({"fake", 2, 0});

  // A cache hit still answers instantly — no queue involved...
  QueryRequest hit;
  hit.algo = "fake";
  hit.source = 5;
  hit.fresh_seed = true;
  const QueryResult hit_result = service.Submit(std::move(hit)).get();
  EXPECT_TRUE(hit_result.status.ok()) << hit_result.status.ToString();

  // ...while a cache miss finds the queue full and is shed immediately
  // instead of blocking (the configured backpressure is kBlock).
  QueryRequest miss;
  miss.algo = "fake";
  miss.source = 7;
  miss.fresh_seed = true;
  const QueryResult shed = service.Submit(std::move(miss)).get();
  EXPECT_EQ(shed.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status.message().find("shed: queue full (degraded mode)"),
            std::string::npos)
      << shed.status.ToString();

  EXPECT_TRUE(busy.get().status.ok());
  EXPECT_TRUE(queued.get().status.ok());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(QueryServiceFaultTest, InjectedEngineThrowsReplayDeterministically) {
  // engine.query.throw is evaluated once per executed request, so with a
  // sequential single-worker service the set of failing request indices is
  // a pure function of (spec, seed) — the chaos CI determinism contract.
  auto run = [] {
    auto control = std::make_shared<FakeEngine::Control>();
    QueryServiceOptions options;
    options.threads = 1;
    QueryService service(options);
    service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
        .Abort();
    std::vector<int> failed_indices;
    for (int i = 0; i < 24; ++i) {
      const QueryResult result =
          service.Submit({"fake", static_cast<NodeId>(i % 50), 0}).get();
      if (!result.status.ok()) {
        EXPECT_EQ(result.status.code(), StatusCode::kInternal);
        EXPECT_NE(result.status.message().find(
                      "injected fault: engine.query.throw"),
                  std::string::npos)
            << result.status.ToString();
        failed_indices.push_back(i);
      }
    }
    return failed_indices;
  };

  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("engine.query.throw=1/3", /*seed=*/11)
                  .ok());
  const std::vector<int> first = run();
  EXPECT_FALSE(first.empty()) << "1/3 over 24 requests must fire";
  EXPECT_LT(first.size(), 24u) << "some requests must survive";

  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("engine.query.throw=1/3", /*seed=*/11)
                  .ok());
  EXPECT_EQ(run(), first);
  FaultInjector::Global().Disable();
}

TEST(QueryServiceFaultTest, InjectedPickupStallDelaysButAnswers) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("worker.pickup.stall=1/1:30", /*seed=*/3)
                  .ok());
  auto control = std::make_shared<FakeEngine::Control>();
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  ASSERT_TRUE(
      service.AddEngine("fake", std::make_unique<FakeEngine>(50, 1, control))
          .ok());
  const QueryResult result = service.Submit({"fake", 1, 0}).get();
  FaultInjector::Global().Disable();
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
  // The stall is charged to the request's wall time.
  EXPECT_GE(result.latency_seconds, 0.025);
}

// ---------------------------------------------------------------------------
// ServiceStatsJson golden round trip.
// ---------------------------------------------------------------------------

// Pulls `"field":value` out of a JSON line built by ServiceStatsJson. The
// line is flat (no nesting), so a string scan is an exact parser for it.
std::string JsonField(const std::string& json, const std::string& field) {
  const std::string needle = "\"" + field + "\":";
  const size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing field " << field << ": " << json;
  if (at == std::string::npos) return "";
  const size_t begin = at + needle.size();
  size_t end = json.find_first_of(",}", begin);
  EXPECT_NE(end, std::string::npos) << json;
  return json.substr(begin, end - begin);
}

TEST(ServiceStatsJsonTest, EveryFieldRoundTripsThroughTheJsonLine) {
  // Distinct values per field so a swapped format argument cannot pass.
  ServiceStats stats;
  stats.submitted = 101;
  stats.completed = 89;
  stats.failed = 7;
  stats.rejected = 5;
  stats.deadline_exceeded = 11;
  stats.shed = 13;
  stats.queue_high_water = 64;
  stats.p50_seconds = 0.0015;   // 1.5 ms
  stats.p95_seconds = 0.0625;   // 62.5 ms
  stats.p99_seconds = 0.25;     // 250 ms
  stats.cache_hits = 4242;
  stats.cache_misses = 17;
  stats.cache_coalesced = 9;
  stats.cache_evictions = 3;
  stats.cache_bytes = 123456;

  const std::string json = ServiceStatsJson(stats, "tcp");
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be a single line";
  EXPECT_EQ(JsonField(json, "event"), "\"serve_stats\"");
  EXPECT_EQ(JsonField(json, "transport"), "\"tcp\"");
  EXPECT_EQ(JsonField(json, "accepted"), "101");
  EXPECT_EQ(JsonField(json, "completed"), "89");
  EXPECT_EQ(JsonField(json, "failed"), "7");
  EXPECT_EQ(JsonField(json, "rejected"), "5");
  EXPECT_EQ(JsonField(json, "deadline_exceeded"), "11");
  EXPECT_EQ(JsonField(json, "shed"), "13");
  EXPECT_EQ(JsonField(json, "queue_high_water"), "64");
  EXPECT_DOUBLE_EQ(std::stod(JsonField(json, "p50_ms")), 1.5);
  EXPECT_DOUBLE_EQ(std::stod(JsonField(json, "p95_ms")), 62.5);
  EXPECT_DOUBLE_EQ(std::stod(JsonField(json, "p99_ms")), 250.0);
  EXPECT_EQ(JsonField(json, "cache_hits"), "4242");
  EXPECT_EQ(JsonField(json, "cache_misses"), "17");
  EXPECT_EQ(JsonField(json, "cache_coalesced"), "9");
  EXPECT_EQ(JsonField(json, "cache_evictions"), "3");
  EXPECT_EQ(JsonField(json, "cache_bytes"), "123456");

  // All-zero stats still produce every field (schema stability for the
  // log scrapers in CI).
  const std::string zero = ServiceStatsJson(ServiceStats{}, "stdio");
  for (const char* field :
       {"accepted", "completed", "failed", "rejected", "deadline_exceeded",
        "shed", "queue_high_water", "p50_ms", "p95_ms", "p99_ms",
        "cache_hits", "cache_misses", "cache_coalesced", "cache_evictions",
        "cache_bytes"}) {
    EXPECT_EQ(std::stod(JsonField(zero, field)), 0.0) << field;
  }
}

TEST(QueryServiceTest, SubmitWithoutEnginesFails) {
  QueryServiceOptions options;
  options.threads = 1;
  QueryService service(options);
  const QueryResult result = service.Submit({"prsim", 0, 0}).get();
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace prsim
