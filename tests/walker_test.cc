// Tests for sqrt(c)-walk sampling: termination distributions must match the
// dense l-hop RPPR recurrence, eta estimates must match the exact coupled
// pair-chain, and the Monte Carlo SimRank estimator must match the exact
// meeting probability.

#include <gtest/gtest.h>

#include <cmath>

#include "ppr/walker.h"
#include "test_util.h"
#include "util/flat_hash_map.h"

namespace prsim {
namespace {

using testing::ExactEta;
using testing::ExactMeetingSimRank;
using testing::DenseLevelRppr;
using testing::MakeChain;
using testing::MakeCompleteDigraph;
using testing::MakeCycle;
using testing::MakeRandomDigraph;
using testing::MakeSharedParent;

TEST(WalkerTest, RejectsBadDecay) {
  Graph g = MakeCycle(3);
  EXPECT_DEATH(Walker(g, 0.0), "decay");
  EXPECT_DEATH(Walker(g, 1.0), "decay");
}

TEST(WalkerTest, TerminationProbabilityAtStepZero) {
  // Pr[terminate immediately] = 1 - sqrt(c).
  Graph g = MakeCycle(5);
  const double c = 0.6;
  Walker walker(g, c);
  Rng rng(1);
  const int n = 200000;
  int at_zero = 0;
  for (int i = 0; i < n; ++i) {
    auto out = walker.SampleWalk(0, rng);
    ASSERT_TRUE(out.terminated);  // cycles have no dangling nodes
    at_zero += (out.steps == 0);
  }
  EXPECT_NEAR(static_cast<double>(at_zero) / n, 1.0 - std::sqrt(c), 0.005);
}

TEST(WalkerTest, ChainWalksAreLostAtHead) {
  // Chain 0 -> 1 -> 2: node 0 has no in-neighbors, so a walk from 0 that
  // decides to move is lost.
  Graph g = MakeChain(3);
  Walker walker(g, 0.6);
  Rng rng(2);
  const int n = 100000;
  int lost = 0, at_zero = 0;
  for (int i = 0; i < n; ++i) {
    auto out = walker.SampleWalk(0, rng);
    if (!out.terminated) {
      ++lost;
    } else {
      EXPECT_EQ(out.terminal, 0u);
      EXPECT_EQ(out.steps, 0u);
      ++at_zero;
    }
  }
  const double sqrt_c = std::sqrt(0.6);
  EXPECT_NEAR(static_cast<double>(lost) / n, sqrt_c, 0.005);
  EXPECT_NEAR(static_cast<double>(at_zero) / n, 1 - sqrt_c, 0.005);
}

TEST(WalkerTest, TerminalDistributionMatchesDenseRppr) {
  // On random graphs, the empirical (terminal, steps) distribution must match
  // the exact pi_l(u, w) recurrence.
  const double c = 0.6;
  Graph g = MakeRandomDigraph(20, 80, 33);
  Walker walker(g, c);
  const auto pi = DenseLevelRppr(g, c, 30);
  Rng rng(3);
  const NodeId u = 4;
  const int samples = 400000;
  FlatHashMap<double> counts;
  for (int i = 0; i < samples; ++i) {
    auto out = walker.SampleWalk(u, rng);
    if (out.terminated) {
      counts[PackNodeLevel(out.terminal, out.steps)] += 1.0;
    }
  }
  for (uint32_t l = 0; l <= 6; ++l) {
    for (NodeId w = 0; w < g.n(); ++w) {
      const double expected = pi[l][u][w];
      const double* hit = counts.Find(PackNodeLevel(w, l));
      const double observed = hit ? *hit / samples : 0.0;
      EXPECT_NEAR(observed, expected, 0.004)
          << "l=" << l << " w=" << w;
    }
  }
}

TEST(WalkerTest, EtaMatchesExactPairChain) {
  const double c = 0.6;
  for (auto [name, g] : std::vector<std::pair<std::string, Graph>>{
           {"cycle", MakeCycle(7)},
           {"complete", MakeCompleteDigraph(6)},
           {"random", MakeRandomDigraph(15, 60, 44)}}) {
    Walker walker(g, c);
    const auto eta = ExactEta(g, c);
    Rng rng(5);
    for (NodeId w = 0; w < std::min<NodeId>(g.n(), 8); ++w) {
      const double estimate = walker.EstimateEta(w, 120000, rng);
      EXPECT_NEAR(estimate, eta[w], 0.01) << name << " w=" << w;
    }
  }
}

TEST(WalkerTest, EtaIsOneOnCycle) {
  // On a directed cycle each node has exactly one in-neighbor, so the two
  // walks move in lockstep along the same nodes but started identically —
  // they coincide at every step. Wait: both walks from w move to the SAME
  // unique predecessor, so they meet at step 1 whenever both survive.
  // Hence eta(w) = 1 - c (meet iff both walks take the first step).
  const double c = 0.6;
  Graph g = MakeCycle(9);
  Walker walker(g, c);
  Rng rng(6);
  const double eta = walker.EstimateEta(3, 200000, rng);
  EXPECT_NEAR(eta, 1.0 - c, 0.005);
}

TEST(WalkerTest, SimRankEstimatorMatchesExactMeeting) {
  const double c = 0.6;
  Graph g = MakeRandomDigraph(12, 50, 55);
  Walker walker(g, c);
  const auto exact = ExactMeetingSimRank(g, c);
  Rng rng(7);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 4; v < 8; ++v) {
      const double estimate = walker.EstimateSimRank(u, v, 150000, rng);
      EXPECT_NEAR(estimate, exact[u][v], 0.01) << u << "," << v;
    }
  }
}

TEST(WalkerTest, SimRankSharedParentIsC) {
  // I(0) = I(1) = {2}: s(0, 1) = c exactly.
  const double c = 0.6;
  Graph g = MakeSharedParent();
  Walker walker(g, c);
  Rng rng(8);
  EXPECT_NEAR(walker.EstimateSimRank(0, 1, 300000, rng), c, 0.006);
}

TEST(WalkerTest, SimRankOfNodeWithItselfIsOne) {
  Graph g = MakeCycle(4);
  Walker walker(g, 0.6);
  Rng rng(9);
  EXPECT_DOUBLE_EQ(walker.EstimateSimRank(2, 2, 10, rng), 1.0);
}

TEST(WalkerTest, PairMeetsNeverOnDisconnectedComponents) {
  // Two disjoint 2-cycles: walks from different components can never meet.
  Graph g = BuildGraph(4, {{0, 1}, {1, 0}, {2, 3}, {3, 2}}).ValueOrDie();
  Walker walker(g, 0.8);
  Rng rng(10);
  EXPECT_DOUBLE_EQ(walker.EstimateSimRank(0, 2, 20000, rng), 0.0);
}

}  // namespace
}  // namespace prsim
