// Tests for the evaluation harness: ground truth oracles, pooling metrics,
// and the dataset registry.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/monte_carlo.h"
#include "baselines/power_method.h"
#include "core/prsim.h"
#include "eval/datasets.h"
#include "eval/ground_truth.h"
#include "eval/pooling.h"
#include "graph/stats.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::MakeRandomDigraph;

TEST(GroundTruthTest, ExactModeOnSmallGraphs) {
  Graph g = MakeRandomDigraph(60, 300, 1);
  GroundTruthOptions options;
  options.exact_limit = 100;
  GroundTruth truth(g, options);
  ASSERT_TRUE(truth.Prepare().ok());
  EXPECT_TRUE(truth.is_exact());

  PowerMethodSimRank oracle(g, {});
  oracle.Preprocess().Abort();
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 0; v < 5; ++v) {
      EXPECT_DOUBLE_EQ(truth.SimRank(u, v), oracle.SimRank(u, v));
    }
  }
}

TEST(GroundTruthTest, McModeApproximatesExact) {
  Graph g = MakeRandomDigraph(60, 300, 2);
  GroundTruthOptions options;
  options.exact_limit = 10;  // force MC
  options.mc_eps = 5e-3;
  GroundTruth truth(g, options);
  ASSERT_TRUE(truth.Prepare().ok());
  EXPECT_FALSE(truth.is_exact());
  EXPECT_GT(truth.mc_samples(), 10000u);

  PowerMethodSimRank oracle(g, {});
  oracle.Preprocess().Abort();
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = 3; v < 6; ++v) {
      EXPECT_NEAR(truth.SimRank(u, v), oracle.SimRank(u, v), 0.02);
    }
  }
}

TEST(GroundTruthTest, SelfSimilarityIsOne) {
  Graph g = MakeRandomDigraph(30, 100, 3);
  GroundTruthOptions options;
  options.exact_limit = 5;
  GroundTruth truth(g, options);
  ASSERT_TRUE(truth.Prepare().ok());
  EXPECT_DOUBLE_EQ(truth.SimRank(7, 7), 1.0);
}

TEST(GroundTruthTest, BatchMatchesScalarAndCaches) {
  Graph g = MakeRandomDigraph(50, 250, 4);
  GroundTruthOptions options;
  options.exact_limit = 10;
  options.mc_eps = 1e-2;
  GroundTruth truth(g, options);
  ASSERT_TRUE(truth.Prepare().ok());
  std::vector<NodeId> vs = {1, 2, 3, 4, 5};
  auto batch = truth.SimRankBatch(0, vs);
  ASSERT_EQ(batch.size(), vs.size());
  for (size_t i = 0; i < vs.size(); ++i) {
    // Cached: the scalar call must return the identical value.
    EXPECT_DOUBLE_EQ(truth.SimRank(0, vs[i]), batch[i]);
  }
}

TEST(PoolingTest, SampleQueryNodesDeterministicAndDistinct) {
  Graph g = MakeRandomDigraph(500, 3000, 5);
  auto a = SampleQueryNodes(g, 20, 7);
  auto b = SampleQueryNodes(g, 20, 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 20u);
  std::sort(a.begin(), a.end());
  EXPECT_EQ(std::adjacent_find(a.begin(), a.end()), a.end());
}

TEST(PoolingTest, ExactAlgorithmGetsPerfectScores) {
  // Evaluating the oracle against itself: zero error, perfect precision.
  Graph g = MakeRandomDigraph(80, 500, 6);
  GroundTruthOptions gt_options;
  gt_options.exact_limit = 200;
  GroundTruth truth(g, gt_options);
  ASSERT_TRUE(truth.Prepare().ok());

  PowerMethodSimRank oracle(g, {});
  ASSERT_TRUE(oracle.Preprocess().ok());
  std::vector<EvalEntry> entries = {{"exact", &oracle, 0.0}};
  auto queries = SampleQueryNodes(g, 5, 8);
  PoolingOptions pooling;
  pooling.k = 10;
  auto metrics = RunPooledEvaluation(g, entries, truth, queries, pooling);
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_NEAR(metrics[0].avg_error_at_k, 0.0, 1e-12);
  EXPECT_NEAR(metrics[0].precision_at_k, 1.0, 1e-12);
  EXPECT_EQ(metrics[0].queries_answered, 5u);
}

TEST(PoolingTest, NoisyAlgorithmScoresWorseThanAccurateOne) {
  Graph g = MakeRandomDigraph(100, 700, 7);
  GroundTruthOptions gt_options;
  gt_options.exact_limit = 200;
  GroundTruth truth(g, gt_options);
  ASSERT_TRUE(truth.Prepare().ok());

  MonteCarloOptions accurate_opt, noisy_opt;
  accurate_opt.samples = 5000;
  noisy_opt.samples = 30;
  MonteCarloSimRank accurate(g, accurate_opt), noisy(g, noisy_opt);
  std::vector<EvalEntry> entries = {{"accurate", &accurate, 0.0},
                                    {"noisy", &noisy, 0.0}};
  auto queries = SampleQueryNodes(g, 4, 9);
  PoolingOptions pooling;
  pooling.k = 10;
  auto metrics = RunPooledEvaluation(g, entries, truth, queries, pooling);
  EXPECT_LT(metrics[0].avg_error_at_k, metrics[1].avg_error_at_k);
  EXPECT_GE(metrics[0].precision_at_k, metrics[1].precision_at_k);
}

TEST(PoolingTest, BudgetStopsQueries) {
  Graph g = MakeRandomDigraph(100, 700, 10);
  GroundTruthOptions gt_options;
  gt_options.exact_limit = 200;
  GroundTruth truth(g, gt_options);
  ASSERT_TRUE(truth.Prepare().ok());
  MonteCarloOptions mc_opt;
  mc_opt.samples = 2000;
  MonteCarloSimRank mc(g, mc_opt);
  std::vector<EvalEntry> entries = {{"mc", &mc, 0.0}};
  auto queries = SampleQueryNodes(g, 10, 11);
  PoolingOptions pooling;
  pooling.k = 5;
  pooling.per_algorithm_budget_seconds = 0.0;  // first check already exceeds
  auto metrics = RunPooledEvaluation(g, entries, truth, queries, pooling);
  EXPECT_EQ(metrics[0].queries_answered, 0u);
}

TEST(DatasetsTest, RegistryHasFiveAnalogs) {
  const auto& specs = PaperDatasetAnalogs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "DB");
  EXPECT_FALSE(specs[0].directed);
  EXPECT_EQ(specs[4].name, "UK");
  // TW must be flatter (smaller gamma) than IT — the Figure 1 contrast.
  auto it = FindDataset("IT").ValueOrDie();
  auto tw = FindDataset("TW").ValueOrDie();
  EXPECT_GT(it.gamma_out, tw.gamma_out + 0.5);
}

TEST(DatasetsTest, FindUnknownFails) {
  EXPECT_EQ(FindDataset("nope").status().code(), StatusCode::kNotFound);
}

TEST(DatasetsTest, MakeDatasetScales) {
  auto spec = FindDataset("DB").ValueOrDie();
  Graph small = MakeDataset(spec, 0.02).ValueOrDie();
  EXPECT_LT(small.n(), spec.n);
  EXPECT_GE(small.n(), 1000u);
  EXPECT_TRUE(small.Validate().ok());
}

TEST(DatasetsTest, TwAnalogHasHeavierOutTailThanIt) {
  Graph it = MakeDataset(FindDataset("IT").ValueOrDie(), 0.2).ValueOrDie();
  Graph tw = MakeDataset(FindDataset("TW").ValueOrDie(), 0.2).ValueOrDie();
  EXPECT_GT(Summarize(tw).max_out_degree, 2 * Summarize(it).max_out_degree);
}

TEST(DatasetsTest, BenchScaleFromEnvParsesValues) {
  ASSERT_EQ(setenv("PRSIM_BENCH_SCALE", "smoke", 1), 0);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 0.25);
  setenv("PRSIM_BENCH_SCALE", "full", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 3.0);
  setenv("PRSIM_BENCH_SCALE", "1.7", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.7);
  setenv("PRSIM_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
  unsetenv("PRSIM_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScaleFromEnv(), 1.0);
}

}  // namespace
}  // namespace prsim
