// Deterministic fault injection: the firing schedule is a pure function of
// (spec, seed, per-point evaluation index) — the property the chaos CI job
// leans on — plus the spec grammar's error handling and the zero-cost
// disabled path.

#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace prsim {
namespace {

/// Replays `evaluations` consultations of one point and records which
/// indices fired.
std::vector<int> FiringPattern(const char* name, int evaluations) {
  std::vector<int> fired;
  for (int i = 0; i < evaluations; ++i) {
    uint64_t stall_ms = 0;
    if (PRSIM_FAULT_POINT(name, &stall_ms)) fired.push_back(i);
  }
  return fired;
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  // Every test leaves the process-global injector disarmed: other suites
  // in this binary (and this suite's own tests) depend on the default.
  void TearDown() override { FaultInjector::Global().Disable(); }
};

TEST_F(FaultInjectionTest, DisabledByDefaultAndNeverFires) {
  EXPECT_FALSE(FaultInjector::Global().enabled());
  uint64_t stall_ms = 0;
  EXPECT_FALSE(PRSIM_FAULT_POINT("net.read.err", &stall_ms));
  EXPECT_TRUE(FaultInjector::Global().Stats().empty());
}

TEST_F(FaultInjectionTest, SameSpecAndSeedReplayTheSameFiringIndices) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("engine.query.throw=1/7", /*seed=*/42)
                  .ok());
  const std::vector<int> first = FiringPattern("engine.query.throw", 500);
  EXPECT_FALSE(first.empty()) << "1/7 over 500 evaluations must fire";

  // Reconfigure with the identical spec+seed: counters reset, and the
  // evaluation indices that fire are exactly the same.
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("engine.query.throw=1/7", /*seed=*/42)
                  .ok());
  EXPECT_EQ(FiringPattern("engine.query.throw", 500), first);

  // A different seed picks a different subset (with overwhelming
  // probability for 500 draws at density 1/7).
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("engine.query.throw=1/7", /*seed=*/43)
                  .ok());
  EXPECT_NE(FiringPattern("engine.query.throw", 500), first);
}

TEST_F(FaultInjectionTest, PointsAreIndependentAndRoughlyAtDensity) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("a.err=1/2,b.err=1/1,c.err=0/5", /*seed=*/1)
                  .ok());
  const std::vector<int> a = FiringPattern("a.err", 1000);
  EXPECT_GT(a.size(), 400u);  // ~500 expected; loose bounds, no flakes
  EXPECT_LT(a.size(), 600u);
  EXPECT_EQ(FiringPattern("b.err", 100).size(), 100u);  // 1/1 always fires
  EXPECT_TRUE(FiringPattern("c.err", 100).empty());     // 0/5 never fires
  // An unconfigured name never fires even while the injector is armed.
  EXPECT_TRUE(FiringPattern("never.configured", 100).empty());
}

TEST_F(FaultInjectionTest, StallBudgetTravelsWithTheFiring) {
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("worker.pickup.stall=1/1:25", /*seed=*/9)
                  .ok());
  uint64_t stall_ms = 0;
  EXPECT_TRUE(PRSIM_FAULT_POINT("worker.pickup.stall", &stall_ms));
  EXPECT_EQ(stall_ms, 25u);
}

TEST_F(FaultInjectionTest, StatsCountEvaluationsAndFirings) {
  ASSERT_TRUE(
      FaultInjector::Global().Configure("x.err=1/3", /*seed=*/5).ok());
  const std::vector<int> fired = FiringPattern("x.err", 300);
  const auto stats = FaultInjector::Global().Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "x.err");
  EXPECT_EQ(stats[0].evaluations, 300u);
  EXPECT_EQ(stats[0].fired, fired.size());

  const std::string json = FaultInjector::Global().StatsJson();
  EXPECT_NE(json.find("\"event\":\"fault_stats\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"x.err\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"evaluations\":300"), std::string::npos) << json;
}

TEST_F(FaultInjectionTest, MalformedSpecsAreRejectedAndLeaveOldConfig) {
  ASSERT_TRUE(
      FaultInjector::Global().Configure("keep.err=1/1", /*seed=*/3).ok());
  for (const char* bad :
       {"noequals", "a=", "a=1", "a=1/", "a=1/0", "a=2/1", "a=x/y",
        "a=1/2:", "a=1/2:ms", "a=1/2,a=1/3"}) {
    EXPECT_FALSE(FaultInjector::Global().Configure(bad, 3).ok()) << bad;
  }
  // The previous configuration survived every failed Configure.
  uint64_t stall_ms = 0;
  EXPECT_TRUE(FaultInjector::Global().enabled());
  EXPECT_TRUE(PRSIM_FAULT_POINT("keep.err", &stall_ms));
}

TEST_F(FaultInjectionTest, EmptySpecAndDisableDisarmCompletely) {
  ASSERT_TRUE(
      FaultInjector::Global().Configure("x.err=1/1", /*seed=*/3).ok());
  ASSERT_TRUE(FaultInjector::Global().Configure("", /*seed=*/3).ok());
  EXPECT_FALSE(FaultInjector::Global().enabled());

  ASSERT_TRUE(
      FaultInjector::Global().Configure("x.err=1/1", /*seed=*/3).ok());
  FaultInjector::Global().Disable();
  EXPECT_FALSE(FaultInjector::Global().enabled());
  uint64_t stall_ms = 0;
  EXPECT_FALSE(PRSIM_FAULT_POINT("x.err", &stall_ms));
  EXPECT_TRUE(FaultInjector::Global().Stats().empty());
}

TEST_F(FaultInjectionTest, InjectedFaultStatusNamesThePoint) {
  const Status st = InjectedFault("net.read.err");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("injected fault: net.read.err"),
            std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace prsim
