// Shared fixtures and dense reference implementations for the test suite.
//
// The reference implementations deliberately use the most direct O(n^2)/O(n^3)
// formulations of the quantities the library estimates, so every randomized
// or truncated algorithm can be checked against an independent ground truth:
//   * DenseLevelRppr   — exact l-hop reverse PPR pi_l(v, w) by the recurrence;
//   * DenseReversePageRank — exact pi(w) from the level sums;
//   * ExactEta         — exact last-meeting probability via the coupled
//                        pair-walk Markov chain;
//   * ExactMeetingSimRank — exact SimRank as the pair-walk meeting
//                        probability (the [32] formulation), which must agree
//                        with the power method AND with Eq. 6 assembled from
//                        the pieces above.

#ifndef PRSIM_TESTS_TEST_UTIL_H_
#define PRSIM_TESTS_TEST_UTIL_H_

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace prsim::testing {

// ---------------------------------------------------------------------------
// Small deterministic graph fixtures.
// ---------------------------------------------------------------------------

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
inline Graph MakeCycle(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return BuildGraph(n, std::move(edges)).ValueOrDie();
}

/// Directed chain 0 -> 1 -> ... -> n-1 (node 0 is dangling for walks).
inline Graph MakeChain(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return BuildGraph(n, std::move(edges)).ValueOrDie();
}

/// Complete digraph on n nodes (all ordered pairs, no self-loops).
inline Graph MakeCompleteDigraph(NodeId n) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) edges.emplace_back(u, v);
    }
  }
  return BuildGraph(n, std::move(edges)).ValueOrDie();
}

/// The unbounded-variance gadget of Section 3.4: w -> x_i -> v for
/// i = 1..spokes, nodes are w = 0, v = 1, x_i = 1 + i.
inline Graph MakeVarianceGadget(NodeId spokes) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i < spokes; ++i) {
    edges.emplace_back(0, 2 + i);
    edges.emplace_back(2 + i, 1);
  }
  return BuildGraph(spokes + 2, std::move(edges)).ValueOrDie();
}

/// Two nodes (0, 1) both pointed at by node 2: the classic s(0,1) = c case
/// -- wait, with in-neighbor sets {2} and {2}: s(0,1) = c * s(2,2) = c.
inline Graph MakeSharedParent() {
  return BuildGraph(3, {{2, 0}, {2, 1}}).ValueOrDie();
}

/// Erdos-Renyi-ish random simple digraph (test-sized; uses rejection).
inline Graph MakeRandomDigraph(NodeId n, uint64_t m, uint64_t seed,
                               bool undirected = false) {
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (uint64_t i = 0; i < m * 3 && edges.size() < m; ++i) {
    const NodeId u = rng.NextIndex(n);
    const NodeId v = rng.NextIndex(n);
    if (u != v) edges.emplace_back(u, v);
  }
  BuildOptions options;
  options.undirected = undirected;
  return BuildGraph(n, std::move(edges), options).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Dense reference computations.
// ---------------------------------------------------------------------------

/// pi[l][v][w]: exact l-hop reverse PPR by the recurrence
/// pi_{l+1}(y, w) = sum_{x in I(y)} sqrt_c / d_in(y) * pi_l(x, w),
/// pi_0(u, w) = (1 - sqrt_c) [u = w].
inline std::vector<std::vector<std::vector<double>>> DenseLevelRppr(
    const Graph& g, double c, uint32_t levels) {
  const NodeId n = g.n();
  const double sqrt_c = std::sqrt(c);
  std::vector<std::vector<std::vector<double>>> pi(
      levels + 1,
      std::vector<std::vector<double>>(n, std::vector<double>(n, 0.0)));
  for (NodeId w = 0; w < n; ++w) pi[0][w][w] = 1.0 - sqrt_c;
  for (uint32_t l = 0; l < levels; ++l) {
    for (NodeId y = 0; y < n; ++y) {
      const auto ins = g.InNeighbors(y);
      if (ins.empty()) continue;
      const double share = sqrt_c / static_cast<double>(ins.size());
      for (NodeId w = 0; w < n; ++w) {
        double sum = 0.0;
        for (NodeId x : ins) sum += pi[l][x][w];
        pi[l + 1][y][w] = share * sum;
      }
    }
  }
  return pi;
}

/// Exact reverse PageRank pi(w) = avg_u sum_l pi_l(u, w).
inline std::vector<double> DenseReversePageRank(const Graph& g, double c,
                                                uint32_t levels = 80) {
  const auto pi = DenseLevelRppr(g, c, levels);
  std::vector<double> result(g.n(), 0.0);
  for (uint32_t l = 0; l < pi.size(); ++l) {
    for (NodeId u = 0; u < g.n(); ++u) {
      for (NodeId w = 0; w < g.n(); ++w) result[w] += pi[l][u][w];
    }
  }
  for (auto& x : result) x /= g.n();
  return result;
}

/// Exact meeting probability of two coupled sqrt(c)-walks from (a0, b0):
/// both walks move each step with joint probability c; they meet when the
/// moved positions coincide. Returns the full n x n matrix; meet[a][a] is the
/// probability for two walks from the same node (1 - eta(a)).
inline std::vector<std::vector<double>> ExactMeetingMatrix(const Graph& g,
                                                           double c,
                                                           uint32_t levels) {
  const NodeId n = g.n();
  // state[a][b] = Pr[both alive at (a, b), no meeting yet]; symmetric.
  std::vector<std::vector<double>> state(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> meet(n, std::vector<double>(n, 0.0));
  // Process each start pair via shared level sweeps: we need all pairs, so
  // run the chain once per start pair (test-sized graphs only).
  for (NodeId a0 = 0; a0 < n; ++a0) {
    for (NodeId b0 = 0; b0 < n; ++b0) {
      for (auto& row : state) std::fill(row.begin(), row.end(), 0.0);
      state[a0][b0] = 1.0;
      double met = 0.0;
      for (uint32_t l = 0; l < levels; ++l) {
        std::vector<std::vector<double>> next(n,
                                              std::vector<double>(n, 0.0));
        for (NodeId a = 0; a < n; ++a) {
          for (NodeId b = 0; b < n; ++b) {
            const double mass = state[a][b];
            if (mass == 0.0) continue;
            const auto ia = g.InNeighbors(a);
            const auto ib = g.InNeighbors(b);
            if (ia.empty() || ib.empty()) continue;
            const double step =
                c * mass /
                (static_cast<double>(ia.size()) * ib.size());
            for (NodeId ap : ia) {
              for (NodeId bp : ib) {
                if (ap == bp) {
                  met += step;
                } else {
                  next[ap][bp] += step;
                }
              }
            }
          }
        }
        state.swap(next);
      }
      meet[a0][b0] = met;
    }
  }
  return meet;
}

/// Exact eta(w) = 1 - meeting probability of two walks from w. Runs the
/// pair chain only from diagonal starts, so it is O(n) cheaper than
/// ExactMeetingMatrix.
inline std::vector<double> ExactEta(const Graph& g, double c,
                                    uint32_t levels = 60) {
  const NodeId n = g.n();
  std::vector<double> eta(n);
  std::vector<std::vector<double>> state(n, std::vector<double>(n, 0.0));
  for (NodeId w = 0; w < n; ++w) {
    for (auto& row : state) std::fill(row.begin(), row.end(), 0.0);
    state[w][w] = 1.0;
    double met = 0.0;
    for (uint32_t l = 0; l < levels; ++l) {
      std::vector<std::vector<double>> next(n, std::vector<double>(n, 0.0));
      for (NodeId a = 0; a < n; ++a) {
        for (NodeId b = 0; b < n; ++b) {
          const double mass = state[a][b];
          if (mass == 0.0) continue;
          const auto ia = g.InNeighbors(a);
          const auto ib = g.InNeighbors(b);
          if (ia.empty() || ib.empty()) continue;
          const double step =
              c * mass / (static_cast<double>(ia.size()) * ib.size());
          for (NodeId ap : ia) {
            for (NodeId bp : ib) {
              if (ap == bp) {
                met += step;
              } else {
                next[ap][bp] += step;
              }
            }
          }
        }
      }
      state.swap(next);
    }
    eta[w] = 1.0 - met;
  }
  return eta;
}

/// Exact SimRank: meeting matrix with the diagonal pinned to 1.
inline std::vector<std::vector<double>> ExactMeetingSimRank(
    const Graph& g, double c, uint32_t levels = 60) {
  auto s = ExactMeetingMatrix(g, c, levels);
  for (NodeId v = 0; v < g.n(); ++v) s[v][v] = 1.0;
  return s;
}

}  // namespace prsim::testing

#endif  // PRSIM_TESTS_TEST_UTIL_H_
