// The intra-query parallelism contract: PRSim::Query and the RpprEstimator
// run their (round, j) sample grids as static chunks with positional RNG
// substreams (util/sample_grid.h), so results are bit-identical for ANY
// thread count — and their pooled workspaces make steady-state queries
// allocation-free (no map rehash or buffer regrowth on reuse).
//
// Registered under the `concurrency` label so the TSan CI job exercises the
// chunk fan-out / fixed-order merge for data races.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/prsim.h"
#include "ppr/rppr_estimator.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace prsim {
namespace {

using testing::MakeRandomDigraph;

/// Thread counts the bit-identity tests sweep: serial, small, odd (not a
/// divisor of the chunk count), and whatever this machine/CI pins via
/// PRSIM_THREADS or hardware concurrency.
std::vector<size_t> ThreadCounts() {
  return {1, 2, 7, DefaultThreadCount()};
}

ScoreList QueryWithThreads(const Graph& graph, const PRSim& leader,
                           const PRSimOptions& base, size_t threads, NodeId u,
                           QueryCost* cost) {
  PRSimOptions options = base;
  options.threads = threads;
  PRSim engine(graph, options);
  engine.ShareIndexFrom(leader);
  ScoreList scores = engine.Query(u);
  *cost = engine.last_query_cost();
  return scores;
}

TEST(ParallelQueryTest, PRSimBitIdenticalAcrossThreadCounts) {
  Graph g = MakeRandomDigraph(200, 1200, 21);
  PRSimOptions options;
  options.eps = 0.07;
  options.alpha = 4;
  options.seed = 17;
  options.threads = 1;
  PRSim leader(g, options);
  ASSERT_TRUE(leader.Preprocess().ok());

  for (NodeId u : {NodeId(0), NodeId(57), NodeId(199)}) {
    QueryCost base_cost;
    const ScoreList base =
        QueryWithThreads(g, leader, options, 1, u, &base_cost);
    for (size_t threads : ThreadCounts()) {
      QueryCost cost;
      const ScoreList other =
          QueryWithThreads(g, leader, options, threads, u, &cost);
      // Exact equality including entry order: the fixed-order merge makes
      // even the result layout independent of the worker count.
      EXPECT_EQ(base, other) << "u=" << u << " threads=" << threads;
      EXPECT_EQ(base_cost.walks, cost.walks);
      EXPECT_EQ(base_cost.meeting_tests, cost.meeting_tests);
      EXPECT_EQ(base_cost.backward_walks, cost.backward_walks);
      EXPECT_EQ(base_cost.backward_increments, cost.backward_increments);
      EXPECT_EQ(base_cost.index_tuples_read, cost.index_tuples_read);
    }
  }
}

TEST(ParallelQueryTest, PRSimPaperConstantsAlsoThreadCountInvariant) {
  // Paper-constants mode resolves to a different (fr, dr) grid shape; the
  // chunking discipline must hold there too.
  Graph g = MakeRandomDigraph(120, 700, 22);
  PRSimOptions options;
  options.eps = 0.2;
  options.delta = 0.05;
  options.paper_constants = true;
  options.seed = 5;
  options.threads = 1;
  PRSim leader(g, options);
  ASSERT_TRUE(leader.Preprocess().ok());

  QueryCost cost;
  const ScoreList base = QueryWithThreads(g, leader, options, 1, 3, &cost);
  for (size_t threads : ThreadCounts()) {
    EXPECT_EQ(base, QueryWithThreads(g, leader, options, threads, 3, &cost))
        << "threads=" << threads;
  }
}

TEST(ParallelQueryTest, RepeatedQueryIsPureAndReusesWorkspace) {
  Graph g = MakeRandomDigraph(150, 900, 23);
  PRSimOptions options;
  options.eps = 0.08;
  options.alpha = 5;
  options.seed = 11;
  PRSim engine(g, options);
  ASSERT_TRUE(engine.Preprocess().ok());

  // The workspace is built lazily by the first query.
  EXPECT_EQ(engine.SnapshotWorkspace().chunk_count, 0u);
  const ScoreList first = engine.Query(5);
  const PRSim::WorkspaceSnapshot after_first = engine.SnapshotWorkspace();
  EXPECT_GT(after_first.chunk_count, 0u);
  EXPECT_GT(after_first.map_capacity, 0u);
  EXPECT_GT(after_first.buffer_capacity, 0u);

  // Queries are pure functions of (seed, source): repeating one returns the
  // identical ScoreList...
  const ScoreList second = engine.Query(5);
  EXPECT_EQ(first, second);
  // ...and performs no steady-state allocation: every pooled map keeps its
  // slot array (FlatHashMap::clear() retains capacity) and every buffer its
  // backing store, so the capacity snapshot is unchanged.
  EXPECT_EQ(engine.SnapshotWorkspace(), after_first);

  // Reseeding changes the scores but must not disturb the pooled workspace.
  engine.Reseed(4711);
  const ScoreList reseeded = engine.Query(5);
  EXPECT_NE(first, reseeded);
  EXPECT_EQ(engine.SnapshotWorkspace().chunk_count, after_first.chunk_count);
}

TEST(ParallelQueryTest, CloneWithSeedStartsWithOwnWorkspace) {
  Graph g = MakeRandomDigraph(100, 500, 24);
  PRSimOptions options;
  options.eps = 0.1;
  PRSim leader(g, options);
  ASSERT_TRUE(leader.Preprocess().ok());
  (void)leader.Query(1);

  auto clone = leader.CloneWithSeed(99);
  auto* prsim_clone = dynamic_cast<PRSim*>(clone.get());
  ASSERT_NE(prsim_clone, nullptr);
  EXPECT_EQ(prsim_clone->SnapshotWorkspace().chunk_count, 0u);
  (void)prsim_clone->Query(1);
  EXPECT_GT(prsim_clone->SnapshotWorkspace().chunk_count, 0u);
}

TEST(ParallelQueryTest, RpprEstimatesBitIdenticalAcrossThreadCounts) {
  Graph g = MakeRandomDigraph(150, 900, 33);
  const NodeId w = 3;

  RpprEstimatorOptions base;
  base.eps = 0.02;
  base.seed = 9;
  base.threads = 1;
  RpprEstimator baseline(g, base);
  const RpprEstimate level_base = baseline.EstimateLevel(w, 2);
  const RpprEstimate agg_base = baseline.EstimateAggregate(w);
  EXPECT_FALSE(level_base.values.empty());
  EXPECT_FALSE(agg_base.values.empty());

  for (size_t threads : ThreadCounts()) {
    RpprEstimatorOptions options = base;
    options.threads = threads;
    RpprEstimator estimator(g, options);
    const RpprEstimate level = estimator.EstimateLevel(w, 2);
    const RpprEstimate agg = estimator.EstimateAggregate(w);
    EXPECT_EQ(level_base.values, level.values) << "threads=" << threads;
    EXPECT_EQ(level_base.total_walk_increments, level.total_walk_increments);
    EXPECT_EQ(agg_base.values, agg.values) << "threads=" << threads;
    EXPECT_EQ(agg_base.total_walk_increments, agg.total_walk_increments);
  }
}

TEST(ParallelQueryTest, BackwardWalkIndependentOfScratchHistory) {
  // The walk consumes RNG draws while iterating its recycled frontier, so
  // iteration follows insertion order, never map slot order: a walker whose
  // scratch grew on earlier (different) targets must replay a walk exactly
  // like a factory-fresh one.
  Graph g = MakeRandomDigraph(400, 8000, 44);
  BackwardWalker fresh(g, 0.6);
  BackwardWalker used(g, 0.6);
  Rng warm(1);
  for (int i = 0; i < 50; ++i) {
    (void)used.RunVarianceBounded(warm.NextIndex(g.n()), 8, warm);
  }
  // Precondition: the warmup actually grew the recycled scratch, i.e. the
  // two walkers genuinely differ in retained capacity.
  ASSERT_GT(used.ScratchCapacity(), fresh.ScratchCapacity());

  for (NodeId w : {NodeId(0), NodeId(7), NodeId(123)}) {
    Rng rng_fresh(99);
    Rng rng_used(99);
    const BackwardWalkResult a = fresh.RunVarianceBounded(w, 6, rng_fresh);
    const BackwardWalkResult b = used.RunVarianceBounded(w, 6, rng_used);
    EXPECT_EQ(a.estimates, b.estimates) << "w=" << w;
    EXPECT_EQ(a.increments, b.increments) << "w=" << w;
  }
}

TEST(ParallelQueryTest, QueryIndependentOfWorkspaceHistory) {
  // Query(u) must be a pure function of (seed, u) even after the pooled
  // workspace grew on other sources — per-worker service clones answer
  // scheduling-dependent request subsets, and their answers must not
  // depend on that history.
  Graph g = MakeRandomDigraph(300, 6000, 45);
  PRSimOptions options;
  options.eps = 0.04;
  options.alpha = 6;
  options.seed = 13;
  PRSim fresh(g, options);
  ASSERT_TRUE(fresh.Preprocess().ok());
  PRSim used(g, options);
  used.ShareIndexFrom(fresh);
  (void)used.Query(1);
  (void)used.Query(250);
  const PRSim::WorkspaceSnapshot warmed = used.SnapshotWorkspace();

  const ScoreList a = fresh.Query(7);
  const ScoreList b = used.Query(7);
  EXPECT_EQ(a, b);
  // The precondition that makes this test bite: the warmup queries really
  // left `used` with more retained capacity than `fresh` consumed.
  EXPECT_NE(warmed, fresh.SnapshotWorkspace());
}

TEST(ParallelQueryTest, RpprRepeatedEstimateIsPure) {
  Graph g = MakeRandomDigraph(80, 400, 34);
  RpprEstimatorOptions options;
  options.eps = 0.05;
  options.seed = 2;
  RpprEstimator estimator(g, options);
  const RpprEstimate a = estimator.EstimateLevel(7, 1);
  const RpprEstimate b = estimator.EstimateLevel(7, 1);
  EXPECT_EQ(a.values, b.values);
  // Level and aggregate estimates for the same target draw from disjoint
  // substream families, not a shared advancing stream.
  const RpprEstimate agg = estimator.EstimateAggregate(7);
  const RpprEstimate c = estimator.EstimateLevel(7, 1);
  EXPECT_EQ(a.values, c.values);
  (void)agg;
}

}  // namespace
}  // namespace prsim
