// End-to-end accuracy tests for the PRSim query algorithm against the exact
// power-method oracle, parameterized across graph families, decay factors and
// error targets; plus determinism, stats, and API-contract checks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <tuple>

#include "baselines/power_method.h"
#include "core/batch_query.h"
#include "core/prsim.h"
#include "gen/chung_lu.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::MakeCompleteDigraph;
using testing::MakeCycle;
using testing::MakeRandomDigraph;
using testing::MakeSharedParent;

/// Max |estimate - exact| over all v for one query.
double MaxError(const ScoreList& estimate, PowerMethodSimRank& oracle,
                NodeId u, NodeId n) {
  double worst = 0;
  // Check both directions: estimated nodes against truth, and all true
  // nonzero values against the (possibly missing) estimates.
  for (NodeId v = 0; v < n; ++v) {
    const double s_hat = ScoreOf(estimate, v);
    worst = std::max(worst, std::abs(s_hat - oracle.SimRank(u, v)));
  }
  return worst;
}

struct AccuracyCase {
  std::string name;
  Graph graph;
  double c;
  double eps;
};

std::vector<AccuracyCase> AccuracyCases() {
  std::vector<AccuracyCase> cases;
  cases.push_back({"random_sparse", MakeRandomDigraph(120, 500, 1), 0.6, 0.1});
  cases.push_back({"random_dense", MakeRandomDigraph(80, 1800, 2), 0.6, 0.1});
  cases.push_back({"random_c08", MakeRandomDigraph(100, 600, 3), 0.8, 0.15});
  cases.push_back(
      {"undirected", MakeRandomDigraph(100, 500, 4, true), 0.6, 0.1});
  {
    ChungLuOptions gen;
    gen.n = 150;
    gen.avg_degree = 6;
    gen.gamma_out = 1.6;
    gen.seed = 5;
    cases.push_back(
        {"powerlaw", GenerateChungLu(gen).ValueOrDie(), 0.6, 0.1});
  }
  cases.push_back({"complete", MakeCompleteDigraph(40), 0.6, 0.1});
  return cases;
}

class PRSimAccuracyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(PRSimAccuracyTest, PaperConstantsMeetErrorBound) {
  static const auto cases = AccuracyCases();
  const AccuracyCase& tc = cases[GetParam()];

  PowerMethodOptions pm;
  pm.c = tc.c;
  PowerMethodSimRank oracle(tc.graph, pm);
  oracle.Preprocess().Abort();

  PRSimOptions options;
  options.c = tc.c;
  options.eps = tc.eps;
  options.delta = 0.05;
  options.paper_constants = true;
  options.seed = 99;
  PRSim algo(tc.graph, options);
  ASSERT_TRUE(algo.Preprocess().ok());

  // With paper constants the bound holds per node with probability
  // 1 - delta/n; across a handful of queries a violation would be a bug.
  for (NodeId u : {NodeId(0), NodeId(3), NodeId(17)}) {
    ScoreList result = algo.Query(u % tc.graph.n());
    EXPECT_LE(MaxError(result, oracle, u % tc.graph.n(), tc.graph.n()),
              tc.eps)
        << tc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, PRSimAccuracyTest,
                         ::testing::Range<size_t>(0, 6),
                         [](const auto& info) {
                           static const auto cases = AccuracyCases();
                           return cases[info.param].name;
                         });

TEST(PRSimTest, PracticalModeReasonableAccuracy) {
  Graph g = MakeRandomDigraph(150, 900, 6);
  PowerMethodSimRank oracle(g, {});
  oracle.Preprocess().Abort();

  PRSimOptions options;
  options.eps = 0.05;
  options.alpha = 8.0;
  options.seed = 7;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  double worst = 0;
  for (NodeId u = 0; u < 10; ++u) {
    worst = std::max(worst, MaxError(algo.Query(u), oracle, u, g.n()));
  }
  // Practical constants: expect errors around eps, allow 3x slack.
  EXPECT_LT(worst, 3 * options.eps);
}

TEST(PRSimTest, SourceScoreIsOne) {
  Graph g = MakeRandomDigraph(50, 250, 8);
  PRSimOptions options;
  options.eps = 0.2;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  for (NodeId u : {NodeId(0), NodeId(13), NodeId(49)}) {
    EXPECT_DOUBLE_EQ(ScoreOf(algo.Query(u), u), 1.0);
  }
}

TEST(PRSimTest, EstimatesAreNonNegative) {
  Graph g = MakeRandomDigraph(80, 400, 9);
  PRSimOptions options;
  options.eps = 0.1;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  for (NodeId u = 0; u < 20; ++u) {
    for (const auto& [v, score] : algo.Query(u)) {
      EXPECT_GE(score, 0.0);
    }
  }
}

TEST(PRSimTest, DeterministicForSeed) {
  Graph g = MakeRandomDigraph(100, 600, 10);
  PRSimOptions options;
  options.eps = 0.1;
  options.seed = 1234;
  PRSim a(g, options), b(g, options);
  ASSERT_TRUE(a.Preprocess().ok());
  ASSERT_TRUE(b.Preprocess().ok());
  auto ra = a.Query(5);
  auto rb = b.Query(5);
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  EXPECT_EQ(ra, rb);
}

TEST(PRSimTest, QueryBeforePreprocessAborts) {
  Graph g = MakeCycle(10);
  PRSim algo(g, {});
  EXPECT_DEATH(algo.Query(0), "Preprocess");
}

TEST(PRSimTest, StatsPopulated) {
  Graph g = MakeRandomDigraph(200, 1500, 11);
  PRSimOptions options;
  options.eps = 0.1;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  algo.Query(3);
  const auto& stats = algo.last_query_cost();
  EXPECT_EQ(stats.walks, algo.samples_per_round() * algo.rounds());
  EXPECT_GT(stats.meeting_tests, 0u);
  EXPECT_GT(stats.backward_walks, 0u);
}

TEST(PRSimTest, RoundsForcedOdd) {
  Graph g = MakeCycle(10);
  PRSimOptions options;
  options.rounds = 4;
  PRSim algo(g, options);
  EXPECT_EQ(algo.rounds() % 2, 1u);
}

TEST(PRSimTest, IndexBytesZeroBeforePreprocess) {
  Graph g = MakeCycle(10);
  PRSim algo(g, {});
  EXPECT_EQ(algo.IndexBytes(), 0u);
  ASSERT_TRUE(algo.Preprocess().ok());
  EXPECT_GT(algo.IndexBytes(), 0u);
}

TEST(PRSimTest, HubHeavyConfigurationShiftsWorkToIndex) {
  // j0 = n turns every termination into an index lookup: no backward walks.
  Graph g = MakeRandomDigraph(100, 700, 12);
  PRSimOptions options;
  options.eps = 0.1;
  options.j0 = 100;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  algo.Query(0);
  EXPECT_EQ(algo.last_query_cost().backward_walks, 0u);

  PRSimOptions no_hubs = options;
  no_hubs.j0 = 1;
  PRSim algo2(g, no_hubs);
  ASSERT_TRUE(algo2.Preprocess().ok());
  algo2.Query(0);
  EXPECT_GT(algo2.last_query_cost().backward_walks, 0u);
}

TEST(PRSimTest, SharedParentValue) {
  Graph g = MakeSharedParent();
  PRSimOptions options;
  options.eps = 0.03;
  options.alpha = 10;
  options.seed = 3;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  EXPECT_NEAR(ScoreOf(algo.Query(0), 1), 0.6, 0.08);
}

TEST(PRSimTest, DanglingSourceStillAnswers) {
  // Node with no in-neighbors: every walk from it either stops immediately
  // or is lost; SimRank to everything else is 0.
  Graph g = testing::MakeChain(5);
  PRSimOptions options;
  options.eps = 0.1;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  ScoreList result = algo.Query(0);
  EXPECT_DOUBLE_EQ(ScoreOf(result, 0), 1.0);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_NEAR(ScoreOf(result, v), 0.0, 0.05);
  }
}

TEST(PRSimTest, SharedIndexConcurrentQueries) {
  // One leader builds the index; per-thread workers share it (the index is
  // immutable after Preprocess). All answers must stay within the error
  // budget of the exact oracle.
  Graph g = MakeRandomDigraph(120, 700, 14);
  PowerMethodSimRank oracle(g, {});
  oracle.Preprocess().Abort();

  PRSimOptions options;
  options.eps = 0.08;
  options.alpha = 6;
  PRSim leader(g, options);
  ASSERT_TRUE(leader.Preprocess().ok());

  constexpr int kThreads = 4;
  std::vector<std::unique_ptr<PRSim>> workers;
  for (int t = 0; t < kThreads; ++t) {
    PRSimOptions worker_options = options;
    worker_options.seed = 1000 + t;
    workers.push_back(std::make_unique<PRSim>(g, worker_options));
    workers.back()->ShareIndexFrom(leader);
    EXPECT_EQ(workers.back()->IndexBytes(), leader.IndexBytes());
  }

  std::vector<double> worst(kThreads, 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (NodeId u = t * 5; u < static_cast<NodeId>(t * 5 + 5); ++u) {
        ScoreList result = workers[t]->Query(u);
        for (NodeId v = 0; v < 120; ++v) {
          worst[t] = std::max(
              worst[t], std::abs(ScoreOf(result, v) - oracle.SimRank(u, v)));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_LT(worst[t], 3 * options.eps) << "thread " << t;
  }
}

TEST(PRSimTest, BatchQueryMatchesAccuracyAndIsThreadCountInvariant) {
  Graph g = MakeRandomDigraph(100, 600, 15);
  PowerMethodSimRank oracle(g, {});
  oracle.Preprocess().Abort();

  PRSimOptions options;
  options.eps = 0.1;
  options.alpha = 6;
  options.seed = 5;
  PRSim leader(g, options);
  ASSERT_TRUE(leader.Preprocess().ok());

  std::vector<NodeId> sources = {0, 5, 10, 15, 20, 25, 30, 35};
  auto serial = BatchQuery(g, leader, options, sources, /*threads=*/1);
  auto parallel = BatchQuery(g, leader, options, sources, /*threads=*/4);
  ASSERT_EQ(serial.size(), sources.size());
  for (size_t i = 0; i < sources.size(); ++i) {
    // Determinism across thread counts.
    auto a = serial[i];
    auto b = parallel[i];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << i;
    // Accuracy against the oracle.
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_NEAR(ScoreOf(serial[i], v), oracle.SimRank(sources[i], v),
                  3 * options.eps);
    }
  }
}

TEST(PRSimTest, ShareIndexFromUnpreprocessedAborts) {
  Graph g = MakeCycle(10);
  PRSim a(g, {}), b(g, {});
  EXPECT_DEATH(b.ShareIndexFrom(a), "no index");
}

TEST(PRSimTest, UndirectedSymmetryApproximate) {
  Graph g = MakeRandomDigraph(60, 250, 13, /*undirected=*/true);
  PRSimOptions options;
  options.eps = 0.05;
  options.alpha = 8;
  PRSim algo(g, options);
  ASSERT_TRUE(algo.Preprocess().ok());
  const auto r0 = algo.Query(0);
  const auto r1 = algo.Query(1);
  EXPECT_NEAR(ScoreOf(r0, 1), ScoreOf(r1, 0), 3 * options.eps);
}

}  // namespace
}  // namespace prsim
