// FlatHashMap2 (SwissTable-style metadata probing, journal-driven clear,
// insertion-order iteration) plus the v1 regressions this PR fixed:
// operator[] growing on lookups, doubling-loop overflow, and the
// PackNodeLevel level cap. Also pins the OrderedSlot invariant that makes
// the v2 hot-path migration bit-identity-safe: the caller-held keys vector
// is a pure function of the insertion sequence, never of the capacity a
// reused map retained from earlier queries.

#include "util/flat_hash_map2.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "util/flat_hash_map.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace prsim {
namespace {

TEST(FlatHashMap2Test, InsertAndFind) {
  FlatHashMap2<double> map;
  map[3] = 1.5;
  map[7] += 2.0;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(3), nullptr);
  EXPECT_DOUBLE_EQ(*map.Find(3), 1.5);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_DOUBLE_EQ(*map.Find(7), 2.0);
  EXPECT_EQ(map.Find(4), nullptr);
  EXPECT_TRUE(map.Contains(3));
  EXPECT_FALSE(map.Contains(4));
}

TEST(FlatHashMap2Test, OperatorBracketDefaultConstructs) {
  FlatHashMap2<double> map;
  EXPECT_DOUBLE_EQ(map[42], 0.0);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap2Test, NoReservedKeys) {
  // Unlike v1 (kEmptyKey is a sentinel), every uint64 is insertable:
  // presence lives in the control byte.
  FlatHashMap2<int> map;
  map[~0ULL] = 7;
  map[0] = 9;
  ASSERT_NE(map.Find(~0ULL), nullptr);
  EXPECT_EQ(*map.Find(~0ULL), 7);
  ASSERT_NE(map.Find(0), nullptr);
  EXPECT_EQ(*map.Find(0), 9);
}

TEST(FlatHashMap2Test, GrowPreservesEntries) {
  FlatHashMap2<uint64_t> map(4);
  for (uint64_t i = 0; i < 5000; ++i) map[i * 3 + 1] = i;
  EXPECT_EQ(map.size(), 5000u);
  for (uint64_t i = 0; i < 5000; ++i) {
    const uint64_t* v = map.Find(i * 3 + 1);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(map.Find(2), nullptr);
}

TEST(FlatHashMap2Test, ReserveGrowsAndPreservesEntries) {
  FlatHashMap2<uint64_t> map(4);
  for (uint64_t i = 0; i < 20; ++i) map[i * 7 + 2] = i;
  const size_t before = map.capacity();
  map.Reserve(before);  // no-op: already there
  EXPECT_EQ(map.capacity(), before);
  map.Reserve(before * 4);
  EXPECT_GE(map.capacity(), before * 4);
  EXPECT_EQ(map.size(), 20u);
  for (uint64_t i = 0; i < 20; ++i) {
    const uint64_t* v = map.Find(i * 7 + 2);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
  map.clear();
  EXPECT_GE(map.capacity(), before * 4);  // the workspace-reuse contract
}

TEST(FlatHashMap2Test, ClearEmptiesAndDoesNotResurrectStaleValues) {
  FlatHashMap2<int> map;
  for (uint64_t i = 0; i < 100; ++i) map[i] = 1 + static_cast<int>(i);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
  // clear() resets only control bytes; the payload of a reused slot must
  // still come back default-constructed.
  EXPECT_EQ(map[5], 0);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMap2Test, SparseAndDenseClearPathsAgree) {
  // Journal walk (sparse) and control memset (dense) must be
  // indistinguishable. Cycle both regimes through one retained-capacity
  // map against a reference.
  FlatHashMap2<uint64_t> map;
  map.Reserve(4096);
  Rng rng(7);
  for (int cycle = 0; cycle < 20; ++cycle) {
    // Odd cycles stay tiny (journal path); even cycles go dense (memset).
    const uint64_t count = (cycle % 2 == 1) ? 17 : 3000;
    std::unordered_map<uint64_t, uint64_t> ref;
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t key = rng.NextBounded(1u << 20);
      map[key] += cycle + 1;
      ref[key] += cycle + 1;
    }
    ASSERT_EQ(map.size(), ref.size()) << cycle;
    for (const auto& [k, v] : ref) {
      const uint64_t* found = map.Find(k);
      ASSERT_NE(found, nullptr) << cycle << " key " << k;
      ASSERT_EQ(*found, v) << cycle << " key " << k;
    }
    EXPECT_EQ(map.capacity(), 4096u) << cycle;
    map.clear();
    ASSERT_TRUE(map.empty());
  }
}

TEST(FlatHashMap2Test, ForEachIsInsertionOrderAndSurvivesRehash) {
  FlatHashMap2<uint64_t> map(4);
  std::vector<uint64_t> inserted;
  Rng rng(13);
  std::set<uint64_t> used;
  for (int i = 0; i < 1500; ++i) {  // several rehashes from capacity 16
    const uint64_t key = rng.Next();
    if (!used.insert(key).second) continue;
    map[key] = static_cast<uint64_t>(i);
    inserted.push_back(key);
  }
  std::vector<uint64_t> seen;
  map.ForEach([&](uint64_t k, const uint64_t&) { seen.push_back(k); });
  EXPECT_EQ(seen, inserted);

  // Reserve-triggered rehash preserves the order too.
  map.Reserve(map.capacity() * 4);
  seen.clear();
  map.ForEach([&](uint64_t k, const uint64_t&) { seen.push_back(k); });
  EXPECT_EQ(seen, inserted);

  // ToVector inherits the order.
  const auto pairs = map.ToVector();
  ASSERT_EQ(pairs.size(), inserted.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].first, inserted[i]);
  }
}

TEST(FlatHashMap2Test, ForEachMutableWrites) {
  FlatHashMap2<uint64_t> map;
  for (uint64_t i = 0; i < 64; ++i) map[i] = i;
  map.ForEachMutable([](uint64_t, uint64_t& v) { v *= 2; });
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_NE(map.Find(i), nullptr);
    EXPECT_EQ(*map.Find(i), i * 2);
  }
}

TEST(FlatHashMap2Test, AgreesWithStdUnorderedMapUnderRandomOps) {
  Rng rng(99);
  FlatHashMap2<double> mine;
  std::unordered_map<uint64_t, double> ref;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(3000);
    const double val = rng.NextDouble();
    mine[key] += val;
    ref[key] += val;
  }
  EXPECT_EQ(mine.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const double* found = mine.Find(k);
    ASSERT_NE(found, nullptr) << k;
    EXPECT_DOUBLE_EQ(*found, v);
  }
}

TEST(FlatHashMap2Test, LookupNeverGrows) {
  // Small-regime v2 grows at 1/2 load, and the minimum table is 64 slots
  // (one cache line of control bytes): it accepts 32 entries. Lookups of
  // present keys at the boundary must not rehash (capacity is a pure
  // function of the insert count).
  FlatHashMap2<int> map(4);
  ASSERT_EQ(map.capacity(), 64u);
  for (uint64_t i = 0; i < 32; ++i) map[i] = 1;
  ASSERT_EQ(map.capacity(), 64u);
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (uint64_t i = 0; i < 32; ++i) map[i] += 1;
  }
  EXPECT_EQ(map.capacity(), 64u);  // lookup-heavy traffic: no growth
  map[99] = 1;  // a real insert crosses 1/2 load; small regime grows 4x
  EXPECT_EQ(map.capacity(), 256u);
  EXPECT_EQ(map.size(), 33u);
}

// --------------------------------------------------------------------------
// v1 regressions fixed in this PR
// --------------------------------------------------------------------------

TEST(FlatHashMapV1RegressionTest, LookupAtLoadFactorBoundaryDoesNotGrow) {
  // v1 grows when (size + 1) * 4 >= capacity * 3: a 16-slot map holding 11
  // entries sits exactly at the boundary. The old operator[] rehashed on
  // ANY access there — including a lookup of a present key — so capacity
  // retention diverged from the true insert count.
  FlatHashMap<int> map(4);
  ASSERT_EQ(map.capacity(), 16u);
  for (uint64_t i = 0; i < 11; ++i) map[i] = 1;
  ASSERT_EQ(map.capacity(), 16u);
  map[3] += 1;  // lookup of a present key at the boundary
  EXPECT_EQ(map.capacity(), 16u) << "lookup must not grow the map";
  map[77] = 1;  // a real insert at the boundary does grow
  EXPECT_EQ(map.capacity(), 32u);
  EXPECT_EQ(map.size(), 12u);
}

TEST(FlatHashMapOverflowGuardTest, HugeRequestsAreRejected) {
  // The power-of-two doubling loops used to spin or wrap on huge requests;
  // now they fail loudly before allocating anything.
  EXPECT_DEATH(FlatHashMap<int> m(~size_t{0} / 2), "exceeds");
  EXPECT_DEATH(FlatHashMap2<int> m(~size_t{0} / 2), "exceeds");
  FlatHashMap<int> v1;
  EXPECT_DEATH(v1.Reserve(~size_t{0} - 1), "exceeds");
  FlatHashMap2<int> v2;
  EXPECT_DEATH(v2.Reserve(~size_t{0} - 1), "exceeds");
  // In-range requests still work.
  v1.Reserve(1 << 12);
  v2.Reserve(1 << 12);
  EXPECT_GE(v1.capacity(), size_t{1} << 12);
  EXPECT_GE(v2.capacity(), size_t{1} << 12);
}

// --------------------------------------------------------------------------
// PackNodeLevel
// --------------------------------------------------------------------------

TEST(PackNodeLevelTest, RoundTripsAtBoundaries) {
  const uint32_t max_node = ~0u;
  const uint32_t max_level = kPackNodeLevelCap - 1;
  const std::pair<uint32_t, uint32_t> cases[] = {
      {0u, 0u}, {1u, 0u}, {0u, 1u},          {max_node, 0u},
      {0u, max_level}, {max_node, max_level}, {12345u, 64u},
  };
  for (const auto& [node, level] : cases) {
    const uint64_t key = PackNodeLevel(node, level);
    EXPECT_EQ(UnpackNode(key), node) << node << "," << level;
    EXPECT_EQ(UnpackLevel(key), level) << node << "," << level;
  }
}

TEST(PackNodeLevelTest, NeverCollidesWithEmptyKeySentinel) {
  // Levels occupy bits 32..55, so the top byte of a packed key is always
  // zero — strictly below v1's kEmptyKey sentinel.
  const uint64_t max_packed = PackNodeLevel(~0u, kPackNodeLevelCap - 1);
  EXPECT_LT(max_packed, FlatHashMap<int>::kEmptyKey);
  EXPECT_EQ(max_packed >> 56, 0u);
}

#ifndef NDEBUG
TEST(PackNodeLevelTest, LevelCapIsEnforcedInDebugBuilds) {
  EXPECT_DEATH(PackNodeLevel(0, kPackNodeLevelCap), "Check failed");
}
#endif

// --------------------------------------------------------------------------
// OrderedSlot under capacity-retained reuse — the invariant that makes the
// v2 hot-path migration bit-identity-safe.
// --------------------------------------------------------------------------

/// Runs one accumulation sequence through OrderedSlot and returns
/// (insertion-order keys, ForEach-order keys).
template <typename Map>
std::pair<std::vector<uint64_t>, std::vector<uint64_t>> RunSequence(
    Map& map, const std::vector<uint64_t>& sequence) {
  std::vector<uint64_t> keys;
  for (const uint64_t k : sequence) OrderedSlot(map, keys, k) += 1.0;
  std::vector<uint64_t> foreach_order;
  map.ForEach([&](uint64_t k, const double&) { foreach_order.push_back(k); });
  return {keys, foreach_order};
}

std::vector<uint64_t> TestSequence() {
  Rng rng(21);
  std::vector<uint64_t> sequence;
  for (int i = 0; i < 400; ++i) sequence.push_back(rng.NextBounded(200));
  return sequence;
}

TEST(OrderedSlotTest, V1KeysAreAPureFunctionOfInsertionOrder) {
  const auto sequence = TestSequence();

  FlatHashMap<double> fresh(16);
  const auto [fresh_keys, fresh_slots] = RunSequence(fresh, sequence);

  // Same sequence into a map that retained a large capacity from earlier
  // use — the pooled-workspace situation.
  FlatHashMap<double> retained(16);
  retained.Reserve(8192);
  retained.clear();
  const auto [retained_keys, retained_slots] = RunSequence(retained, sequence);

  // The insertion-order keys vector is identical across retained
  // capacities...
  EXPECT_EQ(fresh_keys, retained_keys);
  // ...while v1's raw slot order is not (this is exactly why every
  // order-sensitive pass iterates the keys vector, never the map).
  EXPECT_NE(fresh_slots, retained_slots);
  EXPECT_NE(retained_slots, retained_keys);

  // Same multiset either way.
  auto sorted_a = fresh_slots, sorted_b = retained_slots;
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(sorted_b.begin(), sorted_b.end());
  EXPECT_EQ(sorted_a, sorted_b);
}

TEST(OrderedSlotTest, V2ForEachMatchesKeysVectorAtAnyRetainedCapacity) {
  const auto sequence = TestSequence();

  FlatHashMap2<double> fresh(16);
  const auto [fresh_keys, fresh_order] = RunSequence(fresh, sequence);

  FlatHashMap2<double> retained(16);
  retained.Reserve(8192);
  retained.clear();
  const auto [retained_keys, retained_order] = RunSequence(retained, sequence);

  // v2 upgrades the discipline to a container property: ForEach IS the
  // insertion order, whatever capacity the map retained.
  EXPECT_EQ(fresh_keys, retained_keys);
  EXPECT_EQ(fresh_order, fresh_keys);
  EXPECT_EQ(retained_order, retained_keys);
}

// --------------------------------------------------------------------------
// Shared read-only use across pool workers (run under TSan in CI).
// --------------------------------------------------------------------------

TEST(FlatHashMap2ConcurrencyTest, ConcurrentReadersOnSharedMap) {
  // The shared-index pattern: one immutable map (PRSimIndex::hub_slot_),
  // many pool workers calling Find concurrently.
  FlatHashMap2<uint32_t> map;
  constexpr uint64_t kKeys = 20000;
  for (uint64_t i = 0; i < kKeys; ++i) map[i * 11] = static_cast<uint32_t>(i);
  const FlatHashMap2<uint32_t>& shared = map;

  std::vector<uint64_t> hit_counts(8, 0);
  ParallelFor(0, 8, [&](size_t worker) {
    uint64_t hits = 0;
    for (uint64_t i = 0; i < kKeys; ++i) {
      const uint32_t* v = shared.Find(i * 11);
      if (v != nullptr && *v == i) ++hits;
      if (shared.Contains(i * 11 + 1)) ++hits;  // misses by construction
    }
    hit_counts[worker] = hits;
  }, 8);
  for (const uint64_t hits : hit_counts) EXPECT_EQ(hits, kKeys);
}

}  // namespace
}  // namespace prsim
