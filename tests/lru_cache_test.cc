// Unit tests for util/lru_cache.h: recency order, byte-budgeted eviction,
// oversized-entry refusal, EraseIf, counters, and the stale-index rebuild
// path that FlatHashMap2's no-erase design forces.

#include "util/lru_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace prsim {
namespace {

// splitmix64 — a well-mixed stateless hash as the LruCache contract asks.
struct U64Hash {
  uint64_t operator()(uint64_t x) const {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }
};

using Cache = LruCache<uint64_t, std::string, U64Hash>;

TEST(LruCacheTest, GetReturnsWhatPutStored) {
  Cache cache(1024);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_TRUE(cache.Put(1, "one", 10));
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), "one");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.bytes(), 10u);
  EXPECT_EQ(cache.budget(), 1024u);
}

TEST(LruCacheTest, GetPromotesAndEvictionTakesTheTail) {
  // Budget fits exactly two 10-byte entries. Insert A, B; touch A; insert
  // C. The LRU victim must be B (A was promoted by the Get).
  Cache cache(20);
  ASSERT_TRUE(cache.Put(1, "A", 10));
  ASSERT_TRUE(cache.Put(2, "B", 10));
  ASSERT_NE(cache.Get(1), nullptr);  // promotes A over B
  ASSERT_TRUE(cache.Put(3, "C", 10));

  EXPECT_EQ(cache.Get(2), nullptr) << "B should have been evicted";
  ASSERT_NE(cache.Get(1), nullptr);
  ASSERT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 20u);
  EXPECT_EQ(cache.evictions(), 1u);
  // The verification Gets above promoted 1 then 3, so MRU -> LRU is [3, 1].
  const std::vector<uint64_t> order = cache.KeysByRecency();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 1u);
}

TEST(LruCacheTest, CostAwareEvictionDropsMultipleVictims) {
  // One large insert must evict as many tail entries as needed to fit.
  Cache cache(100);
  ASSERT_TRUE(cache.Put(1, "a", 30));
  ASSERT_TRUE(cache.Put(2, "b", 30));
  ASSERT_TRUE(cache.Put(3, "c", 30));
  // 90 bytes used; a 65-byte entry forces out the two oldest (1 and 2)
  // before 90 + 65 = 155 fits under 100 again at 95.
  ASSERT_TRUE(cache.Put(4, "d", 65));
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(3), nullptr);
  ASSERT_NE(cache.Get(4), nullptr);
  EXPECT_EQ(cache.bytes(), 95u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
}

TEST(LruCacheTest, OversizedPutIsRefused) {
  Cache cache(50);
  EXPECT_FALSE(cache.Put(1, "too big", 51));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  // An exact-budget entry is accepted.
  EXPECT_TRUE(cache.Put(2, "fits", 50));
  EXPECT_EQ(cache.bytes(), 50u);
  // A refused Put never evicts the resident entry.
  EXPECT_FALSE(cache.Put(3, "too big", 51));
  ASSERT_NE(cache.Get(2), nullptr);
}

TEST(LruCacheTest, OverwriteReplacesValueAndCost) {
  Cache cache(100);
  ASSERT_TRUE(cache.Put(1, "old", 40));
  ASSERT_TRUE(cache.Put(2, "other", 40));
  // Overwriting key 1 with a new cost adjusts bytes and promotes it.
  ASSERT_TRUE(cache.Put(1, "new", 10));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 50u);
  EXPECT_EQ(*cache.Get(1), "new");
  const std::vector<uint64_t> order = cache.KeysByRecency();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // Get(1) above also keeps it in front
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(LruCacheTest, HitAndMissCountersPartitionLookups) {
  Cache cache(100);
  ASSERT_TRUE(cache.Put(1, "x", 10));
  (void)cache.Get(1);  // hit
  (void)cache.Get(1);  // hit
  (void)cache.Get(2);  // miss
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, EraseIfDropsMatchingEntriesWithoutCountingEvictions) {
  Cache cache(1000);
  for (uint64_t key = 0; key < 10; ++key) {
    ASSERT_TRUE(cache.Put(key, "v", 10));
  }
  const size_t erased = cache.EraseIf([](uint64_t key) { return key % 2 == 0; });
  EXPECT_EQ(erased, 5u);
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.bytes(), 50u);
  EXPECT_EQ(cache.evictions(), 0u) << "EraseIf is invalidation, not pressure";
  for (uint64_t key = 0; key < 10; ++key) {
    if (key % 2 == 0) {
      EXPECT_EQ(cache.Get(key), nullptr) << key;
    } else {
      EXPECT_NE(cache.Get(key), nullptr) << key;
    }
  }
}

TEST(LruCacheTest, ClearDropsEverythingButKeepsCounters) {
  Cache cache(100);
  ASSERT_TRUE(cache.Put(1, "x", 10));
  (void)cache.Get(1);
  (void)cache.Get(2);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);  // the post-Clear Get(1) counted too
  // Reusable after Clear.
  ASSERT_TRUE(cache.Put(3, "y", 10));
  ASSERT_NE(cache.Get(3), nullptr);
}

TEST(LruCacheTest, SurvivesHeavyChurnThroughIndexRebuilds) {
  // Thousands of evictions leave stale FlatHashMap2 slots behind; the
  // amortized rebuild must keep lookups exact throughout. Budget holds 8
  // entries, keys cycle through a window much larger than that.
  Cache cache(80);
  uint64_t inserted = 0;
  for (uint64_t round = 0; round < 50; ++round) {
    for (uint64_t key = 0; key < 100; ++key) {
      ASSERT_TRUE(cache.Put(key, std::to_string(key), 10));
      ++inserted;
      ASSERT_LE(cache.bytes(), cache.budget());
      ASSERT_EQ(cache.bytes(), cache.size() * 10);
    }
  }
  EXPECT_EQ(cache.size(), 8u);
  // The last 8 keys inserted (92..99) are resident, in reverse order.
  const std::vector<uint64_t> order = cache.KeysByRecency();
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], 99u - i);
  }
  for (uint64_t key = 92; key < 100; ++key) {
    ASSERT_NE(cache.Get(key), nullptr) << key;
    EXPECT_EQ(*cache.Get(key), std::to_string(key));
  }
  EXPECT_EQ(cache.Get(0), nullptr);
  EXPECT_EQ(cache.evictions(), inserted - 8u);
}

TEST(LruCacheTest, MoveOnlyValuesWork) {
  LruCache<uint64_t, std::unique_ptr<int>, U64Hash> cache(100);
  ASSERT_TRUE(cache.Put(1, std::make_unique<int>(42), 10));
  auto* value = cache.Get(1);
  ASSERT_NE(value, nullptr);
  ASSERT_NE(value->get(), nullptr);
  EXPECT_EQ(**value, 42);
  // Eviction releases the payload (would leak / double-free on a bug;
  // ASan-covered in the sanitize CI job).
  ASSERT_TRUE(cache.Put(2, std::make_unique<int>(43), 100));
  EXPECT_EQ(cache.Get(1), nullptr);
}

}  // namespace
}  // namespace prsim
