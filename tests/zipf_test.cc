// Unit tests for util/zipf.h: determinism, bounds, and distribution shape
// of the Zipfian workload sampler.

#include "util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace prsim {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  for (const uint32_t n : {1u, 2u, 7u, 1000u}) {
    ZipfSampler zipf(n, 1.0);
    Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
      const uint32_t rank = zipf.Sample(rng);
      ASSERT_LT(rank, n);
    }
  }
}

TEST(ZipfTest, SingleRankAlwaysSamplesZero) {
  // n = 1 must degenerate to the constant 0 for every exponent, including
  // the uniform edge s = 0 — the cache benches pin hot-source workloads on
  // exactly this corner.
  for (const double s : {0.0, 0.8, 1.2, 3.5}) {
    ZipfSampler zipf(1, s);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(zipf.Sample(rng), 0u) << "s=" << s;
    }
    EXPECT_DOUBLE_EQ(zipf.Probability(0), 1.0) << "s=" << s;
  }
}

TEST(ZipfTest, ZeroExponentIsEmpiricallyUniform) {
  // s = 0: every rank carries mass exactly 1/n, and 160k draws over 16
  // ranks stay within 5 sigma of the uniform expectation (sigma of a
  // binomial count = sqrt(draws * p * (1 - p))).
  const uint32_t n = 16;
  ZipfSampler zipf(n, 0.0);
  for (uint32_t r = 0; r < n; ++r) {
    EXPECT_DOUBLE_EQ(zipf.Probability(r), 1.0 / n) << "rank=" << r;
  }
  Rng rng(2026);
  const int draws = 160000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < draws; ++i) ++counts[zipf.Sample(rng)];
  const double expected = static_cast<double>(draws) / n;
  const double sigma =
      std::sqrt(draws * (1.0 / n) * (1.0 - 1.0 / n));
  for (uint32_t r = 0; r < n; ++r) {
    EXPECT_NEAR(counts[r], expected, 5 * sigma) << "rank=" << r;
  }
}

TEST(ZipfTest, FixedSeedReplaysBitIdentically) {
  ZipfSampler zipf(5000, 1.0);
  const auto draw = [&](uint64_t seed) {
    Rng rng(seed);
    std::vector<uint32_t> sequence(4096);
    for (auto& rank : sequence) rank = zipf.Sample(rng);
    return sequence;
  };
  EXPECT_EQ(draw(123), draw(123));
  EXPECT_NE(draw(123), draw(124));

  // A second sampler with identical parameters replays the same stream —
  // the table construction itself is deterministic.
  ZipfSampler again(5000, 1.0);
  Rng rng(123);
  std::vector<uint32_t> sequence(4096);
  for (auto& rank : sequence) rank = again.Sample(rng);
  EXPECT_EQ(sequence, draw(123));
}

TEST(ZipfTest, ProbabilitiesAreNormalizedAndDecreasing) {
  for (const double s : {0.8, 1.0, 1.2}) {
    ZipfSampler zipf(200, s);
    double total = 0;
    for (uint32_t r = 0; r < 200; ++r) {
      const double p = zipf.Probability(r);
      EXPECT_GT(p, 0.0);
      if (r > 0) EXPECT_LE(p, zipf.Probability(r - 1));
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    // The analytic mass of rank r is (r+1)^-s over the generalized
    // harmonic number.
    double harmonic = 0;
    for (uint32_t r = 0; r < 200; ++r) harmonic += std::pow(r + 1.0, -s);
    EXPECT_NEAR(zipf.Probability(0), 1.0 / harmonic, 1e-12);
    EXPECT_NEAR(zipf.Probability(9), std::pow(10.0, -s) / harmonic, 1e-12);
  }
}

TEST(ZipfTest, EmpiricalFrequenciesMatchTheMass) {
  // 200k draws over 50 ranks: every rank's relative error is small for the
  // head and the aggregate tail mass matches too.
  for (const double s : {0.8, 1.0, 1.2}) {
    const uint32_t n = 50;
    ZipfSampler zipf(n, s);
    Rng rng(99);
    const int draws = 200000;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < draws; ++i) ++counts[zipf.Sample(rng)];
    for (uint32_t r = 0; r < 5; ++r) {
      const double expected = zipf.Probability(r) * draws;
      EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected))
          << "s=" << s << " rank=" << r;
    }
    double tail_mass = 0;
    int tail_count = 0;
    for (uint32_t r = 25; r < n; ++r) {
      tail_mass += zipf.Probability(r);
      tail_count += counts[r];
    }
    EXPECT_NEAR(tail_count, tail_mass * draws,
                5 * std::sqrt(tail_mass * draws));
  }
}

TEST(ZipfTest, HigherExponentIsMoreSkewed) {
  ZipfSampler flat(100, 0.8), steep(100, 1.2);
  EXPECT_GT(steep.Probability(0), flat.Probability(0));
  EXPECT_LT(steep.Probability(99), flat.Probability(99));
  // s = 0 degenerates to uniform.
  ZipfSampler uniform(100, 0.0);
  EXPECT_NEAR(uniform.Probability(0), 0.01, 1e-12);
  EXPECT_NEAR(uniform.Probability(99), 0.01, 1e-12);
}

}  // namespace
}  // namespace prsim
