// Tests for dynamic-graph support: snapshot semantics, auto-flush
// amortization, and agreement with a freshly built static PRSim.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/power_method.h"
#include "core/dynamic_prsim.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::MakeRandomDigraph;

std::vector<Edge> FixtureEdges(NodeId n, uint64_t m, uint64_t seed) {
  return MakeRandomDigraph(n, m, seed).ToEdges();
}

DynamicPRSimOptions FastOptions() {
  DynamicPRSimOptions options;
  options.prsim.eps = 0.1;
  options.prsim.seed = 3;
  return options;
}

TEST(DynamicPRSimTest, InitialSnapshotAnswersQueries) {
  DynamicPRSim dyn(60, FixtureEdges(60, 300, 1), FastOptions());
  EXPECT_EQ(dyn.flush_count(), 1u);
  ScoreList result = dyn.Query(5);
  EXPECT_DOUBLE_EQ(ScoreOf(result, 5), 1.0);
}

TEST(DynamicPRSimTest, RejectsOutOfRangeUpdates) {
  DynamicPRSim dyn(10, FixtureEdges(10, 30, 2), FastOptions());
  EXPECT_FALSE(dyn.InsertEdge(0, 10).ok());
  EXPECT_FALSE(dyn.DeleteEdge(11, 0).ok());
  EXPECT_FALSE(dyn.InsertEdge(3, 3).ok());  // self-loop
}

TEST(DynamicPRSimTest, InsertionsVisibleAfterFlush) {
  // Start from a graph where s(0, 1) = 0, then give 0 and 1 a shared parent.
  std::vector<Edge> edges = {{3, 2}};
  DynamicPRSimOptions options = FastOptions();
  options.prsim.eps = 0.03;
  options.prsim.alpha = 10;
  DynamicPRSim dyn(4, edges, options);
  EXPECT_NEAR(ScoreOf(dyn.Query(0), 1), 0.0, 1e-12);

  ASSERT_TRUE(dyn.InsertEdge(2, 0).ok());
  ASSERT_TRUE(dyn.InsertEdge(2, 1).ok());
  ScoreList fresh = dyn.Query(0, QueryFreshness::kFresh);
  EXPECT_EQ(dyn.pending_updates(), 0u);
  // I(0) = I(1) = {2} => s(0, 1) = c = 0.6.
  EXPECT_NEAR(ScoreOf(fresh, 1), 0.6, 0.1);
}

TEST(DynamicPRSimTest, SnapshotQueriesIgnorePendingUpdates) {
  std::vector<Edge> edges = {{2, 0}, {2, 1}};
  DynamicPRSimOptions options = FastOptions();
  options.rebuild_fraction = 100.0;  // never auto-flush
  DynamicPRSim dyn(3, edges, options);
  // Shared parent: s(0, 1) = c = 0.6 while the edge (2, 1) exists.
  EXPECT_NEAR(ScoreOf(dyn.Query(0), 1), 0.6, 0.15);
  ASSERT_TRUE(dyn.DeleteEdge(2, 1).ok());
  EXPECT_EQ(dyn.pending_updates(), 1u);
  // Snapshot query still sees the old edge (estimates carry eps-level
  // sampling noise; the gap to 0 is what matters).
  EXPECT_NEAR(ScoreOf(dyn.Query(0, QueryFreshness::kSnapshot), 1), 0.6, 0.15);
  // Fresh query applies the deletion: similarity collapses to 0.
  EXPECT_NEAR(ScoreOf(dyn.Query(0, QueryFreshness::kFresh), 1), 0.0, 0.05);
}

TEST(DynamicPRSimTest, DeleteMissingEdgeIsNoop) {
  DynamicPRSim dyn(20, FixtureEdges(20, 60, 3), FastOptions());
  const uint64_t edges_before = dyn.snapshot_edges();
  ASSERT_TRUE(dyn.DeleteEdge(0, 19).ok());
  ASSERT_TRUE(dyn.DeleteEdge(19, 0).ok());
  ASSERT_TRUE(dyn.Flush().ok());
  // The random fixture may or may not contain these edges; removing then
  // re-flushing must never *increase* the count and at most remove 2.
  EXPECT_LE(dyn.snapshot_edges(), edges_before);
  EXPECT_GE(dyn.snapshot_edges() + 2, edges_before);
}

TEST(DynamicPRSimTest, AutoFlushTriggersAtThreshold) {
  DynamicPRSimOptions options = FastOptions();
  options.rebuild_fraction = 0.05;  // 300 edges -> flush every 15 updates
  DynamicPRSim dyn(100, FixtureEdges(100, 300, 4), options);
  const uint64_t initial_flushes = dyn.flush_count();
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(dyn.InsertEdge(rng.NextIndex(100), rng.NextIndex(100)).ok() ||
                true);
  }
  EXPECT_GT(dyn.flush_count(), initial_flushes);
  // Amortization: far fewer flushes than updates.
  EXPECT_LT(dyn.flush_count() - initial_flushes, 20u);
}

TEST(DynamicPRSimTest, ConvergesToStaticPRSimAfterUpdates) {
  // Apply a batch of updates, then compare against a PRSim built from
  // scratch on the final edge set, using the exact oracle as referee.
  std::vector<Edge> initial = FixtureEdges(80, 300, 6);
  DynamicPRSimOptions options = FastOptions();
  options.prsim.eps = 0.05;
  options.prsim.alpha = 8;
  DynamicPRSim dyn(80, initial, options);

  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    const NodeId a = rng.NextIndex(80), b = rng.NextIndex(80);
    if (a == b) continue;
    if (rng.NextBernoulli(0.7)) {
      ASSERT_TRUE(dyn.InsertEdge(a, b).ok());
    } else {
      ASSERT_TRUE(dyn.DeleteEdge(a, b).ok());
    }
  }
  ASSERT_TRUE(dyn.Flush().ok());

  PowerMethodOptions pm;
  PowerMethodSimRank oracle(dyn.snapshot(), pm);
  ASSERT_TRUE(oracle.Preprocess().ok());
  ScoreList result = dyn.Query(4, QueryFreshness::kFresh);
  for (NodeId v = 0; v < 80; ++v) {
    EXPECT_NEAR(ScoreOf(result, v), oracle.SimRank(4, v), 0.12) << v;
  }
}

}  // namespace
}  // namespace prsim
