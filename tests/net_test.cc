// Network serving subsystem: wire frame codec round trips, the shared
// text-protocol parser/formatter, the pipelined dispatcher's ordering
// contract, and TcpServer end to end — including the PR's headline
// guarantee that answers over TCP are bit-identical to the offline query
// path at any thread or shard count.

#include "net/tcp_server.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_config.h"
#include "core/query_service.h"
#include "core/shard_manifest.h"
#include "core/shard_router.h"
#include "net/frame.h"
#include "net/serve_loop.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/socket.h"

namespace prsim {
namespace {

using ::prsim::testing::MakeRandomDigraph;

EngineConfig ParseConfig(const std::string& params) {
  auto parsed = EngineConfig::Parse(params);
  parsed.status().Abort();
  return std::move(parsed).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

TEST(FrameTest, RequestRoundTripsAllFields) {
  net::WireRequest request;
  request.algo = "prsim";
  request.source = 123456;
  request.k = 17;
  request.seed_position = 987654321;
  request.fresh_seed = false;
  std::vector<char> payload;
  net::EncodeRequest(request, &payload);
  auto decoded = net::DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const net::WireRequest& back = decoded.ValueOrDie();
  EXPECT_EQ(back.algo, "prsim");
  EXPECT_EQ(back.source, 123456u);
  EXPECT_EQ(back.k, 17u);
  EXPECT_EQ(back.seed_position, 987654321u);
  EXPECT_FALSE(back.fresh_seed);
}

TEST(FrameTest, RequestDefaultsRoundTrip) {
  net::WireRequest request;  // empty algo, service-order position
  request.fresh_seed = true;
  std::vector<char> payload;
  net::EncodeRequest(request, &payload);
  auto decoded = net::DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.ValueOrDie().algo.empty());
  EXPECT_EQ(decoded.ValueOrDie().seed_position, QueryRequest::kServiceOrder);
  EXPECT_TRUE(decoded.ValueOrDie().fresh_seed);
}

TEST(FrameTest, DeadlineFreeRequestsStayVersion1OnTheWire) {
  // Back-compat contract: a request without a deadline must encode exactly
  // as it always has, so old decoders keep working untouched.
  net::WireRequest request;
  request.algo = "prsim";
  request.source = 7;
  request.k = 5;
  std::vector<char> payload;
  net::EncodeRequest(request, &payload);
  ASSERT_FALSE(payload.empty());
  EXPECT_EQ(static_cast<uint8_t>(payload[0]), net::kFrameVersion);
  // v1 layout: u8 version, u8 flags, u16 algo_len, u32 source, u32 k,
  // u64 seed_position, algo bytes — no deadline field.
  EXPECT_EQ(payload.size(), 1 + 1 + 2 + 4 + 4 + 8 + request.algo.size());
}

TEST(FrameTest, DeadlineRequestsRoundTripAsVersion2) {
  net::WireRequest request;
  request.algo = "prsim";
  request.source = 7;
  request.k = 5;
  request.deadline_ms = 250;
  std::vector<char> payload;
  net::EncodeRequest(request, &payload);
  ASSERT_FALSE(payload.empty());
  EXPECT_EQ(static_cast<uint8_t>(payload[0]), net::kFrameVersionDeadline);
  auto decoded = net::DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().deadline_ms, 250u);
  EXPECT_EQ(decoded.ValueOrDie().algo, "prsim");
  EXPECT_EQ(decoded.ValueOrDie().source, 7u);

  // deadline_ms=0 (already expired) is a meaningful value and must travel.
  request.deadline_ms = 0;
  net::EncodeRequest(request, &payload);
  decoded = net::DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().deadline_ms, 0u);

  // Budgets beyond u32 range clamp rather than truncate mod 2^32.
  request.deadline_ms = (1ull << 40);
  net::EncodeRequest(request, &payload);
  decoded = net::DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().deadline_ms, 0xFFFFFFFFull);
}

TEST(FrameTest, TruncatedDeadlineRequestsAreRejected) {
  net::WireRequest request;
  request.algo = "prsim";
  request.deadline_ms = 123;
  std::vector<char> payload;
  net::EncodeRequest(request, &payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<char> cut(payload.begin(), payload.begin() + len);
    EXPECT_FALSE(net::DecodeRequest(cut).ok()) << "len=" << len;
  }
}

TEST(FrameTest, ResponseRoundTripsScoresBitForBit) {
  net::WireResponse response;
  response.status_code = 0;
  response.source = 42;
  response.scores = {{7, 0.12345678901234567}, {9, 1e-300}, {11, 0.0}};
  std::vector<char> payload;
  net::EncodeResponse(response, &payload);
  auto decoded = net::DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const net::WireResponse& back = decoded.ValueOrDie();
  EXPECT_EQ(back.source, 42u);
  ASSERT_EQ(back.scores.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(back.scores[i].first, response.scores[i].first);
    // Bit equality, not value equality: the wire carries raw doubles.
    EXPECT_EQ(std::memcmp(&back.scores[i].second,
                          &response.scores[i].second, sizeof(double)),
              0);
  }
}

TEST(FrameTest, ErrorResponseRoundTrips) {
  net::WireResponse response;
  response.status_code = 3;
  response.error = "source 999 out of range (n = 100)";
  std::vector<char> payload;
  net::EncodeResponse(response, &payload);
  auto decoded = net::DecodeResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().status_code, 3);
  EXPECT_EQ(decoded.ValueOrDie().error, response.error);
  EXPECT_TRUE(decoded.ValueOrDie().scores.empty());
}

TEST(FrameTest, TruncatedPayloadsAreRejected) {
  net::WireRequest request;
  request.algo = "prsim";
  std::vector<char> payload;
  net::EncodeRequest(request, &payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<char> cut(payload.begin(), payload.begin() + len);
    EXPECT_FALSE(net::DecodeRequest(cut).ok()) << "len=" << len;
  }
  net::WireResponse response;
  response.scores = {{1, 0.5}};
  response.error = "e";
  net::EncodeResponse(response, &payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<char> cut(payload.begin(), payload.begin() + len);
    EXPECT_FALSE(net::DecodeResponse(cut).ok()) << "len=" << len;
  }
}

TEST(FrameTest, TrailingGarbageIsRejected) {
  net::WireRequest request;
  std::vector<char> payload;
  net::EncodeRequest(request, &payload);
  payload.push_back('x');
  EXPECT_FALSE(net::DecodeRequest(payload).ok());
}

TEST(FrameTest, LyingScoreCountIsRejected) {
  net::WireResponse response;
  response.scores = {{1, 0.5}};
  std::vector<char> payload;
  net::EncodeResponse(response, &payload);
  // Patch score_count (offset 8) to claim far more entries than the
  // payload holds.
  const uint32_t huge = 1u << 30;
  std::memcpy(payload.data() + 8, &huge, sizeof(huge));
  EXPECT_FALSE(net::DecodeResponse(payload).ok());
}

// ---------------------------------------------------------------------------
// Text protocol pieces
// ---------------------------------------------------------------------------

TEST(ServeLineTest, ParsesSourceAndOptionalK) {
  NodeId source = 0;
  uint32_t k = 0;
  uint64_t deadline_ms = 0;
  ASSERT_TRUE(
      net::ParseServeLine("17", 100, 20, &source, &k, &deadline_ms).ok());
  EXPECT_EQ(source, 17u);
  EXPECT_EQ(k, 20u);  // default applied
  EXPECT_EQ(deadline_ms, QueryRequest::kNoDeadline);
  ASSERT_TRUE(
      net::ParseServeLine("17 5", 100, 20, &source, &k, &deadline_ms).ok());
  EXPECT_EQ(k, 5u);
  ASSERT_TRUE(
      net::ParseServeLine("17\t5", 100, 20, &source, &k, &deadline_ms).ok());
  EXPECT_EQ(k, 5u);
}

TEST(ServeLineTest, ParsesOptionalDeadlineInEitherOrder) {
  NodeId source = 0;
  uint32_t k = 0;
  uint64_t deadline_ms = 0;
  ASSERT_TRUE(net::ParseServeLine("17 deadline_ms=250", 100, 20, &source, &k,
                                  &deadline_ms)
                  .ok());
  EXPECT_EQ(source, 17u);
  EXPECT_EQ(k, 20u);
  EXPECT_EQ(deadline_ms, 250u);
  ASSERT_TRUE(net::ParseServeLine("17 5 deadline_ms=250", 100, 20, &source,
                                  &k, &deadline_ms)
                  .ok());
  EXPECT_EQ(k, 5u);
  EXPECT_EQ(deadline_ms, 250u);
  ASSERT_TRUE(net::ParseServeLine("17 deadline_ms=250 5", 100, 20, &source,
                                  &k, &deadline_ms)
                  .ok());
  EXPECT_EQ(k, 5u);
  EXPECT_EQ(deadline_ms, 250u);
  // deadline_ms=0 is legal: an already-expired request (shed at admission
  // without consuming a seed position).
  ASSERT_TRUE(net::ParseServeLine("17 deadline_ms=0", 100, 20, &source, &k,
                                  &deadline_ms)
                  .ok());
  EXPECT_EQ(deadline_ms, 0u);
}

TEST(ServeLineTest, RejectsMalformedLinesWithHistoricalMessages) {
  NodeId source = 0;
  uint32_t k = 0;
  uint64_t deadline_ms = 0;
  Status st = net::ParseServeLine("froot", 100, 20, &source, &k, &deadline_ms);
  EXPECT_EQ(st.message(), "invalid node id 'froot' (n = 100)");
  st = net::ParseServeLine("200", 100, 20, &source, &k, &deadline_ms);
  EXPECT_EQ(st.message(), "invalid node id '200' (n = 100)");
  st = net::ParseServeLine("17 zero", 100, 20, &source, &k, &deadline_ms);
  EXPECT_EQ(st.message(), "invalid k 'zero'");
  st = net::ParseServeLine("17 0", 100, 20, &source, &k, &deadline_ms);
  EXPECT_EQ(st.message(), "invalid k '0'");
  st = net::ParseServeLine("17 5 9", 100, 20, &source, &k, &deadline_ms);
  EXPECT_EQ(st.message(),
            "expected \"<source> [k] [deadline_ms=N]\", got '17 5 9'");
  st = net::ParseServeLine("17 deadline_ms=abc", 100, 20, &source, &k,
                           &deadline_ms);
  EXPECT_EQ(st.message(), "invalid deadline_ms 'abc'");
  st = net::ParseServeLine("17 deadline_ms=1 deadline_ms=2", 100, 20,
                           &source, &k, &deadline_ms);
  EXPECT_EQ(st.message(), "invalid deadline_ms '2'");
}

TEST(ServeLineTest, TrimsAndDropsComments) {
  EXPECT_EQ(net::TrimRequestLine("  17 5 \r\n"), "17 5");
  EXPECT_EQ(net::TrimRequestLine("# comment"), "");
  EXPECT_EQ(net::TrimRequestLine("   "), "");
  EXPECT_EQ(net::TrimRequestLine(""), "");
}

TEST(ServeLineTest, FormatsResultLine) {
  EXPECT_EQ(net::FormatResultLine(5, {{7, 0.25}, {9, 0.125}}),
            "result 5 7:0.25,9:0.125");
  EXPECT_EQ(net::FormatResultLine(5, {}), "result 5");
}

// ---------------------------------------------------------------------------
// PipelinedDispatcher ordering
// ---------------------------------------------------------------------------

TEST(PipelinedDispatcherTest, DeliversInSubmissionOrderDespiteCompletion) {
  // Futures resolve in reverse submission order; responses must still come
  // out 0, 1, 2, ...
  constexpr int kCount = 8;
  std::vector<std::promise<QueryResult>> promises(kCount);
  std::vector<uint64_t> delivered;
  std::mutex delivered_mu;
  {
    int next = 0;
    net::PipelinedDispatcher dispatcher(
        /*window=*/kCount + 1,
        [&](QueryRequest) { return promises[next++].get_future(); },
        [&](uint64_t id, NodeId, const QueryResult&) {
          std::lock_guard<std::mutex> lock(delivered_mu);
          delivered.push_back(id);
        });
    for (int i = 0; i < kCount; ++i) {
      QueryRequest request;
      request.source = static_cast<NodeId>(i);
      dispatcher.Dispatch(static_cast<uint64_t>(i), std::move(request));
    }
    for (int i = kCount - 1; i >= 0; --i) {
      QueryResult result;
      if (i % 2 == 1) result.status = Status::Internal("odd ids fail");
      promises[i].set_value(std::move(result));
    }
    dispatcher.DrainAll();
    EXPECT_EQ(dispatcher.failed_responses(), kCount / 2);
  }
  ASSERT_EQ(delivered.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(delivered[i], static_cast<uint64_t>(i));
  }
}

TEST(PipelinedDispatcherTest, ResponderFlushesWithoutFurtherDispatches) {
  // The regression the responder thread exists for: a response must reach
  // the client even when no further request ever arrives.
  std::promise<QueryResult> promise;
  std::atomic<bool> responded{false};
  net::PipelinedDispatcher dispatcher(
      4, [&](QueryRequest) { return promise.get_future(); },
      [&](uint64_t, NodeId, const QueryResult&) { responded = true; });
  dispatcher.Dispatch(1, QueryRequest{});
  promise.set_value(QueryResult{});
  for (int i = 0; i < 200 && !responded; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(responded) << "response waited for a next Dispatch / EOF";
  dispatcher.DrainAll();
}

// ---------------------------------------------------------------------------
// TcpServer end to end
// ---------------------------------------------------------------------------

struct ServedService {
  Graph graph;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::TcpServer> server;
};

ServedService StartPrsimServer(size_t threads, size_t max_connections = 16) {
  ServedService s{MakeRandomDigraph(120, 500, /*seed=*/11), nullptr, nullptr};
  QueryServiceOptions service_options;
  service_options.threads = threads;
  s.service = std::make_unique<QueryService>(service_options);
  s.service
      ->AddEngine("prsim", s.graph, ParseConfig("eps=0.4,seed=7,threads=1"))
      .Abort();
  net::TcpServerOptions options;
  options.node_count = s.graph.n();
  options.default_k = 20;
  options.max_connections = max_connections;
  QueryService* service = s.service.get();
  auto server = net::TcpServer::Start(options, [service](QueryRequest r) {
    return service->Submit(std::move(r));
  });
  server.status().Abort();
  s.server = std::move(server).ValueOrDie();
  return s;
}

/// Minimal binary-framing client: sends the magic on connect.
class BinaryClient {
 public:
  explicit BinaryClient(uint16_t port) {
    auto fd = ConnectTcp(port);
    fd.status().Abort();
    fd_ = std::move(fd).ValueOrDie();
    WriteAll(fd_.get(), net::kBinaryMagic, sizeof(net::kBinaryMagic))
        .Abort();
  }

  void Send(const net::WireRequest& request) {
    std::vector<char> payload;
    net::EncodeRequest(request, &payload);
    net::WriteFrame(fd_.get(), payload).Abort();
  }

  /// Reads one response; aborts on transport error, EXPECTs on close.
  net::WireResponse Receive() {
    std::vector<char> payload;
    bool eof = false;
    net::ReadFrame(fd_.get(), &payload, &eof).Abort();
    EXPECT_FALSE(eof) << "server closed before answering";
    if (eof) return {};
    auto decoded = net::DecodeResponse(payload);
    decoded.status().Abort();
    return std::move(decoded).ValueOrDie();
  }

  /// True when the next read sees a clean close.
  bool ReadEof() {
    std::vector<char> payload;
    bool eof = false;
    const Status st = net::ReadFrame(fd_.get(), &payload, &eof);
    return st.ok() && eof;
  }

  void SendRaw(const void* data, size_t len) {
    WriteAll(fd_.get(), data, len).Abort();
  }

  int fd() const { return fd_.get(); }

 private:
  UniqueFd fd_;
};

net::WireRequest FreshRequest(NodeId source, uint32_t k) {
  net::WireRequest request;
  request.source = source;
  request.k = k;
  request.fresh_seed = true;
  return request;
}

TEST(TcpServerTest, BinaryResponsesAreBitIdenticalToOfflineAtAnyThreads) {
  // The offline reference: fresh-seed answers from an identically
  // configured local service (the `query` CLI path).
  ServedService reference = StartPrsimServer(/*threads=*/1);
  std::vector<net::WireResponse> offline;
  for (NodeId source = 0; source < 24; ++source) {
    QueryRequest request;
    request.source = source * 5;
    request.k = 10;
    request.fresh_seed = true;
    const QueryResult result =
        reference.service->Submit(std::move(request)).get();
    ASSERT_TRUE(result.status.ok());
    net::WireResponse response;
    response.source = source * 5;
    response.scores = result.scores;
    offline.push_back(std::move(response));
  }

  for (const size_t threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ServedService served = StartPrsimServer(threads);
    BinaryClient client(served.server->port());
    // Pipelined: all requests on the wire before the first response read.
    for (NodeId source = 0; source < 24; ++source) {
      client.Send(FreshRequest(source * 5, 10));
    }
    for (NodeId source = 0; source < 24; ++source) {
      const net::WireResponse response = client.Receive();
      ASSERT_EQ(response.status_code, 0) << response.error;
      EXPECT_EQ(response.source, offline[source].source);
      ASSERT_EQ(response.scores.size(), offline[source].scores.size());
      for (size_t i = 0; i < response.scores.size(); ++i) {
        EXPECT_EQ(response.scores[i].first,
                  offline[source].scores[i].first);
        EXPECT_EQ(std::memcmp(&response.scores[i].second,
                              &offline[source].scores[i].second,
                              sizeof(double)),
                  0)
            << "score bits diverged at source " << source * 5 << " entry "
            << i;
      }
    }
  }
}

TEST(TcpServerTest, PositionalStreamOverTcpReplaysLocalService) {
  // One connection's request stream gets service-order positions 0..N-1 in
  // frame order, so a threads=3 TCP service must replay a local threads=1
  // service bit for bit.
  std::vector<QueryResult> local;
  {
    ServedService reference = StartPrsimServer(/*threads=*/1);
    std::vector<std::future<QueryResult>> futures;
    for (NodeId i = 0; i < 30; ++i) {
      QueryRequest request;
      request.source = (i * 7 + 3) % reference.graph.n();
      request.k = 8;
      futures.push_back(reference.service->Submit(std::move(request)));
    }
    for (auto& future : futures) local.push_back(future.get());
  }

  ServedService served = StartPrsimServer(/*threads=*/3);
  BinaryClient client(served.server->port());
  for (NodeId i = 0; i < 30; ++i) {
    net::WireRequest request;
    request.source = (i * 7 + 3) % served.graph.n();
    request.k = 8;
    client.Send(request);
  }
  for (NodeId i = 0; i < 30; ++i) {
    const net::WireResponse response = client.Receive();
    ASSERT_EQ(response.status_code, 0) << response.error;
    ASSERT_TRUE(local[i].status.ok());
    ASSERT_EQ(response.scores.size(), local[i].scores.size());
    for (size_t j = 0; j < response.scores.size(); ++j) {
      EXPECT_EQ(response.scores[j], local[i].scores[j])
          << "diverged at position " << i;
    }
  }
}

TEST(TcpServerTest, ShardedBackendMatchesUnshardedOverTcp) {
  const Graph graph = MakeRandomDigraph(120, 500, /*seed=*/11);
  const EngineConfig config = ParseConfig("eps=0.4,seed=7,threads=1");

  // Offline unsharded fresh answers.
  std::vector<ScoreList> offline;
  {
    QueryService service;
    service.AddEngine("prsim", graph, config).Abort();
    for (NodeId source = 0; source < 20; ++source) {
      QueryRequest request;
      request.source = source * 6 + 1;
      request.k = 10;
      request.fresh_seed = true;
      QueryResult result = service.Submit(std::move(request)).get();
      result.status.Abort();
      offline.push_back(std::move(result.scores));
    }
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "prsim_net_test_bundle")
          .string();
  std::filesystem::remove_all(dir);
  PartitionSpec spec;
  spec.shards = 3;
  auto manifest_path = BuildShardBundle(graph, "prsim", config, spec, dir);
  manifest_path.status().Abort();
  auto router_result = ShardRouter::Open(manifest_path.ValueOrDie());
  router_result.status().Abort();
  std::unique_ptr<ShardRouter> router =
      std::move(router_result).ValueOrDie();

  net::TcpServerOptions options;
  options.node_count = graph.n();
  auto server_result = net::TcpServer::Start(
      options, [&router](QueryRequest request) {
        return router->SubmitRequest(std::move(request));
      });
  server_result.status().Abort();
  const auto server = std::move(server_result).ValueOrDie();

  BinaryClient client(server->port());
  for (NodeId source = 0; source < 20; ++source) {
    client.Send(FreshRequest(source * 6 + 1, 10));
  }
  for (NodeId source = 0; source < 20; ++source) {
    const net::WireResponse response = client.Receive();
    ASSERT_EQ(response.status_code, 0) << response.error;
    EXPECT_EQ(response.scores, offline[source])
        << "sharded TCP answer diverged at source " << source * 6 + 1;
  }
  // A wrong algo key resolves as kNotFound over the wire.
  net::WireRequest wrong = FreshRequest(0, 5);
  wrong.algo = "sling";
  client.Send(wrong);
  EXPECT_NE(client.Receive().status_code, 0);
  std::filesystem::remove_all(dir);
}

TEST(TcpServerTest, TextSessionServesAndReportsErrorsInBand) {
  ServedService served = StartPrsimServer(/*threads=*/2);
  auto fd_result = ConnectTcp(served.server->port());
  fd_result.status().Abort();
  UniqueFd fd = std::move(fd_result).ValueOrDie();
  const std::string lines = "5 3\n# comment\nbogus\n9 2\n4 2 deadline_ms=0\n";
  WriteAll(fd.get(), lines.data(), lines.size()).Abort();
  ::shutdown(fd.get(), SHUT_WR);  // half-close: tells the session we're done
  std::string response;
  char chunk[512];
  while (true) {
    auto n = ReadSome(fd.get(), chunk, sizeof(chunk));
    if (!n.ok() || n.ValueOrDie() == 0) break;
    response.append(chunk, n.ValueOrDie());
  }
  EXPECT_NE(response.find("result 5 "), std::string::npos) << response;
  EXPECT_NE(response.find("error line 3: invalid node id 'bogus'"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("result 9 "), std::string::npos) << response;
  // deadline_ms=0 parses fine but is already expired: refused in band as a
  // failed query, so the report carries the full "<Code>: <message>" status
  // (parse errors above report the bare message).
  EXPECT_NE(response.find(
                "error line 5: Deadline exceeded: deadline expired before "
                "admission"),
            std::string::npos)
      << response;
}

TEST(TcpServerTest, MalformedBinaryPayloadDrainsThenErrorsAndCloses) {
  ServedService served = StartPrsimServer(/*threads=*/1);
  BinaryClient client(served.server->port());
  client.Send(FreshRequest(5, 4));
  // A 3-byte frame cannot hold a request header.
  const char bad[] = {3, 0, 0, 0, 'x', 'y', 'z'};
  client.SendRaw(bad, sizeof(bad));
  // The accepted request is still answered, in order, before the error.
  const net::WireResponse good = client.Receive();
  EXPECT_EQ(good.status_code, 0) << good.error;
  EXPECT_EQ(good.source, 5u);
  const net::WireResponse error = client.Receive();
  EXPECT_NE(error.status_code, 0);
  EXPECT_TRUE(client.ReadEof());
  EXPECT_EQ(served.server->Stats().protocol_errors, 1u);
}

TEST(TcpServerTest, ConcurrentConnectionsAllGetTheirOwnAnswers) {
  ServedService served = StartPrsimServer(/*threads=*/3);
  // Per-source fresh reference answers.
  std::vector<ScoreList> offline(10);
  for (NodeId source = 0; source < 10; ++source) {
    QueryRequest request;
    request.source = source;
    request.k = 6;
    request.fresh_seed = true;
    QueryResult result = served.service->Submit(std::move(request)).get();
    result.status.Abort();
    offline[source] = std::move(result.scores);
  }

  constexpr int kClients = 6;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      BinaryClient client(served.server->port());
      for (int round = 0; round < 5; ++round) {
        const NodeId source = static_cast<NodeId>((c + round) % 10);
        client.Send(FreshRequest(source, 6));
        const net::WireResponse response = client.Receive();
        if (response.status_code != 0 || response.source != source ||
            response.scores != offline[source]) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(served.server->Stats().requests, kClients * 5u);
}

TEST(TcpServerTest, ShutdownDrainsInFlightAndStopsAccepting) {
  ServedService served = StartPrsimServer(/*threads=*/2);
  const uint16_t port = served.server->port();
  BinaryClient client(port);
  for (NodeId i = 0; i < 10; ++i) client.Send(FreshRequest(i, 5));
  // Shutdown concurrently with the in-flight batch: every accepted request
  // must still be answered, then the connection closes.
  std::thread shutdown_thread([&] { served.server->Shutdown(); });
  int answered = 0;
  for (NodeId i = 0; i < 10; ++i) {
    std::vector<char> payload;
    bool eof = false;
    if (!net::ReadFrame(client.fd(), &payload, &eof).ok() || eof) break;
    auto decoded = net::DecodeResponse(payload);
    if (decoded.ok() && decoded.ValueOrDie().status_code == 0) ++answered;
  }
  shutdown_thread.join();
  // Everything the server accepted before the half-close is answered; the
  // tail may be cut off by the shutdown, but successes must be a prefix.
  EXPECT_GT(answered, 0);
  // After shutdown no new connection is served.
  auto late = ConnectTcp(port);
  if (late.ok()) {
    char byte = 0;
    auto n = ReadSome(late.ValueOrDie().get(), &byte, 1);
    EXPECT_TRUE(!n.ok() || n.ValueOrDie() == 0);
  }
  const ServiceStats stats = served.service->Stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.failed);
}

TEST(TcpServerTest, ExpiredDeadlineOverTcpConsumesNoSeedPosition) {
  // The determinism contract under deadlines: a refused (already-expired)
  // request never consumes a service-order position, so the surrounding
  // positional stream replays the no-deadline reference bit for bit.
  std::vector<QueryResult> local;
  {
    ServedService reference = StartPrsimServer(/*threads=*/1);
    std::vector<std::future<QueryResult>> futures;
    for (NodeId i = 0; i < 10; ++i) {
      QueryRequest request;
      request.source = (i * 7 + 3) % reference.graph.n();
      request.k = 8;
      futures.push_back(reference.service->Submit(std::move(request)));
    }
    for (auto& future : futures) local.push_back(future.get());
  }

  ServedService served = StartPrsimServer(/*threads=*/2);
  BinaryClient client(served.server->port());
  for (NodeId i = 0; i < 10; ++i) {
    if (i == 4) {
      // Dropped into the middle of the stream: must be answered (in
      // order) with kDeadlineExceeded and must not shift the positions of
      // anything behind it.
      net::WireRequest expired;
      expired.source = 1;
      expired.k = 8;
      expired.deadline_ms = 0;
      client.Send(expired);
    }
    net::WireRequest request;
    request.source = (i * 7 + 3) % served.graph.n();
    request.k = 8;
    client.Send(request);
  }
  for (NodeId i = 0; i < 10; ++i) {
    if (i == 4) {
      const net::WireResponse refused = client.Receive();
      EXPECT_EQ(refused.status_code,
                static_cast<uint8_t>(StatusCode::kDeadlineExceeded))
          << refused.error;
    }
    const net::WireResponse response = client.Receive();
    ASSERT_EQ(response.status_code, 0) << response.error;
    ASSERT_TRUE(local[i].status.ok());
    EXPECT_EQ(response.scores, local[i].scores)
        << "positions shifted at stream index " << i;
  }
  const ServiceStats stats = served.service->Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.completed, 10u);
}

TEST(TcpServerTest, ClientKilledBetweenRequestAndReplyDoesNotKillServer) {
  // Satellite regression: the reply write lands on a dead connection. With
  // SIGPIPE unblocked/un-ignored at the socket layer this would kill the
  // whole process (the test binary IS the server here); MSG_NOSIGNAL in
  // SendOrWrite turns it into an ordinary write error the session eats.
  ServedService served = StartPrsimServer(/*threads=*/1);
  {
    BinaryClient doomed(served.server->port());
    for (NodeId i = 0; i < 4; ++i) doomed.Send(FreshRequest(i, 5));
    // RST on close (instead of a graceful FIN + drain) so the server's
    // pending response writes fail hard.
    struct linger hard_close = {1, 0};
    ::setsockopt(doomed.fd(), SOL_SOCKET, SO_LINGER, &hard_close,
                 sizeof(hard_close));
  }  // ~BinaryClient closes the fd -> RST
  // The server must still be alive and serving new connections.
  BinaryClient client(served.server->port());
  client.Send(FreshRequest(3, 5));
  const net::WireResponse response = client.Receive();
  EXPECT_EQ(response.status_code, 0) << response.error;
  EXPECT_EQ(response.source, 3u);
}

TEST(TcpServerTest, AcceptLoopSurvivesInjectedFdExhaustion) {
  // Satellite regression: EMFILE from accept() must not end the accept
  // loop. The net.accept.emfile fault point forces the error path
  // deterministically; connections parked in the listen backlog are
  // picked up once a later accept round succeeds.
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("net.accept.emfile=1/2", /*seed=*/7)
                  .ok());
  ServedService served = StartPrsimServer(/*threads=*/1);
  for (int round = 0; round < 4; ++round) {
    BinaryClient client(served.server->port());
    client.Send(FreshRequest(static_cast<NodeId>(round), 5));
    const net::WireResponse response = client.Receive();
    EXPECT_EQ(response.status_code, 0) << response.error;
  }
  FaultInjector::Global().Disable();
  EXPECT_EQ(served.server->Stats().connections, 4u);
}

TEST(TcpServerTest, IdleReaperClosesQuietConnectionsAndCountsThem) {
  ServedService s{MakeRandomDigraph(120, 500, /*seed=*/11), nullptr,
                  nullptr};
  QueryServiceOptions service_options;
  service_options.threads = 1;
  s.service = std::make_unique<QueryService>(service_options);
  s.service
      ->AddEngine("prsim", s.graph, ParseConfig("eps=0.4,seed=7,threads=1"))
      .Abort();
  net::TcpServerOptions options;
  options.node_count = s.graph.n();
  options.idle_timeout_ms = 100;
  QueryService* service = s.service.get();
  auto server = net::TcpServer::Start(options, [service](QueryRequest r) {
    return service->Submit(std::move(r));
  });
  server.status().Abort();
  s.server = std::move(server).ValueOrDie();

  BinaryClient client(s.server->port());
  client.Send(FreshRequest(5, 4));
  const net::WireResponse response = client.Receive();
  EXPECT_EQ(response.status_code, 0) << response.error;
  // Now go quiet. The reaper half-closes the connection; having received
  // every answer to a request we actually sent, we see a clean EOF.
  EXPECT_TRUE(client.ReadEof());
  EXPECT_EQ(s.server->Stats().idle_closed, 1u);
}

TEST(TcpServerTest, ServiceStatsJsonHasTheContractFields) {
  ServiceStats stats;
  stats.submitted = 5;
  stats.completed = 4;
  stats.failed = 1;
  stats.deadline_exceeded = 2;
  stats.shed = 7;
  stats.queue_high_water = 3;
  stats.p50_seconds = 0.002;
  const std::string json = ServiceStatsJson(stats, "tcp");
  EXPECT_NE(json.find("\"event\":\"serve_stats\""), std::string::npos);
  EXPECT_NE(json.find("\"transport\":\"tcp\""), std::string::npos);
  EXPECT_NE(json.find("\"accepted\":5"), std::string::npos);
  EXPECT_NE(json.find("\"completed\":4"), std::string::npos);
  EXPECT_NE(json.find("\"failed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_exceeded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"shed\":7"), std::string::npos);
  EXPECT_NE(json.find("\"queue_high_water\":3"), std::string::npos);
  EXPECT_NE(json.find("\"p50_ms\":2"), std::string::npos);
}

}  // namespace
}  // namespace prsim
