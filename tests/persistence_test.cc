// Artifact robustness for every persistent engine: save -> load -> query
// round trips must be bit-identical, and truncated, corrupted, or
// wrong-fingerprint artifacts must fail with clean Status errors for
// PRSim, SLING, READS, and TSF alike.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/engine_registry.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::MakeRandomDigraph;

struct EngineCase {
  const char* engine;        ///< registry key
  const char* params;        ///< test-sized config ("seed" appended below)
  const char* mismatch_params;  ///< same engine, different index options
};

const EngineCase kCases[] = {
    {"prsim", "eps=0.3,seed=99", "eps=0.2,seed=99"},
    {"sling", "eps=0.3,seed=99", "eps=0.2,seed=99"},
    {"reads", "r=20,t=5,seed=99", "r=10,t=5,seed=99"},
    {"tsf", "rg=20,rq=5,seed=99", "rg=10,rq=5,seed=99"},
};

class PersistenceTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_persistence_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    graph_ = MakeRandomDigraph(120, 700, 7);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::unique_ptr<SingleSourceSimRank> Make(const std::string& params) {
    auto engine =
        EngineRegistry::Global().Create(GetParam().engine, graph_, params);
    engine.status().Abort();
    return std::move(engine).ValueOrDie();
  }

  /// Builds, saves, and returns the artifact path.
  std::string BuildAndSave(const std::string& name) {
    auto engine = Make(GetParam().params);
    EXPECT_TRUE(engine->Preprocess().ok());
    EXPECT_TRUE(engine->SaveIndex(Path(name)).ok());
    return Path(name);
  }

  static ScoreList Sorted(ScoreList scores) {
    std::sort(scores.begin(), scores.end());
    return scores;
  }

  std::filesystem::path dir_;
  Graph graph_;
};

TEST_P(PersistenceTest, SaveBeforePreprocessFails) {
  auto engine = Make(GetParam().params);
  const Status st = engine->SaveIndex(Path("early.idx"));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_P(PersistenceTest, RoundTripQueriesAreBitIdentical) {
  auto fresh = Make(GetParam().params);
  ASSERT_TRUE(fresh->Preprocess().ok());
  ASSERT_TRUE(fresh->SaveIndex(Path("rt.idx")).ok());

  auto loaded = EngineRegistry::Global().CreateFromIndex(
      GetParam().engine, graph_, EngineConfig::Parse(GetParam().params)
                                     .ValueOrDie(),
      Path("rt.idx"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(loaded.ValueOrDie()->IndexBytes(), 0u);

  // First query of each instance: same seed + same index must match
  // bit-for-bit, including for the sampling engines.
  const ScoreList a = Sorted(fresh->Query(3));
  const ScoreList b = Sorted(loaded.ValueOrDie()->Query(3));
  EXPECT_EQ(a, b);
  // And again from another source (RNG streams stay in lockstep).
  EXPECT_EQ(Sorted(fresh->Query(11)),
            Sorted(loaded.ValueOrDie()->Query(11)));
}

TEST_P(PersistenceTest, LoadIndexReplacesPreprocess) {
  const std::string path = BuildAndSave("direct.idx");
  auto engine = Make(GetParam().params);
  ASSERT_TRUE(engine->LoadIndex(path).ok());
  EXPECT_FALSE(engine->Query(5).empty());
}

TEST_P(PersistenceTest, MismatchedOptionsFail) {
  const std::string path = BuildAndSave("opts.idx");
  auto engine = Make(GetParam().mismatch_params);
  const Status st = engine->LoadIndex(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
}

TEST_P(PersistenceTest, MismatchedSeedFails) {
  // Every persistent sampling index is seed-dependent; PRSim's is not, so
  // its artifact stays valid under a different query seed.
  const std::string path = BuildAndSave("seed.idx");
  std::string params = GetParam().params;
  params.replace(params.find("seed=99"), 7, "seed=55");
  auto engine = Make(params);
  const Status st = engine->LoadIndex(path);
  if (std::string(GetParam().engine) == "prsim") {
    EXPECT_TRUE(st.ok()) << st.ToString();
  } else {
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
  }
}

TEST_P(PersistenceTest, WrongGraphSameSizeFails) {
  const std::string path = BuildAndSave("graph.idx");
  Graph other = MakeRandomDigraph(120, 700, 8);
  auto engine = EngineRegistry::Global().Create(GetParam().engine, other,
                                                GetParam().params);
  engine.status().Abort();
  const Status st = engine.ValueOrDie()->LoadIndex(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
}

TEST_P(PersistenceTest, TruncationFails) {
  const std::string path = BuildAndSave("trunc.idx");
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size * 2 / 3);
  auto engine = Make(GetParam().params);
  const Status st = engine->LoadIndex(path);
  ASSERT_FALSE(st.ok());
  // The v2 container recognizes the envelope but finds a section cut off:
  // structural corruption, not an I/O failure.
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
}

TEST_P(PersistenceTest, FlippedMagicFails) {
  const std::string path = BuildAndSave("magic.idx");
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xff);
    file.seekp(0);
    file.write(&byte, 1);
  }
  auto engine = Make(GetParam().params);
  const Status st = engine->LoadIndex(path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST_P(PersistenceTest, ChecksumCorruptionFails) {
  const std::string path = BuildAndSave("sum.idx");
  {
    // Flip one byte in the checksum trailer: the payload parses but the
    // digest no longer matches.
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(-1, std::ios::end);
    const auto pos = file.tellg();
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(pos);
    file.write(&byte, 1);
  }
  auto engine = Make(GetParam().params);
  const Status st = engine->LoadIndex(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("checksum"), std::string::npos)
      << st.ToString();
}

TEST_P(PersistenceTest, WrongEngineArtifactFails) {
  // A valid artifact of one engine kind must be rejected by every other.
  const std::string path = BuildAndSave("kind.idx");
  for (const EngineCase& other : kCases) {
    if (std::string(other.engine) == GetParam().engine) continue;
    auto engine = EngineRegistry::Global().Create(other.engine, graph_,
                                                  other.params);
    engine.status().Abort();
    const Status st = engine.ValueOrDie()->LoadIndex(path);
    ASSERT_FALSE(st.ok()) << other.engine;
    EXPECT_EQ(st.code(), StatusCode::kIOError) << other.engine;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPersistentEngines, PersistenceTest,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<EngineCase>& info) {
                           return std::string(info.param.engine);
                         });

TEST(PersistenceUnimplementedTest, IndexFreeEnginesReportUnimplemented) {
  Graph g = MakeRandomDigraph(40, 160, 3);
  for (const char* name : {"probesim", "topsim", "montecarlo",
                           "powermethod"}) {
    auto engine = EngineRegistry::Global().Create(name, g, "");
    engine.status().Abort();
    const Status save = engine.ValueOrDie()->SaveIndex("/tmp/unused.idx");
    EXPECT_EQ(save.code(), StatusCode::kUnimplemented) << name;
    const Status load = engine.ValueOrDie()->LoadIndex("/tmp/unused.idx");
    EXPECT_EQ(load.code(), StatusCode::kUnimplemented) << name;

    auto from_index = EngineRegistry::Global().CreateFromIndex(
        name, g, EngineConfig(), "/tmp/unused.idx");
    ASSERT_FALSE(from_index.ok()) << name;
    EXPECT_EQ(from_index.status().code(), StatusCode::kUnimplemented) << name;
  }
}

TEST(PersistenceMetadataTest, RegistryFlagsPersistentEngines) {
  const EngineRegistry& registry = EngineRegistry::Global();
  for (const std::string& name : registry.Names()) {
    const EngineInfo* info = registry.Find(name);
    const bool expected = name == "prsim" || name == "sling" ||
                          name == "reads" || name == "tsf";
    EXPECT_EQ(info->has_persistent_index, expected) << name;
    // Persistence implies an index to persist.
    if (info->has_persistent_index) EXPECT_TRUE(info->index_based) << name;
  }
}

}  // namespace
}  // namespace prsim
