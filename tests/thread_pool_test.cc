// ThreadPool: submission, futures, exception propagation, graceful
// shutdown, worker identity, the PRSIM_THREADS override, and ParallelFor's
// behavior when nested inside pool workers.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace prsim {
namespace {

TEST(DefaultThreadCountTest, IsAtLeastOne) {
  ::unsetenv("PRSIM_THREADS");
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(DefaultThreadCountTest, HonorsPrsimThreadsOverride) {
  ::setenv("PRSIM_THREADS", "5", 1);
  EXPECT_EQ(DefaultThreadCount(), 5u);
  ::setenv("PRSIM_THREADS", "1", 1);
  EXPECT_EQ(DefaultThreadCount(), 1u);
  ::unsetenv("PRSIM_THREADS");
}

TEST(DefaultThreadCountTest, IgnoresInvalidOverride) {
  const size_t fallback = [] {
    ::unsetenv("PRSIM_THREADS");
    return DefaultThreadCount();
  }();
  for (const char* bad : {"0", "-3", "abc", "4x", ""}) {
    ::setenv("PRSIM_THREADS", bad, 1);
    EXPECT_EQ(DefaultThreadCount(), fallback) << "PRSIM_THREADS=" << bad;
  }
  ::unsetenv("PRSIM_THREADS");
}

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, FuturePropagatesException) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task boom"); });
  try {
    future.get();
    FAIL() << "expected the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
}

TEST(ThreadPoolTest, WorkerSurvivesThrowingTask) {
  ThreadPool pool(1);
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The single worker must still be alive to answer this.
  EXPECT_EQ(pool.Submit([] { return 41 + 1; }).get(), 42);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
  }  // graceful shutdown: every queued task runs before join
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, WorkerIndexIdentifiesWorkers) {
  EXPECT_FALSE(ThreadPool::InWorker());
  EXPECT_EQ(ThreadPool::WorkerIndex(), ThreadPool::kNotAWorker);
  ThreadPool pool(3);
  std::mutex mu;
  std::set<size_t> seen;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 48; ++i) {
    futures.push_back(pool.Submit([&] {
      EXPECT_TRUE(ThreadPool::InWorker());
      const size_t index = ThreadPool::WorkerIndex();
      EXPECT_LT(index, 3u);
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(index);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(seen.size(), 1u);
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(ThreadPoolTest, SharedPoolIsProcessWide) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  EXPECT_EQ(a.Submit([] { return 7; }).get(), 7);
}

// ParallelFor is now a pool client; nesting it inside a pool task must not
// deadlock and must produce the same coverage as top-level execution.
TEST(ThreadPoolTest, NestedParallelForInsideWorkerCompletes) {
  std::vector<int> hits(200, 0);
  auto future = ThreadPool::Shared().Submit([&hits] {
    ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i]++; },
                /*threads=*/4);
  });
  future.get();
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsDoNotDeadlock) {
  constexpr size_t kCallers = 6;
  constexpr size_t kItems = 500;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kItems, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&hits, c] {
      ParallelFor(0, kItems, [&hits, c](size_t i) { hits[c][i]++; },
                  /*threads=*/3);
    });
  }
  for (auto& t : callers) t.join();
  for (size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(std::accumulate(hits[c].begin(), hits[c].end(), 0),
              static_cast<int>(kItems));
  }
}

}  // namespace
}  // namespace prsim
