// Tests for degree statistics and power-law fitting.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/chung_lu.h"
#include "graph/stats.h"
#include "test_util.h"

namespace prsim {
namespace {

TEST(CcdfTest, RegularGraphHasSinglePoint) {
  Graph g = testing::MakeCycle(100);
  auto ccdf = DegreeCcdf(g, DegreeDirection::kOut);
  ASSERT_EQ(ccdf.size(), 1u);
  EXPECT_EQ(ccdf[0].degree, 1u);
  EXPECT_EQ(ccdf[0].count, 100u);
  EXPECT_DOUBLE_EQ(ccdf[0].fraction, 1.0);
}

TEST(CcdfTest, MonotoneDecreasingCounts) {
  Graph g = testing::MakeRandomDigraph(500, 4000, 11);
  for (auto dir : {DegreeDirection::kOut, DegreeDirection::kIn}) {
    auto ccdf = DegreeCcdf(g, dir);
    for (size_t i = 1; i < ccdf.size(); ++i) {
      EXPECT_LT(ccdf[i - 1].degree, ccdf[i].degree);
      EXPECT_GT(ccdf[i - 1].count, ccdf[i].count);
    }
  }
}

TEST(CcdfTest, CountsMatchDegrees) {
  // Star: hub 0 -> spokes; out-degree of hub = 9, spokes 0; in-degrees 1.
  std::vector<Edge> edges;
  for (NodeId i = 1; i < 10; ++i) edges.emplace_back(0, i);
  Graph g = BuildGraph(10, edges).ValueOrDie();
  auto ccdf = DegreeCcdf(g, DegreeDirection::kOut);
  ASSERT_EQ(ccdf.size(), 1u);
  EXPECT_EQ(ccdf[0].degree, 9u);
  EXPECT_EQ(ccdf[0].count, 1u);
}

TEST(PowerLawFitTest, RecoversSyntheticExponent) {
  // Build an exact synthetic CCDF P(k) = k^-gamma and fit it.
  for (double gamma : {1.2, 1.8, 2.5}) {
    std::vector<CcdfPoint> ccdf;
    for (uint64_t k = 1; k <= 4096; k *= 2) {
      const double frac = std::pow(static_cast<double>(k), -gamma);
      ccdf.push_back({k, static_cast<uint64_t>(frac * 1e9), frac});
    }
    auto fit = FitCumulativePowerLaw(ccdf, 1, 0.0);
    EXPECT_NEAR(fit.gamma, gamma, 1e-6) << "gamma=" << gamma;
    EXPECT_GT(fit.r_squared, 0.999);
  }
}

TEST(PowerLawFitTest, TooFewPointsGiveZero) {
  std::vector<CcdfPoint> ccdf = {{1, 100, 1.0}};
  auto fit = FitCumulativePowerLaw(ccdf);
  EXPECT_EQ(fit.gamma, 0.0);
  EXPECT_EQ(fit.points_used, 0u);
}

TEST(PowerLawFitTest, ChungLuGraphFitsCloseToTarget) {
  for (double gamma : {1.5, 2.0, 3.0}) {
    ChungLuOptions options;
    options.n = 60000;
    options.avg_degree = 8;
    options.gamma_out = gamma;
    options.seed = 5;
    Graph g = GenerateChungLu(options).ValueOrDie();
    auto fit = FitDegreeExponent(g, DegreeDirection::kOut);
    // Finite-size effects blur the tail; accept 25% relative error.
    EXPECT_NEAR(fit.gamma, gamma, 0.25 * gamma) << "gamma=" << gamma;
  }
}

TEST(HillEstimatorTest, AgreesOnChungLuTail) {
  ChungLuOptions options;
  options.n = 60000;
  options.avg_degree = 8;
  options.gamma_out = 2.0;
  options.seed = 9;
  Graph g = GenerateChungLu(options).ValueOrDie();
  const double hill = HillEstimator(g, DegreeDirection::kOut, 0.05);
  EXPECT_GT(hill, 1.2);
  EXPECT_LT(hill, 3.0);
}

TEST(HillEstimatorTest, DegenerateGraphGivesZero) {
  Graph g = Graph::FromEdges(10, {}).ValueOrDie();
  EXPECT_EQ(HillEstimator(g, DegreeDirection::kOut), 0.0);
}

TEST(PageRankHardnessTest, UniformVectorSecondMoment) {
  std::vector<double> pi(1000, 1.0 / 1000);
  auto h = AnalyzePageRankVector(pi);
  EXPECT_NEAR(h.second_moment, 1.0 / 1000, 1e-12);
  EXPECT_NEAR(h.max_value, 1.0 / 1000, 1e-12);
}

TEST(PageRankHardnessTest, ZipfVectorRecoversBeta) {
  // pi(w_j) ~ j^-beta with beta = 0.5 (gamma = 2).
  const size_t n = 100000;
  std::vector<double> pi(n);
  double total = 0;
  for (size_t j = 0; j < n; ++j) {
    pi[j] = std::pow(static_cast<double>(j + 1), -0.5);
    total += pi[j];
  }
  for (auto& x : pi) x /= total;
  auto h = AnalyzePageRankVector(pi);
  EXPECT_NEAR(h.beta, 0.5, 0.05);
  EXPECT_NEAR(h.implied_gamma, 2.0, 0.25);
}

TEST(PageRankHardnessTest, EmptyVector) {
  auto h = AnalyzePageRankVector({});
  EXPECT_EQ(h.second_moment, 0.0);
  EXPECT_EQ(h.beta, 0.0);
}

TEST(SummarizeTest, BasicFields) {
  Graph g = testing::MakeRandomDigraph(300, 2400, 21);
  auto s = Summarize(g);
  EXPECT_EQ(s.n, g.n());
  EXPECT_EQ(s.m, g.m());
  EXPECT_NEAR(s.avg_degree, g.AverageDegree(), 1e-12);
  EXPECT_GT(s.max_out_degree, 0u);
  EXPECT_GT(s.max_in_degree, 0u);
  EXPECT_EQ(s.dangling_nodes, g.CountDanglingNodes());
}

TEST(SummarizeTest, SteeperGammaMeansFasterTailDecay) {
  // The Figure 1 phenomenon: IT-like graphs (large gamma) should have a much
  // smaller maximum out-degree than TW-like graphs (small gamma) at equal
  // size and average degree.
  ChungLuOptions steep, flat;
  steep.n = flat.n = 40000;
  steep.avg_degree = flat.avg_degree = 10;
  steep.gamma_out = 2.6;
  flat.gamma_out = 1.35;
  steep.seed = flat.seed = 31;
  auto gs = GenerateChungLu(steep).ValueOrDie();
  auto gf = GenerateChungLu(flat).ValueOrDie();
  EXPECT_LT(Summarize(gs).max_out_degree, Summarize(gf).max_out_degree / 2);
}

}  // namespace
}  // namespace prsim
