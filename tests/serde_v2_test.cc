// Tests for the format-v2 artifact container: sectioned layout,
// deterministic byte-identical output, mmap-backed zero-copy reads with a
// behaviorally identical read() fallback, v1 read-compatibility through the
// shared-cursor shim, and clean kInvalidArgument rejection of corrupt or
// truncated files.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "util/mmap_file.h"
#include "util/pod_array.h"
#include "util/serde.h"

namespace prsim {
namespace {

/// v2 section offsets are 64-byte aligned (kSectionAlignment in serde.cc).
constexpr uint64_t kAlignment = 64;

class SerdeV2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_serde_v2_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Writes a three-section reference artifact and returns its path.
  std::string WriteSample(const std::string& name) {
    const std::string path = Path(name);
    ArtifactWriter writer(path, "v2-test");
    ByteSink& meta = writer.AddSection("meta");
    meta.WritePod<uint32_t>(42);
    meta.WriteString("hello sections");
    ByteSink& numbers = writer.AddSection("numbers");
    numbers.WriteVector(std::vector<uint64_t>{5, 6, 7, 8});
    ByteSink& empty = writer.AddSection("empty");
    (void)empty;  // zero-length sections are legal
    EXPECT_TRUE(writer.Finish().ok());
    return path;
  }

  /// Reads the reference artifact back through `options`, checking every
  /// field; returns the first failure.
  Status ReadSample(const std::string& path,
                    const ArtifactReadOptions& options = {}) {
    PRSIM_ASSIGN_OR_RETURN(ArtifactReader reader,
                           ArtifactReader::Open(path, "v2-test", options));
    EXPECT_EQ(reader.version(), kSerdeFormatV2);
    PRSIM_ASSIGN_OR_RETURN(SectionReader meta, reader.Section("meta"));
    uint32_t a = 0;
    std::string s;
    PRSIM_RETURN_NOT_OK(meta.ReadPod(&a));
    PRSIM_RETURN_NOT_OK(meta.ReadString(&s));
    PRSIM_RETURN_NOT_OK(meta.Finish());
    EXPECT_EQ(a, 42u);
    EXPECT_EQ(s, "hello sections");
    PRSIM_ASSIGN_OR_RETURN(SectionReader numbers, reader.Section("numbers"));
    std::vector<uint64_t> v;
    PRSIM_RETURN_NOT_OK(numbers.ReadVector(&v));
    PRSIM_RETURN_NOT_OK(numbers.Finish());
    EXPECT_EQ(v, (std::vector<uint64_t>{5, 6, 7, 8}));
    PRSIM_ASSIGN_OR_RETURN(SectionReader empty, reader.Section("empty"));
    EXPECT_EQ(empty.remaining(), 0u);
    PRSIM_RETURN_NOT_OK(empty.Finish());
    return Status::OK();
  }

  static std::string FileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), {}};
  }

  /// Flips one byte at `offset` (negative = from the end).
  void CorruptByte(const std::string& path, int64_t offset) {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekg(offset, offset < 0 ? std::ios::end : std::ios::beg);
    const auto pos = file.tellg();
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(pos);
    file.write(&byte, 1);
  }

  /// File offset of the last byte of the "numbers" section body. The bytes
  /// after it are alignment padding, which no checksum covers — corruption
  /// tests must land inside a section.
  int64_t NumbersLastByte(const std::string& path) {
    auto reader = ArtifactReader::Open(path, "v2-test");
    EXPECT_TRUE(reader.ok());
    const SectionInfo& numbers = reader.ValueOrDie().sections()[1];
    EXPECT_EQ(numbers.name, "numbers");
    return static_cast<int64_t>(numbers.offset + numbers.length - 1);
  }

  std::filesystem::path dir_;
};

TEST_F(SerdeV2Test, RoundTrip) {
  EXPECT_TRUE(ReadSample(WriteSample("ok.bin")).ok());
}

TEST_F(SerdeV2Test, RoundTripWithoutMmap) {
  const std::string path = WriteSample("fallback.bin");
  ArtifactReadOptions options;
  options.allow_mmap = false;
  EXPECT_TRUE(ReadSample(path, options).ok());
}

// Identical content must produce a byte-identical file: the bench cache and
// the CI round-trip smoke both diff artifacts bit for bit.
TEST_F(SerdeV2Test, OutputIsDeterministic) {
  const std::string a = WriteSample("det_a.bin");
  const std::string b = WriteSample("det_b.bin");
  const std::string bytes = FileBytes(a);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, FileBytes(b));
}

TEST_F(SerdeV2Test, SectionTableIsAlignedAndOrdered) {
  auto reader = ArtifactReader::Open(WriteSample("table.bin"), "v2-test");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const auto& sections = reader.ValueOrDie().sections();
  ASSERT_EQ(sections.size(), 3u);
  EXPECT_EQ(sections[0].name, "meta");
  EXPECT_EQ(sections[1].name, "numbers");
  EXPECT_EQ(sections[2].name, "empty");
  // 4 (count) + 4+14 (string) bytes of meta payload.
  EXPECT_EQ(sections[0].length, 22u);
  // 8 (count) + 4 * 8 elements.
  EXPECT_EQ(sections[1].length, 40u);
  EXPECT_EQ(sections[2].length, 0u);
  uint64_t prior_end = 0;
  for (const SectionInfo& info : sections) {
    EXPECT_EQ(info.offset % kAlignment, 0u) << info.name;
    EXPECT_GE(info.offset, prior_end) << info.name;
    prior_end = info.offset + info.length;
  }
}

TEST_F(SerdeV2Test, MmapAndFallbackAgree) {
  const std::string path = WriteSample("agree.bin");
  auto mapped = ArtifactReader::Open(path, "v2-test");
  ArtifactReadOptions no_mmap;
  no_mmap.allow_mmap = false;
  auto heap = ArtifactReader::Open(path, "v2-test", no_mmap);
  ASSERT_TRUE(mapped.ok() && heap.ok());
  EXPECT_TRUE(mapped.ValueOrDie().is_mapped());
  EXPECT_FALSE(heap.ValueOrDie().is_mapped());

  // The same section yields the same bytes through either backing.
  for (const auto* reader : {&mapped.ValueOrDie(), &heap.ValueOrDie()}) {
    auto section = reader->Section("numbers");
    ASSERT_TRUE(section.ok());
    std::vector<uint64_t> v;
    ASSERT_TRUE(section.ValueOrDie().ReadVector(&v).ok());
    EXPECT_EQ(v, (std::vector<uint64_t>{5, 6, 7, 8}));
  }
}

// ReadPodArray over a mapped artifact must hand out a view into the
// mapping, and that view must keep the mapping alive after the reader dies.
TEST_F(SerdeV2Test, PodArrayIsZeroCopyWhenMapped) {
  const std::string path = WriteSample("zero_copy.bin");
  PodArray<uint64_t> array;
  {
    auto reader = ArtifactReader::Open(path, "v2-test");
    ASSERT_TRUE(reader.ok());
    auto section = reader.ValueOrDie().Section("numbers");
    ASSERT_TRUE(section.ok());
    ASSERT_TRUE(section.ValueOrDie().ReadPodArray(&array).ok());
  }  // reader destroyed; the keepalive must hold the mapping
  EXPECT_TRUE(array.zero_copy());
  ASSERT_EQ(array.size(), 4u);
  EXPECT_EQ(array[0], 5u);
  EXPECT_EQ(array[3], 8u);
  // Copies materialize onto the heap (a copy has no keepalive).
  PodArray<uint64_t> copy = array;
  EXPECT_FALSE(copy.zero_copy());
  EXPECT_EQ(copy[2], 7u);
}

TEST_F(SerdeV2Test, PodArrayCopiesOnHeapFallback) {
  const std::string path = WriteSample("heap_array.bin");
  ArtifactReadOptions options;
  options.allow_mmap = false;
  auto reader = ArtifactReader::Open(path, "v2-test", options);
  ASSERT_TRUE(reader.ok());
  auto section = reader.ValueOrDie().Section("numbers");
  ASSERT_TRUE(section.ok());
  PodArray<uint64_t> array;
  ASSERT_TRUE(section.ValueOrDie().ReadPodArray(&array).ok());
  ASSERT_EQ(array.size(), 4u);
  EXPECT_EQ(array[1], 6u);
}

// ---------------------------------------------------------------------------
// v1 read-compatibility: a legacy single-payload artifact reads through the
// same ArtifactReader, with every Section() continuing one shared cursor.
// ---------------------------------------------------------------------------

TEST_F(SerdeV2Test, ReadsV1ArtifactsThroughSectionShim) {
  const std::string path = Path("legacy.bin");
  {
    BinaryWriter writer(path, "v2-test", kSerdeFormatV1);
    writer.WritePod<uint32_t>(42);
    writer.WriteString("hello sections");
    writer.WriteVector(std::vector<uint64_t>{5, 6, 7, 8});
    ASSERT_TRUE(writer.Finish().ok());
  }
  auto reader = ArtifactReader::Open(path, "v2-test");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.ValueOrDie().version(), kSerdeFormatV1);
  EXPECT_TRUE(reader.ValueOrDie().sections().empty());

  // Section names are ignored; reads replay the payload positionally.
  auto meta = reader.ValueOrDie().Section("meta");
  ASSERT_TRUE(meta.ok());
  uint32_t a = 0;
  std::string s;
  ASSERT_TRUE(meta.ValueOrDie().ReadPod(&a).ok());
  ASSERT_TRUE(meta.ValueOrDie().ReadString(&s).ok());
  EXPECT_EQ(a, 42u);
  EXPECT_EQ(s, "hello sections");

  auto numbers = reader.ValueOrDie().Section("numbers");
  ASSERT_TRUE(numbers.ok());
  std::vector<uint64_t> v;
  ASSERT_TRUE(numbers.ValueOrDie().ReadVector(&v).ok());
  EXPECT_EQ(v, (std::vector<uint64_t>{5, 6, 7, 8}));
  // The shared cursor has consumed the whole payload.
  EXPECT_TRUE(numbers.ValueOrDie().Finish().ok());
}

TEST_F(SerdeV2Test, V1CorruptionIsCaughtAtOpen) {
  const std::string path = Path("legacy_corrupt.bin");
  {
    BinaryWriter writer(path, "v2-test", kSerdeFormatV1);
    writer.WriteVector(std::vector<uint64_t>{5, 6, 7, 8});
    ASSERT_TRUE(writer.Finish().ok());
  }
  CorruptByte(path, -12);  // inside the payload, not the trailer
  auto reader = ArtifactReader::Open(path, "v2-test");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("checksum"), std::string::npos)
      << reader.status().ToString();
}

// ---------------------------------------------------------------------------
// Rejection: not-an-artifact problems are kIOError, structural corruption
// inside a valid envelope is kInvalidArgument.
// ---------------------------------------------------------------------------

TEST_F(SerdeV2Test, MissingFileFailsWithIOError) {
  auto reader = ArtifactReader::Open(Path("missing.bin"), "v2-test");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIOError);
}

TEST_F(SerdeV2Test, WrongKindFailsWithIOError) {
  auto reader = ArtifactReader::Open(WriteSample("kind.bin"), "other-kind");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIOError);
  EXPECT_NE(reader.status().message().find("v2-test"), std::string::npos);
}

TEST_F(SerdeV2Test, FlippedMagicFailsWithIOError) {
  const std::string path = WriteSample("magic.bin");
  CorruptByte(path, 0);
  auto reader = ArtifactReader::Open(path, "v2-test");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIOError);
}

TEST_F(SerdeV2Test, MissingSectionFailsWithInvalidArgument) {
  auto reader = ArtifactReader::Open(WriteSample("missing_sec.bin"),
                                     "v2-test");
  ASSERT_TRUE(reader.ok());
  auto section = reader.ValueOrDie().Section("no-such-section");
  ASSERT_FALSE(section.ok());
  EXPECT_EQ(section.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(section.status().message().find("missing section"),
            std::string::npos);
}

TEST_F(SerdeV2Test, CorruptSectionBodyFailsWithInvalidArgument) {
  const std::string path = WriteSample("flip_body.bin");
  CorruptByte(path, NumbersLastByte(path));
  auto reader = ArtifactReader::Open(path, "v2-test");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  // The header (and the untouched section) still read fine...
  EXPECT_TRUE(reader.ValueOrDie().Section("meta").ok());
  // ...but the damaged section fails its checksum.
  auto numbers = reader.ValueOrDie().Section("numbers");
  ASSERT_FALSE(numbers.ok());
  EXPECT_EQ(numbers.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(numbers.status().message().find("checksum"), std::string::npos)
      << numbers.status().ToString();
}

TEST_F(SerdeV2Test, CorruptSectionTableFailsWithInvalidArgument) {
  const std::string path = WriteSample("flip_table.bin");
  // Envelope is 8 magic + 4 version + (4+7) kind + 4 count = 27 bytes; the
  // table starts right after, so offset 30 lands inside the first entry.
  CorruptByte(path, 30);
  auto reader = ArtifactReader::Open(path, "v2-test");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SerdeV2Test, TruncatedSectionFailsWithInvalidArgument) {
  const std::string path = WriteSample("trunc.bin");
  // Cut into the "numbers" section's bytes: its table entry (and the
  // zero-length section behind it) now point past EOF.
  std::filesystem::resize_file(
      path, static_cast<uint64_t>(NumbersLastByte(path)) - 8);
  auto reader = ArtifactReader::Open(path, "v2-test");
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("out of bounds"),
            std::string::npos)
      << reader.status().ToString();
}

TEST_F(SerdeV2Test, VerificationCanBeDisabledForTrustedCaches) {
  const std::string path = WriteSample("trusted.bin");
  CorruptByte(path, NumbersLastByte(path));
  ArtifactReadOptions options;
  options.verify_checksums = false;
  auto reader = ArtifactReader::Open(path, "v2-test", options);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  // With verification off the damaged section opens (garbage in, garbage
  // out — the option exists for trusted local caches only).
  EXPECT_TRUE(reader.ValueOrDie().Section("numbers").ok());
}

// ---------------------------------------------------------------------------
// Writer-side rejection.
// ---------------------------------------------------------------------------

TEST_F(SerdeV2Test, DuplicateSectionNameFailsAtFinish) {
  ArtifactWriter writer(Path("dup.bin"), "v2-test");
  writer.AddSection("twice").WritePod<uint32_t>(1);
  writer.AddSection("twice").WritePod<uint32_t>(2);
  const Status st = writer.Finish();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(std::filesystem::exists(Path("dup.bin")));
}

TEST_F(SerdeV2Test, OverlongSectionStringFailsAtFinish) {
  ArtifactWriter writer(Path("long.bin"), "v2-test");
  writer.AddSection("meta").WriteString(std::string(300, 'x'));
  const Status st = writer.Finish();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(std::filesystem::exists(Path("long.bin")));
}

// ---------------------------------------------------------------------------
// MmapFile itself.
// ---------------------------------------------------------------------------

TEST_F(SerdeV2Test, MmapFileMapsAndFallsBack) {
  const std::string path = Path("raw.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "twelve bytes";
  }
  auto mapped = MmapFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_TRUE(mapped.ValueOrDie()->is_mapped());
  ASSERT_EQ(mapped.ValueOrDie()->size(), 12u);

  auto heap = MmapFile::Open(path, /*allow_mmap=*/false);
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE(heap.ValueOrDie()->is_mapped());
  ASSERT_EQ(heap.ValueOrDie()->size(), 12u);
  EXPECT_EQ(std::memcmp(mapped.ValueOrDie()->data(),
                        heap.ValueOrDie()->data(), 12),
            0);
}

TEST_F(SerdeV2Test, MmapFileMissingFileFailsWithIOError) {
  auto file = MmapFile::Open(Path("nope.bin"));
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace prsim
