// Unit tests for src/util: Status/Result, Rng, FlatHashMap, AliasTable,
// ParallelFor.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/alias_table.h"
#include "util/cache_dir.h"
#include "util/flat_hash_map.h"
#include "util/parallel.h"
#include "util/percentiles.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace prsim {
namespace {

// --------------------------------------------------------------------------
// Status / Result
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad n");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad n");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad n");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyShareState) {
  Status a = Status::IOError("disk gone");
  Status b = a;
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.message(), "disk gone");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Result<int> HelperReturningError() { return Status::OutOfRange("boom"); }

Status UseAssignOrReturn(int* out) {
  PRSIM_ASSIGN_OR_RETURN(int v, HelperReturningError());
  *out = v;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = -1;
  Status st = UseAssignOrReturn(&out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(out, -1);
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(10);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(11);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(12);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], n / bound, 5 * std::sqrt(n / bound));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(p);
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(77);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent.Next() == child.Next());
  EXPECT_LT(equal, 2);
}

// --------------------------------------------------------------------------
// FlatHashMap
// --------------------------------------------------------------------------

TEST(FlatHashMapTest, InsertAndFind) {
  FlatHashMap<double> map;
  map[3] = 1.5;
  map[7] += 2.0;
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(3), nullptr);
  EXPECT_DOUBLE_EQ(*map.Find(3), 1.5);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_DOUBLE_EQ(*map.Find(7), 2.0);
  EXPECT_EQ(map.Find(4), nullptr);
}

TEST(FlatHashMapTest, OperatorBracketDefaultConstructs) {
  FlatHashMap<double> map;
  EXPECT_DOUBLE_EQ(map[42], 0.0);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, GrowPreservesEntries) {
  FlatHashMap<uint64_t> map(4);
  for (uint64_t i = 0; i < 5000; ++i) map[i * 3 + 1] = i;
  EXPECT_EQ(map.size(), 5000u);
  for (uint64_t i = 0; i < 5000; ++i) {
    const uint64_t* v = map.Find(i * 3 + 1);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(FlatHashMapTest, ReserveGrowsAndPreservesEntries) {
  FlatHashMap<uint64_t> map(4);
  for (uint64_t i = 0; i < 20; ++i) map[i * 7 + 2] = i;
  const size_t before = map.capacity();
  map.Reserve(before);  // no-op: already there
  EXPECT_EQ(map.capacity(), before);
  map.Reserve(before * 4);
  EXPECT_GE(map.capacity(), before * 4);
  EXPECT_EQ(map.size(), 20u);
  for (uint64_t i = 0; i < 20; ++i) {
    const uint64_t* v = map.Find(i * 7 + 2);
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
  }
  // clear() keeps the reserved capacity (the workspace-reuse contract).
  map.clear();
  EXPECT_GE(map.capacity(), before * 4);
}

TEST(FlatHashMapTest, ClearEmpties) {
  FlatHashMap<int> map;
  for (uint64_t i = 0; i < 100; ++i) map[i] = 1;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(5), nullptr);
  map[5] = 2;
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatHashMapTest, ForEachVisitsAllOnce) {
  FlatHashMap<uint64_t> map;
  for (uint64_t i = 0; i < 257; ++i) map[i + 1] = i;
  std::set<uint64_t> keys;
  map.ForEach([&](uint64_t k, const uint64_t& v) {
    EXPECT_EQ(v, k - 1);
    EXPECT_TRUE(keys.insert(k).second);
  });
  EXPECT_EQ(keys.size(), 257u);
}

TEST(FlatHashMapTest, AgreesWithStdUnorderedMapUnderRandomOps) {
  // Property test: random accumulation pattern must match std::unordered_map.
  Rng rng(99);
  FlatHashMap<double> mine;
  std::unordered_map<uint64_t, double> ref;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBounded(3000);
    const double val = rng.NextDouble();
    mine[key] += val;
    ref[key] += val;
  }
  EXPECT_EQ(mine.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const double* found = mine.Find(k);
    ASSERT_NE(found, nullptr);
    EXPECT_NEAR(*found, v, 1e-9);
  }
}

TEST(FlatHashMapTest, PackUnpackNodeLevel) {
  const uint64_t key = PackNodeLevel(0xdeadbeefu, 63);
  EXPECT_EQ(UnpackNode(key), 0xdeadbeefu);
  EXPECT_EQ(UnpackLevel(key), 63u);
  EXPECT_EQ(UnpackLevel(PackNodeLevel(5, 0)), 0u);
}

// --------------------------------------------------------------------------
// AliasTable
// --------------------------------------------------------------------------

TEST(AliasTableTest, UniformWeights) {
  AliasTable table(std::vector<double>{1, 1, 1, 1});
  Rng rng(5);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 4, 5 * std::sqrt(n / 4.0));
}

TEST(AliasTableTest, SkewedWeightsMatchProportions) {
  const std::vector<double> weights{8, 4, 2, 1, 1};
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  AliasTable table(weights);
  Rng rng(6);
  std::vector<int> counts(weights.size(), 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = n * weights[i] / total;
    EXPECT_NEAR(counts[i], expected, 6 * std::sqrt(expected)) << i;
  }
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table(std::vector<double>{1, 0, 1});
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.Sample(rng), 1u);
}

TEST(AliasTableTest, SingleEntry) {
  AliasTable table(std::vector<double>{3.5});
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

// --------------------------------------------------------------------------
// ParallelFor
// --------------------------------------------------------------------------

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, hits.size(), [&](size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](size_t) { called = true; });
  ParallelFor(7, 3, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> hits(64, 0);
  ParallelFor(0, hits.size(), [&](size_t i) { hits[i]++; }, /*threads=*/1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, RespectsBeginOffset) {
  std::atomic<size_t> sum{0};
  ParallelFor(10, 20, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

// Regression: an exception escaping a worker used to hit the std::thread
// boundary and call std::terminate; it must be rethrown on the caller.
TEST(ParallelForTest, WorkerExceptionRethrownOnCaller) {
  EXPECT_THROW(
      ParallelFor(
          0, 1000,
          [](size_t i) {
            if (i == 637) throw std::runtime_error("item 637 failed");
          },
          /*threads=*/4),
      std::runtime_error);
}

TEST(ParallelForTest, WorkerExceptionCarriesMessage) {
  try {
    ParallelFor(
        0, 100, [](size_t i) { throw std::invalid_argument("boom " +
                                                           std::to_string(i)); },
        /*threads=*/4);
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).rfind("boom ", 0), 0u) << e.what();
  }
}

TEST(ParallelForTest, SerialPathPropagatesException) {
  EXPECT_THROW(ParallelFor(
                   0, 10, [](size_t) { throw std::runtime_error("serial"); },
                   /*threads=*/1),
               std::runtime_error);
}

TEST(ParallelForTest, OtherItemsStillRunAfterException) {
  std::vector<std::atomic<int>> hits(256);
  EXPECT_THROW(ParallelFor(
                   0, hits.size(),
                   [&](size_t i) {
                     hits[i]++;
                     if (i % 64 == 0) throw std::runtime_error("sparse");
                   },
                   /*threads=*/4),
               std::runtime_error);
  // Every worker's first item before its failure point still executed; the
  // items of a worker after its throw are skipped, but the loop never
  // deadlocks or terminates the process.
  EXPECT_GE(hits[0].load(), 1);
}

// --------------------------------------------------------------------------
// Percentiles
// --------------------------------------------------------------------------

TEST(PercentilesTest, SortedQuantileNearestRank) {
  const std::vector<double> sorted{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_EQ(SortedQuantile(sorted, 0.0), 1.0);
  EXPECT_EQ(SortedQuantile(sorted, 0.5), 6.0);
  EXPECT_EQ(SortedQuantile(sorted, 0.99), 10.0);
  EXPECT_EQ(SortedQuantile(sorted, 1.0), 10.0);
  EXPECT_EQ(SortedQuantile({}, 0.5), 0.0);
}

TEST(PercentilesTest, ExactUntilCapacityThenMonotone) {
  StreamingPercentiles p(128);
  for (int i = 100; i >= 1; --i) p.Add(i);  // reverse order, all retained
  EXPECT_EQ(p.count(), 100u);
  EXPECT_EQ(p.Quantile(0.5), 51.0);
  EXPECT_EQ(p.Quantile(0.95), 96.0);
  EXPECT_EQ(p.Quantile(0.99), 100.0);
}

TEST(PercentilesTest, ReservoirStaysBoundedAndMonotone) {
  StreamingPercentiles p(64);
  for (int i = 0; i < 10000; ++i) p.Add(static_cast<double>(i % 997));
  EXPECT_EQ(p.count(), 10000u);
  const double p50 = p.Quantile(0.50);
  const double p95 = p.Quantile(0.95);
  const double p99 = p.Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, 996.0);
}

// --------------------------------------------------------------------------
// Cache directory LRU eviction
// --------------------------------------------------------------------------

class CacheDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_cache_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes `bytes` bytes and backdates the mtime by `age_minutes`.
  void WriteFile(const std::string& name, size_t bytes, int age_minutes) {
    const auto path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out << std::string(bytes, 'x');
    out.close();
    std::filesystem::last_write_time(
        path, std::filesystem::file_time_type::clock::now() -
                  std::chrono::minutes(age_minutes));
  }

  bool Exists(const std::string& name) {
    return std::filesystem::exists(dir_ / name);
  }

  std::filesystem::path dir_;
};

TEST_F(CacheDirTest, NoEvictionUnderTheCap) {
  WriteFile("a.idx", 100, 10);
  WriteFile("b.idx", 100, 5);
  const CacheEvictionStats stats = EvictLruFiles(dir_.string(), 1000);
  EXPECT_EQ(stats.files_removed, 0u);
  EXPECT_EQ(stats.bytes_remaining, 200u);
  EXPECT_TRUE(Exists("a.idx"));
  EXPECT_TRUE(Exists("b.idx"));
}

TEST_F(CacheDirTest, EvictsOldestMtimeFirst) {
  WriteFile("old.idx", 400, 30);
  WriteFile("mid.idx", 400, 20);
  WriteFile("new.idx", 400, 1);
  const CacheEvictionStats stats = EvictLruFiles(dir_.string(), 900);
  EXPECT_EQ(stats.files_removed, 1u);
  EXPECT_EQ(stats.bytes_removed, 400u);
  EXPECT_EQ(stats.bytes_remaining, 800u);
  EXPECT_FALSE(Exists("old.idx"));
  EXPECT_TRUE(Exists("mid.idx"));
  EXPECT_TRUE(Exists("new.idx"));
}

TEST_F(CacheDirTest, TouchProtectsRecentlyUsedFiles) {
  WriteFile("reused.idx", 400, 30);
  WriteFile("stale.idx", 400, 20);
  TouchFile((dir_ / "reused.idx").string());  // reuse bumps it to newest
  const CacheEvictionStats stats = EvictLruFiles(dir_.string(), 500);
  EXPECT_EQ(stats.files_removed, 1u);
  EXPECT_TRUE(Exists("reused.idx"));
  EXPECT_FALSE(Exists("stale.idx"));
}

TEST_F(CacheDirTest, EvictsEverythingWithZeroCap) {
  WriteFile("a.idx", 10, 2);
  WriteFile("b.idx", 10, 1);
  const CacheEvictionStats stats = EvictLruFiles(dir_.string(), 0);
  EXPECT_EQ(stats.files_removed, 2u);
  EXPECT_EQ(stats.bytes_remaining, 0u);
}

TEST_F(CacheDirTest, MissingDirectoryIsANoop) {
  const CacheEvictionStats stats =
      EvictLruFiles((dir_ / "nope").string(), 100);
  EXPECT_EQ(stats.files_removed, 0u);
  EXPECT_EQ(stats.bytes_remaining, 0u);
}

TEST_F(CacheDirTest, TouchReordersTheWholeEvictionQueue) {
  // Touching the oldest file demotes what was second-oldest to the front
  // of the eviction queue: recency, not creation order, decides.
  WriteFile("oldest.idx", 400, 40);
  WriteFile("middle.idx", 400, 30);
  WriteFile("newest.idx", 400, 1);
  TouchFile((dir_ / "oldest.idx").string());
  CacheEvictionStats stats = EvictLruFiles(dir_.string(), 900);
  EXPECT_EQ(stats.files_removed, 1u);
  EXPECT_FALSE(Exists("middle.idx"));
  EXPECT_TRUE(Exists("oldest.idx"));
  EXPECT_TRUE(Exists("newest.idx"));
  // A second trim round continues in the same recency order.
  stats = EvictLruFiles(dir_.string(), 500);
  EXPECT_EQ(stats.files_removed, 1u);
  EXPECT_FALSE(Exists("newest.idx"));
  EXPECT_TRUE(Exists("oldest.idx"));
}

TEST_F(CacheDirTest, CapSmallerThanOneEntryStillConverges) {
  // A nonzero cap below the smallest file must drain the directory rather
  // than loop or stop early: no subset of files fits the budget.
  WriteFile("a.idx", 300, 3);
  WriteFile("b.idx", 300, 2);
  WriteFile("c.idx", 300, 1);
  const CacheEvictionStats stats = EvictLruFiles(dir_.string(), 100);
  EXPECT_EQ(stats.files_removed, 3u);
  EXPECT_EQ(stats.bytes_removed, 900u);
  EXPECT_EQ(stats.bytes_remaining, 0u);
}

TEST_F(CacheDirTest, EmptyDirectoryEvictionIsANoop) {
  const CacheEvictionStats stats = EvictLruFiles(dir_.string(), 0);
  EXPECT_EQ(stats.files_removed, 0u);
  EXPECT_EQ(stats.bytes_removed, 0u);
  EXPECT_EQ(stats.bytes_remaining, 0u);
  EXPECT_TRUE(std::filesystem::exists(dir_));
}

// --------------------------------------------------------------------------
// Timers
// --------------------------------------------------------------------------

TEST(TimerTest, MeasuresNonNegativeMonotonicTime) {
  WallTimer t;
  const double a = t.Seconds();
  const double b = t.Seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, AccumulatingTimerCountsLaps) {
  AccumulatingTimer t;
  t.Start();
  t.Stop();
  t.Start();
  t.Stop();
  EXPECT_EQ(t.laps(), 2u);
  EXPECT_GE(t.TotalSeconds(), 0.0);
  EXPECT_GE(t.MeanSeconds(), 0.0);
}

}  // namespace
}  // namespace prsim
