// Accuracy and contract tests for every baseline algorithm against the exact
// power-method oracle on small graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/monte_carlo.h"
#include "baselines/power_method.h"
#include "baselines/probesim.h"
#include "baselines/reads.h"
#include "baselines/sling.h"
#include "baselines/topsim.h"
#include "baselines/tsf.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::MakeRandomDigraph;
using testing::MakeSharedParent;

class BaselineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = MakeRandomDigraph(100, 600, 42);
    PowerMethodOptions pm;
    oracle_ = std::make_unique<PowerMethodSimRank>(graph_, pm);
    oracle_->Preprocess().Abort();
  }

  double MaxError(const ScoreList& estimate, NodeId u) {
    double worst = 0;
    for (NodeId v = 0; v < graph_.n(); ++v) {
      worst = std::max(worst,
                       std::abs(ScoreOf(estimate, v) - oracle_->SimRank(u, v)));
    }
    return worst;
  }

  Graph graph_;
  std::unique_ptr<PowerMethodSimRank> oracle_;
};

// --------------------------------------------------------------------------
// Monte Carlo
// --------------------------------------------------------------------------

TEST_F(BaselineFixture, MonteCarloSingleSourceAccuracy) {
  MonteCarloOptions options;
  options.samples = 8000;
  MonteCarloSimRank mc(graph_, options);
  for (NodeId u : {NodeId(0), NodeId(7)}) {
    EXPECT_LT(MaxError(mc.Query(u), u), 0.05) << u;
  }
}

TEST_F(BaselineFixture, MonteCarloPairAccuracy) {
  MonteCarloOptions options;
  options.samples = 40000;
  MonteCarloSimRank mc(graph_, options);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 5; v < 10; ++v) {
      EXPECT_NEAR(mc.EstimatePair(u, v), oracle_->SimRank(u, v), 0.02);
    }
  }
}

TEST(MonteCarloTest, SamplesForHoeffding) {
  // log(2/0.01) / (2 * 0.01^2) ~= 26492.
  EXPECT_NEAR(MonteCarloSimRank::SamplesFor(0.01, 0.01), 26492, 2);
  EXPECT_GT(MonteCarloSimRank::SamplesFor(0.001, 0.01),
            MonteCarloSimRank::SamplesFor(0.01, 0.01));
}

// --------------------------------------------------------------------------
// ProbeSim
// --------------------------------------------------------------------------

TEST_F(BaselineFixture, ProbeSimAccuracy) {
  ProbeSimOptions options;
  options.eps = 0.05;
  options.alpha = 8;
  ProbeSim probe(graph_, options);
  ASSERT_TRUE(probe.Preprocess().ok());  // no-op: index-free
  EXPECT_EQ(probe.IndexBytes(), 0u);
  for (NodeId u : {NodeId(1), NodeId(9)}) {
    EXPECT_LT(MaxError(probe.Query(u), u), 3 * options.eps) << u;
  }
}

TEST(ProbeSimTest, SharedParent) {
  Graph g = MakeSharedParent();
  ProbeSimOptions options;
  options.eps = 0.02;
  options.alpha = 6;
  ProbeSim probe(g, options);
  EXPECT_NEAR(ScoreOf(probe.Query(0), 1), 0.6, 0.05);
}

TEST(ProbeSimTest, SampleCountFollowsEps) {
  Graph g = MakeSharedParent();
  ProbeSimOptions coarse, fine;
  coarse.eps = 0.5;
  fine.eps = 0.05;
  EXPECT_GT(ProbeSim(g, fine).samples(), ProbeSim(g, coarse).samples());
}

// --------------------------------------------------------------------------
// SLING
// --------------------------------------------------------------------------

TEST_F(BaselineFixture, SlingAccuracy) {
  SlingOptions options;
  options.eps = 0.04;
  Sling sling(graph_, options);
  ASSERT_TRUE(sling.Preprocess().ok());
  EXPECT_GT(sling.IndexBytes(), 0u);
  EXPECT_TRUE(sling.IsIndexBased());
  for (NodeId u : {NodeId(2), NodeId(11)}) {
    EXPECT_LT(MaxError(sling.Query(u), u), 4 * options.eps) << u;
  }
}

TEST(SlingTest, EtaMatchesExact) {
  // Smaller graph than the fixture: the exact eta reference runs the coupled
  // pair chain, which is O(n^2 d^2) per level.
  Graph g = MakeRandomDigraph(40, 240, 43);
  SlingOptions options;
  options.eps = 0.05;
  options.max_eta_samples = 50000;
  Sling sling(g, options);
  ASSERT_TRUE(sling.Preprocess().ok());
  const auto eta = testing::ExactEta(g, 0.6, 30);
  for (NodeId w = 0; w < 10; ++w) {
    EXPECT_NEAR(sling.eta(w), eta[w], 0.03) << w;
  }
}

TEST(SlingTest, MemoryBudgetAborts) {
  Graph g = MakeRandomDigraph(200, 1500, 5);
  SlingOptions options;
  options.eps = 0.01;
  options.max_index_tuples = 10;  // absurdly small
  Sling sling(g, options);
  auto st = sling.Preprocess();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

// --------------------------------------------------------------------------
// TSF
// --------------------------------------------------------------------------

TEST_F(BaselineFixture, TsfRoughAccuracyAndOverestimation) {
  TsfOptions options;
  options.rg = 300;
  options.rq = 20;
  Tsf tsf(graph_, options);
  ASSERT_TRUE(tsf.Preprocess().ok());
  EXPECT_GT(tsf.IndexBytes(), 0u);
  double bias = 0;
  int count = 0;
  for (NodeId u : {NodeId(3), NodeId(12)}) {
    auto result = tsf.Query(u);
    EXPECT_LT(MaxError(result, u), 0.25) << u;
    for (NodeId v = 0; v < graph_.n(); ++v) {
      if (v == u) continue;
      bias += ScoreOf(result, v) - oracle_->SimRank(u, v);
      ++count;
    }
  }
  // TSF's repeated-meeting estimator overestimates on average (Section 4).
  EXPECT_GT(bias / count, -1e-4);
}

TEST(TsfTest, MemoryBudgetAborts) {
  Graph g = MakeRandomDigraph(1000, 4000, 6);
  TsfOptions options;
  options.max_index_entries = 100;
  Tsf tsf(g, options);
  EXPECT_EQ(tsf.Preprocess().code(), StatusCode::kResourceExhausted);
}

// --------------------------------------------------------------------------
// READS
// --------------------------------------------------------------------------

TEST_F(BaselineFixture, ReadsAccuracy) {
  ReadsOptions options;
  options.r = 2000;  // small graph: crank samples for a tight check
  options.t = 15;
  Reads reads(graph_, options);
  ASSERT_TRUE(reads.Preprocess().ok());
  EXPECT_GT(reads.IndexBytes(), 0u);
  for (NodeId u : {NodeId(4), NodeId(13)}) {
    EXPECT_LT(MaxError(reads.Query(u), u), 0.05) << u;
  }
}

TEST_F(BaselineFixture, ReadsMoreWalksMoreAccuracy) {
  ReadsOptions coarse, fine;
  coarse.r = 50;
  fine.r = 3000;
  Reads a(graph_, coarse), b(graph_, fine);
  ASSERT_TRUE(a.Preprocess().ok());
  ASSERT_TRUE(b.Preprocess().ok());
  double err_a = 0, err_b = 0;
  for (NodeId u : {NodeId(0), NodeId(5), NodeId(9)}) {
    err_a += MaxError(a.Query(u), u);
    err_b += MaxError(b.Query(u), u);
  }
  EXPECT_LT(err_b, err_a);
  EXPECT_GT(b.IndexBytes(), a.IndexBytes());
}

TEST(ReadsTest, MemoryBudgetAborts) {
  Graph g = MakeRandomDigraph(1000, 8000, 7);
  ReadsOptions options;
  options.max_index_entries = 100;
  Reads reads(g, options);
  EXPECT_EQ(reads.Preprocess().code(), StatusCode::kResourceExhausted);
}

// --------------------------------------------------------------------------
// TopSim
// --------------------------------------------------------------------------

TEST_F(BaselineFixture, TopSimFindsTopNodes) {
  // TopSim is a heuristic: hold it to a precision standard, not an error one.
  TopSimOptions options;
  TopSim topsim(graph_, options);
  int hits = 0, total = 0;
  for (NodeId u : {NodeId(6), NodeId(14), NodeId(20)}) {
    auto estimate = topsim.Query(u);
    auto mine = TopK(estimate, 10, u);
    // Exact top-10 by the oracle.
    ScoreList truth_all = oracle_->Query(u);
    auto truth = TopK(truth_all, 10, u);
    for (const auto& [v, score] : mine) {
      for (const auto& [tv, tscore] : truth) {
        if (tv == v) {
          ++hits;
          break;
        }
      }
    }
    total += 10;
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.5);
}

TEST(TopSimTest, DepthIncreasesCoverage) {
  Graph g = MakeRandomDigraph(100, 700, 8);
  TopSimOptions shallow, deep;
  shallow.depth = 1;
  deep.depth = 4;
  TopSim a(g, shallow), b(g, deep);
  EXPECT_LE(a.Query(0).size(), b.Query(0).size());
}

// --------------------------------------------------------------------------
// Shared interface contracts
// --------------------------------------------------------------------------

TEST_F(BaselineFixture, AllAlgorithmsIncludeSourceWithScoreOne) {
  MonteCarloOptions mc_opt;
  mc_opt.samples = 100;
  MonteCarloSimRank mc(graph_, mc_opt);
  ProbeSimOptions ps_opt;
  ps_opt.eps = 0.3;
  ProbeSim probe(graph_, ps_opt);
  TsfOptions tsf_opt;
  tsf_opt.rg = 10;
  tsf_opt.rq = 2;
  Tsf tsf(graph_, tsf_opt);
  ReadsOptions r_opt;
  r_opt.r = 10;
  Reads reads(graph_, r_opt);
  TopSimOptions ts_opt;
  TopSim topsim(graph_, ts_opt);
  SlingOptions sl_opt;
  sl_opt.eps = 0.2;
  Sling sling(graph_, sl_opt);

  std::vector<SingleSourceSimRank*> algorithms = {&mc,    &probe, &tsf,
                                                  &reads, &topsim, &sling};
  for (auto* algo : algorithms) {
    ASSERT_TRUE(algo->Preprocess().ok()) << algo->name();
    ScoreList result = algo->Query(25);
    EXPECT_DOUBLE_EQ(ScoreOf(result, 25), 1.0) << algo->name();
    for (const auto& [v, score] : result) {
      EXPECT_GE(score, 0.0) << algo->name();
      EXPECT_LT(v, graph_.n()) << algo->name();
    }
  }
}

TEST(TopKTest, SelectsLargestAndExcludesSource) {
  ScoreList scores = {{0, 1.0}, {1, 0.5}, {2, 0.9}, {3, 0.1}, {4, 0.7}};
  auto top2 = TopK(scores, 2, /*source=*/0);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].first, 2u);
  EXPECT_EQ(top2[1].first, 4u);
}

TEST(TopKTest, TiesBrokenByNodeId) {
  ScoreList scores = {{5, 0.5}, {2, 0.5}, {9, 0.5}};
  auto top2 = TopK(scores, 2, /*source=*/100);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].first, 2u);
  EXPECT_EQ(top2[1].first, 5u);
}

}  // namespace
}  // namespace prsim
