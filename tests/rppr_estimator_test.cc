// Tests for the standalone median-of-means RPPR estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/chung_lu.h"
#include "ppr/reverse_pagerank.h"
#include "ppr/rppr_estimator.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::DenseLevelRppr;
using testing::MakeRandomDigraph;

double ValueAt(const RpprEstimate& estimate, NodeId v) {
  for (const auto& [node, value] : estimate.values) {
    if (node == v) return value;
  }
  return 0.0;
}

TEST(RpprEstimatorTest, LevelEstimateWithinEps) {
  const double c = 0.6;
  Graph g = MakeRandomDigraph(40, 200, 5);
  const auto pi = DenseLevelRppr(g, c, 8);
  RpprEstimatorOptions options;
  options.c = c;
  options.eps = 0.02;
  options.alpha = 6;
  RpprEstimator estimator(g, options);
  for (NodeId w : {NodeId(0), NodeId(7)}) {
    for (uint32_t level : {1u, 3u}) {
      auto estimate = estimator.EstimateLevel(w, level);
      for (NodeId v = 0; v < g.n(); ++v) {
        EXPECT_NEAR(ValueAt(estimate, v), pi[level][v][w], options.eps)
            << "w=" << w << " level=" << level << " v=" << v;
      }
    }
  }
}

TEST(RpprEstimatorTest, AggregateMatchesLevelSums) {
  const double c = 0.6;
  Graph g = MakeRandomDigraph(30, 160, 6);
  const uint32_t levels = 24;
  const auto pi = DenseLevelRppr(g, c, levels);
  RpprEstimatorOptions options;
  options.c = c;
  options.eps = 0.03;
  options.alpha = 6;
  RpprEstimator estimator(g, options);
  const NodeId w = 2;
  auto estimate = estimator.EstimateAggregate(w);
  for (NodeId v = 0; v < g.n(); ++v) {
    double exact = 0;
    for (uint32_t l = 0; l <= levels; ++l) exact += pi[l][v][w];
    EXPECT_NEAR(ValueAt(estimate, v), exact, 2 * options.eps) << "v=" << v;
  }
}

TEST(RpprEstimatorTest, AggregateSumsToAtMostNPi) {
  // sum_v pi(v, w) = n pi(w); the estimate's total must be close.
  const double c = 0.6;
  Graph g = MakeRandomDigraph(50, 400, 7);
  auto rpr = ComputeReversePageRank(g, {.c = c});
  RpprEstimatorOptions options;
  options.c = c;
  options.eps = 0.02;
  options.alpha = 6;
  RpprEstimator estimator(g, options);
  const NodeId w = 3;
  auto estimate = estimator.EstimateAggregate(w);
  double total = 0;
  for (const auto& [v, value] : estimate.values) total += value;
  EXPECT_NEAR(total, g.n() * rpr[w], 0.1 * g.n() * rpr[w] + 0.05);
}

TEST(RpprEstimatorTest, CostScalesWithTargetPageRank) {
  ChungLuOptions gen;
  gen.n = 20000;
  gen.avg_degree = 10;
  gen.gamma_out = 1.6;
  gen.seed = 8;
  Graph g = GenerateChungLu(gen).ValueOrDie();
  auto rpr = ComputeReversePageRank(g, {.c = 0.6});
  auto order = RankNodesByValue(rpr);
  RpprEstimatorOptions options;
  options.eps = 0.1;
  options.rounds = 3;
  RpprEstimator estimator(g, options);
  auto hub = estimator.EstimateLevel(order.front(), 4);
  auto mid = estimator.EstimateLevel(order[g.n() / 2], 4);
  EXPECT_GT(hub.total_walk_increments, mid.total_walk_increments);
}

TEST(RpprEstimatorTest, RoundsDerivedFromDeltaWhenZero) {
  Graph g = MakeRandomDigraph(100, 500, 9);
  RpprEstimatorOptions options;
  options.rounds = 0;
  options.delta = 1e-4;
  RpprEstimator estimator(g, options);
  // 3 ln(100 / 1e-4) ~= 41.4 -> 42 rounds, forced odd -> 43.
  EXPECT_GE(estimator.rounds(), 41u);
  EXPECT_EQ(estimator.rounds() % 2, 1u);
}

}  // namespace
}  // namespace prsim
