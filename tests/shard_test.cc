// Sharded serving stack: deterministic partitioning, the shard bundle
// manifest, and the ShardRouter's core contract — a sharded deployment
// answers every request stream bit-identically to an unsharded engine, for
// all four persistent engines, at any shard count and any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/batch_query.h"
#include "core/engine_registry.h"
#include "core/shard_manifest.h"
#include "core/shard_router.h"
#include "graph/io.h"
#include "graph/partition.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::MakeRandomDigraph;

// ---------------------------------------------------------------------------
// Partitioner.
// ---------------------------------------------------------------------------

TEST(PartitionTest, ValidateRejectsZeroShards) {
  PartitionSpec spec;
  spec.shards = 0;
  EXPECT_EQ(ValidatePartitionSpec(spec).code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionTest, ValidateRejectsUnknownStrategy) {
  PartitionSpec spec;
  spec.strategy = static_cast<PartitionStrategy>(7);
  EXPECT_EQ(ValidatePartitionSpec(spec).code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionTest, StrategyNamesRoundTrip) {
  for (const auto strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    auto parsed = ParsePartitionStrategy(PartitionStrategyName(strategy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.ValueOrDie(), strategy);
  }
  EXPECT_FALSE(ParsePartitionStrategy("round-robin").ok());
}

TEST(PartitionTest, AssignmentIsDeterministicAndInRange) {
  const NodeId n = 1000;
  for (const auto strategy :
       {PartitionStrategy::kHash, PartitionStrategy::kRange}) {
    for (const uint32_t shards : {1u, 2u, 3u, 7u}) {
      const PartitionSpec spec{shards, strategy};
      for (NodeId v = 0; v < n; ++v) {
        const uint32_t shard = ShardOfNode(v, n, spec);
        EXPECT_LT(shard, shards);
        EXPECT_EQ(shard, ShardOfNode(v, n, spec));  // pure function
      }
    }
  }
}

TEST(PartitionTest, PartitionNodesMatchesShardOfNode) {
  const NodeId n = 500;
  const PartitionSpec spec{3, PartitionStrategy::kHash};
  const auto assignment = PartitionNodes(n, spec);
  ASSERT_EQ(assignment.size(), 3u);
  size_t total = 0;
  for (uint32_t s = 0; s < 3; ++s) {
    total += assignment[s].size();
    EXPECT_TRUE(std::is_sorted(assignment[s].begin(), assignment[s].end()));
    for (const NodeId v : assignment[s]) {
      EXPECT_EQ(ShardOfNode(v, n, spec), s);
    }
  }
  EXPECT_EQ(total, n);  // every node owned exactly once
  // Hash spreads: no shard owns everything on a 3-way split of 500 nodes.
  for (uint32_t s = 0; s < 3; ++s) EXPECT_LT(assignment[s].size(), n);
}

TEST(PartitionTest, RangeKeepsContiguousBlocks) {
  const NodeId n = 10;
  const PartitionSpec spec{3, PartitionStrategy::kRange};
  const auto assignment = PartitionNodes(n, spec);
  // ceil(10/3) = 4: blocks [0,4), [4,8), [8,10).
  EXPECT_EQ(assignment[0], (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(assignment[1], (std::vector<NodeId>{4, 5, 6, 7}));
  EXPECT_EQ(assignment[2], (std::vector<NodeId>{8, 9}));
}

TEST(PartitionTest, MoreShardsThanNodesIsLegal) {
  const PartitionSpec spec{8, PartitionStrategy::kRange};
  ASSERT_TRUE(ValidatePartitionSpec(spec).ok());
  const auto assignment = PartitionNodes(3, spec);
  size_t total = 0;
  for (const auto& shard : assignment) total += shard.size();
  EXPECT_EQ(total, 3u);  // the extra shards simply own no nodes
}

// ---------------------------------------------------------------------------
// MergeTopK.
// ---------------------------------------------------------------------------

TEST(MergeTopKTest, OrdersByScoreThenId) {
  const std::vector<ScoreList> per_shard = {
      {{4, 0.5}, {9, 0.25}},
      {{2, 0.5}, {7, 0.75}},
      {},
  };
  const ScoreList merged = MergeTopK(per_shard, 3);
  const ScoreList expected = {{7, 0.75}, {2, 0.5}, {4, 0.5}};
  EXPECT_EQ(merged, expected);  // tie at 0.5 broken by ascending id
}

TEST(MergeTopKTest, KLargerThanTotalKeepsEverything) {
  const std::vector<ScoreList> per_shard = {{{1, 0.1}}, {{0, 0.2}}};
  const ScoreList merged = MergeTopK(per_shard, 10);
  const ScoreList expected = {{0, 0.2}, {1, 0.1}};
  EXPECT_EQ(merged, expected);
}

TEST(MergeTopKTest, EmptyInputYieldsEmpty) {
  EXPECT_TRUE(MergeTopK({}, 5).empty());
  EXPECT_TRUE(MergeTopK({{}, {}}, 5).empty());
}

// ---------------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------------

class ShardManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_manifest_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  ShardManifest Sample() {
    ShardManifest m;
    m.algo = "prsim";
    m.params = "eps=0.3,seed=99";
    m.partition = {3, PartitionStrategy::kRange};
    m.n = 120;
    m.m = 700;
    m.graph_checksum = 0xdeadbeef;
    m.shards.assign(3, ShardArtifacts{"graph.bin", "index.idx"});
    return m;
  }

  std::filesystem::path dir_;
};

TEST_F(ShardManifestTest, SaveLoadRoundTrip) {
  const std::string path = Path("manifest.bin");
  ASSERT_TRUE(Sample().Save(path).ok());
  auto loaded = ShardManifest::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ShardManifest& m = loaded.ValueOrDie();
  EXPECT_EQ(m.algo, "prsim");
  EXPECT_EQ(m.params, "eps=0.3,seed=99");
  EXPECT_EQ(m.partition.shards, 3u);
  EXPECT_EQ(m.partition.strategy, PartitionStrategy::kRange);
  EXPECT_EQ(m.n, 120u);
  EXPECT_EQ(m.m, 700u);
  EXPECT_EQ(m.graph_checksum, 0xdeadbeefu);
  ASSERT_EQ(m.shards.size(), 3u);
  EXPECT_EQ(m.shards[1].graph_path, "graph.bin");
  EXPECT_EQ(m.shards[1].index_path, "index.idx");

  auto config = m.Config();
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.ValueOrDie().ToString(), "eps=0.3,seed=99");
}

TEST_F(ShardManifestTest, LoadRejectsEmptyAlgo) {
  ShardManifest m = Sample();
  m.algo.clear();
  const std::string path = Path("empty_algo.bin");
  ASSERT_TRUE(m.Save(path).ok());
  auto loaded = ShardManifest::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardManifestTest, LoadRejectsNonArtifactFile) {
  const std::string path = Path("noise.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an artifact";
  }
  auto loaded = ShardManifest::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(ShardManifestTest, ResolveManifestPathHandlesRelativeAndAbsolute) {
  EXPECT_EQ(ResolveManifestPath("bundle/manifest.bin", "graph.bin"),
            (std::filesystem::path("bundle") / "graph.bin").string());
  EXPECT_EQ(ResolveManifestPath("manifest.bin", "graph.bin"), "graph.bin");
  EXPECT_EQ(ResolveManifestPath("bundle/manifest.bin", "/abs/graph.bin"),
            "/abs/graph.bin");
}

// ---------------------------------------------------------------------------
// End-to-end: bundle build + router, bit-identical to unsharded.
// ---------------------------------------------------------------------------

struct EngineCase {
  const char* engine;
  const char* params;
};

const EngineCase kEngineCases[] = {
    {"prsim", "eps=0.3,seed=99"},
    {"sling", "eps=0.3,seed=99"},
    {"reads", "r=20,t=5,seed=99"},
    {"tsf", "rg=20,rq=5,seed=99"},
};

class ShardRouterTest : public ::testing::TestWithParam<EngineCase> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_shard_" + std::to_string(::getpid()) + "_" +
            GetParam().engine);
    std::filesystem::create_directories(dir_);
    graph_ = MakeRandomDigraph(120, 700, 7);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  EngineConfig Config() {
    return EngineConfig::Parse(GetParam().params).ValueOrDie();
  }

  /// Builds a bundle with `shards` shards and returns the manifest path.
  std::string BuildBundle(uint32_t shards) {
    const PartitionSpec spec{shards, PartitionStrategy::kHash};
    auto manifest =
        BuildShardBundle(graph_, GetParam().engine, Config(), spec,
                         (dir_ / ("bundle" + std::to_string(shards)))
                             .string());
    EXPECT_TRUE(manifest.ok()) << manifest.status().ToString();
    return manifest.ValueOrDie();
  }

  /// Fresh unsharded reference engine (preprocessed, never queried).
  std::unique_ptr<SingleSourceSimRank> ReferenceEngine() {
    auto engine = EngineRegistry::Global().Create(GetParam().engine, graph_,
                                                  Config());
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    auto leader = std::move(engine).ValueOrDie();
    EXPECT_TRUE(leader->Preprocess().ok());
    return leader;
  }

  static ScoreList Sorted(ScoreList scores) {
    std::sort(scores.begin(), scores.end());
    return scores;
  }

  std::filesystem::path dir_;
  Graph graph_;
};

// QueryFresh answers exactly like a freshly loaded engine's first query —
// the `query --manifest` contract — at every shard and thread count.
TEST_P(ShardRouterTest, QueryFreshMatchesUnshardedEngine) {
  auto reference = ReferenceEngine();
  for (const uint32_t shards : {1u, 2u, 3u}) {
    const std::string manifest = BuildBundle(shards);
    for (const size_t threads : {size_t{1}, size_t{0}}) {  // 0 = hw default
      ShardRouterOptions options;
      options.threads_per_shard = threads;
      auto router = ShardRouter::Open(manifest, options);
      ASSERT_TRUE(router.ok()) << router.status().ToString();
      EXPECT_EQ(router.ValueOrDie()->shard_count(), shards);
      EXPECT_EQ(router.ValueOrDie()->node_count(), graph_.n());
      for (const NodeId source : {NodeId{3}, NodeId{57}, NodeId{119}}) {
        reference->Reseed(reference->seed());  // fresh-engine first query
        const ScoreList expected = Sorted(reference->Query(source));
        QueryResult result = router.ValueOrDie()->QueryFresh(source);
        ASSERT_TRUE(result.status.ok()) << result.status.ToString();
        EXPECT_EQ(Sorted(result.scores), expected)
            << "shards=" << shards << " threads=" << threads
            << " source=" << source;
      }
    }
  }
}

// A positional Submit stream replays BatchQuery bit for bit at any shard
// count: the router stamps global stream positions, so sharding is
// invisible in the scores.
TEST_P(ShardRouterTest, SubmitStreamMatchesBatchQuery) {
  auto reference = ReferenceEngine();
  const std::vector<NodeId> sources = {3, 88, 21, 119, 0, 57, 42, 7};
  const std::vector<ScoreList> expected = BatchQuery(*reference, sources);
  for (const uint32_t shards : {1u, 2u, 3u}) {
    const std::string manifest = BuildBundle(shards);
    for (const size_t threads : {size_t{1}, size_t{0}}) {
      ShardRouterOptions options;
      options.threads_per_shard = threads;
      auto router = ShardRouter::Open(manifest, options);
      ASSERT_TRUE(router.ok()) << router.status().ToString();
      std::vector<std::future<QueryResult>> futures;
      futures.reserve(sources.size());
      for (const NodeId source : sources) {
        futures.push_back(router.ValueOrDie()->Submit(source));
      }
      for (size_t i = 0; i < sources.size(); ++i) {
        QueryResult result = futures[i].get();
        ASSERT_TRUE(result.status.ok()) << result.status.ToString();
        EXPECT_EQ(Sorted(result.scores), Sorted(expected[i]))
            << "shards=" << shards << " threads=" << threads << " i=" << i;
      }
      const ServiceStats stats = router.ValueOrDie()->Stats();
      EXPECT_EQ(stats.submitted, sources.size());
      EXPECT_EQ(stats.completed, sources.size());
      EXPECT_EQ(stats.failed, 0u);
    }
  }
}

// The result cache composes per shard (ownership routing means no key can
// live in two shard caches): fresh answers stay bit-identical cold and
// hot, a positional stream through the warmed-up router still replays
// BatchQuery, and Stats() sums the per-shard cache counters.
TEST_P(ShardRouterTest, CacheEnabledRouterStaysBitIdentical) {
  auto reference = ReferenceEngine();
  const std::vector<NodeId> sources = {3, 88, 21, 119, 0, 57, 42, 7};
  const std::vector<ScoreList> expected = BatchQuery(*reference, sources);
  for (const uint32_t shards : {1u, 3u}) {
    const std::string manifest = BuildBundle(shards);
    ShardRouterOptions options;
    options.threads_per_shard = 1;
    options.cache_bytes = 8u << 20;
    auto router = ShardRouter::Open(manifest, options);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    auto& routed = *router.ValueOrDie();
    // Pass 0 fills the cache (misses), pass 1 is served from it (hits);
    // both must equal a fresh engine's first query.
    for (int pass = 0; pass < 2; ++pass) {
      for (const NodeId source : {NodeId{3}, NodeId{57}}) {
        reference->Reseed(reference->seed());
        const ScoreList want = Sorted(reference->Query(source));
        QueryResult result = routed.QueryFresh(source);
        ASSERT_TRUE(result.status.ok()) << result.status.ToString();
        EXPECT_EQ(Sorted(result.scores), want)
            << "shards=" << shards << " pass=" << pass << " source=" << source;
      }
    }
    // The warm cache is invisible to the positional stream.
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(sources.size());
    for (const NodeId source : sources) {
      futures.push_back(routed.Submit(source));
    }
    for (size_t i = 0; i < sources.size(); ++i) {
      QueryResult result = futures[i].get();
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_EQ(Sorted(result.scores), Sorted(expected[i]))
          << "shards=" << shards << " i=" << i;
    }
    const ServiceStats stats = routed.Stats();
    EXPECT_EQ(stats.cache_misses, 2u) << "shards=" << shards;
    EXPECT_EQ(stats.cache_hits, 2u) << "shards=" << shards;
    EXPECT_EQ(stats.cache_coalesced, 0u);
    EXPECT_GT(stats.cache_bytes, 0u);
  }
}

// The distributed reduction: ownership-filtered local top-k lists merge
// into exactly the single-engine QueryTopK answer.
TEST_P(ShardRouterTest, BroadcastTopKMatchesQueryTopK) {
  auto reference = ReferenceEngine();
  for (const uint32_t shards : {1u, 3u}) {
    const std::string manifest = BuildBundle(shards);
    auto router = ShardRouter::Open(manifest);
    ASSERT_TRUE(router.ok()) << router.status().ToString();
    for (const NodeId source : {NodeId{3}, NodeId{57}}) {
      reference->Reseed(reference->seed());
      const ScoreList expected = TopK(reference->Query(source), 10, source);
      auto merged = router.ValueOrDie()->BroadcastTopK(source, 10);
      ASSERT_TRUE(merged.ok()) << merged.status().ToString();
      EXPECT_EQ(merged.ValueOrDie(), expected)
          << "shards=" << shards << " source=" << source;
    }
  }
}

TEST_P(ShardRouterTest, TopKSubmitMatchesUnsharded) {
  auto reference = ReferenceEngine();
  const std::string manifest = BuildBundle(2);
  auto router = ShardRouter::Open(manifest);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  QueryResult result = router.ValueOrDie()->QueryFresh(3, /*k=*/5);
  ASSERT_TRUE(result.status.ok());
  reference->Reseed(reference->seed());
  EXPECT_EQ(result.scores, TopK(reference->Query(3), 5, 3));
}

TEST_P(ShardRouterTest, InvalidSourceFailsWithoutConsumingAPosition) {
  const std::string manifest = BuildBundle(2);
  auto router = ShardRouter::Open(manifest);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  QueryResult bad = router.ValueOrDie()->Submit(graph_.n()).get();
  EXPECT_EQ(bad.status.code(), StatusCode::kInvalidArgument);
  // The rejected request must not have shifted the positional seed stream.
  auto reference = ReferenceEngine();
  const ScoreList expected = Sorted(BatchQuery(*reference, {NodeId{3}})[0]);
  EXPECT_EQ(Sorted(router.ValueOrDie()->Submit(3).get().scores), expected);
}

// One shard's traffic being shed must be invisible to the other shards:
// an expired request is refused at the router, before it consumes a
// global stream position, so the surviving stream still replays BatchQuery
// bit for bit on every shard.
TEST_P(ShardRouterTest, ExpiredRequestShedsWithoutShiftingOtherShards) {
  auto reference = ReferenceEngine();
  const std::vector<NodeId> sources = {3, 88, 21, 119, 0, 57};
  const std::vector<ScoreList> expected = BatchQuery(*reference, sources);
  const std::string manifest = BuildBundle(2);
  ShardRouterOptions options;
  options.threads_per_shard = 1;
  auto router = ShardRouter::Open(manifest, options);
  ASSERT_TRUE(router.ok()) << router.status().ToString();
  auto& routed = *router.ValueOrDie();

  // Sources above land on both shards; the doomed request targets shard 0
  // specifically while the rest of the stream keeps flowing everywhere.
  NodeId shard0_source = 0;
  while (routed.ShardOf(shard0_source) != 0) ++shard0_source;

  std::vector<std::future<QueryResult>> futures;
  std::future<QueryResult> doomed;
  for (size_t i = 0; i < sources.size(); ++i) {
    if (i == 2) {
      QueryRequest expired_request;
      expired_request.source = shard0_source;
      expired_request.deadline_ms = 0;
      doomed = routed.SubmitRequest(std::move(expired_request));
    }
    futures.push_back(routed.Submit(sources[i]));
  }
  const QueryResult refused = doomed.get();
  EXPECT_EQ(refused.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(refused.status.message().find("deadline expired before routing"),
            std::string::npos)
      << refused.status.ToString();
  for (size_t i = 0; i < sources.size(); ++i) {
    QueryResult result = futures[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(Sorted(result.scores), Sorted(expected[i]))
        << "positions shifted by the shed request at i=" << i;
  }
  const ServiceStats stats = routed.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.completed, sources.size());
  EXPECT_EQ(stats.shed, 0u);
}

TEST_P(ShardRouterTest, MismatchedGraphArtifactIsRejected) {
  const std::string manifest = BuildBundle(2);
  // Overwrite the bundle's graph with a different one: the manifest's
  // fingerprint no longer matches, so Open must refuse to serve.
  const Graph other = MakeRandomDigraph(120, 700, /*seed=*/8);
  ASSERT_TRUE(
      GraphIO::SaveBinary(other, ResolveManifestPath(manifest, "graph.bin"))
          .ok());
  auto router = ShardRouter::Open(manifest);
  ASSERT_FALSE(router.ok());
  EXPECT_EQ(router.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(router.status().message().find("fingerprint"), std::string::npos)
      << router.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(AllPersistentEngines, ShardRouterTest,
                         ::testing::ValuesIn(kEngineCases),
                         [](const auto& info) {
                           return std::string(info.param.engine);
                         });

// ---------------------------------------------------------------------------
// Router-level failures that don't depend on the engine.
// ---------------------------------------------------------------------------

class ShardRouterErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_shard_err_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(ShardRouterErrorTest, MissingManifestFailsWithIOError) {
  auto router = ShardRouter::Open((dir_ / "missing.bin").string());
  ASSERT_FALSE(router.ok());
  EXPECT_EQ(router.status().code(), StatusCode::kIOError);
}

TEST_F(ShardRouterErrorTest, UnknownEngineFailsWithNotFound) {
  const Graph graph = MakeRandomDigraph(50, 200, 3);
  ASSERT_TRUE(GraphIO::SaveBinary(graph, (dir_ / "graph.bin").string()).ok());
  ShardManifest manifest;
  manifest.algo = "no-such-engine";
  manifest.partition = {1, PartitionStrategy::kHash};
  manifest.n = graph.n();
  manifest.m = graph.m();
  manifest.graph_checksum = graph.Checksum();
  manifest.shards = {ShardArtifacts{"graph.bin", ""}};
  const std::string path = (dir_ / "manifest.bin").string();
  ASSERT_TRUE(manifest.Save(path).ok());
  auto router = ShardRouter::Open(path);
  ASSERT_FALSE(router.ok());
  EXPECT_EQ(router.status().code(), StatusCode::kNotFound);
}

// An engine without a persistent index (empty index_path) is preprocessed
// at load time and must still answer exactly like an unsharded instance.
TEST_F(ShardRouterErrorTest, IndexFreeEngineBundleServes) {
  const Graph graph = MakeRandomDigraph(60, 250, 5);
  const EngineConfig config =
      EngineConfig::Parse("eps=0.4,seed=99").ValueOrDie();
  auto manifest =
      BuildShardBundle(graph, "probesim", config,
                       PartitionSpec{2, PartitionStrategy::kHash},
                       (dir_ / "bundle").string());
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  auto router = ShardRouter::Open(manifest.ValueOrDie());
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  auto reference =
      EngineRegistry::Global().Create("probesim", graph, config);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference.ValueOrDie()->Preprocess().ok());
  reference.ValueOrDie()->Reseed(reference.ValueOrDie()->seed());
  ScoreList expected = reference.ValueOrDie()->Query(11);
  QueryResult result = router.ValueOrDie()->QueryFresh(11);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  std::sort(expected.begin(), expected.end());
  std::sort(result.scores.begin(), result.scores.end());
  EXPECT_EQ(result.scores, expected);
}

}  // namespace
}  // namespace prsim
