// Tests for the exact power-method oracle: closed forms on structured
// graphs and agreement with the independent pair-walk meeting computation.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/power_method.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::ExactMeetingSimRank;
using testing::MakeChain;
using testing::MakeCompleteDigraph;
using testing::MakeCycle;
using testing::MakeRandomDigraph;
using testing::MakeSharedParent;

PowerMethodSimRank MakeOracle(const Graph& g, double c = 0.6) {
  PowerMethodOptions options;
  options.c = c;
  PowerMethodSimRank oracle(g, options);
  oracle.Preprocess().Abort();
  return oracle;
}

TEST(PowerMethodTest, DiagonalIsOne) {
  Graph g = MakeRandomDigraph(30, 120, 1);
  auto oracle = MakeOracle(g);
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_DOUBLE_EQ(oracle.SimRank(v, v), 1.0);
  }
}

TEST(PowerMethodTest, SymmetricMatrix) {
  Graph g = MakeRandomDigraph(40, 200, 2);
  auto oracle = MakeOracle(g);
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_NEAR(oracle.SimRank(u, v), oracle.SimRank(v, u), 1e-12);
    }
  }
}

TEST(PowerMethodTest, ValuesInUnitInterval) {
  Graph g = MakeRandomDigraph(40, 300, 3);
  auto oracle = MakeOracle(g, 0.8);
  for (NodeId u = 0; u < g.n(); ++u) {
    for (NodeId v = 0; v < g.n(); ++v) {
      EXPECT_GE(oracle.SimRank(u, v), 0.0);
      EXPECT_LE(oracle.SimRank(u, v), 1.0);
    }
  }
}

TEST(PowerMethodTest, SharedParentClosedForm) {
  // I(0) = I(1) = {2} gives s(0, 1) = c * s(2, 2) = c.
  for (double c : {0.4, 0.6, 0.8}) {
    auto oracle = MakeOracle(MakeSharedParent(), c);
    EXPECT_NEAR(oracle.SimRank(0, 1), c, 1e-9) << c;
    // Node 2 has no in-neighbors: similarity 0 to everything else.
    EXPECT_DOUBLE_EQ(oracle.SimRank(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(oracle.SimRank(1, 2), 0.0);
  }
}

TEST(PowerMethodTest, ChainHasZeroOffDiagonal) {
  // On the chain 0 -> 1 -> 2 -> 3 both walks from distinct nodes stay at a
  // constant distance, so they never meet.
  auto oracle = MakeOracle(MakeChain(4));
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) EXPECT_DOUBLE_EQ(oracle.SimRank(u, v), 0.0);
    }
  }
}

TEST(PowerMethodTest, CycleHasZeroOffDiagonal) {
  // Same invariant-distance argument on the cycle.
  auto oracle = MakeOracle(MakeCycle(6));
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      EXPECT_NEAR(oracle.SimRank(u, v), 0.0, 1e-12);
    }
  }
}

TEST(PowerMethodTest, CompleteDigraphClosedForm) {
  // All off-diagonal pairs are equivalent by symmetry. Coupled walks from
  // distinct (u, v) move to uniform (a, b) in (V \ {u}) x (V \ {v}); they
  // coincide on one of the n-2 nodes outside {u, v}:
  //   s = c (n-2)/(n-1)^2 + c (1 - (n-2)/(n-1)^2) s
  //   => s = c (n-2) / ((n-1)^2 - c ((n-1)^2 - (n-2))).
  const double c = 0.6;
  const NodeId n = 7;
  auto oracle = MakeOracle(MakeCompleteDigraph(n), c);
  const double d2 = (n - 1.0) * (n - 1.0);
  const double expected = c * (n - 2) / (d2 - c * (d2 - (n - 2)));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      EXPECT_NEAR(oracle.SimRank(u, v), expected, 1e-9);
    }
  }
}

TEST(PowerMethodTest, AgreesWithPairWalkMeetingProbability) {
  // Independent formulations must coincide: recurrence iteration (power
  // method) vs coupled-walk meeting probability ([32]).
  for (uint64_t seed : {11u, 12u, 13u}) {
    Graph g = MakeRandomDigraph(16, 70, seed);
    auto oracle = MakeOracle(g);
    const auto exact = ExactMeetingSimRank(g, 0.6);
    for (NodeId u = 0; u < g.n(); ++u) {
      for (NodeId v = 0; v < g.n(); ++v) {
        EXPECT_NEAR(oracle.SimRank(u, v), exact[u][v], 1e-6)
            << "seed=" << seed << " u=" << u << " v=" << v;
      }
    }
  }
}

TEST(PowerMethodTest, QueryReturnsRow) {
  Graph g = MakeSharedParent();
  auto oracle = MakeOracle(g);
  ScoreList row = oracle.Query(0);
  EXPECT_NEAR(ScoreOf(row, 1), 0.6, 1e-9);
  EXPECT_DOUBLE_EQ(ScoreOf(row, 0), 1.0);
}

TEST(PowerMethodTest, RefusesLargeGraphs) {
  PowerMethodOptions options;
  options.max_nodes = 10;
  Graph g = MakeCycle(11);
  PowerMethodSimRank oracle(g, options);
  auto st = oracle.Preprocess();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST(PowerMethodTest, HigherDecayRaisesSimilarity) {
  Graph g = MakeRandomDigraph(25, 150, 14);
  auto low = MakeOracle(g, 0.4);
  auto high = MakeOracle(g, 0.8);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 10; v < 20; ++v) {
      EXPECT_LE(low.SimRank(u, v), high.SimRank(u, v) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace prsim
