// Tests for PRSim index serialization.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/index_io.h"
#include "core/prsim.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::MakeRandomDigraph;

class IndexIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("prsim_index_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IndexIoTest, RoundTripPreservesEverything) {
  Graph g = MakeRandomDigraph(200, 1200, 1);
  PRSimIndexOptions options;
  options.eps = 0.05;
  options.j0 = 30;
  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  ASSERT_TRUE(PRSimIndexIO::Save(index, g, options, Path("a.idx")).ok());
  auto loaded = PRSimIndexIO::Load(g, options, Path("a.idx")).ValueOrDie();

  EXPECT_EQ(loaded.hub_count(), index.hub_count());
  EXPECT_EQ(loaded.hub_nodes(), index.hub_nodes());
  EXPECT_EQ(loaded.total_tuples(), index.total_tuples());
  EXPECT_DOUBLE_EQ(loaded.rmax(), index.rmax());
  EXPECT_EQ(loaded.reverse_pagerank(), index.reverse_pagerank());
  for (NodeId hub : index.hub_nodes()) {
    for (uint32_t level = 0; level < 20; ++level) {
      const auto* a = index.Find(hub, level);
      const auto* b = loaded.Find(hub, level);
      ASSERT_EQ(a == nullptr, b == nullptr) << hub << " " << level;
      if (a != nullptr) {
        EXPECT_EQ(*a, *b);
      }
    }
  }
}

TEST_F(IndexIoTest, LoadedIndexAnswersQueriesIdentically) {
  Graph g = MakeRandomDigraph(150, 800, 2);
  PRSimOptions options;
  options.eps = 0.1;
  options.seed = 11;
  PRSim fresh(g, options);
  ASSERT_TRUE(fresh.Preprocess().ok());
  ASSERT_TRUE(fresh.SaveIndex(Path("b.idx")).ok());

  PRSim restored(g, options);
  ASSERT_TRUE(restored.LoadIndex(Path("b.idx")).ok());
  auto a = fresh.Query(7);
  auto b = restored.Query(7);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);  // same seed + same index => identical estimates
}

TEST_F(IndexIoTest, RejectsWrongGraph) {
  Graph g = MakeRandomDigraph(100, 500, 3);
  Graph other = MakeRandomDigraph(101, 500, 3);
  PRSimIndexOptions options;
  options.eps = 0.1;
  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  ASSERT_TRUE(PRSimIndexIO::Save(index, g, options, Path("c.idx")).ok());
  auto result = PRSimIndexIO::Load(other, options, Path("c.idx"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// The stale-index footgun: a graph with the same node count but different
// edges must be rejected (the old format only compared n).
TEST_F(IndexIoTest, RejectsSameSizeDifferentGraph) {
  Graph g = MakeRandomDigraph(100, 500, 3);
  Graph same_n = MakeRandomDigraph(100, 500, 4);
  PRSimIndexOptions options;
  options.eps = 0.1;
  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  ASSERT_TRUE(PRSimIndexIO::Save(index, g, options, Path("d.idx")).ok());
  auto result = PRSimIndexIO::Load(same_n, options, Path("d.idx"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IndexIoTest, RejectsDifferentOptions) {
  Graph g = MakeRandomDigraph(100, 500, 5);
  PRSimIndexOptions options;
  options.eps = 0.1;
  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  ASSERT_TRUE(PRSimIndexIO::Save(index, g, options, Path("e.idx")).ok());

  PRSimIndexOptions narrower = options;
  narrower.eps = 0.05;
  auto result = PRSimIndexIO::Load(g, narrower, Path("e.idx"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  PRSimIndexOptions more_hubs = options;
  more_hubs.j0 = 77;
  result = PRSimIndexIO::Load(g, more_hubs, Path("e.idx"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // Thread count shapes build parallelism, not the index: it must not be
  // fingerprinted.
  PRSimIndexOptions more_threads = options;
  more_threads.threads = 7;
  EXPECT_TRUE(PRSimIndexIO::Load(g, more_threads, Path("e.idx")).ok());
}

TEST_F(IndexIoTest, RejectsGarbageAndTruncation) {
  Graph g = MakeRandomDigraph(50, 250, 4);
  PRSimIndexOptions options;
  options.eps = 0.1;
  {
    std::ofstream out(Path("junk.idx"), std::ios::binary);
    out << "not an index";
  }
  EXPECT_FALSE(PRSimIndexIO::Load(g, options, Path("junk.idx")).ok());

  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  ASSERT_TRUE(PRSimIndexIO::Save(index, g, options, Path("full.idx")).ok());
  const auto size = std::filesystem::file_size(Path("full.idx"));
  std::filesystem::resize_file(Path("full.idx"), size * 2 / 3);
  EXPECT_FALSE(PRSimIndexIO::Load(g, options, Path("full.idx")).ok());
}

TEST_F(IndexIoTest, MissingFileFails) {
  Graph g = MakeRandomDigraph(20, 80, 5);
  PRSimIndexOptions options;
  auto result = PRSimIndexIO::Load(g, options, Path("missing.idx"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace prsim
