// Tests for PRSim's hub index (Algorithm 1).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/prsim_index.h"
#include "gen/chung_lu.h"
#include "ppr/reverse_pagerank.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::DenseLevelRppr;
using testing::MakeRandomDigraph;

TEST(PRSimIndexTest, RejectsBadOptions) {
  Graph g = MakeRandomDigraph(20, 80, 1);
  PRSimIndexOptions options;
  options.c = 1.5;
  EXPECT_FALSE(PRSimIndex::Build(g, options).ok());
  options.c = 0.6;
  options.eps = 0;
  EXPECT_FALSE(PRSimIndex::Build(g, options).ok());
}

TEST(PRSimIndexTest, DefaultHubCountIsSqrtN) {
  Graph g = MakeRandomDigraph(400, 3000, 2);
  PRSimIndexOptions options;
  options.eps = 0.1;
  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  EXPECT_EQ(index.hub_count(), 20u);
}

TEST(PRSimIndexTest, HubsAreTopReversePageRankNodes) {
  Graph g = MakeRandomDigraph(300, 2500, 3);
  PRSimIndexOptions options;
  options.eps = 0.1;
  options.j0 = 25;
  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  auto pi = ComputeReversePageRank(g, {.c = options.c});
  auto ranked = RankNodesByValue(pi);
  std::set<NodeId> expected(ranked.begin(), ranked.begin() + 25);
  for (NodeId hub : index.hub_nodes()) {
    EXPECT_TRUE(expected.count(hub)) << hub;
    EXPECT_TRUE(index.IsHub(hub));
  }
  EXPECT_FALSE(index.IsHub(ranked.back()));
}

TEST(PRSimIndexTest, RmaxMatchesPaperFormula) {
  Graph g = MakeRandomDigraph(50, 200, 4);
  PRSimIndexOptions options;
  options.c = 0.6;
  options.eps = 0.25;
  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  const double sqrt_c = std::sqrt(0.6);
  EXPECT_NEAR(index.rmax(), (1 - sqrt_c) * (1 - sqrt_c) * 0.25 / 12, 1e-15);
}

TEST(PRSimIndexTest, StoredReservesApproximateExactRppr) {
  const double c = 0.6;
  Graph g = MakeRandomDigraph(30, 150, 5);
  const auto pi = DenseLevelRppr(g, c, 30);
  PRSimIndexOptions options;
  options.c = c;
  options.eps = 0.05;
  options.j0 = 10;
  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  for (NodeId hub : index.hub_nodes()) {
    for (uint32_t l = 0; l < 10; ++l) {
      const auto* list = index.Find(hub, l);
      if (list == nullptr) continue;
      for (const auto& [v, psi] : *list) {
        EXPECT_NEAR(psi, pi[l][v][hub], index.rmax()) << hub << " " << l;
      }
    }
  }
}

TEST(PRSimIndexTest, FindReturnsNullForNonHubOrMissingLevel) {
  Graph g = MakeRandomDigraph(100, 500, 6);
  PRSimIndexOptions options;
  options.eps = 0.1;
  options.j0 = 5;
  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  auto pi = ComputeReversePageRank(g, {.c = options.c});
  auto ranked = RankNodesByValue(pi);
  EXPECT_EQ(index.Find(ranked.back(), 0), nullptr);
  EXPECT_EQ(index.Find(index.hub_nodes()[0], 1000), nullptr);
  EXPECT_NE(index.Find(index.hub_nodes()[0], 0), nullptr);
}

TEST(PRSimIndexTest, IndexSizeGrowsWithHubCountAndShrinksWithEps) {
  ChungLuOptions gen;
  gen.n = 10000;
  gen.avg_degree = 8;
  gen.gamma_out = 1.8;
  gen.seed = 7;
  Graph g = GenerateChungLu(gen).ValueOrDie();

  PRSimIndexOptions small;
  small.eps = 0.1;
  small.j0 = 10;
  PRSimIndexOptions big = small;
  big.j0 = 200;
  auto index_small = PRSimIndex::Build(g, small).ValueOrDie();
  auto index_big = PRSimIndex::Build(g, big).ValueOrDie();
  EXPECT_GT(index_big.IndexBytes(), index_small.IndexBytes());
  EXPECT_GT(index_big.total_tuples(), index_small.total_tuples());

  PRSimIndexOptions coarse = small;
  coarse.eps = 0.5;
  auto index_coarse = PRSimIndex::Build(g, coarse).ValueOrDie();
  EXPECT_LT(index_coarse.total_tuples(), index_small.total_tuples());
}

TEST(PRSimIndexTest, J0CappedAtN) {
  Graph g = MakeRandomDigraph(10, 40, 8);
  PRSimIndexOptions options;
  options.eps = 0.1;
  options.j0 = 1000;
  auto index = PRSimIndex::Build(g, options).ValueOrDie();
  EXPECT_EQ(index.hub_count(), 10u);
}

TEST(PRSimIndexTest, ParallelBuildMatchesSerialBuild) {
  Graph g = MakeRandomDigraph(200, 1500, 9);
  PRSimIndexOptions serial;
  serial.eps = 0.1;
  serial.j0 = 40;
  serial.threads = 1;
  PRSimIndexOptions parallel = serial;
  parallel.threads = 4;
  auto a = PRSimIndex::Build(g, serial).ValueOrDie();
  auto b = PRSimIndex::Build(g, parallel).ValueOrDie();
  EXPECT_EQ(a.total_tuples(), b.total_tuples());
  EXPECT_EQ(a.hub_nodes(), b.hub_nodes());
  for (NodeId hub : a.hub_nodes()) {
    for (uint32_t l = 0; l < 20; ++l) {
      const auto* la = a.Find(hub, l);
      const auto* lb = b.Find(hub, l);
      ASSERT_EQ(la == nullptr, lb == nullptr);
      if (la != nullptr) {
        EXPECT_EQ(*la, *lb);
      }
    }
  }
}

}  // namespace
}  // namespace prsim
