// Tests for the synthetic graph generators.

#include <gtest/gtest.h>

#include <cmath>

#include "gen/barabasi_albert.h"
#include "gen/chung_lu.h"
#include "gen/erdos_renyi.h"
#include "graph/stats.h"

namespace prsim {
namespace {

// --------------------------------------------------------------------------
// Chung-Lu
// --------------------------------------------------------------------------

TEST(ChungLuTest, RejectsBadOptions) {
  ChungLuOptions options;
  options.n = 1;
  EXPECT_FALSE(GenerateChungLu(options).ok());
  options.n = 100;
  options.avg_degree = 0;
  EXPECT_FALSE(GenerateChungLu(options).ok());
  options.avg_degree = 5;
  options.gamma_out = 0.1;
  EXPECT_FALSE(GenerateChungLu(options).ok());
}

TEST(ChungLuTest, WeightsHaveRequestedMean) {
  auto weights = PowerLawWeights(10000, 2.0, 7.5);
  double total = 0;
  for (double w : weights) total += w;
  EXPECT_NEAR(total / weights.size(), 7.5, 1e-9);
  // Monotone decreasing (rank 0 is the heaviest).
  for (size_t i = 1; i < weights.size(); ++i) {
    EXPECT_LE(weights[i], weights[i - 1]);
  }
}

TEST(ChungLuTest, HitsTargetAverageDegree) {
  ChungLuOptions options;
  options.n = 30000;
  options.avg_degree = 12;
  options.gamma_out = 2.2;
  options.seed = 3;
  Graph g = GenerateChungLu(options).ValueOrDie();
  EXPECT_NEAR(g.AverageDegree(), 12.0, 12.0 * 0.06);
}

TEST(ChungLuTest, DeterministicForSeed) {
  ChungLuOptions options;
  options.n = 5000;
  options.avg_degree = 6;
  options.seed = 17;
  Graph a = GenerateChungLu(options).ValueOrDie();
  Graph b = GenerateChungLu(options).ValueOrDie();
  EXPECT_EQ(a.m(), b.m());
  EXPECT_EQ(a.ToEdges(), b.ToEdges());
}

TEST(ChungLuTest, SeedChangesGraph) {
  ChungLuOptions options;
  options.n = 5000;
  options.avg_degree = 6;
  options.seed = 1;
  Graph a = GenerateChungLu(options).ValueOrDie();
  options.seed = 2;
  Graph b = GenerateChungLu(options).ValueOrDie();
  EXPECT_NE(a.ToEdges(), b.ToEdges());
}

TEST(ChungLuTest, UndirectedIsSymmetric) {
  ChungLuOptions options;
  options.n = 3000;
  options.avg_degree = 8;
  options.undirected = true;
  options.seed = 4;
  Graph g = GenerateChungLu(options).ValueOrDie();
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(g.OutDegree(v), g.InDegree(v));
  }
}

TEST(ChungLuTest, SimpleGraphNoSelfLoopsNoDuplicates) {
  ChungLuOptions options;
  options.n = 2000;
  options.avg_degree = 10;
  options.seed = 5;
  Graph g = GenerateChungLu(options).ValueOrDie();
  auto edges = g.ToEdges();
  std::sort(edges.begin(), edges.end());
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_NE(edges[i].first, edges[i].second);
    if (i > 0) EXPECT_NE(edges[i], edges[i - 1]);
  }
}

TEST(ChungLuTest, SmallerGammaMeansHeavierTail) {
  ChungLuOptions heavy, light;
  heavy.n = light.n = 30000;
  heavy.avg_degree = light.avg_degree = 10;
  heavy.gamma_out = 1.3;
  light.gamma_out = 3.0;
  heavy.seed = light.seed = 6;
  Graph gh = GenerateChungLu(heavy).ValueOrDie();
  Graph gl = GenerateChungLu(light).ValueOrDie();
  EXPECT_GT(Summarize(gh).max_out_degree,
            2 * Summarize(gl).max_out_degree);
}

TEST(ChungLuTest, SeparateInExponent) {
  ChungLuOptions options;
  options.n = 40000;
  options.avg_degree = 10;
  options.gamma_out = 1.4;
  options.gamma_in = 3.0;
  options.seed = 7;
  Graph g = GenerateChungLu(options).ValueOrDie();
  // Heavy out-tail, light in-tail.
  EXPECT_GT(Summarize(g).max_out_degree, 2 * Summarize(g).max_in_degree);
}

// --------------------------------------------------------------------------
// Erdos-Renyi
// --------------------------------------------------------------------------

TEST(ErdosRenyiTest, RejectsBadOptions) {
  ErdosRenyiOptions options;
  options.n = 1;
  EXPECT_FALSE(GenerateErdosRenyi(options).ok());
  options.n = 10;
  options.avg_degree = 20;  // >= n
  EXPECT_FALSE(GenerateErdosRenyi(options).ok());
}

TEST(ErdosRenyiTest, HitsTargetAverageDegree) {
  ErdosRenyiOptions options;
  options.n = 20000;
  options.avg_degree = 15;
  options.seed = 8;
  Graph g = GenerateErdosRenyi(options).ValueOrDie();
  EXPECT_NEAR(g.AverageDegree(), 15.0, 15.0 * 0.05);
}

TEST(ErdosRenyiTest, DegreesConcentrate) {
  ErdosRenyiOptions options;
  options.n = 20000;
  options.avg_degree = 20;
  options.seed = 9;
  Graph g = GenerateErdosRenyi(options).ValueOrDie();
  // Max degree of a binomial concentrates near the mean: far below any
  // power-law tail (which would reach hundreds).
  auto s = Summarize(g);
  EXPECT_LT(s.max_out_degree, 70u);
  EXPECT_LT(s.max_in_degree, 70u);
}

TEST(ErdosRenyiTest, Deterministic) {
  ErdosRenyiOptions options;
  options.n = 3000;
  options.avg_degree = 5;
  options.seed = 10;
  Graph a = GenerateErdosRenyi(options).ValueOrDie();
  Graph b = GenerateErdosRenyi(options).ValueOrDie();
  EXPECT_EQ(a.ToEdges(), b.ToEdges());
}

TEST(ErdosRenyiTest, DenseConfiguration) {
  ErdosRenyiOptions options;
  options.n = 2000;
  options.avg_degree = 400;
  options.seed = 11;
  Graph g = GenerateErdosRenyi(options).ValueOrDie();
  EXPECT_NEAR(g.AverageDegree(), 400, 400 * 0.05);
  EXPECT_TRUE(g.Validate().ok());
}

// --------------------------------------------------------------------------
// Barabasi-Albert
// --------------------------------------------------------------------------

TEST(BarabasiAlbertTest, RejectsBadOptions) {
  BarabasiAlbertOptions options;
  options.edges_per_node = 0;
  EXPECT_FALSE(GenerateBarabasiAlbert(options).ok());
  options.edges_per_node = 50;
  options.n = 10;
  EXPECT_FALSE(GenerateBarabasiAlbert(options).ok());
}

TEST(BarabasiAlbertTest, AverageDegreeApproaches2k) {
  BarabasiAlbertOptions options;
  options.n = 20000;
  options.edges_per_node = 4;
  options.seed = 12;
  Graph g = GenerateBarabasiAlbert(options).ValueOrDie();
  EXPECT_NEAR(g.AverageDegree(), 8.0, 0.5);
}

TEST(BarabasiAlbertTest, UndirectedAndPowerLaw) {
  BarabasiAlbertOptions options;
  options.n = 30000;
  options.edges_per_node = 5;
  options.seed = 13;
  Graph g = GenerateBarabasiAlbert(options).ValueOrDie();
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(g.OutDegree(v), g.InDegree(v));
  }
  // BA converges to cumulative exponent 2.
  auto fit = FitDegreeExponent(g, DegreeDirection::kOut);
  EXPECT_NEAR(fit.gamma, 2.0, 0.5);
}

TEST(BarabasiAlbertTest, MinimumDegreeIsK) {
  BarabasiAlbertOptions options;
  options.n = 5000;
  options.edges_per_node = 3;
  options.seed = 14;
  Graph g = GenerateBarabasiAlbert(options).ValueOrDie();
  for (NodeId v = 0; v < g.n(); ++v) {
    EXPECT_GE(g.OutDegree(v), 3u);
  }
}

}  // namespace
}  // namespace prsim
