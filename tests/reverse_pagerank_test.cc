// Tests for the reverse PageRank power iteration.

#include <gtest/gtest.h>

#include <numeric>

#include "gen/chung_lu.h"
#include "ppr/reverse_pagerank.h"
#include "ppr/walker.h"
#include "test_util.h"

namespace prsim {
namespace {

using testing::DenseReversePageRank;
using testing::MakeChain;
using testing::MakeCompleteDigraph;
using testing::MakeCycle;
using testing::MakeRandomDigraph;

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(ReversePageRankTest, UniformOnCycle) {
  // Perfect symmetry: pi(w) = 1/n for all w, total mass 1 (no dangling).
  Graph g = MakeCycle(16);
  auto pi = ComputeReversePageRank(g, {.c = 0.6});
  EXPECT_NEAR(Sum(pi), 1.0, 1e-9);
  for (double x : pi) EXPECT_NEAR(x, 1.0 / 16, 1e-9);
}

TEST(ReversePageRankTest, UniformOnCompleteDigraph) {
  Graph g = MakeCompleteDigraph(9);
  auto pi = ComputeReversePageRank(g, {.c = 0.8});
  EXPECT_NEAR(Sum(pi), 1.0, 1e-9);
  for (double x : pi) EXPECT_NEAR(x, 1.0 / 9, 1e-9);
}

TEST(ReversePageRankTest, MatchesDenseReference) {
  const double c = 0.6;
  Graph g = MakeRandomDigraph(25, 120, 71);
  auto pi = ComputeReversePageRank(g, {.c = c});
  auto ref = DenseReversePageRank(g, c);
  ASSERT_EQ(pi.size(), ref.size());
  for (NodeId w = 0; w < g.n(); ++w) {
    EXPECT_NEAR(pi[w], ref[w], 1e-9) << "w=" << w;
  }
}

TEST(ReversePageRankTest, MatchesMonteCarloWalks) {
  const double c = 0.6;
  Graph g = MakeRandomDigraph(30, 150, 72);
  auto pi = ComputeReversePageRank(g, {.c = c});
  Walker walker(g, c);
  Rng rng(1);
  std::vector<double> counts(g.n(), 0.0);
  const int samples = 600000;
  for (int i = 0; i < samples; ++i) {
    auto out = walker.SampleWalk(rng.NextIndex(g.n()), rng);
    if (out.terminated) counts[out.terminal] += 1.0;
  }
  for (NodeId w = 0; w < g.n(); ++w) {
    EXPECT_NEAR(counts[w] / samples, pi[w], 0.004) << "w=" << w;
  }
}

TEST(ReversePageRankTest, DanglingMassEvaporates) {
  // Chain: node 0 has no in-neighbors; mass that tries to move from 0 is
  // lost, so the total is strictly below 1.
  Graph g = MakeChain(5);
  auto pi = ComputeReversePageRank(g, {.c = 0.6});
  EXPECT_LT(Sum(pi), 1.0);
  EXPECT_GT(Sum(pi), 0.0);
  // Node 4 is pointed at by 3; its pi includes 2+ step paths: strictly more
  // than a node only reachable at level 0 from itself... all nodes get the
  // level-0 slice (1 - sqrt_c)/n.
  const double base = (1 - std::sqrt(0.6)) / 5;
  for (double x : pi) EXPECT_GE(x, base - 1e-12);
}

TEST(ReversePageRankTest, SumsToOneWithoutDanglingNodes) {
  ChungLuOptions options;
  options.n = 5000;
  options.avg_degree = 8;
  options.undirected = true;  // undirected CL keeps din >= 1 for all touched
  options.seed = 2;
  Graph g = GenerateChungLu(options).ValueOrDie();
  auto pi = ComputeReversePageRank(g, {.c = 0.6});
  // Isolated nodes (never sampled an edge) are dangling; account for them.
  const double isolated_fraction =
      static_cast<double>(g.CountDanglingNodes()) / g.n();
  const double sqrt_c = std::sqrt(0.6);
  // Each isolated node loses sqrt_c of its 1/n share.
  EXPECT_NEAR(Sum(pi), 1.0 - isolated_fraction * sqrt_c, 1e-6);
}

TEST(ReversePageRankTest, HubConcentration) {
  // Flat power-law graphs concentrate reverse PageRank on few hubs.
  ChungLuOptions options;
  options.n = 20000;
  options.avg_degree = 10;
  options.gamma_out = 1.4;
  options.seed = 3;
  Graph g = GenerateChungLu(options).ValueOrDie();
  auto pi = ComputeReversePageRank(g, {.c = 0.6});
  auto order = RankNodesByValue(pi);
  double top100 = 0;
  for (int i = 0; i < 100; ++i) top100 += pi[order[i]];
  EXPECT_GT(top100, 0.05);  // top 0.5% of nodes carry >> uniform share
}

TEST(RankNodesByValueTest, SortsDescendingWithStableTies) {
  std::vector<double> values = {0.1, 0.5, 0.5, 0.2};
  auto order = RankNodesByValue(values);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);  // tie between 1 and 2 broken by id
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 0u);
}

}  // namespace
}  // namespace prsim
