// Ablation: on-the-fly eta * pi estimation (PRSim, Section 3.2) vs per-node
// eta precomputation (SLING, Section 2).
//
// PRSim's first key insight is that eta(w) never needs to be materialized:
// the product eta(w) * pi_l(u, w) is estimated with the SAME
// Theta(log(n/delta)/eps^2) walk budget that estimates pi_l(u, w), because
// sum_{w,l} eta(w) pi_l(u, w) <= 1. SLING instead spends
// Theta(log(n/delta)/eps^2) pair-walks per node — a factor-n difference in
// preprocessing. This bench measures both costs on growing graphs, and also
// validates the on-the-fly estimator against exactly computed eta values on
// a small graph.

#include <cmath>
#include <cstdio>

#include "gen/chung_lu.h"
#include "ppr/walker.h"
#include "util/flat_hash_map.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace prsim;
  const double c = 0.6;
  const double eps = 0.25;
  const double delta = 1e-4;

  std::printf("[ablation-eta] eps=%.2f delta=%g\n", eps, delta);
  std::printf("%-10s %-18s %-20s %-10s\n", "n",
              "prsim_etapi_s(query)", "sling_eta_s(preproc)", "ratio");

  for (NodeId n : {10000u, 30000u, 100000u}) {
    ChungLuOptions gen;
    gen.n = n;
    gen.avg_degree = 10;
    gen.gamma_out = 2.0;
    gen.seed = 13;
    Graph g = GenerateChungLu(gen).ValueOrDie();
    Walker walker(g, c);
    Rng rng(7);

    const auto samples = static_cast<uint64_t>(
        std::ceil(3.0 * std::log(n / delta) / (eps * eps)));

    // PRSim side: one query's worth of eta*pi samples from one source.
    WallTimer prsim_timer;
    FlatHashMap<double> eta_pi(1024);
    const NodeId source = 17 % n;
    for (uint64_t i = 0; i < samples; ++i) {
      const WalkOutcome walk = walker.SampleWalk(source, rng);
      if (!walk.terminated) continue;
      if (!walker.SamplePairMeets(walk.terminal, rng)) {
        eta_pi[PackNodeLevel(walk.terminal, walk.steps)] +=
            1.0 / static_cast<double>(samples);
      }
    }
    const double prsim_seconds = prsim_timer.Seconds();

    // SLING side: the same sample budget *per node*, for every node.
    // (Timed on a 1% node sample and extrapolated to keep the bench quick.)
    const NodeId probe_nodes = std::max<NodeId>(n / 100, 100);
    WallTimer sling_timer;
    for (NodeId w = 0; w < probe_nodes; ++w) {
      walker.EstimateEta(w, samples, rng);
    }
    const double sling_seconds =
        sling_timer.Seconds() * (static_cast<double>(n) / probe_nodes);

    std::printf("%-10u %-18.4f %-20.1f %-10.0fx\n", n, prsim_seconds,
                sling_seconds, sling_seconds / prsim_seconds);
    std::fflush(stdout);
  }
  std::printf("\nexpected: the ratio grows linearly with n — the factor the "
              "paper's first contribution removes.\n");
  return 0;
}
