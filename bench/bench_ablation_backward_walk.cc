// Ablation: Variance Bounded Backward Walk (Algorithm 3) vs Simple Backward
// Walk (Algorithm 2) vs a ProbeSim-style full deterministic expansion.
//
// Three claims from Sections 3.4 / 5.3 are measured on power-law graphs:
//   1. both walks cost O(n pi(w)) while the full expansion pays the whole
//      out-neighborhood of every reached node (the d̄ factor);
//   2. the walks' estimator means agree (both unbiased);
//   3. the simple walk's estimator variance exceeds the variance-bounded
//      walk's on hub targets — the reason PRSim can use median-of-means.

#include <cmath>
#include <cstdio>
#include <vector>

#include "gen/chung_lu.h"
#include "ppr/backward_walk.h"
#include "ppr/reverse_pagerank.h"
#include "util/flat_hash_map.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace prsim;

/// Deterministic full expansion to the target level (the probe cost model).
uint64_t FullExpansionCost(const Graph& g, NodeId w, uint32_t level) {
  FlatHashMap<double> cur(64), next(64);
  cur[w] = 1.0;
  uint64_t cost = 0;
  const double sqrt_c = std::sqrt(0.6);
  for (uint32_t i = 0; i < level; ++i) {
    next.clear();
    cur.ForEach([&](uint64_t key, const double& mass) {
      const auto x = static_cast<NodeId>(key);
      const auto outs = g.OutNeighbors(x);
      const auto degs = g.OutNeighborInDegrees(x);
      for (size_t e = 0; e < outs.size(); ++e) {
        next[outs[e]] += sqrt_c * mass / degs[e];
        ++cost;
      }
    });
    std::swap(cur, next);
  }
  return cost;
}

}  // namespace

int main() {
  const uint32_t level = 6;
  std::printf("[ablation-bw] level=%u, costs are mean ops per invocation\n",
              level);
  std::printf("%-8s %-12s %-14s %-14s %-14s %-12s %-12s\n", "gamma",
              "n*pi(hub)", "vb_ops", "simple_ops", "full_ops", "vb_var",
              "simple_var");

  for (double gamma : {1.3, 2.0, 3.0}) {
    ChungLuOptions gen;
    gen.n = 50000;
    gen.avg_degree = 10;
    gen.gamma_out = gamma;
    gen.seed = 3;
    Graph g = GenerateChungLu(gen).ValueOrDie();
    auto pi = ComputeReversePageRank(g, {.c = 0.6});
    const NodeId hub = RankNodesByValue(pi)[0];

    BackwardWalker walker(g, 0.6);
    Rng rng(7);
    const int runs = 400;
    uint64_t vb_ops = 0, simple_ops = 0;
    // Variance of the estimator at the hub's most-reached node: track the
    // estimate of one fixed target v (pick the max-mean node on the fly).
    FlatHashMap<double> sum(1024), sum_sq(1024);
    for (int i = 0; i < runs; ++i) {
      auto vb = walker.RunVarianceBounded(hub, level, rng);
      vb_ops += vb.increments;
      for (const auto& [v, val] : vb.estimates) {
        sum[v] += val;
        sum_sq[v] += val * val;
      }
    }
    FlatHashMap<double> ssum(1024), ssum_sq(1024);
    for (int i = 0; i < runs; ++i) {
      auto simple = walker.RunSimple(hub, level, rng);
      simple_ops += simple.increments;
      for (const auto& [v, val] : simple.estimates) {
        ssum[v] += val;
        ssum_sq[v] += val * val;
      }
    }
    // Aggregate variance across all reached nodes (sum of per-node vars).
    double vb_var = 0, simple_var = 0;
    sum_sq.ForEach([&](uint64_t key, const double& sq) {
      const double mean = (*sum.Find(key)) / runs;
      vb_var += sq / runs - mean * mean;
    });
    ssum_sq.ForEach([&](uint64_t key, const double& sq) {
      const double mean = (*ssum.Find(key)) / runs;
      simple_var += sq / runs - mean * mean;
    });

    const uint64_t full_ops = FullExpansionCost(g, hub, level);
    std::printf("%-8.1f %-12.1f %-14.1f %-14.1f %-14llu %-12.4f %-12.4f\n",
                gamma, g.n() * pi[hub],
                static_cast<double>(vb_ops) / runs,
                static_cast<double>(simple_ops) / runs,
                static_cast<unsigned long long>(full_ops), vb_var,
                simple_var);
    std::fflush(stdout);
  }
  std::printf(
      "\nexpected: vb_ops ~ simple_ops ~ n*pi(hub)/(1-sqrt_c), both orders "
      "of magnitude below full_ops (the ProbeSim cost model). On benign "
      "Chung-Lu hubs the two walks' variances are comparable; Algorithm 3's "
      "advantage is the *guarantee* Var <= pi (Lemma 3.5), which Algorithm 2 "
      "lacks on funnel-shaped graphs (see "
      "backward_walk_test.cc:SimpleWalkPassesAccumulatedMass...).\n");
  return 0;
}
