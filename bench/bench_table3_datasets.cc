// Table 3: dataset inventory.
//
// Paper: DBLP-Author (undirected, 5.4M/17.3M), LiveJournal (directed,
// 4.8M/69M), It-2004 (41M/1.15B), Twitter (42M/1.47B), UK-Union (134M/5.5B).
// This build instantiates the laptop-scale synthetic analogs (DESIGN.md
// substitution table) and prints their realized statistics, including the
// fitted cumulative out-degree exponents that drive PRSim's complexity.

#include <cstdio>

#include "eval/datasets.h"
#include "graph/stats.h"
#include "util/timer.h"

int main() {
  using namespace prsim;
  const double scale = BenchScaleFromEnv() * 0.2;

  std::printf("[table3] synthetic analogs at scale=%.2f of registry size\n",
              scale / 0.2);
  std::printf("%-4s %-14s %-10s %10s %12s %8s %10s %10s %10s\n", "key",
              "stands for", "type", "n", "m", "avg deg", "gamma_out",
              "gamma_in", "max dout");
  for (const auto& spec : PaperDatasetAnalogs()) {
    WallTimer timer;
    Graph g = MakeDataset(spec, scale).ValueOrDie();
    GraphSummary s = Summarize(g);
    std::printf(
        "%-4s %-14s %-10s %10u %12llu %8.2f %10.2f %10.2f %10u   "
        "(gen %.1fs)\n",
        spec.name.c_str(), spec.paper_name.c_str(),
        spec.directed ? "directed" : "undirected", s.n,
        static_cast<unsigned long long>(s.m), s.avg_degree, s.out_gamma,
        s.in_gamma, s.max_out_degree, timer.Seconds());
  }
  std::printf(
      "\npaper-shape check: IT analog must fit a larger out-gamma than TW "
      "(locally sparse vs locally dense).\n");
  return 0;
}
