// Google-benchmark micro suite for the library's hot primitives: walk
// sampling, meeting tests, backward search/walks, reverse PageRank, CSR
// construction, the FlatHashMap accumulator vs std::unordered_map, and
// cold graph artifact loads (v1 sequential parse vs v2 mmap).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <unordered_map>

#include "gen/chung_lu.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "ppr/backward_search.h"
#include "ppr/backward_walk.h"
#include "ppr/reverse_pagerank.h"
#include "ppr/walker.h"
#include "util/alias_table.h"
#include "util/flat_hash_map.h"
#include "util/rng.h"

namespace {

using namespace prsim;

const Graph& BenchGraph() {
  static const Graph graph = [] {
    ChungLuOptions options;
    options.n = 100000;
    options.avg_degree = 10;
    options.gamma_out = 1.8;
    options.seed = 1;
    return GenerateChungLu(options).MoveValueUnsafe();
  }();
  return graph;
}

void BM_SampleWalk(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Walker walker(g, 0.6);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(walker.SampleWalk(rng.NextIndex(g.n()), rng));
  }
}
BENCHMARK(BM_SampleWalk);

void BM_PairMeetingTest(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Walker walker(g, 0.6);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        walker.SamplePairMeets(rng.NextIndex(g.n()), rng));
  }
}
BENCHMARK(BM_PairMeetingTest);

void BM_VarianceBoundedBackwardWalk(benchmark::State& state) {
  const Graph& g = BenchGraph();
  BackwardWalker walker(g, 0.6);
  Rng rng(3);
  const auto level = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        walker.RunVarianceBounded(rng.NextIndex(g.n()), level, rng));
  }
}
BENCHMARK(BM_VarianceBoundedBackwardWalk)->Arg(2)->Arg(4)->Arg(8);

void BM_SimpleBackwardWalk(benchmark::State& state) {
  const Graph& g = BenchGraph();
  BackwardWalker walker(g, 0.6);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(walker.RunSimple(rng.NextIndex(g.n()), 4, rng));
  }
}
BENCHMARK(BM_SimpleBackwardWalk);

void BM_BackwardSearch(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Rng rng(5);
  BackwardSearchOptions options;
  options.rmax = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BackwardSearch(g, rng.NextIndex(g.n()), options));
  }
}
BENCHMARK(BM_BackwardSearch);

void BM_ReversePageRank(benchmark::State& state) {
  const Graph& g = BenchGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeReversePageRank(g, {.c = 0.6}));
  }
}
BENCHMARK(BM_ReversePageRank)->Unit(benchmark::kMillisecond);

void BM_GraphConstruction(benchmark::State& state) {
  const Graph& g = BenchGraph();
  const auto edges = g.ToEdges();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Graph::FromEdges(g.n(), edges));
  }
}
BENCHMARK(BM_GraphConstruction)->Unit(benchmark::kMillisecond);

/// Cold-load comparison of the two artifact container formats over the
/// same 100k-node graph. Arg 0 = v1 (sequential parse onto the heap),
/// 1 = v2 with mmap-backed zero-copy views, 2 = v2 with the read()
/// fallback. Validation is off for all three so the rows isolate pure
/// deserialization (checksums still verify on every load).
void BM_GraphColdLoad(benchmark::State& state) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("prsim_bench_coldload_" + std::to_string(state.range(0)) + ".bin"))
          .string();
  const bool v1 = state.range(0) == 0;
  Status saved = v1 ? GraphIO::SaveBinaryV1(BenchGraph(), path)
                    : GraphIO::SaveBinary(BenchGraph(), path);
  if (!saved.ok()) {
    state.SkipWithError(saved.ToString().c_str());
    return;
  }
  GraphIO::LoadOptions options;
  options.allow_mmap = state.range(0) == 1;
  options.validate = false;
  for (auto _ : state) {
    auto graph = GraphIO::LoadBinary(path, options);
    if (!graph.ok()) {
      state.SkipWithError(graph.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(graph.ValueOrDie().OutDegree(0));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_GraphColdLoad)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_FlatHashMapAccumulate(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    FlatHashMap<double> map(16);
    for (int i = 0; i < 4096; ++i) {
      map[rng.NextBounded(1024)] += 1.0;
    }
    benchmark::DoNotOptimize(map.size());
  }
}
BENCHMARK(BM_FlatHashMapAccumulate);

void BM_StdUnorderedMapAccumulate(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    std::unordered_map<uint64_t, double> map;
    for (int i = 0; i < 4096; ++i) {
      map[rng.NextBounded(1024)] += 1.0;
    }
    benchmark::DoNotOptimize(map.size());
  }
}
BENCHMARK(BM_StdUnorderedMapAccumulate);

void BM_AliasTableSample(benchmark::State& state) {
  auto weights = PowerLawWeights(100000, 2.0, 10.0);
  AliasTable table(weights);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample);

void BM_RngNextDouble(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextDouble());
  }
}
BENCHMARK(BM_RngNextDouble);

}  // namespace
