// Figure 2: AvgError@50 vs query time, per dataset, parameter-swept.
//
// Paper shape to reproduce: PRSim sits on the lower-left frontier on every
// dataset — lower error at equal query time (and the gap is largest on the
// heavy-tailed TW analog). TopSim/TSF plateau at high error; READS/SLING need
// far more resources to match.

#include <cstdio>

#include "bench_common.h"
#include "eval/datasets.h"

int main() {
  using namespace prsim;
  using namespace prsim::bench;
  const BenchScale scale = GetBenchScale();

  // Below full scale, sweep only the two headline datasets (DB for the
  // index-size contrast, TW for the heavy-tailed hard case) so the binary
  // fits a single-core CI budget; at scale >= 1 sweep all four.
  std::vector<const char*> keys = {"DB", "TW"};
  if (scale.factor >= 1.0) keys = {"DB", "LJ", "IT", "TW"};
  for (const char* key : keys) {
    auto spec = FindDataset(key).ValueOrDie();
    Graph g = MakeDataset(spec, 0.2 * scale.factor).ValueOrDie();
    std::fprintf(stderr, "[figure2] %s: n=%u m=%llu\n", key, g.n(),
                 static_cast<unsigned long long>(g.m()));
    auto rows = RunSweep(g, BuildParameterSweep(g, false, 7),
                         scale.query_count, 50, scale.budget_seconds, 1000);
    for (const auto& row : rows) PrintRow("figure2", key, row);
  }

  // UK analog: the scalability dataset — the paper runs only PRSim and
  // ProbeSim here (everything else exhausts resources).
  {
    auto spec = FindDataset("UK").ValueOrDie();
    Graph g = MakeDataset(spec, 0.2 * scale.factor).ValueOrDie();
    std::fprintf(stderr, "[figure2] UK: n=%u m=%llu\n", g.n(),
                 static_cast<unsigned long long>(g.m()));
    auto configs = BuildParameterSweep(g, false, 7);
    std::vector<SweepConfig> uk_configs;
    for (auto& c : configs) {
      if (c.algo == "PRSim" || c.algo == "ProbeSim") {
        uk_configs.push_back(std::move(c));
      }
    }
    auto rows = RunSweep(g, std::move(uk_configs), scale.query_count, 50,
                         scale.budget_seconds, 1001);
    for (const auto& row : rows) PrintRow("figure2", "UK", row);
  }
  return 0;
}
