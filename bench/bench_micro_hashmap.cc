// Hash map microbenchmark: FlatHashMap (v1) vs FlatHashMap2 vs
// std::unordered_map on the access patterns the query hot paths actually
// execute — bulk insert, hit/miss lookup, capacity-retained clear+reuse
// (the pooled-workspace cycle), and full iteration — across sizes 1e2..1e6
// and three key shapes:
//   * uniform        — random 63-bit keys (worst case for any id trick);
//   * node_ids       — dense shuffled 0..n-1 (accumulators, id remap);
//   * packed_node_level — PackNodeLevel(node, level) keys (walk frontiers).
//
// Each cell reports best-of-`reps` ns/op, and the whole measurement matrix
// runs `sweeps` times with per-cell minima merged across sweeps: a cell's
// reps run back to back, so a sustained noise window (vCPU steal on a
// shared host) can poison every rep of one cell in one sweep, but it
// cannot chase the same cell across sweeps minutes apart. Two
// machine-checkable verdicts are embedded in the output:
//   * "detector": the accidentally-quadratic guard — FAILS (and the binary
//     exits 1) if Find probe-length percentiles degrade superlinearly as
//     the table grows, i.e. if the hash + probe scheme stops being O(1)
//     for some key shape;
//   * "comparison": v2 must be at least as fast as v1 on insert, find_mixed
//     (the interleaved hit/miss stream the hot paths actually issue), and
//     clear_reuse at every measured size; pure find_hit/find_miss rows are
//     recorded for inspection.
//
// Usage: bench_micro_hashmap [--max-size S] [--reps R] [--sweeps K]
//                            [--out PATH]
// Defaults: max-size=1000000, reps=3, sweeps=3,
//           out=BENCH_hashmap_micro.json
// (CI runs a --max-size 10000 variant per commit and schema-checks both the
// regenerated and the committed file.)

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/flat_hash_map.h"
#include "util/flat_hash_map2.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace prsim;

struct Args {
  size_t max_size = 1000000;
  int reps = 3;
  int sweeps = 3;
  std::string out = "BENCH_hashmap_micro.json";
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s expects a value\n", flag.c_str());
      return false;
    }
    const char* value = argv[i + 1];
    if (flag == "--max-size") {
      args->max_size = std::strtoull(value, nullptr, 10);
    } else if (flag == "--reps") {
      args->reps = static_cast<int>(std::strtol(value, nullptr, 10));
    } else if (flag == "--sweeps") {
      args->sweeps = static_cast<int>(std::strtol(value, nullptr, 10));
    } else if (flag == "--out") {
      args->out = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->max_size < 100 || args->reps < 1 || args->sweeps < 1) {
    std::fprintf(stderr,
                 "--max-size must be >= 100, --reps and --sweeps >= 1\n");
    return false;
  }
  return true;
}

/// Optimization sink: accumulated checksums keep the measured loops alive.
volatile uint64_t g_sink = 0;

/// Every timed region covers at least this many operations, so the
/// small-size cells measure steady-state throughput instead of timer
/// jitter (one 100-key pass is ~2us — far too short on a shared vCPU).
constexpr size_t kMinOps = size_t{1} << 17;

// ---------------------------------------------------------------------------
// Key shapes
// ---------------------------------------------------------------------------

struct KeySet {
  std::vector<uint64_t> present;  ///< n distinct keys, pre-shuffled
  std::vector<uint64_t> absent;   ///< n keys guaranteed not in `present`
};

void Shuffle(std::vector<uint64_t>& keys, Rng& rng) {
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
}

KeySet MakeKeys(const std::string& dist, size_t n, Rng& rng) {
  KeySet ks;
  ks.present.reserve(n);
  ks.absent.reserve(n);
  if (dist == "uniform") {
    std::unordered_set<uint64_t> seen;
    seen.reserve(n * 2);
    while (ks.present.size() < n) {
      const uint64_t key = rng.Next() >> 1;  // 63-bit: never the v1 sentinel
      if (seen.insert(key).second) ks.present.push_back(key);
    }
    while (ks.absent.size() < n) {
      const uint64_t key = rng.Next() >> 1;
      if (seen.insert(key).second) ks.absent.push_back(key);
    }
  } else if (dist == "node_ids") {
    for (size_t i = 0; i < n; ++i) ks.present.push_back(i);
    for (size_t i = 0; i < n; ++i) ks.absent.push_back(n + i);
    Shuffle(ks.present, rng);
    Shuffle(ks.absent, rng);
  } else {  // packed_node_level: 8 levels over n/8 dense node ids
    const uint32_t nodes = static_cast<uint32_t>((n + 7) / 8);
    for (size_t i = 0; i < n; ++i) {
      ks.present.push_back(PackNodeLevel(static_cast<uint32_t>(i % nodes),
                                         static_cast<uint32_t>(i / nodes)));
    }
    for (size_t i = 0; i < n; ++i) {
      ks.absent.push_back(PackNodeLevel(static_cast<uint32_t>(i % nodes),
                                        8 + static_cast<uint32_t>(i / nodes)));
    }
    Shuffle(ks.present, rng);
    Shuffle(ks.absent, rng);
  }
  return ks;
}

// ---------------------------------------------------------------------------
// Measured operations, generic over the map flavor
// ---------------------------------------------------------------------------

// std::unordered_map gets thin adapters so one template covers all three.
struct StdMapAdapter {
  std::unordered_map<uint64_t, uint64_t> map;
  uint64_t& operator[](uint64_t k) { return map[k]; }
  const uint64_t* Find(uint64_t k) const {
    auto it = map.find(k);
    return it == map.end() ? nullptr : &it->second;
  }
  void clear() { map.clear(); }  // keeps buckets, like the flat maps
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [k, v] : map) fn(k, v);
  }
  size_t size() const { return map.size(); }
};

/// ns per inserted key: n distinct inserts into a fresh map, growth and
/// construction included — the workload the builder/remap path sees. Small
/// sizes build many fresh maps per rep to reach kMinOps.
template <typename MakeMap>
double MeasureInsert(MakeMap make_map, const std::vector<uint64_t>& keys,
                     int reps) {
  const size_t builds = (kMinOps + keys.size() - 1) / keys.size();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    for (size_t b = 0; b < builds; ++b) {
      auto map = make_map();
      for (size_t i = 0; i < keys.size(); ++i) map[keys[i]] = i;
      g_sink = g_sink + map.size();
    }
    const double sec = timer.Seconds();
    best = std::min(best, sec * 1e9 / (builds * keys.size()));
  }
  return best;
}

/// ns per lookup over a prebuilt map; loops until >= kMinOps probes so the
/// small sizes don't measure timer noise.
template <typename Map>
double MeasureFind(const Map& map, const std::vector<uint64_t>& keys,
                   int reps) {
  const size_t passes = (kMinOps + keys.size() - 1) / keys.size();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    uint64_t hits = 0;
    WallTimer timer;
    for (size_t p = 0; p < passes; ++p) {
      for (const uint64_t key : keys) {
        if (map.Find(key) != nullptr) ++hits;
      }
    }
    const double sec = timer.Seconds();
    g_sink = g_sink + hits;
    best = std::min(best, sec * 1e9 / (passes * keys.size()));
  }
  return best;
}

/// ns per clear+refill cycle of a workspace that retained capacity for n
/// entries but now holds a small working set (n/16 keys) — the pooled-query
/// shape where v1's O(capacity) wipe dominates: queries touch far fewer
/// nodes than the largest query the workspace ever served. The refill is
/// identical across flavors, so cycle-time differences are clear()
/// differences.
template <typename Map>
double MeasureClearReuse(Map& map, const std::vector<uint64_t>& keys,
                         int reps) {
  const size_t working_set =
      std::max<size_t>(16, std::min<size_t>(keys.size(), keys.size() / 16));
  const size_t kCycles = std::max<size_t>(64, kMinOps / working_set);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    map.clear();
    for (size_t i = 0; i < working_set; ++i) map[keys[i]] = i;  // warm state
    WallTimer timer;
    for (size_t c = 0; c < kCycles; ++c) {
      map.clear();
      for (size_t i = 0; i < working_set; ++i) map[keys[i]] = i;
    }
    const double sec = timer.Seconds();
    g_sink = g_sink + map.size();
    best = std::min(best, sec * 1e9 / kCycles);
  }
  return best;
}

/// ns per visited entry for a full ForEach sweep.
template <typename Map>
double MeasureIterate(const Map& map, int reps) {
  const size_t passes = (kMinOps + map.size() - 1) / std::max<size_t>(map.size(), 1);
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    uint64_t sum = 0;
    WallTimer timer;
    for (size_t p = 0; p < passes; ++p) {
      map.ForEach([&](uint64_t k, const uint64_t& v) { sum += k ^ v; });
    }
    const double sec = timer.Seconds();
    g_sink = g_sink + sum;
    best = std::min(best,
                    sec * 1e9 / (passes * std::max<size_t>(map.size(), 1)));
  }
  return best;
}

struct ProbeStats {
  double p50 = 0, p99 = 0;
  size_t max = 0;
};

/// Probe-length distribution of Find over every present key. Units are
/// whatever the map's FindProbeCost counts (v1: slots, v2: 16-slot groups)
/// — the detector compares a map against itself across sizes, never across
/// flavors.
template <typename Map>
ProbeStats MeasureProbes(const Map& map, const std::vector<uint64_t>& keys) {
  std::vector<size_t> costs;
  costs.reserve(keys.size());
  for (const uint64_t key : keys) costs.push_back(map.FindProbeCost(key));
  std::sort(costs.begin(), costs.end());
  ProbeStats stats;
  stats.p50 = costs[costs.size() / 2];
  stats.p99 = costs[(costs.size() * 99) / 100];
  stats.max = costs.back();
  return stats;
}

// ---------------------------------------------------------------------------
// Result table + verdicts
// ---------------------------------------------------------------------------

struct Row {
  std::string map;   ///< "v1" | "v2" | "std"
  std::string dist;  ///< "uniform" | "node_ids" | "packed_node_level"
  size_t size = 0;
  double insert_ns = 0, find_hit_ns = 0, find_miss_ns = 0;
  double find_mixed_ns = 0;
  double clear_reuse_ns = 0, iterate_ns = 0;
  bool has_probes = false;
  ProbeStats probes;
};

/// The accidentally-quadratic detector. A healthy open-addressing scheme
/// keeps probe lengths bounded by the load factor alone, so percentiles
/// must stay flat as the table grows 10x per step. A hash that degrades
/// (clustering, mixer blind spots for some key shape) shows up as p99
/// growing with n. Flag any step where p99 more than doubles (+1 slack for
/// integer percentiles of tiny tables), or any absolute blowup.
std::vector<std::string> DetectQuadraticProbes(const std::vector<Row>& rows) {
  std::vector<std::string> violations;
  for (const std::string map : {"v1", "v2"}) {
    for (const std::string dist :
         {"uniform", "node_ids", "packed_node_level"}) {
      const Row* prev = nullptr;
      for (const Row& row : rows) {
        if (row.map != map || row.dist != dist || !row.has_probes) continue;
        char buf[256];
        if (prev != nullptr && row.probes.p99 > 2 * prev->probes.p99 + 1) {
          std::snprintf(buf, sizeof(buf),
                        "%s/%s: p99 probe cost %.0f at size %zu vs %.0f at "
                        "size %zu (superlinear)",
                        map.c_str(), dist.c_str(), row.probes.p99, row.size,
                        prev->probes.p99, prev->size);
          violations.push_back(buf);
        }
        if (row.probes.max > 256) {
          std::snprintf(buf, sizeof(buf),
                        "%s/%s: max probe cost %zu at size %zu",
                        map.c_str(), dist.c_str(), row.probes.max, row.size);
          violations.push_back(buf);
        }
        prev = &row;
      }
    }
  }
  return violations;
}

/// v2 must be at least as fast as v1 on the hot-path ops at every cell.
std::vector<std::string> CompareV2AgainstV1(const std::vector<Row>& rows) {
  std::vector<std::string> violations;
  for (const Row& v2 : rows) {
    if (v2.map != "v2") continue;
    const Row* v1 = nullptr;
    for (const Row& row : rows) {
      if (row.map == "v1" && row.dist == v2.dist && row.size == v2.size) {
        v1 = &row;
        break;
      }
    }
    if (v1 == nullptr) continue;
    const struct {
      const char* op;
      double v1_ns, v2_ns;
    } cells[] = {
        {"insert", v1->insert_ns, v2.insert_ns},
        // The gating find cell is the interleaved hit/miss stream — the
        // hot-path shape (backward-walk accumulation first-touches roughly
        // half its lookups). Pure-hit and pure-miss stay as informational
        // rows: a low-load linear probe is near-unbeatable on L1-resident
        // pure hits, and pinning v2 to that cell would optimize the wrong
        // workload.
        {"find_mixed", v1->find_mixed_ns, v2.find_mixed_ns},
        {"clear_reuse", v1->clear_reuse_ns, v2.clear_reuse_ns},
    };
    for (const auto& cell : cells) {
      if (cell.v2_ns > cell.v1_ns) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s/size=%zu/%s: v2 %.2f ns vs v1 %.2f ns",
                      v2.dist.c_str(), v2.size, cell.op, cell.v2_ns,
                      cell.v1_ns);
        violations.push_back(buf);
      }
    }
  }
  return violations;
}

void WriteJson(const Args& args, const std::vector<size_t>& sizes,
               const std::vector<Row>& rows,
               const std::vector<std::string>& detector_violations,
               const std::vector<std::string>& comparison_violations) {
  FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"hashmap_micro\",\n");
  std::fprintf(out, "  \"schema_version\": 1,\n");
  std::fprintf(out, "  \"config\": {\"max_size\": %zu, \"reps\": %d, "
                    "\"sweeps\": %d, \"sizes\": [",
               args.max_size, args.reps, args.sweeps);
  for (size_t i = 0; i < sizes.size(); ++i) {
    std::fprintf(out, "%s%zu", i == 0 ? "" : ", ", sizes[i]);
  }
  std::fprintf(out, "]},\n");
  std::fprintf(out, "  \"runs\": [");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "%s\n    {\"map\": \"%s\", \"dist\": \"%s\", \"size\": %zu,\n"
                 "     \"ns_per_op\": {\"insert\": %.2f, \"find_hit\": %.2f, "
                 "\"find_miss\": %.2f, \"find_mixed\": %.2f, "
                 "\"clear_reuse\": %.2f, \"iterate\": %.2f}",
                 i == 0 ? "" : ",", r.map.c_str(), r.dist.c_str(), r.size,
                 r.insert_ns, r.find_hit_ns, r.find_miss_ns, r.find_mixed_ns,
                 r.clear_reuse_ns, r.iterate_ns);
    if (r.has_probes) {
      std::fprintf(out,
                   ",\n     \"probe_cost\": {\"p50\": %.0f, \"p99\": %.0f, "
                   "\"max\": %zu}",
                   r.probes.p50, r.probes.p99, r.probes.max);
    }
    std::fprintf(out, "}");
  }
  std::fprintf(out, "\n  ],\n");
  const auto write_verdict = [out](const char* name,
                                   const std::vector<std::string>& violations,
                                   bool trailing_comma) {
    std::fprintf(out, "  \"%s\": {\"pass\": %s, \"violations\": [", name,
                 violations.empty() ? "true" : "false");
    for (size_t i = 0; i < violations.size(); ++i) {
      std::fprintf(out, "%s\n    \"%s\"", i == 0 ? "" : ",",
                   violations[i].c_str());
    }
    std::fprintf(out, "%s]}%s\n", violations.empty() ? "" : "\n  ",
                 trailing_comma ? "," : "");
  };
  write_verdict("detector", detector_violations, true);
  write_verdict("comparison_v2_vs_v1", comparison_violations, false);
  std::fprintf(out, "}\n");
  std::fclose(out);
}

template <typename MakeMap>
Row MeasureMap(const std::string& name, MakeMap make_map,
               const std::string& dist, const KeySet& ks, int reps) {
  Row row;
  row.map = name;
  row.dist = dist;
  row.size = ks.present.size();
  row.insert_ns = MeasureInsert(make_map, ks.present, reps);

  auto map = make_map();
  for (size_t i = 0; i < ks.present.size(); ++i) map[ks.present[i]] = i;
  row.find_hit_ns = MeasureFind(map, ks.present, reps);
  row.find_miss_ns = MeasureFind(map, ks.absent, reps);
  // Interleaved hit/miss stream — the hot-path lookup mix.
  std::vector<uint64_t> mixed;
  mixed.reserve(ks.present.size() + ks.absent.size());
  for (size_t i = 0; i < ks.present.size(); ++i) {
    mixed.push_back(ks.present[i]);
    if (i < ks.absent.size()) mixed.push_back(ks.absent[i]);
  }
  row.find_mixed_ns = MeasureFind(map, mixed, reps);
  row.iterate_ns = MeasureIterate(map, reps);
  if constexpr (!std::is_same_v<decltype(map), StdMapAdapter>) {
    row.has_probes = true;
    row.probes = MeasureProbes(map, ks.present);
  }
  row.clear_reuse_ns = MeasureClearReuse(map, ks.present, reps);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  std::vector<size_t> sizes;
  for (size_t s = 100; s <= args.max_size; s *= 10) sizes.push_back(s);

  // Per-cell minima across full-matrix sweeps (see the file comment).
  // Probe stats are deterministic per cell — identical every sweep — so
  // the first sweep's values stand. std::unordered_map is measured in the
  // first sweep only: it is a reference row, not part of any verdict, and
  // it is the slowest third of a sweep.
  const auto merge_min = [](Row& merged, const Row& r) {
    merged.insert_ns = std::min(merged.insert_ns, r.insert_ns);
    merged.find_hit_ns = std::min(merged.find_hit_ns, r.find_hit_ns);
    merged.find_miss_ns = std::min(merged.find_miss_ns, r.find_miss_ns);
    merged.find_mixed_ns = std::min(merged.find_mixed_ns, r.find_mixed_ns);
    merged.clear_reuse_ns = std::min(merged.clear_reuse_ns, r.clear_reuse_ns);
    merged.iterate_ns = std::min(merged.iterate_ns, r.iterate_ns);
  };
  std::vector<Row> rows;
  for (int sweep = 0; sweep < args.sweeps; ++sweep) {
    size_t cell = 0;
    for (const std::string dist :
         {"uniform", "node_ids", "packed_node_level"}) {
      for (const size_t size : sizes) {
        Rng rng(size * 1000003 + 17);
        const KeySet ks = MakeKeys(dist, size, rng);
        Row v1 = MeasureMap("v1", [] { return FlatHashMap<uint64_t>(16); },
                            dist, ks, args.reps);
        Row v2 = MeasureMap("v2", [] { return FlatHashMap2<uint64_t>(16); },
                            dist, ks, args.reps);
        if (sweep == 0) {
          rows.push_back(std::move(v1));
          rows.push_back(std::move(v2));
          rows.push_back(MeasureMap("std", [] { return StdMapAdapter{}; },
                                    dist, ks, args.reps));
        } else {
          merge_min(rows[cell], v1);
          merge_min(rows[cell + 1], v2);
        }
        cell += 3;
      }
    }
    std::fprintf(stderr, "[hashmap_micro] sweep %d/%d done\n", sweep + 1,
                 args.sweeps);
  }
  for (const Row& r : rows) {
    std::printf(
        "[hashmap_micro] map=%-3s dist=%-17s size=%-7zu insert=%.2f "
        "find_hit=%.2f find_miss=%.2f find_mixed=%.2f clear_reuse=%.1f "
        "iterate=%.2f",
        r.map.c_str(), r.dist.c_str(), r.size, r.insert_ns, r.find_hit_ns,
        r.find_miss_ns, r.find_mixed_ns, r.clear_reuse_ns, r.iterate_ns);
    if (r.has_probes) {
      std::printf(" probe_p50=%.0f p99=%.0f max=%zu", r.probes.p50,
                  r.probes.p99, r.probes.max);
    }
    std::printf("\n");
  }
  std::fflush(stdout);

  const std::vector<std::string> detector = DetectQuadraticProbes(rows);
  const std::vector<std::string> comparison = CompareV2AgainstV1(rows);
  WriteJson(args, sizes, rows, detector, comparison);
  std::printf("wrote %s (%zu rows)\n", args.out.c_str(), rows.size());
  for (const auto& v : detector) {
    std::fprintf(stderr, "[detector] %s\n", v.c_str());
  }
  for (const auto& v : comparison) {
    std::fprintf(stderr, "[comparison] %s\n", v.c_str());
  }
  if (!detector.empty()) {
    std::fprintf(stderr, "probe detector FAILED\n");
    return 1;
  }
  std::printf("probe detector: PASS%s\n",
              comparison.empty() ? "; v2 >= v1 on all hot-path cells"
                                 : " (v2/v1 comparison has violations)");
  return 0;
}
