// Figure 3: Precision@50 vs query time, per dataset, parameter-swept.
//
// Paper shape to reproduce: PRSim reaches ~0.9+ precision faster than every
// competitor; on TW (heavy tail) the gap to ProbeSim is widest.

#include <cstdio>

#include "bench_common.h"
#include "eval/datasets.h"

int main() {
  using namespace prsim;
  using namespace prsim::bench;
  const BenchScale scale = GetBenchScale();

  // Below full scale, sweep only the two headline datasets (DB for the
  // index-size contrast, TW for the heavy-tailed hard case) so the binary
  // fits a single-core CI budget; at scale >= 1 sweep all four.
  std::vector<const char*> keys = {"DB", "TW"};
  if (scale.factor >= 1.0) keys = {"DB", "LJ", "IT", "TW"};
  for (const char* key : keys) {
    auto spec = FindDataset(key).ValueOrDie();
    Graph g = MakeDataset(spec, 0.2 * scale.factor).ValueOrDie();
    std::fprintf(stderr, "[figure3] %s: n=%u m=%llu\n", key, g.n(),
                 static_cast<unsigned long long>(g.m()));
    auto rows = RunSweep(g, BuildParameterSweep(g, false, 11),
                         scale.query_count, 50, scale.budget_seconds, 2000);
    for (const auto& row : rows) PrintRow("figure3", key, row);
  }
  return 0;
}
