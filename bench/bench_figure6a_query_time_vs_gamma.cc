// Figure 6(a): query time vs out-degree power-law exponent gamma, all
// algorithms at fixed parameters (Section 5.3: eps_a = 0.25 for
// SLING/ProbeSim/PRSim, Rg=300/Rq=40 for TSF, r=100/t=10 for READS,
// T=3/1/h=100 for TopSim), on generated power-law graphs with n = 1e5,
// d̄ = 10, gamma in 1..9.
//
// Paper shape to reproduce: every algorithm's query time decays roughly like
// 1/gamma on a log-log plot and flattens past gamma ~ 4 (Conjecture 1).

#include <cstdio>

#include "bench_common.h"
#include "gen/chung_lu.h"
#include "util/timer.h"

int main() {
  using namespace prsim;
  using namespace prsim::bench;
  const BenchScale scale = GetBenchScale();
  const NodeId n = static_cast<NodeId>(50000 * scale.factor);

  for (double gamma : {1.1, 1.5, 2.0, 3.0, 5.0, 9.0}) {
    ChungLuOptions gen;
    gen.n = n;
    gen.avg_degree = 10;
    gen.gamma_out = gamma;
    gen.undirected = true;  // paper uses undirected hyperbolic graphs here
    gen.seed = 600 + static_cast<uint64_t>(gamma * 10);
    Graph g = GenerateChungLu(gen).ValueOrDie();
    std::fprintf(stderr, "[figure6a] gamma=%.1f n=%u m=%llu\n", gamma, g.n(),
                 static_cast<unsigned long long>(g.m()));

    auto configs = BuildFixedConfigs(g, 19);
    std::vector<EvalEntry> entries;
    for (auto& config : configs) {
      WallTimer timer;
      Status st = config.instance->Preprocess();
      if (!st.ok()) {
        std::fprintf(stderr, "  [skip] %s: %s\n", config.algo.c_str(),
                     st.ToString().c_str());
        continue;
      }
      const double prep = timer.Seconds();
      // Pure timing experiment: no pooling needed, just run the queries,
      // with a per-cell wall-clock cutoff like the paper's run budget.
      const auto queries = SampleQueryNodes(g, scale.query_count, 77);
      WallTimer query_timer;
      uint32_t answered = 0;
      for (NodeId u : queries) {
        config.instance->Query(u);
        ++answered;
        if (query_timer.Seconds() > 45.0) break;
      }
      std::printf("[figure6a] gamma=%.1f algo=%s query_s=%.5f "
                  "preprocess_s=%.2f index_mb=%.2f queries=%u\n",
                  gamma, config.algo.c_str(),
                  query_timer.Seconds() / answered, prep,
                  config.instance->IndexBytes() / 1e6, answered);
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape: query_s decreasing in gamma for every "
              "algorithm, flattening past gamma ~ 4.\n");
  return 0;
}
