#include "bench_common.h"

#include <cstdio>

#include "baselines/probesim.h"
#include "baselines/reads.h"
#include "baselines/sling.h"
#include "baselines/topsim.h"
#include "baselines/tsf.h"
#include "core/prsim.h"
#include "eval/datasets.h"
#include "util/timer.h"

namespace prsim::bench {

namespace {

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

std::vector<SweepConfig> BuildParameterSweep(const Graph& graph,
                                             bool index_based_only,
                                             uint64_t seed) {
  std::vector<SweepConfig> configs;

  // PRSim: eps sweep (Section 5.2 uses {0.5, 0.1, 0.05, 0.01, 0.005};
  // the two smallest are trimmed to keep laptop runtimes bounded).
  for (double eps : {0.5, 0.1, 0.05, 0.02}) {
    PRSimOptions options;
    options.eps = eps;
    options.seed = seed;
    configs.push_back({"PRSim", "eps=" + FormatDouble(eps),
                       std::make_unique<PRSim>(graph, options), true});
  }

  // SLING: eps_a sweep; small eps on large graphs exhausts the tuple budget
  // and is skipped at preprocessing, mirroring the paper's omissions.
  for (double eps : {0.5, 0.1, 0.05}) {
    SlingOptions options;
    options.eps = eps;
    options.seed = seed;
    options.max_index_tuples = 60000000;
    configs.push_back({"SLING", "eps=" + FormatDouble(eps),
                       std::make_unique<Sling>(graph, options), true});
  }

  // TSF: (Rg, Rq) sweep.
  for (auto [rg, rq] : std::vector<std::pair<uint32_t, uint32_t>>{
           {10, 2}, {100, 20}, {300, 40}}) {
    TsfOptions options;
    options.rg = rg;
    options.rq = rq;
    options.seed = seed;
    configs.push_back({"TSF",
                       "Rg=" + std::to_string(rg) + ",Rq=" +
                           std::to_string(rq),
                       std::make_unique<Tsf>(graph, options), true});
  }

  // READS: (r, t) sweep.
  for (auto [r, t] : std::vector<std::pair<uint32_t, uint32_t>>{
           {10, 2}, {50, 5}, {100, 10}, {200, 10}}) {
    ReadsOptions options;
    options.r = r;
    options.t = t;
    options.seed = seed;
    options.max_index_entries = 100000000;
    configs.push_back({"READS",
                       "r=" + std::to_string(r) + ",t=" + std::to_string(t),
                       std::make_unique<Reads>(graph, options), true});
  }

  if (!index_based_only) {
    // ProbeSim: eps sweep.
    for (double eps : {0.5, 0.1, 0.05}) {
      ProbeSimOptions options;
      options.eps = eps;
      options.seed = seed;
      configs.push_back({"ProbeSim", "eps=" + FormatDouble(eps),
                         std::make_unique<ProbeSim>(graph, options), false});
    }
    // TopSim: (T, 1/h) sweep.
    for (auto [depth, cap] : std::vector<std::pair<uint32_t, uint32_t>>{
             {1, 10}, {3, 100}, {3, 1000}}) {
      TopSimOptions options;
      options.depth = depth;
      options.degree_cap = cap;
      options.seed = seed;
      configs.push_back({"TopSim",
                         "T=" + std::to_string(depth) + ",1/h=" +
                             std::to_string(cap),
                         std::make_unique<TopSim>(graph, options), false});
    }
  }
  return configs;
}

std::vector<SweepConfig> BuildFixedConfigs(const Graph& graph, uint64_t seed) {
  std::vector<SweepConfig> configs;
  {
    PRSimOptions options;
    options.eps = 0.25;
    options.seed = seed;
    configs.push_back({"PRSim", "eps=0.25",
                       std::make_unique<PRSim>(graph, options), true});
  }
  {
    SlingOptions options;
    options.eps = 0.25;
    options.seed = seed;
    configs.push_back({"SLING", "eps=0.25",
                       std::make_unique<Sling>(graph, options), true});
  }
  {
    TsfOptions options;  // paper defaults Rg=300, Rq=40
    options.seed = seed;
    configs.push_back({"TSF", "Rg=300,Rq=40",
                       std::make_unique<Tsf>(graph, options), true});
  }
  {
    ReadsOptions options;  // paper defaults r=100, t=10
    options.seed = seed;
    configs.push_back({"READS", "r=100,t=10",
                       std::make_unique<Reads>(graph, options), true});
  }
  {
    ProbeSimOptions options;
    options.eps = 0.25;
    options.seed = seed;
    configs.push_back({"ProbeSim", "eps=0.25",
                       std::make_unique<ProbeSim>(graph, options), false});
  }
  {
    TopSimOptions options;  // paper defaults T=3, 1/h=100
    options.seed = seed;
    configs.push_back({"TopSim", "T=3,1/h=100",
                       std::make_unique<TopSim>(graph, options), false});
  }
  return configs;
}

std::vector<SweepRow> RunSweep(const Graph& graph,
                               std::vector<SweepConfig> configs,
                               uint32_t query_count, uint32_t k,
                               double per_algo_budget_seconds, uint64_t seed) {
  std::vector<EvalEntry> entries;
  std::vector<const SweepConfig*> kept;
  std::vector<double> preprocess_seconds;
  for (auto& config : configs) {
    WallTimer timer;
    Status st = config.instance->Preprocess();
    if (!st.ok()) {
      std::fprintf(stderr, "  [skip] %s(%s): %s\n", config.algo.c_str(),
                   config.param.c_str(), st.ToString().c_str());
      continue;
    }
    kept.push_back(&config);
    preprocess_seconds.push_back(timer.Seconds());
    entries.push_back({config.algo + "(" + config.param + ")",
                       config.instance.get(), timer.Seconds()});
  }

  GroundTruthOptions gt_options;
  gt_options.seed = seed + 1;
  GroundTruth truth(graph, gt_options);
  truth.Prepare().Abort();

  PoolingOptions pooling;
  pooling.k = k;
  pooling.per_algorithm_budget_seconds = per_algo_budget_seconds;
  const auto queries = SampleQueryNodes(graph, query_count, seed + 2);
  const auto metrics = RunPooledEvaluation(graph, entries, truth, queries,
                                           pooling);

  std::vector<SweepRow> rows;
  for (size_t i = 0; i < metrics.size(); ++i) {
    SweepRow row;
    row.algo = kept[i]->algo;
    row.param = kept[i]->param;
    row.query_seconds = metrics[i].mean_query_seconds;
    row.avg_error = metrics[i].avg_error_at_k;
    row.precision = metrics[i].precision_at_k;
    row.index_bytes = metrics[i].index_bytes;
    row.preprocess_seconds = preprocess_seconds[i];
    row.index_based = kept[i]->index_based;
    rows.push_back(row);
  }
  return rows;
}

void PrintRow(const std::string& figure, const std::string& dataset,
              const SweepRow& row) {
  std::printf(
      "[%s] dataset=%s algo=%s param=%s query_s=%.5f avg_err@50=%.5f "
      "precision@50=%.3f index_mb=%.2f preprocess_s=%.2f\n",
      figure.c_str(), dataset.c_str(), row.algo.c_str(), row.param.c_str(),
      row.query_seconds, row.avg_error, row.precision,
      row.index_bytes / 1e6, row.preprocess_seconds);
  std::fflush(stdout);
}

BenchScale GetBenchScale() {
  BenchScale scale;
  scale.factor = BenchScaleFromEnv();
  if (scale.factor < 1.0) {
    scale.query_count = 3;
    scale.budget_seconds = 20;
  } else if (scale.factor > 1.0) {
    scale.query_count = 12;
    scale.budget_seconds = 300;
  }
  return scale;
}

}  // namespace prsim::bench
