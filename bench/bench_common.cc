#include "bench_common.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "core/artifact.h"
#include "core/engine_registry.h"
#include "eval/datasets.h"
#include "util/cache_dir.h"
#include "util/parse.h"
#include "util/serde.h"
#include "util/timer.h"

namespace prsim::bench {

namespace {

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

/// Directory for cached index artifacts, created on demand; "" = disabled
/// (PRSIM_BENCH_CACHE=0, or the directory cannot be created).
std::string BenchCacheDir() {
  const char* toggle = std::getenv("PRSIM_BENCH_CACHE");
  if (toggle != nullptr && std::string(toggle) == "0") return "";
  const char* configured = std::getenv("PRSIM_BENCH_CACHE_DIR");
  std::filesystem::path dir =
      configured != nullptr && configured[0] != '\0'
          ? std::filesystem::path(configured)
          : std::filesystem::temp_directory_path() / "prsim-bench-cache";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";
  return dir.string();
}

/// Cache file for one (graph, engine, params) triple. The artifact format
/// version is part of the name so a cache directory shared across builds
/// never hands a v1 artifact to a v2 expectation (or vice versa); the
/// engine's own fingerprint check re-validates on load, so a hash
/// collision degrades to a rebuild, never to a wrong index.
std::string CachePath(const std::string& dir, uint64_t graph_checksum,
                      const SweepConfig& config) {
  char suffix[48];
  std::snprintf(suffix, sizeof(suffix), "-%016" PRIx64 ".v%u.idx",
                HashString(config.cache_key) ^ graph_checksum,
                kArtifactVersion);
  return dir + "/" + config.engine + suffix;
}

/// Cache size cap in bytes: PRSIM_BENCH_CACHE_LIMIT_MB (default 2048 MB).
/// Parameter sweeps write one artifact per configuration, so the cache is
/// trimmed back to the cap after each sweep with mtime-LRU order — loads
/// Touch their artifact, keeping hot configurations resident.
uint64_t BenchCacheLimitBytes() {
  constexpr uint64_t kDefaultMb = 2048;
  constexpr uint64_t kMaxMb = UINT64_MAX >> 20;  // saturate, don't wrap
  uint64_t mb = kDefaultMb;
  if (const char* env = std::getenv("PRSIM_BENCH_CACHE_LIMIT_MB");
      env != nullptr && env[0] != '\0') {
    if (uint64_t value = 0; ParseUint64(env, &value)) {
      mb = std::min(value, kMaxMb);
    }
  }
  return mb * 1024 * 1024;
}

}  // namespace

SweepConfig MakeSweepConfig(const Graph& graph, const std::string& engine,
                            const std::string& params, uint64_t seed,
                            const std::string& display_param) {
  const EngineRegistry& registry = EngineRegistry::Global();
  const EngineInfo* info = registry.Find(engine);
  PRSIM_CHECK(info != nullptr) << "unknown engine: " << engine;
  auto config = EngineConfig::Parse(params);
  config.status().Abort();
  config.ValueOrDie().SetOrReplace("seed", std::to_string(seed));
  auto instance = registry.Create(engine, graph, config.ValueOrDie());
  instance.status().Abort();
  return {info->display_name, display_param.empty() ? params : display_param,
          std::move(instance).ValueOrDie(), info->index_based, info->name,
          info->has_persistent_index ? config.ValueOrDie().ToString() : ""};
}

std::vector<SweepConfig> BuildParameterSweep(const Graph& graph,
                                             bool index_based_only,
                                             uint64_t seed) {
  std::vector<SweepConfig> configs;

  // PRSim: eps sweep (Section 5.2 uses {0.5, 0.1, 0.05, 0.01, 0.005};
  // the two smallest are trimmed to keep laptop runtimes bounded).
  for (double eps : {0.5, 0.1, 0.05, 0.02}) {
    configs.push_back(
        MakeSweepConfig(graph, "prsim", "eps=" + FormatDouble(eps), seed));
  }

  // SLING: eps_a sweep; small eps on large graphs exhausts the tuple budget
  // and is skipped at preprocessing, mirroring the paper's omissions.
  for (double eps : {0.5, 0.1, 0.05}) {
    configs.push_back(MakeSweepConfig(
        graph, "sling",
        "eps=" + FormatDouble(eps) + ",max_tuples=60000000", seed,
        "eps=" + FormatDouble(eps)));
  }

  // TSF: (Rg, Rq) sweep.
  for (auto [rg, rq] : std::vector<std::pair<uint32_t, uint32_t>>{
           {10, 2}, {100, 20}, {300, 40}}) {
    configs.push_back(MakeSweepConfig(
        graph, "tsf",
        "rg=" + std::to_string(rg) + ",rq=" + std::to_string(rq), seed,
        "Rg=" + std::to_string(rg) + ",Rq=" + std::to_string(rq)));
  }

  // READS: (r, t) sweep.
  for (auto [r, t] : std::vector<std::pair<uint32_t, uint32_t>>{
           {10, 2}, {50, 5}, {100, 10}, {200, 10}}) {
    configs.push_back(MakeSweepConfig(
        graph, "reads",
        "r=" + std::to_string(r) + ",t=" + std::to_string(t) +
            ",max_entries=100000000",
        seed, "r=" + std::to_string(r) + ",t=" + std::to_string(t)));
  }

  if (!index_based_only) {
    // ProbeSim: eps sweep.
    for (double eps : {0.5, 0.1, 0.05}) {
      configs.push_back(MakeSweepConfig(graph, "probesim",
                                        "eps=" + FormatDouble(eps), seed));
    }
    // TopSim: (T, 1/h) sweep.
    for (auto [depth, cap] : std::vector<std::pair<uint32_t, uint32_t>>{
             {1, 10}, {3, 100}, {3, 1000}}) {
      configs.push_back(MakeSweepConfig(
          graph, "topsim",
          "depth=" + std::to_string(depth) + ",degree_cap=" +
              std::to_string(cap),
          seed,
          "T=" + std::to_string(depth) + ",1/h=" + std::to_string(cap)));
    }
  }
  return configs;
}

std::vector<SweepConfig> BuildFixedConfigs(const Graph& graph, uint64_t seed) {
  // Fixed Section 5.3 settings; TSF/READS/TopSim ride on their paper-default
  // options (Rg=300, Rq=40; r=100, t=10; T=3, 1/h=100).
  std::vector<SweepConfig> configs;
  configs.push_back(MakeSweepConfig(graph, "prsim", "eps=0.25", seed));
  configs.push_back(MakeSweepConfig(graph, "sling", "eps=0.25", seed));
  configs.push_back(MakeSweepConfig(graph, "tsf", "", seed, "Rg=300,Rq=40"));
  configs.push_back(MakeSweepConfig(graph, "reads", "", seed, "r=100,t=10"));
  configs.push_back(MakeSweepConfig(graph, "probesim", "eps=0.25", seed));
  configs.push_back(
      MakeSweepConfig(graph, "topsim", "", seed, "T=3,1/h=100"));
  return configs;
}

std::vector<SweepRow> RunSweep(const Graph& graph,
                               std::vector<SweepConfig> configs,
                               uint32_t query_count, uint32_t k,
                               double per_algo_budget_seconds, uint64_t seed) {
  const std::string cache_dir = BenchCacheDir();
  // One O(n + m) checksum per sweep, not one per config (SaveIndex /
  // LoadIndex still hash internally for their fingerprints).
  const uint64_t graph_checksum =
      cache_dir.empty() ? 0 : graph.Checksum();
  std::vector<EvalEntry> entries;
  std::vector<const SweepConfig*> kept;
  std::vector<double> preprocess_seconds;
  std::vector<bool> reused_cache;
  for (auto& config : configs) {
    std::string cache_path;
    if (!cache_dir.empty() && !config.cache_key.empty()) {
      cache_path = CachePath(cache_dir, graph_checksum, config);
    }
    bool reused = false;
    double seconds = 0;
    if (!cache_path.empty()) {
      WallTimer load_timer;
      if (Status load = config.instance->LoadIndex(cache_path); load.ok()) {
        reused = true;
        seconds = load_timer.Seconds();
        // Mark most-recently-used so LRU eviction keeps hot configs.
        TouchFile(cache_path);
        std::fprintf(stderr,
                     "  [cache] %s(%s): reused index %s (loaded in %.2fs)\n",
                     config.algo.c_str(), config.param.c_str(),
                     cache_path.c_str(), seconds);
      }
    }
    if (!reused) {
      WallTimer build_timer;
      Status st = config.instance->Preprocess();
      if (!st.ok()) {
        std::fprintf(stderr, "  [skip] %s(%s): %s\n", config.algo.c_str(),
                     config.param.c_str(), st.ToString().c_str());
        continue;
      }
      // Capture the build time before the artifact write: preprocess_s is
      // the paper's preprocessing metric, and serializing a large index is
      // not part of it.
      seconds = build_timer.Seconds();
      if (!cache_path.empty()) {
        if (Status save = config.instance->SaveIndex(cache_path);
            !save.ok()) {
          std::fprintf(stderr, "  [cache] %s(%s): save failed: %s\n",
                       config.algo.c_str(), config.param.c_str(),
                       save.ToString().c_str());
        }
      }
    }
    kept.push_back(&config);
    preprocess_seconds.push_back(seconds);
    reused_cache.push_back(reused);
    entries.push_back({config.algo + "(" + config.param + ")",
                       config.instance.get(), seconds});
  }
  if (!cache_dir.empty()) {
    // Trim the cache back to its byte cap, oldest-mtime first; the
    // artifacts this sweep just wrote or touched are the newest and go
    // last.
    const CacheEvictionStats evicted =
        EvictLruFiles(cache_dir, BenchCacheLimitBytes());
    if (evicted.files_removed > 0) {
      std::fprintf(stderr,
                   "  [cache] evicted %zu file(s), %.1f MB (cache now "
                   "%.1f MB)\n",
                   evicted.files_removed, evicted.bytes_removed / 1e6,
                   evicted.bytes_remaining / 1e6);
    }
  }

  GroundTruthOptions gt_options;
  gt_options.seed = seed + 1;
  GroundTruth truth(graph, gt_options);
  truth.Prepare().Abort();

  PoolingOptions pooling;
  pooling.k = k;
  pooling.per_algorithm_budget_seconds = per_algo_budget_seconds;
  const auto queries = SampleQueryNodes(graph, query_count, seed + 2);
  const auto metrics = RunPooledEvaluation(graph, entries, truth, queries,
                                           pooling);

  std::vector<SweepRow> rows;
  for (size_t i = 0; i < metrics.size(); ++i) {
    SweepRow row;
    row.algo = kept[i]->algo;
    row.param = kept[i]->param;
    row.query_seconds = metrics[i].mean_query_seconds;
    row.avg_error = metrics[i].avg_error_at_k;
    row.precision = metrics[i].precision_at_k;
    row.index_bytes = metrics[i].index_bytes;
    row.preprocess_seconds = preprocess_seconds[i];
    row.index_based = kept[i]->index_based;
    row.from_cache = reused_cache[i];
    rows.push_back(row);
  }
  return rows;
}

void PrintRow(const std::string& figure, const std::string& dataset,
              const SweepRow& row) {
  std::printf(
      "[%s] dataset=%s algo=%s param=%s query_s=%.5f avg_err@50=%.5f "
      "precision@50=%.3f index_mb=%.2f preprocess_s=%.2f cached=%d\n",
      figure.c_str(), dataset.c_str(), row.algo.c_str(), row.param.c_str(),
      row.query_seconds, row.avg_error, row.precision,
      row.index_bytes / 1e6, row.preprocess_seconds, row.from_cache ? 1 : 0);
  std::fflush(stdout);
}

BenchScale GetBenchScale() {
  BenchScale scale;
  scale.factor = BenchScaleFromEnv();
  if (scale.factor < 1.0) {
    scale.query_count = 3;
    scale.budget_seconds = 20;
  } else if (scale.factor > 1.0) {
    scale.query_count = 12;
    scale.budget_seconds = 300;
  }
  return scale;
}

}  // namespace prsim::bench
