// Ablation: the j0 hub-count tradeoff (Section 3.3).
//
// PRSim's index stores backward-search reserves for the j0 highest
// reverse-PageRank nodes; j0 trades index size against query-time backward
// walks. This ablation sweeps j0 on a small power-law graph with an exact
// oracle, reporting index size, query time, per-query work split
// (index reads vs backward-walk increments), and true max error — verifying
// that accuracy is j0-invariant while cost shifts between phases.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baselines/power_method.h"
#include "core/prsim.h"
#include "eval/pooling.h"
#include "gen/chung_lu.h"
#include "util/timer.h"

int main() {
  using namespace prsim;

  ChungLuOptions gen;
  gen.n = 3000;
  gen.avg_degree = 8;
  gen.gamma_out = 1.7;
  gen.seed = 31;
  Graph g = GenerateChungLu(gen).ValueOrDie();

  PowerMethodOptions pm;
  PowerMethodSimRank oracle(g, pm);
  oracle.Preprocess().Abort();

  const auto queries = SampleQueryNodes(g, 8, 44);
  std::printf("[ablation-hubs] n=%u m=%llu eps=0.05\n", g.n(),
              static_cast<unsigned long long>(g.m()));
  std::printf("%-8s %-12s %-12s %-14s %-16s %-10s\n", "j0", "index_mb",
              "query_ms", "hub_tuples", "bw_increments", "max_err");

  for (uint32_t j0 : {1u, 8u, 55u, 200u, 1000u, 3000u}) {
    PRSimOptions options;
    options.eps = 0.05;
    options.alpha = 6;
    options.j0 = j0;
    options.seed = 9;
    PRSim prsim(g, options);
    prsim.Preprocess().Abort();

    double max_err = 0;
    uint64_t tuples = 0, increments = 0;
    WallTimer timer;
    for (NodeId u : queries) {
      ScoreList result = prsim.Query(u);
      tuples += prsim.last_query_cost().index_tuples_read;
      increments += prsim.last_query_cost().backward_increments;
      for (NodeId v = 0; v < g.n(); ++v) {
        max_err = std::max(
            max_err, std::abs(ScoreOf(result, v) - oracle.SimRank(u, v)));
      }
    }
    std::printf("%-8u %-12.3f %-12.2f %-14llu %-16llu %-10.4f\n", j0,
                prsim.IndexBytes() / 1e6,
                timer.Seconds() * 1000 / queries.size(),
                static_cast<unsigned long long>(tuples / queries.size()),
                static_cast<unsigned long long>(increments / queries.size()),
                max_err);
    std::fflush(stdout);
  }
  std::printf("\nexpected: index_mb grows with j0, bw_increments shrink, "
              "max_err stays ~eps throughout.\n");
  return 0;
}
