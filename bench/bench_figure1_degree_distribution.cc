// Figure 1: out-degree CCDFs of IT-2004 vs Twitter.
//
// The paper plots the two CCDFs on a log-log scale to show IT's tail decaying
// far faster than Twitter's (the "locally sparse" vs "locally dense"
// distinction that Conjecture 1 formalizes via gamma). This bench prints the
// same two series for the synthetic analogs.

#include <cstdio>

#include "eval/datasets.h"
#include "graph/stats.h"

int main() {
  using namespace prsim;
  const double scale = BenchScaleFromEnv() * 0.4;

  for (const char* key : {"IT", "TW"}) {
    Graph g = MakeDataset(FindDataset(key).ValueOrDie(), scale).ValueOrDie();
    auto ccdf = DegreeCcdf(g, DegreeDirection::kOut);
    auto fit = FitCumulativePowerLaw(ccdf);
    std::printf("[figure1] dataset=%s n=%u m=%llu fitted_gamma=%.2f "
                "(r2=%.3f)\n",
                key, g.n(), static_cast<unsigned long long>(g.m()), fit.gamma,
                fit.r_squared);
    // Log-spaced sample of the CCDF (degree, #nodes with out-degree >= k).
    uint64_t next_degree = 1;
    for (const auto& point : ccdf) {
      if (point.degree < next_degree) continue;
      std::printf("[figure1] dataset=%s degree=%llu count=%llu "
                  "fraction=%.3e\n",
                  key, static_cast<unsigned long long>(point.degree),
                  static_cast<unsigned long long>(point.count),
                  point.fraction);
      next_degree = point.degree * 2;
    }
  }
  std::printf("\nexpected shape: TW's curve extends orders of magnitude "
              "further right (heavier tail) than IT's at equal n, m.\n");
  return 0;
}
