// Open-loop TCP serving throughput: the service-level companion to
// bench_query_latency's engine-level numbers.
//
// The bench stands up the real network stack — TcpServer over a
// QueryService (unsharded) and over a ShardRouter on a freshly built
// 3-shard bundle — and drives it with an open-loop load generator:
// requests fire on a fixed arrival schedule t_i = i / target_qps across
// `--connections` persistent binary-framing connections, regardless of how
// fast responses come back, so a saturated server shows up as queueing
// latency instead of a silently slowed request rate (the classic
// closed-loop coordinated-omission trap). Sources are drawn from a
// deterministic Zipf(s) distribution (util/zipf.h) — skewed traffic, like
// real workloads on power-law graphs — and latency is measured from each
// request's *scheduled* send time, on the wire, through the full
// frame-encode / dispatch / positional-reseed / frame-decode path.
//
// For every (backend, target_qps) cell the JSON records the sustained
// completion rate, the achieved fraction of the target, and scheduled-time
// p50/p95/p99. Results land in BENCH_serve_throughput.json (committed at
// the repo root; CI regenerates a small variant per commit and checks the
// schema).
//
// Usage: bench_serve_throughput
//   [--n N] [--degree D] [--eps E] [--k K] [--zipf-s S]
//   [--connections C] [--seconds SEC] [--qps-list 50,100,200]
//   [--workdir DIR] [--out PATH] [--port P]
// Defaults: n=4000, degree=8, eps=0.2, k=10, zipf-s=1.0, connections=4,
//           seconds=5, qps-list=50,100,200, workdir=bench_serve_work,
//           out=BENCH_serve_throughput.json.
// With --port the generator drives an already-running `serve --listen`
// process on 127.0.0.1:P instead of the self-contained backends (one row,
// backend "external"; --n then only sizes the Zipf source domain).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/query_service.h"
#include "core/shard_manifest.h"
#include "core/shard_router.h"
#include "gen/chung_lu.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "net/frame.h"
#include "net/tcp_server.h"
#include "util/percentiles.h"
#include "util/rng.h"
#include "util/socket.h"
#include "util/zipf.h"

namespace {

using namespace prsim;

struct Args {
  uint32_t n = 4000;
  double degree = 8;
  double eps = 0.2;
  uint32_t k = 10;
  double zipf_s = 1.0;
  uint32_t connections = 4;
  double seconds = 5;
  std::vector<double> qps_list = {50, 100, 200};
  std::string workdir = "bench_serve_work";
  std::string out = "BENCH_serve_throughput.json";
  /// When set, drive an external server instead of the in-process ones.
  uint32_t port = 0;
};

bool ParseQpsList(const std::string& value, std::vector<double>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < value.size()) {
    size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    const double qps = std::strtod(value.substr(pos, comma - pos).c_str(),
                                   nullptr);
    if (qps <= 0) return false;
    out->push_back(qps);
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s expects a value\n", flag.c_str());
      return false;
    }
    const char* value = argv[i + 1];
    if (flag == "--n") {
      args->n = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--degree") {
      args->degree = std::strtod(value, nullptr);
    } else if (flag == "--eps") {
      args->eps = std::strtod(value, nullptr);
    } else if (flag == "--k") {
      args->k = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--zipf-s") {
      args->zipf_s = std::strtod(value, nullptr);
    } else if (flag == "--connections") {
      args->connections =
          static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--seconds") {
      args->seconds = std::strtod(value, nullptr);
    } else if (flag == "--qps-list") {
      if (!ParseQpsList(value, &args->qps_list)) {
        std::fprintf(stderr, "--qps-list wants comma-separated positives\n");
        return false;
      }
    } else if (flag == "--workdir") {
      args->workdir = value;
    } else if (flag == "--out") {
      args->out = value;
    } else if (flag == "--port") {
      args->port = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->n < 100 || args->connections == 0 || args->seconds <= 0) {
    std::fprintf(stderr,
                 "--n must be >= 100, --connections >= 1, --seconds > 0\n");
    return false;
  }
  return true;
}

struct LoadRow {
  std::string backend;  ///< "unsharded", "sharded", or "external"
  uint32_t shards = 1;
  double target_qps = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double sustained_qps = 0;
  double achieved_of_target = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
};

/// One open-loop run against 127.0.0.1:port. Request i is scheduled at
/// start + i/target_qps and routed round-robin to one of `connections`
/// persistent binary-framing connections; a per-connection writer paces
/// the sends while a reader matches responses (in submission order — the
/// protocol's guarantee) against scheduled times. Deterministic request
/// stream: sources come from ZipfSampler(n, s) under a fixed seed.
LoadRow RunLoad(uint16_t port, const Args& args, double target_qps) {
  LoadRow row;
  row.target_qps = target_qps;
  const auto total =
      static_cast<uint64_t>(std::max(1.0, target_qps * args.seconds));
  row.requests = total;

  // Pre-draw the whole request stream so the hot loop only paces + writes.
  ZipfSampler zipf(args.n, args.zipf_s);
  Rng rng(20250808);
  std::vector<NodeId> sources(total);
  for (auto& source : sources) source = zipf.Sample(rng);

  const uint32_t connections =
      static_cast<uint32_t>(std::min<uint64_t>(args.connections, total));
  struct Connection {
    UniqueFd fd;
    std::vector<uint64_t> request_indices;
    std::vector<double> latencies;
    uint64_t errors = 0;
    bool transport_failed = false;
    std::thread writer, reader;
  };
  std::vector<Connection> conns(connections);
  for (uint64_t i = 0; i < total; ++i) {
    conns[i % connections].request_indices.push_back(i);
  }
  for (auto& conn : conns) {
    auto fd = ConnectTcp(port);
    fd.status().Abort();
    conn.fd = std::move(fd).ValueOrDie();
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const auto scheduled_at = [&](uint64_t i) {
    return start + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(i / target_qps));
  };

  for (auto& conn : conns) {
    conn.writer = std::thread([&conn, &args, &sources, &scheduled_at] {
      std::vector<char> payload;
      if (!WriteAll(conn.fd.get(), net::kBinaryMagic,
                    sizeof(net::kBinaryMagic))
               .ok()) {
        conn.transport_failed = true;
        return;
      }
      for (const uint64_t i : conn.request_indices) {
        std::this_thread::sleep_until(scheduled_at(i));
        net::WireRequest request;
        request.source = sources[i];
        request.k = args.k;
        net::EncodeRequest(request, &payload);
        if (!net::WriteFrame(conn.fd.get(), payload).ok()) {
          conn.transport_failed = true;
          return;
        }
      }
    });
    conn.reader = std::thread([&conn, &scheduled_at] {
      std::vector<char> payload;
      conn.latencies.reserve(conn.request_indices.size());
      for (const uint64_t i : conn.request_indices) {
        bool eof = false;
        if (!net::ReadFrame(conn.fd.get(), &payload, &eof).ok() || eof) {
          conn.transport_failed = true;
          return;
        }
        auto response = net::DecodeResponse(payload);
        if (!response.ok()) {
          conn.transport_failed = true;
          return;
        }
        if (response.ValueOrDie().status_code != 0) ++conn.errors;
        // Open-loop latency: from the request's *scheduled* send time, so
        // server-side queueing under overload is charged to the latency
        // distribution instead of silently stretching the run.
        const std::chrono::duration<double> waited =
            Clock::now() - scheduled_at(i);
        conn.latencies.push_back(waited.count());
      }
    });
  }

  std::vector<double> latencies;
  latencies.reserve(total);
  for (auto& conn : conns) {
    conn.writer.join();
    conn.reader.join();
    row.errors += conn.errors;
    if (conn.transport_failed) {
      std::fprintf(stderr, "load connection failed mid-run\n");
      std::exit(1);
    }
    latencies.insert(latencies.end(), conn.latencies.begin(),
                     conn.latencies.end());
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  row.sustained_qps = static_cast<double>(total) / elapsed.count();
  row.achieved_of_target = row.sustained_qps / target_qps;
  std::sort(latencies.begin(), latencies.end());
  row.p50_ms = SortedQuantile(latencies, 0.50) * 1e3;
  row.p95_ms = SortedQuantile(latencies, 0.95) * 1e3;
  row.p99_ms = SortedQuantile(latencies, 0.99) * 1e3;
  return row;
}

net::TcpServerOptions ServerOptions(const Args& args, NodeId n) {
  net::TcpServerOptions options;
  options.port = 0;  // ephemeral
  options.node_count = n;
  options.default_k = args.k;
  options.max_connections = args.connections + 4;
  return options;
}

void WriteJson(const Args& args, const Graph* graph,
               const std::vector<LoadRow>& rows) {
  FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"serve_throughput\",\n");
  std::fprintf(out, "  \"schema_version\": 1,\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"config\": {\"n\": %u, \"degree\": %g, \"eps\": %g, "
               "\"k\": %u, \"zipf_s\": %g, \"connections\": %u, "
               "\"seconds\": %g},\n",
               args.n, args.degree, args.eps, args.k, args.zipf_s,
               args.connections, args.seconds);
  if (graph != nullptr) {
    std::fprintf(out, "  \"graph\": {\"n\": %u, \"m\": %llu},\n", graph->n(),
                 static_cast<unsigned long long>(graph->m()));
  }
  std::fprintf(out, "  \"runs\": [");
  for (size_t i = 0; i < rows.size(); ++i) {
    const LoadRow& r = rows[i];
    std::fprintf(out,
                 "%s\n    {\"backend\": \"%s\", \"shards\": %u, "
                 "\"target_qps\": %g, \"requests\": %llu, "
                 "\"errors\": %llu,\n"
                 "     \"sustained_qps\": %.6g, "
                 "\"achieved_of_target\": %.4g,\n"
                 "     \"latency_ms\": {\"p50\": %.6g, \"p95\": %.6g, "
                 "\"p99\": %.6g}}",
                 i == 0 ? "" : ",", r.backend.c_str(), r.shards,
                 r.target_qps, static_cast<unsigned long long>(r.requests),
                 static_cast<unsigned long long>(r.errors), r.sustained_qps,
                 r.achieved_of_target, r.p50_ms, r.p95_ms, r.p99_ms);
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  std::vector<LoadRow> rows;

  if (args.port != 0) {
    // External mode: the server under test is someone else's process.
    for (const double qps : args.qps_list) {
      LoadRow row = RunLoad(static_cast<uint16_t>(args.port), args, qps);
      row.backend = "external";
      row.shards = 0;
      std::fprintf(stderr,
                   "external target=%g qps: sustained=%.1f p99=%.2fms\n",
                   qps, row.sustained_qps, row.p99_ms);
      rows.push_back(row);
    }
    WriteJson(args, nullptr, rows);
    std::printf("wrote %s (%zu rows)\n", args.out.c_str(), rows.size());
    return 0;
  }

  ChungLuOptions gen;
  gen.n = args.n;
  gen.avg_degree = args.degree;
  gen.gamma_out = 2.0;
  gen.seed = 1;
  auto graph_result = GenerateChungLu(gen);
  graph_result.status().Abort();
  const Graph graph = std::move(graph_result).ValueOrDie();

  char params[64];
  std::snprintf(params, sizeof(params), "eps=%g,seed=5", args.eps);
  auto config_result = EngineConfig::Parse(params);
  config_result.status().Abort();
  const EngineConfig config = std::move(config_result).ValueOrDie();

  {
    QueryService service;
    service.AddEngine("prsim", graph, config).Abort();
    auto server = net::TcpServer::Start(
        ServerOptions(args, graph.n()),
        [&](QueryRequest request) {
          return service.Submit(std::move(request));
        });
    server.status().Abort();
    for (const double qps : args.qps_list) {
      LoadRow row = RunLoad(server.ValueOrDie()->port(), args, qps);
      row.backend = "unsharded";
      row.shards = 1;
      std::fprintf(stderr,
                   "unsharded target=%g qps: sustained=%.1f p99=%.2fms\n",
                   qps, row.sustained_qps, row.p99_ms);
      rows.push_back(row);
    }
  }

  {
    // 3-shard backend: real bundle on disk, real router — the cost of the
    // global-position stamp and cross-shard routing is part of the number.
    std::filesystem::create_directories(args.workdir);
    PartitionSpec spec;
    spec.shards = 3;
    auto manifest_path =
        BuildShardBundle(graph, "prsim", config, spec, args.workdir);
    manifest_path.status().Abort();
    auto router = ShardRouter::Open(manifest_path.ValueOrDie());
    router.status().Abort();
    auto server = net::TcpServer::Start(
        ServerOptions(args, graph.n()),
        [&](QueryRequest request) {
          return router.ValueOrDie()->SubmitRequest(std::move(request));
        });
    server.status().Abort();
    for (const double qps : args.qps_list) {
      LoadRow row = RunLoad(server.ValueOrDie()->port(), args, qps);
      row.backend = "sharded";
      row.shards = spec.shards;
      std::fprintf(stderr,
                   "sharded(3) target=%g qps: sustained=%.1f p99=%.2fms\n",
                   qps, row.sustained_qps, row.p99_ms);
      rows.push_back(row);
    }
  }

  WriteJson(args, &graph, rows);
  std::printf("wrote %s (%zu rows)\n", args.out.c_str(), rows.size());
  return 0;
}
