// Open-loop TCP serving throughput: the service-level companion to
// bench_query_latency's engine-level numbers.
//
// The bench stands up the real network stack — TcpServer over a
// QueryService (unsharded) and over a ShardRouter on a freshly built
// 3-shard bundle — and drives it with an open-loop load generator:
// requests fire on a fixed arrival schedule t_i = i / target_qps across
// `--connections` persistent binary-framing connections, regardless of how
// fast responses come back, so a saturated server shows up as queueing
// latency instead of a silently slowed request rate (the classic
// closed-loop coordinated-omission trap). Sources are drawn from a
// deterministic Zipf(s) distribution (util/zipf.h) — skewed traffic, like
// real workloads on power-law graphs — and latency is measured from each
// request's *scheduled* send time, on the wire, through the full
// frame-encode / dispatch / positional-reseed / frame-decode path.
//
// For every (backend, zipf_s, cache_mb, target_qps) cell the JSON records
// the sustained completion rate, the achieved fraction of the target,
// scheduled-time p50/p95/p99, and the result-cache hit/miss/coalesced
// deltas for the run. Results land in BENCH_serve_throughput.json
// (committed at the repo root; CI regenerates a small variant per commit
// and checks the schema).
//
// Cache rows: with --cache-mb M > 0, every (backend, zipf_s) combination
// runs twice — once with the result cache off and once with an M-MB
// budget — producing paired rows that isolate the hot-source-cache win
// under each skew. Cache rows require --fresh (fresh_seed requests are
// the only cacheable shape; see core/result_cache.h). Within one
// (backend, zipf_s, cache) pass the qps list shares a server, so the
// cache warms across the qps sequence — the first cell shows cold-start
// hit rates, later cells steady state.
//
// Usage: bench_serve_throughput
//   [--n N] [--degree D] [--eps E] [--k K] [--zipf-s S]
//   [--zipf-s-list 0.8,1.0,1.2] [--cache-mb M] [--fresh]
//   [--connections C] [--seconds SEC] [--qps-list 50,100,200]
//   [--workdir DIR] [--out PATH] [--port P]
//   [--faults SPEC] [--fault-seed S]
// Defaults: n=4000, degree=8, eps=0.2, k=10, zipf-s=1.0, cache-mb=0,
//           positional seeding (no --fresh), connections=4, seconds=5,
//           qps-list=50,100,200, workdir=bench_serve_work,
//           out=BENCH_serve_throughput.json.
// With --port the generator drives an already-running `serve --listen`
// process on 127.0.0.1:P instead of the self-contained backends (backend
// "external"; --n then only sizes the Zipf source domain, and the cache
// columns read zero — the server's stats are not reachable from here).
//
// Fault rows: with --faults SPEC (see util/fault_injection.h; --fault-seed
// picks the schedule), the bench appends one extra unsharded cache-off
// pass with the fault injector armed, producing rows tagged with the spec
// — the tail-latency cost of injected engine throws and worker-pickup
// stalls under otherwise identical load. Because the injector is
// process-global and the load generator shares the process with the
// in-process servers, use request-granular server-side points here
// (engine.query.throw, worker.pickup.stall); a net.* spec would also fail
// the generator's own sockets and abort the run. Injected failures come
// back as well-formed error responses and land in the row's `errors`
// column. Not available with --port (the injector can't reach an external
// process).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/engine_registry.h"
#include "core/query_service.h"
#include "core/shard_manifest.h"
#include "core/shard_router.h"
#include "gen/chung_lu.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "net/frame.h"
#include "net/tcp_server.h"
#include "util/fault_injection.h"
#include "util/percentiles.h"
#include "util/rng.h"
#include "util/socket.h"
#include "util/zipf.h"

namespace {

using namespace prsim;

struct Args {
  uint32_t n = 4000;
  double degree = 8;
  double eps = 0.2;
  uint32_t k = 10;
  std::vector<double> zipf_s_list = {1.0};
  /// Result-cache budget for the cache-on pass; 0 = cache-off rows only.
  uint64_t cache_mb = 0;
  /// Send fresh_seed requests (the cacheable shape) instead of positional.
  bool fresh = false;
  uint32_t connections = 4;
  double seconds = 5;
  std::vector<double> qps_list = {50, 100, 200};
  std::string workdir = "bench_serve_work";
  std::string out = "BENCH_serve_throughput.json";
  /// When set, drive an external server instead of the in-process ones.
  uint32_t port = 0;
  /// Fault spec for the extra fault-injected pass (empty = none).
  std::string faults;
  uint64_t fault_seed = 42;
};

bool ParseQpsList(const std::string& value, std::vector<double>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < value.size()) {
    size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    const double qps = std::strtod(value.substr(pos, comma - pos).c_str(),
                                   nullptr);
    if (qps <= 0) return false;
    out->push_back(qps);
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--fresh") {  // value-less flag
      args->fresh = true;
      --i;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s expects a value\n", flag.c_str());
      return false;
    }
    const char* value = argv[i + 1];
    if (flag == "--n") {
      args->n = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--degree") {
      args->degree = std::strtod(value, nullptr);
    } else if (flag == "--eps") {
      args->eps = std::strtod(value, nullptr);
    } else if (flag == "--k") {
      args->k = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--zipf-s") {
      args->zipf_s_list = {std::strtod(value, nullptr)};
    } else if (flag == "--zipf-s-list") {
      if (!ParseQpsList(value, &args->zipf_s_list)) {
        std::fprintf(stderr,
                     "--zipf-s-list wants comma-separated positives\n");
        return false;
      }
    } else if (flag == "--cache-mb") {
      args->cache_mb = std::strtoull(value, nullptr, 10);
    } else if (flag == "--connections") {
      args->connections =
          static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--seconds") {
      args->seconds = std::strtod(value, nullptr);
    } else if (flag == "--qps-list") {
      if (!ParseQpsList(value, &args->qps_list)) {
        std::fprintf(stderr, "--qps-list wants comma-separated positives\n");
        return false;
      }
    } else if (flag == "--workdir") {
      args->workdir = value;
    } else if (flag == "--out") {
      args->out = value;
    } else if (flag == "--port") {
      args->port = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--faults") {
      args->faults = value;
    } else if (flag == "--fault-seed") {
      args->fault_seed = std::strtoull(value, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->n < 100 || args->connections == 0 || args->seconds <= 0) {
    std::fprintf(stderr,
                 "--n must be >= 100, --connections >= 1, --seconds > 0\n");
    return false;
  }
  if (args->cache_mb > 0 && !args->fresh) {
    // Positional requests bypass the cache by design; a cache pass without
    // --fresh would measure nothing but the budget allocation.
    std::fprintf(stderr, "--cache-mb requires --fresh\n");
    return false;
  }
  if (!args->faults.empty() && args->port != 0) {
    std::fprintf(stderr, "--faults cannot reach an external --port server\n");
    return false;
  }
  return true;
}

struct LoadRow {
  std::string backend;  ///< "unsharded", "sharded", or "external"
  uint32_t shards = 1;
  double zipf_s = 1.0;
  uint64_t cache_mb = 0;  ///< result-cache budget for this row (0 = off)
  bool fresh = false;
  double target_qps = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double sustained_qps = 0;
  double achieved_of_target = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  /// Result-cache deltas over this run (zero for cache-off and external
  /// rows). hit_rate = hits / (hits + misses + coalesced).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_coalesced = 0;
  double hit_rate = 0;
  /// Fault spec active during this row (empty = fault-free run).
  std::string faults;
};

/// One open-loop run against 127.0.0.1:port. Request i is scheduled at
/// start + i/target_qps and routed round-robin to one of `connections`
/// persistent binary-framing connections; a per-connection writer paces
/// the sends while a reader matches responses (in submission order — the
/// protocol's guarantee) against scheduled times. Deterministic request
/// stream: sources come from ZipfSampler(n, s) under a fixed seed.
LoadRow RunLoad(uint16_t port, const Args& args, double zipf_s,
                double target_qps) {
  LoadRow row;
  row.zipf_s = zipf_s;
  row.fresh = args.fresh;
  row.target_qps = target_qps;
  const auto total =
      static_cast<uint64_t>(std::max(1.0, target_qps * args.seconds));
  row.requests = total;

  // Pre-draw the whole request stream so the hot loop only paces + writes.
  ZipfSampler zipf(args.n, zipf_s);
  Rng rng(20250808);
  std::vector<NodeId> sources(total);
  for (auto& source : sources) source = zipf.Sample(rng);

  const uint32_t connections =
      static_cast<uint32_t>(std::min<uint64_t>(args.connections, total));
  struct Connection {
    UniqueFd fd;
    std::vector<uint64_t> request_indices;
    std::vector<double> latencies;
    uint64_t errors = 0;
    bool transport_failed = false;
    std::thread writer, reader;
  };
  std::vector<Connection> conns(connections);
  for (uint64_t i = 0; i < total; ++i) {
    conns[i % connections].request_indices.push_back(i);
  }
  for (auto& conn : conns) {
    auto fd = ConnectTcp(port);
    fd.status().Abort();
    conn.fd = std::move(fd).ValueOrDie();
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const auto scheduled_at = [&](uint64_t i) {
    return start + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(i / target_qps));
  };

  for (auto& conn : conns) {
    conn.writer = std::thread([&conn, &args, &sources, &scheduled_at] {
      std::vector<char> payload;
      if (!WriteAll(conn.fd.get(), net::kBinaryMagic,
                    sizeof(net::kBinaryMagic))
               .ok()) {
        conn.transport_failed = true;
        return;
      }
      for (const uint64_t i : conn.request_indices) {
        std::this_thread::sleep_until(scheduled_at(i));
        net::WireRequest request;
        request.source = sources[i];
        request.k = args.k;
        request.fresh_seed = args.fresh;
        net::EncodeRequest(request, &payload);
        if (!net::WriteFrame(conn.fd.get(), payload).ok()) {
          conn.transport_failed = true;
          return;
        }
      }
    });
    conn.reader = std::thread([&conn, &scheduled_at] {
      std::vector<char> payload;
      conn.latencies.reserve(conn.request_indices.size());
      for (const uint64_t i : conn.request_indices) {
        bool eof = false;
        if (!net::ReadFrame(conn.fd.get(), &payload, &eof).ok() || eof) {
          conn.transport_failed = true;
          return;
        }
        auto response = net::DecodeResponse(payload);
        if (!response.ok()) {
          conn.transport_failed = true;
          return;
        }
        if (response.ValueOrDie().status_code != 0) ++conn.errors;
        // Open-loop latency: from the request's *scheduled* send time, so
        // server-side queueing under overload is charged to the latency
        // distribution instead of silently stretching the run.
        const std::chrono::duration<double> waited =
            Clock::now() - scheduled_at(i);
        conn.latencies.push_back(waited.count());
      }
    });
  }

  std::vector<double> latencies;
  latencies.reserve(total);
  for (auto& conn : conns) {
    conn.writer.join();
    conn.reader.join();
    row.errors += conn.errors;
    if (conn.transport_failed) {
      std::fprintf(stderr, "load connection failed mid-run\n");
      std::exit(1);
    }
    latencies.insert(latencies.end(), conn.latencies.begin(),
                     conn.latencies.end());
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  row.sustained_qps = static_cast<double>(total) / elapsed.count();
  row.achieved_of_target = row.sustained_qps / target_qps;
  std::sort(latencies.begin(), latencies.end());
  row.p50_ms = SortedQuantile(latencies, 0.50) * 1e3;
  row.p95_ms = SortedQuantile(latencies, 0.95) * 1e3;
  row.p99_ms = SortedQuantile(latencies, 0.99) * 1e3;
  return row;
}

net::TcpServerOptions ServerOptions(const Args& args, NodeId n) {
  net::TcpServerOptions options;
  options.port = 0;  // ephemeral
  options.node_count = n;
  options.default_k = args.k;
  options.max_connections = args.connections + 4;
  return options;
}

void WriteJson(const Args& args, const Graph* graph,
               const std::vector<LoadRow>& rows) {
  FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"serve_throughput\",\n");
  std::fprintf(out, "  \"schema_version\": 2,\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out,
               "  \"config\": {\"n\": %u, \"degree\": %g, \"eps\": %g, "
               "\"k\": %u, \"zipf_s_list\": [",
               args.n, args.degree, args.eps, args.k);
  for (size_t i = 0; i < args.zipf_s_list.size(); ++i) {
    std::fprintf(out, "%s%g", i == 0 ? "" : ", ", args.zipf_s_list[i]);
  }
  std::fprintf(out,
               "], \"cache_mb\": %llu, \"fresh\": %s, "
               "\"connections\": %u, \"seconds\": %g",
               static_cast<unsigned long long>(args.cache_mb),
               args.fresh ? "true" : "false", args.connections,
               args.seconds);
  if (!args.faults.empty()) {
    std::fprintf(out, ", \"faults\": \"%s\", \"fault_seed\": %llu",
                 args.faults.c_str(),
                 static_cast<unsigned long long>(args.fault_seed));
  }
  std::fprintf(out, "},\n");
  if (graph != nullptr) {
    std::fprintf(out, "  \"graph\": {\"n\": %u, \"m\": %llu},\n", graph->n(),
                 static_cast<unsigned long long>(graph->m()));
  }
  std::fprintf(out, "  \"runs\": [");
  for (size_t i = 0; i < rows.size(); ++i) {
    const LoadRow& r = rows[i];
    std::fprintf(out,
                 "%s\n    {\"backend\": \"%s\", \"shards\": %u, "
                 "\"zipf_s\": %g, \"cache_mb\": %llu, \"fresh\": %s,\n"
                 "     \"target_qps\": %g, \"requests\": %llu, "
                 "\"errors\": %llu,\n"
                 "     \"sustained_qps\": %.6g, "
                 "\"achieved_of_target\": %.4g,\n"
                 "     \"latency_ms\": {\"p50\": %.6g, \"p95\": %.6g, "
                 "\"p99\": %.6g},\n"
                 "     \"cache\": {\"hits\": %llu, \"misses\": %llu, "
                 "\"coalesced\": %llu, \"hit_rate\": %.4g}",
                 i == 0 ? "" : ",", r.backend.c_str(), r.shards, r.zipf_s,
                 static_cast<unsigned long long>(r.cache_mb),
                 r.fresh ? "true" : "false", r.target_qps,
                 static_cast<unsigned long long>(r.requests),
                 static_cast<unsigned long long>(r.errors), r.sustained_qps,
                 r.achieved_of_target, r.p50_ms, r.p95_ms, r.p99_ms,
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.cache_misses),
                 static_cast<unsigned long long>(r.cache_coalesced),
                 r.hit_rate);
    if (!r.faults.empty()) {
      std::fprintf(out, ",\n     \"faults\": \"%s\"", r.faults.c_str());
    }
    std::fprintf(out, "}");
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
}

/// Runs the qps list against one standing server, attaching per-run
/// result-cache deltas read through `stats` (null for external servers).
void RunQpsSweep(uint16_t port, const Args& args, double zipf_s,
                 uint64_t cache_mb, const char* backend, uint32_t shards,
                 const std::function<ServiceStats()>& stats,
                 std::vector<LoadRow>* rows) {
  for (const double qps : args.qps_list) {
    const ServiceStats before = stats ? stats() : ServiceStats{};
    LoadRow row = RunLoad(port, args, zipf_s, qps);
    const ServiceStats after = stats ? stats() : ServiceStats{};
    row.backend = backend;
    row.shards = shards;
    row.cache_mb = cache_mb;
    row.cache_hits = after.cache_hits - before.cache_hits;
    row.cache_misses = after.cache_misses - before.cache_misses;
    row.cache_coalesced = after.cache_coalesced - before.cache_coalesced;
    const uint64_t lookups =
        row.cache_hits + row.cache_misses + row.cache_coalesced;
    row.hit_rate =
        lookups > 0 ? static_cast<double>(row.cache_hits) / lookups : 0;
    std::fprintf(stderr,
                 "%s zipf=%g cache=%lluMB target=%g qps: sustained=%.1f "
                 "p99=%.2fms hit_rate=%.2f\n",
                 backend, zipf_s, static_cast<unsigned long long>(cache_mb),
                 qps, row.sustained_qps, row.p99_ms, row.hit_rate);
    rows->push_back(row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  std::vector<LoadRow> rows;

  if (args.port != 0) {
    // External mode: the server under test is someone else's process; its
    // cache stats (if any) are not reachable from here.
    for (const double zipf_s : args.zipf_s_list) {
      RunQpsSweep(static_cast<uint16_t>(args.port), args, zipf_s,
                  /*cache_mb=*/0, "external", /*shards=*/0, nullptr, &rows);
    }
    WriteJson(args, nullptr, rows);
    std::printf("wrote %s (%zu rows)\n", args.out.c_str(), rows.size());
    return 0;
  }

  ChungLuOptions gen;
  gen.n = args.n;
  gen.avg_degree = args.degree;
  gen.gamma_out = 2.0;
  gen.seed = 1;
  auto graph_result = GenerateChungLu(gen);
  graph_result.status().Abort();
  const Graph graph = std::move(graph_result).ValueOrDie();

  char params[64];
  std::snprintf(params, sizeof(params), "eps=%g,seed=5", args.eps);
  auto config_result = EngineConfig::Parse(params);
  config_result.status().Abort();
  const EngineConfig config = std::move(config_result).ValueOrDie();

  // One cache-off pass always; a second cache-on pass when --cache-mb is
  // set, so every (backend, zipf_s, qps) cell gets a paired row.
  std::vector<uint64_t> cache_passes = {0};
  if (args.cache_mb > 0) cache_passes.push_back(args.cache_mb);

  // Preprocess the engine once and hand each service a same-seed clone
  // (clones share the immutable index), so the pass matrix pays one index
  // build no matter how many server instances it stands up.
  auto leader_result = EngineRegistry::Global().Create("prsim", graph, config);
  leader_result.status().Abort();
  std::unique_ptr<SingleSourceSimRank> leader =
      std::move(leader_result).ValueOrDie();
  leader->Preprocess().Abort();

  for (const double zipf_s : args.zipf_s_list) {
    for (const uint64_t cache_mb : cache_passes) {
      QueryServiceOptions service_options;
      service_options.cache_bytes = cache_mb << 20;
      QueryService service(service_options);
      service.AddEngine("prsim", leader->CloneWithSeed(leader->seed()))
          .Abort();
      auto server = net::TcpServer::Start(
          ServerOptions(args, graph.n()),
          [&](QueryRequest request) {
            return service.Submit(std::move(request));
          });
      server.status().Abort();
      RunQpsSweep(server.ValueOrDie()->port(), args, zipf_s, cache_mb,
                  "unsharded", 1, [&] { return service.Stats(); }, &rows);
    }
  }

  {
    // 3-shard backend: real bundle on disk, real router — the cost of the
    // global-position stamp and cross-shard routing is part of the number.
    // The bundle is built once; each pass reopens it (mmap'd loads).
    std::filesystem::create_directories(args.workdir);
    PartitionSpec spec;
    spec.shards = 3;
    auto manifest_path =
        BuildShardBundle(graph, "prsim", config, spec, args.workdir);
    manifest_path.status().Abort();
    for (const double zipf_s : args.zipf_s_list) {
      for (const uint64_t cache_mb : cache_passes) {
        ShardRouterOptions router_options;
        router_options.cache_bytes = cache_mb << 20;
        auto router =
            ShardRouter::Open(manifest_path.ValueOrDie(), router_options);
        router.status().Abort();
        auto server = net::TcpServer::Start(
            ServerOptions(args, graph.n()),
            [&](QueryRequest request) {
              return router.ValueOrDie()->SubmitRequest(std::move(request));
            });
        server.status().Abort();
        RunQpsSweep(server.ValueOrDie()->port(), args, zipf_s, cache_mb,
                    "sharded", spec.shards,
                    [&] { return router.ValueOrDie()->Stats(); }, &rows);
      }
    }
  }

  if (!args.faults.empty()) {
    // Fault-injected tail-latency rows: same unsharded backend, cache off,
    // first zipf_s — the only variable against the matching fault-free
    // rows above is the armed injector, so the p99 delta is the injected
    // throws/stalls and nothing else.
    FaultInjector::Global().Configure(args.faults, args.fault_seed).Abort();
    QueryServiceOptions service_options;
    QueryService service(service_options);
    service.AddEngine("prsim", leader->CloneWithSeed(leader->seed()))
        .Abort();
    auto server = net::TcpServer::Start(
        ServerOptions(args, graph.n()),
        [&](QueryRequest request) {
          return service.Submit(std::move(request));
        });
    server.status().Abort();
    const size_t first_fault_row = rows.size();
    RunQpsSweep(server.ValueOrDie()->port(), args, args.zipf_s_list.front(),
                /*cache_mb=*/0, "unsharded", 1,
                [&] { return service.Stats(); }, &rows);
    // Quiesce before touching the injector: Disable() is not safe against
    // in-flight evaluations, and it resets the counters we want to print.
    server.ValueOrDie()->Shutdown();
    std::fprintf(stderr, "%s\n",
                 FaultInjector::Global().StatsJson().c_str());
    FaultInjector::Global().Disable();
    for (size_t i = first_fault_row; i < rows.size(); ++i) {
      rows[i].faults = args.faults;
    }
  }

  WriteJson(args, &graph, rows);
  std::printf("wrote %s (%zu rows)\n", args.out.c_str(), rows.size());
  return 0;
}
