// Figure 6(b): PRSim query time vs graph size n on power-law graphs with
// gamma = 3, d̄ = 10 (n from 1e4 to 1e7 in the paper; capped at 1e6 here —
// DESIGN.md substitution table).
//
// Paper shape to reproduce: the curve is concave on a log-log plot, i.e.
// query time grows sublinearly in n (for gamma = 3 > 2 the theory predicts
// near-constant query cost; generation and indexing grow linearly, queries
// should barely move).

#include <cstdio>

#include "core/prsim.h"
#include "eval/datasets.h"
#include "eval/pooling.h"
#include "gen/chung_lu.h"
#include "util/timer.h"

int main() {
  using namespace prsim;
  const double factor = BenchScaleFromEnv();

  for (uint64_t n : {10000ull, 30000ull, 100000ull, 300000ull, 1000000ull}) {
    const auto scaled_n = static_cast<NodeId>(n * factor);
    ChungLuOptions gen;
    gen.n = scaled_n;
    gen.avg_degree = 10;
    gen.gamma_out = 3.0;
    gen.undirected = true;
    gen.seed = 42;
    WallTimer gen_timer;
    Graph g = GenerateChungLu(gen).ValueOrDie();
    const double gen_seconds = gen_timer.Seconds();

    PRSimOptions options;
    options.eps = 0.25;
    options.seed = 5;
    PRSim prsim(g, options);
    WallTimer prep_timer;
    prsim.Preprocess().Abort();
    const double prep_seconds = prep_timer.Seconds();

    const auto queries = SampleQueryNodes(g, 10, 88);
    WallTimer query_timer;
    uint64_t work = 0;
    for (NodeId u : queries) {
      prsim.Query(u);
      work += prsim.last_query_cost().backward_increments +
              prsim.last_query_cost().index_tuples_read;
    }
    std::printf("[figure6b] n=%u m=%llu gen_s=%.1f preprocess_s=%.2f "
                "query_s=%.5f query_work=%llu index_mb=%.2f\n",
                g.n(), static_cast<unsigned long long>(g.m()), gen_seconds,
                prep_seconds, query_timer.Seconds() / queries.size(),
                static_cast<unsigned long long>(work / queries.size()),
                prsim.IndexBytes() / 1e6);
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: query_s grows much slower than n "
              "(sublinear; near-flat for gamma = 3).\n");
  return 0;
}
