// Figure 7: non-power-law (Erdos-Renyi) graphs, n = 1e4, average degree
// swept from 5 to ~2000 (paper sweeps to 1e4; capped for laptop memory —
// DESIGN.md substitution table). Reports (a) query time and (b) index size
// for every algorithm at the fixed Section 5.3 parameters.
//
// Paper shape to reproduce: ProbeSim's query time degrades steeply with
// density (its probes expand whole out-neighborhoods), while PRSim stays
// fast — the variance-bounded backward walk visits only an in-degree-
// thresholded prefix of each adjacency list.

#include <cstdio>

#include "bench_common.h"
#include "gen/erdos_renyi.h"
#include "util/timer.h"

int main() {
  using namespace prsim;
  using namespace prsim::bench;
  const BenchScale scale = GetBenchScale();
  const NodeId n = static_cast<NodeId>(10000 * std::max(1.0, scale.factor));

  for (double degree : {5.0, 20.0, 100.0, 500.0, 2000.0}) {
    ErdosRenyiOptions gen;
    gen.n = n;
    gen.avg_degree = degree;
    gen.seed = 700 + static_cast<uint64_t>(degree);
    Graph g = GenerateErdosRenyi(gen).ValueOrDie();
    std::fprintf(stderr, "[figure7] d=%g n=%u m=%llu\n", degree, g.n(),
                 static_cast<unsigned long long>(g.m()));

    auto configs = BuildFixedConfigs(g, 23);
    for (auto& config : configs) {
      WallTimer prep_timer;
      Status st = config.instance->Preprocess();
      if (!st.ok()) {
        std::fprintf(stderr, "  [skip] %s: %s\n", config.algo.c_str(),
                     st.ToString().c_str());
        continue;
      }
      const double prep = prep_timer.Seconds();
      const auto queries = SampleQueryNodes(g, 3, 99);
      // Per-cell time budget: slow algorithms keep their first measurement
      // (the paper likewise cuts off configurations at a wall-clock budget).
      WallTimer query_timer;
      uint32_t answered = 0;
      for (NodeId u : queries) {
        config.instance->Query(u);
        ++answered;
        if (query_timer.Seconds() > 45.0) break;
      }
      std::printf("[figure7] avg_degree=%g algo=%s query_s=%.5f "
                  "index_mb=%.2f preprocess_s=%.2f queries=%u\n",
                  degree, config.algo.c_str(),
                  query_timer.Seconds() / answered,
                  config.instance->IndexBytes() / 1e6, prep, answered);
      std::fflush(stdout);
    }
  }
  std::printf("\nexpected shape: ProbeSim query time grows steeply with "
              "avg_degree; PRSim stays near-flat.\n");
  return 0;
}
