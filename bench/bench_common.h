// Shared infrastructure for the figure benches: algorithm sweeps mirroring
// Section 5.1's parameter grids, pooled evaluation, and paper-style series
// output.
//
// Each figure binary prints self-describing rows:
//   [figure] dataset=LJ algo=PRSim param=eps=0.05 query_s=... avg_err@50=...
// so series can be grepped straight into a plotting tool, and EXPERIMENTS.md
// can quote rows verbatim.

#ifndef PRSIM_BENCH_BENCH_COMMON_H_
#define PRSIM_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/single_source.h"
#include "eval/ground_truth.h"
#include "eval/pooling.h"
#include "graph/graph.h"

namespace prsim::bench {

/// One algorithm configuration in a sweep.
struct SweepConfig {
  std::string algo;   ///< "PRSim", "ProbeSim", ...
  std::string param;  ///< printable parameter setting, e.g. "eps=0.05"
  std::unique_ptr<SingleSourceSimRank> instance;
  bool index_based = false;
  /// Registry key ("prsim", ...), kept for index-cache file naming.
  std::string engine;
  /// Canonical config string (seed included) identifying the built index for
  /// the on-disk cache; empty when the engine has no persistent index.
  std::string cache_key;
};

/// Builds one sweep entry through the engine registry: `engine` is a
/// registry name ("prsim", "reads", ...), `params` a "k=v,k=v" config
/// string; `seed` overrides any seed in `params`. The display name and
/// index-based flag come from the registry metadata, and the printable
/// param defaults to `params` unless `display_param` overrides it.
/// Aborts on registry errors (a bench config is a programming error).
SweepConfig MakeSweepConfig(const Graph& graph, const std::string& engine,
                            const std::string& params, uint64_t seed,
                            const std::string& display_param = "");

/// Result row of a pooled sweep evaluation.
struct SweepRow {
  std::string algo;
  std::string param;
  double query_seconds = 0;
  double avg_error = 0;
  double precision = 0;
  size_t index_bytes = 0;
  double preprocess_seconds = 0;
  bool index_based = false;
  /// True when the index came from the on-disk cache; preprocess_seconds is
  /// then the artifact load time, not a build time, and PrintRow marks the
  /// row `cached=1` so figure tooling can tell the two apart.
  bool from_cache = false;
};

/// Builds the Section 5.2 parameter sweep over all six algorithms (or only
/// the index-based four when `index_based_only`).
std::vector<SweepConfig> BuildParameterSweep(const Graph& graph,
                                             bool index_based_only,
                                             uint64_t seed);

/// Fixed-parameter configurations for the synthetic experiments
/// (Section 5.3: eps_a = 0.25, Rg = 300, Rq = 40, r = 100, t = 10, ...).
std::vector<SweepConfig> BuildFixedConfigs(const Graph& graph, uint64_t seed);

/// Preprocesses (skipping configurations whose index exceeds its budget, as
/// the paper omits out-of-memory runs), runs the pooled evaluation, and
/// returns one row per surviving configuration.
///
/// Persistent-index engines go through an on-disk artifact cache keyed by
/// (graph checksum, engine, canonical params): the first run builds and
/// saves each index, later runs reload it, so repeated figure benches
/// amortize preprocessing. The SweepRow then reports the load time as its
/// preprocessing time and the reuse is logged. Cache location is
/// $PRSIM_BENCH_CACHE_DIR (default: <tmp>/prsim-bench-cache); set
/// PRSIM_BENCH_CACHE=0 to disable caching entirely. The cache is capped at
/// $PRSIM_BENCH_CACHE_LIMIT_MB (default 2048): after each sweep it is
/// trimmed back under the cap by deleting oldest-mtime artifacts first
/// (reused artifacts are re-touched on load), so parameter sweeps no
/// longer grow it without bound.
std::vector<SweepRow> RunSweep(const Graph& graph,
                               std::vector<SweepConfig> configs,
                               uint32_t query_count, uint32_t k,
                               double per_algo_budget_seconds, uint64_t seed);

/// Prints one row in the grep-friendly format described above.
void PrintRow(const std::string& figure, const std::string& dataset,
              const SweepRow& row);

/// Scaled query/bench sizing honoring PRSIM_BENCH_SCALE.
struct BenchScale {
  double factor = 1.0;        ///< dataset size multiplier
  uint32_t query_count = 6;   ///< queries per dataset
  double budget_seconds = 60; ///< per-algorithm pooled budget
};
BenchScale GetBenchScale();

}  // namespace prsim::bench

#endif  // PRSIM_BENCH_BENCH_COMMON_H_
