// Figure 4: AvgError@50 vs index size for the index-based algorithms
// (PRSim, SLING, TSF, READS).
//
// Paper shape to reproduce: PRSim reaches any given error with 1-3 orders of
// magnitude less index than READS/SLING (on DB the paper reports 200MB vs
// 100GB at error 1e-3); TSF's index is small but its error floor is high.

#include <cstdio>

#include "bench_common.h"
#include "eval/datasets.h"

int main() {
  using namespace prsim;
  using namespace prsim::bench;
  const BenchScale scale = GetBenchScale();

  // Below full scale, sweep only the two headline datasets (DB for the
  // index-size contrast, TW for the heavy-tailed hard case) so the binary
  // fits a single-core CI budget; at scale >= 1 sweep all four.
  std::vector<const char*> keys = {"DB", "TW"};
  if (scale.factor >= 1.0) keys = {"DB", "LJ", "IT", "TW"};
  for (const char* key : keys) {
    auto spec = FindDataset(key).ValueOrDie();
    Graph g = MakeDataset(spec, 0.2 * scale.factor).ValueOrDie();
    std::fprintf(stderr, "[figure4] %s: n=%u m=%llu graph_mb=%.1f\n", key,
                 g.n(), static_cast<unsigned long long>(g.m()),
                 g.MemoryBytes() / 1e6);
    auto rows = RunSweep(g, BuildParameterSweep(g, /*index_based_only=*/true,
                                                13),
                         scale.query_count, 50, scale.budget_seconds, 3000);
    for (const auto& row : rows) PrintRow("figure4", key, row);
  }
  return 0;
}
