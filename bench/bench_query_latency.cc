// Single-source query latency + sustained throughput across the persistent
// engines — the seed point of the recorded perf trajectory.
//
// For every (graph, engine, threads in {1, hw}) cell this bench measures
//   * single-query latency: `--queries` serial Query() calls after warmup,
//     reported as mean/p50/p95/p99 (PRSim's intra-query sample-grid
//     parallelism is what `threads` exercises here — scores are
//     bit-identical at every setting, only the wall time moves);
//   * sustained throughput: the same sources answered through
//     BatchQueryWithStats on `threads` workers of the shared pool.
// Results land in a machine-readable JSON file (default
// BENCH_query_latency.json — committed at the repo root as the perf
// baseline; CI regenerates a small-graph variant per commit and checks the
// schema). Graphs are generated Chung-Lu (power-law, the paper's regime)
// and Barabasi-Albert; the largest graph is the headline row.
//
// Usage: bench_query_latency [--n N] [--degree D] [--queries Q]
//                            [--warmup W] [--eps E] [--max-threads T]
//                            [--out PATH]
// Defaults: n=10000, degree=10, queries=32, warmup=3, eps=0.05,
//           max-threads=0 (hardware concurrency),
//           out=BENCH_query_latency.json

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_query.h"
#include "core/engine_registry.h"
#include "eval/pooling.h"
#include "gen/barabasi_albert.h"
#include "gen/chung_lu.h"
#include "graph/graph.h"
#include "util/percentiles.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace prsim;

struct Args {
  uint32_t n = 10000;
  double degree = 10;
  uint32_t queries = 32;
  uint32_t warmup = 3;
  double eps = 0.05;
  /// Top of the thread sweep; 0 = hardware concurrency.
  size_t max_threads = 0;
  std::string out = "BENCH_query_latency.json";
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s expects a value\n", flag.c_str());
      return false;
    }
    const char* value = argv[i + 1];
    if (flag == "--n") {
      args->n = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--degree") {
      args->degree = std::strtod(value, nullptr);
    } else if (flag == "--queries") {
      args->queries = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--warmup") {
      args->warmup = static_cast<uint32_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--eps") {
      args->eps = std::strtod(value, nullptr);
    } else if (flag == "--max-threads") {
      args->max_threads =
          static_cast<size_t>(std::strtoul(value, nullptr, 10));
    } else if (flag == "--out") {
      args->out = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  if (args->n < 100 || args->queries == 0) {
    std::fprintf(stderr, "--n must be >= 100 and --queries >= 1\n");
    return false;
  }
  return true;
}

struct BenchGraph {
  std::string name;
  Graph graph;
};

struct RunRow {
  std::string graph;
  std::string algo;
  std::string params;
  size_t threads = 0;
  uint32_t queries = 0;
  double preprocess_seconds = 0;
  double index_mb = 0;
  double mean_ms = 0, p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double batch_seconds = 0;
  double throughput_qps = 0;
  double speedup_vs_threads1 = 0;  ///< 0 when threads == 1 (not emitted)
  /// True when the engine has no threads knob, so the single-query latency
  /// figures are carried over from the threads=1 cell instead of being
  /// re-measured noise (only the batch throughput differs).
  bool latency_reused_from_threads1 = false;
};

std::string FormatParams(const std::string& base, bool accepts_threads,
                         size_t threads) {
  if (!accepts_threads) return base;
  return base + ",threads=" + std::to_string(threads);
}

/// Measures one (graph, algo, threads) cell. `reuse_latency_from` (may be
/// null) skips the serial latency sweep and carries the threads=1 figures
/// over — used for engines whose queries cannot use threads, where a second
/// sweep of the identical configuration would record only noise. For those
/// engines `engine_slot` keeps the built engine alive across thread
/// settings (the configuration is byte-identical), so the index is built
/// once per (graph, algo) instead of once per cell.
RunRow MeasureCell(const BenchGraph& bg, const std::string& algo,
                   const std::string& params, size_t threads,
                   const std::vector<NodeId>& sources, const Args& args,
                   const RunRow* reuse_latency_from,
                   std::unique_ptr<SingleSourceSimRank>* engine_slot) {
  RunRow row;
  row.graph = bg.name;
  row.algo = algo;
  row.params = params;
  row.threads = threads;
  row.queries = args.queries;

  std::unique_ptr<SingleSourceSimRank> local;
  std::unique_ptr<SingleSourceSimRank>& engine =
      engine_slot != nullptr ? *engine_slot : local;
  if (engine == nullptr) {
    auto engine_result =
        EngineRegistry::Global().Create(algo, bg.graph, params);
    engine_result.status().Abort();
    engine = std::move(engine_result).ValueOrDie();
    WallTimer prep_timer;
    engine->Preprocess().Abort();
    row.preprocess_seconds = prep_timer.Seconds();
    row.index_mb = engine->IndexBytes() / 1e6;
  } else {
    row.preprocess_seconds = reuse_latency_from->preprocess_seconds;
    row.index_mb = reuse_latency_from->index_mb;
  }

  if (reuse_latency_from != nullptr) {
    row.mean_ms = reuse_latency_from->mean_ms;
    row.p50_ms = reuse_latency_from->p50_ms;
    row.p95_ms = reuse_latency_from->p95_ms;
    row.p99_ms = reuse_latency_from->p99_ms;
    row.latency_reused_from_threads1 = true;
  } else {
    for (uint32_t i = 0; i < args.warmup; ++i) {
      (void)engine->Query(sources[i % sources.size()]);
    }
    // Single-query latency: serial calls so each sample is one query's
    // wall time, with the intra-query parallelism (where the engine
    // supports it) as the only concurrency.
    std::vector<double> latencies;
    latencies.reserve(args.queries);
    WallTimer timer;
    for (uint32_t i = 0; i < args.queries; ++i) {
      timer.Restart();
      (void)engine->Query(sources[i % sources.size()]);
      latencies.push_back(timer.Seconds());
    }
    double total = 0;
    for (double s : latencies) total += s;
    row.mean_ms = total / latencies.size() * 1e3;
    std::sort(latencies.begin(), latencies.end());
    row.p50_ms = SortedQuantile(latencies, 0.50) * 1e3;
    row.p95_ms = SortedQuantile(latencies, 0.95) * 1e3;
    row.p99_ms = SortedQuantile(latencies, 0.99) * 1e3;
  }

  // Sustained throughput: the whole source set through the batch layer on
  // `threads` pool workers (cross-query parallelism for every engine).
  WallTimer batch_timer;
  const BatchQueryResult batch = BatchQueryWithStats(*engine, sources, threads);
  row.batch_seconds = batch_timer.Seconds();
  row.throughput_qps = sources.size() / row.batch_seconds;
  return row;
}

void WriteJson(const Args& args, const std::vector<BenchGraph>& graphs,
               const std::vector<RunRow>& rows) {
  FILE* out = std::fopen(args.out.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"query_latency\",\n");
  std::fprintf(out, "  \"schema_version\": 1,\n");
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"default_thread_count\": %zu,\n",
               DefaultThreadCount());
  std::fprintf(out,
               "  \"config\": {\"n\": %u, \"degree\": %g, \"queries\": %u, "
               "\"warmup\": %u, \"eps\": %g},\n",
               args.n, args.degree, args.queries, args.warmup, args.eps);
  std::fprintf(out, "  \"graphs\": [");
  for (size_t i = 0; i < graphs.size(); ++i) {
    std::fprintf(out, "%s\n    {\"name\": \"%s\", \"n\": %u, \"m\": %llu}",
                 i == 0 ? "" : ",", graphs[i].name.c_str(), graphs[i].graph.n(),
                 static_cast<unsigned long long>(graphs[i].graph.m()));
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out, "  \"runs\": [");
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunRow& r = rows[i];
    std::fprintf(out,
                 "%s\n    {\"graph\": \"%s\", \"algo\": \"%s\", \"params\": "
                 "\"%s\", \"threads\": %zu, \"queries\": %u,\n"
                 "     \"preprocess_seconds\": %.6g, \"index_mb\": %.6g,\n"
                 "     \"latency_ms\": {\"mean\": %.6g, \"p50\": %.6g, "
                 "\"p95\": %.6g, \"p99\": %.6g},\n"
                 "     \"batch_seconds\": %.6g, \"throughput_qps\": %.6g",
                 i == 0 ? "" : ",", r.graph.c_str(), r.algo.c_str(),
                 r.params.c_str(), r.threads, r.queries, r.preprocess_seconds,
                 r.index_mb, r.mean_ms, r.p50_ms, r.p95_ms, r.p99_ms,
                 r.batch_seconds, r.throughput_qps);
    if (r.speedup_vs_threads1 > 0) {
      std::fprintf(out, ",\n     \"speedup_vs_threads1\": %.4g",
                   r.speedup_vs_threads1);
    }
    if (r.latency_reused_from_threads1) {
      std::fprintf(out, ",\n     \"latency_reused_from_threads1\": true");
    }
    std::fprintf(out, "}");
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  std::vector<BenchGraph> graphs;
  {
    ChungLuOptions small;
    small.n = args.n / 4;
    small.avg_degree = args.degree;
    small.gamma_out = 2.0;
    small.seed = 1;
    graphs.push_back({"chunglu_n" + std::to_string(small.n),
                      GenerateChungLu(small).ValueOrDie()});
    ChungLuOptions large = small;
    large.n = args.n;
    graphs.push_back({"chunglu_n" + std::to_string(large.n),
                      GenerateChungLu(large).ValueOrDie()});
    BarabasiAlbertOptions ba;
    ba.n = args.n;
    ba.edges_per_node = static_cast<uint32_t>(args.degree / 2);
    if (ba.edges_per_node == 0) ba.edges_per_node = 1;
    ba.seed = 1;
    graphs.push_back({"ba_n" + std::to_string(ba.n),
                      GenerateBarabasiAlbert(ba).ValueOrDie()});
  }

  // threads = 1 and the machine's hardware concurrency. Deliberately NOT
  // DefaultThreadCount(): a pinned PRSIM_THREADS (the reproducibility knob
  // tests use) must not silently collapse the perf sweep — though note the
  // shared pool itself is still PRSIM_THREADS-sized (recorded in the JSON
  // as default_thread_count).
  size_t hw = args.max_threads;
  if (hw == 0) hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = DefaultThreadCount();
  std::vector<size_t> thread_settings = {1};
  if (hw > 1) thread_settings.push_back(hw);

  // The persistent four. `accepts_threads` marks engines whose options take
  // a thread count at all (PRSim: intra-query grid + index build; SLING:
  // index build only); `query_uses_threads` marks the subset whose *query*
  // is parallel — the only rows where a single-query latency re-sweep and a
  // speedup figure mean anything. Every engine's batch throughput still
  // scales with the pool.
  struct AlgoSpec {
    const char* algo;
    std::string base_params;
    bool accepts_threads;
    bool query_uses_threads;
  };
  char eps_buf[32];
  std::snprintf(eps_buf, sizeof(eps_buf), "eps=%g", args.eps);
  const std::vector<AlgoSpec> specs = {
      {"prsim", std::string(eps_buf) + ",seed=5", true, true},
      {"sling", "eps=0.25,seed=5", true, false},
      {"reads", "r=100,t=10,seed=5", false, false},
      {"tsf", "rg=100,rq=10,seed=5", false, false},
  };

  std::vector<RunRow> rows;
  for (const BenchGraph& bg : graphs) {
    const std::vector<NodeId> sources =
        SampleQueryNodes(bg.graph, args.queries, 88);
    for (const AlgoSpec& spec : specs) {
      RunRow threads1_row;
      std::unique_ptr<SingleSourceSimRank> cached_engine;
      for (size_t threads : thread_settings) {
        const std::string params =
            FormatParams(spec.base_params, spec.accepts_threads, threads);
        const RunRow* reuse_latency =
            (threads > 1 && !spec.query_uses_threads) ? &threads1_row
                                                      : nullptr;
        RunRow row = MeasureCell(
            bg, spec.algo, params, threads, sources, args, reuse_latency,
            spec.accepts_threads ? nullptr : &cached_engine);
        if (threads == 1) {
          threads1_row = row;
        } else if (spec.query_uses_threads && threads1_row.mean_ms > 0) {
          // Only meaningful where `threads` actually reaches the query.
          row.speedup_vs_threads1 = threads1_row.mean_ms / row.mean_ms;
        }
        std::printf(
            "[query_latency] graph=%s algo=%s threads=%zu p50_ms=%.3f "
            "p95_ms=%.3f p99_ms=%.3f mean_ms=%.3f qps=%.1f%s%.2f\n",
            row.graph.c_str(), row.algo.c_str(), row.threads, row.p50_ms,
            row.p95_ms, row.p99_ms, row.mean_ms, row.throughput_qps,
            row.speedup_vs_threads1 > 0 ? " speedup=" : " speedup_na=",
            row.speedup_vs_threads1);
        std::fflush(stdout);
        rows.push_back(std::move(row));
      }
    }
  }

  WriteJson(args, graphs, rows);
  std::printf("wrote %s (%zu runs)\n", args.out.c_str(), rows.size());
  return 0;
}
