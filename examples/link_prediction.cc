// Link prediction with SimRank on a co-authorship-style graph (one of the
// motivating applications in the paper's introduction, following
// Liben-Nowell & Kleinberg [23]).
//
//   $ ./link_prediction
//
// Protocol: generate an undirected power-law graph (a DBLP-like synthetic
// co-authorship network), hide a random sample of edges, and test whether
// single-source SimRank ranks the hidden neighbors above random non-neighbors
// of the same node. Reports hit-rate@k and a pairwise AUC-style score vs the
// random baseline of 0.5.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/engine_registry.h"
#include "gen/chung_lu.h"
#include "graph/builder.h"
#include "util/rng.h"

int main() {
  using namespace prsim;

  // 1. Generate the "full" co-authorship network.
  ChungLuOptions gen;
  gen.n = 20000;
  gen.avg_degree = 8;
  gen.gamma_out = 2.2;  // DBLP-like cumulative exponent
  gen.undirected = true;
  gen.seed = 7;
  Graph full = GenerateChungLu(gen).ValueOrDie();
  std::printf("full graph: n=%u m=%llu\n", full.n(),
              static_cast<unsigned long long>(full.m()));

  // 2. Hide 5% of the (undirected) edges.
  Rng rng(99);
  std::vector<Edge> kept, hidden;
  for (const auto& [a, b] : full.ToEdges()) {
    if (a > b) continue;  // one canonical copy per undirected edge
    if (rng.NextDouble() < 0.05) {
      hidden.emplace_back(a, b);
    } else {
      kept.emplace_back(a, b);
    }
  }
  BuildOptions build;
  build.undirected = true;
  Graph observed = BuildGraph(full.n(), kept, build).ValueOrDie();
  std::printf("observed graph: m=%llu (%zu edges hidden)\n",
              static_cast<unsigned long long>(observed.m()), hidden.size());

  // 3. Index the observed graph once, then score candidates per node. The
  // engine comes from the registry, so swapping the name (or reading it
  // from argv) compares link-prediction quality across methods.
  auto prsim_result = EngineRegistry::Global().Create(
      "prsim", observed, "eps=0.02,alpha=5,seed=5");
  prsim_result.status().Abort();
  SingleSourceSimRank& prsim = *prsim_result.ValueOrDie();
  prsim.Preprocess().Abort();

  // 4. For a sample of endpoints with hidden edges, check whether the hidden
  // partner outranks random non-neighbors.
  int auc_wins = 0, auc_total = 0;
  int hits_at_20 = 0, trials = 0;
  const size_t max_trials = 120;
  for (size_t i = 0; i < hidden.size() && trials < static_cast<int>(max_trials);
       ++i) {
    const auto [a, b] = hidden[i];
    if (observed.InDegree(a) == 0 || observed.InDegree(b) == 0) continue;
    ScoreList scores = prsim.Query(a);
    const double hidden_score = ScoreOf(scores, b);

    // AUC: compare the hidden partner against 20 random non-neighbors.
    for (int j = 0; j < 20; ++j) {
      const NodeId negative = rng.NextIndex(observed.n());
      if (negative == a || negative == b) continue;
      const double negative_score = ScoreOf(scores, negative);
      if (hidden_score > negative_score) {
        ++auc_wins;
      } else if (hidden_score == negative_score) {
        auc_wins += 0;  // treat ties as losses: conservative
      }
      ++auc_total;
    }
    // Hit-rate: is the hidden partner inside the top-20 recommendations?
    for (const auto& [v, s] : TopK(scores, 20, a)) {
      if (v == b) {
        ++hits_at_20;
        break;
      }
    }
    ++trials;
  }

  std::printf("\nlink prediction over %d hidden edges:\n", trials);
  std::printf("  AUC vs random non-edges : %.3f  (random guessing = 0.500)\n",
              static_cast<double>(auc_wins) / auc_total);
  std::printf("  hit-rate@20             : %.3f\n",
              static_cast<double>(hits_at_20) / trials);
  return 0;
}
