// Quickstart: build a graph, preprocess PRSim, run a single-source query.
//
//   $ ./quickstart
//
// Walks through the full public API on a small citation-style graph:
// graph construction from an edge list, index preprocessing, a single-source
// SimRank query, and top-k extraction.

#include <cstdio>

#include "core/prsim.h"
#include "graph/builder.h"

int main() {
  using namespace prsim;

  // A small "paper citation" graph: an edge (a, b) means paper a cites
  // paper b. SimRank then scores papers by how similar their citing
  // audiences are.
  //
  //   surveys:      0           1
  //   citers:     2, 3, 4     4, 5, 6    (paper 4 cites both surveys)
  //   tail:       7..11 cite 2, 3, 5.
  GraphBuilder builder;
  for (auto [src, dst] : std::initializer_list<std::pair<NodeId, NodeId>>{
           {2, 0}, {3, 0}, {4, 0}, {4, 1}, {5, 1}, {6, 1},
           {7, 2}, {8, 2}, {9, 3}, {10, 5}, {11, 5}, {7, 3}}) {
    builder.AddEdge(src, dst);
  }
  Graph graph = builder.Build().ValueOrDie();
  std::printf("graph: n=%u m=%llu\n", graph.n(),
              static_cast<unsigned long long>(graph.m()));

  // Configure PRSim: decay c = 0.6 (the paper's default), additive error
  // target eps, and a deterministic seed.
  PRSimOptions options;
  options.c = 0.6;
  options.eps = 0.02;
  options.alpha = 8.0;  // extra samples for a crisp demo on a tiny graph
  options.seed = 42;
  PRSim prsim(graph, options);

  // Preprocess builds the reverse-PageRank hub index (Algorithm 1).
  prsim.Preprocess().Abort();
  std::printf("index: %u hubs, %zu bytes\n", prsim.index().hub_count(),
              prsim.IndexBytes());

  // Single-source query (Algorithm 4): estimates s(u, v) for every v.
  const NodeId source = 0;
  ScoreList scores = prsim.Query(source);

  std::printf("\ntop-5 nodes most similar to node %u:\n", source);
  for (const auto& [node, score] : TopK(scores, 5, source)) {
    std::printf("  node %-3u  simrank ~= %.4f\n", node, score);
  }
  // Expect node 1 on top: both surveys are cited by overlapping audiences
  // (paper 4 cites both), and their citers are themselves similar.
  return 0;
}
