// Quickstart: build a graph, construct an engine through the registry, run a
// single-source query.
//
//   $ ./quickstart
//
// Walks through the full public API on a small citation-style graph:
// graph construction from an edge list, config-driven engine construction
// via the EngineRegistry, index preprocessing, a single-source SimRank
// query with top-k extraction, and a single-pair query.

#include <cstdio>

#include "core/engine_registry.h"
#include "graph/builder.h"

int main() {
  using namespace prsim;

  // A small "paper citation" graph: an edge (a, b) means paper a cites
  // paper b. SimRank then scores papers by how similar their citing
  // audiences are.
  //
  //   surveys:      0           1
  //   citers:     2, 3, 4     4, 5, 6    (paper 4 cites both surveys)
  //   tail:       7..11 cite 2, 3, 5.
  GraphBuilder builder;
  for (auto [src, dst] : std::initializer_list<std::pair<NodeId, NodeId>>{
           {2, 0}, {3, 0}, {4, 0}, {4, 1}, {5, 1}, {6, 1},
           {7, 2}, {8, 2}, {9, 3}, {10, 5}, {11, 5}, {7, 3}}) {
    builder.AddEdge(src, dst);
  }
  Graph graph = builder.Build().ValueOrDie();
  std::printf("graph: n=%u m=%llu\n", graph.n(),
              static_cast<unsigned long long>(graph.m()));

  // Construct PRSim through the registry: decay c = 0.6 (the paper's
  // default), additive error target eps, extra samples (alpha) for a crisp
  // demo on a tiny graph, and a deterministic seed. Swapping "prsim" for
  // any name listed by EngineRegistry::Global().Names() — "probesim",
  // "montecarlo", ... — runs the same program on another engine.
  auto engine_result = EngineRegistry::Global().Create(
      "prsim", graph, "c=0.6,eps=0.02,alpha=8,seed=42");
  engine_result.status().Abort();
  auto engine = std::move(engine_result).ValueOrDie();

  // Preprocess builds the reverse-PageRank hub index (Algorithm 1); for
  // index-free engines it is a no-op.
  engine->Preprocess().Abort();
  std::printf("engine: %s, index %zu bytes\n", engine->name().c_str(),
              engine->IndexBytes());

  // Single-source top-k query (Algorithm 4 + top-k extraction).
  const NodeId source = 0;
  std::printf("\ntop-5 nodes most similar to node %u:\n", source);
  for (const auto& [node, score] : engine->QueryTopK(source, 5)) {
    std::printf("  node %-3u  simrank ~= %.4f\n", node, score);
  }
  // Expect node 1 on top: both surveys are cited by overlapping audiences
  // (paper 4 cites both), and their citers are themselves similar.

  // Single-pair query through the same uniform surface.
  std::printf("\ns(0, 1) ~= %.4f\n", engine->QueryPair(0, 1));
  return 0;
}
