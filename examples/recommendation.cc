// "Similar items" recommendation on a web-style directed graph, comparing
// PRSim against the index-free ProbeSim on the same queries — the
// recommendation scenario that motivates single-source SimRank in the paper
// (Section 1).
//
//   $ ./recommendation
//
// Prints, for a few hub pages, the top-10 most similar pages from both
// algorithms, their overlap, and the query-time advantage of the indexed
// method.

#include <algorithm>
#include <cstdio>
#include <set>

#include "core/engine_registry.h"
#include "eval/pooling.h"
#include "gen/chung_lu.h"
#include "util/timer.h"

int main() {
  using namespace prsim;

  // A web-graph-like directed network: flat-ish out-degree tail (hubs link
  // broadly), steeper in-degree tail.
  ChungLuOptions gen;
  gen.n = 20000;
  gen.avg_degree = 12;
  gen.gamma_out = 1.8;
  gen.gamma_in = 2.4;
  gen.seed = 11;
  Graph graph = GenerateChungLu(gen).ValueOrDie();
  std::printf("catalog graph: n=%u m=%llu\n", graph.n(),
              static_cast<unsigned long long>(graph.m()));

  // Both engines come from the registry with the same parameter string —
  // the uniform construction path the comparison machinery relies on.
  const EngineRegistry& registry = EngineRegistry::Global();
  auto prsim_result = registry.Create("prsim", graph, "eps=0.05,seed=1");
  prsim_result.status().Abort();
  SingleSourceSimRank& prsim = *prsim_result.ValueOrDie();
  WallTimer preprocess_timer;
  prsim.Preprocess().Abort();
  std::printf("PRSim preprocessing: %.2fs, index %.1f MB\n",
              preprocess_timer.Seconds(), prsim.IndexBytes() / 1e6);

  auto probe_result = registry.Create("probesim", graph, "eps=0.05,seed=1");
  probe_result.status().Abort();
  SingleSourceSimRank& probe = *probe_result.ValueOrDie();
  probe.Preprocess().Abort();

  double prsim_seconds = 0, probe_seconds = 0;
  double overlap_sum = 0;
  const auto queries = SampleQueryNodes(graph, 5, 321);
  for (NodeId u : queries) {
    WallTimer timer;
    ScoreList a = prsim.Query(u);
    prsim_seconds += timer.Seconds();
    timer.Restart();
    ScoreList b = probe.Query(u);
    probe_seconds += timer.Seconds();

    auto top_a = TopK(a, 10, u);
    auto top_b = TopK(b, 10, u);
    std::set<NodeId> set_b;
    for (const auto& [v, s] : top_b) set_b.insert(v);
    int common = 0;
    for (const auto& [v, s] : top_a) common += set_b.count(v);
    overlap_sum += common / 10.0;

    std::printf("\nquery node %u — top-5 similar items (PRSim):\n", u);
    for (size_t i = 0; i < std::min<size_t>(5, top_a.size()); ++i) {
      std::printf("  #%zu node %-6u score %.4f\n", i + 1, top_a[i].first,
                  top_a[i].second);
    }
    std::printf("  top-10 overlap with ProbeSim: %d/10\n", common);
  }

  std::printf("\nmean query time: PRSim %.3fs  ProbeSim %.3fs  (speedup %.1fx)\n",
              prsim_seconds / queries.size(), probe_seconds / queries.size(),
              probe_seconds / std::max(prsim_seconds, 1e-9));
  std::printf("mean top-10 agreement: %.0f%%\n",
              100.0 * overlap_sum / queries.size());
  return 0;
}
