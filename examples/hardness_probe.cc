// Hardness probe: quantify how hard single-source SimRank will be on a graph
// BEFORE running queries, using the paper's theory (Sections 1 and 3.5).
//
//   $ ./hardness_probe
//
// For a family of graphs with different out-degree exponents, prints:
//   * the fitted cumulative out-degree exponent gamma;
//   * the reverse-PageRank second moment sum_w pi(w)^2 (Theorem 3.11's cost
//     driver) and the Zipf fit beta ~ 1/gamma;
//   * PRSim's measured mean query time.
// The table makes the paper's Conjecture 1 tangible: hardness tracks 1/gamma,
// which is how the IT-2004 vs Twitter discrepancy is explained.

#include <cstdio>

#include "core/engine_registry.h"
#include "eval/pooling.h"
#include "gen/chung_lu.h"
#include "graph/stats.h"
#include "ppr/reverse_pagerank.h"
#include "util/timer.h"

int main() {
  using namespace prsim;

  std::printf(
      "%-8s %-10s %-12s %-10s %-14s %-12s\n", "gamma*", "fit gamma",
      "sum pi^2", "beta fit", "index (MB)", "query (ms)");

  for (double gamma : {1.2, 1.6, 2.0, 3.0, 5.0}) {
    ChungLuOptions gen;
    gen.n = 100000;
    gen.avg_degree = 10;
    gen.gamma_out = gamma;
    gen.seed = 17;
    Graph graph = GenerateChungLu(gen).ValueOrDie();

    // Structural hardness statistics.
    const PowerLawFit fit = FitDegreeExponent(graph, DegreeDirection::kOut);
    auto pi = ComputeReversePageRank(graph, {.c = 0.6});
    const PageRankHardness hardness = AnalyzePageRankVector(pi);

    // Measured PRSim behavior (constructed through the registry).
    auto prsim_result =
        EngineRegistry::Global().Create("prsim", graph, "eps=0.1,seed=3");
    prsim_result.status().Abort();
    SingleSourceSimRank& prsim = *prsim_result.ValueOrDie();
    prsim.Preprocess().Abort();
    const auto queries = SampleQueryNodes(graph, 8, 55);
    WallTimer timer;
    for (NodeId u : queries) prsim.Query(u);
    const double ms = timer.Seconds() * 1000.0 / queries.size();

    std::printf("%-8.1f %-10.2f %-12.3e %-10.2f %-14.2f %-12.2f\n", gamma,
                fit.gamma, hardness.second_moment, hardness.beta,
                prsim.IndexBytes() / 1e6, ms);
  }

  std::printf(
      "\nreading: larger gamma -> smaller sum pi^2 -> cheaper queries "
      "(Conjecture 1).\n");
  return 0;
}
