// sqrt(c)-walk machinery (paper Section 2).
//
// A reverse sqrt(c)-discounted random walk from u terminates at the current
// node with probability 1 - sqrt(c) at every step and otherwise moves to a
// uniformly random *in*-neighbor. Everything in SimRank-land is expressed in
// terms of these walks:
//   * pi_l(u, w)  = Pr[walk from u terminates at w in exactly l steps]
//   * pi(u, w)    = sum_l pi_l(u, w)                  (reverse PPR)
//   * pi(w)       = avg_u pi(u, w)                    (reverse PageRank)
//   * s(u, v)     = Pr[walks from u and v meet]       (SimRank, [32])
//   * eta(w)      = Pr[two walks from w never meet at any step >= 1]
//
// Dangling convention (DESIGN.md Section 1): a walk that decides to move from
// a node with no in-neighbor is "lost" — it terminates nowhere. This matches
// the deterministic l-hop recurrence used by backward search / backward walks.

#ifndef PRSIM_PPR_WALKER_H_
#define PRSIM_PPR_WALKER_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace prsim {

/// Hard cap on walk depth. Survival beyond level L has probability
/// c^(L/2) — below 1e-9 at L = 64 for any c <= 0.8 — and capped walks are
/// treated as lost, which keeps every estimator (sub-)unbiased.
inline constexpr uint32_t kMaxWalkLevel = 64;

/// Outcome of one sqrt(c)-walk.
struct WalkOutcome {
  NodeId terminal = 0;   ///< termination node (valid iff terminated)
  uint32_t steps = 0;    ///< number of moves taken before terminating
  bool terminated = false;  ///< false if the walk was lost at a dangling node
};

/// \brief Stateless sampler of sqrt(c)-walks over one graph.
class Walker {
 public:
  /// `c` is the SimRank decay factor in (0, 1); walks move with probability
  /// sqrt(c).
  Walker(const Graph& graph, double c);

  double sqrt_c() const { return sqrt_c_; }
  double c() const { return sqrt_c_ * sqrt_c_; }

  /// Samples one sqrt(c)-walk from u.
  WalkOutcome SampleWalk(NodeId u, Rng& rng) const;

  /// Samples two independent sqrt(c)-walks from w and reports whether they
  /// meet: both alive after step i >= 1 and on the same node. Used to sample
  /// the last-meeting probability eta(w) (Definition 2.1): the returned value
  /// is true with probability 1 - eta(w).
  bool SamplePairMeets(NodeId w, Rng& rng) const;

  /// Monte Carlo estimate of eta(w) from `samples` independent pairs.
  double EstimateEta(NodeId w, uint64_t samples, Rng& rng) const;

  /// Monte Carlo single-pair SimRank: fraction of `samples` walk pairs from
  /// (u, v) that meet. Exactly the classic MC estimator of [12, 32].
  double EstimateSimRank(NodeId u, NodeId v, uint64_t samples, Rng& rng) const;

 private:
  /// Advances a live walk position by one move. Returns false if the walk is
  /// lost (dangling node).
  bool Step(NodeId& pos, Rng& rng) const {
    const uint32_t din = graph_.InDegree(pos);
    if (din == 0) return false;
    pos = graph_.InNeighborAt(pos, rng.NextIndex(din));
    return true;
  }

  const Graph& graph_;
  double sqrt_c_;
};

}  // namespace prsim

#endif  // PRSIM_PPR_WALKER_H_
