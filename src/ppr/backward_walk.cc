#include "ppr/backward_walk.h"

#include <cmath>

#include "util/logging.h"

namespace prsim {

BackwardWalker::BackwardWalker(const Graph& graph, double c) : graph_(graph) {
  PRSIM_CHECK(c > 0 && c < 1) << "decay factor must lie in (0, 1)";
  sqrt_c_ = std::sqrt(c);
  term_ = 1.0 - sqrt_c_;
}

BackwardWalkResult BackwardWalker::RunSimple(NodeId w, uint32_t target_level,
                                             Rng& rng) {
  return Run<false>(w, target_level, rng);
}

BackwardWalkResult BackwardWalker::RunVarianceBounded(NodeId w,
                                                      uint32_t target_level,
                                                      Rng& rng) {
  return Run<true>(w, target_level, rng);
}

template <bool kVarianceBounded>
BackwardWalkResult BackwardWalker::Run(NodeId w, uint32_t target_level,
                                       Rng& rng) {
  BackwardWalkResult result;
  cur_.clear();
  next_.clear();
  cur_[w] = term_;  // pi_hat_0(w, w) = 1 - sqrt_c
  result.increments = 1;

  for (uint32_t level = 0; level < target_level; ++level) {
    if (cur_.empty()) break;
    cur_.ForEach([&](uint64_t key, const double& estimate) {
      const auto x = static_cast<NodeId>(key);
      const auto outs = graph_.OutNeighbors(x);
      const auto degs = graph_.OutNeighborInDegrees(x);
      if constexpr (kVarianceBounded) {
        // Algorithm 3: continue with probability sqrt_c. Out-neighbors with
        // in-degree <= estimate/(1-sqrt_c) receive the exact share
        // estimate/d_in(y) (each such increment is >= 1-sqrt_c, which is what
        // bounds the cost); higher-degree out-neighbors receive a fixed
        // (1-sqrt_c) increment with probability estimate/(d_in(y)(1-sqrt_c)),
        // realized by thresholding one uniform draw against the sorted
        // in-degree prefix.
        if (rng.NextDouble() >= sqrt_c_) return;
        const double exact_threshold = estimate / term_;
        size_t i = 0;
        for (; i < outs.size() && degs[i] <= exact_threshold; ++i) {
          next_[outs[i]] += estimate / degs[i];
          ++result.increments;
        }
        if (i < outs.size()) {
          const double r = rng.NextDouble();
          const double sampled_threshold = exact_threshold / r;
          for (; i < outs.size() && degs[i] <= sampled_threshold; ++i) {
            next_[outs[i]] += term_;
            ++result.increments;
          }
        }
      } else {
        // Algorithm 2: every out-neighbor y with d_in(y) <= sqrt_c / r gets
        // the full current estimate, i.e. an increment of estimate with
        // probability sqrt_c / d_in(y).
        const double r = rng.NextDouble();
        const double threshold = sqrt_c_ / r;
        for (size_t i = 0; i < outs.size() && degs[i] <= threshold; ++i) {
          next_[outs[i]] += estimate;
          ++result.increments;
        }
      }
    });
    cur_.clear();
    std::swap(cur_, next_);
  }

  result.estimates.reserve(cur_.size());
  cur_.ForEach([&](uint64_t key, const double& estimate) {
    result.estimates.emplace_back(static_cast<NodeId>(key), estimate);
  });
  return result;
}

template BackwardWalkResult BackwardWalker::Run<false>(NodeId, uint32_t, Rng&);
template BackwardWalkResult BackwardWalker::Run<true>(NodeId, uint32_t, Rng&);

}  // namespace prsim
