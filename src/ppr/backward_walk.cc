#include "ppr/backward_walk.h"

#include <cmath>

#include "util/logging.h"

namespace prsim {

BackwardWalker::BackwardWalker(const Graph& graph, double c) : graph_(graph) {
  PRSIM_CHECK(c > 0 && c < 1) << "decay factor must lie in (0, 1)";
  sqrt_c_ = std::sqrt(c);
  term_ = 1.0 - sqrt_c_;
}

BackwardWalkResult BackwardWalker::RunSimple(NodeId w, uint32_t target_level,
                                             Rng& rng) {
  BackwardWalkResult result;
  result.increments =
      RunSimple(w, target_level, rng, [&](NodeId v, double estimate) {
        result.estimates.emplace_back(v, estimate);
      });
  return result;
}

BackwardWalkResult BackwardWalker::RunVarianceBounded(NodeId w,
                                                      uint32_t target_level,
                                                      Rng& rng) {
  BackwardWalkResult result;
  result.increments =
      RunVarianceBounded(w, target_level, rng, [&](NodeId v, double estimate) {
        result.estimates.emplace_back(v, estimate);
      });
  return result;
}

}  // namespace prsim
