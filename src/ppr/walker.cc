#include "ppr/walker.h"

#include <cmath>

#include "util/logging.h"

namespace prsim {

Walker::Walker(const Graph& graph, double c) : graph_(graph) {
  PRSIM_CHECK(c > 0 && c < 1) << "decay factor must lie in (0, 1), got " << c;
  sqrt_c_ = std::sqrt(c);
}

WalkOutcome Walker::SampleWalk(NodeId u, Rng& rng) const {
  WalkOutcome out;
  NodeId pos = u;
  for (uint32_t step = 0; step < kMaxWalkLevel; ++step) {
    if (rng.NextDouble() >= sqrt_c_) {
      out.terminal = pos;
      out.steps = step;
      out.terminated = true;
      return out;
    }
    if (!Step(pos, rng)) {
      return out;  // lost at a dangling node
    }
  }
  return out;  // capped: treated as lost (probability < 1e-9)
}

bool Walker::SamplePairMeets(NodeId w, Rng& rng) const {
  NodeId a = w;
  NodeId b = w;
  for (uint32_t step = 0; step < kMaxWalkLevel; ++step) {
    // Each walk independently decides to continue; a stop by either walk
    // makes any future meeting impossible.
    if (rng.NextDouble() >= sqrt_c_) return false;
    if (rng.NextDouble() >= sqrt_c_) return false;
    if (!Step(a, rng)) return false;
    if (!Step(b, rng)) return false;
    if (a == b) return true;  // met at step >= 1
  }
  return false;
}

double Walker::EstimateEta(NodeId w, uint64_t samples, Rng& rng) const {
  PRSIM_CHECK(samples > 0);
  uint64_t meets = 0;
  for (uint64_t i = 0; i < samples; ++i) {
    meets += SamplePairMeets(w, rng) ? 1 : 0;
  }
  return 1.0 - static_cast<double>(meets) / static_cast<double>(samples);
}

double Walker::EstimateSimRank(NodeId u, NodeId v, uint64_t samples,
                               Rng& rng) const {
  PRSIM_CHECK(samples > 0);
  if (u == v) return 1.0;
  uint64_t meets = 0;
  for (uint64_t i = 0; i < samples; ++i) {
    NodeId a = u;
    NodeId b = v;
    for (uint32_t step = 0; step < kMaxWalkLevel; ++step) {
      if (rng.NextDouble() >= sqrt_c_) break;
      if (rng.NextDouble() >= sqrt_c_) break;
      if (!Step(a, rng)) break;
      if (!Step(b, rng)) break;
      if (a == b) {
        ++meets;
        break;
      }
    }
  }
  return static_cast<double>(meets) / static_cast<double>(samples);
}

}  // namespace prsim
