// Randomized backward walks: paper Algorithms 2 and 3.
//
// Both algorithms produce unbiased estimators pi_hat_l(v, w) of the l-hop
// reverse personalized PageRank *to* a target node w, for every v, in
// O(n * pi(w)) expected time — the output-sensitive optimum. They exploit the
// in-degree-ordered out-adjacency of Graph: at each node x only the prefix of
// O(x) whose in-degree is below a (randomized) threshold is visited, which is
// how the cost avoids the full-neighborhood scans of ProbeSim's Probe.
//
//  * SimpleBackwardWalk (Algorithm 2) is unbiased but its estimator variance
//    is unbounded (see the star-gadget example in Section 3.4).
//  * VarianceBoundedBackwardWalk (Algorithm 3) additionally guarantees
//    Var[pi_hat_l(v, w)] <= pi_l(v, w) (Lemma 3.5), which is what lets PRSim
//    apply Chebyshev + the median trick.
//
// The primary API emits (node, estimate) pairs into a caller-provided sink,
// so the per-walk hot path performs no allocation: query engines accumulate
// straight into their pooled workspace maps. The vector-returning overloads
// remain for tests and the ablation bench, which want materialized results.

#ifndef PRSIM_PPR_BACKWARD_WALK_H_
#define PRSIM_PPR_BACKWARD_WALK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/flat_hash_map2.h"
#include "util/rng.h"

namespace prsim {

/// Materialized walk output (the allocating convenience form): sparse
/// estimates at the target level plus cost accounting.
struct BackwardWalkResult {
  /// Non-zero pi_hat_target_level(v, w) entries.
  std::vector<std::pair<NodeId, double>> estimates;
  /// Number of estimator increments performed (the quantity bounded by
  /// O(n pi(w) / (1 - sqrt_c)) in Lemma 3.4).
  uint64_t increments = 0;
};

/// \brief Reusable backward-walk engine (scratch maps are recycled between
/// calls; not thread-safe — use one engine per thread).
class BackwardWalker {
 public:
  BackwardWalker(const Graph& graph, double c);

  /// Algorithm 2. Unbiased, unbounded variance; kept for the ablation bench
  /// and as a correctness cross-check. Emits every non-zero
  /// pi_hat_target_level(v, w) as sink(v, estimate); returns the increment
  /// count. No allocation beyond growing the recycled scratch maps.
  template <typename Sink>
  uint64_t RunSimple(NodeId w, uint32_t target_level, Rng& rng, Sink&& sink) {
    return Run<false>(w, target_level, rng, sink);
  }

  /// Algorithm 3. Unbiased with Var[pi_hat] <= pi_l(v, w); same sink
  /// contract as RunSimple.
  template <typename Sink>
  uint64_t RunVarianceBounded(NodeId w, uint32_t target_level, Rng& rng,
                              Sink&& sink) {
    return Run<true>(w, target_level, rng, sink);
  }

  /// Allocating conveniences for tests/benches; the query engines use the
  /// sink overloads.
  BackwardWalkResult RunSimple(NodeId w, uint32_t target_level, Rng& rng);
  BackwardWalkResult RunVarianceBounded(NodeId w, uint32_t target_level,
                                        Rng& rng);

  double sqrt_c() const { return sqrt_c_; }

  /// Combined capacity of the recycled frontier scratch (maps + insertion-
  /// order key vectors) — the workspace-reuse probe: steady-state walks must
  /// not grow it.
  size_t ScratchCapacity() const {
    return cur_.capacity() + next_.capacity() + cur_keys_.capacity() +
           next_keys_.capacity();
  }

 private:
  template <bool kVarianceBounded, typename Sink>
  uint64_t Run(NodeId w, uint32_t target_level, Rng& rng, Sink&& sink);

  /// Accumulates `delta` for `y` in the next frontier in insertion order.
  void AccumulateNext(NodeId y, double delta) {
    OrderedSlot(next_, next_keys_, y) += delta;
  }

  /// Empties the scratch and equalizes the capacities of the two sides.
  /// cur_/next_ are swapped a per-walk-varying number of times, so without
  /// equalization a walk's growth decisions would depend on which side the
  /// larger retained buffer happens to sit in — i.e. on engine history.
  /// Symmetric capacities make reuse allocation-free: a repeated walk
  /// sequence never regrows scratch that already fit it.
  void ResetScratch() {
    cur_.clear();
    next_.clear();
    cur_keys_.clear();
    next_keys_.clear();
    if (cur_.capacity() < next_.capacity()) {
      cur_.Reserve(next_.capacity());
    } else if (next_.capacity() < cur_.capacity()) {
      next_.Reserve(cur_.capacity());
    }
    if (cur_keys_.capacity() < next_keys_.capacity()) {
      cur_keys_.reserve(next_keys_.capacity());
    } else if (next_keys_.capacity() < cur_keys_.capacity()) {
      next_keys_.reserve(cur_keys_.capacity());
    }
  }

  const Graph& graph_;
  double sqrt_c_;
  double term_;  // 1 - sqrt_c
  // Frontier maps plus their keys in insertion order. The walk consumes RNG
  // draws while iterating the frontier, so iteration MUST NOT follow the
  // maps' slot order: slot layout depends on the scratch capacity retained
  // from earlier walks, and draw-to-node association would then depend on
  // engine history. Insertion order is a pure function of the walk itself,
  // which is what keeps queries pure functions of (seed, source).
  FlatHashMap2<double> cur_{64};
  FlatHashMap2<double> next_{64};
  std::vector<NodeId> cur_keys_;
  std::vector<NodeId> next_keys_;
};

template <bool kVarianceBounded, typename Sink>
uint64_t BackwardWalker::Run(NodeId w, uint32_t target_level, Rng& rng,
                             Sink&& sink) {
  uint64_t increments = 1;
  ResetScratch();
  cur_[w] = term_;  // pi_hat_0(w, w) = 1 - sqrt_c
  cur_keys_.push_back(w);

  for (uint32_t level = 0; level < target_level; ++level) {
    if (cur_keys_.empty()) break;
    for (const NodeId x : cur_keys_) {
      const double estimate = *cur_.Find(x);
      const auto outs = graph_.OutNeighbors(x);
      const auto degs = graph_.OutNeighborInDegrees(x);
      if constexpr (kVarianceBounded) {
        // Algorithm 3: continue with probability sqrt_c. Out-neighbors with
        // in-degree <= estimate/(1-sqrt_c) receive the exact share
        // estimate/d_in(y) (each such increment is >= 1-sqrt_c, which is what
        // bounds the cost); higher-degree out-neighbors receive a fixed
        // (1-sqrt_c) increment with probability estimate/(d_in(y)(1-sqrt_c)),
        // realized by thresholding one uniform draw against the sorted
        // in-degree prefix.
        if (rng.NextDouble() >= sqrt_c_) continue;
        const double exact_threshold = estimate / term_;
        size_t i = 0;
        for (; i < outs.size() && degs[i] <= exact_threshold; ++i) {
          AccumulateNext(outs[i], estimate / degs[i]);
          ++increments;
        }
        if (i < outs.size()) {
          const double r = rng.NextDouble();
          const double sampled_threshold = exact_threshold / r;
          for (; i < outs.size() && degs[i] <= sampled_threshold; ++i) {
            AccumulateNext(outs[i], term_);
            ++increments;
          }
        }
      } else {
        // Algorithm 2: every out-neighbor y with d_in(y) <= sqrt_c / r gets
        // the full current estimate, i.e. an increment of estimate with
        // probability sqrt_c / d_in(y).
        const double r = rng.NextDouble();
        const double threshold = sqrt_c_ / r;
        for (size_t i = 0; i < outs.size() && degs[i] <= threshold; ++i) {
          AccumulateNext(outs[i], estimate);
          ++increments;
        }
      }
    }
    cur_.clear();
    cur_keys_.clear();
    std::swap(cur_, next_);
    std::swap(cur_keys_, next_keys_);
  }

  for (const NodeId v : cur_keys_) {
    sink(v, *cur_.Find(v));
  }
  // Leave the scratch empty and equalized so the state BETWEEN walks is the
  // deterministic one (the start-of-run reset is just a guard): a repeated
  // walk sequence reaches its high-water capacity once and never changes it
  // again, which is what the workspace-reuse probe asserts.
  ResetScratch();
  return increments;
}

}  // namespace prsim

#endif  // PRSIM_PPR_BACKWARD_WALK_H_
