// Randomized backward walks: paper Algorithms 2 and 3.
//
// Both algorithms produce unbiased estimators pi_hat_l(v, w) of the l-hop
// reverse personalized PageRank *to* a target node w, for every v, in
// O(n * pi(w)) expected time — the output-sensitive optimum. They exploit the
// in-degree-ordered out-adjacency of Graph: at each node x only the prefix of
// O(x) whose in-degree is below a (randomized) threshold is visited, which is
// how the cost avoids the full-neighborhood scans of ProbeSim's Probe.
//
//  * SimpleBackwardWalk (Algorithm 2) is unbiased but its estimator variance
//    is unbounded (see the star-gadget example in Section 3.4).
//  * VarianceBoundedBackwardWalk (Algorithm 3) additionally guarantees
//    Var[pi_hat_l(v, w)] <= pi_l(v, w) (Lemma 3.5), which is what lets PRSim
//    apply Chebyshev + the median trick.

#ifndef PRSIM_PPR_BACKWARD_WALK_H_
#define PRSIM_PPR_BACKWARD_WALK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/flat_hash_map.h"
#include "util/rng.h"

namespace prsim {

/// Sparse estimates at the target level plus cost accounting.
struct BackwardWalkResult {
  /// Non-zero pi_hat_target_level(v, w) entries.
  std::vector<std::pair<NodeId, double>> estimates;
  /// Number of estimator increments performed (the quantity bounded by
  /// O(n pi(w) / (1 - sqrt_c)) in Lemma 3.4).
  uint64_t increments = 0;
};

/// \brief Reusable backward-walk engine (scratch maps are recycled between
/// calls; not thread-safe — use one engine per thread).
class BackwardWalker {
 public:
  BackwardWalker(const Graph& graph, double c);

  /// Algorithm 2. Unbiased, unbounded variance; kept for the ablation bench
  /// and as a correctness cross-check.
  BackwardWalkResult RunSimple(NodeId w, uint32_t target_level, Rng& rng);

  /// Algorithm 3. Unbiased with Var[pi_hat] <= pi_l(v, w).
  BackwardWalkResult RunVarianceBounded(NodeId w, uint32_t target_level,
                                        Rng& rng);

  double sqrt_c() const { return sqrt_c_; }

 private:
  template <bool kVarianceBounded>
  BackwardWalkResult Run(NodeId w, uint32_t target_level, Rng& rng);

  const Graph& graph_;
  double sqrt_c_;
  double term_;  // 1 - sqrt_c
  FlatHashMap<double> cur_{64};
  FlatHashMap<double> next_{64};
};

}  // namespace prsim

#endif  // PRSIM_PPR_BACKWARD_WALK_H_
