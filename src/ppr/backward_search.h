// Leveled backward search (Lofgren et al. [27]; paper Algorithm 1, lines 6-17).
//
// Deterministically approximates the l-hop reverse personalized PageRank
// pi_l(v, w) *to* a fixed target w for every source v and level l. Residues
// r_l(v, w) represent unconverted walk mass; pushing a residue converts a
// (1 - sqrt_c) fraction into reserve psi_l(v, w) and forwards sqrt_c,
// split as r_{l+1}(z, w) += sqrt_c * r_l(v, w) / d_in(z) to each out-neighbor
// z of v. Residues at or below rmax are dropped, bounding the per-entry error:
// |psi_l(v, w) - pi_l(v, w)| < rmax (Lemma 3.1).

#ifndef PRSIM_PPR_BACKWARD_SEARCH_H_
#define PRSIM_PPR_BACKWARD_SEARCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace prsim {

struct BackwardSearchOptions {
  double c = 0.6;       ///< SimRank decay; propagation factor is sqrt(c)
  double rmax = 1e-4;   ///< residue threshold (paper: (1-sqrt_c)^2 eps / 12)
  uint32_t max_level = 64;
  /// Keep only reserves strictly above this value in the output (Algorithm 1
  /// line 15 keeps psi > rmax; set to 0 to keep everything for testing).
  double keep_threshold = -1.0;  ///< < 0 means "use rmax"
};

/// Reserves for one target node, per level.
struct BackwardSearchResult {
  /// levels[l] lists (v, psi_l(v, w)); levels absent past the last non-empty.
  std::vector<std::vector<std::pair<NodeId, float>>> levels;
  /// Total residue-push edge operations (cost accounting for Lemma 3.2).
  uint64_t push_operations = 0;

  /// Number of stored (v, psi) tuples across all levels.
  size_t TupleCount() const {
    size_t count = 0;
    for (const auto& level : levels) count += level.size();
    return count;
  }
};

/// Runs the backward search from target w.
BackwardSearchResult BackwardSearch(const Graph& graph, NodeId w,
                                    const BackwardSearchOptions& options);

}  // namespace prsim

#endif  // PRSIM_PPR_BACKWARD_SEARCH_H_
