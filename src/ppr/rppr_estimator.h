// eps-accurate reverse PPR estimation to a target node.
//
// The paper notes (Section 1, contribution 2) that the Variance Bounded
// Backward Walk "improves the time complexity of state-of-the-art PPR
// algorithms to target nodes for dense graphs and may be of independent
// interest". This module packages that claim as a standalone API: given a
// target w, estimate pi_l(v, w) (or the aggregate pi(v, w)) for every source
// v with additive error eps at probability 1 - delta, in
// O(n pi(w) log(n/delta)/eps^2) expected time — compared to
// O(n log(n/delta)/eps^2) for the Randomized Probe of [25].
//
// Estimation runs fr = 3 ln(n/delta) rounds of dr = ceil(alpha/eps^2)
// variance-bounded walks and returns per-node medians of the round means
// (the same median-of-means argument as PRSim's Lemma 3.7, powered by
// Var[pi_hat] <= pi from Lemma 3.5).
//
// Like PRSim::Query, the (round, j) sample grid runs as static chunks on the
// shared ThreadPool with positional per-chunk RNG substreams and a
// fixed-order merge (util/sample_grid.h), so every estimate is a pure
// function of (seed, w[, level]) — bit-identical for any `threads` value —
// and the walk scratch is pooled across calls.

#ifndef PRSIM_PPR_RPPR_ESTIMATOR_H_
#define PRSIM_PPR_RPPR_ESTIMATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "ppr/backward_walk.h"
#include "util/rng.h"

namespace prsim {

struct RpprEstimatorOptions {
  double c = 0.6;
  double eps = 0.01;
  double delta = 1e-4;
  /// Paper constants use alpha = 12; the practical default trades the
  /// union-bound constant for speed like PRSimOptions does.
  double alpha = 3.0;
  /// Practical-mode round count (forced odd); 0 derives 3 ln(n/delta).
  uint32_t rounds = 7;
  /// Workers for the sample grid (0 = DefaultThreadCount()). Estimates
  /// never depend on this value — see the header comment.
  size_t threads = 0;
  uint64_t seed = 71;
};

struct RpprEstimate {
  /// Non-zero estimates of pi_l(v, w) (or pi(v, w) in aggregate mode).
  std::vector<std::pair<NodeId, double>> values;
  uint64_t total_walk_increments = 0;  ///< cost accounting
};

/// \brief Median-of-means RPPR estimator built on Algorithm 3.
class RpprEstimator {
 public:
  RpprEstimator(const Graph& graph, const RpprEstimatorOptions& options);
  ~RpprEstimator();

  /// Estimates the level-l RPPR slice pi_l(v, w) for all v. `level` must
  /// be <= kMaxWalkLevel (deeper slices are all-zero by the walk cap, and
  /// the tag kMaxWalkLevel + 1 is reserved for the aggregate's substream).
  RpprEstimate EstimateLevel(NodeId w, uint32_t level);

  /// Estimates the aggregate pi(v, w) = sum_l pi_l(v, w) for all v, summing
  /// level estimates until the geometric tail c^(l/2) drops below eps / 4.
  RpprEstimate EstimateAggregate(NodeId w);

  uint64_t samples_per_round() const { return dr_; }
  uint32_t rounds() const { return fr_; }

 private:
  struct Workspace;

  /// Runs the chunked sample grid: `sample(chunk, emit)` draws one sample
  /// into the chunk's workspace, then chunk partials are merged in grid
  /// order and reduced to per-node medians of round means. `stream` keys
  /// the RNG substreams (one decorrelated family per estimation target).
  template <typename Sample>
  RpprEstimate MedianOfMeans(uint64_t stream, Sample&& sample);

  const Graph& graph_;
  RpprEstimatorOptions options_;
  std::unique_ptr<Workspace> workspace_;
  uint64_t dr_ = 0;
  uint32_t fr_ = 0;
  uint32_t max_level_ = 0;
};

}  // namespace prsim

#endif  // PRSIM_PPR_RPPR_ESTIMATOR_H_
