#include "ppr/rppr_estimator.h"

#include <algorithm>
#include <cmath>

#include "ppr/walker.h"
#include "util/flat_hash_map.h"
#include "util/logging.h"

namespace prsim {

RpprEstimator::RpprEstimator(const Graph& graph,
                             const RpprEstimatorOptions& options)
    : graph_(graph), options_(options), walker_(graph, options.c),
      rng_(options.seed) {
  PRSIM_CHECK(options_.eps > 0);
  PRSIM_CHECK(options_.delta > 0 && options_.delta < 1);
  dr_ = static_cast<uint64_t>(
      std::ceil(options_.alpha / (options_.eps * options_.eps)));
  dr_ = std::max<uint64_t>(dr_, 1);
  const double n = std::max<double>(graph_.n(), 2);
  fr_ = options_.rounds > 0
            ? options_.rounds
            : static_cast<uint32_t>(
                  std::ceil(3.0 * std::log(n / options_.delta)));
  fr_ |= 1;
  // Levels beyond L contribute at most sqrt(c)^L < eps/4 in aggregate.
  const double sqrt_c = std::sqrt(options_.c);
  max_level_ = static_cast<uint32_t>(
      std::ceil(std::log(options_.eps / 4.0) / std::log(sqrt_c)));
  max_level_ = std::min(max_level_, kMaxWalkLevel);
}

template <typename RunLevel>
RpprEstimate RpprEstimator::MedianOfMeans(RunLevel&& run) {
  RpprEstimate out;
  FlatHashMap<uint32_t> slot_of(1024);
  std::vector<NodeId> nodes;
  std::vector<double> columns;  // fr_ doubles per slot

  for (uint32_t round = 0; round < fr_; ++round) {
    for (uint64_t j = 0; j < dr_; ++j) {
      run([&](NodeId v, double value) {
        uint32_t& slot = slot_of[v];
        if (slot == 0) {
          nodes.push_back(v);
          columns.resize(columns.size() + fr_, 0.0);
          slot = static_cast<uint32_t>(nodes.size());
        }
        columns[static_cast<size_t>(slot - 1) * fr_ + round] +=
            value / static_cast<double>(dr_);
      });
    }
  }

  std::vector<double> buffer(fr_);
  out.values.reserve(nodes.size());
  for (size_t slot = 0; slot < nodes.size(); ++slot) {
    const double* column = &columns[slot * fr_];
    std::copy(column, column + fr_, buffer.begin());
    auto mid = buffer.begin() + fr_ / 2;
    std::nth_element(buffer.begin(), mid, buffer.end());
    if (*mid > 0) out.values.emplace_back(nodes[slot], *mid);
  }
  return out;
}

RpprEstimate RpprEstimator::EstimateLevel(NodeId w, uint32_t level) {
  PRSIM_CHECK(w < graph_.n());
  uint64_t increments = 0;
  RpprEstimate out = MedianOfMeans([&](auto&& emit) {
    const BackwardWalkResult result =
        walker_.RunVarianceBounded(w, level, rng_);
    increments += result.increments;
    for (const auto& [v, value] : result.estimates) emit(v, value);
  });
  out.total_walk_increments = increments;
  return out;
}

RpprEstimate RpprEstimator::EstimateAggregate(NodeId w) {
  PRSIM_CHECK(w < graph_.n());
  uint64_t increments = 0;
  RpprEstimate out = MedianOfMeans([&](auto&& emit) {
    // One variance-bounded walk per level; the per-sample aggregate is the
    // sum of unbiased level estimates, itself unbiased for pi(v, w) up to
    // the truncated < eps/4 tail.
    for (uint32_t level = 0; level <= max_level_; ++level) {
      const BackwardWalkResult result =
          walker_.RunVarianceBounded(w, level, rng_);
      increments += result.increments;
      for (const auto& [v, value] : result.estimates) emit(v, value);
    }
  });
  out.total_walk_increments = increments;
  return out;
}

}  // namespace prsim
