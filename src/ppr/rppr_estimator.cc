#include "ppr/rppr_estimator.h"

#include <algorithm>
#include <cmath>

#include "ppr/walker.h"
#include "util/flat_hash_map2.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/sample_grid.h"

namespace prsim {

/// Pooled scratch, mirroring PRSim::QueryWorkspace: one slot per static
/// sample chunk plus the merge-pass accumulators, all reused across calls.
struct RpprEstimator::Workspace {
  struct Chunk {
    Chunk(const Graph& graph, double c) : backward(graph, c) {}
    /// Partial per-node sums of this chunk's round (values / dr), with the
    /// keys in insertion order — the merge iterates acc_keys, never the
    /// map, so the output never depends on capacity retained from earlier
    /// estimates (see PRSim::QueryWorkspace).
    FlatHashMap2<double> acc{256};
    std::vector<NodeId> acc_keys;
    BackwardWalker backward;
    Rng rng{0};
    uint64_t increments = 0;
  };

  Workspace(const Graph& graph, double c, uint32_t rounds,
            uint64_t samples_per_round)
      : tasks(BuildSampleChunks(rounds, samples_per_round)) {
    chunks.reserve(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) chunks.emplace_back(graph, c);
  }

  std::vector<SampleChunk> tasks;
  std::vector<Chunk> chunks;

  RoundColumns columns;  ///< per-(node, round) sums + median reduce
};

RpprEstimator::RpprEstimator(const Graph& graph,
                             const RpprEstimatorOptions& options)
    : graph_(graph), options_(options) {
  PRSIM_CHECK(options_.eps > 0);
  PRSIM_CHECK(options_.delta > 0 && options_.delta < 1);
  dr_ = static_cast<uint64_t>(
      std::ceil(options_.alpha / (options_.eps * options_.eps)));
  dr_ = std::max<uint64_t>(dr_, 1);
  const double n = std::max<double>(graph_.n(), 2);
  fr_ = options_.rounds > 0
            ? options_.rounds
            : static_cast<uint32_t>(
                  std::ceil(3.0 * std::log(n / options_.delta)));
  fr_ |= 1;
  // Levels beyond L contribute at most sqrt(c)^L < eps/4 in aggregate.
  const double sqrt_c = std::sqrt(options_.c);
  max_level_ = static_cast<uint32_t>(
      std::ceil(std::log(options_.eps / 4.0) / std::log(sqrt_c)));
  max_level_ = std::min(max_level_, kMaxWalkLevel);
}

RpprEstimator::~RpprEstimator() = default;

template <typename Sample>
RpprEstimate RpprEstimator::MedianOfMeans(uint64_t stream, Sample&& sample) {
  if (workspace_ == nullptr) {
    workspace_ = std::make_unique<Workspace>(graph_, options_.c, fr_, dr_);
  }
  Workspace& ws = *workspace_;
  const double inv_dr = 1.0 / static_cast<double>(dr_);

  // Phase 1: static chunks, one positional RNG substream each (the same
  // discipline as PRSim::Query — see util/sample_grid.h).
  const auto run_chunk = [&](size_t i) {
    const SampleChunk& task = ws.tasks[i];
    Workspace::Chunk& chunk = ws.chunks[i];
    chunk.acc.clear();
    chunk.acc_keys.clear();
    chunk.increments = 0;
    chunk.rng.Reseed(SampleChunkSeed(options_.seed, stream, task, dr_));
    for (uint64_t j = task.j_lo; j < task.j_hi; ++j) {
      sample(chunk, [&](NodeId v, double value) {
        OrderedSlot(chunk.acc, chunk.acc_keys, v) += value * inv_dr;
      });
    }
  };
  ParallelFor(0, ws.tasks.size(), run_chunk, options_.threads);

  // Phase 2: fixed-order merge of chunk partials into per-round columns,
  // then the median-of-rounds reduce (shared with PRSim's tail part).
  RpprEstimate out;
  ws.columns.Reset(fr_);
  for (size_t i = 0; i < ws.tasks.size(); ++i) {
    const uint32_t round = ws.tasks[i].round;
    Workspace::Chunk& chunk = ws.chunks[i];
    out.total_walk_increments += chunk.increments;
    for (const NodeId v : chunk.acc_keys) {
      ws.columns.Add(v, round, *chunk.acc.Find(v));
    }
  }

  out.values.reserve(ws.columns.key_count());
  ws.columns.ForEachMedian([&](uint64_t key, double median) {
    if (median > 0) out.values.emplace_back(static_cast<NodeId>(key), median);
  });
  return out;
}

RpprEstimate RpprEstimator::EstimateLevel(NodeId w, uint32_t level) {
  PRSIM_CHECK(w < graph_.n());
  // Guards the substream disjointness below: kMaxWalkLevel + 1 is reserved
  // as the aggregate stream tag (and walks are capped there anyway).
  PRSIM_CHECK(level <= kMaxWalkLevel) << "level exceeds kMaxWalkLevel";
  return MedianOfMeans(
      PackNodeLevel(w, level), [&](Workspace::Chunk& chunk, auto&& emit) {
        chunk.increments +=
            chunk.backward.RunVarianceBounded(w, level, chunk.rng, emit);
      });
}

RpprEstimate RpprEstimator::EstimateAggregate(NodeId w) {
  PRSIM_CHECK(w < graph_.n());
  // The aggregate stream uses a level tag no EstimateLevel call can produce
  // (levels are capped at kMaxWalkLevel), keeping the two substream
  // families disjoint for the same target.
  return MedianOfMeans(
      PackNodeLevel(w, kMaxWalkLevel + 1),
      [&](Workspace::Chunk& chunk, auto&& emit) {
        // One variance-bounded walk per level; the per-sample aggregate is
        // the sum of unbiased level estimates, itself unbiased for pi(v, w)
        // up to the truncated < eps/4 tail.
        for (uint32_t level = 0; level <= max_level_; ++level) {
          chunk.increments +=
              chunk.backward.RunVarianceBounded(w, level, chunk.rng, emit);
        }
      });
}

}  // namespace prsim
