#include "ppr/reverse_pagerank.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace prsim {

std::vector<double> ComputeReversePageRank(
    const Graph& graph, const ReversePageRankOptions& options) {
  PRSIM_CHECK(options.c > 0 && options.c < 1);
  const NodeId n = graph.n();
  const double sqrt_c = std::sqrt(options.c);
  std::vector<double> pi(n, 0.0);
  if (n == 0) return pi;

  // q[v] = Pr[walk from uniform source is alive at v after l moves].
  // pi accumulates the (1 - sqrt_c) termination slice of each level; the
  // remaining sqrt_c slice flows from each node to its in-neighbors, split
  // uniformly. Mass at dangling nodes evaporates, matching the walk
  // convention.
  std::vector<double> q(n, 1.0 / n);
  std::vector<double> q_next(n, 0.0);
  const double term = 1.0 - sqrt_c;
  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    double live = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const double mass = q[v];
      if (mass == 0.0) continue;
      pi[v] += term * mass;
      const uint32_t din = graph.InDegree(v);
      if (din == 0) continue;
      const double share = sqrt_c * mass / din;
      for (NodeId u : graph.InNeighbors(v)) {
        q_next[u] += share;
      }
      live += sqrt_c * mass;
    }
    q.swap(q_next);
    std::fill(q_next.begin(), q_next.end(), 0.0);
    if (live < options.tolerance) break;
  }
  return pi;
}

std::vector<NodeId> RankNodesByValue(const std::vector<double>& values) {
  std::vector<NodeId> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return values[a] > values[b];
  });
  return order;
}

}  // namespace prsim
