#include "ppr/backward_search.h"

#include <cmath>

#include "util/flat_hash_map.h"
#include "util/logging.h"

namespace prsim {

BackwardSearchResult BackwardSearch(const Graph& graph, NodeId w,
                                    const BackwardSearchOptions& options) {
  PRSIM_CHECK(options.c > 0 && options.c < 1);
  PRSIM_CHECK(options.rmax > 0);
  const double sqrt_c = std::sqrt(options.c);
  const double term = 1.0 - sqrt_c;
  const double keep = options.keep_threshold >= 0 ? options.keep_threshold
                                                  : options.rmax;

  BackwardSearchResult result;
  // Deliberately the v1 map: the ForEach below accumulates float residues
  // and emits reserve-list entries in SLOT order, and those bits/orders are
  // baked into every PRSim index artifact. Migrating to FlatHashMap2 would
  // change the iteration order and silently shift psi values at ULP scale.
  FlatHashMap<double> residue(16), residue_next(16);
  residue[w] = 1.0;

  for (uint32_t level = 0; level < options.max_level; ++level) {
    if (residue.empty()) break;
    std::vector<std::pair<NodeId, float>> reserves;
    bool pushed_any = false;
    residue.ForEach([&](uint64_t key, const double& r) {
      // Residues at or below rmax are dropped (their reserve contribution is
      // the approximation error Lemma 3.1 accounts for).
      if (r <= options.rmax) return;
      pushed_any = true;
      const auto v = static_cast<NodeId>(key);
      const double psi = term * r;
      if (psi > keep) {
        reserves.emplace_back(v, static_cast<float>(psi));
      }
      const auto outs = graph.OutNeighbors(v);
      const auto degs = graph.OutNeighborInDegrees(v);
      for (size_t i = 0; i < outs.size(); ++i) {
        residue_next[outs[i]] += sqrt_c * r / degs[i];
      }
      result.push_operations += outs.size();
    });
    if (!pushed_any) break;
    result.levels.push_back(std::move(reserves));
    residue.clear();
    std::swap(residue, residue_next);
  }
  // Trim trailing empty levels (reserves can be empty while pushes happened).
  while (!result.levels.empty() && result.levels.back().empty()) {
    result.levels.pop_back();
  }
  return result;
}

}  // namespace prsim
