// Exact reverse PageRank via power iteration.
//
// pi(w) is the probability that a sqrt(c)-walk from a uniformly random source
// terminates at w; equivalently the PageRank of w on the reversed graph with
// damping sqrt(c). PRSim uses pi to pick hub nodes (Algorithm 1, line 5) and
// its complexity analysis is parameterized by the second moment sum_w pi(w)^2
// (Theorem 3.11).

#ifndef PRSIM_PPR_REVERSE_PAGERANK_H_
#define PRSIM_PPR_REVERSE_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace prsim {

struct ReversePageRankOptions {
  double c = 0.6;            ///< SimRank decay; walk damping is sqrt(c)
  double tolerance = 1e-12;  ///< stop when residual live mass drops below
  /// Residual live mass decays by sqrt(c) per iteration; 320 iterations
  /// reach ~1e-15 even at c = 0.8.
  uint32_t max_iterations = 320;
};

/// Computes pi(w) for all w. The result sums to at most 1; the deficit is the
/// probability mass lost by walks that hit dangling (in-degree-0) nodes,
/// consistently with the walk convention in ppr/walker.h.
std::vector<double> ComputeReversePageRank(
    const Graph& graph, const ReversePageRankOptions& options = {});

/// Node ids sorted by descending value (ties broken by ascending id); the
/// first j0 entries are PRSim's hub nodes.
std::vector<NodeId> RankNodesByValue(const std::vector<double>& values);

}  // namespace prsim

#endif  // PRSIM_PPR_REVERSE_PAGERANK_H_
