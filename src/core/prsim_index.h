// PRSim preprocessing (paper Algorithm 1).
//
// The index stores, for each of the j0 nodes with the largest reverse
// PageRank ("hub nodes"), the per-level reserve lists produced by backward
// search: L_l(w) = { (v, psi_l(v, w)) : psi_l(v, w) > rmax }, where
// |psi_l(v, w) - pi_l(v, w)| < rmax = (1 - sqrt_c)^2 eps / 12 (Lemma 3.1).
// At query time, hub terminations of sqrt(c)-walks are resolved by reading
// L_l(w) instead of running backward walks; j0 trades index size for query
// cost (Lemma 3.2: index size O(n/eps * sum_{j<=j0} pi(w_j))).

#ifndef PRSIM_CORE_PRSIM_INDEX_H_
#define PRSIM_CORE_PRSIM_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "ppr/backward_search.h"
#include "util/flat_hash_map2.h"
#include "util/status.h"

namespace prsim {

struct PRSimIndexOptions {
  double c = 0.6;
  double eps = 0.1;
  /// Number of hub nodes; 0 selects sqrt(n) (the paper's experimental
  /// default). Setting j0 so the index stays O(m) corresponds to
  /// j0 = n (eps d̄)^(gamma/(gamma-1)) in the theory (Theorem 3.12).
  uint32_t j0 = 0;
  /// Residue threshold; <= 0 derives the paper value (1-sqrt_c)^2 eps / 12.
  double rmax = -1.0;
  uint32_t max_level = 64;
  /// Worker threads for per-hub backward searches (0 = hardware).
  size_t threads = 0;
};

class PRSimIndex {
 public:
  /// Builds the index: reverse PageRank, hub selection, one backward search
  /// per hub.
  static Result<PRSimIndex> Build(const Graph& graph,
                                  const PRSimIndexOptions& options);

  /// True if w is one of the j0 hub nodes.
  bool IsHub(NodeId w) const { return hub_slot_.Contains(w); }

  /// Reserve list L_l(w) for hub w at level l, or nullptr when w is not a hub
  /// or the hub has no reserves at that level.
  const std::vector<std::pair<NodeId, float>>* Find(NodeId w,
                                                    uint32_t level) const {
    const uint32_t* slot = hub_slot_.Find(w);
    if (slot == nullptr) return nullptr;
    const auto& levels = hub_levels_[*slot].levels;
    if (level >= levels.size() || levels[level].empty()) return nullptr;
    return &levels[level];
  }

  uint32_t hub_count() const {
    return static_cast<uint32_t>(hub_nodes_.size());
  }
  const std::vector<NodeId>& hub_nodes() const { return hub_nodes_; }

  /// Exact reverse PageRank computed during the build (kept for hardness
  /// analysis and diagnostics).
  const std::vector<double>& reverse_pagerank() const { return rpr_; }

  double rmax() const { return rmax_; }
  uint64_t total_tuples() const { return total_tuples_; }

  /// Bytes of index payload: hub lookup + all (v, psi) tuples.
  size_t IndexBytes() const;

 private:
  friend class PRSimIndexIO;

  struct HubLevels {
    std::vector<std::vector<std::pair<NodeId, float>>> levels;
  };

  FlatHashMap2<uint32_t> hub_slot_{64};  // node -> slot in hub_levels_
  std::vector<HubLevels> hub_levels_;
  std::vector<NodeId> hub_nodes_;
  std::vector<double> rpr_;
  double rmax_ = 0;
  uint64_t total_tuples_ = 0;
};

}  // namespace prsim

#endif  // PRSIM_CORE_PRSIM_INDEX_H_
