#include "core/index_io.h"

#include <utility>

#include "core/artifact.h"
#include "ppr/walker.h"
#include "util/serde.h"

namespace prsim {

namespace {

constexpr char kKind[] = "prsim-index";

}  // namespace

uint64_t PRSimIndexIO::OptionsHash(const PRSimIndexOptions& options) {
  return OptionsHasher()
      .Add("c", options.c)
      .Add("eps", options.eps)
      .Add("j0", options.j0)
      .Add("rmax", options.rmax)
      .Add("max_level", options.max_level)
      .hash();
}

Status PRSimIndexIO::Save(const PRSimIndex& index, const Graph& graph,
                          const PRSimIndexOptions& options,
                          const std::string& path) {
  ArtifactWriter artifact(path, kKind);
  WriteFingerprint(artifact.AddSection("fingerprint"),
                   MakeFingerprint(graph, OptionsHash(options)));
  ByteSink& writer = artifact.AddSection("index");
  writer.WritePod(index.rmax());
  writer.WritePod(index.hub_count());
  writer.WriteVector(index.reverse_pagerank());
  for (NodeId hub : index.hub_nodes()) {
    writer.WritePod(hub);
    uint32_t level_count = 0;
    for (uint32_t level = 0; level < kMaxWalkLevel; ++level) {
      if (index.Find(hub, level) != nullptr) ++level_count;
    }
    writer.WritePod(level_count);
    for (uint32_t level = 0; level < kMaxWalkLevel; ++level) {
      const auto* list = index.Find(hub, level);
      if (list == nullptr) continue;
      writer.WritePod(level);
      writer.WriteVector(*list);
    }
  }
  return artifact.Finish();
}

Result<PRSimIndex> PRSimIndexIO::Load(const Graph& graph,
                                      const PRSimIndexOptions& options,
                                      const std::string& path) {
  PRSIM_ASSIGN_OR_RETURN(ArtifactReader artifact,
                         ArtifactReader::Open(path, kKind));
  {
    PRSIM_ASSIGN_OR_RETURN(SectionReader fingerprint,
                           artifact.Section("fingerprint"));
    PRSIM_RETURN_NOT_OK(ReadAndCheckFingerprint(
        fingerprint, MakeFingerprint(graph, OptionsHash(options)), path));
  }
  PRSIM_ASSIGN_OR_RETURN(SectionReader reader, artifact.Section("index"));
  const NodeId n = graph.n();

  PRSimIndex index;
  uint32_t hub_count = 0;
  PRSIM_RETURN_NOT_OK(reader.ReadPod(&index.rmax_));
  PRSIM_RETURN_NOT_OK(reader.ReadPod(&hub_count));
  PRSIM_RETURN_NOT_OK(reader.ReadVector(&index.rpr_));
  if (hub_count > n || index.rpr_.size() != n) {
    return Status::IOError("corrupt prsim index header in '" + path + "'");
  }

  index.hub_levels_.resize(hub_count);
  index.hub_nodes_.resize(hub_count);
  for (uint32_t slot = 0; slot < hub_count; ++slot) {
    uint32_t hub = 0;
    uint32_t level_count = 0;
    PRSIM_RETURN_NOT_OK(reader.ReadPod(&hub));
    PRSIM_RETURN_NOT_OK(reader.ReadPod(&level_count));
    if (hub >= n || index.hub_slot_.Contains(hub) ||
        level_count > kMaxWalkLevel) {
      return Status::IOError("corrupt hub record in '" + path + "'");
    }
    index.hub_nodes_[slot] = hub;
    index.hub_slot_[hub] = slot;
    auto& levels = index.hub_levels_[slot].levels;
    for (uint32_t i = 0; i < level_count; ++i) {
      uint32_t level = 0;
      PRSIM_RETURN_NOT_OK(reader.ReadPod(&level));
      if (level >= kMaxWalkLevel) {
        return Status::IOError("corrupt level record in '" + path + "'");
      }
      if (levels.size() <= level) levels.resize(level + 1);
      auto& list = levels[level];
      PRSIM_RETURN_NOT_OK(reader.ReadVector(&list));
      for (const auto& [v, psi] : list) {
        if (v >= n) {
          return Status::IOError("corrupt reserve tuple in '" + path + "'");
        }
      }
      index.total_tuples_ += list.size();
    }
  }
  PRSIM_RETURN_NOT_OK(reader.Finish());
  return index;
}

}  // namespace prsim
