#include "core/index_io.h"

#include <cstring>
#include <fstream>

#include "ppr/walker.h"

namespace prsim {

namespace {

constexpr char kMagic[8] = {'P', 'R', 'S', 'I', 'M', 'I', 'X', '1'};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status PRSimIndexIO::Save(const PRSimIndex& index, const Graph& graph,
                          const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(out, graph.n());
  WritePod<double>(out, index.rmax());
  WritePod<uint32_t>(out, index.hub_count());

  const auto& rpr = index.reverse_pagerank();
  WritePod<uint64_t>(out, rpr.size());
  out.write(reinterpret_cast<const char*>(rpr.data()),
            static_cast<std::streamsize>(rpr.size() * sizeof(double)));

  for (NodeId hub : index.hub_nodes()) {
    WritePod<uint32_t>(out, hub);
    // Non-empty levels as (level, count, entries...) records, terminated by
    // level = 0xffffffff.
    for (uint32_t level = 0; level < kMaxWalkLevel; ++level) {
      const auto* list = index.Find(hub, level);
      if (list == nullptr) continue;
      WritePod<uint32_t>(out, level);
      WritePod<uint64_t>(out, static_cast<uint64_t>(list->size()));
      for (const auto& [v, psi] : *list) {
        WritePod<uint32_t>(out, v);
        WritePod<float>(out, psi);
      }
    }
    WritePod<uint32_t>(out, 0xffffffffu);
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

Result<PRSimIndex> PRSimIndexIO::Load(const Graph& graph,
                                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("'" + path + "' is not a prsim index file");
  }
  uint32_t n = 0;
  double rmax = 0;
  uint32_t hub_count = 0;
  if (!ReadPod(in, &n) || !ReadPod(in, &rmax) || !ReadPod(in, &hub_count)) {
    return Status::IOError("truncated index header in '" + path + "'");
  }
  if (n != graph.n()) {
    return Status::InvalidArgument(
        "index was built for a graph with n = " + std::to_string(n) +
        ", but the supplied graph has n = " + std::to_string(graph.n()));
  }

  PRSimIndex index;
  index.rmax_ = rmax;
  uint64_t rpr_size = 0;
  if (!ReadPod(in, &rpr_size) || rpr_size != n) {
    return Status::IOError("corrupt reverse PageRank block in '" + path +
                           "'");
  }
  index.rpr_.resize(rpr_size);
  in.read(reinterpret_cast<char*>(index.rpr_.data()),
          static_cast<std::streamsize>(rpr_size * sizeof(double)));
  if (!in) return Status::IOError("truncated reverse PageRank block");

  index.hub_levels_.resize(hub_count);
  index.hub_nodes_.resize(hub_count);
  for (uint32_t slot = 0; slot < hub_count; ++slot) {
    uint32_t hub = 0;
    if (!ReadPod(in, &hub) || hub >= n) {
      return Status::IOError("corrupt hub record in '" + path + "'");
    }
    index.hub_nodes_[slot] = hub;
    index.hub_slot_[hub] = slot;
    auto& levels = index.hub_levels_[slot].levels;
    while (true) {
      uint32_t level = 0;
      if (!ReadPod(in, &level)) {
        return Status::IOError("truncated hub levels in '" + path + "'");
      }
      if (level == 0xffffffffu) break;
      uint64_t count = 0;
      if (level >= kMaxWalkLevel || !ReadPod(in, &count)) {
        return Status::IOError("corrupt level record in '" + path + "'");
      }
      if (levels.size() <= level) levels.resize(level + 1);
      auto& list = levels[level];
      list.resize(count);
      for (auto& [v, psi] : list) {
        if (!ReadPod(in, &v) || !ReadPod(in, &psi) || v >= n) {
          return Status::IOError("corrupt reserve tuple in '" + path + "'");
        }
        ++index.total_tuples_;
      }
    }
  }
  return index;
}

}  // namespace prsim
