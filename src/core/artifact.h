// Artifact fingerprinting shared by every persistent engine index.
//
// An index artifact is only valid against the exact (graph, options) pair it
// was built from. Pairing a stale index with a different graph — or the same
// graph under different build options — silently skews every estimate, so
// each artifact embeds a fingerprint right after the serde envelope header:
//
//   n, m            — node and edge counts of the build graph;
//   graph_checksum  — FNV-1a over the CSR arrays, so two different graphs
//                     with identical (n, m) still mismatch;
//   options_hash    — FNV-1a over the canonical rendering of every option
//                     that shapes the index contents (thread counts and
//                     memory budgets are excluded: they change how an index
//                     is built, never what it holds).
//
// Loading validates all four fields before touching the payload and fails
// with kInvalidArgument naming the first mismatching field.

#ifndef PRSIM_CORE_ARTIFACT_H_
#define PRSIM_CORE_ARTIFACT_H_

#include <cstdint>
#include <string>
#include <type_traits>

#include "graph/graph.h"
#include "util/serde.h"
#include "util/status.h"

namespace prsim {

/// Format version shared by all engine index artifacts. Version 2 is the
/// sectioned, mmap-ready serde container (ArtifactWriter/ArtifactReader);
/// version-1 artifacts remain loadable through the reader's compat shim.
inline constexpr uint32_t kArtifactVersion = 2;

struct ArtifactFingerprint {
  uint32_t n = 0;
  uint64_t m = 0;
  uint64_t graph_checksum = 0;
  uint64_t options_hash = 0;
};

/// Accumulates "key=value;" pairs into an order-sensitive FNV-1a hash.
/// Doubles render as %.17g so any two distinct values hash differently.
class OptionsHasher {
 public:
  OptionsHasher& Add(const char* key, double value);
  template <typename T, std::enable_if_t<std::is_integral_v<T>, int> = 0>
  OptionsHasher& Add(const char* key, T value) {
    return AddUint(key, static_cast<uint64_t>(value));
  }

  uint64_t hash() const { return fnv_.digest(); }

 private:
  OptionsHasher& AddUint(const char* key, uint64_t value);
  void AddEntry(const char* key, const char* rendered);

  Fnv64 fnv_;
};

/// Fingerprint of `graph` under an engine's options hash.
ArtifactFingerprint MakeFingerprint(const Graph& graph, uint64_t options_hash);

/// Writes the fingerprint block (conventionally its own "fingerprint"
/// section, always the first one an engine adds).
void WriteFingerprint(ByteSink& sink, const ArtifactFingerprint& fp);

/// Reads the fingerprint block and validates it against `expected`
/// (computed from the caller's live graph and options). Returns
/// kInvalidArgument naming the mismatching field, or the reader's error.
Status ReadAndCheckFingerprint(SectionReader& reader,
                               const ArtifactFingerprint& expected,
                               const std::string& path);

}  // namespace prsim

#endif  // PRSIM_CORE_ARTIFACT_H_
