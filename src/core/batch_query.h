// Parallel batch querying over any registry engine.
//
// Single-source queries are independent given an (immutable) index, so a
// batch parallelizes perfectly: one engine clone per worker, minted through
// CloneWithSeed (every index-based engine shares its immutable built index
// with clones via shared_ptr — PRSim's ShareIndexFrom fast path, generalized)
// with deterministic per-query seeds derived from the leader's seed and the
// query's position.

#ifndef PRSIM_CORE_BATCH_QUERY_H_
#define PRSIM_CORE_BATCH_QUERY_H_

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "core/prsim.h"
#include "core/single_source.h"
#include "util/parallel.h"

namespace prsim {

namespace internal {
/// Deterministic per-query seed: depends only on (base seed, position), so
/// batch results are independent of the thread count and chunking. The
/// constant is the 64-bit golden-ratio increment.
inline uint64_t BatchQuerySeed(uint64_t base_seed, size_t position) {
  return base_seed ^ (0x9e3779b97f4a7c15ULL * (position + 1));
}
}  // namespace internal

/// Answers one single-source query per entry of `sources`, using up to
/// `threads` workers (0 = hardware concurrency). `leader` must be
/// preprocessed; it is not modified. Results are positionally aligned with
/// `sources`. One clone is minted per worker (cloning is O(1) — the built
/// index is shared — but per-query cloning would still churn allocations),
/// and Reseed() makes each query a pure function of (leader seed, position),
/// so results are independent of the thread count and chunking. For PRSim
/// leaders the per-query seeds are
/// bit-identical to the historical positional-seed scheme, so results match
/// the PRSim-specific overload below exactly.
inline std::vector<ScoreList> BatchQuery(const SingleSourceSimRank& leader,
                                         const std::vector<NodeId>& sources,
                                         size_t threads = 0) {
  if (sources.empty()) return {};
  if (threads == 0) threads = DefaultThreadCount();
  threads = std::max<size_t>(1, std::min(threads, sources.size()));

  std::vector<ScoreList> results(sources.size());
  const auto run_chunk = [&](size_t lo, size_t hi) {
    std::unique_ptr<SingleSourceSimRank> engine =
        leader.CloneWithSeed(leader.seed());
    PRSIM_CHECK(engine != nullptr)
        << leader.name() << " returned a null CloneWithSeed()";
    for (size_t i = lo; i < hi; ++i) {
      engine->Reseed(internal::BatchQuerySeed(leader.seed(), i));
      results[i] = engine->Query(sources[i]);
    }
  };
  if (threads == 1) {
    run_chunk(0, sources.size());
    return results;
  }
  // Static contiguous chunks, mirroring ParallelFor.
  const size_t chunk = (sources.size() + threads - 1) / threads;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    const size_t lo = t * chunk;
    const size_t hi = std::min(sources.size(), lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([&run_chunk, lo, hi] { run_chunk(lo, hi); });
  }
  for (auto& w : workers) w.join();
  return results;
}

/// PRSim-specific overload keeping the original signature: `options` lets
/// callers batch with query options that differ from the leader's (the index
/// is reused either way through ShareIndexFrom).
inline std::vector<ScoreList> BatchQuery(const Graph& graph,
                                         const PRSim& leader,
                                         const PRSimOptions& options,
                                         const std::vector<NodeId>& sources,
                                         size_t threads = 0) {
  PRSIM_CHECK(leader.preprocessed()) << "leader must be preprocessed";
  if (threads == 0) threads = DefaultThreadCount();
  threads = std::max<size_t>(1, std::min(threads, sources.size()));

  std::vector<ScoreList> results(sources.size());
  ParallelFor(
      0, sources.size(),
      [&](size_t i) {
        PRSimOptions per_query = options;
        per_query.seed = internal::BatchQuerySeed(options.seed, i);
        PRSim engine(graph, per_query);
        engine.ShareIndexFrom(leader);
        results[i] = engine.Query(sources[i]);
      },
      threads);
  return results;
}

}  // namespace prsim

#endif  // PRSIM_CORE_BATCH_QUERY_H_
