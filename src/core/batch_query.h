// Parallel batch querying over a shared PRSim index.
//
// PRSim queries are independent given the (immutable) hub index, so a batch
// of single-source queries parallelizes perfectly: one PRSim engine per
// worker, all sharing the leader's index via ShareIndexFrom, deterministic
// per-query seeds derived from the leader's options.

#ifndef PRSIM_CORE_BATCH_QUERY_H_
#define PRSIM_CORE_BATCH_QUERY_H_

#include <memory>
#include <vector>

#include "core/prsim.h"
#include "util/parallel.h"

namespace prsim {

/// Answers one single-source query per entry of `sources`, using up to
/// `threads` workers (0 = hardware concurrency). `leader` must be
/// preprocessed; it is not modified. Results are positionally aligned with
/// `sources`, and each query's seed depends only on (leader seed, position),
/// so results are independent of the thread count.
inline std::vector<ScoreList> BatchQuery(const Graph& graph,
                                         const PRSim& leader,
                                         const PRSimOptions& options,
                                         const std::vector<NodeId>& sources,
                                         size_t threads = 0) {
  PRSIM_CHECK(leader.preprocessed()) << "leader must be preprocessed";
  if (threads == 0) threads = DefaultThreadCount();
  threads = std::max<size_t>(1, std::min(threads, sources.size()));

  std::vector<ScoreList> results(sources.size());
  ParallelFor(
      0, sources.size(),
      [&](size_t i) {
        // Engine construction without Preprocess is cheap (no index build);
        // a per-query deterministic reseed keeps results independent of the
        // thread count and chunking.
        PRSimOptions per_query = options;
        per_query.seed = options.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1));
        PRSim engine(graph, per_query);
        engine.ShareIndexFrom(leader);
        results[i] = engine.Query(sources[i]);
      },
      threads);
  return results;
}

}  // namespace prsim

#endif  // PRSIM_CORE_BATCH_QUERY_H_
