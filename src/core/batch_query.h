// Parallel batch querying over any registry engine.
//
// Single-source queries are independent given an (immutable) index, so a
// batch parallelizes perfectly: one engine clone per static chunk, minted
// through CloneWithSeed (every index-based engine shares its immutable built
// index with clones via shared_ptr — PRSim's ShareIndexFrom fast path,
// generalized) with deterministic per-query seeds derived from the leader's
// seed and the query's position. Chunks are scheduled on the shared
// ThreadPool instead of freshly spawned std::threads, so sustained batch
// load pays queue pushes rather than thread churn.

#ifndef PRSIM_CORE_BATCH_QUERY_H_
#define PRSIM_CORE_BATCH_QUERY_H_

#include <algorithm>
#include <exception>
#include <future>
#include <memory>
#include <vector>

#include "core/prsim.h"
#include "core/single_source.h"
#include "util/parallel.h"
#include "util/percentiles.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace prsim {

namespace internal {
/// Deterministic per-query seed: depends only on (base seed, position), so
/// batch results are independent of the thread count and chunking. The
/// constant is the 64-bit golden-ratio increment.
inline uint64_t BatchQuerySeed(uint64_t base_seed, size_t position) {
  return base_seed ^ (0x9e3779b97f4a7c15ULL * (position + 1));
}
}  // namespace internal

/// Scores plus the batch-aggregated cost: summed QueryCost counters and
/// nearest-rank p50/p95/p99 over the per-query wall times.
struct BatchQueryResult {
  std::vector<ScoreList> scores;  ///< positionally aligned with `sources`
  QueryCost cost;
};

/// Answers one single-source query per entry of `sources`, using up to
/// `threads` static chunks (0 = DefaultThreadCount()) scheduled on the
/// shared ThreadPool. `leader` must be preprocessed; it is not modified.
/// One clone is minted per chunk (cloning is O(1) — the built index is
/// shared — but per-query cloning would still churn allocations), and
/// Reseed() makes each query a pure function of (leader seed, position), so
/// results are bit-identical across any `threads` value and any pool size.
/// For PRSim leaders the per-query seeds match the historical
/// positional-seed scheme, so results match the PRSim-specific overload
/// below exactly. Per-query wall times land in `cost` as p50/p95/p99.
inline BatchQueryResult BatchQueryWithStats(const SingleSourceSimRank& leader,
                                            const std::vector<NodeId>& sources,
                                            size_t threads = 0) {
  BatchQueryResult result;
  if (sources.empty()) return result;
  if (threads == 0) threads = DefaultThreadCount();
  threads = std::max<size_t>(1, std::min(threads, sources.size()));
  if (ThreadPool::InWorker()) threads = 1;  // see ParallelFor's rationale

  result.scores.resize(sources.size());
  std::vector<double> latencies(sources.size());
  std::vector<QueryCost> chunk_costs(threads);
  const auto run_chunk = [&](size_t chunk_index, size_t lo, size_t hi) {
    std::unique_ptr<SingleSourceSimRank> engine =
        leader.CloneWithSeed(leader.seed());
    PRSIM_CHECK(engine != nullptr)
        << leader.name() << " returned a null CloneWithSeed()";
    WallTimer timer;
    for (size_t i = lo; i < hi; ++i) {
      engine->Reseed(internal::BatchQuerySeed(leader.seed(), i));
      timer.Restart();
      result.scores[i] = engine->Query(sources[i]);
      latencies[i] = timer.Seconds();
      chunk_costs[chunk_index].Accumulate(engine->last_query_cost());
    }
  };
  if (threads == 1) {
    run_chunk(0, 0, sources.size());
  } else {
    // Static contiguous chunks; chunk 0 runs on the calling thread, the
    // rest on the shared pool (mirroring ParallelFor). Every pending future
    // is drained before any rethrow — the chunk tasks capture this frame's
    // locals, so unwinding past them while a worker still runs would be a
    // use-after-free.
    const size_t chunk = (sources.size() + threads - 1) / threads;
    std::vector<std::future<void>> pending;
    pending.reserve(threads - 1);
    for (size_t t = 1; t < threads; ++t) {
      const size_t lo = t * chunk;
      const size_t hi = std::min(sources.size(), lo + chunk);
      if (lo >= hi) break;
      pending.push_back(ThreadPool::Shared().Submit(
          [&run_chunk, t, lo, hi] { run_chunk(t, lo, hi); }));
    }
    std::exception_ptr first_exception;
    try {
      run_chunk(0, 0, std::min(sources.size(), chunk));
    } catch (...) {
      first_exception = std::current_exception();
    }
    for (auto& future : pending) {
      try {
        future.get();
      } catch (...) {
        if (first_exception == nullptr) {
          first_exception = std::current_exception();
        }
      }
    }
    if (first_exception != nullptr) std::rethrow_exception(first_exception);
  }
  for (const QueryCost& c : chunk_costs) result.cost.Accumulate(c);
  std::sort(latencies.begin(), latencies.end());
  result.cost.latency_p50_seconds = SortedQuantile(latencies, 0.50);
  result.cost.latency_p95_seconds = SortedQuantile(latencies, 0.95);
  result.cost.latency_p99_seconds = SortedQuantile(latencies, 0.99);
  return result;
}

/// Scores-only convenience wrapper around BatchQueryWithStats.
inline std::vector<ScoreList> BatchQuery(const SingleSourceSimRank& leader,
                                         const std::vector<NodeId>& sources,
                                         size_t threads = 0) {
  return BatchQueryWithStats(leader, sources, threads).scores;
}

/// PRSim-specific overload keeping the original signature: `options` lets
/// callers batch with query options that differ from the leader's (the index
/// is reused either way through ShareIndexFrom).
inline std::vector<ScoreList> BatchQuery(const Graph& graph,
                                         const PRSim& leader,
                                         const PRSimOptions& options,
                                         const std::vector<NodeId>& sources,
                                         size_t threads = 0) {
  PRSIM_CHECK(leader.preprocessed()) << "leader must be preprocessed";
  if (threads == 0) threads = DefaultThreadCount();
  threads = std::max<size_t>(1, std::min(threads, sources.size()));

  std::vector<ScoreList> results(sources.size());
  ParallelFor(
      0, sources.size(),
      [&](size_t i) {
        PRSimOptions per_query = options;
        per_query.seed = internal::BatchQuerySeed(options.seed, i);
        PRSim engine(graph, per_query);
        engine.ShareIndexFrom(leader);
        results[i] = engine.Query(sources[i]);
      },
      threads);
  return results;
}

}  // namespace prsim

#endif  // PRSIM_CORE_BATCH_QUERY_H_
