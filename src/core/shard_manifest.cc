#include "core/shard_manifest.h"

#include <filesystem>
#include <utility>

#include "core/engine_registry.h"
#include "graph/io.h"
#include "util/serde.h"

namespace prsim {

namespace {

constexpr char kManifestKind[] = "shard-manifest";

constexpr char kManifestFile[] = "manifest.bin";
constexpr char kGraphFile[] = "graph.bin";
constexpr char kIndexFile[] = "index.idx";

Status CorruptManifest(const std::string& path, const std::string& detail) {
  return Status::InvalidArgument("corrupt artifact '" + path + "': " + detail);
}

}  // namespace

Status ShardManifest::Save(const std::string& path) const {
  PRSIM_RETURN_NOT_OK(ValidatePartitionSpec(partition));
  if (shards.size() != partition.shards) {
    return Status::InvalidArgument(
        "manifest lists " + std::to_string(shards.size()) +
        " shards but the partition spec says " +
        std::to_string(partition.shards));
  }
  ArtifactWriter artifact(path, kManifestKind);
  ByteSink& meta = artifact.AddSection("meta");
  meta.WriteString(algo);
  meta.WriteString(params);
  meta.WritePod(partition.shards);
  meta.WritePod(static_cast<uint32_t>(partition.strategy));
  meta.WritePod(n);
  meta.WritePod(m);
  meta.WritePod(graph_checksum);
  ByteSink& entries = artifact.AddSection("shards");
  for (const ShardArtifacts& shard : shards) {
    entries.WriteString(shard.graph_path);
    entries.WriteString(shard.index_path);
  }
  return artifact.Finish();
}

Result<ShardManifest> ShardManifest::Load(const std::string& path) {
  PRSIM_ASSIGN_OR_RETURN(ArtifactReader artifact,
                         ArtifactReader::Open(path, kManifestKind));
  ShardManifest manifest;
  {
    PRSIM_ASSIGN_OR_RETURN(SectionReader meta, artifact.Section("meta"));
    PRSIM_RETURN_NOT_OK(meta.ReadString(&manifest.algo));
    PRSIM_RETURN_NOT_OK(meta.ReadString(&manifest.params));
    uint32_t strategy = 0;
    PRSIM_RETURN_NOT_OK(meta.ReadPod(&manifest.partition.shards));
    PRSIM_RETURN_NOT_OK(meta.ReadPod(&strategy));
    PRSIM_RETURN_NOT_OK(meta.ReadPod(&manifest.n));
    PRSIM_RETURN_NOT_OK(meta.ReadPod(&manifest.m));
    PRSIM_RETURN_NOT_OK(meta.ReadPod(&manifest.graph_checksum));
    PRSIM_RETURN_NOT_OK(meta.Finish());
    manifest.partition.strategy = static_cast<PartitionStrategy>(strategy);
  }
  if (manifest.algo.empty()) {
    return CorruptManifest(path, "empty engine name");
  }
  if (!ValidatePartitionSpec(manifest.partition).ok()) {
    return CorruptManifest(path, "invalid partition spec");
  }
  {
    PRSIM_ASSIGN_OR_RETURN(SectionReader entries, artifact.Section("shards"));
    manifest.shards.resize(manifest.partition.shards);
    for (ShardArtifacts& shard : manifest.shards) {
      PRSIM_RETURN_NOT_OK(entries.ReadString(&shard.graph_path));
      PRSIM_RETURN_NOT_OK(entries.ReadString(&shard.index_path));
      if (shard.graph_path.empty()) {
        return CorruptManifest(path, "empty shard graph path");
      }
    }
    PRSIM_RETURN_NOT_OK(entries.Finish());
  }
  return manifest;
}

Result<EngineConfig> ShardManifest::Config() const {
  return EngineConfig::Parse(params);
}

std::string ResolveManifestPath(const std::string& manifest_path,
                                const std::string& relative) {
  const std::filesystem::path rel(relative);
  if (rel.is_absolute()) return relative;
  return (std::filesystem::path(manifest_path).parent_path() / rel).string();
}

Result<std::string> BuildShardBundle(const Graph& graph,
                                     const std::string& algo,
                                     const EngineConfig& config,
                                     const PartitionSpec& spec,
                                     const std::string& out_dir) {
  PRSIM_RETURN_NOT_OK(ValidatePartitionSpec(spec));
  const EngineInfo* info = EngineRegistry::Global().Find(algo);
  if (info == nullptr) return Status::NotFound("unknown engine: " + algo);

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return Status::IOError("cannot create bundle directory '" + out_dir +
                           "': " + ec.message());
  }
  const std::filesystem::path dir(out_dir);

  PRSIM_RETURN_NOT_OK(GraphIO::SaveBinary(graph, (dir / kGraphFile).string()));

  // One engine over the full graph; shards partition query ownership only,
  // so they all alias this build's artifacts.
  PRSIM_ASSIGN_OR_RETURN(
      auto engine, EngineRegistry::Global().Create(info->name, graph, config));
  PRSIM_RETURN_NOT_OK(engine->Preprocess());
  std::string index_path;
  if (info->has_persistent_index) {
    index_path = kIndexFile;
    PRSIM_RETURN_NOT_OK(engine->SaveIndex((dir / kIndexFile).string()));
  }

  ShardManifest manifest;
  manifest.algo = info->name;
  manifest.params = config.ToString();
  manifest.partition = spec;
  manifest.n = graph.n();
  manifest.m = graph.m();
  manifest.graph_checksum = graph.Checksum();
  manifest.shards.assign(spec.shards, ShardArtifacts{kGraphFile, index_path});

  const std::string manifest_path = (dir / kManifestFile).string();
  PRSIM_RETURN_NOT_OK(manifest.Save(manifest_path));
  return manifest_path;
}

}  // namespace prsim
