#include "core/engine_config.h"

#include <cmath>
#include <cstdlib>

#include "util/parse.h"

namespace prsim {

Result<EngineConfig> EngineConfig::Parse(const std::string& text) {
  EngineConfig config;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string segment = text.substr(start, end - start);
    start = end + 1;
    if (segment.empty()) continue;  // tolerate "a=1,,b=2" and trailing commas
    const size_t eq = segment.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("config segment '" + segment +
                                     "' is not of the form key=value");
    }
    PRSIM_RETURN_NOT_OK(
        config.Set(segment.substr(0, eq), segment.substr(eq + 1)));
  }
  return config;
}

Status EngineConfig::Set(const std::string& key, std::string value) {
  if (Find(key) != nullptr) {
    return Status::InvalidArgument("duplicate config key: " + key);
  }
  entries_.emplace_back(key, std::move(value));
  return Status::OK();
}

void EngineConfig::SetOrReplace(const std::string& key, std::string value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

const std::string* EngineConfig::Find(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Status EngineConfig::GetDouble(const std::string& key, double* out) const {
  const std::string* raw = Find(key);
  if (raw == nullptr) return Status::OK();
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  // Non-finite values are rejected outright: "inf" would pass the > 0 range
  // checks and then hit undefined float-to-integer casts in sample-count
  // derivations like dr = ceil(alpha / eps^2).
  if (raw->empty() || end == raw->c_str() || *end != '\0' ||
      !std::isfinite(value)) {
    return Status::InvalidArgument("config key '" + key +
                                   "': malformed number '" + *raw + "'");
  }
  *out = value;
  return Status::OK();
}

Status EngineConfig::GetUint64(const std::string& key, uint64_t* out) const {
  const std::string* raw = Find(key);
  if (raw == nullptr) return Status::OK();
  // ParseUint64 is strictly digits only: strtoull alone would skip leading
  // whitespace and wrap negatives (" -1" -> 2^64 - 1), silently disabling
  // budget guards.
  uint64_t value = 0;
  if (!ParseUint64(*raw, &value)) {
    return Status::InvalidArgument("config key '" + key +
                                   "': malformed unsigned integer '" + *raw +
                                   "'");
  }
  *out = value;
  return Status::OK();
}

Status EngineConfig::GetUint32(const std::string& key, uint32_t* out) const {
  uint64_t value = *out;
  PRSIM_RETURN_NOT_OK(GetUint64(key, &value));
  if (value > UINT32_MAX) {
    return Status::InvalidArgument("config key '" + key + "': value " +
                                   std::to_string(value) +
                                   " exceeds 32-bit range");
  }
  *out = static_cast<uint32_t>(value);
  return Status::OK();
}

Status EngineConfig::GetSize(const std::string& key, size_t* out) const {
  uint64_t value = *out;
  PRSIM_RETURN_NOT_OK(GetUint64(key, &value));
  *out = static_cast<size_t>(value);
  return Status::OK();
}

Status EngineConfig::GetBool(const std::string& key, bool* out) const {
  const std::string* raw = Find(key);
  if (raw == nullptr) return Status::OK();
  if (*raw == "true" || *raw == "1") {
    *out = true;
    return Status::OK();
  }
  if (*raw == "false" || *raw == "0") {
    *out = false;
    return Status::OK();
  }
  return Status::InvalidArgument("config key '" + key +
                                 "': expected true/false/1/0, got '" + *raw +
                                 "'");
}

Status EngineConfig::GetPositiveDouble(const std::string& key,
                                       double* out) const {
  double value = *out;
  PRSIM_RETURN_NOT_OK(GetDouble(key, &value));
  if (Find(key) != nullptr && !(value > 0)) {
    return Status::InvalidArgument("config key '" + key +
                                   "': must be > 0, got " +
                                   std::to_string(value));
  }
  *out = value;
  return Status::OK();
}

Status EngineConfig::GetOpenInterval(const std::string& key, double lo,
                                     double hi, double* out) const {
  double value = *out;
  PRSIM_RETURN_NOT_OK(GetDouble(key, &value));
  if (Find(key) != nullptr && !(value > lo && value < hi)) {
    return Status::InvalidArgument(
        "config key '" + key + "': must lie in (" + std::to_string(lo) +
        ", " + std::to_string(hi) + "), got " + std::to_string(value));
  }
  *out = value;
  return Status::OK();
}

Status EngineConfig::ExpectOnly(
    std::initializer_list<const char*> allowed) const {
  for (const auto& [key, value] : entries_) {
    bool known = false;
    for (const char* candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string list;
      for (const char* candidate : allowed) {
        if (!list.empty()) list += ", ";
        list += candidate;
      }
      return Status::InvalidArgument("unknown config key '" + key +
                                     "' (supported: " + list + ")");
    }
  }
  return Status::OK();
}

std::vector<std::string> EngineConfig::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [k, v] : entries_) keys.push_back(k);
  return keys;
}

std::string EngineConfig::ToString() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

}  // namespace prsim
