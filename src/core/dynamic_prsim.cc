#include "core/dynamic_prsim.h"

#include <algorithm>

#include "util/logging.h"

namespace prsim {

DynamicPRSim::DynamicPRSim(NodeId n, std::vector<Edge> edges,
                           const DynamicPRSimOptions& options)
    : n_(n), options_(options) {
  for (const auto& e : edges) {
    PRSIM_CHECK(e.first < n && e.second < n) << "edge endpoint out of range";
    if (e.first != e.second) edges_.insert(e);
  }
  Flush().Abort();
}

Status DynamicPRSim::InsertEdge(NodeId src, NodeId dst) {
  if (src >= n_ || dst >= n_) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (src == dst) {
    return Status::InvalidArgument("self-loops are not representable");
  }
  pending_.push_back({{src, dst}, /*insert=*/true});
  MaybeAutoFlush();
  return Status::OK();
}

Status DynamicPRSim::DeleteEdge(NodeId src, NodeId dst) {
  if (src >= n_ || dst >= n_) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  pending_.push_back({{src, dst}, /*insert=*/false});
  MaybeAutoFlush();
  return Status::OK();
}

void DynamicPRSim::MaybeAutoFlush() {
  const double threshold =
      std::max(1.0, options_.rebuild_fraction *
                        static_cast<double>(std::max<size_t>(
                            edges_.size(), 1)));
  if (static_cast<double>(pending_.size()) >= threshold) {
    Flush().Abort();
  }
}

Status DynamicPRSim::Flush() {
  for (const auto& update : pending_) {
    if (update.insert) {
      edges_.insert(update.edge);
    } else {
      edges_.erase(update.edge);
    }
  }
  pending_.clear();

  std::vector<Edge> edge_list(edges_.begin(), edges_.end());
  PRSIM_ASSIGN_OR_RETURN(Graph rebuilt, Graph::FromEdges(n_, edge_list));
  graph_ = std::make_unique<Graph>(std::move(rebuilt));
  prsim_ = std::make_unique<PRSim>(*graph_, options_.prsim);
  PRSIM_RETURN_NOT_OK(prsim_->Preprocess());
  ++flush_count_;
  return Status::OK();
}

ScoreList DynamicPRSim::Query(NodeId u, QueryFreshness freshness) {
  PRSIM_CHECK(u < n_) << "query node out of range";
  if (freshness == QueryFreshness::kFresh && !pending_.empty()) {
    Flush().Abort();
  }
  return prsim_->Query(u);
}

}  // namespace prsim
