// String-keyed registry of every single-source SimRank engine.
//
// The paper's evaluation is comparative, so every consumer (CLI, benches,
// pooled evaluation, examples) needs to construct any of the 8 engines from
// the same inputs: a name, a graph, and an EngineConfig. The registry owns
// that mapping — per-engine factories translate config keys onto the
// engine's options struct (rejecting unknown keys and out-of-range values)
// — plus the metadata the CLI's `algos` subcommand and the README table
// surface.

#ifndef PRSIM_CORE_ENGINE_REGISTRY_H_
#define PRSIM_CORE_ENGINE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_config.h"
#include "core/single_source.h"
#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

/// Static metadata describing one registered engine.
struct EngineInfo {
  std::string name;          ///< canonical lowercase key, e.g. "prsim"
  std::string display_name;  ///< e.g. "PRSim", as printed by name()
  bool index_based = false;
  /// True when the engine overrides QueryPair with a native pair estimator
  /// (instead of deriving it from a full single-source query).
  bool supports_pair_query = false;
  /// True when the engine implements SaveIndex()/LoadIndex() so its index
  /// round-trips through on-disk artifacts (PowerMethod is index-based but
  /// its dense matrix is rebuilt, never persisted).
  bool has_persistent_index = false;
  std::string config_keys;   ///< comma-separated supported EngineConfig keys
  std::string paper_ref;     ///< citation shown by `prsim_cli algos`
};

class EngineRegistry {
 public:
  using Factory = std::function<Result<std::unique_ptr<SingleSourceSimRank>>(
      const Graph&, const EngineConfig&)>;

  /// The process-wide registry holding all 8 engines.
  static const EngineRegistry& Global();

  /// Canonical engine names in registration order.
  std::vector<std::string> Names() const;

  /// Metadata lookup; name matching is case-insensitive ("PRSim" == "prsim").
  /// Returns nullptr for unknown names.
  const EngineInfo* Find(const std::string& name) const;

  /// Constructs an engine (not yet preprocessed). Errors on unknown engine
  /// names, unknown config keys, and out-of-range config values.
  Result<std::unique_ptr<SingleSourceSimRank>> Create(
      const std::string& name, const Graph& graph,
      const EngineConfig& config) const;

  /// Convenience: Create from a raw "k=v,k=v" parameter string.
  Result<std::unique_ptr<SingleSourceSimRank>> Create(
      const std::string& name, const Graph& graph,
      const std::string& params) const;

  /// Constructs an engine and installs its index from a SaveIndex()
  /// artifact instead of preprocessing — the cold-start path for serving.
  /// Propagates factory errors, kUnimplemented for engines without a
  /// persistent index, kInvalidArgument when the artifact was built against
  /// a different graph or options, and kIOError on corruption.
  Result<std::unique_ptr<SingleSourceSimRank>> CreateFromIndex(
      const std::string& name, const Graph& graph, const EngineConfig& config,
      const std::string& index_path) const;

  /// Runs the full factory validation (engine name, config keys, value
  /// ranges) without a real graph, so callers can fail fast before loading
  /// one. Engine constructors are O(1) in the graph, making this cheap.
  Status Validate(const std::string& name, const EngineConfig& config) const;

 private:
  EngineRegistry();
  void Register(EngineInfo info, Factory factory);

  std::vector<std::pair<EngineInfo, Factory>> engines_;
};

}  // namespace prsim

#endif  // PRSIM_CORE_ENGINE_REGISTRY_H_
