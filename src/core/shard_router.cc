#include "core/shard_router.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "graph/io.h"
#include "util/logging.h"
#include "util/percentiles.h"

namespace prsim {

namespace {

std::future<QueryResult> ReadyError(Status status) {
  std::promise<QueryResult> promise;
  QueryResult result;
  result.status = std::move(status);
  promise.set_value(std::move(result));
  return promise.get_future();
}

Status SourceOutOfRange(NodeId source, NodeId n) {
  return Status::InvalidArgument("source " + std::to_string(source) +
                                 " out of range (n = " + std::to_string(n) +
                                 ")");
}

}  // namespace

ScoreList MergeTopK(const std::vector<ScoreList>& per_shard, size_t k) {
  ScoreList merged;
  for (const ScoreList& part : per_shard) {
    merged.insert(merged.end(), part.begin(), part.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const ScoreEntry& a, const ScoreEntry& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Open(
    const std::string& manifest_path, const ShardRouterOptions& options) {
  PRSIM_ASSIGN_OR_RETURN(ShardManifest manifest,
                         ShardManifest::Load(manifest_path));
  PRSIM_ASSIGN_OR_RETURN(EngineConfig config, manifest.Config());

  std::unique_ptr<ShardRouter> router(new ShardRouter());
  router->manifest_ = std::move(manifest);
  const ShardManifest& m = router->manifest_;

  // Shard entries routinely alias one graph artifact; load each distinct
  // path once and hand every service a reference to the shared instance.
  std::map<std::string, const Graph*> loaded;
  for (uint32_t s = 0; s < m.partition.shards; ++s) {
    const ShardArtifacts& shard = m.shards[s];
    const std::string graph_path =
        ResolveManifestPath(manifest_path, shard.graph_path);
    const Graph*& graph = loaded[graph_path];
    if (graph == nullptr) {
      GraphIO::LoadOptions load;
      load.allow_mmap = options.allow_mmap;
      PRSIM_ASSIGN_OR_RETURN(Graph g, GraphIO::LoadBinary(graph_path, load));
      if (g.n() != m.n || g.m() != m.m ||
          g.Checksum() != m.graph_checksum) {
        return Status::InvalidArgument(
            "graph artifact '" + graph_path +
            "' does not match the manifest's graph fingerprint");
      }
      router->graphs_.push_back(std::make_unique<Graph>(std::move(g)));
      graph = router->graphs_.back().get();
    }

    QueryServiceOptions service_options;
    service_options.threads = options.threads_per_shard;
    service_options.max_queue = options.max_queue;
    service_options.backpressure = options.backpressure;
    service_options.cache_bytes = options.cache_bytes;
    service_options.degraded = options.degraded;
    auto service = std::make_unique<QueryService>(service_options);
    if (!shard.index_path.empty()) {
      PRSIM_RETURN_NOT_OK(service->AddEngineFromIndex(
          m.algo, *graph, config,
          ResolveManifestPath(manifest_path, shard.index_path)));
    } else {
      PRSIM_RETURN_NOT_OK(service->AddEngine(m.algo, *graph, config));
    }
    router->services_.push_back(std::move(service));
  }
  return router;
}

std::future<QueryResult> ShardRouter::SubmitRequest(QueryRequest request) {
#ifndef NDEBUG
  // Worker-thread registry: submitting from ANY shard's worker is a
  // deadlock risk (the owner shard's bounded queue may be waiting on
  // capacity only that worker can free), not just the owner's —
  // cross-shard fan-out (BroadcastTopK) can block one shard on another.
  // QueryService::Submit re-asserts the owner-shard case.
  for (const auto& service : services_) {
    PRSIM_DCHECK(!service->OwnsCurrentThread())
        << "SubmitRequest() from a shard service worker would deadlock the "
           "bounded queue";
  }
#endif
  // Validate before consuming a stream position, so invalid requests never
  // shift the positional seeds of the valid stream (mirrors QueryService).
  if (!request.algo.empty() && request.algo != manifest_.algo) {
    return ReadyError(Status::NotFound("this bundle serves '" +
                                       manifest_.algo + "', not '" +
                                       request.algo + "'"));
  }
  if (request.source >= manifest_.n) {
    return ReadyError(SourceOutOfRange(request.source, manifest_.n));
  }
  // Router-level deadline gate: a request that is already expired (or
  // carries a zero budget) is refused BEFORE consuming a global stream
  // position, like invalid requests — so deadline refusals on one shard
  // never shift the positional seeds any other shard sees. Live deadlines
  // flow through to the owner shard, which enforces them at admission, in
  // the queue, and at worker pickup.
  const bool already_expired =
      (request.deadline_at != std::chrono::steady_clock::time_point::max() &&
       std::chrono::steady_clock::now() >= request.deadline_at) ||
      request.deadline_ms == 0;
  if (already_expired) {
    expired_at_router_.fetch_add(1, std::memory_order_relaxed);
    return ReadyError(
        Status::DeadlineExceeded("deadline expired before routing"));
  }
  // Each shard service has exactly one engine; the empty key selects it
  // regardless of how the manifest spells the registry name.
  request.algo.clear();
  if (!request.fresh_seed &&
      request.seed_position == QueryRequest::kServiceOrder) {
    request.seed_position =
        next_position_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint32_t shard = ShardOf(request.source);
  return services_[shard]->Submit(std::move(request));
}

std::future<QueryResult> ShardRouter::Submit(NodeId source, uint32_t k) {
  QueryRequest request;
  request.source = source;
  request.k = k;
  return SubmitRequest(std::move(request));
}

QueryResult ShardRouter::QueryFresh(NodeId source, uint32_t k) {
  QueryRequest request;
  request.source = source;
  request.k = k;
  request.fresh_seed = true;
  return SubmitRequest(std::move(request)).get();
}

Result<ScoreList> ShardRouter::BroadcastTopK(NodeId source, size_t k) {
  if (source >= manifest_.n) {
    return SourceOutOfRange(source, manifest_.n);
  }
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(services_.size());
  for (auto& service : services_) {
    QueryRequest request;
    request.source = source;
    request.fresh_seed = true;
    futures.push_back(service->Submit(std::move(request)));
  }
  std::vector<ScoreList> local(services_.size());
  for (size_t s = 0; s < services_.size(); ++s) {
    QueryResult result = futures[s].get();
    PRSIM_RETURN_NOT_OK(result.status);
    ScoreList owned;
    for (const ScoreEntry& entry : result.scores) {
      if (entry.first != source &&
          ShardOfNode(entry.first, manifest_.n, manifest_.partition) == s) {
        owned.push_back(entry);
      }
    }
    local[s] = TopK(owned, k, source);
  }
  return MergeTopK(local, k);
}

ServiceStats ShardRouter::Stats() const {
  ServiceStats total;
  std::vector<double> samples;
  for (const auto& service : services_) {
    const ServiceStats stats = service->Stats();
    total.submitted += stats.submitted;
    total.completed += stats.completed;
    total.failed += stats.failed;
    total.rejected += stats.rejected;
    total.deadline_exceeded += stats.deadline_exceeded;
    total.shed += stats.shed;
    total.queue_high_water =
        std::max(total.queue_high_water, stats.queue_high_water);
    total.cache_hits += stats.cache_hits;
    total.cache_misses += stats.cache_misses;
    total.cache_coalesced += stats.cache_coalesced;
    total.cache_evictions += stats.cache_evictions;
    total.cache_bytes += stats.cache_bytes;
    total.aggregate_cost.Accumulate(stats.aggregate_cost);
    const std::vector<double> part = service->LatencySamples();
    samples.insert(samples.end(), part.begin(), part.end());
  }
  total.deadline_exceeded +=
      expired_at_router_.load(std::memory_order_relaxed);
  std::sort(samples.begin(), samples.end());
  total.p50_seconds = SortedQuantile(samples, 0.50);
  total.p95_seconds = SortedQuantile(samples, 0.95);
  total.p99_seconds = SortedQuantile(samples, 0.99);
  total.aggregate_cost.latency_p50_seconds = total.p50_seconds;
  total.aggregate_cost.latency_p95_seconds = total.p95_seconds;
  total.aggregate_cost.latency_p99_seconds = total.p99_seconds;
  return total;
}

}  // namespace prsim
