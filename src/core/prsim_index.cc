#include "core/prsim_index.h"

#include <algorithm>
#include <cmath>

#include "ppr/reverse_pagerank.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace prsim {

Result<PRSimIndex> PRSimIndex::Build(const Graph& graph,
                                     const PRSimIndexOptions& options) {
  if (options.c <= 0 || options.c >= 1) {
    return Status::InvalidArgument("PRSimIndex: c must lie in (0, 1)");
  }
  if (options.eps <= 0) {
    return Status::InvalidArgument("PRSimIndex: eps must be positive");
  }
  PRSimIndex index;
  const double sqrt_c = std::sqrt(options.c);
  index.rmax_ = options.rmax > 0
                    ? options.rmax
                    : (1.0 - sqrt_c) * (1.0 - sqrt_c) * options.eps / 12.0;

  // Reverse PageRank and hub selection (Algorithm 1, line 5).
  ReversePageRankOptions rpr_options;
  rpr_options.c = options.c;
  index.rpr_ = ComputeReversePageRank(graph, rpr_options);
  uint32_t j0 = options.j0;
  if (j0 == 0) {
    j0 = static_cast<uint32_t>(
        std::lround(std::sqrt(static_cast<double>(graph.n()))));
  }
  j0 = std::min<uint32_t>(j0, graph.n());
  const std::vector<NodeId> ranked = RankNodesByValue(index.rpr_);
  index.hub_nodes_.assign(ranked.begin(), ranked.begin() + j0);

  index.hub_levels_.resize(j0);
  for (uint32_t slot = 0; slot < j0; ++slot) {
    index.hub_slot_[index.hub_nodes_[slot]] = slot;
  }

  // One backward search per hub (Algorithm 1, lines 6-17); hubs are
  // independent, so the loop parallelizes without synchronization.
  BackwardSearchOptions search;
  search.c = options.c;
  search.rmax = index.rmax_;
  search.max_level = options.max_level;
  ParallelFor(
      0, j0,
      [&](size_t slot) {
        BackwardSearchResult result =
            BackwardSearch(graph, index.hub_nodes_[slot], search);
        index.hub_levels_[slot].levels = std::move(result.levels);
      },
      options.threads);

  for (const auto& hub : index.hub_levels_) {
    for (const auto& level : hub.levels) {
      index.total_tuples_ += level.size();
    }
  }
  return index;
}

size_t PRSimIndex::IndexBytes() const {
  size_t bytes = hub_slot_.MemoryBytes();
  bytes += hub_nodes_.size() * sizeof(NodeId);
  for (const auto& hub : hub_levels_) {
    bytes += hub.levels.size() * sizeof(void*);
    for (const auto& level : hub.levels) {
      bytes += level.size() * (sizeof(NodeId) + sizeof(float));
    }
  }
  return bytes;
}

}  // namespace prsim
