// Common interface for single-source SimRank algorithms.
//
// PRSim and every baseline implement this interface so the evaluation harness
// (pooling, parameter sweeps, figure benches) can treat them uniformly.

#ifndef PRSIM_CORE_SINGLE_SOURCE_H_
#define PRSIM_CORE_SINGLE_SOURCE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

/// Sparse single-source result: (node, estimated SimRank) pairs. Entries with
/// estimate 0 are omitted; the source node itself is included with score 1.
using ScoreEntry = std::pair<NodeId, double>;
using ScoreList = std::vector<ScoreEntry>;

/// \brief Abstract single-source SimRank solver.
///
/// Lifecycle: construct over a Graph, call Preprocess() once (may be a no-op
/// for index-free methods), then Query() any number of times. Implementations
/// own per-query scratch, so one instance must not be queried concurrently.
class SingleSourceSimRank {
 public:
  virtual ~SingleSourceSimRank() = default;

  /// Short identifier used in bench output ("PRSim", "ProbeSim", ...).
  virtual std::string name() const = 0;

  /// Builds any index structures. Returns an error if the configuration is
  /// infeasible (e.g. the index would exceed a configured memory budget).
  virtual Status Preprocess() { return Status::OK(); }

  /// Estimates s(u, v) for all v; returns the non-zero estimates.
  virtual ScoreList Query(NodeId u) = 0;

  /// Bytes held by index structures (0 for index-free methods).
  virtual size_t IndexBytes() const { return 0; }

  virtual bool IsIndexBased() const { return false; }
};

/// Returns the k entries with the largest scores (ties by ascending node id),
/// sorted descending by score. The source node (score 1) is excluded, since
/// top-k evaluation asks for the most similar *other* nodes.
inline ScoreList TopK(const ScoreList& scores, size_t k, NodeId source) {
  ScoreList pool;
  pool.reserve(scores.size());
  for (const auto& e : scores) {
    if (e.first != source) pool.push_back(e);
  }
  auto cmp = [](const ScoreEntry& a, const ScoreEntry& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (pool.size() > k) {
    std::nth_element(pool.begin(), pool.begin() + k, pool.end(), cmp);
    pool.resize(k);
  }
  std::sort(pool.begin(), pool.end(), cmp);
  return pool;
}

/// Looks up a node's score in a ScoreList (0 if absent).
inline double ScoreOf(const ScoreList& scores, NodeId v) {
  for (const auto& [node, score] : scores) {
    if (node == v) return score;
  }
  return 0.0;
}

}  // namespace prsim

#endif  // PRSIM_CORE_SINGLE_SOURCE_H_
