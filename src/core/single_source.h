// Common interface for single-source SimRank algorithms.
//
// PRSim and every baseline implement this interface so the evaluation harness
// (pooling, parameter sweeps, figure benches), the engine registry, and the
// batch layer can treat them uniformly.

#ifndef PRSIM_CORE_SINGLE_SOURCE_H_
#define PRSIM_CORE_SINGLE_SOURCE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

/// Sparse single-source result: (node, estimated SimRank) pairs. Entries with
/// estimate 0 are omitted; the source node itself is included with score 1.
using ScoreEntry = std::pair<NodeId, double>;
using ScoreList = std::vector<ScoreEntry>;

/// Uniform per-query cost counters, refreshed by each Query() call. Every
/// engine fills in the counters that apply to it (an index-free sampler
/// leaves `index_tuples_read` at 0, a deterministic index join leaves
/// `walks` at 0); zero simply means "this engine does no such work".
struct QueryCost {
  uint64_t walks = 0;               ///< forward random walks sampled
  uint64_t meeting_tests = 0;       ///< pair-walk meeting trials
  uint64_t backward_walks = 0;      ///< backward walk / probe invocations
  uint64_t backward_increments = 0; ///< estimator increments inside those
  uint64_t index_tuples_read = 0;   ///< tuples merged from a prebuilt index
  /// Latency percentiles over a *batch* of queries, filled by the aggregate
  /// paths (BatchQueryWithStats, QueryService::Stats); single Query() calls
  /// leave them 0. Always monotone: p50 <= p95 <= p99.
  double latency_p50_seconds = 0;
  double latency_p95_seconds = 0;
  double latency_p99_seconds = 0;

  /// Adds another query's counters into this aggregate (latency percentiles
  /// are not summable and stay untouched — the owner of the sample set
  /// fills them).
  void Accumulate(const QueryCost& other) {
    walks += other.walks;
    meeting_tests += other.meeting_tests;
    backward_walks += other.backward_walks;
    backward_increments += other.backward_increments;
    index_tuples_read += other.index_tuples_read;
  }
};

/// \brief Abstract single-source SimRank solver.
///
/// Lifecycle: construct over a Graph, call Preprocess() once (may be a no-op
/// for index-free methods), then Query() any number of times. Implementations
/// own per-query scratch, so one instance must not be queried concurrently;
/// CloneWithSeed() mints an independently seeded sibling for that.
class SingleSourceSimRank {
 public:
  virtual ~SingleSourceSimRank() = default;

  /// Short identifier used in bench output ("PRSim", "ProbeSim", ...).
  virtual std::string name() const = 0;

  /// Number of nodes in the underlying graph; query nodes must be < this.
  virtual NodeId node_count() const = 0;

  /// Builds any index structures. Returns an error if the configuration is
  /// infeasible (e.g. the index would exceed a configured memory budget).
  virtual Status Preprocess() { return Status::OK(); }

  /// Estimates s(u, v) for all v; returns the non-zero estimates.
  virtual ScoreList Query(NodeId u) = 0;

  /// Top-k most similar nodes to u (excluding u itself), sorted descending
  /// by score with ties broken by ascending node id. The default evaluates
  /// the full single-source query; pruned engines may override with a
  /// cheaper direct top-k path.
  virtual ScoreList QueryTopK(NodeId u, size_t k);

  /// Estimates the single pair s(u, v). The default extracts it from a full
  /// single-source query; engines with a native pair estimator (Monte Carlo
  /// pair walks, the exact power-method matrix) override it.
  virtual double QueryPair(NodeId u, NodeId v);

  /// Returns an independently seeded engine over the same graph and options
  /// that shares (or copies) any already built index, so the clone answers
  /// queries without re-running Preprocess(). Used by BatchQuery to fan one
  /// leader out across worker threads.
  virtual std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const = 0;

  /// The seed this engine was configured with (0 for deterministic engines).
  virtual uint64_t seed() const { return 0; }

  /// Resets the query-time random state as if the engine had been
  /// constructed with `seed` (a no-op for engines whose queries are
  /// deterministic). Lets BatchQuery reuse one clone per worker while
  /// keeping every query a pure function of (seed, source).
  virtual void Reseed(uint64_t seed) { (void)seed; }

  /// Bytes held by index structures (0 for index-free methods).
  virtual size_t IndexBytes() const { return 0; }

  virtual bool IsIndexBased() const { return false; }

  /// Serializes the built index to a versioned artifact at `path`, embedding
  /// a fingerprint of the graph and of every index-shaping option. Requires
  /// a completed Preprocess()/LoadIndex(); engines without a persistent
  /// index (including index-free methods) return kUnimplemented.
  virtual Status SaveIndex(const std::string& path) const {
    (void)path;
    return Status::Unimplemented(name() + " has no persistent index");
  }

  /// Installs the index from an artifact previously written by SaveIndex()
  /// against the same graph and options, replacing Preprocess(). Fails with
  /// kInvalidArgument when the artifact's fingerprint does not match this
  /// engine's graph or options, kIOError on corruption, and kUnimplemented
  /// for engines without a persistent index. After a successful load the
  /// engine answers queries exactly as a freshly preprocessed instance with
  /// the same seed would.
  virtual Status LoadIndex(const std::string& path) {
    (void)path;
    return Status::Unimplemented(name() + " has no persistent index");
  }

  /// Cost counters of the most recent Query() call.
  const QueryCost& last_query_cost() const { return cost_; }

 protected:
  QueryCost cost_;
};

/// Returns the k entries with the largest scores (ties by ascending node id),
/// sorted descending by score. The source node (score 1) is excluded, since
/// top-k evaluation asks for the most similar *other* nodes.
inline ScoreList TopK(const ScoreList& scores, size_t k, NodeId source) {
  ScoreList pool;
  pool.reserve(scores.size());
  for (const auto& e : scores) {
    if (e.first != source) pool.push_back(e);
  }
  auto cmp = [](const ScoreEntry& a, const ScoreEntry& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (pool.size() > k) {
    std::nth_element(pool.begin(), pool.begin() + k, pool.end(), cmp);
    pool.resize(k);
  }
  std::sort(pool.begin(), pool.end(), cmp);
  return pool;
}

/// Looks up a node's score in a ScoreList (0 if absent).
inline double ScoreOf(const ScoreList& scores, NodeId v) {
  for (const auto& [node, score] : scores) {
    if (node == v) return score;
  }
  return 0.0;
}

inline ScoreList SingleSourceSimRank::QueryTopK(NodeId u, size_t k) {
  return TopK(Query(u), k, u);
}

inline double SingleSourceSimRank::QueryPair(NodeId u, NodeId v) {
  PRSIM_CHECK(u < node_count() && v < node_count())
      << "pair (" << u << ", " << v << ") out of range";
  if (u == v) return 1.0;
  return ScoreOf(Query(u), v);
}

}  // namespace prsim

#endif  // PRSIM_CORE_SINGLE_SOURCE_H_
