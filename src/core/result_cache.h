// ResultCache — hot-source score-vector cache with singleflight coalescing.
//
// The serving determinism contract makes caching safe for exactly one
// request shape: a `fresh_seed` query is a pure function of (engine
// fingerprint, leader seed, algo, source) — the engine reseeds to the
// leader seed before answering, so a cached reply is byte-identical to a
// recomputed one. Positional-seed requests (the default BatchQuery-replay
// semantics, and the shard router's explicit `seed_position`) are
// position-dependent BY DESIGN: the same (algo, source) pair answered at
// stream positions 3 and 7 must produce two different sampled score
// vectors. Those requests MUST bypass this cache entirely — QueryService
// only consults it when `request.fresh_seed` is set.
//
// What is cached: the FULL single-source score vector (k = 0 shape).
// Top-k replies are derived on hit with core/single_source.h's TopK —
// the exact nth_element + (score desc, id asc) tie-break every engine's
// default QueryTopK uses — so one cached entry serves any requested k
// bit-identically. (No engine overrides QueryTopK; result_cache_test
// locks the equivalence down per engine.)
//
// Singleflight: under a Zipfian workload the worst case is N concurrent
// misses on the same hot source. Lookup() atomically resolves each caller
// into one of three roles — kHit (served from cache), kLeader (first
// misser: computes the query and must call Publish exactly once, even on
// failure or rejection), or kWaiter (joined an in-flight leader; receives
// a future fulfilled at Publish with its own k-shaped reply and its own
// queue-to-publish latency). N concurrent identical misses therefore cost
// one engine query.
//
// Invalidation: RegisterEngine(algo, fingerprint) purges the algo's
// entries whenever the fingerprint differs from the previous registration
// (graph/options/seed changed), so a service re-pointed at a new artifact
// can never serve stale vectors.
//
// Thread safe. One internal mutex guards the LRU and the flight table;
// waiter promises are always fulfilled outside the lock.

#ifndef PRSIM_CORE_RESULT_CACHE_H_
#define PRSIM_CORE_RESULT_CACHE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/query_service.h"
#include "core/single_source.h"
#include "util/lru_cache.h"
#include "util/timer.h"

namespace prsim {

/// Cache identity of a fresh_seed answer. POD, equality-compared in full;
/// algo_id is the ResultCache-local index handed out by RegisterEngine.
struct ResultCacheKey {
  uint64_t fingerprint = 0;
  uint64_t seed = 0;
  NodeId source = 0;
  uint32_t algo_id = 0;

  friend bool operator==(const ResultCacheKey& a, const ResultCacheKey& b) {
    return a.fingerprint == b.fingerprint && a.seed == b.seed &&
           a.source == b.source && a.algo_id == b.algo_id;
  }
};

struct ResultCacheKeyHash {
  uint64_t operator()(const ResultCacheKey& key) const {
    // splitmix64-style mix over the four fields; FlatHashMap2 applies its
    // own wyhash-style finalizer on top.
    uint64_t h = key.fingerprint;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
    };
    mix(key.seed);
    mix((uint64_t{key.source} << 32) | key.algo_id);
    return h;
  }
};

/// Point-in-time counters. hits/misses/coalesced partition the fresh_seed
/// lookup stream: every Lookup() is exactly one of the three.
struct ResultCacheStats {
  uint64_t hits = 0;       ///< served directly from a cached vector
  uint64_t misses = 0;     ///< became a leader (one engine query each)
  uint64_t coalesced = 0;  ///< joined an in-flight leader (no engine query)
  uint64_t evictions = 0;  ///< entries dropped by the byte budget
  uint64_t invalidated = 0;  ///< entries purged by fingerprint changes
  uint64_t bytes = 0;        ///< current cached payload bytes (gauge)
  uint64_t entries = 0;      ///< current cached entry count (gauge)
};

class ResultCache {
 public:
  explicit ResultCache(size_t byte_budget);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Registers (or re-registers) an algorithm and returns its algo_id. A
  /// re-registration with a different fingerprint purges every entry the
  /// algo had cached; the same fingerprint keeps them.
  uint32_t RegisterEngine(const std::string& algo, uint64_t fingerprint);

  enum class Role { kHit, kLeader, kWaiter };

  struct Ticket {
    Role role = Role::kLeader;
    /// kHit: the cached full score vector (shape the reply with
    /// CachedResult).
    std::shared_ptr<const ScoreList> hit_scores;
    /// kWaiter: resolves when the leader publishes.
    std::future<QueryResult> waiter_future;
  };

  /// Atomic hit / join / lead decision for one fresh_seed request. For a
  /// kWaiter ticket, `k` shapes the eventual reply and `timer` (started at
  /// Submit) prices its latency at publish time. A kLeader caller MUST
  /// call Publish(key, ...) exactly once, on every path — success, engine
  /// failure, or queue rejection — or its waiters hang forever.
  Ticket Lookup(const ResultCacheKey& key, uint32_t k, WallTimer timer);

  /// What Publish did, so the service can fold waiter completions into its
  /// own counters/latency reservoir (waiters never touch the queue).
  struct PublishResult {
    size_t ok_waiters = 0;
    size_t failed_waiters = 0;
    std::vector<double> waiter_latencies;  ///< one per ok waiter
  };

  /// Completes the flight for `key`: on OK caches `scores` (subject to the
  /// byte budget) and answers every waiter from it; on failure propagates
  /// `status` to the waiters. Promises are fulfilled outside the lock.
  PublishResult Publish(const ResultCacheKey& key, const Status& status,
                        const std::shared_ptr<const ScoreList>& scores);

  /// Shapes a cached full vector into a QueryResult: k = 0 copies the
  /// vector, k > 0 derives TopK with the engines' exact tie-breaking. The
  /// cost counters stay zero — no engine work happened.
  static QueryResult CachedResult(const std::shared_ptr<const ScoreList>& scores,
                                  uint32_t k, NodeId source,
                                  double latency_seconds);

  ResultCacheStats Stats() const;

  size_t budget() const { return budget_; }

 private:
  struct Waiter {
    std::promise<QueryResult> promise;
    uint32_t k = 0;
    WallTimer timer;
  };

  struct Flight {
    ResultCacheKey key;
    std::vector<Waiter> waiters;
  };

  using Lru = LruCache<ResultCacheKey, std::shared_ptr<const ScoreList>,
                       ResultCacheKeyHash>;

  const size_t budget_;

  mutable std::mutex mu_;
  Lru lru_;
  /// In-flight leaders. Linear scan: the population is bounded by the
  /// number of concurrently executing distinct misses (<= queue depth).
  std::vector<std::unique_ptr<Flight>> flights_;
  /// algo name -> (algo_id, fingerprint) in registration order; algo_id is
  /// the vector index.
  std::vector<std::pair<std::string, uint64_t>> registered_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t coalesced_ = 0;
  uint64_t invalidated_ = 0;
};

}  // namespace prsim

#endif  // PRSIM_CORE_RESULT_CACHE_H_
