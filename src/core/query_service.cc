#include "core/query_service.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/batch_query.h"
#include "core/engine_registry.h"
#include "core/result_cache.h"
#include "util/fault_injection.h"
#include "util/serde.h"

namespace prsim {

std::string ServiceStatsJson(const ServiceStats& stats,
                             const std::string& transport) {
  char buffer[768];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"event\":\"serve_stats\",\"transport\":\"%s\","
      "\"accepted\":%llu,\"completed\":%llu,\"failed\":%llu,"
      "\"rejected\":%llu,\"deadline_exceeded\":%llu,\"shed\":%llu,"
      "\"queue_high_water\":%llu,"
      "\"p50_ms\":%.6g,\"p95_ms\":%.6g,\"p99_ms\":%.6g,"
      "\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"cache_coalesced\":%llu,\"cache_evictions\":%llu,"
      "\"cache_bytes\":%llu}",
      transport.c_str(), static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.deadline_exceeded),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.queue_high_water),
      stats.p50_seconds * 1e3, stats.p95_seconds * 1e3,
      stats.p99_seconds * 1e3,
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_coalesced),
      static_cast<unsigned long long>(stats.cache_evictions),
      static_cast<unsigned long long>(stats.cache_bytes));
  return buffer;
}

namespace {

void FnvUpdateString(Fnv64& fnv, const std::string& s) {
  const uint64_t len = s.size();
  fnv.Update(&len, sizeof(len));
  fnv.Update(s.data(), s.size());
}

void FnvUpdateU64(Fnv64& fnv, uint64_t v) { fnv.Update(&v, sizeof(v)); }

using ServiceClock = std::chrono::steady_clock;

/// Relative deadlines at or beyond ~1 year are treated as "no deadline":
/// now + milliseconds(huge) would overflow the steady_clock rep, and no
/// real client budgets a query in years.
constexpr uint64_t kMaxDeadlineMs = 365ull * 24 * 3600 * 1000;

/// Resolves a request's deadline fields to one absolute time point
/// (time_point::max() = none). An absolute deadline_at wins over the
/// relative deadline_ms budget.
ServiceClock::time_point ResolveDeadline(const QueryRequest& request) {
  if (request.deadline_at != ServiceClock::time_point::max()) {
    return request.deadline_at;
  }
  if (request.deadline_ms != QueryRequest::kNoDeadline &&
      request.deadline_ms < kMaxDeadlineMs) {
    return ServiceClock::now() +
           std::chrono::milliseconds(request.deadline_ms);
  }
  return ServiceClock::time_point::max();
}

/// Cache fingerprint for an engine built from (graph, config): any change
/// to the graph shape/content, the canonical config rendering, or the
/// leader seed changes the digest.
uint64_t EngineFingerprint(const std::string& algo, const Graph& graph,
                           const EngineConfig& config, uint64_t seed) {
  Fnv64 fnv;
  FnvUpdateString(fnv, algo);
  FnvUpdateU64(fnv, graph.n());
  FnvUpdateU64(fnv, graph.m());
  FnvUpdateU64(fnv, graph.Checksum());
  FnvUpdateString(fnv, config.ToString());
  FnvUpdateU64(fnv, seed);
  return fnv.digest();
}

/// Weaker digest for a caller-supplied preprocessed leader (no graph or
/// config in hand): callers that swap leaders sharing (algo, n, seed) but
/// differing elsewhere should disable or size-segregate the cache.
uint64_t LeaderFingerprint(const std::string& algo,
                           const SingleSourceSimRank& leader) {
  Fnv64 fnv;
  FnvUpdateString(fnv, algo);
  FnvUpdateU64(fnv, leader.node_count());
  FnvUpdateU64(fnv, leader.seed());
  return fnv.digest();
}

}  // namespace

QueryService::QueryService(const QueryServiceOptions& options)
    : options_(options),
      latencies_(options.latency_reservoir),
      pool_(options.threads) {
  PRSIM_CHECK(options_.max_queue > 0) << "max_queue must be positive";
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_bytes);
  }
}

QueryService::~QueryService() = default;

Status QueryService::AddEngineImpl(
    const std::string& algo, std::unique_ptr<SingleSourceSimRank> leader,
    uint64_t fingerprint) {
  if (algo.empty()) {
    return Status::InvalidArgument("engine key must be non-empty");
  }
  if (leader == nullptr) {
    return Status::InvalidArgument("null leader engine for '" + algo + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (submitted_ != 0) {
    return Status::InvalidArgument(
        "engines must be registered before the first Submit()");
  }
  for (const auto& engine : engines_) {
    if (engine->algo == algo) {
      return Status::AlreadyExists("engine '" + algo + "' already registered");
    }
  }
  auto engine = std::make_unique<Engine>();
  engine->algo = algo;
  engine->leader = std::move(leader);
  engine->clones.resize(pool_.size());
  engine->fingerprint = fingerprint;
  engine->cache_seed = engine->leader->seed();
  if (cache_ != nullptr) {
    engine->cache_algo_id = cache_->RegisterEngine(algo, fingerprint);
  }
  engines_.push_back(std::move(engine));
  return Status::OK();
}

Status QueryService::AddEngine(const std::string& algo,
                               std::unique_ptr<SingleSourceSimRank> leader) {
  if (leader == nullptr) {
    return Status::InvalidArgument("null leader engine for '" + algo + "'");
  }
  const uint64_t fingerprint = LeaderFingerprint(algo, *leader);
  return AddEngineImpl(algo, std::move(leader), fingerprint);
}

Status QueryService::AddEngine(const std::string& algo, const Graph& graph,
                               const EngineConfig& config) {
  const EngineInfo* info = EngineRegistry::Global().Find(algo);
  if (info == nullptr) return Status::NotFound("unknown engine: " + algo);
  PRSIM_ASSIGN_OR_RETURN(auto leader,
                         EngineRegistry::Global().Create(algo, graph, config));
  PRSIM_RETURN_NOT_OK(leader->Preprocess());
  const uint64_t fingerprint =
      EngineFingerprint(info->name, graph, config, leader->seed());
  return AddEngineImpl(info->name, std::move(leader), fingerprint);
}

Status QueryService::AddEngineFromIndex(const std::string& algo,
                                        const Graph& graph,
                                        const EngineConfig& config,
                                        const std::string& index_path) {
  const EngineInfo* info = EngineRegistry::Global().Find(algo);
  if (info == nullptr) return Status::NotFound("unknown engine: " + algo);
  PRSIM_ASSIGN_OR_RETURN(auto leader,
                         EngineRegistry::Global().CreateFromIndex(
                             algo, graph, config, index_path));
  const uint64_t fingerprint =
      EngineFingerprint(info->name, graph, config, leader->seed());
  return AddEngineImpl(info->name, std::move(leader), fingerprint);
}

std::vector<std::string> QueryService::Algos() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& engine : engines_) names.push_back(engine->algo);
  return names;
}

QueryService::Engine* QueryService::FindEngine(const std::string& algo) {
  // Called with mu_ held; Engine storage is stable (unique_ptr), so the
  // returned pointer outlives the lock.
  if (engines_.empty()) return nullptr;
  if (algo.empty()) return engines_.front().get();
  for (const auto& engine : engines_) {
    if (engine->algo == algo) return engine.get();
  }
  return nullptr;
}

std::future<QueryResult> QueryService::ReadyResult(QueryResult result) {
  std::promise<QueryResult> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

std::future<QueryResult> QueryService::Submit(QueryRequest request) {
  // Submitting from one of *this service's* workers could deadlock: the
  // blocking backpressure path waits for capacity only those workers can
  // free. Workers of other pools (e.g. a ParallelFor chunk on the shared
  // pool) are fine — this service drains independently of them. Asserted
  // against the pool's thread-local worker registry; debug-only so the
  // release hot path pays nothing.
  PRSIM_DCHECK(!pool_.OwnsCurrentThread())
      << "Submit() from this service's own worker would deadlock the "
         "bounded queue";
  WallTimer submit_timer;
  const ServiceClock::time_point deadline = ResolveDeadline(request);
  const bool has_deadline = deadline != ServiceClock::time_point::max();
  Engine* engine = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Prechecks happen before a seq is consumed, so invalid requests never
    // shift the positional seeds (or the `submitted` count) of the valid
    // stream.
    engine = FindEngine(request.algo);
    Status precheck;
    if (engine == nullptr) {
      precheck = engines_.empty()
                     ? Status::InvalidArgument("no engines registered")
                     : Status::NotFound("unknown engine: '" + request.algo +
                                        "'");
    } else if (request.source >= engine->leader->node_count()) {
      precheck = Status::InvalidArgument(
          "source " + std::to_string(request.source) + " out of range (n = " +
          std::to_string(engine->leader->node_count()) + ")");
    }
    if (!precheck.ok()) {
      ++failed_;
      return ReadyResult({std::move(precheck), {}, 0, {}});
    }
  }

  // Admission deadline gate, BEFORE the cache: an expired request gets no
  // answer at all — not even a free cache hit — so deadline semantics do
  // not depend on cache state. Like prechecked requests it consumes no
  // positional seq and no `submitted` slot.
  if (has_deadline && ServiceClock::now() >= deadline) {
    std::lock_guard<std::mutex> lock(mu_);
    ++deadline_exceeded_;
    return ReadyResult(
        {Status::DeadlineExceeded("deadline expired before admission"),
         {},
         0,
         {}});
  }

  // Cache path: only fresh_seed requests — a fresh answer is a pure
  // function of (fingerprint, seed, algo, source), a positional answer is
  // not (see core/result_cache.h). Hits resolve here, BEFORE the bounded
  // queue, so a saturated queue cannot backpressure them.
  bool lead = false;
  ResultCacheKey key;
  if (cache_ != nullptr && request.fresh_seed) {
    key = ResultCacheKey{engine->fingerprint, engine->cache_seed,
                         request.source, engine->cache_algo_id};
    ResultCache::Ticket ticket =
        cache_->Lookup(key, request.k, submit_timer);
    switch (ticket.role) {
      case ResultCache::Role::kHit: {
        QueryResult result = ResultCache::CachedResult(
            ticket.hit_scores, request.k, request.source,
            submit_timer.Seconds());
        std::lock_guard<std::mutex> lock(mu_);
        ++submitted_;
        ++completed_;
        latencies_.Add(result.latency_seconds);
        return ReadyResult(std::move(result));
      }
      case ResultCache::Role::kWaiter: {
        // Counted as accepted now; completion/failure is folded in when
        // the leader publishes.
        std::lock_guard<std::mutex> lock(mu_);
        ++submitted_;
        return std::move(ticket.waiter_future);
      }
      case ResultCache::Role::kLeader:
        // Falls through to queue admission; RunQuery publishes.
        lead = true;
        break;
    }
  }

  uint64_t seq = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Admission refusals share one resolution path: `refusal` carries the
    // status and `waiter_counter` names the stat that absorbs any
    // coalesced waiters sharing the leader's fate.
    Status refusal;
    uint64_t* waiter_counter = nullptr;
    if (inflight_ >= options_.max_queue) {
      if (options_.degraded) {
        // Degraded mode: a full queue sheds immediately, regardless of the
        // configured backpressure policy — cache hits (resolved above)
        // keep answering while queue-bound work is refused.
        ++shed_;
        waiter_counter = &shed_;
        refusal =
            Status::ResourceExhausted("shed: queue full (degraded mode)");
      } else if (options_.backpressure ==
                 QueryServiceOptions::Backpressure::kReject) {
        ++rejected_;
        waiter_counter = &rejected_;
        refusal = Status::ResourceExhausted(
            "query queue full (" + std::to_string(options_.max_queue) + ")");
      } else if (!has_deadline) {
        queue_has_room_.wait(
            lock, [this] { return inflight_ < options_.max_queue; });
      } else if (!queue_has_room_.wait_until(lock, deadline, [this] {
                   return inflight_ < options_.max_queue;
                 })) {
        // Blocking backpressure vs deadline: the wait itself is bounded by
        // the remaining budget, so a deadlined caller can never block past
        // its own deadline.
        ++deadline_exceeded_;
        waiter_counter = &deadline_exceeded_;
        refusal = Status::DeadlineExceeded(
            "deadline expired waiting for queue capacity");
      }
    }
    if (refusal.ok() && has_deadline && ewma_exec_seconds_ > 0) {
      // Predictive shed: estimate this request's completion time as (queue
      // depth per worker + itself) executions at the observed EWMA rate.
      // If the remaining budget cannot cover that, admitting it only burns
      // a queue slot to compute an answer nobody will wait for.
      const double predicted =
          ewma_exec_seconds_ * (static_cast<double>(inflight_) /
                                    static_cast<double>(pool_.size()) +
                                1.0);
      const double remaining =
          std::chrono::duration<double>(deadline - ServiceClock::now())
              .count();
      if (remaining < predicted) {
        ++shed_;
        waiter_counter = &shed_;
        refusal = Status::DeadlineExceeded(
            "shed: queue wait predicts deadline miss");
      }
    }
    if (!refusal.ok()) {
      if (lead) {
        // The flight must be resolved even though the leader never ran, or
        // coalesced waiters would hang forever. They share the leader's
        // refusal and its counter.
        lock.unlock();
        ResultCache::PublishResult published =
            cache_->Publish(key, refusal, nullptr);
        if (published.failed_waiters > 0) {
          std::lock_guard<std::mutex> relock(mu_);
          *waiter_counter += published.failed_waiters;
        }
      }
      return ReadyResult({std::move(refusal), {}, 0, {}});
    }
    // Accepting the first request freezes the engine set; from here on
    // workers read Engine state without the lock. fresh_seed requests
    // never consume a positional seq: the positional stream replays
    // BatchQuery bit for bit no matter how much fresh traffic (cached or
    // not) is interleaved.
    ++submitted_;
    if (!request.fresh_seed) seq = next_seq_++;
    ++inflight_;
    if (inflight_ > inflight_high_water_) inflight_high_water_ = inflight_;
  }

  return pool_.Submit([this, engine, request = std::move(request), seq,
                       submit_timer, lead, deadline] {
    return RunQuery(*engine, request, seq, submit_timer, lead, deadline);
  });
}

QueryResult QueryService::RunQuery(
    Engine& engine, const QueryRequest& request, uint64_t seq,
    WallTimer submit_timer, bool publish_to_cache,
    std::chrono::steady_clock::time_point deadline) {
  const size_t worker = ThreadPool::WorkerIndex();
  PRSIM_CHECK(worker != ThreadPool::kNotAWorker && worker < pool_.size());
  uint64_t stall_ms = 0;
  if (PRSIM_FAULT_POINT("worker.pickup.stall", &stall_ms) && stall_ms > 0) {
    // Injected scheduling hiccup: the worker picked this request up late.
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
  // Queue sweep: a request whose deadline expired while queued is resolved
  // kDeadlineExceeded without touching an engine — the client has given
  // up, so the cheapest correct answer is no work at all. It consumed its
  // positional seq at admission, so the surviving stream's seeds are
  // unchanged (bit-identity is scoped to "no deadline fired").
  if (deadline != ServiceClock::time_point::max() &&
      ServiceClock::now() >= deadline) {
    QueryResult result;
    result.status = Status::DeadlineExceeded("deadline expired in queue");
    result.latency_seconds = submit_timer.Seconds();
    ResultCache::PublishResult published;
    if (publish_to_cache) {
      const ResultCacheKey key{engine.fingerprint, engine.cache_seed,
                               request.source, engine.cache_algo_id};
      published = cache_->Publish(key, result.status, nullptr);
    }
    std::lock_guard<std::mutex> lock(mu_);
    // Accepted-then-expired counts as a failure too, so the accounting
    // identity (submitted == completed + failed over accepted requests)
    // survives deadline sweeps.
    ++failed_;
    ++deadline_exceeded_;
    failed_ += published.failed_waiters;
    deadline_exceeded_ += published.failed_waiters;
    for (double latency : published.waiter_latencies) latencies_.Add(latency);
    --inflight_;
    queue_has_room_.notify_one();
    return result;
  }
  std::unique_ptr<SingleSourceSimRank>& clone = engine.clones[worker];
  QueryResult result;
  std::shared_ptr<const ScoreList> full_scores;
  WallTimer exec_timer;
  try {
    if (clone == nullptr) {
      clone = engine.leader->CloneWithSeed(engine.leader->seed());
      PRSIM_CHECK(clone != nullptr)
          << engine.algo << " returned a null CloneWithSeed()";
    }
    // Positional reseed: a single-worker service answers the request
    // stream exactly like BatchQuery over the same sources. Callers can
    // override the position (shard routing passes the global stream order)
    // or ask for fresh-engine semantics (the one-shot query path).
    if (request.fresh_seed) {
      clone->Reseed(engine.leader->seed());
    } else {
      const uint64_t position = request.seed_position ==
                                        QueryRequest::kServiceOrder
                                    ? seq
                                    : request.seed_position;
      clone->Reseed(internal::BatchQuerySeed(engine.leader->seed(),
                                             static_cast<size_t>(position)));
    }
    if (PRSIM_FAULT_POINT("engine.query.throw", &stall_ms)) {
      // Injected engine failure: exercises the same catch path as a real
      // engine exception (kInternal result, clone dropped and re-minted).
      throw std::runtime_error("injected fault: engine.query.throw");
    }
    if (publish_to_cache) {
      // Cache leader: compute the FULL vector (one entry serves any k) and
      // derive this caller's own reply from it. Bit-identical to the
      // uncached path: no engine overrides QueryTopK, so QueryTopK(u, k)
      // IS TopK(Query(u), k, u).
      full_scores =
          std::make_shared<const ScoreList>(clone->Query(request.source));
      result.scores = request.k > 0
                          ? TopK(*full_scores, request.k, request.source)
                          : *full_scores;
    } else {
      result.scores = request.k > 0
                          ? clone->QueryTopK(request.source, request.k)
                          : clone->Query(request.source);
    }
    result.cost = clone->last_query_cost();
  } catch (const std::exception& e) {
    result.status = Status::Internal(engine.algo + " query threw: " + e.what());
    // The clone may hold partially mutated scratch; drop it so the next
    // query on this worker starts from a fresh clone.
    clone.reset();
    full_scores = nullptr;
  } catch (...) {
    result.status = Status::Internal(engine.algo + " query threw");
    clone.reset();
    full_scores = nullptr;
  }
  result.latency_seconds = submit_timer.Seconds();

  ResultCache::PublishResult published;
  if (publish_to_cache) {
    // Publish on EVERY leader path — success or failure — so coalesced
    // waiters always resolve.
    const ResultCacheKey key{engine.fingerprint, engine.cache_seed,
                             request.source, engine.cache_algo_id};
    published = cache_->Publish(key, result.status, full_scores);
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (result.status.ok()) {
    ++completed_;
    aggregate_cost_.Accumulate(result.cost);
    latencies_.Add(result.latency_seconds);
    // Feed the predictive shedder. Worker-side wall time (clone warmup
    // included) is the right unit: it is what a queued request will cost.
    const double exec = exec_timer.Seconds();
    ewma_exec_seconds_ = ewma_exec_seconds_ == 0
                             ? exec
                             : 0.8 * ewma_exec_seconds_ + 0.2 * exec;
  } else {
    ++failed_;
  }
  // Coalesced waiters resolved by this publish: they completed (or
  // failed) without ever entering the queue, but they are real answered
  // requests — fold them into the service counters and the latency
  // reservoir.
  completed_ += published.ok_waiters;
  failed_ += published.failed_waiters;
  for (double latency : published.waiter_latencies) latencies_.Add(latency);
  --inflight_;
  queue_has_room_.notify_one();
  return result;
}

ServiceStats QueryService::Stats() const {
  ServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.submitted = submitted_;
    stats.completed = completed_;
    stats.failed = failed_;
    stats.rejected = rejected_;
    stats.deadline_exceeded = deadline_exceeded_;
    stats.shed = shed_;
    stats.queue_high_water = inflight_high_water_;
    const std::vector<double> sorted = latencies_.SortedSamples();
    stats.p50_seconds = SortedQuantile(sorted, 0.50);
    stats.p95_seconds = SortedQuantile(sorted, 0.95);
    stats.p99_seconds = SortedQuantile(sorted, 0.99);
    stats.aggregate_cost = aggregate_cost_;
    stats.aggregate_cost.latency_p50_seconds = stats.p50_seconds;
    stats.aggregate_cost.latency_p95_seconds = stats.p95_seconds;
    stats.aggregate_cost.latency_p99_seconds = stats.p99_seconds;
  }
  if (cache_ != nullptr) {
    // Outside mu_: the cache has its own mutex and the two are never
    // nested.
    const ResultCacheStats cache = cache_->Stats();
    stats.cache_hits = cache.hits;
    stats.cache_misses = cache.misses;
    stats.cache_coalesced = cache.coalesced;
    stats.cache_evictions = cache.evictions;
    stats.cache_bytes = cache.bytes;
  }
  return stats;
}

std::vector<double> QueryService::LatencySamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latencies_.SortedSamples();
}

size_t QueryService::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace prsim
