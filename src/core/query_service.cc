#include "core/query_service.h"

#include <cstdio>
#include <exception>
#include <utility>

#include "core/batch_query.h"
#include "core/engine_registry.h"

namespace prsim {

std::string ServiceStatsJson(const ServiceStats& stats,
                             const std::string& transport) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"event\":\"serve_stats\",\"transport\":\"%s\","
      "\"accepted\":%llu,\"completed\":%llu,\"failed\":%llu,"
      "\"rejected\":%llu,\"queue_high_water\":%llu,"
      "\"p50_ms\":%.6g,\"p95_ms\":%.6g,\"p99_ms\":%.6g}",
      transport.c_str(), static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.queue_high_water),
      stats.p50_seconds * 1e3, stats.p95_seconds * 1e3,
      stats.p99_seconds * 1e3);
  return buffer;
}

QueryService::QueryService(const QueryServiceOptions& options)
    : options_(options),
      latencies_(options.latency_reservoir),
      pool_(options.threads) {
  PRSIM_CHECK(options_.max_queue > 0) << "max_queue must be positive";
}

QueryService::~QueryService() = default;

Status QueryService::AddEngineImpl(
    const std::string& algo, std::unique_ptr<SingleSourceSimRank> leader) {
  if (algo.empty()) {
    return Status::InvalidArgument("engine key must be non-empty");
  }
  if (leader == nullptr) {
    return Status::InvalidArgument("null leader engine for '" + algo + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (submitted_ != 0) {
    return Status::InvalidArgument(
        "engines must be registered before the first Submit()");
  }
  for (const auto& engine : engines_) {
    if (engine->algo == algo) {
      return Status::AlreadyExists("engine '" + algo + "' already registered");
    }
  }
  auto engine = std::make_unique<Engine>();
  engine->algo = algo;
  engine->leader = std::move(leader);
  engine->clones.resize(pool_.size());
  engines_.push_back(std::move(engine));
  return Status::OK();
}

Status QueryService::AddEngine(const std::string& algo,
                               std::unique_ptr<SingleSourceSimRank> leader) {
  return AddEngineImpl(algo, std::move(leader));
}

Status QueryService::AddEngine(const std::string& algo, const Graph& graph,
                               const EngineConfig& config) {
  const EngineInfo* info = EngineRegistry::Global().Find(algo);
  if (info == nullptr) return Status::NotFound("unknown engine: " + algo);
  PRSIM_ASSIGN_OR_RETURN(auto leader,
                         EngineRegistry::Global().Create(algo, graph, config));
  PRSIM_RETURN_NOT_OK(leader->Preprocess());
  return AddEngineImpl(info->name, std::move(leader));
}

Status QueryService::AddEngineFromIndex(const std::string& algo,
                                        const Graph& graph,
                                        const EngineConfig& config,
                                        const std::string& index_path) {
  const EngineInfo* info = EngineRegistry::Global().Find(algo);
  if (info == nullptr) return Status::NotFound("unknown engine: " + algo);
  PRSIM_ASSIGN_OR_RETURN(auto leader,
                         EngineRegistry::Global().CreateFromIndex(
                             algo, graph, config, index_path));
  return AddEngineImpl(info->name, std::move(leader));
}

std::vector<std::string> QueryService::Algos() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& engine : engines_) names.push_back(engine->algo);
  return names;
}

QueryService::Engine* QueryService::FindEngine(const std::string& algo) {
  // Called with mu_ held; Engine storage is stable (unique_ptr), so the
  // returned pointer outlives the lock.
  if (engines_.empty()) return nullptr;
  if (algo.empty()) return engines_.front().get();
  for (const auto& engine : engines_) {
    if (engine->algo == algo) return engine.get();
  }
  return nullptr;
}

std::future<QueryResult> QueryService::ReadyResult(QueryResult result) {
  std::promise<QueryResult> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

std::future<QueryResult> QueryService::Submit(QueryRequest request) {
  // Submitting from one of *this service's* workers could deadlock: the
  // blocking backpressure path waits for capacity only those workers can
  // free. Workers of other pools (e.g. a ParallelFor chunk on the shared
  // pool) are fine — this service drains independently of them.
  PRSIM_CHECK(!pool_.OwnsCurrentThread())
      << "Submit() from this service's own worker would deadlock the "
         "bounded queue";
  uint64_t seq = 0;
  Engine* engine = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Prechecks happen before a seq is consumed, so invalid requests never
    // shift the positional seeds (or the `submitted` count) of the valid
    // stream.
    engine = FindEngine(request.algo);
    Status precheck;
    if (engine == nullptr) {
      precheck = engines_.empty()
                     ? Status::InvalidArgument("no engines registered")
                     : Status::NotFound("unknown engine: '" + request.algo +
                                        "'");
    } else if (request.source >= engine->leader->node_count()) {
      precheck = Status::InvalidArgument(
          "source " + std::to_string(request.source) + " out of range (n = " +
          std::to_string(engine->leader->node_count()) + ")");
    }
    if (!precheck.ok()) {
      ++failed_;
      return ReadyResult({std::move(precheck), {}, 0, {}});
    }
    if (inflight_ >= options_.max_queue) {
      if (options_.backpressure ==
          QueryServiceOptions::Backpressure::kReject) {
        ++rejected_;
        return ReadyResult({Status::ResourceExhausted(
                                "query queue full (" +
                                std::to_string(options_.max_queue) + ")"),
                            {},
                            0,
                            {}});
      }
      queue_has_room_.wait(
          lock, [this] { return inflight_ < options_.max_queue; });
    }
    // Accepting the first request freezes the engine set; from here on
    // workers read Engine state without the lock.
    seq = submitted_++;
    ++inflight_;
    if (inflight_ > inflight_high_water_) inflight_high_water_ = inflight_;
  }

  WallTimer submit_timer;
  return pool_.Submit([this, engine, request = std::move(request), seq,
                       submit_timer] {
    return RunQuery(*engine, request, seq, submit_timer);
  });
}

QueryResult QueryService::RunQuery(Engine& engine,
                                   const QueryRequest& request, uint64_t seq,
                                   WallTimer submit_timer) {
  const size_t worker = ThreadPool::WorkerIndex();
  PRSIM_CHECK(worker != ThreadPool::kNotAWorker && worker < pool_.size());
  std::unique_ptr<SingleSourceSimRank>& clone = engine.clones[worker];
  QueryResult result;
  try {
    if (clone == nullptr) {
      clone = engine.leader->CloneWithSeed(engine.leader->seed());
      PRSIM_CHECK(clone != nullptr)
          << engine.algo << " returned a null CloneWithSeed()";
    }
    // Positional reseed: a single-worker service answers the request
    // stream exactly like BatchQuery over the same sources. Callers can
    // override the position (shard routing passes the global stream order)
    // or ask for fresh-engine semantics (the one-shot query path).
    if (request.fresh_seed) {
      clone->Reseed(engine.leader->seed());
    } else {
      const uint64_t position = request.seed_position ==
                                        QueryRequest::kServiceOrder
                                    ? seq
                                    : request.seed_position;
      clone->Reseed(internal::BatchQuerySeed(engine.leader->seed(),
                                             static_cast<size_t>(position)));
    }
    result.scores = request.k > 0 ? clone->QueryTopK(request.source, request.k)
                                  : clone->Query(request.source);
    result.cost = clone->last_query_cost();
  } catch (const std::exception& e) {
    result.status = Status::Internal(engine.algo + " query threw: " + e.what());
    // The clone may hold partially mutated scratch; drop it so the next
    // query on this worker starts from a fresh clone.
    clone.reset();
  } catch (...) {
    result.status = Status::Internal(engine.algo + " query threw");
    clone.reset();
  }
  result.latency_seconds = submit_timer.Seconds();

  std::lock_guard<std::mutex> lock(mu_);
  if (result.status.ok()) {
    ++completed_;
    aggregate_cost_.Accumulate(result.cost);
    latencies_.Add(result.latency_seconds);
  } else {
    ++failed_;
  }
  --inflight_;
  queue_has_room_.notify_one();
  return result;
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats stats;
  stats.submitted = submitted_;
  stats.completed = completed_;
  stats.failed = failed_;
  stats.rejected = rejected_;
  stats.queue_high_water = inflight_high_water_;
  const std::vector<double> sorted = latencies_.SortedSamples();
  stats.p50_seconds = SortedQuantile(sorted, 0.50);
  stats.p95_seconds = SortedQuantile(sorted, 0.95);
  stats.p99_seconds = SortedQuantile(sorted, 0.99);
  stats.aggregate_cost = aggregate_cost_;
  stats.aggregate_cost.latency_p50_seconds = stats.p50_seconds;
  stats.aggregate_cost.latency_p95_seconds = stats.p95_seconds;
  stats.aggregate_cost.latency_p99_seconds = stats.p99_seconds;
  return stats;
}

std::vector<double> QueryService::LatencySamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latencies_.SortedSamples();
}

size_t QueryService::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

}  // namespace prsim
