// Binary persistence for the PRSim hub index.
//
// Preprocessing costs O(m/eps); persisting the finished index lets a serving
// process skip it entirely. The format stores the options fingerprint
// (c, eps, rmax), the reverse PageRank vector, and every hub's per-level
// reserve lists. Loading validates the fingerprint against the graph the
// caller supplies (n must match) so a stale index cannot be paired with a
// different graph silently.

#ifndef PRSIM_CORE_INDEX_IO_H_
#define PRSIM_CORE_INDEX_IO_H_

#include <string>

#include "core/prsim_index.h"
#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

class PRSimIndexIO {
 public:
  /// Serializes a built index to `path`.
  static Status Save(const PRSimIndex& index, const Graph& graph,
                     const std::string& path);

  /// Loads an index previously saved against a graph with the same node
  /// count; fails with kInvalidArgument on fingerprint mismatch.
  static Result<PRSimIndex> Load(const Graph& graph, const std::string& path);
};

}  // namespace prsim

#endif  // PRSIM_CORE_INDEX_IO_H_
