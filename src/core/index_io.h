// Binary persistence for the PRSim hub index.
//
// Preprocessing costs O(m/eps); persisting the finished index lets a serving
// process skip it entirely. The artifact rides on the shared serde envelope
// (magic + version + kind + checksum trailer) and embeds the full
// ArtifactFingerprint: n, m, a graph checksum, and a hash of every
// index-shaping option (c, eps, j0, rmax, max_level). Loading validates the
// fingerprint against the graph and options the caller supplies, so a stale
// index can no longer be paired silently with a different graph of the same
// size or with different build parameters.

#ifndef PRSIM_CORE_INDEX_IO_H_
#define PRSIM_CORE_INDEX_IO_H_

#include <string>

#include "core/prsim_index.h"
#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

class PRSimIndexIO {
 public:
  /// Serializes a built index to `path`. `options` must be the options the
  /// index was built with; they are fingerprinted into the artifact.
  static Status Save(const PRSimIndex& index, const Graph& graph,
                     const PRSimIndexOptions& options,
                     const std::string& path);

  /// Loads an index previously saved against the same graph and options;
  /// fails with kInvalidArgument on any fingerprint mismatch (n, m, graph
  /// checksum, or options) and kIOError on corruption.
  static Result<PRSimIndex> Load(const Graph& graph,
                                 const PRSimIndexOptions& options,
                                 const std::string& path);

  /// Hash of the index-shaping options (threads excluded: they change build
  /// parallelism, never the index contents).
  static uint64_t OptionsHash(const PRSimIndexOptions& options);
};

}  // namespace prsim

#endif  // PRSIM_CORE_INDEX_IO_H_
