#include "core/artifact.h"

#include <cinttypes>
#include <cstdio>

namespace prsim {

OptionsHasher& OptionsHasher::Add(const char* key, double value) {
  char rendered[40];
  std::snprintf(rendered, sizeof(rendered), "%.17g", value);
  AddEntry(key, rendered);
  return *this;
}

OptionsHasher& OptionsHasher::AddUint(const char* key, uint64_t value) {
  char rendered[24];
  std::snprintf(rendered, sizeof(rendered), "%" PRIu64, value);
  AddEntry(key, rendered);
  return *this;
}

void OptionsHasher::AddEntry(const char* key, const char* rendered) {
  fnv_.Update(key, std::char_traits<char>::length(key));
  fnv_.Update("=", 1);
  fnv_.Update(rendered, std::char_traits<char>::length(rendered));
  fnv_.Update(";", 1);
}

ArtifactFingerprint MakeFingerprint(const Graph& graph,
                                    uint64_t options_hash) {
  ArtifactFingerprint fp;
  fp.n = graph.n();
  fp.m = graph.m();
  fp.graph_checksum = graph.Checksum();
  fp.options_hash = options_hash;
  return fp;
}

void WriteFingerprint(ByteSink& sink, const ArtifactFingerprint& fp) {
  sink.WritePod(fp.n);
  sink.WritePod(fp.m);
  sink.WritePod(fp.graph_checksum);
  sink.WritePod(fp.options_hash);
}

Status ReadAndCheckFingerprint(SectionReader& reader,
                               const ArtifactFingerprint& expected,
                               const std::string& path) {
  ArtifactFingerprint stored;
  PRSIM_RETURN_NOT_OK(reader.ReadPod(&stored.n));
  PRSIM_RETURN_NOT_OK(reader.ReadPod(&stored.m));
  PRSIM_RETURN_NOT_OK(reader.ReadPod(&stored.graph_checksum));
  PRSIM_RETURN_NOT_OK(reader.ReadPod(&stored.options_hash));
  if (stored.n != expected.n) {
    return Status::InvalidArgument(
        "'" + path + "' was built for a graph with n = " +
        std::to_string(stored.n) + ", but the supplied graph has n = " +
        std::to_string(expected.n));
  }
  if (stored.m != expected.m) {
    return Status::InvalidArgument(
        "'" + path + "' was built for a graph with m = " +
        std::to_string(stored.m) + ", but the supplied graph has m = " +
        std::to_string(expected.m));
  }
  if (stored.graph_checksum != expected.graph_checksum) {
    return Status::InvalidArgument(
        "'" + path +
        "' was built for a different graph with the same size (graph "
        "checksum mismatch)");
  }
  if (stored.options_hash != expected.options_hash) {
    return Status::InvalidArgument(
        "'" + path +
        "' was built with different options than this engine was "
        "configured with (options hash mismatch)");
  }
  return Status::OK();
}

}  // namespace prsim
