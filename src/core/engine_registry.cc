#include "core/engine_registry.h"

#include <cctype>

#include "baselines/monte_carlo.h"
#include "baselines/power_method.h"
#include "baselines/probesim.h"
#include "baselines/reads.h"
#include "baselines/sling.h"
#include "baselines/topsim.h"
#include "baselines/tsf.h"
#include "core/prsim.h"

namespace prsim {

namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& ch : out) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return out;
}

/// Requires an integer-valued key (if present) to be >= 1, so option structs
/// whose constructors PRSIM_CHECK positivity report a clean error instead of
/// aborting the process.
Status GetPositiveUint32(const EngineConfig& config, const char* key,
                         uint32_t* out) {
  PRSIM_RETURN_NOT_OK(config.GetUint32(key, out));
  if (config.Has(key) && *out == 0) {
    return Status::InvalidArgument(std::string("config key '") + key +
                                   "': must be >= 1");
  }
  return Status::OK();
}

using EnginePtr = std::unique_ptr<SingleSourceSimRank>;

Result<EnginePtr> MakePRSim(const Graph& graph, const EngineConfig& config) {
  PRSIM_RETURN_NOT_OK(config.ExpectOnly({"c", "eps", "delta", "j0", "alpha",
                                         "rounds", "max_level", "threads",
                                         "paper_constants", "seed"}));
  PRSimOptions options;
  PRSIM_RETURN_NOT_OK(config.GetOpenInterval("c", 0.0, 1.0, &options.c));
  PRSIM_RETURN_NOT_OK(config.GetPositiveDouble("eps", &options.eps));
  PRSIM_RETURN_NOT_OK(config.GetOpenInterval("delta", 0.0, 1.0,
                                             &options.delta));
  PRSIM_RETURN_NOT_OK(config.GetUint32("j0", &options.j0));
  PRSIM_RETURN_NOT_OK(config.GetPositiveDouble("alpha", &options.alpha));
  PRSIM_RETURN_NOT_OK(GetPositiveUint32(config, "rounds", &options.rounds));
  PRSIM_RETURN_NOT_OK(
      GetPositiveUint32(config, "max_level", &options.max_level));
  PRSIM_RETURN_NOT_OK(config.GetSize("threads", &options.threads));
  PRSIM_RETURN_NOT_OK(
      config.GetBool("paper_constants", &options.paper_constants));
  PRSIM_RETURN_NOT_OK(config.GetUint64("seed", &options.seed));
  return EnginePtr(std::make_unique<PRSim>(graph, options));
}

Result<EnginePtr> MakeProbeSim(const Graph& graph,
                               const EngineConfig& config) {
  PRSIM_RETURN_NOT_OK(config.ExpectOnly({"c", "eps", "alpha", "seed"}));
  ProbeSimOptions options;
  PRSIM_RETURN_NOT_OK(config.GetOpenInterval("c", 0.0, 1.0, &options.c));
  PRSIM_RETURN_NOT_OK(config.GetPositiveDouble("eps", &options.eps));
  PRSIM_RETURN_NOT_OK(config.GetPositiveDouble("alpha", &options.alpha));
  PRSIM_RETURN_NOT_OK(config.GetUint64("seed", &options.seed));
  return EnginePtr(std::make_unique<ProbeSim>(graph, options));
}

Result<EnginePtr> MakeReads(const Graph& graph, const EngineConfig& config) {
  PRSIM_RETURN_NOT_OK(
      config.ExpectOnly({"c", "r", "t", "max_entries", "seed"}));
  ReadsOptions options;
  PRSIM_RETURN_NOT_OK(config.GetOpenInterval("c", 0.0, 1.0, &options.c));
  PRSIM_RETURN_NOT_OK(GetPositiveUint32(config, "r", &options.r));
  PRSIM_RETURN_NOT_OK(GetPositiveUint32(config, "t", &options.t));
  PRSIM_RETURN_NOT_OK(
      config.GetUint64("max_entries", &options.max_index_entries));
  PRSIM_RETURN_NOT_OK(config.GetUint64("seed", &options.seed));
  return EnginePtr(std::make_unique<Reads>(graph, options));
}

Result<EnginePtr> MakeSling(const Graph& graph, const EngineConfig& config) {
  PRSIM_RETURN_NOT_OK(config.ExpectOnly({"c", "eps", "delta", "alpha_eta",
                                         "max_eta_samples", "max_tuples",
                                         "max_level", "threads", "seed"}));
  SlingOptions options;
  PRSIM_RETURN_NOT_OK(config.GetOpenInterval("c", 0.0, 1.0, &options.c));
  PRSIM_RETURN_NOT_OK(config.GetPositiveDouble("eps", &options.eps));
  PRSIM_RETURN_NOT_OK(config.GetOpenInterval("delta", 0.0, 1.0,
                                             &options.delta));
  PRSIM_RETURN_NOT_OK(
      config.GetPositiveDouble("alpha_eta", &options.alpha_eta));
  PRSIM_RETURN_NOT_OK(
      config.GetUint64("max_eta_samples", &options.max_eta_samples));
  PRSIM_RETURN_NOT_OK(
      config.GetUint64("max_tuples", &options.max_index_tuples));
  PRSIM_RETURN_NOT_OK(
      GetPositiveUint32(config, "max_level", &options.max_level));
  PRSIM_RETURN_NOT_OK(config.GetSize("threads", &options.threads));
  PRSIM_RETURN_NOT_OK(config.GetUint64("seed", &options.seed));
  return EnginePtr(std::make_unique<Sling>(graph, options));
}

Result<EnginePtr> MakeTopSim(const Graph& graph, const EngineConfig& config) {
  PRSIM_RETURN_NOT_OK(config.ExpectOnly(
      {"c", "depth", "degree_cap", "eta_prune", "width", "seed"}));
  TopSimOptions options;
  PRSIM_RETURN_NOT_OK(config.GetOpenInterval("c", 0.0, 1.0, &options.c));
  PRSIM_RETURN_NOT_OK(GetPositiveUint32(config, "depth", &options.depth));
  PRSIM_RETURN_NOT_OK(
      GetPositiveUint32(config, "degree_cap", &options.degree_cap));
  PRSIM_RETURN_NOT_OK(
      config.GetPositiveDouble("eta_prune", &options.eta_prune));
  PRSIM_RETURN_NOT_OK(GetPositiveUint32(config, "width", &options.width));
  PRSIM_RETURN_NOT_OK(config.GetUint64("seed", &options.seed));
  return EnginePtr(std::make_unique<TopSim>(graph, options));
}

Result<EnginePtr> MakeTsf(const Graph& graph, const EngineConfig& config) {
  PRSIM_RETURN_NOT_OK(
      config.ExpectOnly({"c", "rg", "rq", "depth", "max_entries", "seed"}));
  TsfOptions options;
  PRSIM_RETURN_NOT_OK(config.GetOpenInterval("c", 0.0, 1.0, &options.c));
  PRSIM_RETURN_NOT_OK(GetPositiveUint32(config, "rg", &options.rg));
  PRSIM_RETURN_NOT_OK(GetPositiveUint32(config, "rq", &options.rq));
  PRSIM_RETURN_NOT_OK(GetPositiveUint32(config, "depth", &options.depth));
  PRSIM_RETURN_NOT_OK(
      config.GetUint64("max_entries", &options.max_index_entries));
  PRSIM_RETURN_NOT_OK(config.GetUint64("seed", &options.seed));
  return EnginePtr(std::make_unique<Tsf>(graph, options));
}

Result<EnginePtr> MakeMonteCarlo(const Graph& graph,
                                 const EngineConfig& config) {
  PRSIM_RETURN_NOT_OK(config.ExpectOnly({"c", "samples", "seed"}));
  MonteCarloOptions options;
  PRSIM_RETURN_NOT_OK(config.GetOpenInterval("c", 0.0, 1.0, &options.c));
  PRSIM_RETURN_NOT_OK(config.GetUint64("samples", &options.samples));
  if (options.samples == 0) {
    return Status::InvalidArgument("config key 'samples': must be >= 1");
  }
  PRSIM_RETURN_NOT_OK(config.GetUint64("seed", &options.seed));
  return EnginePtr(std::make_unique<MonteCarloSimRank>(graph, options));
}

Result<EnginePtr> MakePowerMethod(const Graph& graph,
                                  const EngineConfig& config) {
  // `seed` is accepted (and ignored) so seed-setting callers like BatchQuery
  // helpers and the CLI's --seed work uniformly across engines.
  PRSIM_RETURN_NOT_OK(
      config.ExpectOnly({"c", "iterations", "max_nodes", "seed"}));
  PowerMethodOptions options;
  PRSIM_RETURN_NOT_OK(config.GetOpenInterval("c", 0.0, 1.0, &options.c));
  PRSIM_RETURN_NOT_OK(
      GetPositiveUint32(config, "iterations", &options.iterations));
  PRSIM_RETURN_NOT_OK(config.GetUint32("max_nodes", &options.max_nodes));
  return EnginePtr(std::make_unique<PowerMethodSimRank>(graph, options));
}

}  // namespace

EngineRegistry::EngineRegistry() {
  Register({"prsim", "PRSim", /*index_based=*/true,
            /*supports_pair_query=*/false, /*has_persistent_index=*/true,
            "c,eps,delta,j0,alpha,rounds,max_level,threads,paper_constants,"
            "seed",
            "Wei et al., SIGMOD 2019"},
           MakePRSim);
  Register({"probesim", "ProbeSim", /*index_based=*/false,
            /*supports_pair_query=*/false, /*has_persistent_index=*/false,
            "c,eps,alpha,seed", "Liu et al., VLDB 2017"},
           MakeProbeSim);
  Register({"reads", "READS", /*index_based=*/true,
            /*supports_pair_query=*/false, /*has_persistent_index=*/true,
            "c,r,t,max_entries,seed", "Jiang et al., VLDB 2017"},
           MakeReads);
  Register({"sling", "SLING", /*index_based=*/true,
            /*supports_pair_query=*/false, /*has_persistent_index=*/true,
            "c,eps,delta,alpha_eta,max_eta_samples,max_tuples,max_level,"
            "threads,seed",
            "Tian & Xiao, SIGMOD 2016"},
           MakeSling);
  Register({"topsim", "TopSim", /*index_based=*/false,
            /*supports_pair_query=*/false, /*has_persistent_index=*/false,
            "c,depth,degree_cap,eta_prune,width,seed",
            "Lee et al., ICDE 2012"},
           MakeTopSim);
  Register({"tsf", "TSF", /*index_based=*/true,
            /*supports_pair_query=*/false, /*has_persistent_index=*/true,
            "c,rg,rq,depth,max_entries,seed", "Shao et al., VLDB 2015"},
           MakeTsf);
  Register({"montecarlo", "MonteCarlo", /*index_based=*/false,
            /*supports_pair_query=*/true, /*has_persistent_index=*/false,
            "c,samples,seed", "Fogaras & Racz, WWW 2005"},
           MakeMonteCarlo);
  Register({"powermethod", "PowerMethod", /*index_based=*/true,
            /*supports_pair_query=*/true, /*has_persistent_index=*/false,
            "c,iterations,max_nodes,seed", "Jeh & Widom, KDD 2002"},
           MakePowerMethod);
}

void EngineRegistry::Register(EngineInfo info, Factory factory) {
  engines_.emplace_back(std::move(info), std::move(factory));
}

const EngineRegistry& EngineRegistry::Global() {
  static const EngineRegistry* registry = new EngineRegistry();
  return *registry;
}

std::vector<std::string> EngineRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [info, factory] : engines_) names.push_back(info.name);
  return names;
}

const EngineInfo* EngineRegistry::Find(const std::string& name) const {
  const std::string key = ToLower(name);
  for (const auto& [info, factory] : engines_) {
    if (info.name == key) return &info;
  }
  return nullptr;
}

Result<std::unique_ptr<SingleSourceSimRank>> EngineRegistry::Create(
    const std::string& name, const Graph& graph,
    const EngineConfig& config) const {
  const std::string key = ToLower(name);
  for (const auto& [info, factory] : engines_) {
    if (info.name == key) return factory(graph, config);
  }
  std::string known;
  for (const auto& [info, factory] : engines_) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  return Status::NotFound("unknown engine '" + name + "' (known: " + known +
                          ")");
}

Result<std::unique_ptr<SingleSourceSimRank>> EngineRegistry::Create(
    const std::string& name, const Graph& graph,
    const std::string& params) const {
  PRSIM_ASSIGN_OR_RETURN(EngineConfig config, EngineConfig::Parse(params));
  return Create(name, graph, config);
}

Result<std::unique_ptr<SingleSourceSimRank>> EngineRegistry::CreateFromIndex(
    const std::string& name, const Graph& graph, const EngineConfig& config,
    const std::string& index_path) const {
  PRSIM_ASSIGN_OR_RETURN(std::unique_ptr<SingleSourceSimRank> engine,
                         Create(name, graph, config));
  PRSIM_RETURN_NOT_OK(engine->LoadIndex(index_path));
  return engine;
}

Status EngineRegistry::Validate(const std::string& name,
                                const EngineConfig& config) const {
  static const Graph* const empty = new Graph();
  return Create(name, *empty, config).status();
}

}  // namespace prsim
