// PRSim single-source SimRank (paper Algorithm 4).
//
// Query sketch for source u:
//   1. Sample nr = dr * fr sqrt(c)-walks from u. A walk terminating at (w, l)
//      triggers one meeting test (two walks from w); if they do not meet, the
//      sample contributes 1/nr to the estimator of eta(w) * pi_l(u, w).
//   2. For non-hub w, the same non-meeting sample also runs a variance-
//      bounded backward walk (Algorithm 3) to level l, contributing
//      pi_hat_l(v, w) / ((1-sqrt_c)^2 dr) to the round's tail estimate
//      s_hat_B^i(u, v). The median over fr rounds converts the Chebyshev
//      bound of Lemma 3.5 into a high-probability guarantee (Lemma 3.7).
//   3. For hub w, the (w, l) pairs whose eta-pi estimate exceeds eps/c1 are
//      resolved against the precomputed reserve lists L_l(w):
//      s_hat_I(u, v) += eta_pi_hat_l(u, w) * psi_l(v, w) / (1-sqrt_c)^2.
//
// Constants: `paper_constants = true` uses c1 = 12/(1-sqrt_c)^2,
// dr = c1/eps^2, fr = 3 ln(n/delta) exactly as in the proofs — the mode the
// accuracy tests validate. The default practical mode uses dr = alpha/eps^2,
// fr = 7, mirroring how released SimRank implementations drop the
// union-bound constant; Figure 2/3 benches sweep eps in this mode.
//
// Execution model: the (round, j) sample grid is split into static chunks
// (util/sample_grid.h) executed on the shared ThreadPool, each chunk drawing
// from its own positionally seeded RNG substream and accumulating into a
// pooled per-chunk workspace; chunk partials are merged in fixed grid order.
// Scores are therefore a pure function of (seed, source) — bit-identical for
// any thread count — and steady-state queries perform no per-walk allocation
// (the workspace, including each chunk's BackwardWalker scratch, is reused
// across queries with retained capacity). Note the chunked RNG discipline
// means scores differ from the pre-chunking serial implementation for the
// same seed; the statistical guarantees are unchanged.

#ifndef PRSIM_CORE_PRSIM_H_
#define PRSIM_CORE_PRSIM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/prsim_index.h"
#include "core/single_source.h"
#include "graph/graph.h"
#include "ppr/backward_walk.h"
#include "ppr/walker.h"
#include "util/rng.h"

namespace prsim {

struct PRSimOptions {
  double c = 0.6;      ///< SimRank decay factor
  double eps = 0.1;    ///< additive error target
  double delta = 1e-4; ///< failure probability
  /// Hub count; 0 = sqrt(n) (experimental default of Section 5).
  uint32_t j0 = 0;
  /// Use the exact constants of Algorithms 1/4 (see header comment).
  bool paper_constants = false;
  /// Practical-mode samples-per-round scale: dr = alpha / eps^2.
  double alpha = 3.0;
  /// Practical-mode round count for the median trick (forced odd).
  uint32_t rounds = 7;
  uint32_t max_level = 64;
  /// Worker threads for index construction AND for the intra-query sample
  /// grid (0 = DefaultThreadCount(), which honors PRSIM_THREADS). Query
  /// scores never depend on this value — see the header comment.
  size_t threads = 0;
  uint64_t seed = 42;
};

class PRSim : public SingleSourceSimRank {
 public:
  PRSim(const Graph& graph, const PRSimOptions& options);
  ~PRSim() override;

  std::string name() const override { return "PRSim"; }
  NodeId node_count() const override { return graph_.n(); }

  /// Builds the hub index (Algorithm 1). Must be called before Query.
  Status Preprocess() override;

  /// Persists the built hub index as a fingerprinted artifact (see
  /// PRSimIndexIO); the fingerprint covers the graph and the index-shaping
  /// options (c, eps, j0, max_level).
  Status SaveIndex(const std::string& path) const override;

  /// Loads a SaveIndex() artifact instead of running Preprocess(); queries
  /// afterwards match a freshly preprocessed engine with the same seed
  /// bit-for-bit (index construction never draws from the query RNG).
  Status LoadIndex(const std::string& path) override;

  /// Shares another engine's (immutable) index. Queries are stateful per
  /// engine (each owns a pooled query workspace), so concurrent querying
  /// uses one PRSim per thread, all sharing one index:
  ///   PRSim worker(graph, options_with_distinct_seed);
  ///   worker.ShareIndexFrom(leader);
  void ShareIndexFrom(const PRSim& other) {
    PRSIM_CHECK(other.index_ != nullptr) << "source engine has no index";
    index_ = other.index_;
  }

  /// Algorithm 4. Returns sparse non-zero estimates including (u, 1).
  /// Parallel over the sample grid (options.threads workers) unless called
  /// from a pool worker, where it degrades to serial chunk execution with
  /// bit-identical results. Pure function of (seed, u).
  ScoreList Query(NodeId u) override;

  /// Independently seeded engine sharing this engine's (immutable) index —
  /// the ShareIndexFrom fast path, packaged for the generic BatchQuery.
  /// The clone starts with an empty workspace of its own.
  std::unique_ptr<SingleSourceSimRank> CloneWithSeed(
      uint64_t seed) const override {
    PRSimOptions options = options_;
    options.seed = seed;
    auto clone = std::make_unique<PRSim>(graph_, options);
    clone->index_ = index_;
    return clone;
  }
  uint64_t seed() const override { return options_.seed; }
  void Reseed(uint64_t seed) override { options_.seed = seed; }

  size_t IndexBytes() const override;
  bool IsIndexBased() const override { return true; }

  const PRSimIndex& index() const { return *index_; }
  bool preprocessed() const { return index_ != nullptr; }

  /// Number of samples per round / rounds the current options resolve to.
  uint64_t samples_per_round() const { return dr_; }
  uint32_t rounds() const { return fr_; }

  /// Capacity snapshot of the pooled query workspace. The workspace-reuse
  /// contract: repeating a query must leave the snapshot unchanged (no map
  /// regrowth, no buffer reallocation). Zeros before the first Query().
  struct WorkspaceSnapshot {
    size_t chunk_count = 0;       ///< static sample-grid chunks
    size_t map_capacity = 0;      ///< summed FlatHashMap slot capacities
    size_t buffer_capacity = 0;   ///< summed vector capacities (elements)
    bool operator==(const WorkspaceSnapshot&) const = default;
  };
  WorkspaceSnapshot SnapshotWorkspace() const;

 private:
  struct QueryWorkspace;

  /// The PRSimIndexOptions this engine's options resolve to (the mapping
  /// Preprocess, SaveIndex, and LoadIndex all share).
  PRSimIndexOptions IndexOptions() const;

  const Graph& graph_;
  PRSimOptions options_;
  Walker walker_;
  std::shared_ptr<const PRSimIndex> index_;
  /// Pooled scratch for Query(), built lazily on first use (its shape
  /// depends only on fr_/dr_) and reused across queries.
  std::unique_ptr<QueryWorkspace> workspace_;

  double sqrt_c_ = 0;
  double inv_term_sq_ = 0;  // 1 / (1 - sqrt_c)^2
  double c1_ = 0;           // 12 / (1 - sqrt_c)^2
  uint64_t dr_ = 0;
  uint32_t fr_ = 0;
};

}  // namespace prsim

#endif  // PRSIM_CORE_PRSIM_H_
