// Dynamic-graph support (paper Section 3, "Dynamic Graphs").
//
// The paper observes that PRSim's index is just backward-search results for
// j0 target nodes, so k edge updates can be processed in O(k j0 + m/eps)
// total, i.e. O(j0 + m/(eps k)) amortized per update. This module realizes
// the same amortization with snapshot semantics:
//
//   * updates (insert/delete edge) are buffered in O(1);
//   * a flush rebuilds the CSR snapshot and the hub index in O(m + m/eps);
//   * flushes run automatically once the buffered-update count exceeds
//     `rebuild_fraction * m`, so the amortized per-update cost is
//     O((m + m/eps) / (rebuild_fraction * m)) = O(1/(eps * rebuild_fraction));
//   * queries answer against the most recent snapshot by default
//     (`QueryFreshness::kSnapshot`), or force a flush first
//     (`QueryFreshness::kFresh`).
//
// Incremental residue maintenance of individual backward searches (the [44]
// approach the paper cites) is noted as future work in DESIGN.md; the paper
// itself stops at the amortized bound ("a thorough investigation of this
// issue is beyond the scope of our paper").

#ifndef PRSIM_CORE_DYNAMIC_PRSIM_H_
#define PRSIM_CORE_DYNAMIC_PRSIM_H_

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "core/prsim.h"
#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

struct DynamicPRSimOptions {
  PRSimOptions prsim;
  /// Auto-flush once pending updates exceed this fraction of current m
  /// (minimum 1 update).
  double rebuild_fraction = 0.02;
};

enum class QueryFreshness {
  kSnapshot,  ///< answer on the last flushed snapshot (no flush)
  kFresh,     ///< flush pending updates first
};

class DynamicPRSim {
 public:
  /// Takes an initial edge list; nodes are fixed at [0, n) for the lifetime
  /// of the structure (SimRank is defined over a fixed node set; the paper's
  /// dynamic setting likewise updates edges only).
  DynamicPRSim(NodeId n, std::vector<Edge> edges,
               const DynamicPRSimOptions& options);

  /// Buffers an edge insertion. Duplicate edges are ignored at flush time.
  Status InsertEdge(NodeId src, NodeId dst);

  /// Buffers an edge deletion; deleting a missing edge is a no-op.
  Status DeleteEdge(NodeId src, NodeId dst);

  /// Applies all buffered updates: rebuilds the CSR snapshot and the index.
  Status Flush();

  /// Single-source query at the requested freshness.
  ScoreList Query(NodeId u, QueryFreshness freshness = QueryFreshness::kSnapshot);

  NodeId n() const { return n_; }
  uint64_t snapshot_edges() const { return edges_.size(); }
  uint64_t pending_updates() const { return pending_.size(); }
  uint64_t flush_count() const { return flush_count_; }
  const Graph& snapshot() const { return *graph_; }
  size_t IndexBytes() const { return prsim_->IndexBytes(); }

 private:
  struct Update {
    Edge edge;
    bool insert;  // false = delete
  };

  void MaybeAutoFlush();

  NodeId n_;
  DynamicPRSimOptions options_;
  std::set<Edge> edges_;  // canonical current edge set
  std::vector<Update> pending_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<PRSim> prsim_;
  uint64_t flush_count_ = 0;
};

}  // namespace prsim

#endif  // PRSIM_CORE_DYNAMIC_PRSIM_H_
