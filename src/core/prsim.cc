#include "core/prsim.h"

#include <algorithm>
#include <cmath>

#include "core/index_io.h"
#include "util/logging.h"

namespace prsim {

PRSim::PRSim(const Graph& graph, const PRSimOptions& options)
    : graph_(graph),
      options_(options),
      walker_(graph, options.c),
      backward_(graph, options.c),
      rng_(options.seed) {
  PRSIM_CHECK(options_.eps > 0) << "eps must be positive";
  PRSIM_CHECK(options_.delta > 0 && options_.delta < 1);
  sqrt_c_ = std::sqrt(options_.c);
  const double term = 1.0 - sqrt_c_;
  inv_term_sq_ = 1.0 / (term * term);
  c1_ = 12.0 * inv_term_sq_;

  const double n = std::max<double>(graph_.n(), 2);
  if (options_.paper_constants) {
    dr_ = static_cast<uint64_t>(std::ceil(c1_ / (options_.eps * options_.eps)));
    fr_ = static_cast<uint32_t>(std::ceil(3.0 * std::log(n / options_.delta)));
  } else {
    dr_ = static_cast<uint64_t>(
        std::ceil(options_.alpha / (options_.eps * options_.eps)));
    fr_ = options_.rounds;
  }
  dr_ = std::max<uint64_t>(dr_, 1);
  fr_ |= 1;  // odd round count keeps the median unambiguous
}

PRSimIndexOptions PRSim::IndexOptions() const {
  PRSimIndexOptions index_options;
  index_options.c = options_.c;
  index_options.eps = options_.eps;
  index_options.j0 = options_.j0;
  index_options.max_level = options_.max_level;
  index_options.threads = options_.threads;
  return index_options;
}

Status PRSim::Preprocess() {
  PRSIM_ASSIGN_OR_RETURN(PRSimIndex built,
                         PRSimIndex::Build(graph_, IndexOptions()));
  index_ = std::make_shared<const PRSimIndex>(std::move(built));
  return Status::OK();
}

Status PRSim::SaveIndex(const std::string& path) const {
  if (index_ == nullptr) {
    return Status::InvalidArgument(
        "PRSim: no index built; call Preprocess() before SaveIndex()");
  }
  return PRSimIndexIO::Save(*index_, graph_, IndexOptions(), path);
}

Status PRSim::LoadIndex(const std::string& path) {
  PRSIM_ASSIGN_OR_RETURN(PRSimIndex loaded,
                         PRSimIndexIO::Load(graph_, IndexOptions(), path));
  index_ = std::make_shared<const PRSimIndex>(std::move(loaded));
  return Status::OK();
}

ScoreList PRSim::Query(NodeId u) {
  PRSIM_CHECK(index_ != nullptr) << "call Preprocess() before Query()";
  PRSIM_CHECK(u < graph_.n()) << "query node out of range";
  cost_ = QueryCost{};

  const uint64_t nr = dr_ * fr_;
  const double inv_nr = 1.0 / static_cast<double>(nr);
  const double tail_scale =
      inv_term_sq_ / static_cast<double>(dr_);  // 1/((1-sqrt_c)^2 dr)

  // eta_pi[(w, l)] accumulates the estimator of eta(w) * pi_l(u, w).
  FlatHashMap<double> eta_pi(1024);

  // Per-round tail estimates s_hat_B^i(u, v), stored as fr_ parallel columns
  // per touched node so the median pass is cache-friendly.
  FlatHashMap<uint32_t> tail_slot(1024);
  std::vector<double> tail_columns;  // slot-major, fr_ doubles per slot
  std::vector<NodeId> tail_nodes;

  for (uint32_t round = 0; round < fr_; ++round) {
    for (uint64_t j = 0; j < dr_; ++j) {
      ++cost_.walks;
      const WalkOutcome walk = walker_.SampleWalk(u, rng_);
      if (!walk.terminated) continue;
      const NodeId w = walk.terminal;
      const uint32_t level = walk.steps;

      ++cost_.meeting_tests;
      if (walker_.SamplePairMeets(w, rng_)) continue;
      // Non-meeting sample: contributes to eta(w) * pi_l(u, w), and for
      // non-hub w also to the backward-walk tail estimate (the proof of
      // Lemma 3.7 samples (w, l) with probability pi_l(u, w) * eta(w)).
      eta_pi[PackNodeLevel(w, level)] += inv_nr;

      if (index_->IsHub(w)) continue;
      ++cost_.backward_walks;
      const BackwardWalkResult bw =
          backward_.RunVarianceBounded(w, level, rng_);
      cost_.backward_increments += bw.increments;
      for (const auto& [v, value] : bw.estimates) {
        uint32_t& slot = tail_slot[v];
        if (slot == 0) {  // 0 is the sentinel for "new"; slots start at 1
          tail_nodes.push_back(v);
          tail_columns.resize(tail_columns.size() + fr_, 0.0);
          slot = static_cast<uint32_t>(tail_nodes.size());
        }
        tail_columns[static_cast<size_t>(slot - 1) * fr_ + round] +=
            value * tail_scale;
      }
    }
  }

  // Median over rounds for the tail part (Lines 14-15).
  FlatHashMap<double> scores(tail_nodes.size() * 2 + 64);
  std::vector<double> buffer(fr_);
  for (size_t slot = 0; slot < tail_nodes.size(); ++slot) {
    const double* column = &tail_columns[slot * fr_];
    std::copy(column, column + fr_, buffer.begin());
    auto mid = buffer.begin() + fr_ / 2;
    std::nth_element(buffer.begin(), mid, buffer.end());
    if (*mid > 0) scores[tail_nodes[slot]] += *mid;
  }

  // Index part (Lines 16-18): resolve heavy (w, l) pairs against the hub
  // reserve lists.
  const double keep_threshold = options_.eps / c1_;
  eta_pi.ForEach([&](uint64_t key, const double& mass) {
    if (mass <= keep_threshold) return;
    const NodeId w = UnpackNode(key);
    const uint32_t level = UnpackLevel(key);
    const auto* reserves = index_->Find(w, level);
    if (reserves == nullptr) return;
    cost_.index_tuples_read += reserves->size();
    const double scale = mass * inv_term_sq_;
    for (const auto& [v, psi] : *reserves) {
      scores[v] += scale * static_cast<double>(psi);
    }
  });

  ScoreList result;
  result.reserve(scores.size() + 1);
  bool saw_source = false;
  scores.ForEach([&](uint64_t key, const double& score) {
    const auto v = static_cast<NodeId>(key);
    if (v == u) {
      saw_source = true;
      return;  // replaced by the exact s(u, u) = 1 below
    }
    if (score > 0) result.emplace_back(v, score);
  });
  (void)saw_source;
  result.emplace_back(u, 1.0);
  return result;
}

size_t PRSim::IndexBytes() const {
  return index_ != nullptr ? index_->IndexBytes() : 0;
}

}  // namespace prsim
