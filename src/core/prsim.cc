#include "core/prsim.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/index_io.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/sample_grid.h"

namespace prsim {

/// Pooled per-engine scratch for the chunked query path. Everything here is
/// reused across queries: FlatHashMap::clear() and vector::clear() retain
/// capacity, so steady-state queries allocate nothing per walk (and, once
/// the touched-node set stabilizes, nothing at all).
///
/// Every accumulator map is paired with a vector of its keys in insertion
/// order, and every pass that feeds ordered work — RNG draws, float sums
/// into a shared cell, result emission — iterates the vector, never the
/// map. Map slot layout depends on the capacity retained from earlier
/// queries; insertion order is a pure function of the query, which is what
/// keeps Query(u) bit-identical regardless of what the engine ran before.
struct PRSim::QueryWorkspace {
  /// One slot per static sample chunk; slot i is written only by the worker
  /// running chunk i, then read by the merge pass after the join.
  struct Chunk {
    Chunk(const Graph& graph, double c) : backward(graph, c) {}
    /// eta(w) * pi_l(u, w) sample counts keyed by PackNodeLevel(w, l).
    /// Counts (not 1/nr masses): integer merges are exact in any order.
    FlatHashMap2<uint64_t> eta_pi{256};
    std::vector<uint64_t> eta_keys;
    /// This chunk's partial tail-sum per touched node. A chunk never spans
    /// a round, so these are partials of exactly one round's column.
    FlatHashMap2<double> tail{256};
    std::vector<NodeId> tail_keys;
    BackwardWalker backward;
    Rng rng{0};
    QueryCost cost;

    void Reset() {
      eta_pi.clear();
      eta_keys.clear();
      tail.clear();
      tail_keys.clear();
      cost = QueryCost{};
    }
  };

  QueryWorkspace(const Graph& graph, double c, uint32_t rounds,
                 uint64_t samples_per_round)
      : tasks(BuildSampleChunks(rounds, samples_per_round)) {
    chunks.reserve(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) chunks.emplace_back(graph, c);
  }

  std::vector<SampleChunk> tasks;
  std::vector<Chunk> chunks;

  // Merge-pass accumulators (main thread only).
  FlatHashMap2<uint64_t> eta_pi{1024};  ///< merged sample counts
  std::vector<uint64_t> eta_keys;
  RoundColumns tail;  ///< per-(node, round) tail sums + median reduce
  FlatHashMap2<double> scores{1024};
  std::vector<NodeId> score_nodes;
};

PRSim::PRSim(const Graph& graph, const PRSimOptions& options)
    : graph_(graph), options_(options), walker_(graph, options.c) {
  PRSIM_CHECK(options_.eps > 0) << "eps must be positive";
  PRSIM_CHECK(options_.delta > 0 && options_.delta < 1);
  sqrt_c_ = std::sqrt(options_.c);
  const double term = 1.0 - sqrt_c_;
  inv_term_sq_ = 1.0 / (term * term);
  c1_ = 12.0 * inv_term_sq_;

  const double n = std::max<double>(graph_.n(), 2);
  if (options_.paper_constants) {
    dr_ = static_cast<uint64_t>(std::ceil(c1_ / (options_.eps * options_.eps)));
    fr_ = static_cast<uint32_t>(std::ceil(3.0 * std::log(n / options_.delta)));
  } else {
    dr_ = static_cast<uint64_t>(
        std::ceil(options_.alpha / (options_.eps * options_.eps)));
    fr_ = options_.rounds;
  }
  dr_ = std::max<uint64_t>(dr_, 1);
  fr_ |= 1;  // odd round count keeps the median unambiguous
}

PRSim::~PRSim() = default;

PRSimIndexOptions PRSim::IndexOptions() const {
  PRSimIndexOptions index_options;
  index_options.c = options_.c;
  index_options.eps = options_.eps;
  index_options.j0 = options_.j0;
  index_options.max_level = options_.max_level;
  index_options.threads = options_.threads;
  return index_options;
}

Status PRSim::Preprocess() {
  PRSIM_ASSIGN_OR_RETURN(PRSimIndex built,
                         PRSimIndex::Build(graph_, IndexOptions()));
  index_ = std::make_shared<const PRSimIndex>(std::move(built));
  return Status::OK();
}

Status PRSim::SaveIndex(const std::string& path) const {
  if (index_ == nullptr) {
    return Status::InvalidArgument(
        "PRSim: no index built; call Preprocess() before SaveIndex()");
  }
  return PRSimIndexIO::Save(*index_, graph_, IndexOptions(), path);
}

Status PRSim::LoadIndex(const std::string& path) {
  PRSIM_ASSIGN_OR_RETURN(PRSimIndex loaded,
                         PRSimIndexIO::Load(graph_, IndexOptions(), path));
  index_ = std::make_shared<const PRSimIndex>(std::move(loaded));
  return Status::OK();
}

ScoreList PRSim::Query(NodeId u) {
  PRSIM_CHECK(index_ != nullptr) << "call Preprocess() before Query()";
  PRSIM_CHECK(u < graph_.n()) << "query node out of range";
  cost_ = QueryCost{};

  const uint64_t nr = dr_ * fr_;
  const double inv_nr = 1.0 / static_cast<double>(nr);
  const double tail_scale =
      inv_term_sq_ / static_cast<double>(dr_);  // 1/((1-sqrt_c)^2 dr)

  if (workspace_ == nullptr) {
    workspace_ =
        std::make_unique<QueryWorkspace>(graph_, options_.c, fr_, dr_);
  }
  QueryWorkspace& ws = *workspace_;

  // Phase 1: run the static chunks of the (round, j) grid. Each chunk draws
  // from its own positional RNG substream and accumulates into its own slot,
  // so any number of workers — including the serial fallback inside pool
  // workers that ParallelFor applies — produces identical chunk partials.
  const auto run_chunk = [&](size_t i) {
    const SampleChunk& task = ws.tasks[i];
    QueryWorkspace::Chunk& chunk = ws.chunks[i];
    chunk.Reset();
    chunk.rng.Reseed(SampleChunkSeed(options_.seed, u, task, dr_));
    for (uint64_t j = task.j_lo; j < task.j_hi; ++j) {
      ++chunk.cost.walks;
      const WalkOutcome walk = walker_.SampleWalk(u, chunk.rng);
      if (!walk.terminated) continue;
      const NodeId w = walk.terminal;
      const uint32_t level = walk.steps;

      ++chunk.cost.meeting_tests;
      if (walker_.SamplePairMeets(w, chunk.rng)) continue;
      // Non-meeting sample: contributes to eta(w) * pi_l(u, w), and for
      // non-hub w also to the backward-walk tail estimate (the proof of
      // Lemma 3.7 samples (w, l) with probability pi_l(u, w) * eta(w)).
      ++OrderedSlot(chunk.eta_pi, chunk.eta_keys, PackNodeLevel(w, level));

      if (index_->IsHub(w)) continue;
      ++chunk.cost.backward_walks;
      chunk.cost.backward_increments += chunk.backward.RunVarianceBounded(
          w, level, chunk.rng, [&](NodeId v, double value) {
            OrderedSlot(chunk.tail, chunk.tail_keys, v) += value * tail_scale;
          });
    }
  };
  ParallelFor(0, ws.tasks.size(), run_chunk, options_.threads);

  // Phase 2: merge chunk partials in grid order, iterating each chunk's
  // insertion-order key lists. Tail partials of one (node, round) column
  // arrive in ascending block order — the fixed-order float sums that make
  // the result independent of the worker count — and the integer eta-pi
  // counts and cost counters merge exactly regardless.
  ws.eta_pi.clear();
  ws.eta_keys.clear();
  ws.tail.Reset(fr_);
  for (size_t i = 0; i < ws.tasks.size(); ++i) {
    const uint32_t round = ws.tasks[i].round;
    QueryWorkspace::Chunk& chunk = ws.chunks[i];
    cost_.Accumulate(chunk.cost);
    for (const uint64_t key : chunk.eta_keys) {
      OrderedSlot(ws.eta_pi, ws.eta_keys, key) += *chunk.eta_pi.Find(key);
    }
    for (const NodeId v : chunk.tail_keys) {
      ws.tail.Add(v, round, *chunk.tail.Find(v));
    }
  }

  // First-touch bookkeeping for the score accumulator (emission follows
  // score_nodes, so result order is history-independent too).
  ws.scores.clear();
  ws.score_nodes.clear();
  const auto score_slot = [&ws](NodeId v) -> double& {
    return OrderedSlot(ws.scores, ws.score_nodes, v);
  };

  // Median over rounds for the tail part (Lines 14-15).
  ws.tail.ForEachMedian([&](uint64_t key, double median) {
    if (median > 0) score_slot(static_cast<NodeId>(key)) += median;
  });

  // Index part (Lines 16-18): resolve heavy (w, l) pairs against the hub
  // reserve lists. Reserve lists of distinct (w, l) can hit the same node,
  // so this float-sum order must follow eta_keys, not the map layout.
  const double keep_threshold = options_.eps / c1_;
  for (const uint64_t key : ws.eta_keys) {
    const double mass = static_cast<double>(*ws.eta_pi.Find(key)) * inv_nr;
    if (mass <= keep_threshold) continue;
    const NodeId w = UnpackNode(key);
    const uint32_t level = UnpackLevel(key);
    const auto* reserves = index_->Find(w, level);
    if (reserves == nullptr) continue;
    cost_.index_tuples_read += reserves->size();
    const double scale = mass * inv_term_sq_;
    for (const auto& [v, psi] : *reserves) {
      score_slot(v) += scale * static_cast<double>(psi);
    }
  }

  ScoreList result;
  result.reserve(ws.score_nodes.size() + 1);
  for (const NodeId v : ws.score_nodes) {
    // Any mass accumulated on the source itself is discarded: s(u, u) is
    // exactly 1 and is appended below.
    if (v == u) continue;
    const double score = *ws.scores.Find(v);
    if (score > 0) result.emplace_back(v, score);
  }
  result.emplace_back(u, 1.0);
  return result;
}

PRSim::WorkspaceSnapshot PRSim::SnapshotWorkspace() const {
  WorkspaceSnapshot snapshot;
  if (workspace_ == nullptr) return snapshot;
  const QueryWorkspace& ws = *workspace_;
  snapshot.chunk_count = ws.tasks.size();
  for (const QueryWorkspace::Chunk& chunk : ws.chunks) {
    snapshot.map_capacity += chunk.eta_pi.capacity() + chunk.tail.capacity() +
                             chunk.backward.ScratchCapacity();
    snapshot.buffer_capacity +=
        chunk.eta_keys.capacity() + chunk.tail_keys.capacity();
  }
  snapshot.map_capacity +=
      ws.eta_pi.capacity() + ws.tail.MapCapacity() + ws.scores.capacity();
  snapshot.buffer_capacity += ws.tail.BufferCapacity() +
                              ws.eta_keys.capacity() +
                              ws.score_nodes.capacity();
  return snapshot;
}

size_t PRSim::IndexBytes() const {
  return index_ != nullptr ? index_->IndexBytes() : 0;
}

}  // namespace prsim
