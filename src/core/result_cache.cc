#include "core/result_cache.h"

#include <utility>

#include "util/logging.h"

namespace prsim {
namespace {

/// Budget accounting for one cached vector: the control block + vector
/// header + the full entry capacity actually held (moved-from vectors keep
/// their capacity, so charge what the allocator charged us).
size_t EntryCost(const ScoreList& scores) {
  return sizeof(ScoreList) + scores.capacity() * sizeof(ScoreEntry) + 64;
}

}  // namespace

ResultCache::ResultCache(size_t byte_budget)
    : budget_(byte_budget), lru_(byte_budget) {}

uint32_t ResultCache::RegisterEngine(const std::string& algo,
                                     uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t id = 0; id < registered_.size(); ++id) {
    if (registered_[id].first != algo) continue;
    if (registered_[id].second != fingerprint) {
      // The engine behind this algo changed (graph, options, or seed):
      // every cached vector it produced is stale. Purge wholesale. Keys
      // are immutable, so entries published by still-in-flight leaders of
      // the OLD fingerprint can never match a new-fingerprint lookup —
      // they age out as ordinary LRU garbage.
      const size_t purged =
          lru_.EraseIf([id](const ResultCacheKey& key) {
            return key.algo_id == id;
          });
      invalidated_ += purged;
      registered_[id].second = fingerprint;
    }
    return id;
  }
  registered_.emplace_back(algo, fingerprint);
  return static_cast<uint32_t>(registered_.size() - 1);
}

ResultCache::Ticket ResultCache::Lookup(const ResultCacheKey& key, uint32_t k,
                                        WallTimer timer) {
  Ticket ticket;
  std::lock_guard<std::mutex> lock(mu_);
  if (std::shared_ptr<const ScoreList>* cached = lru_.Get(key)) {
    ++hits_;
    ticket.role = Role::kHit;
    ticket.hit_scores = *cached;
    return ticket;
  }
  for (auto& flight : flights_) {
    if (flight->key == key) {
      ++coalesced_;
      ticket.role = Role::kWaiter;
      Waiter waiter;
      waiter.k = k;
      waiter.timer = timer;
      ticket.waiter_future = waiter.promise.get_future();
      flight->waiters.push_back(std::move(waiter));
      return ticket;
    }
  }
  ++misses_;
  auto flight = std::make_unique<Flight>();
  flight->key = key;
  flights_.push_back(std::move(flight));
  ticket.role = Role::kLeader;
  return ticket;
}

ResultCache::PublishResult ResultCache::Publish(
    const ResultCacheKey& key, const Status& status,
    const std::shared_ptr<const ScoreList>& scores) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < flights_.size(); ++i) {
      if (flights_[i]->key == key) {
        waiters = std::move(flights_[i]->waiters);
        flights_[i] = std::move(flights_.back());
        flights_.pop_back();
        break;
      }
    }
    if (status.ok()) {
      PRSIM_CHECK(scores != nullptr)
          << "ResultCache::Publish: OK status requires scores";
      lru_.Put(key, scores, EntryCost(*scores));
    }
  }
  // Fulfill promises outside the lock: set_value runs waiter-side
  // continuations on this thread in principle, and must never do so while
  // holding mu_.
  PublishResult published;
  for (Waiter& waiter : waiters) {
    if (status.ok()) {
      const double latency = waiter.timer.Seconds();
      waiter.promise.set_value(
          CachedResult(scores, waiter.k, key.source, latency));
      ++published.ok_waiters;
      published.waiter_latencies.push_back(latency);
    } else {
      waiter.promise.set_value({status, {}, waiter.timer.Seconds(), {}});
      ++published.failed_waiters;
    }
  }
  return published;
}

QueryResult ResultCache::CachedResult(
    const std::shared_ptr<const ScoreList>& scores, uint32_t k, NodeId source,
    double latency_seconds) {
  QueryResult result;
  result.scores = k > 0 ? TopK(*scores, k, source) : *scores;
  result.latency_seconds = latency_seconds;
  return result;
}

ResultCacheStats ResultCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.coalesced = coalesced_;
  stats.evictions = lru_.evictions();
  stats.invalidated = invalidated_;
  stats.bytes = lru_.bytes();
  stats.entries = lru_.size();
  return stats;
}

}  // namespace prsim
