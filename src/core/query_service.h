// Async query service: the long-lived serving layer above BatchQuery.
//
// A QueryService owns one leader engine per registered algorithm (cold-
// started from a SaveIndex() artifact via EngineRegistry::CreateFromIndex,
// or handed a preprocessed engine) plus a dedicated ThreadPool. Clients call
// Submit(QueryRequest) and get a future; requests flow through a bounded
// queue with a configurable backpressure policy, are answered on pool
// workers against per-worker engine clones (queries are stateful — each
// clone carries its own pooled query workspace, warmed by its first query —
// so one clone per worker, all sharing the leader's immutable index), and
// every completion records its wall time into streaming latency percentiles
// surfaced through ServiceStats / QueryCost. Engines with intra-query
// parallelism (PRSim's chunked sample grid) degrade to serial chunk
// execution inside service workers (the nested-parallelism rule), with
// bit-identical scores.
//
// Determinism: request `seq` (the submission order) plays the role of the
// batch position — each query is reseeded with the positional BatchQuery
// seed, so a single-threaded service replays a BatchQuery bit for bit.
// `fresh_seed` requests sit outside that stream: they are answered under
// the leader seed, never consume a positional seq (so a positional replay
// interleaved with fresh traffic stays bit-identical regardless of cache
// state), and are the only requests eligible for the hot-source result
// cache (core/result_cache.h) enabled by QueryServiceOptions::cache_bytes.

#ifndef PRSIM_CORE_QUERY_SERVICE_H_
#define PRSIM_CORE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine_config.h"
#include "core/single_source.h"
#include "graph/graph.h"
#include "util/percentiles.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace prsim {

class ResultCache;

struct QueryRequest {
  /// Sentinel for `seed_position`: use the service-local submission order.
  static constexpr uint64_t kServiceOrder = ~uint64_t{0};
  /// Sentinel for `deadline_ms`: the request has no deadline.
  static constexpr uint64_t kNoDeadline = ~uint64_t{0};

  /// Registered algorithm key; empty selects the first registered engine.
  std::string algo;
  NodeId source = 0;
  /// 0 = full single-source result; otherwise top-k (source excluded).
  uint32_t k = 0;
  /// Positional seed control. By default every accepted request is answered
  /// under BatchQuerySeed(leader seed, service submission seq). A caller
  /// that multiplexes one logical request stream over several services —
  /// the shard router — passes the global position here so the sharded
  /// stream replays the unsharded one bit for bit at any shard count.
  uint64_t seed_position = kServiceOrder;
  /// When true the query is answered as a freshly constructed engine with
  /// the leader's seed would answer it (one-shot `query` CLI semantics),
  /// ignoring seed_position.
  bool fresh_seed = false;
  /// Relative deadline budget in milliseconds, measured from Submit().
  /// kNoDeadline (default) = none; 0 = already expired (resolved with
  /// kDeadlineExceeded at admission, consuming no positional seq). Expired
  /// and shed requests never shift the positional seeds of the surviving
  /// stream, so answers stay bit-identical whenever no deadline fires.
  uint64_t deadline_ms = kNoDeadline;
  /// Absolute steady-clock deadline; takes precedence over deadline_ms
  /// when set (time_point::max() = unset). The shape tests use to hand in
  /// an already-expired deadline without sleeping.
  std::chrono::steady_clock::time_point deadline_at =
      std::chrono::steady_clock::time_point::max();
};

struct QueryResult {
  /// kInvalidArgument for unknown algo / out-of-range source,
  /// kResourceExhausted when rejected by backpressure or shed in degraded
  /// mode, kDeadlineExceeded when the deadline expired (at admission,
  /// waiting for queue capacity, in the queue, or via predictive shedding),
  /// kInternal when the engine threw; scores are only meaningful when ok().
  Status status;
  ScoreList scores;
  /// Wall time from Submit() to completion (queue wait + execution); 0 for
  /// requests rejected before entering the queue.
  double latency_seconds = 0;
  /// The answering engine's per-query cost counters.
  QueryCost cost;
};

struct QueryServiceOptions {
  /// Worker threads owned by the service (0 = DefaultThreadCount()).
  size_t threads = 0;
  /// Maximum in-flight (queued + executing) requests before backpressure.
  size_t max_queue = 1024;
  enum class Backpressure {
    kBlock,   ///< Submit() blocks until a slot frees up
    kReject,  ///< Submit() resolves immediately with kResourceExhausted
  };
  Backpressure backpressure = Backpressure::kBlock;
  /// Retained latency samples for the percentile reservoir.
  size_t latency_reservoir = 4096;
  /// Byte budget for the hot-source result cache (0 = cache disabled, the
  /// default). Only `fresh_seed` requests are cached — see
  /// core/result_cache.h for the determinism argument. Cache hits resolve
  /// before the bounded queue and cannot be backpressured.
  size_t cache_bytes = 0;
  /// Degraded overload mode: a request that finds the queue full is shed
  /// immediately (kResourceExhausted, counted in ServiceStats::shed)
  /// instead of blocking or queueing behind `backpressure`. Cache hits
  /// resolve before the queue and keep answering — the overloaded-replica
  /// posture of "serve what's cheap, shed what's doomed".
  bool degraded = false;
};

/// Snapshot of the service's lifetime counters and latency percentiles.
struct ServiceStats {
  uint64_t submitted = 0;  ///< accepted (queued, cache hits, coalesced)
  uint64_t completed = 0;  ///< answered successfully
  uint64_t failed = 0;     ///< invalid requests or engine failures
  uint64_t rejected = 0;   ///< refused by the kReject backpressure policy
  /// Requests resolved with kDeadlineExceeded: expired at admission, timed
  /// out waiting for queue capacity, or swept at worker pickup after
  /// expiring in the queue. Disjoint from `shed`. Shard aggregations sum.
  uint64_t deadline_exceeded = 0;
  /// Requests refused at admission by overload control: predictive
  /// shedding (queue wait forecasts a deadline miss) and degraded-mode
  /// shedding of a full queue. Disjoint from `rejected` and
  /// `deadline_exceeded`. Shard aggregations sum.
  uint64_t shed = 0;
  /// Peak in-flight (queued + executing) requests — how close the bounded
  /// queue came to its cap. Shard aggregations take the per-shard max.
  uint64_t queue_high_water = 0;
  double p50_seconds = 0;
  double p95_seconds = 0;
  double p99_seconds = 0;
  /// Result-cache counters (all zero when cache_bytes = 0). hits, misses
  /// and coalesced partition the fresh_seed lookup stream; bytes is a
  /// point-in-time gauge. Shard aggregations sum all of them — ownership
  /// routing means no key ever lives in two shard caches.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_coalesced = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_bytes = 0;
  /// Summed QueryCost counters over completed queries, with the latency
  /// percentiles mirrored into its latency_p* fields. Cache hits and
  /// coalesced waiters contribute latency but no cost — no engine ran.
  QueryCost aggregate_cost;
};

/// Renders the stats as one self-describing JSON line (no trailing
/// newline): {"event":"serve_stats","transport":"...",...}. Every serve
/// transport emits this on stderr at exit so load runs explain themselves.
std::string ServiceStatsJson(const ServiceStats& stats,
                             const std::string& transport);

class QueryService {
 public:
  explicit QueryService(const QueryServiceOptions& options = {});

  /// Drains every accepted request, then joins the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers `leader` under `algo`. The leader must already answer
  /// queries (preprocessed or index-loaded). Registration happens before
  /// the first Submit(); duplicate keys are rejected.
  Status AddEngine(const std::string& algo,
                   std::unique_ptr<SingleSourceSimRank> leader);

  /// Creates the engine through the registry and runs Preprocess().
  Status AddEngine(const std::string& algo, const Graph& graph,
                   const EngineConfig& config);

  /// Cold start: creates the engine through the registry and installs the
  /// index from a SaveIndex() artifact (EngineRegistry::CreateFromIndex).
  Status AddEngineFromIndex(const std::string& algo, const Graph& graph,
                            const EngineConfig& config,
                            const std::string& index_path);

  /// Registered algorithm keys, in registration order.
  std::vector<std::string> Algos() const;

  /// Enqueues one query. The future resolves with the scores (full or
  /// top-k) or with the error status; engine exceptions surface as
  /// kInternal results, never as broken futures or dead workers. Safe to
  /// call from any thread except the service's own workers (debug-asserted
  /// via the pool's worker-thread registry; see OwnsCurrentThread). With
  /// the result cache enabled, fresh_seed hits resolve immediately —
  /// before the bounded queue — and concurrent identical misses coalesce
  /// into one engine query.
  std::future<QueryResult> Submit(QueryRequest request);

  /// True iff the calling thread is one of this service's own workers.
  /// Submitting from such a thread can deadlock the bounded queue; the
  /// shard router debug-asserts against it across all its shards.
  bool OwnsCurrentThread() const { return pool_.OwnsCurrentThread(); }

  /// Current lifetime counters and latency percentiles.
  ServiceStats Stats() const;

  /// Snapshot of the retained latency reservoir (unsorted). Aggregators
  /// merging several services (the shard router) pool raw samples so the
  /// merged percentiles are computed over one combined distribution
  /// instead of averaging per-service quantiles.
  std::vector<double> LatencySamples() const;

  /// Requests accepted but not yet completed (queued + executing).
  size_t pending() const;

  size_t threads() const { return pool_.size(); }

 private:
  struct Engine {
    std::string algo;
    std::unique_ptr<SingleSourceSimRank> leader;
    /// One lazily minted clone per pool worker; slot w is touched only by
    /// worker w, so no lock is needed after registration.
    std::vector<std::unique_ptr<SingleSourceSimRank>> clones;
    /// Cache identity: FNV over (algo, graph shape/checksum, canonical
    /// config, leader seed) for the graph-constructing registrations, or a
    /// weaker (algo, n, seed) digest for a caller-supplied leader.
    uint64_t fingerprint = 0;
    uint64_t cache_seed = 0;
    uint32_t cache_algo_id = 0;
  };

  Status AddEngineImpl(const std::string& algo,
                       std::unique_ptr<SingleSourceSimRank> leader,
                       uint64_t fingerprint);
  Engine* FindEngine(const std::string& algo);
  QueryResult RunQuery(Engine& engine, const QueryRequest& request,
                       uint64_t seq, WallTimer submit_timer,
                       bool publish_to_cache,
                       std::chrono::steady_clock::time_point deadline);
  static std::future<QueryResult> ReadyResult(QueryResult result);

  QueryServiceOptions options_;
  /// Stable Engine storage: workers hold Engine* across AddEngine calls.
  std::vector<std::unique_ptr<Engine>> engines_;

  /// The result cache (null when cache_bytes = 0). Owns its own mutex;
  /// never acquired while mu_ is held (and vice versa), so there is no
  /// lock-order edge between the two.
  std::unique_ptr<ResultCache> cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_has_room_;
  uint64_t submitted_ = 0;
  /// Positional-seed allocator for queue-entering non-fresh requests.
  /// Distinct from submitted_ (which also counts cache hits and coalesced
  /// waiters) so positional seeds are a pure function of the non-fresh
  /// request stream, independent of cache state.
  uint64_t next_seq_ = 0;
  uint64_t completed_ = 0;
  uint64_t failed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t deadline_exceeded_ = 0;
  uint64_t shed_ = 0;
  /// Exponentially weighted moving average of engine execution time, the
  /// input to predictive shedding: a deadline that the expected queue wait
  /// alone would blow is refused at admission instead of wasting a slot.
  double ewma_exec_seconds_ = 0;
  size_t inflight_ = 0;
  size_t inflight_high_water_ = 0;
  QueryCost aggregate_cost_;
  StreamingPercentiles latencies_;

  /// Declared last: destroyed first, so the pool drains (tasks touch the
  /// members above) before anything else dies.
  ThreadPool pool_;
};

}  // namespace prsim

#endif  // PRSIM_CORE_QUERY_SERVICE_H_
