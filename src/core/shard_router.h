// Shard router: one-process serving frontend over a shard bundle.
//
// Open() reconstructs the serving topology a `shard-build` bundle
// describes: per shard, the graph and index artifacts are loaded (aliased
// artifacts are opened once and shared — with mmap, shards share page-cache
// pages too) and wrapped in a dedicated QueryService. Queries route by
// source-node ownership under the manifest's partition spec, so the same
// request stream always lands on the same shards in any process serving
// the bundle.
//
// Determinism contract (the point of the whole layer): a sharded router
// answers every request stream bit-identically to an unsharded service.
// Two mechanisms deliver it:
//   - ownership routing + global positions: the router stamps each
//     submission with a process-global stream position and passes it as
//     QueryRequest::seed_position, so the positional reseed matches what a
//     single service would have used at any shard count;
//   - fresh-seed one-shots: QueryFresh() answers exactly like a freshly
//     loaded engine (the `query` CLI path), again shard-count-invariant.
//
// BroadcastTopK() exercises the distributed reduction instead: every shard
// answers the full single-source query, keeps only the nodes it owns,
// reduces to a local top-k, and the router merges with the deterministic
// (score desc, node id asc) order — bit-identical to single-engine
// QueryTopK by construction.

#ifndef PRSIM_CORE_SHARD_ROUTER_H_
#define PRSIM_CORE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/query_service.h"
#include "core/shard_manifest.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "util/status.h"

namespace prsim {

struct ShardRouterOptions {
  /// Worker threads per shard service (0 = DefaultThreadCount()).
  size_t threads_per_shard = 0;
  /// Per-shard bounded queue depth (QueryServiceOptions::max_queue).
  size_t max_queue = 1024;
  /// Per-shard backpressure policy under a full queue.
  QueryServiceOptions::Backpressure backpressure =
      QueryServiceOptions::Backpressure::kBlock;
  /// Forwarded to the artifact readers; read()-fallback when false.
  bool allow_mmap = true;
  /// Per-shard result-cache byte budget (QueryServiceOptions::cache_bytes;
  /// 0 = off). Ownership routing means no key ever lives in two shard
  /// caches, so per-shard budgets compose: total cache memory is
  /// shards * cache_bytes and the aggregated Stats() hit counters read
  /// like one cache's.
  size_t cache_bytes = 0;
  /// Per-shard degraded overload mode (QueryServiceOptions::degraded):
  /// full queues shed instead of blocking, cache hits keep answering.
  bool degraded = false;
};

/// Deterministic cross-shard merge of per-shard top-k lists: concatenates
/// and re-ranks by (score desc, node id asc), keeping the best k. Exposed
/// for tests; the inputs must already exclude the source node.
ScoreList MergeTopK(const std::vector<ScoreList>& per_shard, size_t k);

class ShardRouter {
 public:
  /// Loads the manifest, validates its graph fingerprint against the
  /// artifacts on disk, and spins up one QueryService per shard. Manifest
  /// and artifact corruption surface as kInvalidArgument, missing files as
  /// kIOError, unknown engines as kNotFound.
  static Result<std::unique_ptr<ShardRouter>> Open(
      const std::string& manifest_path, const ShardRouterOptions& options = {});

  ~ShardRouter() = default;
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  const ShardManifest& manifest() const { return manifest_; }
  uint32_t shard_count() const { return manifest_.partition.shards; }
  NodeId node_count() const { return manifest_.n; }

  /// The shard owning `source` (requires source < node_count()).
  uint32_t ShardOf(NodeId source) const {
    return ShardOfNode(source, manifest_.n, manifest_.partition);
  }

  /// Enqueues one query on the owner shard, stamped with the next global
  /// stream position (k = 0 means the full single-source result). Invalid
  /// sources resolve immediately with kInvalidArgument and consume no
  /// position, mirroring QueryService's precheck semantics.
  std::future<QueryResult> Submit(NodeId source, uint32_t k = 0);

  /// Full-request form of Submit — the hook the network front end binds.
  /// `algo` must be empty or the manifest's engine (anything else resolves
  /// with kNotFound). fresh_seed requests route like QueryFresh and consume
  /// no stream position; others are stamped with the next global position
  /// unless the caller already set an explicit one.
  std::future<QueryResult> SubmitRequest(QueryRequest request);

  /// Blocking one-shot with fresh-engine seeding — the `query --manifest`
  /// path. Bit-identical to querying a freshly loaded unsharded engine.
  QueryResult QueryFresh(NodeId source, uint32_t k = 0);

  /// Distributed top-k: full query on every shard, ownership-filtered
  /// local top-k, deterministic merge. Fails if any shard fails.
  Result<ScoreList> BroadcastTopK(NodeId source, size_t k);

  /// Aggregated view over all shard services: counters summed, cost
  /// counters accumulated, and percentiles recomputed over the pooled
  /// latency reservoirs (not averaged per-shard quantiles).
  ServiceStats Stats() const;

 private:
  ShardRouter() = default;

  ShardManifest manifest_;
  /// Loaded graphs, deduplicated by resolved artifact path. Declared
  /// before services_: engines hold const Graph&, so the graphs must be
  /// destroyed after every service has drained.
  std::vector<std::unique_ptr<Graph>> graphs_;
  std::vector<std::unique_ptr<QueryService>> services_;  ///< one per shard
  std::atomic<uint64_t> next_position_{0};
  /// Requests that arrived at the router already expired: refused before
  /// consuming a global stream position (so one shard shedding never
  /// shifts another shard's positional seeds), folded into
  /// Stats().deadline_exceeded alongside the per-shard counters.
  std::atomic<uint64_t> expired_at_router_{0};
};

}  // namespace prsim

#endif  // PRSIM_CORE_SHARD_ROUTER_H_
