// Shard bundle manifest: the one file that describes a sharded deployment.
//
// A bundle is a directory produced by `prsim_cli shard-build`: graph and
// index artifacts plus a manifest recording which engine they were built
// for, the partition spec that routes queries, and the fingerprint of the
// graph everything was built against. `serve --manifest` / `query
// --manifest` open the manifest and reconstruct the whole serving topology
// from it — no other flags needed.
//
// SimRank scores depend on the entire graph (a similarity between u and v
// flows through meeting nodes anywhere), so shards partition *query
// ownership*, not the data: every shard's engine is built over the full
// graph with identical options and seed. The builder therefore writes one
// graph artifact and one index artifact, and every shard entry aliases
// them; the per-shard paths stay in the schema so a future column-cut
// format can diverge without a manifest version bump.
//
// Paths inside the manifest are relative to the manifest's directory,
// making bundles relocatable (tar up the directory, untar anywhere).

#ifndef PRSIM_CORE_SHARD_MANIFEST_H_
#define PRSIM_CORE_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine_config.h"
#include "graph/graph.h"
#include "graph/partition.h"
#include "util/status.h"

namespace prsim {

/// One shard's artifact locations, relative to the manifest directory.
/// An empty index_path means the engine has no persistent index and must
/// be preprocessed at load time.
struct ShardArtifacts {
  std::string graph_path;
  std::string index_path;
};

struct ShardManifest {
  /// Canonical engine key ("prsim", "sling", ...).
  std::string algo;
  /// Canonical "k=v,k=v" engine parameters (EngineConfig::ToString()).
  std::string params;
  /// How source nodes map onto shards. partition.shards == shards.size().
  PartitionSpec partition;

  // Fingerprint of the graph the bundle was built from; Load()ed bundles
  // are validated against these before any engine is constructed.
  uint32_t n = 0;
  uint64_t m = 0;
  uint64_t graph_checksum = 0;

  std::vector<ShardArtifacts> shards;

  /// Serializes as a serde v2 artifact of kind "shard-manifest".
  Status Save(const std::string& path) const;

  /// Loads and structurally validates a manifest (shard count consistency,
  /// valid partition spec, non-empty graph paths). I/O and envelope
  /// problems surface as kIOError, corruption and inconsistency as
  /// kInvalidArgument.
  static Result<ShardManifest> Load(const std::string& path);

  /// Parses the stored params into an EngineConfig.
  Result<EngineConfig> Config() const;
};

/// Resolves a manifest-relative artifact path against the manifest's own
/// location ("bundle/manifest.bin" + "graph.bin" -> "bundle/graph.bin").
/// Absolute entries pass through unchanged.
std::string ResolveManifestPath(const std::string& manifest_path,
                                const std::string& relative);

/// Builds a complete shard bundle under `out_dir` (created if missing):
/// writes the graph artifact, constructs the engine via the registry, runs
/// Preprocess(), persists its index when the engine has one, and writes
/// `manifest.bin` describing `spec.shards` shards. Returns the manifest
/// path. The engine is built once over the full graph — every shard entry
/// aliases the same artifacts — so sharded answers are bit-identical to
/// unsharded ones by construction.
Result<std::string> BuildShardBundle(const Graph& graph,
                                     const std::string& algo,
                                     const EngineConfig& config,
                                     const PartitionSpec& spec,
                                     const std::string& out_dir);

}  // namespace prsim

#endif  // PRSIM_CORE_SHARD_MANIFEST_H_
