// Typed key/value configuration for engine construction.
//
// EngineConfig is the single currency the engine registry trades in: a flat
// bag of string key/value pairs ("c", "eps", "samples", ...) parsed from the
// CLI's "k=v,k=v" syntax or assembled programmatically, with typed accessors
// that validate on read. Each registry factory maps the keys it understands
// onto its options struct and rejects everything else, so a typo like
// "epps=0.1" is an error instead of a silently ignored knob.

#ifndef PRSIM_CORE_ENGINE_CONFIG_H_
#define PRSIM_CORE_ENGINE_CONFIG_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace prsim {

class EngineConfig {
 public:
  EngineConfig() = default;

  /// Parses "k=v,k=v,..." (empty string = empty config). Errors on segments
  /// without '=', empty keys, and duplicate keys.
  static Result<EngineConfig> Parse(const std::string& text);

  /// Adds a key; errors if the key is already present.
  Status Set(const std::string& key, std::string value);

  /// Adds or overwrites a key (used by callers layering explicit flags on
  /// top of a parsed --params string).
  void SetOrReplace(const std::string& key, std::string value);

  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  bool empty() const { return entries_.empty(); }

  // Typed accessors. Each leaves *out untouched when the key is absent (so
  // callers preload defaults) and returns InvalidArgument when the stored
  // value does not parse as the requested type.
  Status GetDouble(const std::string& key, double* out) const;
  Status GetUint64(const std::string& key, uint64_t* out) const;
  Status GetUint32(const std::string& key, uint32_t* out) const;
  Status GetSize(const std::string& key, size_t* out) const;
  /// Accepts "true"/"false"/"1"/"0".
  Status GetBool(const std::string& key, bool* out) const;

  // Range-checked convenience readers used by engine factories; `name` only
  // shapes the error message.
  /// Requires the value (if present) to be > 0.
  Status GetPositiveDouble(const std::string& key, double* out) const;
  /// Requires the value (if present) to lie strictly inside (lo, hi) — the
  /// check used for the decay factor c and the failure probability delta.
  Status GetOpenInterval(const std::string& key, double lo, double hi,
                         double* out) const;

  /// Errors with the offending key if the config holds any key outside
  /// `allowed` — every factory's first line of defense.
  Status ExpectOnly(std::initializer_list<const char*> allowed) const;

  /// Keys in insertion order (for error messages and debugging).
  std::vector<std::string> Keys() const;

  /// Canonical "k=v,k=v" rendering in insertion order.
  std::string ToString() const;

 private:
  const std::string* Find(const std::string& key) const;

  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace prsim

#endif  // PRSIM_CORE_ENGINE_CONFIG_H_
