// Chung-Lu style power-law graph generator.
//
// Generates graphs whose degree distributions follow a *cumulative* power law
// P(deg >= k) ~ k^-gamma with a target average degree, the two structural
// knobs PRSim's analysis depends on (paper Sections 1 and 3.5).
//
// Substitution note (see DESIGN.md): the paper's synthetic experiments use the
// hyperbolic graph generator of Aldecoa et al. [3]; those experiments only
// exercise the power-law exponent and graph size, which Chung-Lu controls
// directly. Expected node weights are w_i ~ (i+1)^(-1/gamma), which yields the
// gamma-cumulative tail; edges are drawn by independent endpoint sampling from
// alias tables (the O(m) "fast Chung-Lu" construction) and deduplicated.

#ifndef PRSIM_GEN_CHUNG_LU_H_
#define PRSIM_GEN_CHUNG_LU_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

struct ChungLuOptions {
  NodeId n = 10000;
  double avg_degree = 10.0;
  /// Cumulative power-law exponent of the out-degree distribution (>= 0.5).
  double gamma_out = 2.0;
  /// Cumulative exponent of the in-degree distribution; ignored when
  /// undirected. Defaults to gamma_out when <= 0.
  double gamma_in = -1.0;
  bool undirected = false;
  /// Random permutation decouples in- and out-weight ranks so that node 0 is
  /// not simultaneously the largest authority and the largest hub.
  bool shuffle_in_weights = true;
  uint64_t seed = 1;
};

/// Generates a simple graph (no self-loops, deduplicated).
///
/// Because duplicates are removed, the realized average degree falls slightly
/// below `avg_degree` on dense/hot configurations; generation resamples up to
/// a few rounds to stay within ~2% of the target.
Result<Graph> GenerateChungLu(const ChungLuOptions& options);

/// Power-law weight sequence: weights[i] ~ (i+1)^(-1/gamma), scaled so the
/// mean equals `mean`. Exposed for tests.
std::vector<double> PowerLawWeights(NodeId n, double gamma, double mean);

}  // namespace prsim

#endif  // PRSIM_GEN_CHUNG_LU_H_
