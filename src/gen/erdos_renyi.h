// Erdos-Renyi G(n, M) generator for the non-power-law experiments (Fig. 7).

#ifndef PRSIM_GEN_ERDOS_RENYI_H_
#define PRSIM_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

struct ErdosRenyiOptions {
  NodeId n = 10000;
  /// Target average degree d̄; the generator draws M = n * d̄ distinct directed
  /// edges uniformly at random (G(n, M) model).
  double avg_degree = 10.0;
  bool undirected = false;
  uint64_t seed = 1;
};

/// Generates a simple uniform random graph. Degree distributions concentrate
/// around d̄ (binomial), i.e. no power-law tail — the regime where the paper
/// contrasts PRSim's backward walk with ProbeSim's full-neighborhood probes.
Result<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options);

}  // namespace prsim

#endif  // PRSIM_GEN_ERDOS_RENYI_H_
