#include "gen/barabasi_albert.h"

#include <vector>

#include "graph/builder.h"
#include "util/rng.h"

namespace prsim {

Result<Graph> GenerateBarabasiAlbert(const BarabasiAlbertOptions& options) {
  const NodeId n = options.n;
  const uint32_t k = options.edges_per_node;
  if (k == 0) {
    return Status::InvalidArgument("BarabasiAlbert: edges_per_node must be > 0");
  }
  if (n < k + 1) {
    return Status::InvalidArgument("BarabasiAlbert: need n > edges_per_node");
  }
  Rng rng(options.seed);

  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * k);
  // Endpoint list: each node appears once per incident edge, so sampling a
  // uniform entry is sampling proportionally to degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2ull * n * k);

  // Seed core: a (k+1)-clique.
  for (NodeId u = 0; u <= k; ++u) {
    for (NodeId v = u + 1; v <= k; ++v) {
      edges.emplace_back(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::vector<NodeId> chosen(k);
  for (NodeId v = k + 1; v < n; ++v) {
    // Draw k distinct targets by preferential attachment (retry duplicates;
    // k is small, so the expected number of retries is negligible).
    for (uint32_t i = 0; i < k; ++i) {
      NodeId target;
      bool duplicate;
      do {
        target = endpoints[rng.NextBounded(endpoints.size())];
        duplicate = false;
        for (uint32_t j = 0; j < i; ++j) {
          if (chosen[j] == target) {
            duplicate = true;
            break;
          }
        }
      } while (duplicate);
      chosen[i] = target;
    }
    for (uint32_t i = 0; i < k; ++i) {
      edges.emplace_back(chosen[i], v);
      endpoints.push_back(chosen[i]);
      endpoints.push_back(v);
    }
  }

  BuildOptions build;
  build.undirected = true;
  return BuildGraph(n, std::move(edges), build);
}

}  // namespace prsim
