#include "gen/chung_lu.h"

#include <algorithm>
#include <cmath>

#include "graph/builder.h"
#include "util/alias_table.h"
#include "util/logging.h"
#include "util/rng.h"

namespace prsim {

std::vector<double> PowerLawWeights(NodeId n, double gamma, double mean) {
  PRSIM_CHECK(gamma > 0) << "power-law exponent must be positive";
  std::vector<double> weights(n);
  const double exponent = -1.0 / gamma;
  double total = 0;
  for (NodeId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + 1.0, exponent);
    total += weights[i];
  }
  const double scale = mean * n / total;
  for (auto& w : weights) w *= scale;
  return weights;
}

Result<Graph> GenerateChungLu(const ChungLuOptions& options) {
  if (options.n < 2) {
    return Status::InvalidArgument("ChungLu: need n >= 2");
  }
  if (options.avg_degree <= 0) {
    return Status::InvalidArgument("ChungLu: avg_degree must be positive");
  }
  if (options.gamma_out < 0.5) {
    return Status::InvalidArgument("ChungLu: gamma_out must be >= 0.5");
  }
  const NodeId n = options.n;
  const double gamma_in =
      options.gamma_in > 0 ? options.gamma_in : options.gamma_out;
  Rng rng(options.seed);

  std::vector<double> out_weights =
      PowerLawWeights(n, options.gamma_out, options.avg_degree);
  AliasTable out_table(out_weights);

  AliasTable in_table;
  std::vector<NodeId> in_perm;
  if (!options.undirected) {
    std::vector<double> in_weights =
        PowerLawWeights(n, gamma_in, options.avg_degree);
    in_table = AliasTable(in_weights);
    in_perm.resize(n);
    for (NodeId i = 0; i < n; ++i) in_perm[i] = i;
    if (options.shuffle_in_weights) {
      for (NodeId i = n; i > 1; --i) {
        std::swap(in_perm[i - 1], in_perm[rng.NextIndex(i)]);
      }
    }
  }

  // Target number of *stored* directed edges. Undirected graphs store both
  // directions, so sample half as many undirected pairs.
  const uint64_t target_m =
      static_cast<uint64_t>(std::llround(options.avg_degree * n));
  const uint64_t target_samples =
      options.undirected ? target_m / 2 : target_m;

  std::vector<Edge> edges;
  edges.reserve(target_samples + target_samples / 8);
  // Dedup eats some samples; resample a few rounds to approach the target.
  uint64_t wanted = target_samples;
  for (int round = 0; round < 4 && wanted > 0; ++round) {
    for (uint64_t i = 0; i < wanted; ++i) {
      const NodeId src = out_table.Sample(rng);
      NodeId dst;
      if (options.undirected) {
        dst = out_table.Sample(rng);
      } else {
        dst = in_perm[in_table.Sample(rng)];
      }
      if (src == dst) continue;
      if (options.undirected && src > dst) {
        edges.emplace_back(dst, src);
      } else {
        edges.emplace_back(src, dst);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    wanted = target_samples > edges.size()
                 ? target_samples - edges.size()
                 : 0;
    // Stop once we are within 2% of the target.
    if (wanted < target_samples / 50) break;
  }

  BuildOptions build;
  build.undirected = options.undirected;
  build.deduplicate = true;
  build.remove_self_loops = true;
  return BuildGraph(n, std::move(edges), build);
}

}  // namespace prsim
