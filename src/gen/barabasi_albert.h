// Barabasi-Albert preferential-attachment generator.
//
// A second, mechanistically different power-law model (fixed cumulative
// exponent gamma = 2) used to validate that PRSim's behavior tracks the
// degree distribution rather than a particular generator.

#ifndef PRSIM_GEN_BARABASI_ALBERT_H_
#define PRSIM_GEN_BARABASI_ALBERT_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

struct BarabasiAlbertOptions {
  NodeId n = 10000;
  /// Edges attached per arriving node; average degree converges to 2k
  /// (undirected, both directions stored).
  uint32_t edges_per_node = 5;
  uint64_t seed = 1;
};

/// Classic BA process via the repeated-endpoint list, yielding an undirected
/// simple graph with P(deg >= k) ~ k^-2.
Result<Graph> GenerateBarabasiAlbert(const BarabasiAlbertOptions& options);

}  // namespace prsim

#endif  // PRSIM_GEN_BARABASI_ALBERT_H_
