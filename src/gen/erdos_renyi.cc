#include "gen/erdos_renyi.h"

#include <algorithm>
#include <cmath>

#include "graph/builder.h"
#include "util/rng.h"

namespace prsim {

Result<Graph> GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  const NodeId n = options.n;
  if (n < 2) return Status::InvalidArgument("ErdosRenyi: need n >= 2");
  if (options.avg_degree <= 0 ||
      options.avg_degree >= static_cast<double>(n)) {
    return Status::InvalidArgument("ErdosRenyi: need 0 < avg_degree < n");
  }
  Rng rng(options.seed);

  const uint64_t target_m =
      static_cast<uint64_t>(std::llround(options.avg_degree * n));
  const uint64_t target_samples =
      options.undirected ? target_m / 2 : target_m;

  std::vector<Edge> edges;
  edges.reserve(target_samples + target_samples / 8);
  uint64_t wanted = target_samples;
  for (int round = 0; round < 6 && wanted > 0; ++round) {
    for (uint64_t i = 0; i < wanted; ++i) {
      const NodeId src = rng.NextIndex(n);
      const NodeId dst = rng.NextIndex(n);
      if (src == dst) continue;
      if (options.undirected && src > dst) {
        edges.emplace_back(dst, src);
      } else {
        edges.emplace_back(src, dst);
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    wanted =
        target_samples > edges.size() ? target_samples - edges.size() : 0;
    if (wanted < target_samples / 100) break;
  }

  BuildOptions build;
  build.undirected = options.undirected;
  return BuildGraph(n, std::move(edges), build);
}

}  // namespace prsim
