// FlatHashMap2 — cache-aware open-addressing hash map keyed by 64-bit
// integers (the v2 of util/flat_hash_map.h, which remains for consumers
// whose output bits depend on v1's slot iteration order).
//
// Microarchitectural differences from v1, in the order they matter on the
// query hot paths:
//
//  * SwissTable-style split metadata: a separate 1-byte-per-slot control
//    array scanned in 16-slot groups. One probe step inspects 16 candidate
//    slots by touching a single metadata cache line; the 16-byte key/value
//    slot line is only loaded for slots whose 7-bit hash fragment matches.
//    v1 probes the full {key, value} array linearly, pulling one 16-byte
//    line per inspected slot.
//  * wyhash-style mixer: one 64x64->128 multiply with xor-folding replaces
//    v1's three-multiply splitmix finalizer, and is a stronger mix for the
//    clustered key shapes we feed it (dense node ids, PackNodeLevel pairs).
//  * O(size) clear() via an occupied-slot journal: clear() resets only the
//    control bytes the map actually used (or memsets the control array when
//    the map is dense — still 16x fewer bytes than v1's full slot wipe).
//    This is the dominant per-query cost v1 pays when a pooled workspace
//    retains a large capacity but a query touches few nodes: v1 clear() is
//    O(capacity) over the slot array.
//  * ForEach/ToVector iterate the journal, i.e. in INSERTION order, in
//    O(size). Iteration order is therefore a pure function of the operation
//    sequence — never of the capacity retained from earlier reuse — which
//    upgrades the OrderedSlot discipline from "callers must keep their own
//    key vector" to a property of the container. (Callers on the query hot
//    paths still keep their key vectors; the contract is identical.)
//
// Same restrictions as v1, minus the sentinel: any uint64_t key is
// insertable (presence lives in the control byte, not the key), erase is
// not supported, and values must be default-constructible and trivially
// copyable (slots live in a raw arena, with the journal and control bytes
// fused into a second small block — two allocations per table, see
// Allocate for why the slot block stays separate). Growth is two-regime
// but always a
// deterministic pure function of the insert count: small tables (<= 1024
// slots, minimum 64 — one cache line of control bytes) grow 4x at 1/2
// load — a few KB of L1-resident scratch traded for ~4x fewer rehash moves
// and near-zero probe collisions, which is what makes v2 beat v1's
// low-load linear probing even on tiny tables — while large tables grow 2x
// at 3/4 load (matching v1's rehash-move count; the metadata scan wins at
// equal load). Reserve() and capacity() semantics match v1 so
// workspace-reuse growth decisions stay deterministic.

#ifndef PRSIM_UTIL_FLAT_HASH_MAP2_H_
#define PRSIM_UTIL_FLAT_HASH_MAP2_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/flat_hash_map.h"  // OrderedSlot, PackNodeLevel, kMaxMapCapacity
#include "util/logging.h"

namespace prsim {

template <typename V>
class FlatHashMap2 {
 public:
  explicit FlatHashMap2(size_t initial_capacity = 16) {
    PRSIM_CHECK(initial_capacity <= kMaxMapCapacity / 2)
        << "FlatHashMap2: requested capacity " << initial_capacity
        << " exceeds the " << kMaxMapCapacity << "-slot limit";
    // Minimum table is 64 slots: the control array then fills exactly one
    // cache line, and a default-constructed map reaches ~100 entries with a
    // single rehash.
    size_t cap = kMinCapacity;
    while (cap < initial_capacity * 2) cap <<= 1;
    Allocate(cap);
  }

  // The slots, journal, and control array live in raw arenas, so the map
  // is move-only; a moved-from map may only be destroyed or assigned to.
  FlatHashMap2(FlatHashMap2&& other) noexcept { StealFrom(other); }
  FlatHashMap2& operator=(FlatHashMap2&& other) noexcept {
    if (this != &other) StealFrom(other);
    return *this;
  }
  FlatHashMap2(const FlatHashMap2&) = delete;
  FlatHashMap2& operator=(const FlatHashMap2&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Empties the map while KEEPING capacity (the pooled-workspace reuse
  /// contract, same as v1). Cost is O(size): only the control bytes named
  /// by the occupied-slot journal are reset — or, when the map is dense,
  /// one memset of the 1-byte-per-slot control array. Free when empty.
  void clear() {
    if (size_ == 0) return;
    if (size_ * kSparseClearFactor < capacity_) {
      for (size_t i = 0; i < size_; ++i) ctrl_[journal_[i]] = kEmpty;
    } else {
      std::memset(ctrl_, kEmpty, capacity_);
    }
    size_ = 0;
  }

  /// Returns a reference to the value for `key`, inserting a
  /// default-constructed value if absent. Probes before any growth
  /// decision: a lookup of a present key never rehashes, so capacity is a
  /// pure function of the number of inserts.
  V& operator[](uint64_t key) {
    const uint64_t h = Hash(key);
    const uint8_t h2 = H2(h);
    const H2Pattern pattern = BroadcastH2(h2);
    // Members are cached in locals for the probe loop: InsertAt's control
    // store is a byte store, which the compiler must assume aliases every
    // member field — without the locals each loop iteration reloads them.
    const uint8_t* const ctrl = ctrl_;
    Slot* const slots = slots_;
    const size_t gmask = group_mask_;
    size_t group = H1(h) & gmask;
    size_t step = 0;
    while (true) {
      const GroupBits g = LoadGroup(ctrl + group * kGroupWidth);
      uint64_t match = MatchByte(g, pattern);
      while (match != 0) {
        const size_t idx = group * kGroupWidth + MaskSlot(match);
        if (slots[idx].key == key) return slots[idx].value;
        match &= match - 1;
      }
      const uint64_t empty = MatchEmpty(g);
      if (empty != 0) {
        if (size_ >= growth_threshold_) {
          Rehash(NextCapacity(capacity_));
          return InsertKnownAbsent(key);
        }
        return InsertAt(group * kGroupWidth + MaskSlot(empty), h2, key);
      }
      group = (group + (++step)) & gmask;
    }
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  const V* Find(uint64_t key) const {
    const uint64_t h = Hash(key);
    const H2Pattern pattern = BroadcastH2(H2(h));
    size_t group = H1(h) & group_mask_;
    size_t step = 0;
    while (true) {
      const GroupBits g = LoadGroup(ctrl_ + group * kGroupWidth);
      uint64_t match = MatchByte(g, pattern);
      while (match != 0) {
        const size_t idx = group * kGroupWidth + MaskSlot(match);
        if (slots_[idx].key == key) return &slots_[idx].value;
        match &= match - 1;
      }
      if (MatchEmpty(g) != 0) return nullptr;
      group = (group + (++step)) & group_mask_;
    }
  }
  V* Find(uint64_t key) {
    return const_cast<V*>(static_cast<const FlatHashMap2*>(this)->Find(key));
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  /// Iterates occupied slots in INSERTION order (via the journal), O(size);
  /// `fn(key, value)`. The order survives rehashing: Rehash replays the
  /// journal, so it is a pure function of the insertion sequence.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < size_; ++i) {
      const Slot& slot = slots_[journal_[i]];
      fn(slot.key, slot.value);
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (size_t i = 0; i < size_; ++i) {
      Slot& slot = slots_[journal_[i]];
      fn(slot.key, slot.value);
    }
  }

  /// Materializes entries as (key, value) pairs in insertion order.
  std::vector<std::pair<uint64_t, V>> ToVector() const {
    std::vector<std::pair<uint64_t, V>> out;
    out.reserve(size_);
    ForEach([&](uint64_t k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  size_t capacity() const { return capacity_; }

  /// Ensures capacity() >= slot_count (rounded up to a power of two),
  /// rehashing current entries — v1 semantics, so paired scratch maps can
  /// equalize retained capacities (see BackwardWalker::ResetScratch).
  void Reserve(size_t slot_count) {
    PRSIM_CHECK(slot_count <= kMaxMapCapacity)
        << "FlatHashMap2::Reserve: requested capacity " << slot_count
        << " exceeds the " << kMaxMapCapacity << "-slot limit";
    if (slot_count <= capacity_) return;
    size_t cap = capacity_;
    while (cap < slot_count) cap <<= 1;
    Rehash(cap);
  }

  /// Heap footprint in bytes: both arenas (slots + journal + control).
  size_t MemoryBytes() const {
    return capacity_ * (sizeof(Slot) + 1) +
           growth_threshold_ * sizeof(uint32_t);
  }

  /// Work a Find(key) performs: 16-slot groups inspected PLUS candidate
  /// slots whose H2 fragment matched and needed a key compare — the
  /// microbench's accidentally-quadratic detector watches this. Counting
  /// candidates matters: a mixer whose H2 degenerates for some key shape
  /// keeps the group count at 1 while every occupied slot in the group
  /// becomes a false positive.
  size_t FindProbeCost(uint64_t key) const {
    const uint64_t h = Hash(key);
    const H2Pattern pattern = BroadcastH2(H2(h));
    size_t group = H1(h) & group_mask_;
    size_t step = 0;
    size_t cost = 0;
    while (true) {
      ++cost;
      const GroupBits g = LoadGroup(ctrl_ + group * kGroupWidth);
      uint64_t match = MatchByte(g, pattern);
      while (match != 0) {
        ++cost;
        const size_t idx = group * kGroupWidth + MaskSlot(match);
        if (slots_[idx].key == key) return cost;
        match &= match - 1;
      }
      if (MatchEmpty(g) != 0) return cost;
      group = (group + (++step)) & group_mask_;
    }
  }

 private:
  struct Slot {
    uint64_t key;
    V value;
  };
  // The arena carves slots out of raw storage (no per-slot construction, no
  // destructor walk), which the value type must tolerate.
  static_assert(std::is_trivially_copyable_v<V> &&
                    std::is_trivially_destructible_v<V>,
                "FlatHashMap2 requires a trivially copyable value type");
  static_assert(alignof(Slot) <= alignof(std::max_align_t),
                "Slot alignment exceeds what operator new[] guarantees");

  static constexpr size_t kGroupWidth = 16;
  static constexpr uint8_t kEmpty = 0x80;
  static constexpr size_t kMinCapacity = 64;
  /// Tables at or below this slot count are the "small regime": grown 4x
  /// at 1/2 load instead of 2x at 3/4 (see the class comment).
  static constexpr size_t kSmallCapacity = 1024;
  static constexpr size_t kSmallGrowthStep = 512;
  /// clear() walks the journal when size * this < capacity, else memsets
  /// the control array (sequential wipe beats sparse stores once the map
  /// is dense; both are O(size) since size >= capacity / factor there).
  static constexpr size_t kSparseClearFactor = 16;
  static constexpr uint64_t kLsbs = 0x0101010101010101ULL;
  static constexpr uint64_t kMsbs = 0x8080808080808080ULL;
  static constexpr uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;

  /// wyhash-style finalizer: one widening multiply, xor-fold of the halves.
  /// The fold is load-bearing: for dense sequential keys the product's high
  /// bits barely move (delta * C stays far below bit 121), so without the
  /// low half folded in, H2 — the top bits — degenerates to a constant and
  /// every occupied slot in a group becomes a false-positive candidate.
  static uint64_t Hash(uint64_t key) {
#ifdef __SIZEOF_INT128__
    const __uint128_t r =
        static_cast<__uint128_t>(key ^ 0x2d358dccaa6c78a5ULL) *
        0x8bb84b93962eacc9ULL;
    return static_cast<uint64_t>(r) ^ static_cast<uint64_t>(r >> 64);
#else
    // Portable fallback (no 128-bit type): splitmix finalizer.
    uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
#endif
  }
  // H1 (group selector) is the low bits, H2 (control fragment) the top 7 —
  // disjoint ranges of the mixed hash, and H1 needs no extra shift before
  // the group mask.
  static size_t H1(uint64_t hash) { return static_cast<size_t>(hash); }
  static uint8_t H2(uint64_t hash) { return static_cast<uint8_t>(hash >> 57); }

#if defined(__SSE2__)
  // x86-64 path: one 16-byte group compare is two instructions after the
  // per-probe broadcast (cmpeq, movemask) — this is what makes the metadata
  // scan cheaper than v1's slot probing even when everything is in L1. The
  // H2 broadcast is hoisted out of the probe loop by the callers.
  using H2Pattern = __m128i;
  /// A control group's 16 bytes, loaded ONCE per probe step and shared by
  /// the H2-match and empty-mask queries (the probe loops need both; a
  /// per-query reload costs an extra load uop on every step).
  using GroupBits = __m128i;
  /// Load-free broadcast: the byte is smeared across a GP register with one
  /// multiply, moved to xmm, and the low half duplicated — 3 uops, no
  /// memory access. A precomputed 2 KB pattern table is one load instead,
  /// but that load 4K-aliases the insert path's own slot stores for
  /// key-set-dependent table offsets (slot arrays are page-multiples once
  /// maps grow past ~250 entries), and the resulting store-forwarding
  /// stalls cost far more than the 2-uop saving.
  static H2Pattern BroadcastH2(uint8_t byte) {
    const __m128i low =
        _mm_cvtsi64_si128(static_cast<int64_t>(kLsbs * byte));
    return _mm_unpacklo_epi64(low, low);
  }
  static GroupBits LoadGroup(const uint8_t* ctrl) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
  }
  /// 16-bit mask (bit i = slot i of the group) of control bytes == pattern.
  static uint64_t MatchByte(GroupBits group, H2Pattern pattern) {
    return static_cast<uint64_t>(
        static_cast<uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(group,
                                                               pattern))));
  }
  /// Control bytes with the high bit set are empty (full slots hold 7-bit
  /// fragments), so movemask of the raw group IS the empty mask.
  static uint64_t MatchEmpty(GroupBits group) {
    return static_cast<uint64_t>(
        static_cast<uint32_t>(_mm_movemask_epi8(group)));
  }
#else
  // Portable SWAR fallback: same contract, built from two 8-byte halves.
  using H2Pattern = uint64_t;
  /// A control group's 16 bytes, loaded ONCE per probe step and shared by
  /// the H2-match and empty-mask queries.
  struct GroupBits {
    uint64_t lo, hi;
  };
  static H2Pattern BroadcastH2(uint8_t byte) {
    return kLsbs * static_cast<uint64_t>(byte);
  }
  static uint64_t Load64(const uint8_t* p) {
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static GroupBits LoadGroup(const uint8_t* ctrl) {
    return GroupBits{Load64(ctrl), Load64(ctrl + 8)};
  }
  /// Exact per-byte zero test (no inter-byte carries): high bit of result
  /// byte i is set iff byte i of `v` is zero.
  static uint64_t ZeroBytes(uint64_t v) {
    return ~(((v & kLow7) + kLow7) | v) & kMsbs;
  }
  /// 16-bit mask (bit i = slot i of the group) of control bytes == pattern.
  static uint64_t MatchByte(GroupBits group, H2Pattern pattern) {
    const uint64_t lo = ZeroBytes(group.lo ^ pattern);
    const uint64_t hi = ZeroBytes(group.hi ^ pattern);
    return FoldGroup(lo, hi);
  }
  /// Control bytes with the high bit set are empty (full slots hold 7-bit
  /// fragments); exact because those are the only two encodings.
  static uint64_t MatchEmpty(GroupBits group) {
    return FoldGroup(group.lo & kMsbs, group.hi & kMsbs);
  }
  /// Packs the two per-half byte-high-bit masks into one 16-bit mask (bit i
  /// = slot i of the group), preserving ascending slot order for the
  /// lowest-set-bit walk. The multiply-gather is exact: every partial
  /// product of ((m >> 7) & kLsbs) * kGather lands at a distinct bit, so no
  /// carries can corrupt the output byte.
  static uint64_t FoldGroup(uint64_t lo, uint64_t hi) {
    constexpr uint64_t kGather = 0x0102040810204080ULL;
    const uint64_t lo_bits = (((lo >> 7) & kLsbs) * kGather) >> 56;
    const uint64_t hi_bits = (((hi >> 7) & kLsbs) * kGather) >> 56;
    return lo_bits | (hi_bits << 8);
  }
#endif
  /// Index (0..15) of the lowest set bit of a group mask. Masks fit in 16
  /// bits on both paths; the 32-bit ctz avoids the 64-bit zero-guard +
  /// sign-extension goo GCC emits for ctzll.
  static size_t MaskSlot(uint64_t mask) {
    return static_cast<uint32_t>(__builtin_ctz(static_cast<uint32_t>(mask)));
  }

  V& InsertAt(size_t idx, uint8_t h2, uint64_t key) {
    ctrl_[idx] = h2;
    // clear() leaves slot payloads in place; a reused slot must not
    // resurrect its stale value, so the value is reset alongside the key.
#if defined(__SSE2__)
    if constexpr (std::is_arithmetic_v<V> && sizeof(Slot) == 16) {
      // One 16-byte store covers key + zeroed value (V{} is all-zero bits
      // for arithmetic types; cvtsi64 clears the upper lane). The insert
      // path is store-bound, and every store is also a 4K-alias hazard
      // against the next insert's control-group load.
      _mm_storeu_si128(reinterpret_cast<__m128i*>(&slots_[idx]),
                       _mm_cvtsi64_si128(static_cast<int64_t>(key)));
    } else {
      slots_[idx].key = key;
      slots_[idx].value = V{};
    }
#else
    slots_[idx].key = key;
    slots_[idx].value = V{};
#endif
    // The journal is preallocated to the growth threshold, so recording an
    // insert is one indexed store — no push_back capacity check.
    journal_[size_] = static_cast<uint32_t>(idx);
    ++size_;
    return slots_[idx].value;
  }

  /// Insert for a key known to be absent (post-rehash): probes only for the
  /// first empty slot.
  V& InsertKnownAbsent(uint64_t key) {
    const uint64_t h = Hash(key);
    const size_t idx = FindFirstEmpty(h);
    return InsertAt(idx, H2(h), key);
  }

  static size_t NextCapacity(size_t cap) {
    return cap <= kSmallGrowthStep ? cap * 4 : cap * 2;
  }

  size_t FindFirstEmpty(uint64_t h) const {
    size_t group = H1(h) & group_mask_;
    size_t step = 0;
    while (true) {
      const uint64_t empty = MatchEmpty(LoadGroup(ctrl_ + group * kGroupWidth));
      if (empty != 0) return group * kGroupWidth + MaskSlot(empty);
      group = (group + (++step)) & group_mask_;
    }
  }

  /// Two blocks per table: the slot array alone, and [journal | ctrl]
  /// fused. Fusing the two small arrays halves allocator traffic on a
  /// growth chain; the slot array stays SEPARATE deliberately, so its
  /// allocation size is byte-identical to v1's slot vector at equal
  /// capacity and the allocator treats both maps the same. (Fused, the big
  /// block crosses glibc's dynamic-mmap-threshold ceiling ~8 doublings
  /// earlier than v1's, and past it every fresh build pays ~10k page
  /// faults v1 stopped paying — a systematic skew the microbench measured
  /// as a v2 insert regression at the 1e6 cell.) The journal leads the aux
  /// block (uint32_t alignment), the byte-granular control array trails.
  /// Only the control bytes are initialized — slot payloads are written
  /// before they are ever read, and the journal's live prefix is exactly
  /// [0, size_).
  void Allocate(size_t cap) {
    capacity_ = cap;
    group_mask_ = cap / kGroupWidth - 1;
    // Grow when the NEXT insert would exceed the regime's load limit —
    // precomputed so the insert path's growth check is one compare. The
    // large-regime limit matches v1's 3/4 trigger: pushing it to the
    // SwissTable-classic 7/8 would save memory but do ~17% more total
    // rehash moves over a growth chain, and bulk insert at DRAM-resident
    // sizes is rehash-bound.
    growth_threshold_ = cap <= kSmallCapacity ? cap / 2 : cap / 4 * 3;
    // At most growth_threshold_ entries fit before a rehash, so sizing the
    // journal once here lets inserts record slots with a plain store.
    const size_t journal_bytes = growth_threshold_ * sizeof(uint32_t);
    slot_arena_.reset(new char[cap * sizeof(Slot)]);
    aux_arena_.reset(new char[journal_bytes + cap]);
    slots_ = reinterpret_cast<Slot*>(slot_arena_.get());
    journal_ = reinterpret_cast<uint32_t*>(aux_arena_.get());
    ctrl_ = reinterpret_cast<uint8_t*>(aux_arena_.get() + journal_bytes);
    std::memset(ctrl_, kEmpty, cap);
    size_ = 0;
  }

  /// Rehashes into `cap` slots by replaying the journal, which preserves
  /// insertion order across growth (ForEach order never changes).
  void Rehash(size_t cap) {
    PRSIM_CHECK(cap <= kMaxMapCapacity)
        << "FlatHashMap2: growth beyond the " << kMaxMapCapacity
        << "-slot limit";
    const std::unique_ptr<char[]> old_slot_arena = std::move(slot_arena_);
    const std::unique_ptr<char[]> old_aux_arena = std::move(aux_arena_);
    const Slot* old_slots = slots_;
    const uint32_t* old_journal = journal_;
    const size_t old_size = size_;
    Allocate(cap);
    // The replay reads old slots in journal (insertion) order — random
    // within the old table, and DRAM-bound once tables outgrow the cache.
    // Unlike a hash-ordered probe, the journal names the access sequence in
    // advance, so prefetching a fixed distance ahead hides that latency.
    // Two-stage pipeline: fetch the old slot well ahead, then — once it has
    // arrived — rehash its key early to fetch the destination group's
    // control line (recomputing the hash at insert time costs a few ALU
    // uops; the miss it hides costs a DRAM round trip).
    constexpr size_t kPrefetchAhead = 16;
    for (size_t i = 0; i < old_size; ++i) {
      if (i + kPrefetchAhead < old_size) {
        __builtin_prefetch(&old_slots[old_journal[i + kPrefetchAhead]]);
      }
      if (i + kPrefetchAhead / 2 < old_size) {
        const uint64_t ahead =
            Hash(old_slots[old_journal[i + kPrefetchAhead / 2]].key);
        const size_t g = H1(ahead) & group_mask_;
        // Write-hint (rw=1) prefetches: both the control byte and the
        // destination slot are STORED to, and fetching the lines exclusive
        // up front spares the RFO upgrade a read-prefetch would leave for
        // the store to pay. The group's 16 slots span 4 cache lines; two
        // cover the low 8 slots, where the first empty lands while the
        // table is still filling.
        __builtin_prefetch(ctrl_ + g * kGroupWidth, 1);
        __builtin_prefetch(&slots_[g * kGroupWidth], 1);
        __builtin_prefetch(&slots_[g * kGroupWidth + kGroupWidth / 4], 1);
      }
      const Slot& slot = old_slots[old_journal[i]];
      const uint64_t h = Hash(slot.key);
      const size_t idx = FindFirstEmpty(h);
      ctrl_[idx] = H2(h);
      slots_[idx] = slot;
      journal_[size_] = static_cast<uint32_t>(idx);
      ++size_;
    }
  }

  void StealFrom(FlatHashMap2& other) noexcept {
    slot_arena_ = std::move(other.slot_arena_);
    aux_arena_ = std::move(other.aux_arena_);
    ctrl_ = other.ctrl_;
    slots_ = other.slots_;
    journal_ = other.journal_;
    capacity_ = other.capacity_;
    group_mask_ = other.group_mask_;
    growth_threshold_ = other.growth_threshold_;
    size_ = other.size_;
    other.ctrl_ = nullptr;
    other.slots_ = nullptr;
    other.journal_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
  }

  std::unique_ptr<char[]> slot_arena_;  ///< slot array (sized like v1's)
  std::unique_ptr<char[]> aux_arena_;   ///< [journal | ctrl], fused
  uint8_t* ctrl_ = nullptr;        ///< 1 byte per slot: kEmpty or 7-bit H2
  Slot* slots_ = nullptr;          ///< payload; valid only where ctrl is full
  uint32_t* journal_ = nullptr;    ///< occupied slot indices, insertion order
  size_t capacity_ = 0;            ///< total slots, a power of two >= 16
  size_t group_mask_ = 0;          ///< (capacity / 16) - 1
  size_t growth_threshold_ = 0;    ///< rehash when size_ would exceed this
  size_t size_ = 0;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_FLAT_HASH_MAP2_H_
