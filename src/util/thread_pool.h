// Process-wide fixed thread pool.
//
// Every concurrent path in the library — ParallelFor chunks, BatchQuery
// fan-out, the async QueryService — schedules onto one long-lived worker set
// instead of spawning std::threads per call, so sustained query load pays
// queue-push cost instead of thread-churn. Determinism is preserved by the
// callers: work is split into statically assigned chunks whose per-item
// seeds depend only on the item position, never on which worker runs them.

#ifndef PRSIM_UTIL_THREAD_POOL_H_
#define PRSIM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace prsim {

/// Number of workers to use by default: the PRSIM_THREADS environment
/// variable when set to a positive integer (the reproducible-concurrency
/// override used by tests and CI), otherwise hardware concurrency, and 1
/// when hardware_concurrency() reports 0 (permitted by the standard on
/// exotic platforms). Re-read on every call, so tests can setenv/unsetenv
/// around it; the Shared() pool samples it once at first use.
size_t DefaultThreadCount();

/// \brief Fixed-size worker pool with a FIFO work queue.
///
/// Tasks submitted through Submit() return a std::future that carries the
/// task's result or rethrows the exception it exited with — the same
/// propagation contract ParallelFor had with raw threads. Destruction is
/// graceful: already queued tasks run to completion, then workers join.
/// Submitting from inside a worker is allowed (the task is queued, not run
/// inline); *blocking* on such a task from a worker can deadlock a saturated
/// pool, which is why ParallelFor and BatchQuery degrade to serial execution
/// when called on a pool thread (see InWorker()).
class ThreadPool {
 public:
  /// Creates `threads` workers (0 = DefaultThreadCount()).
  explicit ThreadPool(size_t threads = 0);

  /// Runs every already queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns the future of its result. The future
  /// rethrows any exception `fn` exits with.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// The process-wide pool, created on first use with DefaultThreadCount()
  /// workers. ParallelFor and BatchQuery schedule here by default.
  static ThreadPool& Shared();

  /// True when the calling thread is a worker of *any* ThreadPool. Used by
  /// ParallelFor/BatchQuery to fall back to serial in-place execution for
  /// nested parallelism instead of risking a submit-and-wait deadlock
  /// (results are unchanged: chunking is static and seeds positional).
  static bool InWorker();

  /// Index of the calling worker within its pool in [0, size()), or
  /// `kNotAWorker` when called off-pool. Lets services keep one engine
  /// clone per worker without locking.
  static size_t WorkerIndex();

  /// True when the calling thread is one of *this* pool's workers —
  /// distinct from InWorker(), which matches workers of any pool. Lets a
  /// pool owner forbid only the re-entrant calls that could actually
  /// deadlock its own queue.
  bool OwnsCurrentThread() const;

  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop(size_t worker_index);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_THREAD_POOL_H_
