// Bounded-memory latency percentiles.
//
// The query service and batch layer record one wall-time sample per query
// and report p50/p95/p99. StreamingPercentiles keeps a fixed-size uniform
// reservoir (algorithm R with a deterministic internal generator), so memory
// stays O(capacity) under sustained load and quantiles are computed by
// nearest-rank over the retained sample — exact until the reservoir fills,
// an unbiased estimate after. Nearest-rank on one sorted sample makes the
// reported quantiles monotone by construction: p50 <= p95 <= p99 always.

#ifndef PRSIM_UTIL_PERCENTILES_H_
#define PRSIM_UTIL_PERCENTILES_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace prsim {

/// Nearest-rank quantile of an ascending-sorted sample; 0 when empty.
inline double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  PRSIM_DCHECK(q >= 0.0 && q <= 1.0);
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

class StreamingPercentiles {
 public:
  explicit StreamingPercentiles(size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Records one sample. Not thread-safe; callers serialize externally.
  void Add(double value) {
    ++count_;
    if (reservoir_.size() < capacity_) {
      reservoir_.push_back(value);
      return;
    }
    // Algorithm R: replace a uniformly random slot with probability
    // capacity / count. SplitMix64 keeps the stream deterministic.
    const uint64_t slot = NextRandom() % count_;
    if (slot < capacity_) reservoir_[static_cast<size_t>(slot)] = value;
  }

  /// Total samples observed (not just retained).
  uint64_t count() const { return count_; }

  /// Ascending copy of the retained sample; callers needing several
  /// quantiles sort once and feed SortedQuantile instead of paying one
  /// copy+sort per Quantile() call.
  std::vector<double> SortedSamples() const {
    std::vector<double> sorted = reservoir_;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }

  /// Nearest-rank quantile over the retained sample, q in [0, 1].
  double Quantile(double q) const { return SortedQuantile(SortedSamples(), q); }

 private:
  uint64_t NextRandom() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  size_t capacity_;
  uint64_t count_ = 0;
  uint64_t state_ = 0x5eed1e5500c0ffeeULL;
  std::vector<double> reservoir_;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_PERCENTILES_H_
