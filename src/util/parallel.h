// Deterministic chunked parallel-for, scheduled on the shared ThreadPool.
//
// Used for embarrassingly parallel work: per-hub backward searches during
// index construction and per-pair Monte Carlo ground-truth estimation. Chunk
// assignment is static, so any per-item seeding keyed off the item index stays
// deterministic regardless of thread count — and regardless of which pool
// worker executes which chunk.

#ifndef PRSIM_UTIL_PARALLEL_H_
#define PRSIM_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <future>
#include <vector>

#include "util/thread_pool.h"

namespace prsim {

/// Runs fn(i) for i in [begin, end) split into `threads` static chunks.
///
/// fn must be safe to invoke concurrently for distinct i. Items are divided
/// into contiguous chunks; chunk t covers the same index range it always
/// has, whichever worker runs it. Chunks 1.. are submitted to the shared
/// ThreadPool while the calling thread runs chunk 0, so a ParallelFor never
/// idles waiting for a saturated pool. If fn throws, the lowest-chunk
/// exception is rethrown on the calling thread after all chunks finish;
/// chunks run their remaining items to completion regardless of failures
/// elsewhere. Called from inside a pool worker (nested parallelism), it
/// degrades to serial in-place execution — blocking a worker on tasks that
/// need workers could deadlock, and static chunking makes the serial order
/// produce identical results.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, Fn&& fn, size_t threads = 0) {
  if (end <= begin) return;
  const size_t items = end - begin;
  if (threads == 0) threads = DefaultThreadCount();
  threads = std::min(threads, items);
  if (threads <= 1 || ThreadPool::InWorker()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const size_t chunk = (items + threads - 1) / threads;
  std::vector<std::future<void>> pending;
  pending.reserve(threads - 1);
  for (size_t t = 1; t < threads; ++t) {
    const size_t lo = begin + t * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pending.push_back(ThreadPool::Shared().Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_exception;
  try {
    const size_t hi = std::min(end, begin + chunk);
    for (size_t i = begin; i < hi; ++i) fn(i);
  } catch (...) {
    first_exception = std::current_exception();
  }
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (first_exception == nullptr) {
        first_exception = std::current_exception();
      }
    }
  }
  if (first_exception != nullptr) std::rethrow_exception(first_exception);
}

}  // namespace prsim

#endif  // PRSIM_UTIL_PARALLEL_H_
