// Deterministic chunked parallel-for built on std::thread.
//
// Used for embarrassingly parallel work: per-hub backward searches during
// index construction and per-pair Monte Carlo ground-truth estimation. Chunk
// assignment is static, so any per-item seeding keyed off the item index stays
// deterministic regardless of thread count.

#ifndef PRSIM_UTIL_PARALLEL_H_
#define PRSIM_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace prsim {

/// Number of workers to use by default: hardware concurrency, at least 1.
inline size_t DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// Runs fn(i) for i in [begin, end) across `threads` workers.
///
/// fn must be safe to invoke concurrently for distinct i. Items are divided
/// into contiguous chunks; worker t handles chunk t. If fn throws, the first
/// exception (in capture order) is rethrown on the calling thread after all
/// workers have joined; an exception escaping a std::thread would otherwise
/// call std::terminate. Workers whose chunk started before the failure run
/// their remaining items to completion.
template <typename Fn>
void ParallelFor(size_t begin, size_t end, Fn&& fn, size_t threads = 0) {
  if (end <= begin) return;
  const size_t items = end - begin;
  if (threads == 0) threads = DefaultThreadCount();
  threads = std::min(threads, items);
  if (threads <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::exception_ptr first_exception;
  std::mutex exception_mu;
  const size_t chunk = (items + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    const size_t lo = begin + t * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    workers.emplace_back([lo, hi, &fn, &first_exception, &exception_mu] {
      try {
        for (size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(exception_mu);
        if (first_exception == nullptr) {
          first_exception = std::current_exception();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  if (first_exception != nullptr) std::rethrow_exception(first_exception);
}

}  // namespace prsim

#endif  // PRSIM_UTIL_PARALLEL_H_
