// Deterministic fault injection for the serving stack.
//
// A fault point is a named site in the code (e.g. "net.read.err") that asks
// the process-global FaultInjector whether it should fail this time. Firing
// is driven by a seeded hash over (seed, point name, per-point evaluation
// index), so a spec like
//
//     net.read.err=1/50,engine.query.throw=1/100,worker.pickup.stall=1/20:5
//
// fires each point on a fixed pseudo-random subset of its evaluations: the
// k-th evaluation of point P fires iff mix(seed, hash(P), k) % den < num.
// The *set of firing indices* is a pure function of (spec, seed), so two
// runs with the same spec, seed, and per-point evaluation counts hit the
// same evaluations — the property the chaos CI job diffs on. (Which thread
// or request lands on a firing index can vary with interleaving for
// points evaluated concurrently; points evaluated once per request on a
// deterministic request stream replay exactly.)
//
// The optional ":<stall_ms>" suffix makes a firing evaluation sleep instead
// of (or before) failing — the shape worker-pickup stalls use.
//
// Cost when disabled: PRSIM_FAULT_POINT expands to one relaxed atomic load
// of a global bool (branch predicted not-taken); compiling with
// -DPRSIM_NO_FAULT_INJECTION removes even that, making the macro a literal
// constant-false no-op.
//
// Nothing here installs itself: production binaries opt in explicitly
// (prsim_cli's --faults / PRSIM_FAULTS, bench_serve_throughput's --faults).
// Test binaries configure the injector directly and Disable() it when done.

#ifndef PRSIM_UTIL_FAULT_INJECTION_H_
#define PRSIM_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace prsim {

/// Lifetime counters of one fault point, for the chaos-determinism diff.
struct FaultPointStats {
  std::string name;
  uint64_t evaluations = 0;  ///< times the point was consulted
  uint64_t fired = 0;        ///< times it injected a failure/stall
};

class FaultInjector {
 public:
  /// The process-global injector every PRSIM_FAULT_POINT consults.
  static FaultInjector& Global();

  /// Parses and installs a fault spec: comma-separated
  /// "name=num/den[:stall_ms]" terms (num <= den, den > 0). Replaces any
  /// previous configuration and resets all counters. An empty spec
  /// disables injection entirely. kInvalidArgument on malformed terms, in
  /// which case the previous configuration is left untouched.
  Status Configure(const std::string& spec, uint64_t seed);

  /// Removes every fault point and resets counters; PRSIM_FAULT_POINT goes
  /// back to its single-load fast path.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Consults the schedule for `name`. Advances the point's evaluation
  /// counter (when the point is configured) and returns the stall budget
  /// via *stall_ms when firing. Unconfigured names never fire and cost one
  /// hash-map miss — callers gate on enabled() via the macro first.
  bool ShouldFire(const char* name, uint64_t* stall_ms);

  /// Per-point counters, in configuration order.
  std::vector<FaultPointStats> Stats() const;

  /// Counters as one JSON line: {"event":"fault_stats","points":[...]}.
  /// Deterministic across same-spec/same-seed runs for request-granular
  /// points — the chaos job diffs this string.
  std::string StatsJson() const;

 private:
  struct Point {
    std::string name;
    uint64_t name_hash = 0;
    uint64_t num = 0;
    uint64_t den = 1;
    uint64_t stall_ms = 0;
    std::atomic<uint64_t> evaluations{0};
    std::atomic<uint64_t> fired{0};
  };

  Point* Find(const char* name);

  std::atomic<bool> enabled_{false};
  uint64_t seed_ = 0;
  /// Stable storage: ShouldFire holds Point* without a lock. Configure is
  /// not thread-safe against in-flight evaluations; callers install the
  /// spec before serving traffic (CLI startup, test setup).
  std::vector<std::unique_ptr<Point>> points_;
};

/// A Status carrying the injected failure for fault point `name` — used by
/// I/O sites that must surface the fault as an error return.
Status InjectedFault(const char* name);

}  // namespace prsim

/// True iff fault point `name` (a string literal) fires on this evaluation.
/// `stall_ms_out` is a uint64_t* receiving the stall budget (0 = none).
#ifdef PRSIM_NO_FAULT_INJECTION
// Constant-false, but still consumes the arguments so call sites compile
// warning-clean without #ifdefs of their own.
#define PRSIM_FAULT_POINT(name, stall_ms_out) \
  (static_cast<void>(name), static_cast<void>(stall_ms_out), false)
#else
#define PRSIM_FAULT_POINT(name, stall_ms_out)      \
  (::prsim::FaultInjector::Global().enabled() &&   \
   ::prsim::FaultInjector::Global().ShouldFire((name), (stall_ms_out)))
#endif

#endif  // PRSIM_UTIL_FAULT_INJECTION_H_
