#include "util/status.h"

namespace prsim {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace prsim
