// Deterministic fast random number generation.
//
// All stochastic components in this library draw from Rng, a xoshiro256**
// generator seeded through splitmix64. We avoid <random> engines on hot paths:
// std::mt19937_64 plus std::uniform_real_distribution costs several times more
// per draw than xoshiro and is not reproducible across standard libraries.

#ifndef PRSIM_UTIL_RNG_H_
#define PRSIM_UTIL_RNG_H_

#include <cstdint>

namespace prsim {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief xoshiro256** pseudo-random generator.
///
/// Period 2^256-1, passes BigCrush; ~1ns per draw. Not cryptographic.
class Rng {
 public:
  /// Seeds the four lanes from a single 64-bit seed via splitmix64, so that
  /// nearby seeds yield decorrelated streams.
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& lane : s_) lane = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  /// bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform uint32 in [0, bound); convenience for node ids.
  uint32_t NextIndex(uint32_t bound) {
    return static_cast<uint32_t>(NextBounded(bound));
  }

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Derives an independent child generator; used to hand deterministic
  /// per-thread / per-query streams out of one master seed.
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace prsim

#endif  // PRSIM_UTIL_RNG_H_
