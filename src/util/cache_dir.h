// Size-capped LRU maintenance for on-disk artifact cache directories.
//
// The bench index cache keys artifacts by (graph, engine, params), so
// parameter sweeps would grow it without bound. Recency is tracked through
// file mtimes: readers bump the mtime on every reuse (TouchFile), and
// EvictLruFiles removes oldest-mtime files until the directory fits the
// byte cap again. Everything is best-effort — a cache that cannot be
// trimmed (permissions, races with concurrent benches) degrades to a
// bigger cache, never to an error.

#ifndef PRSIM_UTIL_CACHE_DIR_H_
#define PRSIM_UTIL_CACHE_DIR_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace prsim {

struct CacheEvictionStats {
  size_t files_removed = 0;
  uint64_t bytes_removed = 0;
  /// Directory size after eviction (sum of remaining regular files).
  uint64_t bytes_remaining = 0;
};

/// Deletes oldest-mtime regular files directly inside `dir` (non-recursive)
/// until the total size is at most `max_bytes`. Files that vanish or fail
/// to delete mid-scan are skipped silently.
CacheEvictionStats EvictLruFiles(const std::string& dir, uint64_t max_bytes);

/// Bumps `path`'s mtime to now, marking it most-recently-used. Best-effort.
void TouchFile(const std::string& path);

}  // namespace prsim

#endif  // PRSIM_UTIL_CACHE_DIR_H_
