// Minimal leveled logging and assertion macros.
//
// Modeled after the CHECK/DCHECK idiom used by Arrow and RocksDB: CHECK fires
// in every build type and aborts with a message; DCHECK compiles out of
// release builds and guards algorithm invariants on hot paths.

#ifndef PRSIM_UTIL_LOGGING_H_
#define PRSIM_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace prsim {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

namespace internal {

/// Sink for one log statement; flushes (and aborts on kFatal) in destructor.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Global minimum level below which log statements are dropped.
/// Defaults to kInfo; tests may lower it, benches may raise it.
void SetLogThreshold(LogLevel level);
LogLevel GetLogThreshold();

}  // namespace prsim

#define PRSIM_LOG(level)                                                     \
  ::prsim::internal::LogMessage(::prsim::LogLevel::k##level, __FILE__, __LINE__)

#define PRSIM_CHECK(condition)                                               \
  if (!(condition))                                                          \
  PRSIM_LOG(Fatal) << "Check failed: " #condition " "

#define PRSIM_CHECK_OP(lhs, op, rhs)                                         \
  if (!((lhs)op(rhs)))                                                       \
  PRSIM_LOG(Fatal) << "Check failed: " #lhs " " #op " " #rhs " ("           \
                   << (lhs) << " vs " << (rhs) << ") "

#define PRSIM_CHECK_EQ(lhs, rhs) PRSIM_CHECK_OP(lhs, ==, rhs)
#define PRSIM_CHECK_NE(lhs, rhs) PRSIM_CHECK_OP(lhs, !=, rhs)
#define PRSIM_CHECK_LT(lhs, rhs) PRSIM_CHECK_OP(lhs, <, rhs)
#define PRSIM_CHECK_LE(lhs, rhs) PRSIM_CHECK_OP(lhs, <=, rhs)
#define PRSIM_CHECK_GT(lhs, rhs) PRSIM_CHECK_OP(lhs, >, rhs)
#define PRSIM_CHECK_GE(lhs, rhs) PRSIM_CHECK_OP(lhs, >=, rhs)

#ifdef NDEBUG
#define PRSIM_DCHECK(condition) \
  while (false) PRSIM_CHECK(condition)
#define PRSIM_DCHECK_LT(lhs, rhs) \
  while (false) PRSIM_CHECK_LT(lhs, rhs)
#define PRSIM_DCHECK_LE(lhs, rhs) \
  while (false) PRSIM_CHECK_LE(lhs, rhs)
#else
#define PRSIM_DCHECK(condition) PRSIM_CHECK(condition)
#define PRSIM_DCHECK_LT(lhs, rhs) PRSIM_CHECK_LT(lhs, rhs)
#define PRSIM_DCHECK_LE(lhs, rhs) PRSIM_CHECK_LE(lhs, rhs)
#endif

#endif  // PRSIM_UTIL_LOGGING_H_
