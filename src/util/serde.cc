#include "util/serde.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/fault_injection.h"

namespace prsim {

namespace {

constexpr char kMagic[8] = {'P', 'R', 'S', 'I', 'M', 'A', 'R', 'T'};
constexpr uint64_t kTrailerBytes = sizeof(uint64_t);
/// Cap enforced symmetrically by WriteString and ReadString.
constexpr uint32_t kMaxStringLength = 256;

/// Temp-file names must be unique per writer, not just per process: two
/// threads saving the same path must not truncate each other's temp.
std::string UniqueTmpPath(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

BinaryWriter::BinaryWriter(const std::string& path, const std::string& kind,
                           uint32_t version)
    : path_(path), tmp_path_(UniqueTmpPath(path)) {
  out_.open(tmp_path_, std::ios::binary);
  if (!out_) {
    status_ = Status::IOError("cannot open '" + path + "' for writing");
    return;
  }
  Append(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(version);
  WriteString(kind);
}

BinaryWriter::~BinaryWriter() {
  if (!finished_) {
    // Abandoned or failed write: drop the temporary, leaving any previous
    // artifact at path_ untouched.
    out_.close();
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
  }
}

void BinaryWriter::Append(const void* data, size_t len) {
  if (!status_.ok() || len == 0) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(len));
  if (!out_) {
    status_ = Status::IOError("write failure on '" + path_ + "'");
    return;
  }
  checksum_.Update(data, len);
}

void BinaryWriter::WriteString(const std::string& s) {
  if (status_.ok() && s.size() > kMaxStringLength) {
    status_ = Status::InvalidArgument(
        "string of " + std::to_string(s.size()) +
        " bytes exceeds the artifact string cap of " +
        std::to_string(kMaxStringLength));
    return;
  }
  WritePod<uint32_t>(static_cast<uint32_t>(s.size()));
  Append(s.data(), s.size());
}

Status BinaryWriter::Finish() {
  if (status_.ok() && !finished_) {
    const uint64_t digest = checksum_.digest();
    out_.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
    out_.close();
    if (!out_) {
      status_ = Status::IOError("write failure on '" + path_ + "'");
    } else {
      std::error_code ec;
      std::filesystem::rename(tmp_path_, path_, ec);
      if (ec) {
        status_ = Status::IOError("cannot move temporary into '" + path_ +
                                  "': " + ec.message());
      } else {
        finished_ = true;
      }
    }
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path, const std::string& kind,
                           uint32_t version)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) {
    status_ = Status::IOError("cannot open '" + path + "' for reading");
    return;
  }
  in_.seekg(0, std::ios::end);
  const auto file_size = static_cast<uint64_t>(in_.tellg());
  in_.seekg(0, std::ios::beg);
  // Smallest well-formed artifact: magic + version + empty kind + trailer.
  if (file_size < sizeof(kMagic) + sizeof(uint32_t) * 2 + kTrailerBytes) {
    status_ = Status::IOError("'" + path + "' is too short to be an artifact");
    return;
  }
  payload_end_ = file_size - kTrailerBytes;

  char magic[sizeof(kMagic)];
  if (Status st = Consume(magic, sizeof(magic)); !st.ok()) return;
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    status_ = Status::IOError("'" + path + "' is not a prsim artifact");
    return;
  }
  uint32_t stored_version = 0;
  if (Status st = ReadPod(&stored_version); !st.ok()) return;
  if (stored_version != version) {
    status_ = Status::IOError(
        "'" + path + "' has artifact version " +
        std::to_string(stored_version) + "; this build reads version " +
        std::to_string(version));
    return;
  }
  std::string stored_kind;
  if (Status st = ReadString(&stored_kind); !st.ok()) return;
  if (stored_kind != kind) {
    status_ = Status::IOError("'" + path + "' holds a '" + stored_kind +
                              "' artifact, expected '" + kind + "'");
  }
}

Status BinaryReader::Consume(void* dst, size_t len) {
  if (!status_.ok()) return status_;
  if (len == 0) return Status::OK();
  if (len > remaining()) {
    return Corrupt("truncated (wanted " + std::to_string(len) +
                   " bytes, have " + std::to_string(remaining()) + ")");
  }
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(len));
  if (!in_) return Corrupt("read failure");
  checksum_.Update(dst, len);
  pos_ += len;
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* out) {
  uint32_t len = 0;
  PRSIM_RETURN_NOT_OK(ReadPod(&len));
  if (len > kMaxStringLength || len > remaining()) {
    return Corrupt("string length " + std::to_string(len) + " out of range");
  }
  out->resize(len);
  return Consume(out->data(), len);
}

Status BinaryReader::Finish() {
  if (!status_.ok()) return status_;
  if (pos_ != payload_end_) {
    return Corrupt(std::to_string(payload_end_ - pos_) +
                   " unread payload bytes before the checksum trailer");
  }
  uint64_t stored = 0;
  in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in_) return Corrupt("missing checksum trailer");
  if (stored != checksum_.digest()) {
    return Corrupt("checksum mismatch (file corrupt)");
  }
  return Status::OK();
}

Status BinaryReader::Corrupt(const std::string& what) {
  status_ = Status::IOError("corrupt artifact '" + path_ + "': " + what);
  return status_;
}

namespace {

/// Sections start on cache-line boundaries so element data after a u64
/// count prefix stays 8-byte aligned for zero-copy views.
constexpr uint64_t kSectionAlignment = 64;
constexpr uint32_t kMaxSections = 1024;

uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

}  // namespace

void ByteSink::Append(const void* data, size_t len) {
  if (!status_.ok() || len == 0) return;
  buffer_.append(static_cast<const char*>(data), len);
}

void ByteSink::WriteString(const std::string& s) {
  if (status_.ok() && s.size() > kMaxStringLength) {
    status_ = Status::InvalidArgument(
        "string of " + std::to_string(s.size()) +
        " bytes exceeds the artifact string cap of " +
        std::to_string(kMaxStringLength));
    return;
  }
  WritePod<uint32_t>(static_cast<uint32_t>(s.size()));
  Append(s.data(), s.size());
}

ArtifactWriter::ArtifactWriter(const std::string& path,
                               const std::string& kind)
    : path_(path), kind_(kind) {}

ByteSink& ArtifactWriter::AddSection(const std::string& name) {
  if (status_.ok()) {
    if (name.empty() || name.size() > kMaxStringLength) {
      status_ = Status::InvalidArgument("bad section name '" + name + "'");
    } else if (sections_.size() >= kMaxSections) {
      status_ = Status::InvalidArgument("too many artifact sections");
    } else {
      for (const auto& [existing, sink] : sections_) {
        if (existing == name) {
          status_ = Status::InvalidArgument("duplicate artifact section '" +
                                            name + "'");
          break;
        }
      }
    }
  }
  sections_.emplace_back(name, std::make_unique<ByteSink>());
  return *sections_.back().second;
}

Status ArtifactWriter::Finish() {
  if (finished_) return status_;
  if (status_.ok()) {
    for (const auto& [name, sink] : sections_) {
      if (!sink->status().ok()) {
        status_ = sink->status();
        break;
      }
    }
  }
  if (!status_.ok()) return status_;
  finished_ = true;

  // Header: envelope, then the table, then a checksum over both.
  ByteSink header;
  header.WriteElements(kMagic, sizeof(kMagic));
  header.WritePod<uint32_t>(kSerdeFormatV2);
  header.WriteString(kind_);
  header.WritePod<uint32_t>(static_cast<uint32_t>(sections_.size()));
  // Table entry sizes are known up front, so section offsets can be
  // computed before the table is serialized.
  uint64_t header_size =
      header.bytes().size() + sizeof(uint64_t);  // + header checksum
  for (const auto& [name, sink] : sections_) {
    header_size += sizeof(uint32_t) + name.size() + 3 * sizeof(uint64_t);
  }
  std::vector<SectionInfo> table;
  table.reserve(sections_.size());
  uint64_t cursor = AlignUp(header_size);
  for (const auto& [name, sink] : sections_) {
    SectionInfo info;
    info.name = name;
    info.offset = cursor;
    info.length = sink->bytes().size();
    info.checksum = HashBytes(sink->bytes().data(), sink->bytes().size());
    cursor = AlignUp(cursor + info.length);
    table.push_back(std::move(info));
  }
  for (const SectionInfo& info : table) {
    header.WriteString(info.name);
    header.WritePod(info.offset);
    header.WritePod(info.length);
    header.WritePod(info.checksum);
  }
  if (!header.status().ok()) return status_ = header.status();
  const uint64_t header_checksum =
      HashBytes(header.bytes().data(), header.bytes().size());
  header.WritePod(header_checksum);
  PRSIM_CHECK(header.bytes().size() == header_size);

  const std::string tmp_path = UniqueTmpPath(path_);
  std::ofstream out(tmp_path, std::ios::binary);
  if (!out) {
    return status_ =
               Status::IOError("cannot open '" + path_ + "' for writing");
  }
  out.write(header.bytes().data(),
            static_cast<std::streamsize>(header.bytes().size()));
  uint64_t written = header.bytes().size();
  static constexpr char kZeros[kSectionAlignment] = {};
  for (size_t i = 0; i < table.size(); ++i) {
    out.write(kZeros, static_cast<std::streamsize>(table[i].offset - written));
    const std::string& bytes = sections_[i].second->bytes();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    written = table[i].offset + table[i].length;
  }
  out.close();
  if (!out) {
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);
    return status_ = Status::IOError("write failure on '" + path_ + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path_, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return status_ = Status::IOError("cannot move temporary into '" + path_ +
                                     "': " + ec.message());
  }
  return status_;
}

Status SectionReader::Consume(void* dst, size_t len) {
  if (len == 0) return Status::OK();
  if (len > remaining()) {
    return Corrupt("truncated (wanted " + std::to_string(len) +
                   " bytes, have " + std::to_string(remaining()) + ")");
  }
  std::memcpy(dst, data_.data() + *pos_, len);
  *pos_ += len;
  return Status::OK();
}

Status SectionReader::ReadString(std::string* out) {
  uint32_t len = 0;
  PRSIM_RETURN_NOT_OK(ReadPod(&len));
  if (len > kMaxStringLength || len > remaining()) {
    return Corrupt("string length " + std::to_string(len) + " out of range");
  }
  out->resize(len);
  return Consume(out->data(), len);
}

Status SectionReader::Finish() {
  if (*pos_ != data_.size()) {
    return Corrupt(std::to_string(data_.size() - *pos_) +
                   " unread bytes at the end of the section");
  }
  return Status::OK();
}

Status SectionReader::Corrupt(const std::string& what) const {
  return Status::InvalidArgument("corrupt artifact '" + path_ + "': " + what);
}

Result<ArtifactReader> ArtifactReader::Open(const std::string& path,
                                            const std::string& kind,
                                            const Options& options) {
  PRSIM_ASSIGN_OR_RETURN(std::shared_ptr<const MmapFile> file,
                         MmapFile::Open(path, options.allow_mmap));
  const std::byte* base = file->data();
  const uint64_t size = file->size();
  const auto corrupt = [&path](const std::string& what) {
    return Status::InvalidArgument("corrupt artifact '" + path + "': " +
                                   what);
  };

  // Envelope prefix, common to both formats. A shared cursor bounds the
  // header reads; v1 reuses it afterwards as the payload cursor.
  auto cursor = std::make_shared<size_t>(0);
  SectionReader header(path, {base, static_cast<size_t>(size)}, cursor,
                       nullptr);
  if (size < sizeof(kMagic) + sizeof(uint32_t) * 2 + kTrailerBytes) {
    return Status::IOError("'" + path + "' is too short to be an artifact");
  }
  char magic[sizeof(kMagic)];
  PRSIM_RETURN_NOT_OK(header.ReadElements(magic, sizeof(magic)));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::IOError("'" + path + "' is not a prsim artifact");
  }
  uint32_t stored_version = 0;
  PRSIM_RETURN_NOT_OK(header.ReadPod(&stored_version));
  if (stored_version != kSerdeFormatV1 && stored_version != kSerdeFormatV2) {
    return Status::IOError(
        "'" + path + "' has artifact version " +
        std::to_string(stored_version) + "; this build reads versions " +
        std::to_string(kSerdeFormatV1) + " and " +
        std::to_string(kSerdeFormatV2));
  }
  std::string stored_kind;
  if (!header.ReadString(&stored_kind).ok()) {
    return corrupt("unreadable kind string");
  }
  if (stored_kind != kind) {
    return Status::IOError("'" + path + "' holds a '" + stored_kind +
                           "' artifact, expected '" + kind + "'");
  }

  ArtifactReader reader;
  reader.file_ = std::move(file);
  reader.path_ = path;
  reader.version_ = stored_version;
  reader.verify_checksums_ = options.verify_checksums;

  if (stored_version == kSerdeFormatV1) {
    // Legacy layout: [envelope][payload][u64 checksum over all but itself].
    reader.v1_payload_begin_ = *cursor;
    reader.v1_payload_end_ = size - kTrailerBytes;
    if (reader.v1_payload_end_ < reader.v1_payload_begin_) {
      return corrupt("payload overlaps the checksum trailer");
    }
    if (options.verify_checksums) {
      uint64_t stored_checksum = 0;
      std::memcpy(&stored_checksum, base + reader.v1_payload_end_,
                  sizeof(stored_checksum));
      if (HashBytes(base, reader.v1_payload_end_) != stored_checksum) {
        return corrupt("checksum mismatch (file corrupt)");
      }
    }
    reader.v1_cursor_ = std::make_shared<size_t>(0);
    return reader;
  }

  uint32_t section_count = 0;
  if (!header.ReadPod(&section_count).ok() || section_count > kMaxSections) {
    return corrupt("bad section count");
  }
  reader.sections_.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    SectionInfo info;
    if (!header.ReadString(&info.name).ok() ||
        !header.ReadPod(&info.offset).ok() ||
        !header.ReadPod(&info.length).ok() ||
        !header.ReadPod(&info.checksum).ok()) {
      return corrupt("truncated section table");
    }
    if (info.offset % kSectionAlignment != 0 || info.offset > size ||
        info.length > size - info.offset) {
      return corrupt("section '" + info.name + "' is out of bounds");
    }
    for (const SectionInfo& prior : reader.sections_) {
      if (prior.name == info.name) {
        return corrupt("duplicate section '" + info.name + "'");
      }
    }
    reader.sections_.push_back(std::move(info));
  }
  const uint64_t table_end = *cursor;
  uint64_t stored_header_checksum = 0;
  PRSIM_RETURN_NOT_OK(header.ReadPod(&stored_header_checksum));
  if (options.verify_checksums &&
      HashBytes(base, table_end) != stored_header_checksum) {
    return corrupt("header checksum mismatch");
  }
  return reader;
}

Result<SectionReader> ArtifactReader::Section(const std::string& name) const {
  uint64_t stall_ms = 0;
  if (PRSIM_FAULT_POINT("artifact.section.err", &stall_ms)) {
    // Injected storage failure: looks exactly like an unreadable section,
    // exercising every loader's corrupt-artifact error path.
    return InjectedFault("artifact.section.err");
  }
  const std::byte* base = file_->data();
  if (version_ == kSerdeFormatV1) {
    // Shared cursor over the legacy payload: sections are positional.
    return SectionReader(
        path_,
        {base + v1_payload_begin_,
         static_cast<size_t>(v1_payload_end_ - v1_payload_begin_)},
        v1_cursor_, file_);
  }
  for (const SectionInfo& info : sections_) {
    if (info.name != name) continue;
    if (verify_checksums_ &&
        HashBytes(base + info.offset, info.length) != info.checksum) {
      return Status::InvalidArgument("corrupt artifact '" + path_ +
                                     "': section '" + name +
                                     "' checksum mismatch");
    }
    return SectionReader(path_,
                         {base + info.offset,
                          static_cast<size_t>(info.length)},
                         std::make_shared<size_t>(0), file_);
  }
  return Status::InvalidArgument("corrupt artifact '" + path_ +
                                 "': missing section '" + name + "'");
}

}  // namespace prsim
