#include "util/serde.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace prsim {

namespace {

constexpr char kMagic[8] = {'P', 'R', 'S', 'I', 'M', 'A', 'R', 'T'};
constexpr uint64_t kTrailerBytes = sizeof(uint64_t);
/// Cap enforced symmetrically by WriteString and ReadString.
constexpr uint32_t kMaxStringLength = 256;

/// Temp-file names must be unique per writer, not just per process: two
/// threads saving the same path must not truncate each other's temp.
std::string UniqueTmpPath(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

BinaryWriter::BinaryWriter(const std::string& path, const std::string& kind,
                           uint32_t version)
    : path_(path), tmp_path_(UniqueTmpPath(path)) {
  out_.open(tmp_path_, std::ios::binary);
  if (!out_) {
    status_ = Status::IOError("cannot open '" + path + "' for writing");
    return;
  }
  Append(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(version);
  WriteString(kind);
}

BinaryWriter::~BinaryWriter() {
  if (!finished_) {
    // Abandoned or failed write: drop the temporary, leaving any previous
    // artifact at path_ untouched.
    out_.close();
    std::error_code ec;
    std::filesystem::remove(tmp_path_, ec);
  }
}

void BinaryWriter::Append(const void* data, size_t len) {
  if (!status_.ok() || len == 0) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(len));
  if (!out_) {
    status_ = Status::IOError("write failure on '" + path_ + "'");
    return;
  }
  checksum_.Update(data, len);
}

void BinaryWriter::WriteString(const std::string& s) {
  if (status_.ok() && s.size() > kMaxStringLength) {
    status_ = Status::InvalidArgument(
        "string of " + std::to_string(s.size()) +
        " bytes exceeds the artifact string cap of " +
        std::to_string(kMaxStringLength));
    return;
  }
  WritePod<uint32_t>(static_cast<uint32_t>(s.size()));
  Append(s.data(), s.size());
}

Status BinaryWriter::Finish() {
  if (status_.ok() && !finished_) {
    const uint64_t digest = checksum_.digest();
    out_.write(reinterpret_cast<const char*>(&digest), sizeof(digest));
    out_.close();
    if (!out_) {
      status_ = Status::IOError("write failure on '" + path_ + "'");
    } else {
      std::error_code ec;
      std::filesystem::rename(tmp_path_, path_, ec);
      if (ec) {
        status_ = Status::IOError("cannot move temporary into '" + path_ +
                                  "': " + ec.message());
      } else {
        finished_ = true;
      }
    }
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path, const std::string& kind,
                           uint32_t version)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) {
    status_ = Status::IOError("cannot open '" + path + "' for reading");
    return;
  }
  in_.seekg(0, std::ios::end);
  const auto file_size = static_cast<uint64_t>(in_.tellg());
  in_.seekg(0, std::ios::beg);
  // Smallest well-formed artifact: magic + version + empty kind + trailer.
  if (file_size < sizeof(kMagic) + sizeof(uint32_t) * 2 + kTrailerBytes) {
    status_ = Status::IOError("'" + path + "' is too short to be an artifact");
    return;
  }
  payload_end_ = file_size - kTrailerBytes;

  char magic[sizeof(kMagic)];
  if (Status st = Consume(magic, sizeof(magic)); !st.ok()) return;
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    status_ = Status::IOError("'" + path + "' is not a prsim artifact");
    return;
  }
  uint32_t stored_version = 0;
  if (Status st = ReadPod(&stored_version); !st.ok()) return;
  if (stored_version != version) {
    status_ = Status::IOError(
        "'" + path + "' has artifact version " +
        std::to_string(stored_version) + "; this build reads version " +
        std::to_string(version));
    return;
  }
  std::string stored_kind;
  if (Status st = ReadString(&stored_kind); !st.ok()) return;
  if (stored_kind != kind) {
    status_ = Status::IOError("'" + path + "' holds a '" + stored_kind +
                              "' artifact, expected '" + kind + "'");
  }
}

Status BinaryReader::Consume(void* dst, size_t len) {
  if (!status_.ok()) return status_;
  if (len == 0) return Status::OK();
  if (len > remaining()) {
    return Corrupt("truncated (wanted " + std::to_string(len) +
                   " bytes, have " + std::to_string(remaining()) + ")");
  }
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(len));
  if (!in_) return Corrupt("read failure");
  checksum_.Update(dst, len);
  pos_ += len;
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* out) {
  uint32_t len = 0;
  PRSIM_RETURN_NOT_OK(ReadPod(&len));
  if (len > kMaxStringLength || len > remaining()) {
    return Corrupt("string length " + std::to_string(len) + " out of range");
  }
  out->resize(len);
  return Consume(out->data(), len);
}

Status BinaryReader::Finish() {
  if (!status_.ok()) return status_;
  if (pos_ != payload_end_) {
    return Corrupt(std::to_string(payload_end_ - pos_) +
                   " unread payload bytes before the checksum trailer");
  }
  uint64_t stored = 0;
  in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in_) return Corrupt("missing checksum trailer");
  if (stored != checksum_.digest()) {
    return Corrupt("checksum mismatch (file corrupt)");
  }
  return Status::OK();
}

Status BinaryReader::Corrupt(const std::string& what) {
  status_ = Status::IOError("corrupt artifact '" + path_ + "': " + what);
  return status_;
}

}  // namespace prsim
