#include "util/mmap_file.h"

#include <cstdio>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PRSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PRSIM_HAVE_MMAP 0
#endif

namespace prsim {

namespace {

/// Reads the whole file into `out` with plain stdio; the portable path.
Status ReadWholeFile(const std::string& path, std::vector<std::byte>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot size '" + path + "'");
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  const size_t got = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (got != out->size()) {
    return Status::IOError("short read on '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

Result<std::shared_ptr<const MmapFile>> MmapFile::Open(const std::string& path,
                                                       bool allow_mmap) {
  // make_shared needs a public constructor; this local subclass keeps the
  // real one private.
  struct Openable : MmapFile {};
  auto file = std::make_shared<Openable>();
  file->path_ = path;

#if PRSIM_HAVE_MMAP
  if (allow_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError("cannot open '" + path + "' for reading");
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::IOError("cannot stat '" + path + "'");
    }
    const auto size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      // mmap of length 0 is unspecified; an empty file needs no region.
      ::close(fd);
      return std::shared_ptr<const MmapFile>(std::move(file));
    }
    void* region = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping holds its own reference to the file
    if (region != MAP_FAILED) {
      file->data_ = static_cast<const std::byte*>(region);
      file->size_ = size;
      file->mapped_ = true;
      return std::shared_ptr<const MmapFile>(std::move(file));
    }
    // Fall through to the heap path (e.g. a filesystem without mmap).
  }
#else
  (void)allow_mmap;
#endif

  PRSIM_RETURN_NOT_OK(ReadWholeFile(path, &file->heap_));
  file->data_ = file->heap_.data();
  file->size_ = file->heap_.size();
  return std::shared_ptr<const MmapFile>(std::move(file));
}

MmapFile::~MmapFile() {
#if PRSIM_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
}

}  // namespace prsim
