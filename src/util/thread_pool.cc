#include "util/thread_pool.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/parse.h"

namespace prsim {

namespace {

/// Worker identity of the calling thread (owning pool + index within it);
/// null/kNotAWorker off-pool. One slot per thread is enough: a thread
/// belongs to at most one pool.
thread_local const ThreadPool* tls_worker_pool = nullptr;
thread_local size_t tls_worker_index = ThreadPool::kNotAWorker;

}  // namespace

size_t DefaultThreadCount() {
  if (const char* env = std::getenv("PRSIM_THREADS");
      env != nullptr && env[0] != '\0') {
    uint64_t value = 0;
    if (ParseUint64(env, &value) && value >= 1) {
      return static_cast<size_t>(value);
    }
    PRSIM_LOG(Warning) << "ignoring invalid PRSIM_THREADS='" << env << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = DefaultThreadCount();
  workers_.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { WorkerLoop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PRSIM_CHECK(!stopping_) << "Submit() on a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  tls_worker_pool = this;
  tls_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A packaged_task never lets an exception escape — it lands in the
    // future — so `task()` cannot terminate the worker.
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();  // leaked: outlive all users
  return *pool;
}

bool ThreadPool::InWorker() { return tls_worker_pool != nullptr; }

size_t ThreadPool::WorkerIndex() { return tls_worker_index; }

bool ThreadPool::OwnsCurrentThread() const {
  return tls_worker_pool == this;
}

}  // namespace prsim
