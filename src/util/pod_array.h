// Owned-or-viewed immutable POD array.
//
// PodArray<T> is the currency of the zero-copy artifact path: it either owns
// a std::vector<T> (the parse path, and every in-memory builder) or views a
// span of T inside a mapped artifact, holding the mapping alive through a
// type-erased keepalive. Readers stay oblivious — data()/size()/operator[]
// behave identically in both states — so CSR arrays built by FromEdges and
// CSR arrays mapped from a format-v2 snapshot flow through the same code.

#ifndef PRSIM_UTIL_POD_ARRAY_H_
#define PRSIM_UTIL_POD_ARRAY_H_

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace prsim {

template <typename T>
class PodArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "PodArray requires a byte-copyable element type");

 public:
  PodArray() = default;

  /// Takes ownership of `v` (the parse / in-memory build path).
  PodArray(std::vector<T> v)  // NOLINT: implicit by design, mirrors vector
      : vec_(std::move(v)), view_(vec_) {}

  /// Views `s`, keeping `keepalive` (typically the MmapFile backing an
  /// artifact) alive for the lifetime of this array.
  static PodArray View(std::span<const T> s,
                       std::shared_ptr<const void> keepalive) {
    PodArray a;
    a.keepalive_ = std::move(keepalive);
    a.view_ = s;
    return a;
  }

  // Copies materialize (a copy must not share the source's storage without
  // its keepalive); moves carry the view because vector moves keep the heap
  // buffer's address.
  PodArray(const PodArray& other)
      : vec_(other.begin(), other.end()), view_(vec_) {}
  PodArray& operator=(const PodArray& other) {
    if (this != &other) *this = PodArray(other);
    return *this;
  }
  PodArray(PodArray&& other) noexcept
      : vec_(std::move(other.vec_)),
        keepalive_(std::move(other.keepalive_)),
        view_(other.view_) {
    other.view_ = {};
  }
  PodArray& operator=(PodArray&& other) noexcept {
    if (this != &other) {
      vec_ = std::move(other.vec_);
      keepalive_ = std::move(other.keepalive_);
      view_ = other.view_;
      other.view_ = {};
    }
    return *this;
  }

  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](size_t i) const { return view_[i]; }
  const T& front() const { return view_.front(); }
  const T& back() const { return view_.back(); }
  const T* begin() const { return view_.data(); }
  const T* end() const { return view_.data() + view_.size(); }
  std::span<const T> span() const { return view_; }

  /// True when this array views external storage instead of owning a copy.
  bool zero_copy() const { return keepalive_ != nullptr; }

 private:
  std::vector<T> vec_;
  std::shared_ptr<const void> keepalive_;
  std::span<const T> view_;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_POD_ARRAY_H_
