// Open-addressing hash map keyed by 64-bit integers (v1).
//
// The query hot paths (accumulators, eta*pi estimators, backward-walk
// frontiers, builder remap, pooling) have moved to util/flat_hash_map2.h,
// which adds SwissTable-style metadata probing, a wyhash mixer, and an
// O(size) clear. v1 remains for the consumers whose OUTPUT BITS depend on
// its slot iteration order — BackwardSearch (reserve-list float sums feed
// the PRSim index artifact), ProbeSim, and TopSim all accumulate floats or
// break ties while iterating ForEach in slot order, so changing their hash
// would silently change answers. Compared to std::unordered_map this is
// still ~4-6x faster for the accumulate pattern: linear probing over a
// flat array, no per-node allocation.
//
// Restrictions (by design, checked):
//  * keys are uint64_t; the sentinel kEmptyKey (u64 max) cannot be inserted;
//  * erase is not supported (none of our algorithms delete entries);
//  * values must be default-constructible.

#ifndef PRSIM_UTIL_FLAT_HASH_MAP_H_
#define PRSIM_UTIL_FLAT_HASH_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace prsim {

/// Hard ceiling on the slot count of either flat map (v1 here,
/// util/flat_hash_map2.h): 2^31 slots. Far above any reachable workspace
/// size, low enough that the power-of-two doubling loops can never wrap or
/// spin on a huge (or corrupted) requested capacity, and it keeps v2's
/// 32-bit occupied-slot journal indices exact.
inline constexpr size_t kMaxMapCapacity = size_t{1} << 31;

template <typename V>
class FlatHashMap {
 public:
  static constexpr uint64_t kEmptyKey = ~0ULL;

  explicit FlatHashMap(size_t initial_capacity = 16) {
    PRSIM_CHECK(initial_capacity <= kMaxMapCapacity / 2)
        << "FlatHashMap: requested capacity " << initial_capacity
        << " exceeds the " << kMaxMapCapacity << "-slot limit";
    size_t cap = 16;
    while (cap < initial_capacity * 2) cap <<= 1;
    slots_.assign(cap, Slot{kEmptyKey, V{}});
    mask_ = cap - 1;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Empties the map while KEEPING the slot array capacity — the pooled
  /// query workspaces rely on this so steady-state reuse never reallocates
  /// (capacity() is the probe the workspace-reuse tests watch). Free when
  /// already empty, so clearing as a reuse guard costs nothing.
  void clear() {
    if (size_ == 0) return;
    for (auto& slot : slots_) slot.key = kEmptyKey;
    size_ = 0;
  }

  /// Returns a reference to the value for `key`, inserting a
  /// default-constructed value if absent. Probes BEFORE any growth
  /// decision: a lookup of a present key at the load-factor boundary must
  /// not rehash, so retained capacity stays a pure function of the insert
  /// count (the workspace-reuse determinism contract).
  V& operator[](uint64_t key) {
    PRSIM_DCHECK(key != kEmptyKey);
    size_t idx = Probe(key);
    if (slots_[idx].key == kEmptyKey) {
      if ((size_ + 1) * 4 >= slots_.size() * 3) {
        Grow();
        idx = Probe(key);
      }
      slots_[idx].key = key;
      // clear() only resets keys, so a reused slot may hold a stale value.
      slots_[idx].value = V{};
      ++size_;
    }
    return slots_[idx].value;
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  const V* Find(uint64_t key) const {
    size_t idx = Hash(key) & mask_;
    while (true) {
      const Slot& slot = slots_[idx];
      if (slot.key == key) return &slot.value;
      if (slot.key == kEmptyKey) return nullptr;
      idx = (idx + 1) & mask_;
    }
  }
  V* Find(uint64_t key) {
    return const_cast<V*>(static_cast<const FlatHashMap*>(this)->Find(key));
  }

  bool Contains(uint64_t key) const { return Find(key) != nullptr; }

  /// Iterates over occupied slots; `fn(key, value)`.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (auto& slot : slots_) {
      if (slot.key != kEmptyKey) fn(slot.key, slot.value);
    }
  }

  /// Materializes entries as a vector of (key, value) pairs, unordered.
  std::vector<std::pair<uint64_t, V>> ToVector() const {
    std::vector<std::pair<uint64_t, V>> out;
    out.reserve(size_);
    ForEach([&](uint64_t k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  size_t capacity() const { return slots_.size(); }

  /// Ensures capacity() >= slot_count (rounded up to a power of two),
  /// rehashing any current entries. Lets paired scratch maps equalize their
  /// retained capacities so growth decisions stay deterministic across
  /// reuse (see BackwardWalker).
  void Reserve(size_t slot_count) {
    PRSIM_CHECK(slot_count <= kMaxMapCapacity)
        << "FlatHashMap::Reserve: requested capacity " << slot_count
        << " exceeds the " << kMaxMapCapacity << "-slot limit";
    size_t cap = slots_.size();
    while (cap < slot_count) cap <<= 1;
    if (cap == slots_.size()) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{kEmptyKey, V{}});
    mask_ = cap - 1;
    size_ = 0;
    for (auto& slot : old) {
      if (slot.key != kEmptyKey) {
        size_t idx = Probe(slot.key);
        slots_[idx].key = slot.key;
        slots_[idx].value = std::move(slot.value);
        ++size_;
      }
    }
  }

  /// Approximate heap footprint in bytes.
  size_t MemoryBytes() const { return slots_.size() * sizeof(Slot); }

  /// Number of slots a Find(key) inspects — instrumentation for the
  /// microbench's accidentally-quadratic probe detector.
  size_t FindProbeCost(uint64_t key) const {
    size_t idx = Hash(key) & mask_;
    size_t touched = 1;
    while (slots_[idx].key != kEmptyKey && slots_[idx].key != key) {
      idx = (idx + 1) & mask_;
      ++touched;
    }
    return touched;
  }

 private:
  struct Slot {
    uint64_t key;
    V value;
  };

  static size_t Hash(uint64_t key) {
    // Fibonacci-style multiplicative mixing; keys are small node ids, so a
    // plain modulo mask would cluster badly.
    uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }

  size_t Probe(uint64_t key) const {
    size_t idx = Hash(key) & mask_;
    while (slots_[idx].key != kEmptyKey && slots_[idx].key != key) {
      idx = (idx + 1) & mask_;
    }
    return idx;
  }

  void Grow() { Reserve(slots_.size() * 2); }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Returns the value slot for `key`, appending first-seen keys to `keys`.
/// The insertion-order companion of operator[], generic over the map
/// flavor (FlatHashMap or FlatHashMap2): accumulators whose iteration
/// order feeds RNG draws, float sums into a shared cell, or result
/// emission must be walked via the keys vector, never the map — v1 slot
/// order depends on the capacity retained from earlier reuse, and the
/// caller-held key vector keeps the discipline uniform across both
/// flavors (v2's own ForEach already iterates in insertion order).
template <typename Map, typename KeyVector>
auto& OrderedSlot(Map& map, KeyVector& keys, uint64_t key) {
  const size_t before = map.size();
  auto& slot = map[key];
  if (map.size() != before) {
    keys.push_back(static_cast<typename KeyVector::value_type>(key));
  }
  return slot;
}

/// Maximum packable level (exclusive): levels occupy bits 32..55 only, so a
/// packed key always has its top byte clear and can never collide with
/// FlatHashMap::kEmptyKey.
inline constexpr uint32_t kPackNodeLevelCap = 1u << 24;

/// Packs a (node, level) pair into one flat-map key. Levels are capped at
/// 2^24, enforced below (sqrt(c)-walk depths are geometric; level 64
/// already has probability < 1e-7 for c = 0.8, so real levels sit far
/// under the cap).
inline uint64_t PackNodeLevel(uint32_t node, uint32_t level) {
  PRSIM_DCHECK_LT(level, kPackNodeLevelCap);
  return (static_cast<uint64_t>(level) << 32) | node;
}
inline uint32_t UnpackNode(uint64_t key) {
  return static_cast<uint32_t>(key & 0xffffffffULL);
}
inline uint32_t UnpackLevel(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}

}  // namespace prsim

#endif  // PRSIM_UTIL_FLAT_HASH_MAP_H_
