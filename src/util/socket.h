// Thin POSIX TCP helpers shared by the network serving layer, the load
// generator, and the tests.
//
// Everything here is blocking and Status-based: helpers retry EINTR
// internally, report real failures as kIOError, and hand descriptors out
// through an RAII wrapper so early returns cannot leak fds. Listeners bind
// 127.0.0.1 only — the serving subsystem is a localhost front end (CI,
// benches, same-host routers), not an exposed-to-the-internet daemon.

#ifndef PRSIM_UTIL_SOCKET_H_
#define PRSIM_UTIL_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace prsim {

/// Owning file descriptor: closes on destruction, move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Creates a TCP listener on 127.0.0.1:port (port 0 picks an ephemeral
/// port — read it back with LocalPort). SO_REUSEADDR is set so restarted
/// servers rebind without waiting out TIME_WAIT.
Result<UniqueFd> ListenTcp(uint16_t port, int backlog = 64);

/// The locally bound port of a socket (the answer for port-0 listeners).
Result<uint16_t> LocalPort(int fd);

/// Blocking connect to 127.0.0.1:port with TCP_NODELAY set (the protocols
/// here are small request/response frames; Nagle only adds latency).
/// timeout_ms >= 0 bounds the connect itself (non-blocking connect +
/// poll); expiry is a kDeadlineExceeded status. -1 blocks indefinitely.
Result<UniqueFd> ConnectTcp(uint16_t port, int timeout_ms = -1);

/// Polls `fd` for the given poll(2) events (POLLIN / POLLOUT). OK once an
/// event (or error/hangup — the subsequent I/O call reports it) is
/// pending; kDeadlineExceeded when `timeout_ms` elapses first. A negative
/// timeout blocks indefinitely (degenerate but allowed).
Status WaitFdEvent(int fd, short events, int timeout_ms);

/// Writes exactly `len` bytes, looping over partial writes and EINTR.
/// Sockets are written with send(MSG_NOSIGNAL), so a vanished peer is an
/// EPIPE kIOError instead of a process-killing SIGPIPE; non-socket fds
/// (pipes, files) fall back to write(2).
Status WriteAll(int fd, const void* data, size_t len);

/// WriteAll with a per-call deadline: every blocked write first waits for
/// POLLOUT at most `timeout_ms` ms; expiry is kDeadlineExceeded (the
/// buffered prefix is already on the wire — callers must treat the stream
/// as broken). Requires a socket fd.
Status WriteAllTimed(int fd, const void* data, size_t len, int timeout_ms);

/// Reads exactly `len` bytes. EOF before the first byte is reported as
/// `*eof = true` with OK status; EOF mid-object is a kIOError (a peer that
/// hangs up inside a frame is a protocol violation, not a clean close).
Status ReadFull(int fd, void* data, size_t len, bool* eof);

/// Reads up to `len` bytes (at least 1 unless EOF). Returns the byte count,
/// 0 on EOF.
Result<size_t> ReadSome(int fd, void* data, size_t len);

/// ReadSome with a per-call deadline: waits for POLLIN at most
/// `timeout_ms` ms before reading; expiry is a kDeadlineExceeded status
/// with no bytes consumed.
Result<size_t> ReadSomeTimed(int fd, void* data, size_t len, int timeout_ms);

/// Half-closes the read side, unblocking a peer's or our own pending
/// reads with EOF; the write side stays open for draining responses.
void ShutdownRead(int fd);

}  // namespace prsim

#endif  // PRSIM_UTIL_SOCKET_H_
