// Wall-clock timing utilities for the benchmark harness.

#ifndef PRSIM_UTIL_TIMER_H_
#define PRSIM_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace prsim {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the total of several timed sections, e.g. summing per-query
/// times while excluding evaluation overhead in between.
class AccumulatingTimer {
 public:
  void Start() { timer_.Restart(); running_ = true; }
  void Stop() {
    if (running_) {
      total_ += timer_.Seconds();
      running_ = false;
      ++laps_;
    }
  }
  double TotalSeconds() const { return total_; }
  uint64_t laps() const { return laps_; }
  double MeanSeconds() const { return laps_ == 0 ? 0.0 : total_ / laps_; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
  uint64_t laps_ = 0;
  bool running_ = false;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_TIMER_H_
