// Versioned binary serialization framework for on-disk artifacts.
//
// Every persistent artifact in the library (graph snapshots, engine indexes,
// shard manifests, bench caches) shares one magic + kind discipline so
// corruption, format drift, and stale files all fail with a clean Status
// instead of crashing or silently loading garbage. Two container layouts
// share the envelope:
//
// Format v1 — a single sequential payload with a checksum trailer:
//
//   [8-byte magic "PRSIMART"] [u32 version] [kind string] [payload...] [u64 checksum]
//
// BinaryWriter streams the envelope and maintains a running FNV-1a checksum
// over everything it writes; Finish() appends the digest as a trailer.
// BinaryReader validates magic/version/kind up front, bounds every read
// against the actual file size (a hostile length prefix cannot trigger a
// multi-gigabyte allocation), and Finish() recomputes the checksum and
// requires the payload to end exactly at the trailer.
//
// Format v2 — named, 64-byte-aligned sections behind a table in the header,
// built for mmap'd serving (cold start is a map, not a parse):
//
//   [magic] [u32 version = 2] [kind string] [u32 section count]
//   [per section: name string, u64 offset, u64 length, u64 checksum]
//   [u64 header checksum] [padding] [section 0] [padding] [section 1] ...
//
// Offsets are absolute and 64-byte aligned (a cache line / common SIMD
// width), so a section whose body is a u64 element count followed by raw
// elements keeps those elements 8-byte aligned and a reader can hand out
// zero-copy PodArray views straight into the mapping. Each section carries
// its own FNV-1a checksum, and the header carries one over the table, so a
// flipped byte anywhere is still caught. ArtifactWriter/ArtifactReader are
// the v2 entry points; ArtifactReader also opens v1 files, presenting the
// sequential payload as shared-cursor sections so one load path reads both.
//
// Values are written in host byte order (the library targets little-endian
// x86-64/aarch64); vectors are length-prefixed with a u64 element count.

#ifndef PRSIM_UTIL_SERDE_H_
#define PRSIM_UTIL_SERDE_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/mmap_file.h"
#include "util/pod_array.h"
#include "util/status.h"

namespace prsim {

/// Incremental FNV-1a 64-bit hash; also the running artifact checksum.
class Fnv64 {
 public:
  void Update(const void* data, size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x00000100000001b3ULL;
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// One-shot FNV-1a over a byte range / string.
inline uint64_t HashBytes(const void* data, size_t len) {
  Fnv64 h;
  h.Update(data, len);
  return h.digest();
}
inline uint64_t HashString(const std::string& s) {
  return HashBytes(s.data(), s.size());
}

namespace serde_internal {

/// Types we byte-copy: trivially copyable types, plus std::pair of them
/// (std::pair's non-trivial assignment operator disqualifies it from
/// std::is_trivially_copyable even when a byte copy is exact).
template <typename T>
struct IsSerdePod : std::is_trivially_copyable<T> {};
template <typename A, typename B>
struct IsSerdePod<std::pair<A, B>>
    : std::bool_constant<std::is_trivially_copyable_v<A> &&
                         std::is_trivially_copyable_v<B>> {};

}  // namespace serde_internal

/// \brief Streams one artifact to disk. Errors are sticky: after the first
/// failure every write is a no-op and Finish() returns the original error.
///
/// Writes go to a process-unique temporary file next to `path`; Finish()
/// renames it into place, so a failed or interrupted save never destroys a
/// previously valid artifact, and concurrent writers of the same path leave
/// one winner instead of a torn file.
class BinaryWriter {
 public:
  /// Opens a temporary next to `path` and writes the envelope header
  /// (magic, `version`, `kind`).
  BinaryWriter(const std::string& path, const std::string& kind,
               uint32_t version);
  ~BinaryWriter();

  template <typename T>
  void WritePod(const T& value) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WritePod requires a byte-copyable type");
    Append(&value, sizeof(T));
  }

  /// Length-prefixed (u32) byte string; strings over 256 bytes are a
  /// sticky error (the reader enforces the same cap).
  void WriteString(const std::string& s);

  /// Length-prefixed (u64 element count) vector of byte-copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WriteVector requires byte-copyable elements");
    WritePod<uint64_t>(v.size());
    Append(v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void WriteVector(std::span<const T> v) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WriteVector requires byte-copyable elements");
    WritePod<uint64_t>(v.size());
    Append(v.data(), v.size() * sizeof(T));
  }

  /// Raw elements with no length prefix. Pair with an explicit
  /// WritePod<uint64_t> total so a table scattered across many buckets can
  /// stream out piecewise — producing bytes identical to one WriteVector of
  /// the concatenation — without materializing that concatenation.
  template <typename T>
  void WriteElements(const T* data, size_t count) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WriteElements requires byte-copyable elements");
    Append(data, count * sizeof(T));
  }

  /// Appends the checksum trailer, renames the temporary onto the target
  /// path, and returns the sticky status.
  Status Finish();

  const Status& status() const { return status_; }

 private:
  void Append(const void* data, size_t len);

  std::ofstream out_;
  std::string path_;
  std::string tmp_path_;
  Fnv64 checksum_;
  Status status_;
  bool finished_ = false;
};

/// \brief Reads one artifact. The constructor validates the envelope header;
/// check status() before the first read. Errors are sticky.
class BinaryReader {
 public:
  /// Opens `path` and validates magic, `version`, and `kind`.
  BinaryReader(const std::string& path, const std::string& kind,
               uint32_t version);

  template <typename T>
  Status ReadPod(T* out) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "ReadPod requires a byte-copyable type");
    return Consume(out, sizeof(T));
  }

  Status ReadString(std::string* out);

  template <typename T>
  Status ReadVector(std::vector<T>* out) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "ReadVector requires byte-copyable elements");
    uint64_t count = 0;
    PRSIM_RETURN_NOT_OK(ReadPod(&count));
    if (count > remaining() / sizeof(T)) {
      return Corrupt("vector of " + std::to_string(count) +
                     " elements exceeds the bytes left in the file");
    }
    out->resize(static_cast<size_t>(count));
    return Consume(out->data(), static_cast<size_t>(count) * sizeof(T));
  }

  /// Mirror of WriteElements: reads `count` raw elements into `dst`.
  template <typename T>
  Status ReadElements(T* dst, size_t count) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "ReadElements requires byte-copyable elements");
    if (count > remaining() / sizeof(T)) {
      return Corrupt(std::to_string(count) +
                     " elements exceed the bytes left in the file");
    }
    return Consume(dst, count * sizeof(T));
  }

  /// Payload bytes left before the checksum trailer.
  uint64_t remaining() const { return payload_end_ - pos_; }

  /// Requires the payload to be fully consumed, then verifies the checksum
  /// trailer against the running digest.
  Status Finish();

  const Status& status() const { return status_; }

 private:
  Status Consume(void* dst, size_t len);
  Status Corrupt(const std::string& what);

  std::ifstream in_;
  std::string path_;
  uint64_t payload_end_ = 0;
  uint64_t pos_ = 0;
  Fnv64 checksum_;
  Status status_;
};

/// Container format versions ArtifactReader understands.
inline constexpr uint32_t kSerdeFormatV1 = 1;
inline constexpr uint32_t kSerdeFormatV2 = 2;

/// One entry of a format-v2 section table.
struct SectionInfo {
  std::string name;
  uint64_t offset = 0;    ///< absolute file offset, 64-byte aligned
  uint64_t length = 0;    ///< section bytes (padding excluded)
  uint64_t checksum = 0;  ///< FNV-1a over the section bytes
};

/// \brief In-memory section buffer with BinaryWriter's exact write API, so
/// serialization bodies move between the two formats unchanged. Errors are
/// sticky and surface through the owning ArtifactWriter's Finish().
class ByteSink {
 public:
  template <typename T>
  void WritePod(const T& value) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WritePod requires a byte-copyable type");
    Append(&value, sizeof(T));
  }

  /// Length-prefixed (u32) byte string; strings over 256 bytes are a
  /// sticky error (the reader enforces the same cap).
  void WriteString(const std::string& s);

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WriteVector requires byte-copyable elements");
    WritePod<uint64_t>(v.size());
    Append(v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void WriteVector(std::span<const T> v) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WriteVector requires byte-copyable elements");
    WritePod<uint64_t>(v.size());
    Append(v.data(), v.size() * sizeof(T));
  }

  /// Raw elements with no length prefix; see BinaryWriter::WriteElements.
  template <typename T>
  void WriteElements(const T* data, size_t count) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WriteElements requires byte-copyable elements");
    Append(data, count * sizeof(T));
  }

  const std::string& bytes() const { return buffer_; }
  const Status& status() const { return status_; }

 private:
  void Append(const void* data, size_t len);

  std::string buffer_;
  Status status_;
};

/// \brief Streams one format-v2 artifact: named sections are filled through
/// ByteSinks, then Finish() lays them out 64-byte aligned behind the section
/// table and renames a temporary into place (same crash-safety contract as
/// BinaryWriter). Section order is the AddSection order, so identical
/// content always produces a byte-identical file.
class ArtifactWriter {
 public:
  ArtifactWriter(const std::string& path, const std::string& kind);

  /// Returns the sink for a new section. Duplicate or oversized names are a
  /// sticky error reported by Finish(); the returned sink is still safe to
  /// write to.
  ByteSink& AddSection(const std::string& name);

  /// Computes the table, writes header + aligned sections to a temporary,
  /// and renames it onto the target path.
  Status Finish();

  const Status& status() const { return status_; }

 private:
  std::string path_;
  std::string kind_;
  std::vector<std::pair<std::string, std::unique_ptr<ByteSink>>> sections_;
  Status status_;
  bool finished_ = false;
};

/// \brief Sequential reader over one section of an opened artifact, with
/// BinaryReader's exact read API. Bounds every read against the section
/// length; Finish() requires the section to be fully consumed. Checksums
/// are validated by ArtifactReader before a SectionReader exists, so reads
/// are pure cursor movement.
///
/// Over a v1 artifact all SectionReaders share one cursor spanning the
/// legacy payload, so a load path that reads sections in their v2 order
/// consumes a v1 file identically.
class SectionReader {
 public:
  template <typename T>
  Status ReadPod(T* out) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "ReadPod requires a byte-copyable type");
    return Consume(out, sizeof(T));
  }

  Status ReadString(std::string* out);

  template <typename T>
  Status ReadVector(std::vector<T>* out) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "ReadVector requires byte-copyable elements");
    uint64_t count = 0;
    PRSIM_RETURN_NOT_OK(ReadPod(&count));
    if (count > remaining() / sizeof(T)) {
      return Corrupt("vector of " + std::to_string(count) +
                     " elements exceeds the bytes left in the section");
    }
    out->resize(static_cast<size_t>(count));
    return Consume(out->data(), static_cast<size_t>(count) * sizeof(T));
  }

  /// Mirror of WriteElements: reads `count` raw elements into `dst`.
  template <typename T>
  Status ReadElements(T* dst, size_t count) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "ReadElements requires byte-copyable elements");
    if (count > remaining() / sizeof(T)) {
      return Corrupt(std::to_string(count) +
                     " elements exceed the bytes left in the section");
    }
    return Consume(dst, count * sizeof(T));
  }

  /// Length-prefixed array, zero-copy when possible: when the element bytes
  /// sit suitably aligned inside the backing mapping, `out` becomes a view
  /// that keeps the mapping alive; otherwise the elements are copied onto
  /// the heap. Both paths leave the cursor past the array.
  template <typename T>
  Status ReadPodArray(PodArray<T>* out) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "ReadPodArray requires byte-copyable elements");
    uint64_t count = 0;
    PRSIM_RETURN_NOT_OK(ReadPod(&count));
    if (count > remaining() / sizeof(T)) {
      return Corrupt("array of " + std::to_string(count) +
                     " elements exceeds the bytes left in the section");
    }
    const std::byte* at = data_.data() + *pos_;
    if (backing_ != nullptr &&
        reinterpret_cast<uintptr_t>(at) % alignof(T) == 0) {
      *out = PodArray<T>::View(
          {reinterpret_cast<const T*>(at), static_cast<size_t>(count)},
          backing_);
      *pos_ += static_cast<size_t>(count) * sizeof(T);
      return Status::OK();
    }
    std::vector<T> owned(static_cast<size_t>(count));
    PRSIM_RETURN_NOT_OK(Consume(owned.data(), owned.size() * sizeof(T)));
    *out = PodArray<T>(std::move(owned));
    return Status::OK();
  }

  /// Section bytes left to read.
  uint64_t remaining() const { return data_.size() - *pos_; }

  /// Requires the section (v2) or the legacy payload (v1) to be fully
  /// consumed.
  Status Finish();

 private:
  friend class ArtifactReader;
  SectionReader(std::string path, std::span<const std::byte> data,
                std::shared_ptr<size_t> pos,
                std::shared_ptr<const MmapFile> backing)
      : path_(std::move(path)),
        data_(data),
        pos_(std::move(pos)),
        backing_(std::move(backing)) {}

  Status Consume(void* dst, size_t len);
  Status Corrupt(const std::string& what) const;

  std::string path_;
  std::span<const std::byte> data_;
  std::shared_ptr<size_t> pos_;  ///< shared across sections of a v1 artifact
  std::shared_ptr<const MmapFile> backing_;  ///< null disables zero-copy
};

/// \brief Opens an artifact of either container format over an MmapFile and
/// hands out SectionReaders. Structural problems specific to the container
/// (bad table, out-of-bounds or truncated section, checksum mismatch) fail
/// with kInvalidArgument; not-an-artifact problems (missing file, wrong
/// magic, unknown version, wrong kind) fail with kIOError, matching the
/// v1 BinaryReader contract.
struct ArtifactReadOptions {
  bool allow_mmap = true;
  /// Verification can be disabled for trusted local caches; the default
  /// checks every byte exactly as format v1 did.
  bool verify_checksums = true;
};

class ArtifactReader {
 public:
  using Options = ArtifactReadOptions;

  static Result<ArtifactReader> Open(const std::string& path,
                                     const std::string& kind,
                                     const Options& options = {});

  /// Container format of the opened file (kSerdeFormatV1 or V2).
  uint32_t version() const { return version_; }

  /// The v2 section table (empty for a v1 artifact).
  const std::vector<SectionInfo>& sections() const { return sections_; }

  /// Whether the artifact bytes are mmap'd (false for v1 or heap fallback).
  bool is_mapped() const { return file_ != nullptr && file_->is_mapped(); }

  /// Returns a reader over the named section. On a v2 artifact this
  /// validates the section checksum; on a v1 artifact the name is ignored
  /// and the reader continues the shared cursor over the legacy payload.
  Result<SectionReader> Section(const std::string& name) const;

 private:
  ArtifactReader() = default;

  std::shared_ptr<const MmapFile> file_;
  std::string path_;
  uint32_t version_ = 0;
  std::vector<SectionInfo> sections_;        // v2 only
  uint64_t v1_payload_begin_ = 0;            // v1 only
  uint64_t v1_payload_end_ = 0;              // v1 only
  std::shared_ptr<size_t> v1_cursor_;        // v1 only
  bool verify_checksums_ = true;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_SERDE_H_
