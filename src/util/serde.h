// Versioned binary serialization framework for on-disk artifacts.
//
// Every persistent artifact in the library (graph snapshots, engine indexes,
// bench caches) shares one envelope so corruption, format drift, and stale
// files all fail with a clean Status instead of crashing or silently loading
// garbage:
//
//   [8-byte magic "PRSIMART"] [u32 version] [kind string] [payload...] [u64 checksum]
//
// BinaryWriter streams the envelope and maintains a running FNV-1a checksum
// over everything it writes; Finish() appends the digest as a trailer.
// BinaryReader validates magic/version/kind up front, bounds every read
// against the actual file size (a hostile length prefix cannot trigger a
// multi-gigabyte allocation), and Finish() recomputes the checksum and
// requires the payload to end exactly at the trailer.
//
// Values are written in host byte order (the library targets little-endian
// x86-64/aarch64); vectors are length-prefixed with a u64 element count.

#ifndef PRSIM_UTIL_SERDE_H_
#define PRSIM_UTIL_SERDE_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/status.h"

namespace prsim {

/// Incremental FNV-1a 64-bit hash; also the running artifact checksum.
class Fnv64 {
 public:
  void Update(const void* data, size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x00000100000001b3ULL;
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// One-shot FNV-1a over a byte range / string.
inline uint64_t HashBytes(const void* data, size_t len) {
  Fnv64 h;
  h.Update(data, len);
  return h.digest();
}
inline uint64_t HashString(const std::string& s) {
  return HashBytes(s.data(), s.size());
}

namespace serde_internal {

/// Types we byte-copy: trivially copyable types, plus std::pair of them
/// (std::pair's non-trivial assignment operator disqualifies it from
/// std::is_trivially_copyable even when a byte copy is exact).
template <typename T>
struct IsSerdePod : std::is_trivially_copyable<T> {};
template <typename A, typename B>
struct IsSerdePod<std::pair<A, B>>
    : std::bool_constant<std::is_trivially_copyable_v<A> &&
                         std::is_trivially_copyable_v<B>> {};

}  // namespace serde_internal

/// \brief Streams one artifact to disk. Errors are sticky: after the first
/// failure every write is a no-op and Finish() returns the original error.
///
/// Writes go to a process-unique temporary file next to `path`; Finish()
/// renames it into place, so a failed or interrupted save never destroys a
/// previously valid artifact, and concurrent writers of the same path leave
/// one winner instead of a torn file.
class BinaryWriter {
 public:
  /// Opens a temporary next to `path` and writes the envelope header
  /// (magic, `version`, `kind`).
  BinaryWriter(const std::string& path, const std::string& kind,
               uint32_t version);
  ~BinaryWriter();

  template <typename T>
  void WritePod(const T& value) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WritePod requires a byte-copyable type");
    Append(&value, sizeof(T));
  }

  /// Length-prefixed (u32) byte string; strings over 256 bytes are a
  /// sticky error (the reader enforces the same cap).
  void WriteString(const std::string& s);

  /// Length-prefixed (u64 element count) vector of byte-copyable elements.
  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WriteVector requires byte-copyable elements");
    WritePod<uint64_t>(v.size());
    Append(v.data(), v.size() * sizeof(T));
  }

  /// Raw elements with no length prefix. Pair with an explicit
  /// WritePod<uint64_t> total so a table scattered across many buckets can
  /// stream out piecewise — producing bytes identical to one WriteVector of
  /// the concatenation — without materializing that concatenation.
  template <typename T>
  void WriteElements(const T* data, size_t count) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "WriteElements requires byte-copyable elements");
    Append(data, count * sizeof(T));
  }

  /// Appends the checksum trailer, renames the temporary onto the target
  /// path, and returns the sticky status.
  Status Finish();

  const Status& status() const { return status_; }

 private:
  void Append(const void* data, size_t len);

  std::ofstream out_;
  std::string path_;
  std::string tmp_path_;
  Fnv64 checksum_;
  Status status_;
  bool finished_ = false;
};

/// \brief Reads one artifact. The constructor validates the envelope header;
/// check status() before the first read. Errors are sticky.
class BinaryReader {
 public:
  /// Opens `path` and validates magic, `version`, and `kind`.
  BinaryReader(const std::string& path, const std::string& kind,
               uint32_t version);

  template <typename T>
  Status ReadPod(T* out) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "ReadPod requires a byte-copyable type");
    return Consume(out, sizeof(T));
  }

  Status ReadString(std::string* out);

  template <typename T>
  Status ReadVector(std::vector<T>* out) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "ReadVector requires byte-copyable elements");
    uint64_t count = 0;
    PRSIM_RETURN_NOT_OK(ReadPod(&count));
    if (count > remaining() / sizeof(T)) {
      return Corrupt("vector of " + std::to_string(count) +
                     " elements exceeds the bytes left in the file");
    }
    out->resize(static_cast<size_t>(count));
    return Consume(out->data(), static_cast<size_t>(count) * sizeof(T));
  }

  /// Mirror of WriteElements: reads `count` raw elements into `dst`.
  template <typename T>
  Status ReadElements(T* dst, size_t count) {
    static_assert(serde_internal::IsSerdePod<T>::value,
                  "ReadElements requires byte-copyable elements");
    if (count > remaining() / sizeof(T)) {
      return Corrupt(std::to_string(count) +
                     " elements exceed the bytes left in the file");
    }
    return Consume(dst, count * sizeof(T));
  }

  /// Payload bytes left before the checksum trailer.
  uint64_t remaining() const { return payload_end_ - pos_; }

  /// Requires the payload to be fully consumed, then verifies the checksum
  /// trailer against the running digest.
  Status Finish();

  const Status& status() const { return status_; }

 private:
  Status Consume(void* dst, size_t len);
  Status Corrupt(const std::string& what);

  std::ifstream in_;
  std::string path_;
  uint64_t payload_end_ = 0;
  uint64_t pos_ = 0;
  Fnv64 checksum_;
  Status status_;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_SERDE_H_
