// Read-only whole-file mapping with a portable heap fallback.
//
// MmapFile backs the zero-copy artifact path: format-v2 artifacts keep their
// POD sections 64-byte aligned so a loaded index can point straight into the
// mapping instead of parsing every byte onto the heap. On POSIX systems the
// file is mmap'd MAP_PRIVATE | PROT_READ (page-cache backed, shared across
// processes serving the same artifact); everywhere else — or when mapping is
// disabled or fails — the file is read() into one heap buffer with identical
// observable behavior, so callers never branch on the platform.
//
// The mapping is immutable and released by the destructor (RAII). Readers
// that hand out views into the region keep the MmapFile alive through a
// shared_ptr, so a view can outlive the reader that produced it but never
// the mapping itself.

#ifndef PRSIM_UTIL_MMAP_FILE_H_
#define PRSIM_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace prsim {

class MmapFile {
 public:
  /// Maps `path` read-only (or reads it into a heap buffer when
  /// `allow_mmap` is false or mapping is unavailable). Fails with kIOError
  /// when the file is missing or unreadable.
  static Result<std::shared_ptr<const MmapFile>> Open(const std::string& path,
                                                      bool allow_mmap = true);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// True when the bytes live in a real mmap'd region (false for the heap
  /// fallback). Observable behavior is identical either way.
  bool is_mapped() const { return mapped_; }

 private:
  MmapFile() = default;

  std::string path_;
  const std::byte* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> heap_;  ///< fallback storage when !mapped_
};

}  // namespace prsim

#endif  // PRSIM_UTIL_MMAP_FILE_H_
