// Deterministic Zipfian sampler for skewed workload generation.
//
// Real query traffic on a power-law graph is itself power-law: a few hot
// sources absorb most of the load. The open-loop serve bench models that
// with a Zipf(s) distribution over ranks 0..n-1 — rank r is drawn with
// probability proportional to 1/(r+1)^s. Sampling inverts the precomputed
// cumulative distribution with a binary search, so a draw is O(log n), the
// table is 8 bytes per rank, and the sampled sequence is a pure function of
// (n, s, the caller's Rng state): the same seed replays the same request
// stream bit for bit on every machine (the cumulative table is built with
// one fixed left-to-right summation order).

#ifndef PRSIM_UTIL_ZIPF_H_
#define PRSIM_UTIL_ZIPF_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace prsim {

class ZipfSampler {
 public:
  /// Distribution over ranks [0, n) with exponent s >= 0. s = 0 degenerates
  /// to uniform; s = 1 is the classic Zipf law. Requires n >= 1.
  ZipfSampler(uint32_t n, double s) : n_(n), s_(s) {
    PRSIM_CHECK(n >= 1) << "ZipfSampler needs at least one rank";
    PRSIM_CHECK(s >= 0) << "Zipf exponent must be non-negative";
    cumulative_.reserve(n);
    double total = 0;
    for (uint32_t r = 0; r < n; ++r) {
      total += std::pow(static_cast<double>(r) + 1.0, -s);
      cumulative_.push_back(total);
    }
  }

  uint32_t n() const { return n_; }
  double s() const { return s_; }

  /// Probability mass of rank r (requires r < n).
  double Probability(uint32_t rank) const {
    PRSIM_DCHECK(rank < n_);
    const double total = cumulative_.back();
    const double below = rank == 0 ? 0.0 : cumulative_[rank - 1];
    return (cumulative_[rank] - below) / total;
  }

  /// Draws one rank in [0, n). Consumes exactly one rng.NextDouble(), so
  /// interleaved consumers of the same Rng stay reproducible.
  uint32_t Sample(Rng& rng) const {
    const double u = rng.NextDouble() * cumulative_.back();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const auto rank = static_cast<uint32_t>(it - cumulative_.begin());
    return rank < n_ ? rank : n_ - 1;
  }

 private:
  uint32_t n_;
  double s_;
  /// cumulative_[r] = sum_{i<=r} (i+1)^-s, unnormalized.
  std::vector<double> cumulative_;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_ZIPF_H_
