#include "util/fault_injection.h"

#include <cinttypes>
#include <cstdio>

#include "util/parse.h"
#include "util/rng.h"

namespace prsim {

namespace {

/// FNV-1a over the point name; folded into the firing hash so renaming a
/// point reshuffles its schedule but leaves every other point's alone.
uint64_t HashName(const char* name) {
  uint64_t h = 1469598103934665603ULL;
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(*p));
    h *= 1099511628211ULL;
  }
  return h;
}

/// The firing decision for evaluation `index` of a point: a splitmix64
/// chain over (seed, name_hash, index), reduced mod den. Stateless, so the
/// firing set is a pure function of (seed, name, index).
bool FiresAt(uint64_t seed, uint64_t name_hash, uint64_t index, uint64_t num,
             uint64_t den) {
  uint64_t state = seed ^ name_hash;
  SplitMix64(state);
  state ^= index;
  const uint64_t mixed = SplitMix64(state);
  return mixed % den < num;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector::Point* FaultInjector::Find(const char* name) {
  for (const auto& point : points_) {
    if (point->name == name) return point.get();
  }
  return nullptr;
}

Status FaultInjector::Configure(const std::string& spec, uint64_t seed) {
  std::vector<std::unique_ptr<Point>> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string term = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (term.empty()) continue;
    const auto eq = term.find('=');
    const auto slash = term.find('/', eq == std::string::npos ? 0 : eq);
    if (eq == std::string::npos || slash == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          "fault term '" + term + "' is not \"name=num/den[:stall_ms]\"");
    }
    auto point = std::make_unique<Point>();
    point->name = term.substr(0, eq);
    std::string den_token = term.substr(slash + 1);
    const auto colon = den_token.find(':');
    if (colon != std::string::npos) {
      if (!ParseUint64(den_token.substr(colon + 1), &point->stall_ms)) {
        return Status::InvalidArgument("fault term '" + term +
                                       "': malformed stall_ms");
      }
      den_token.resize(colon);
    }
    if (!ParseUint64(term.substr(eq + 1, slash - eq - 1), &point->num) ||
        !ParseUint64(den_token, &point->den) || point->den == 0 ||
        point->num > point->den) {
      return Status::InvalidArgument(
          "fault term '" + term + "': rate must be num/den with 0 <= num <= "
          "den, den > 0");
    }
    point->name_hash = HashName(point->name.c_str());
    for (const auto& prior : parsed) {
      if (prior->name == point->name) {
        return Status::InvalidArgument("fault point '" + point->name +
                                       "' configured twice");
      }
    }
    parsed.push_back(std::move(point));
  }
  enabled_.store(false, std::memory_order_release);
  points_ = std::move(parsed);
  seed_ = seed;
  if (!points_.empty()) enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

void FaultInjector::Disable() {
  enabled_.store(false, std::memory_order_release);
  points_.clear();
}

bool FaultInjector::ShouldFire(const char* name, uint64_t* stall_ms) {
  *stall_ms = 0;
  Point* point = Find(name);
  if (point == nullptr) return false;
  const uint64_t index =
      point->evaluations.fetch_add(1, std::memory_order_relaxed);
  if (!FiresAt(seed_, point->name_hash, index, point->num, point->den)) {
    return false;
  }
  point->fired.fetch_add(1, std::memory_order_relaxed);
  *stall_ms = point->stall_ms;
  return true;
}

std::vector<FaultPointStats> FaultInjector::Stats() const {
  std::vector<FaultPointStats> stats;
  stats.reserve(points_.size());
  for (const auto& point : points_) {
    FaultPointStats s;
    s.name = point->name;
    s.evaluations = point->evaluations.load(std::memory_order_relaxed);
    s.fired = point->fired.load(std::memory_order_relaxed);
    stats.push_back(std::move(s));
  }
  return stats;
}

std::string FaultInjector::StatsJson() const {
  std::string json = "{\"event\":\"fault_stats\",\"points\":[";
  bool first = true;
  char buffer[128];
  for (const FaultPointStats& point : Stats()) {
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"name\":\"%s\",\"evaluations\":%" PRIu64
                  ",\"fired\":%" PRIu64 "}",
                  first ? "" : ",", point.name.c_str(), point.evaluations,
                  point.fired);
    json += buffer;
    first = false;
  }
  json += "]}";
  return json;
}

Status InjectedFault(const char* name) {
  return Status::IOError(std::string("injected fault: ") + name);
}

}  // namespace prsim
