// Walker alias method for O(1) sampling from a discrete distribution.
//
// Used by the Chung-Lu generator to draw edge endpoints proportionally to
// power-law weight sequences. Construction is O(n); each draw costs one RNG
// call and two array reads.

#ifndef PRSIM_UTIL_ALIAS_TABLE_H_
#define PRSIM_UTIL_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace prsim {

class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative weights (need not be normalized).
  /// At least one weight must be positive.
  explicit AliasTable(const std::vector<double>& weights) {
    const size_t n = weights.size();
    PRSIM_CHECK(n > 0) << "alias table needs at least one weight";
    prob_.resize(n);
    alias_.resize(n);
    double total = 0;
    for (double w : weights) {
      PRSIM_CHECK(w >= 0) << "negative weight";
      total += w;
    }
    PRSIM_CHECK(total > 0) << "all weights are zero";

    // Scaled probabilities; classify into small/large worklists.
    std::vector<double> scaled(n);
    std::vector<uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * n / total;
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const uint32_t s = small.back();
      small.pop_back();
      const uint32_t l = large.back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    // Leftovers are 1.0 up to floating-point noise.
    for (uint32_t s : small) {
      prob_[s] = 1.0;
      alias_[s] = s;
    }
    for (uint32_t l : large) {
      prob_[l] = 1.0;
      alias_[l] = l;
    }
  }

  bool empty() const { return prob_.empty(); }
  size_t size() const { return prob_.size(); }

  /// Draws an index distributed proportionally to the input weights.
  uint32_t Sample(Rng& rng) const {
    const uint32_t slot = rng.NextIndex(static_cast<uint32_t>(prob_.size()));
    return rng.NextDouble() < prob_[slot] ? slot : alias_[slot];
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_ALIAS_TABLE_H_
