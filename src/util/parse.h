// Strict numeric parsing shared by every env-var and token reader.
//
// strtoull alone is too permissive for config surfaces: it accepts leading
// whitespace and signs ("-1" wraps to 2^64-1), and callers re-implementing
// the errno/end-pointer dance kept diverging. ParseUint64 is the one strict
// spelling: all-digits, base 10, fits in uint64.

#ifndef PRSIM_UTIL_PARSE_H_
#define PRSIM_UTIL_PARSE_H_

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace prsim {

/// Parses `token` as a base-10 unsigned integer. The whole token must be
/// digits — no sign, whitespace, or trailing junk — and the value must fit
/// uint64 (ERANGE fails). Returns false without touching *value otherwise.
inline bool ParseUint64(const std::string& token, uint64_t* value) {
  if (token.empty() || token[0] < '0' || token[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  *value = parsed;
  return true;
}

}  // namespace prsim

#endif  // PRSIM_UTIL_PARSE_H_
