// Arrow-style Status / Result error model.
//
// Fallible, non-hot-path APIs (graph construction, file I/O, configuration
// validation) return Status or Result<T> instead of throwing. Hot algorithm
// loops never construct Status objects; they validate inputs once up front.

#ifndef PRSIM_UTIL_STATUS_H_
#define PRSIM_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace prsim {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kIOError = 2,
  kOutOfRange = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kDeadlineExceeded = 9,
};

/// Returns a short human-readable name for a StatusCode (e.g. "Invalid
/// argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail.
///
/// The OK state carries no allocation; error states allocate a small state
/// block holding the code and message.
class Status {
 public:
  Status() noexcept = default;  // OK
  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(code, std::move(message))) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process if not OK. Use at call sites where failure is a
  /// programming error (e.g. loading a graph the test just wrote).
  void Abort() const {
    if (!ok()) {
      PRSIM_LOG(Fatal) << "Status not OK: " << ToString();
    }
  }

 private:
  struct State {
    State(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : repr_(std::move(status)) {
    PRSIM_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Returns the value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

  /// Moves the value out; aborts if this holds an error.
  T MoveValueUnsafe() {
    CheckOk();
    return std::get<T>(std::move(repr_));
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      PRSIM_LOG(Fatal) << "Result carries error: "
                       << std::get<Status>(repr_).ToString();
    }
  }
  std::variant<T, Status> repr_;
};

}  // namespace prsim

/// Propagates an error Status out of the current function.
#define PRSIM_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::prsim::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Binds `lhs` to the value of a Result expression or propagates its error.
#define PRSIM_ASSIGN_OR_RETURN(lhs, rexpr)               \
  auto PRSIM_CONCAT_(_result_, __LINE__) = (rexpr);      \
  if (!PRSIM_CONCAT_(_result_, __LINE__).ok())           \
    return PRSIM_CONCAT_(_result_, __LINE__).status();   \
  lhs = std::move(PRSIM_CONCAT_(_result_, __LINE__)).ValueOrDie()

#define PRSIM_CONCAT_INNER_(a, b) a##b
#define PRSIM_CONCAT_(a, b) PRSIM_CONCAT_INNER_(a, b)

#endif  // PRSIM_UTIL_STATUS_H_
