// LruCache — generic byte-budgeted LRU used by the hot-source result cache
// (core/result_cache.h).
//
// Design:
//  * Entries live in a flat `std::vector<Node>`; the recency order is an
//    intrusive doubly-linked list of node indices threaded through the
//    vector (head = most recent, tail = eviction victim). Moving an entry
//    to the front is four index writes — no allocation, no pointer chasing
//    beyond the node itself.
//  * The key index is a FlatHashMap2<uint32_t> mapping the 64-bit key hash
//    to a node index. FlatHashMap2 has no erase, so evicted/erased nodes
//    simply leave a stale index entry behind; every probe validates that
//    the target node is live AND stores the same hash AND compares equal on
//    the full key. Once the stale population exceeds the live population
//    (plus a small constant), the index is rebuilt from the live nodes —
//    amortized O(1) per mutation.
//  * Eviction is cost-aware: each entry carries a caller-supplied byte cost
//    and entries are evicted from the LRU tail until the running total fits
//    the budget. A single entry costlier than the whole budget is refused
//    by Put (returns false) rather than thrashing the cache.
//  * Two distinct live keys that collide on the full 64-bit hash cannot
//    coexist: the newcomer replaces the incumbent (counted as an eviction).
//    With a 64-bit hash over struct keys this is a theoretical case; for a
//    cache (not a map) dropping the incumbent is semantically safe.
//
// Not thread safe — callers hold their own lock (ResultCache wraps one
// mutex around an LruCache plus the singleflight table).

#ifndef PRSIM_UTIL_LRU_CACHE_H_
#define PRSIM_UTIL_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/flat_hash_map2.h"
#include "util/logging.h"

namespace prsim {

/// Byte-budgeted LRU map. `Hash` must be a stateless functor returning a
/// well-mixed uint64_t; `Key` must be equality comparable and cheap to
/// copy; `Value` may be move-only.
template <typename Key, typename Value, typename Hash>
class LruCache {
 public:
  explicit LruCache(size_t byte_budget) : budget_(byte_budget) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value and promotes the entry to most-recent, or
  /// nullptr on miss. Counts a hit or a miss.
  Value* Get(const Key& key) {
    const uint32_t idx = FindNode(key);
    if (idx == kNil) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    MoveToFront(idx);
    return &nodes_[idx].value;
  }

  /// Inserts or overwrites `key` with `value`, charging `cost_bytes`
  /// against the budget and evicting from the LRU tail to fit. Returns
  /// false (and caches nothing) when cost_bytes alone exceeds the budget.
  bool Put(const Key& key, Value value, size_t cost_bytes) {
    if (cost_bytes > budget_) return false;
    const uint64_t hash = Hash()(key);
    uint32_t idx = FindNode(key, hash);
    if (idx != kNil) {
      // Overwrite in place (also covers a full-hash collision: FindNode
      // only matches equal keys, so a colliding different key is handled
      // by the stale-index branch below).
      bytes_ -= nodes_[idx].cost;
      nodes_[idx].value = std::move(value);
      nodes_[idx].cost = cost_bytes;
      bytes_ += cost_bytes;
      MoveToFront(idx);
      EvictToFit(idx);
      return true;
    }
    idx = AllocateNode();
    Node& node = nodes_[idx];
    node.key = key;
    node.value = std::move(value);
    node.hash = hash;
    node.cost = cost_bytes;
    node.live = true;
    LinkFront(idx);
    ++size_;
    bytes_ += cost_bytes;
    // The index may hold a stale entry for this hash (an evicted node, or
    // a different live key colliding on all 64 hash bits). Overwriting the
    // slot revives a stale entry; a colliding live incumbent is dropped.
    uint32_t& slot = index_[hash];
    if (slot != idx && slot < nodes_.size() && nodes_[slot].live &&
        nodes_[slot].hash == hash) {
      EvictNode(slot);  // full-hash collision: newcomer wins
    } else if (dead_keys_ > 0 && slot != 0) {
      // Heuristic: a pre-existing non-default slot value was stale.
      --dead_keys_;
    }
    slot = idx;
    EvictToFit(idx);
    MaybeRebuildIndex();
    return true;
  }

  /// Erases every entry for which `pred(key)` returns true; returns the
  /// number erased. O(capacity).
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (uint32_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].live && pred(nodes_[i].key)) {
        EvictNode(i, /*count_eviction=*/false);
        ++erased;
      }
    }
    MaybeRebuildIndex();
    return erased;
  }

  /// Drops every entry. Counters (hits/misses/evictions) are preserved;
  /// bytes and size go to zero.
  void Clear() {
    nodes_.clear();
    index_.clear();
    head_ = tail_ = free_head_ = kNil;
    size_ = 0;
    bytes_ = 0;
    dead_keys_ = 0;
  }

  size_t size() const { return size_; }
  size_t bytes() const { return bytes_; }
  size_t budget() const { return budget_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

  /// Keys ordered most-recent first. O(size); for tests and debugging.
  std::vector<Key> KeysByRecency() const {
    std::vector<Key> keys;
    keys.reserve(size_);
    for (uint32_t i = head_; i != kNil; i = nodes_[i].next) {
      keys.push_back(nodes_[i].key);
    }
    return keys;
  }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Node {
    Key key{};
    Value value{};
    uint64_t hash = 0;
    size_t cost = 0;
    uint32_t prev = kNil;
    uint32_t next = kNil;
    bool live = false;
  };

  uint32_t FindNode(const Key& key) const { return FindNode(key, Hash()(key)); }

  uint32_t FindNode(const Key& key, uint64_t hash) const {
    const uint32_t* slot = index_.Find(hash);
    if (slot == nullptr) return kNil;
    const uint32_t idx = *slot;
    if (idx >= nodes_.size()) return kNil;  // stale after Clear
    const Node& node = nodes_[idx];
    if (!node.live || node.hash != hash || !(node.key == key)) return kNil;
    return idx;
  }

  uint32_t AllocateNode() {
    if (free_head_ != kNil) {
      const uint32_t idx = free_head_;
      free_head_ = nodes_[idx].next;
      return idx;
    }
    PRSIM_CHECK(nodes_.size() < kNil) << "LruCache: node count overflow";
    nodes_.emplace_back();
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  void LinkFront(uint32_t idx) {
    Node& node = nodes_[idx];
    node.prev = kNil;
    node.next = head_;
    if (head_ != kNil) nodes_[head_].prev = idx;
    head_ = idx;
    if (tail_ == kNil) tail_ = idx;
  }

  void Unlink(uint32_t idx) {
    Node& node = nodes_[idx];
    if (node.prev != kNil) {
      nodes_[node.prev].next = node.next;
    } else {
      head_ = node.next;
    }
    if (node.next != kNil) {
      nodes_[node.next].prev = node.prev;
    } else {
      tail_ = node.prev;
    }
    node.prev = node.next = kNil;
  }

  void MoveToFront(uint32_t idx) {
    if (head_ == idx) return;
    Unlink(idx);
    LinkFront(idx);
  }

  void EvictNode(uint32_t idx, bool count_eviction = true) {
    Node& node = nodes_[idx];
    Unlink(idx);
    bytes_ -= node.cost;
    --size_;
    node.live = false;
    node.value = Value();  // release payload (e.g. shared_ptr refcount)
    node.next = free_head_;
    free_head_ = idx;
    ++dead_keys_;  // its index entry is now stale
    if (count_eviction) ++evictions_;
  }

  /// Evicts LRU-tail entries until bytes_ <= budget_, never evicting
  /// `protect` (the entry just inserted — it fits by the Put precondition).
  void EvictToFit(uint32_t protect) {
    while (bytes_ > budget_ && tail_ != kNil) {
      if (tail_ == protect) break;  // unreachable given cost <= budget
      EvictNode(tail_);
    }
  }

  void MaybeRebuildIndex() {
    if (dead_keys_ <= size_ + 64) return;
    FlatHashMap2<uint32_t> fresh(size_ * 2 + 16);
    for (uint32_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].live) fresh[nodes_[i].hash] = i;
    }
    index_ = std::move(fresh);
    dead_keys_ = 0;
  }

  const size_t budget_;
  std::vector<Node> nodes_;
  FlatHashMap2<uint32_t> index_;
  uint32_t head_ = kNil;
  uint32_t tail_ = kNil;
  uint32_t free_head_ = kNil;
  size_t size_ = 0;
  size_t bytes_ = 0;
  size_t dead_keys_ = 0;  // stale index entries pointing at dead nodes
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_LRU_CACHE_H_
