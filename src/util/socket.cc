#include "util/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace prsim {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    // EINTR on close is unrecoverable by retry (POSIX leaves the fd state
    // unspecified); ignore it like every other close error in a destructor.
    ::close(fd_);
    fd_ = -1;
  }
}

Result<UniqueFd> ListenTcp(uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<UniqueFd> ConnectTcp(uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const sockaddr_in addr = LoopbackAddr(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect 127.0.0.1:" + std::to_string(port));
  const int one = 1;
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return fd;
}

Status WriteAll(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadFull(int fd, void* data, size_t len, bool* eof) {
  *eof = false;
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (got == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::IOError("connection closed mid-frame (" +
                             std::to_string(got) + " of " +
                             std::to_string(len) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, void* data, size_t len) {
  while (true) {
    const ssize_t n = ::read(fd, data, len);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno != EINTR) return Errno("read");
  }
}

void ShutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }

}  // namespace prsim
