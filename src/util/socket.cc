#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/fault_injection.h"

namespace prsim {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// send(MSG_NOSIGNAL) with a write(2) fallback for non-socket fds: the
/// stdin serve transport and the tests push pipes and files through the
/// same helpers, and MSG_NOSIGNAL on those is ENOTSOCK.
ssize_t SendOrWrite(int fd, const char* p, size_t len, int extra_flags) {
  const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL | extra_flags);
  if (n < 0 && errno == ENOTSOCK) return ::write(fd, p, len);
  return n;
}

}  // namespace

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    // EINTR on close is unrecoverable by retry (POSIX leaves the fd state
    // unspecified); ignore it like every other close error in a destructor.
    ::close(fd_);
    fd_ = -1;
  }
}

Result<UniqueFd> ListenTcp(uint16_t port, int backlog) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Status WaitFdEvent(int fd, short events, int timeout_ms) {
  pollfd pfd = {fd, events, 0};
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::DeadlineExceeded("fd not ready within " +
                                      std::to_string(timeout_ms) + "ms");
    }
    if (errno != EINTR) return Errno("poll");
    // EINTR: retry with the full budget — close enough for a hygiene
    // timeout, and it avoids clock arithmetic in the common no-signal case.
  }
}

Result<UniqueFd> ConnectTcp(uint16_t port, int timeout_ms) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const sockaddr_in addr = LoopbackAddr(port);
  if (timeout_ms < 0) {
    int rc;
    do {
      rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return Errno("connect 127.0.0.1:" + std::to_string(port));
  } else {
    // Bounded connect: non-blocking connect, poll for writability, read
    // back SO_ERROR, then restore blocking mode for the caller.
    const int flags = ::fcntl(fd.get(), F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
      return Errno("fcntl(O_NONBLOCK)");
    }
    const int rc = ::connect(
        fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
      return Errno("connect 127.0.0.1:" + std::to_string(port));
    }
    if (rc != 0) {
      Status ready = WaitFdEvent(fd.get(), POLLOUT, timeout_ms);
      if (!ready.ok()) {
        if (ready.code() == StatusCode::kDeadlineExceeded) {
          return Status::DeadlineExceeded(
              "connect 127.0.0.1:" + std::to_string(port) + " timed out (" +
              std::to_string(timeout_ms) + "ms)");
        }
        return ready;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) !=
          0) {
        return Errno("getsockopt(SO_ERROR)");
      }
      if (so_error != 0) {
        errno = so_error;
        return Errno("connect 127.0.0.1:" + std::to_string(port));
      }
    }
    if (::fcntl(fd.get(), F_SETFL, flags) != 0) return Errno("fcntl");
  }
  const int one = 1;
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return fd;
}

Status WriteAll(int fd, const void* data, size_t len) {
  uint64_t stall_ms = 0;
  if (PRSIM_FAULT_POINT("net.write.err", &stall_ms)) {
    return InjectedFault("net.write.err");
  }
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = SendOrWrite(fd, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteAllTimed(int fd, const void* data, size_t len, int timeout_ms) {
  uint64_t stall_ms = 0;
  if (PRSIM_FAULT_POINT("net.write.err", &stall_ms)) {
    return InjectedFault("net.write.err");
  }
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = SendOrWrite(fd, p, len, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        PRSIM_RETURN_NOT_OK(WaitFdEvent(fd, POLLOUT, timeout_ms));
        continue;
      }
      return Errno("write");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadFull(int fd, void* data, size_t len, bool* eof) {
  *eof = false;
  uint64_t stall_ms = 0;
  if (PRSIM_FAULT_POINT("net.read.err", &stall_ms)) {
    return InjectedFault("net.read.err");
  }
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    if (n == 0) {
      if (got == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::IOError("connection closed mid-frame (" +
                             std::to_string(got) + " of " +
                             std::to_string(len) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, void* data, size_t len) {
  uint64_t stall_ms = 0;
  if (PRSIM_FAULT_POINT("net.read.err", &stall_ms)) {
    return InjectedFault("net.read.err");
  }
  while (true) {
    const ssize_t n = ::read(fd, data, len);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno != EINTR) return Errno("read");
  }
}

Result<size_t> ReadSomeTimed(int fd, void* data, size_t len,
                             int timeout_ms) {
  uint64_t stall_ms = 0;
  if (PRSIM_FAULT_POINT("net.read.err", &stall_ms)) {
    return InjectedFault("net.read.err");
  }
  PRSIM_RETURN_NOT_OK(WaitFdEvent(fd, POLLIN, timeout_ms));
  while (true) {
    const ssize_t n = ::read(fd, data, len);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno != EINTR) return Errno("read");
  }
}

void ShutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }

}  // namespace prsim
