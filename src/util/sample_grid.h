// Static chunking of a (round, j) sample grid, shared by every
// median-of-means estimator (PRSim::Query, RpprEstimator).
//
// The chunk layout is a pure function of (rounds, samples_per_round) — never
// of the thread count or of which worker runs a chunk. Combined with one RNG
// substream per chunk (seeded positionally from the chunk's first sample)
// and a merge that visits chunks in grid order, every estimate is
// bit-identical however many threads execute the grid:
//
//  * a chunk never spans a round, so each per-(node, round) tail column is
//    the fixed-order sum of that round's chunk partials;
//  * count-valued accumulators (eta-pi sample counts, cost counters) are
//    integers, so their merges are exact in any order anyway.
//
// The chunk count targets kTargetSampleChunks: enough slack for static
// scheduling to balance load across typical worker counts without the merge
// pass or the pooled per-chunk workspaces growing with the sample count.

#ifndef PRSIM_UTIL_SAMPLE_GRID_H_
#define PRSIM_UTIL_SAMPLE_GRID_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/flat_hash_map2.h"
#include "util/rng.h"

namespace prsim {

/// One static chunk of the sample grid: samples [j_lo, j_hi) of `round`.
struct SampleChunk {
  uint32_t round = 0;
  uint64_t j_lo = 0;
  uint64_t j_hi = 0;
};

/// Upper bound on the chunk count (see header comment). 64 gives 4x
/// oversubscription at 16 workers while keeping the fixed-order merge and
/// the pooled per-chunk workspaces O(64).
inline constexpr uint64_t kTargetSampleChunks = 64;

/// Splits `rounds` x `samples_per_round` into round-major chunks that never
/// cross a round boundary. Layout depends only on the two arguments.
inline std::vector<SampleChunk> BuildSampleChunks(uint32_t rounds,
                                                  uint64_t samples_per_round) {
  std::vector<SampleChunk> chunks;
  if (rounds == 0 || samples_per_round == 0) return chunks;
  const uint64_t blocks_per_round =
      std::min(samples_per_round,
               std::max<uint64_t>(1, kTargetSampleChunks / rounds));
  const uint64_t block =
      (samples_per_round + blocks_per_round - 1) / blocks_per_round;
  chunks.reserve(static_cast<size_t>(rounds) * blocks_per_round);
  for (uint32_t round = 0; round < rounds; ++round) {
    for (uint64_t j_lo = 0; j_lo < samples_per_round; j_lo += block) {
      chunks.push_back(
          {round, j_lo, std::min(samples_per_round, j_lo + block)});
    }
  }
  return chunks;
}

/// Stateless positional seed derivation (splitmix over a golden-ratio
/// stream offset): nearby streams yield decorrelated substreams.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t state = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  return SplitMix64(state);
}

/// Seed of a chunk's RNG substream: positional in (base seed, query stream,
/// linear index of the chunk's first sample). `stream` distinguishes
/// estimation targets (e.g. the source node), so repeated queries are pure
/// functions of (seed, target) while distinct targets get decorrelated
/// substreams.
inline uint64_t SampleChunkSeed(uint64_t seed, uint64_t stream,
                                const SampleChunk& chunk,
                                uint64_t samples_per_round) {
  return MixSeed(MixSeed(seed, stream),
                 chunk.round * samples_per_round + chunk.j_lo);
}

/// \brief Per-(key, round) column accumulator + median-of-rounds reduce —
/// the merge half of the chunked median-of-means estimators (PRSim's tail
/// part, RpprEstimator), kept in ONE place because it encodes the
/// bit-identity invariant: Add() must be called in fixed grid order (all
/// chunks of round r in ascending block order), and ForEachMedian() visits
/// keys in first-touch order, so neither values nor output order depend on
/// the worker count or on capacity retained from earlier reuse.
///
/// Reset() keeps capacity; all storage is reusable workspace.
class RoundColumns {
 public:
  void Reset(uint32_t rounds) {
    rounds_ = rounds;
    slot_of_.clear();
    keys_.clear();
    columns_.clear();
  }

  /// Adds a chunk partial into `key`'s column for `round`.
  void Add(uint64_t key, uint32_t round, double value) {
    uint32_t& slot = slot_of_[key];
    if (slot == 0) {  // 0 is the sentinel for "new"; slots start at 1
      keys_.push_back(key);
      columns_.resize(columns_.size() + rounds_, 0.0);
      slot = static_cast<uint32_t>(keys_.size());
    }
    columns_[static_cast<size_t>(slot - 1) * rounds_ + round] += value;
  }

  size_t key_count() const { return keys_.size(); }

  /// fn(key, median over the key's per-round sums), in first-touch key
  /// order. Callers filter non-positive medians themselves.
  template <typename Fn>
  void ForEachMedian(Fn&& fn) {
    buffer_.resize(rounds_);
    for (size_t slot = 0; slot < keys_.size(); ++slot) {
      const double* column = &columns_[slot * rounds_];
      std::copy(column, column + rounds_, buffer_.begin());
      const auto mid = buffer_.begin() + rounds_ / 2;
      std::nth_element(buffer_.begin(), mid, buffer_.end());
      fn(keys_[slot], *mid);
    }
  }

  /// Capacity probes for the workspace-reuse tests.
  size_t MapCapacity() const { return slot_of_.capacity(); }
  size_t BufferCapacity() const {
    return keys_.capacity() + columns_.capacity() + buffer_.capacity();
  }

 private:
  uint32_t rounds_ = 0;
  FlatHashMap2<uint32_t> slot_of_{1024};
  std::vector<uint64_t> keys_;
  std::vector<double> columns_;  // slot-major, rounds_ doubles per slot
  std::vector<double> buffer_;
};

}  // namespace prsim

#endif  // PRSIM_UTIL_SAMPLE_GRID_H_
