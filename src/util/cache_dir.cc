#include "util/cache_dir.h"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <vector>

namespace prsim {

namespace fs = std::filesystem;

CacheEvictionStats EvictLruFiles(const std::string& dir, uint64_t max_bytes) {
  CacheEvictionStats stats;
  std::error_code ec;
  struct Entry {
    fs::path path;
    uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<Entry> entries;
  uint64_t total = 0;
  // Non-throwing iteration end to end: the range-for form would throw from
  // operator++ if the directory vanishes mid-scan (concurrent benches share
  // this cache), and "cannot trim" must degrade to "bigger cache".
  fs::directory_iterator it(dir, ec);
  for (const fs::directory_iterator end; !ec && it != end; it.increment(ec)) {
    std::error_code entry_ec;
    if (!it->is_regular_file(entry_ec) || entry_ec) continue;
    Entry entry;
    entry.path = it->path();
    entry.size = it->file_size(entry_ec);
    if (entry_ec) continue;
    entry.mtime = it->last_write_time(entry_ec);
    if (entry_ec) continue;
    total += entry.size;
    entries.push_back(std::move(entry));
  }
  stats.bytes_remaining = total;
  if (total <= max_bytes) return stats;

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.mtime < b.mtime; });
  for (const Entry& entry : entries) {
    if (total <= max_bytes) break;
    std::error_code remove_ec;
    if (!fs::remove(entry.path, remove_ec) || remove_ec) continue;
    total -= entry.size;
    ++stats.files_removed;
    stats.bytes_removed += entry.size;
  }
  stats.bytes_remaining = total;
  return stats;
}

void TouchFile(const std::string& path) {
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
}

}  // namespace prsim
