// Synthetic analogs of the paper's Table 3 datasets.
//
// The real corpora (SNAP / LAW exports up to 5.5 billion edges) are not
// available offline; each analog is a seeded Chung-Lu graph matching the
// published type (directed/undirected), a laptop-scale size, and — the knob
// PRSim's theory says matters — the character of the out-degree power law:
// IT-sim is steep ("locally sparse", large gamma), TW-sim is flat ("locally
// dense", small gamma), reproducing the IT-2004 vs Twitter discrepancy of
// Figure 1 / Section 5.2 by construction. See DESIGN.md substitution table.

#ifndef PRSIM_EVAL_DATASETS_H_
#define PRSIM_EVAL_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace prsim {

struct DatasetSpec {
  std::string name;       ///< short key: "DB", "LJ", "IT", "TW", "UK"
  std::string paper_name; ///< dataset it stands in for
  bool directed = true;
  NodeId n = 0;
  double avg_degree = 0.0;
  double gamma_out = 2.0;
  double gamma_in = 2.0;
  uint64_t seed = 0;
};

/// The five analogs, in Table 3 order.
const std::vector<DatasetSpec>& PaperDatasetAnalogs();

/// Looks up a spec by short key; returns NotFound for unknown names.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Instantiates the graph for a spec. `scale` multiplies n (smoke/full runs).
Result<Graph> MakeDataset(const DatasetSpec& spec, double scale = 1.0);

/// Reads PRSIM_BENCH_SCALE ("smoke" -> 0.25, "" / "default" -> 1.0,
/// "full" -> 3.0, or a numeric factor).
double BenchScaleFromEnv();

}  // namespace prsim

#endif  // PRSIM_EVAL_DATASETS_H_
