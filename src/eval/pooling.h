// Pooling-based evaluation of single-source SimRank algorithms (Section 5.1).
//
// For each query node u: every algorithm answers the single-source query and
// nominates its top-k; the union of nominations forms the pool; the ground
// truth ranks the pool and the best k pooled nodes become V_k. Metrics:
//   AvgError@k  = (1/k) sum_{v in V_k} |s_hat(u, v) - s(u, v)|
//   Precision@k = |top-k of algorithm  intersect  V_k| / k

#ifndef PRSIM_EVAL_POOLING_H_
#define PRSIM_EVAL_POOLING_H_

#include <string>
#include <vector>

#include "core/single_source.h"
#include "eval/ground_truth.h"
#include "graph/graph.h"

namespace prsim {

/// One algorithm registered for evaluation (not owned).
struct EvalEntry {
  std::string label;  ///< e.g. "PRSim(eps=0.05)"
  SingleSourceSimRank* algorithm = nullptr;
  double preprocess_seconds = 0.0;  ///< recorded by the caller
};

struct PoolingOptions {
  uint32_t k = 50;
  /// Stop issuing further queries for an algorithm once it has spent this
  /// many seconds in total (keeps sweeps bounded, like the paper's cutoffs).
  double per_algorithm_budget_seconds = 600.0;
};

/// Aggregated metrics for one algorithm across all query nodes.
struct EvalMetrics {
  std::string label;
  double avg_error_at_k = 0.0;
  double precision_at_k = 0.0;
  double mean_query_seconds = 0.0;
  size_t index_bytes = 0;
  double preprocess_seconds = 0.0;
  uint32_t queries_answered = 0;
};

/// Runs the pooled evaluation over `query_nodes`.
std::vector<EvalMetrics> RunPooledEvaluation(
    const Graph& graph, const std::vector<EvalEntry>& entries,
    GroundTruth& truth, const std::vector<NodeId>& query_nodes,
    const PoolingOptions& options = {});

/// Deterministically samples `count` distinct query nodes, biased toward
/// nodes with at least one in-neighbor (isolated nodes make trivial queries).
std::vector<NodeId> SampleQueryNodes(const Graph& graph, uint32_t count,
                                     uint64_t seed);

}  // namespace prsim

#endif  // PRSIM_EVAL_POOLING_H_
