#include "eval/datasets.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "gen/chung_lu.h"

namespace prsim {

const std::vector<DatasetSpec>& PaperDatasetAnalogs() {
  // gamma values: DB/LJ fitted exponents of the public degree data are in the
  // 2.1-2.3 range; IT-2004's out-degree tail decays much faster than
  // Twitter's (Figure 1), encoded here as gamma 2.6 vs 1.35.
  static const std::vector<DatasetSpec> kSpecs = {
      {"DB", "DBLP-Author", /*directed=*/false, 120000, 6.4, 2.2, 2.2, 1001},
      {"LJ", "LiveJournal", /*directed=*/true, 100000, 14.0, 2.3, 2.3, 1002},
      {"IT", "It-2004", /*directed=*/true, 120000, 25.0, 2.6, 1.9, 1003},
      {"TW", "Twitter", /*directed=*/true, 120000, 25.0, 1.35, 2.0, 1004},
      {"UK", "UK-Union", /*directed=*/true, 300000, 18.0, 2.2, 1.9, 1005},
  };
  return kSpecs;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const auto& spec : PaperDatasetAnalogs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no dataset analog named '" + name + "'");
}

Result<Graph> MakeDataset(const DatasetSpec& spec, double scale) {
  ChungLuOptions options;
  options.n = static_cast<NodeId>(
      std::max<double>(1000.0, spec.n * std::max(scale, 1e-3)));
  options.avg_degree = spec.avg_degree;
  options.gamma_out = spec.gamma_out;
  options.gamma_in = spec.gamma_in;
  options.undirected = !spec.directed;
  options.seed = spec.seed;
  return GenerateChungLu(options);
}

double BenchScaleFromEnv() {
  const char* raw = std::getenv("PRSIM_BENCH_SCALE");
  if (raw == nullptr || raw[0] == '\0') return 1.0;
  const std::string value(raw);
  if (value == "smoke") return 0.25;
  if (value == "default") return 1.0;
  if (value == "full") return 3.0;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end != raw && parsed > 0) return parsed;
  return 1.0;
}

}  // namespace prsim
