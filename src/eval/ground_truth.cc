#include "eval/ground_truth.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "core/engine_registry.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace prsim {

namespace {

uint64_t PairKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// Round-trip-exact double rendering for EngineConfig values.
std::string FormatExact(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

GroundTruth::GroundTruth(const Graph& graph, const GroundTruthOptions& options)
    : graph_(graph),
      options_(options),
      walker_(graph, options.c),
      rng_(options.seed) {
  mc_samples_ = static_cast<uint64_t>(
      std::ceil(std::log(2.0 / options_.mc_delta) /
                (2.0 * options_.mc_eps * options_.mc_eps)));
}

Status GroundTruth::Prepare() {
  if (graph_.n() <= options_.exact_limit) {
    EngineConfig config;
    config.SetOrReplace("c", FormatExact(options_.c));
    config.SetOrReplace("iterations",
                        std::to_string(options_.power_iterations));
    config.SetOrReplace("max_nodes", std::to_string(options_.exact_limit));
    PRSIM_ASSIGN_OR_RETURN(
        exact_, EngineRegistry::Global().Create("powermethod", graph_,
                                                config));
    return exact_->Preprocess();
  }
  return Status::OK();
}

double GroundTruth::SimRank(NodeId u, NodeId v) {
  if (u == v) return 1.0;
  if (exact_ != nullptr) return exact_->QueryPair(u, v);
  const uint64_t key = PairKey(u, v);
  if (const double* hit = cache_.Find(key)) return *hit;
  const double value = walker_.EstimateSimRank(u, v, mc_samples_, rng_);
  cache_[key] = value;
  return value;
}

std::vector<double> GroundTruth::SimRankBatch(NodeId u,
                                              const std::vector<NodeId>& vs) {
  std::vector<double> out(vs.size());
  if (exact_ != nullptr) {
    for (size_t i = 0; i < vs.size(); ++i) {
      out[i] = exact_->QueryPair(u, vs[i]);
    }
    return out;
  }
  // Resolve cache misses in parallel with per-pair deterministic seeds;
  // ParallelFor schedules the chunks on the shared ThreadPool, so pooled
  // evaluation under sustained load reuses workers instead of spawning
  // threads per batch.
  std::vector<size_t> misses;
  for (size_t i = 0; i < vs.size(); ++i) {
    if (u == vs[i]) {
      out[i] = 1.0;
    } else if (const double* hit = cache_.Find(PairKey(u, vs[i]))) {
      out[i] = *hit;
    } else {
      misses.push_back(i);
    }
  }
  ParallelFor(
      0, misses.size(),
      [&](size_t idx) {
        const size_t i = misses[idx];
        Rng rng(options_.seed ^ (PairKey(u, vs[i]) * 0x9e3779b97f4a7c15ULL));
        out[i] = walker_.EstimateSimRank(u, vs[i], mc_samples_, rng);
      },
      options_.threads);
  for (size_t i : misses) cache_[PairKey(u, vs[i])] = out[i];
  return out;
}

}  // namespace prsim
