#include "eval/pooling.h"

#include <algorithm>

#include "util/flat_hash_map2.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace prsim {

std::vector<NodeId> SampleQueryNodes(const Graph& graph, uint32_t count,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> nodes;
  FlatHashMap2<uint8_t> seen(count);
  nodes.reserve(count);
  uint32_t attempts = 0;
  const uint32_t max_attempts = count * 200 + 1000;
  while (nodes.size() < count && attempts++ < max_attempts) {
    const NodeId v = rng.NextIndex(graph.n());
    if (seen.Contains(v)) continue;
    if (graph.InDegree(v) == 0 && attempts < max_attempts / 2) continue;
    seen[v] = 1;
    nodes.push_back(v);
  }
  return nodes;
}

std::vector<EvalMetrics> RunPooledEvaluation(
    const Graph& graph, const std::vector<EvalEntry>& entries,
    GroundTruth& truth, const std::vector<NodeId>& query_nodes,
    const PoolingOptions& options) {
  (void)graph;
  const size_t algos = entries.size();
  std::vector<EvalMetrics> metrics(algos);
  std::vector<double> spent(algos, 0.0);
  std::vector<double> error_sum(algos, 0.0);
  std::vector<double> precision_sum(algos, 0.0);
  std::vector<uint32_t> evaluated(algos, 0);
  for (size_t a = 0; a < algos; ++a) {
    metrics[a].label = entries[a].label;
    metrics[a].index_bytes = entries[a].algorithm->IndexBytes();
    metrics[a].preprocess_seconds = entries[a].preprocess_seconds;
  }

  for (NodeId u : query_nodes) {
    // Phase 1: answers + timings.
    std::vector<ScoreList> answers(algos);
    std::vector<ScoreList> topk(algos);
    std::vector<bool> answered(algos, false);
    for (size_t a = 0; a < algos; ++a) {
      if (spent[a] >= options.per_algorithm_budget_seconds) continue;
      WallTimer timer;
      answers[a] = entries[a].algorithm->Query(u);
      const double seconds = timer.Seconds();
      spent[a] += seconds;
      metrics[a].mean_query_seconds += seconds;
      ++metrics[a].queries_answered;
      topk[a] = TopK(answers[a], options.k, u);
      answered[a] = true;
    }

    // Phase 2: pool the nominations and rank by ground truth.
    std::vector<NodeId> pool;
    {
      FlatHashMap2<uint8_t> pooled(options.k * algos);
      for (size_t a = 0; a < algos; ++a) {
        for (const auto& [v, score] : topk[a]) {
          uint8_t& nominated = pooled[v];
          if (nominated == 0) {
            nominated = 1;
            pool.push_back(v);
          }
        }
      }
    }
    if (pool.empty()) continue;
    const std::vector<double> true_scores = truth.SimRankBatch(u, pool);
    std::vector<size_t> order(pool.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      if (true_scores[x] != true_scores[y]) {
        return true_scores[x] > true_scores[y];
      }
      return pool[x] < pool[y];
    });
    const size_t k = std::min<size_t>(options.k, order.size());
    FlatHashMap2<double> vk(k);  // best pooled nodes -> true score
    for (size_t i = 0; i < k; ++i) {
      vk[pool[order[i]]] = true_scores[order[i]];
    }

    // Phase 3: per-algorithm metrics against V_k.
    //
    // The error sum accumulates in vk's ForEach order, which for
    // FlatHashMap2 is insertion order (here: descending true score) —
    // deterministic, but a different float-summation order than the v1
    // slot order pre-migration runs used, so avg_error_at_k can differ
    // from old recorded values at ULP scale. Eval metrics are
    // tolerance-checked, never bit-compared; query-path bit-identity is
    // unaffected (hot paths iterate via OrderedSlot key vectors).
    for (size_t a = 0; a < algos; ++a) {
      if (!answered[a]) continue;
      double error = 0.0;
      vk.ForEach([&](uint64_t v, const double& true_score) {
        error += std::abs(ScoreOf(answers[a], static_cast<NodeId>(v)) -
                          true_score);
      });
      error_sum[a] += error / static_cast<double>(k);
      size_t hits = 0;
      for (const auto& [v, score] : topk[a]) {
        if (vk.Contains(v)) ++hits;
      }
      precision_sum[a] +=
          static_cast<double>(hits) / static_cast<double>(k);
      ++evaluated[a];
    }
  }

  for (size_t a = 0; a < algos; ++a) {
    if (metrics[a].queries_answered > 0) {
      metrics[a].mean_query_seconds /= metrics[a].queries_answered;
    }
    if (evaluated[a] > 0) {
      metrics[a].avg_error_at_k = error_sum[a] / evaluated[a];
      metrics[a].precision_at_k = precision_sum[a] / evaluated[a];
    }
  }
  return metrics;
}

}  // namespace prsim
