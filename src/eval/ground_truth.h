// Ground-truth SimRank oracle (Section 5.1 methodology).
//
// Small graphs: exact power-method matrix. Larger graphs: the pairwise Monte
// Carlo estimator run to a configurable (eps_mc, delta_mc) precision with
// per-pair caching — the paper's "Ground Truth for single-pair queries"
// approach, with constants documented in DESIGN.md's substitution table.

#ifndef PRSIM_EVAL_GROUND_TRUTH_H_
#define PRSIM_EVAL_GROUND_TRUTH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/single_source.h"
#include "graph/graph.h"
#include "ppr/walker.h"
#include "util/flat_hash_map2.h"
#include "util/rng.h"
#include "util/status.h"

namespace prsim {

struct GroundTruthOptions {
  double c = 0.6;
  /// Graphs up to this many nodes use the exact power method.
  NodeId exact_limit = 3000;
  /// Monte Carlo precision for larger graphs.
  double mc_eps = 2e-3;
  double mc_delta = 0.01;
  uint32_t power_iterations = 30;
  size_t threads = 0;
  uint64_t seed = 97;
};

class GroundTruth {
 public:
  GroundTruth(const Graph& graph, const GroundTruthOptions& options);

  /// Builds the exact matrix when the graph is small enough.
  Status Prepare();

  bool is_exact() const { return exact_ != nullptr; }
  uint64_t mc_samples() const { return mc_samples_; }

  /// True SimRank s(u, v) (exact or MC-estimated; MC results are cached).
  double SimRank(NodeId u, NodeId v);

  /// Batch interface used by pooling: resolves many pairs, in parallel for
  /// the Monte Carlo path.
  std::vector<double> SimRankBatch(NodeId u, const std::vector<NodeId>& vs);

 private:
  const Graph& graph_;
  GroundTruthOptions options_;
  Walker walker_;
  /// Exact oracle built through the engine registry ("powermethod"); pair
  /// lookups go through the uniform QueryPair surface.
  std::unique_ptr<SingleSourceSimRank> exact_;
  FlatHashMap2<double> cache_{1024};
  uint64_t mc_samples_ = 0;
  Rng rng_;
};

}  // namespace prsim

#endif  // PRSIM_EVAL_GROUND_TRUTH_H_
