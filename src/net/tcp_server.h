// TCP serving front end over a QueryService or ShardRouter.
//
// Start() binds 127.0.0.1:<port> (0 = ephemeral; read the chosen one with
// port()) and spawns an accept thread. Each connection gets a session
// thread that sniffs the framing from the client's first bytes — the
// "PRSB" magic selects length-prefixed binary frames, anything else the
// `serve --stdin` text line protocol (net/serve_loop) — then runs the
// shared pipelined dispatch loop against the submit hook, writing
// responses in submission order. Both framings and both backends
// (QueryService, ShardRouter) therefore answer bit-identically to their
// offline counterparts: the server adds transport, not semantics.
//
// Graceful shutdown (Shutdown(), also triggered by the CLI's
// SIGINT/SIGTERM handler): the listener closes first so no new connection
// is accepted, then every live connection's read side is shut down; each
// session sees EOF, drains its in-flight window through the bounded queue,
// flushes the remaining responses to its client, and exits. Shutdown()
// returns only after every session thread has joined, so callers can
// snapshot final ServiceStats knowing nothing is still in flight.

#ifndef PRSIM_NET_TCP_SERVER_H_
#define PRSIM_NET_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/serve_loop.h"
#include "util/socket.h"
#include "util/status.h"

namespace prsim {
namespace net {

struct TcpServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
  uint16_t port = 0;
  /// Node count of the served graph (text-protocol source validation).
  NodeId node_count = 0;
  /// k applied to text requests that omit it.
  uint32_t default_k = 20;
  /// Per-connection in-flight window (mirrors the stdin loop's bound).
  size_t window = 1024;
  /// Concurrent connection cap; further accepts wait for a slot.
  size_t max_connections = 64;
  /// Idle-connection reaper: a connection that has sent no bytes for this
  /// long has its read side shut down (the session then drains its
  /// in-flight responses and exits — the peer still receives every answer
  /// to a request it actually sent). 0 disables the reaper. Keeps a
  /// wedged or vanished-without-FIN client from pinning one of the
  /// max_connections slots forever.
  int idle_timeout_ms = 0;
  /// Per-write deadline on response writes (WriteAllTimed): a peer that
  /// stops reading can stall us at most this long per write before the
  /// session treats the connection as broken. 0 = block indefinitely.
  int io_timeout_ms = 0;
};

/// Lifetime transport counters (independent of the backend's ServiceStats).
struct TcpServerStats {
  uint64_t connections = 0;       ///< accepted connections
  uint64_t requests = 0;          ///< well-formed requests dispatched
  uint64_t protocol_errors = 0;   ///< malformed lines/frames answered with
                                  ///< an error response
  uint64_t idle_closed = 0;       ///< connections reaped by idle_timeout_ms
};

class TcpServer {
 public:
  /// Binds, listens, and starts accepting. The submit hook must stay valid
  /// until Shutdown() returns.
  static Result<std::unique_ptr<TcpServer>> Start(
      const TcpServerOptions& options, SubmitFn submit);

  /// Graceful stop: stop accepting, drain every session, join all threads.
  /// Idempotent; also runs from the destructor if never called.
  void Shutdown();

  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolves port 0 to the ephemeral choice).
  uint16_t port() const { return port_; }

  TcpServerStats Stats() const;

 private:
  struct Session {
    UniqueFd fd;
    std::thread thread;
    bool done = false;
    /// Last time this connection delivered bytes (steady-clock ms),
    /// written by the session thread, read by the idle reaper.
    std::atomic<uint64_t> last_activity_ms{0};
    /// Set (under mu_) once the reaper half-closed this session, so a
    /// slow-to-exit session is not counted as idle-closed twice.
    bool idle_shut = false;
  };

  TcpServer() = default;
  void AcceptLoop();
  /// Half-closes sessions idle past options_.idle_timeout_ms (no-op when
  /// the reaper is disabled). Runs on the accept thread.
  void SweepIdleSessions();
  void RunSession(Session* session);
  void ServeTextSession(int fd, Session* session,
                        const std::string& first_bytes);
  void ServeBinarySession(int fd, Session* session,
                          const std::string& first_bytes);
  /// Joins finished sessions; with `all`, waits for every session.
  void ReapSessions(bool all);

  TcpServerOptions options_;
  SubmitFn submit_;
  UniqueFd listener_;
  /// Written by the accept thread when shutdown begins, so sessions stop
  /// treating read failures as protocol errors.
  std::atomic<bool> stopping_{false};
  uint16_t port_ = 0;
  std::thread accept_thread_;
  /// Wake-pipe write end; closing it unblocks the accept poll().
  UniqueFd wake_write_;
  UniqueFd wake_read_;

  mutable std::mutex mu_;  ///< guards sessions_ and stats_
  std::vector<std::unique_ptr<Session>> sessions_;
  TcpServerStats stats_;
  bool shutdown_done_ = false;
};

}  // namespace net
}  // namespace prsim

#endif  // PRSIM_NET_TCP_SERVER_H_
