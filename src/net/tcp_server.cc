#include "net/tcp_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <utility>

#include "net/frame.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace prsim {
namespace net {

namespace {

/// Steady-clock milliseconds, the idle reaper's time base.
uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// True for accept(2) failures that mean "out of descriptors / buffers
/// right now" — transient under load, fatal to treat as fatal: the right
/// response is to back off and keep serving the connections we have.
bool IsAcceptResourceError(int err) {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM;
}

/// Buffered reads over a connection fd, seeded with the bytes consumed by
/// the framing sniff. Both framings pull from here so no byte is lost
/// between the sniff and the first request.
class BufferedFd {
 public:
  /// `activity` (optional) fires after every successful refill — the hook
  /// the idle reaper uses to see a connection is still talking.
  BufferedFd(int fd, std::string initial,
             std::function<void()> activity = nullptr)
      : fd_(fd), buffer_(std::move(initial)), activity_(std::move(activity)) {}

  /// Reads exactly `len` bytes. Clean EOF before the first byte sets *eof;
  /// EOF mid-object is a kIOError.
  Status ReadFull(void* out, size_t len, bool* eof) {
    *eof = false;
    char* p = static_cast<char*>(out);
    size_t got = 0;
    while (got < len) {
      if (pos_ < buffer_.size()) {
        const size_t take = std::min(len - got, buffer_.size() - pos_);
        std::memcpy(p + got, buffer_.data() + pos_, take);
        pos_ += take;
        got += take;
        continue;
      }
      if (!Refill()) {
        if (got == 0) {
          *eof = true;
          return Status::OK();
        }
        return Status::IOError("connection closed mid-frame");
      }
    }
    return Status::OK();
  }

  /// Reads one '\n'-terminated line (terminator stripped). A final
  /// unterminated line is still delivered, matching std::getline. Read
  /// errors surface as EOF — for a serving session both mean "this client
  /// is done".
  bool ReadLine(std::string* line) {
    line->clear();
    while (true) {
      const size_t nl = buffer_.find('\n', pos_);
      if (nl != std::string::npos) {
        line->append(buffer_, pos_, nl - pos_);
        pos_ = nl + 1;
        return true;
      }
      line->append(buffer_, pos_, buffer_.size() - pos_);
      pos_ = buffer_.size();
      if (!Refill()) return !line->empty();
    }
  }

 private:
  bool Refill() {
    if (pos_ == buffer_.size()) {
      buffer_.clear();
      pos_ = 0;
    }
    char chunk[4096];
    auto n = ReadSome(fd_, chunk, sizeof(chunk));
    if (!n.ok() || n.ValueOrDie() == 0) return false;
    buffer_.append(chunk, n.ValueOrDie());
    if (activity_) activity_();
    return true;
  }

  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
  std::function<void()> activity_;
};

}  // namespace

Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    const TcpServerOptions& options, SubmitFn submit) {
  PRSIM_CHECK(submit != nullptr) << "TcpServer needs a submit hook";
  std::unique_ptr<TcpServer> server(new TcpServer());
  server->options_ = options;
  server->submit_ = std::move(submit);
  PRSIM_ASSIGN_OR_RETURN(server->listener_, ListenTcp(options.port));
  PRSIM_ASSIGN_OR_RETURN(server->port_, LocalPort(server->listener_.get()));
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  server->wake_read_ = UniqueFd(pipe_fds[0]);
  server->wake_write_ = UniqueFd(pipe_fds[1]);
  server->accept_thread_ = std::thread(&TcpServer::AcceptLoop, server.get());
  return server;
}

TcpServer::~TcpServer() { Shutdown(); }

void TcpServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  // Closing the wake pipe's write end makes the accept poll() see EOF; the
  // accept thread closes the listener on its way out, so no connection is
  // accepted past this point.
  wake_write_.Reset();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Half-close every live connection: its session sees EOF, drains the
    // in-flight window, flushes the responses, and exits.
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& session : sessions_) {
      if (session->fd.valid()) ShutdownRead(session->fd.get());
    }
  }
  ReapSessions(/*all=*/true);
}

TcpServerStats TcpServer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TcpServer::ReapSessions(bool all) {
  // Joining with mu_ held would deadlock against sessions taking mu_ on
  // their way out; move the candidates out of the registry first.
  std::vector<std::unique_ptr<Session>> joinable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (all) {
      joinable.swap(sessions_);
    } else {
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        if ((*it)->done) {
          joinable.push_back(std::move(*it));
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (const auto& session : joinable) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void TcpServer::SweepIdleSessions() {
  if (options_.idle_timeout_ms <= 0) return;
  const uint64_t now = NowMs();
  const auto budget = static_cast<uint64_t>(options_.idle_timeout_ms);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& session : sessions_) {
    if (session->done || session->idle_shut || !session->fd.valid()) continue;
    const uint64_t last =
        session->last_activity_ms.load(std::memory_order_relaxed);
    if (now - last < budget) continue;
    // Half-close only: the session sees EOF, drains its in-flight window,
    // flushes any remaining responses, and exits on its own — identical to
    // the graceful-shutdown path, scoped to one connection.
    ShutdownRead(session->fd.get());
    session->idle_shut = true;
    ++stats_.idle_closed;
  }
}

void TcpServer::AcceptLoop() {
  // Resource-exhaustion accepts (EMFILE & friends) log once per episode,
  // not once per retry — the loop can spin thousands of times while the
  // process is out of descriptors.
  bool accept_starved_logged = false;
  // With the idle reaper enabled the listener poll must wake periodically
  // to sweep; granularity of a quarter timeout keeps the reap latency
  // bounded without busy-polling.
  const int poll_timeout =
      options_.idle_timeout_ms > 0
          ? std::max(10, std::min(options_.idle_timeout_ms / 4, 250))
          : -1;
  while (true) {
    ReapSessions(/*all=*/false);
    SweepIdleSessions();
    size_t live = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      live = sessions_.size();
    }
    if (live >= options_.max_connections) {
      // At the connection cap: only watch for shutdown, re-checking for a
      // freed slot every 50ms.
      pollfd wake = {wake_read_.get(), POLLIN, 0};
      if (::poll(&wake, 1, 50) > 0 && wake.revents != 0) break;
      continue;
    }
    pollfd fds[2] = {{listener_.get(), POLLIN, 0},
                     {wake_read_.get(), POLLIN, 0}};
    if (::poll(fds, 2, poll_timeout) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // wake pipe closed: shutting down
    if (fds[0].revents == 0) continue;
    uint64_t stall_ms = 0;
    const bool injected_emfile =
        PRSIM_FAULT_POINT("net.accept.emfile", &stall_ms);
    const int raw =
        injected_emfile ? -1 : ::accept(listener_.get(), nullptr, nullptr);
    if (injected_emfile) errno = EMFILE;
    if (raw < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (IsAcceptResourceError(errno)) {
        // Out of fds/buffers: the pending connection stays in the backlog.
        // Back off briefly (watching the wake pipe so shutdown stays
        // responsive) and retry — existing sessions keep serving, and the
        // accept succeeds as soon as a descriptor frees up.
        if (!accept_starved_logged) {
          PRSIM_LOG(Warning)
              << "accept: " << std::strerror(errno)
              << "; backing off and retrying (existing connections "
                 "keep serving)";
          accept_starved_logged = true;
        }
        pollfd wake = {wake_read_.get(), POLLIN, 0};
        if (::poll(&wake, 1, 100) > 0 && wake.revents != 0) break;
        continue;
      }
      break;
    }
    accept_starved_logged = false;
    UniqueFd client(raw);
    const int one = 1;
    ::setsockopt(client.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Session* session = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections;
      sessions_.push_back(std::make_unique<Session>());
      session = sessions_.back().get();
      session->fd = std::move(client);
      session->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
    }
    session->thread = std::thread(&TcpServer::RunSession, this, session);
  }
  listener_.Reset();
}

void TcpServer::RunSession(Session* session) {
  const int fd = session->fd.get();
  // Framing sniff: accumulate the client's first bytes until the binary
  // magic can be ruled in or out. Text requests start with a digit (or
  // whitespace/'#'), so "PRSB" is unambiguous; a client that closes after
  // fewer than 4 bytes is a (possibly empty) text session.
  std::string first_bytes;
  while (first_bytes.size() < sizeof(kBinaryMagic)) {
    char chunk[256];
    auto n = ReadSome(fd, chunk, sizeof(chunk));
    if (!n.ok() || n.ValueOrDie() == 0) break;
    first_bytes.append(chunk, n.ValueOrDie());
    session->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
  }
  if (first_bytes.size() >= sizeof(kBinaryMagic) &&
      std::memcmp(first_bytes.data(), kBinaryMagic,
                  sizeof(kBinaryMagic)) == 0) {
    ServeBinarySession(fd, session, first_bytes.substr(sizeof(kBinaryMagic)));
  } else {
    ServeTextSession(fd, session, first_bytes);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Close now, not at reap time: the next reap may be far away (it runs on
  // the accept thread), and a well-behaved client that half-closed is
  // blocked waiting for our FIN.
  session->fd.Reset();
  session->done = true;
}

void TcpServer::ServeTextSession(int fd, Session* session,
                                 const std::string& first_bytes) {
  BufferedFd reader(fd, first_bytes, [session] {
    session->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
  });
  // A failed write means the client hung up; stop reading instead of
  // computing answers nobody will receive. Results come off the
  // dispatcher's responder thread while parse errors come off this (the
  // reading) thread, so writes are serialized by write_mu — without it two
  // half-written lines could interleave on the wire.
  std::atomic<bool> broken{false};
  std::mutex write_mu;
  const auto write = [&](const std::string& framed) {
    if (broken.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(write_mu);
    const Status wrote =
        options_.io_timeout_ms > 0
            ? WriteAllTimed(fd, framed.data(), framed.size(),
                            options_.io_timeout_ms)
            : WriteAll(fd, framed.data(), framed.size());
    if (!wrote.ok()) broken.store(true, std::memory_order_release);
  };
  LineTransport transport;
  transport.read_line = [&](std::string* line) {
    return !broken.load(std::memory_order_acquire) && reader.ReadLine(line);
  };
  transport.write_line = [&](const std::string& line) { write(line + "\n"); };
  transport.report_error = [&](size_t line_no, const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
    }
    write("error line " + std::to_string(line_no) + ": " + message + "\n");
  };
  const SubmitFn counted = [this](QueryRequest request) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.requests;
    }
    return submit_(std::move(request));
  };
  ServeLineLoop(options_.node_count, options_.default_k, options_.window,
                counted, transport);
}

void TcpServer::ServeBinarySession(int fd, Session* session,
                                   const std::string& first_bytes) {
  BufferedFd reader(fd, first_bytes, [session] {
    session->last_activity_ms.store(NowMs(), std::memory_order_relaxed);
  });
  // Responses are written only by the dispatcher's responder thread while
  // the session runs; this thread writes only the terminal protocol-error
  // frame, after DrainAll() has joined the responder. So the stream stays
  // one writer at a time and responses arrive strictly in request order —
  // the invariant binary clients use to match responses to requests.
  std::atomic<bool> broken{false};
  const auto write_response = [&](const WireResponse& response) {
    if (broken.load(std::memory_order_acquire)) return;
    std::vector<char> payload;
    EncodeResponse(response, &payload);
    Status wrote;
    if (options_.io_timeout_ms > 0) {
      const auto length = static_cast<uint32_t>(payload.size());
      wrote = WriteAllTimed(fd, &length, sizeof(length),
                            options_.io_timeout_ms);
      if (wrote.ok()) {
        wrote = WriteAllTimed(fd, payload.data(), payload.size(),
                              options_.io_timeout_ms);
      }
    } else {
      wrote = WriteFrame(fd, payload);
    }
    if (!wrote.ok()) broken.store(true, std::memory_order_release);
  };
  PipelinedDispatcher dispatcher(
      options_.window,
      [this](QueryRequest request) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.requests;
        }
        return submit_(std::move(request));
      },
      [&](uint64_t, NodeId source, const QueryResult& result) {
        WireResponse response;
        response.status_code = static_cast<uint8_t>(result.status.code());
        response.error = result.status.message();
        response.source = source;
        if (result.status.ok()) response.scores = result.scores;
        write_response(response);
      });

  Status protocol_error;
  while (!broken.load(std::memory_order_acquire)) {
    uint32_t length = 0;
    bool eof = false;
    if (!reader.ReadFull(&length, sizeof(length), &eof).ok() || eof) break;
    std::vector<char> payload;
    if (length > kMaxFramePayload) {
      protocol_error = Status::InvalidArgument(
          "frame length " + std::to_string(length) + " exceeds the " +
          std::to_string(kMaxFramePayload) + "-byte cap");
      break;
    }
    payload.resize(length);
    if (!reader.ReadFull(payload.data(), length, &eof).ok() || eof) break;
    auto request = DecodeRequest(payload);
    if (!request.ok()) {
      // A malformed payload ends the session: answering it mid-stream
      // would break the responses-in-request-order matching, and a client
      // that framed one request wrong will frame the next wrong too.
      protocol_error = request.status();
      break;
    }
    dispatcher.Dispatch(0, request.ValueOrDie().ToQueryRequest());
  }
  // Everything accepted is answered in order first; the error frame (if
  // any) terminates the stream.
  dispatcher.DrainAll();
  if (!protocol_error.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
    }
    WireResponse response;
    response.status_code = static_cast<uint8_t>(protocol_error.code());
    response.error = protocol_error.message();
    write_response(response);
  }
}

}  // namespace net
}  // namespace prsim
