#include "net/tcp_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "net/frame.h"
#include "util/logging.h"

namespace prsim {
namespace net {

namespace {

/// Buffered reads over a connection fd, seeded with the bytes consumed by
/// the framing sniff. Both framings pull from here so no byte is lost
/// between the sniff and the first request.
class BufferedFd {
 public:
  BufferedFd(int fd, std::string initial)
      : fd_(fd), buffer_(std::move(initial)) {}

  /// Reads exactly `len` bytes. Clean EOF before the first byte sets *eof;
  /// EOF mid-object is a kIOError.
  Status ReadFull(void* out, size_t len, bool* eof) {
    *eof = false;
    char* p = static_cast<char*>(out);
    size_t got = 0;
    while (got < len) {
      if (pos_ < buffer_.size()) {
        const size_t take = std::min(len - got, buffer_.size() - pos_);
        std::memcpy(p + got, buffer_.data() + pos_, take);
        pos_ += take;
        got += take;
        continue;
      }
      if (!Refill()) {
        if (got == 0) {
          *eof = true;
          return Status::OK();
        }
        return Status::IOError("connection closed mid-frame");
      }
    }
    return Status::OK();
  }

  /// Reads one '\n'-terminated line (terminator stripped). A final
  /// unterminated line is still delivered, matching std::getline. Read
  /// errors surface as EOF — for a serving session both mean "this client
  /// is done".
  bool ReadLine(std::string* line) {
    line->clear();
    while (true) {
      const size_t nl = buffer_.find('\n', pos_);
      if (nl != std::string::npos) {
        line->append(buffer_, pos_, nl - pos_);
        pos_ = nl + 1;
        return true;
      }
      line->append(buffer_, pos_, buffer_.size() - pos_);
      pos_ = buffer_.size();
      if (!Refill()) return !line->empty();
    }
  }

 private:
  bool Refill() {
    if (pos_ == buffer_.size()) {
      buffer_.clear();
      pos_ = 0;
    }
    char chunk[4096];
    auto n = ReadSome(fd_, chunk, sizeof(chunk));
    if (!n.ok() || n.ValueOrDie() == 0) return false;
    buffer_.append(chunk, n.ValueOrDie());
    return true;
  }

  int fd_;
  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    const TcpServerOptions& options, SubmitFn submit) {
  PRSIM_CHECK(submit != nullptr) << "TcpServer needs a submit hook";
  std::unique_ptr<TcpServer> server(new TcpServer());
  server->options_ = options;
  server->submit_ = std::move(submit);
  PRSIM_ASSIGN_OR_RETURN(server->listener_, ListenTcp(options.port));
  PRSIM_ASSIGN_OR_RETURN(server->port_, LocalPort(server->listener_.get()));
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  server->wake_read_ = UniqueFd(pipe_fds[0]);
  server->wake_write_ = UniqueFd(pipe_fds[1]);
  server->accept_thread_ = std::thread(&TcpServer::AcceptLoop, server.get());
  return server;
}

TcpServer::~TcpServer() { Shutdown(); }

void TcpServer::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  // Closing the wake pipe's write end makes the accept poll() see EOF; the
  // accept thread closes the listener on its way out, so no connection is
  // accepted past this point.
  wake_write_.Reset();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Half-close every live connection: its session sees EOF, drains the
    // in-flight window, flushes the responses, and exits.
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& session : sessions_) {
      if (session->fd.valid()) ShutdownRead(session->fd.get());
    }
  }
  ReapSessions(/*all=*/true);
}

TcpServerStats TcpServer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TcpServer::ReapSessions(bool all) {
  // Joining with mu_ held would deadlock against sessions taking mu_ on
  // their way out; move the candidates out of the registry first.
  std::vector<std::unique_ptr<Session>> joinable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (all) {
      joinable.swap(sessions_);
    } else {
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        if ((*it)->done) {
          joinable.push_back(std::move(*it));
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (const auto& session : joinable) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void TcpServer::AcceptLoop() {
  while (true) {
    ReapSessions(/*all=*/false);
    size_t live = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      live = sessions_.size();
    }
    if (live >= options_.max_connections) {
      // At the connection cap: only watch for shutdown, re-checking for a
      // freed slot every 50ms.
      pollfd wake = {wake_read_.get(), POLLIN, 0};
      if (::poll(&wake, 1, 50) > 0 && wake.revents != 0) break;
      continue;
    }
    pollfd fds[2] = {{listener_.get(), POLLIN, 0},
                     {wake_read_.get(), POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // wake pipe closed: shutting down
    if (fds[0].revents == 0) continue;
    const int raw = ::accept(listener_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    UniqueFd client(raw);
    const int one = 1;
    ::setsockopt(client.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Session* session = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections;
      sessions_.push_back(std::make_unique<Session>());
      session = sessions_.back().get();
      session->fd = std::move(client);
    }
    session->thread = std::thread(&TcpServer::RunSession, this, session);
  }
  listener_.Reset();
}

void TcpServer::RunSession(Session* session) {
  const int fd = session->fd.get();
  // Framing sniff: accumulate the client's first bytes until the binary
  // magic can be ruled in or out. Text requests start with a digit (or
  // whitespace/'#'), so "PRSB" is unambiguous; a client that closes after
  // fewer than 4 bytes is a (possibly empty) text session.
  std::string first_bytes;
  while (first_bytes.size() < sizeof(kBinaryMagic)) {
    char chunk[256];
    auto n = ReadSome(fd, chunk, sizeof(chunk));
    if (!n.ok() || n.ValueOrDie() == 0) break;
    first_bytes.append(chunk, n.ValueOrDie());
  }
  if (first_bytes.size() >= sizeof(kBinaryMagic) &&
      std::memcmp(first_bytes.data(), kBinaryMagic,
                  sizeof(kBinaryMagic)) == 0) {
    ServeBinarySession(fd, first_bytes.substr(sizeof(kBinaryMagic)));
  } else {
    ServeTextSession(fd, first_bytes);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Close now, not at reap time: the next reap may be far away (it runs on
  // the accept thread), and a well-behaved client that half-closed is
  // blocked waiting for our FIN.
  session->fd.Reset();
  session->done = true;
}

void TcpServer::ServeTextSession(int fd, const std::string& first_bytes) {
  BufferedFd reader(fd, first_bytes);
  // A failed write means the client hung up; stop reading instead of
  // computing answers nobody will receive. Results come off the
  // dispatcher's responder thread while parse errors come off this (the
  // reading) thread, so writes are serialized by write_mu — without it two
  // half-written lines could interleave on the wire.
  std::atomic<bool> broken{false};
  std::mutex write_mu;
  const auto write = [&](const std::string& framed) {
    if (broken.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(write_mu);
    if (!WriteAll(fd, framed.data(), framed.size()).ok()) {
      broken.store(true, std::memory_order_release);
    }
  };
  LineTransport transport;
  transport.read_line = [&](std::string* line) {
    return !broken.load(std::memory_order_acquire) && reader.ReadLine(line);
  };
  transport.write_line = [&](const std::string& line) { write(line + "\n"); };
  transport.report_error = [&](size_t line_no, const std::string& message) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
    }
    write("error line " + std::to_string(line_no) + ": " + message + "\n");
  };
  const SubmitFn counted = [this](QueryRequest request) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.requests;
    }
    return submit_(std::move(request));
  };
  ServeLineLoop(options_.node_count, options_.default_k, options_.window,
                counted, transport);
}

void TcpServer::ServeBinarySession(int fd, const std::string& first_bytes) {
  BufferedFd reader(fd, first_bytes);
  // Responses are written only by the dispatcher's responder thread while
  // the session runs; this thread writes only the terminal protocol-error
  // frame, after DrainAll() has joined the responder. So the stream stays
  // one writer at a time and responses arrive strictly in request order —
  // the invariant binary clients use to match responses to requests.
  std::atomic<bool> broken{false};
  const auto write_response = [&](const WireResponse& response) {
    if (broken.load(std::memory_order_acquire)) return;
    std::vector<char> payload;
    EncodeResponse(response, &payload);
    if (!WriteFrame(fd, payload).ok()) {
      broken.store(true, std::memory_order_release);
    }
  };
  PipelinedDispatcher dispatcher(
      options_.window,
      [this](QueryRequest request) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.requests;
        }
        return submit_(std::move(request));
      },
      [&](uint64_t, NodeId source, const QueryResult& result) {
        WireResponse response;
        response.status_code = static_cast<uint8_t>(result.status.code());
        response.error = result.status.message();
        response.source = source;
        if (result.status.ok()) response.scores = result.scores;
        write_response(response);
      });

  Status protocol_error;
  while (!broken.load(std::memory_order_acquire)) {
    uint32_t length = 0;
    bool eof = false;
    if (!reader.ReadFull(&length, sizeof(length), &eof).ok() || eof) break;
    std::vector<char> payload;
    if (length > kMaxFramePayload) {
      protocol_error = Status::InvalidArgument(
          "frame length " + std::to_string(length) + " exceeds the " +
          std::to_string(kMaxFramePayload) + "-byte cap");
      break;
    }
    payload.resize(length);
    if (!reader.ReadFull(payload.data(), length, &eof).ok() || eof) break;
    auto request = DecodeRequest(payload);
    if (!request.ok()) {
      // A malformed payload ends the session: answering it mid-stream
      // would break the responses-in-request-order matching, and a client
      // that framed one request wrong will frame the next wrong too.
      protocol_error = request.status();
      break;
    }
    dispatcher.Dispatch(0, request.ValueOrDie().ToQueryRequest());
  }
  // Everything accepted is answered in order first; the error frame (if
  // any) terminates the stream.
  dispatcher.DrainAll();
  if (!protocol_error.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
    }
    WireResponse response;
    response.status_code = static_cast<uint8_t>(protocol_error.code());
    response.error = protocol_error.message();
    write_response(response);
  }
}

}  // namespace net
}  // namespace prsim
