// Transport-agnostic serving session plumbing.
//
// Every serve transport — `serve --stdin`, a TCP text connection, a TCP
// binary connection — is the same loop: parse a request, submit it to a
// QueryService or ShardRouter, and stream the answers back in submission
// order without stalling the reader. This header owns the three shared
// pieces so the transports are only framings:
//   - ParseServeLine / FormatResultLine: the text protocol's request
//     parsing and response formatting (one implementation for stdin and
//     TCP, so the wire text diffs clean against the stdin loop);
//   - PipelinedDispatcher: the bounded in-flight window with a dedicated
//     responder thread (answers stream out the moment they complete, even
//     while the reader is blocked waiting for the next request — the shape
//     a request/response client needs; the window blocks the reader only
//     when the service is genuinely behind);
//   - ServeLineLoop: the full text session over caller-provided read/write
//     hooks (stdin binds them to std::cin/stdout, the TCP server to a
//     connection fd).

#ifndef PRSIM_NET_SERVE_LOOP_H_
#define PRSIM_NET_SERVE_LOOP_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "core/query_service.h"
#include "core/single_source.h"

namespace prsim {
namespace net {

/// Submission hook: enqueue one request, get the future. Bound to
/// QueryService::Submit or ShardRouter::SubmitRequest by the caller.
using SubmitFn = std::function<std::future<QueryResult>(QueryRequest)>;

/// Strips whitespace; returns "" for blank and '#'-comment lines.
std::string TrimRequestLine(const std::string& line);

/// Parses one already-trimmed, non-empty text request
/// "<source> [k] [deadline_ms=N]" (the optional k and deadline_ms tokens
/// may appear in either order). On success fills *source / *k (default_k
/// when omitted) / *deadline_ms (QueryRequest::kNoDeadline when omitted;
/// 0 is legal and means already expired) and returns OK; malformed tokens
/// and out-of-range sources are kInvalidArgument with the same messages
/// the stdin loop has always printed.
Status ParseServeLine(const std::string& trimmed, NodeId n,
                      uint32_t default_k, NodeId* source, uint32_t* k,
                      uint64_t* deadline_ms);

/// Formats the text protocol's response line (no trailing newline):
/// "result <source> <node>:<score>,...".
std::string FormatResultLine(NodeId source, const ScoreList& scores);

/// The bounded-window pipelining core. Dispatch() (one caller thread — the
/// transport's reader) submits with at most `window` requests in flight,
/// blocking when full; a dedicated responder thread delivers answers
/// through `respond` strictly in submission order as each future resolves.
/// The split matters: a blocking read-dispatch loop alone would sit on a
/// completed answer until the *next* request arrived, deadlocking any
/// client that waits for its response before sending more.
class PipelinedDispatcher {
 public:
  /// `respond` receives the per-session request id passed to Dispatch()
  /// plus the source and the (possibly failed) result. It is invoked from
  /// the responder thread — transports writing to an fd or FILE* are safe
  /// (the reader thread only reads), but `respond` must synchronize any
  /// state it shares with the dispatching thread.
  using RespondFn =
      std::function<void(uint64_t id, NodeId source, const QueryResult&)>;

  PipelinedDispatcher(size_t window, SubmitFn submit, RespondFn respond);

  /// Drains (DrainAll) and joins the responder.
  ~PipelinedDispatcher();

  PipelinedDispatcher(const PipelinedDispatcher&) = delete;
  PipelinedDispatcher& operator=(const PipelinedDispatcher&) = delete;

  /// Submits one request, first blocking until the in-flight window has
  /// room.
  void Dispatch(uint64_t id, QueryRequest request);

  /// Blocks until every in-flight response has been delivered, then stops
  /// the responder. Terminal: Dispatch() must not be called afterwards.
  void DrainAll();

  /// Responses delivered so far whose status was not OK. Call after
  /// DrainAll() for the session total.
  size_t failed_responses() const;

 private:
  struct Pending {
    uint64_t id = 0;
    NodeId source = 0;
    std::future<QueryResult> future;
  };

  void ResponderLoop();

  const size_t window_;
  SubmitFn submit_;
  RespondFn respond_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  bool stopping_ = false;
  size_t failed_ = 0;

  /// Declared last so it never outlives the state above.
  std::thread responder_;
};

/// Hooks binding ServeLineLoop to a transport.
struct LineTransport {
  /// Blocking line read; false on EOF (or shutdown-induced read failure).
  std::function<bool(std::string*)> read_line;
  /// Writes one response line (the transport appends the newline and
  /// flushes, so interactive clients see answers immediately).
  std::function<void(const std::string&)> write_line;
  /// Reports one failed request line (parse error or failed query).
  /// line_no is 1-based.
  std::function<void(size_t line_no, const std::string& message)> report_error;
};

/// Runs a full text-protocol session: reads request lines until EOF,
/// pipelines them through `submit` with an in-flight cap of `window`, and
/// writes responses in submission order. Returns the number of failed
/// lines (parse errors + failed queries) — the stdin loop's exit-code
/// contract.
size_t ServeLineLoop(NodeId n, uint32_t default_k, size_t window,
                     const SubmitFn& submit, const LineTransport& transport);

}  // namespace net
}  // namespace prsim

#endif  // PRSIM_NET_SERVE_LOOP_H_
